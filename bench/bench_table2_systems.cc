// Table II: comparison with existing detection systems on testbed data.
//
// Paper:                 Accuracy Precision Recall F1
//   HAWatcher            0.82     0.83      0.87   0.85
//   DeepLog              0.74     0.78      0.79   0.78
//   IsolationForest      0.63     0.74      0.61   0.67
//   FexIoT               0.90     0.90      0.93   0.91

#include <memory>

#include "bench_common.h"
#include "baselines/deeplog.h"
#include "baselines/hawatcher.h"
#include "core/fexiot.h"
#include "core/testbed.h"
#include "ml/metrics.h"

using namespace fexiot;
using namespace fexiot::bench;

int main() {
  PrintHeader("Table II", "system comparison on simulated testbed data");

  Rng rng(22);
  TestbedOptions topt;
  topt.num_samples = Scaled(240, 120);  // paper: 600
  topt.attacked_fraction = 0.5;
  Stopwatch watch;
  std::vector<TestbedSample> samples = GenerateTestbed(topt, &rng);
  std::printf("generated %zu testbed samples (%d attacked) in %.1fs\n",
              samples.size(),
              static_cast<int>(topt.attacked_fraction * topt.num_samples),
              watch.ElapsedSeconds());

  // 60/40 train/test split.
  const size_t n_train = samples.size() * 3 / 5;
  std::vector<TestbedSample> train(samples.begin(),
                                   samples.begin() + static_cast<long>(n_train));
  std::vector<TestbedSample> test(samples.begin() + static_cast<long>(n_train),
                                  samples.end());

  FexIotConfig fconfig;
  fconfig.gnn.type = GnnType::kGin;
  fconfig.gnn.hidden_dim = 24;
  fconfig.gnn.embedding_dim = 24;
  fconfig.train.epochs = Scaled(35, 25);
  fconfig.train.learning_rate = 0.02;
  fconfig.train.margin = 3.0;
  fconfig.train.pairs_per_sample = 4.0;

  std::vector<std::unique_ptr<SystemDetector>> systems;
  systems.push_back(std::make_unique<HaWatcherDetector>());
  systems.push_back(std::make_unique<DeepLogDetector>());
  systems.push_back(std::make_unique<IsolationForestDetector>());
  systems.push_back(std::make_unique<FexIotSystemDetector>(fconfig));

  const std::map<std::string, double> paper_acc = {
      {"HAWatcher", 0.82},
      {"DeepLog", 0.74},
      {"IsolationForest", 0.63},
      {"FexIoT", 0.90},
  };

  TablePrinter table({"system", "paper_acc", "accuracy", "precision",
                      "recall", "f1", "fit_time"});
  for (auto& system : systems) {
    watch.Restart();
    system->Fit(train);
    const double fit_secs = watch.ElapsedSeconds();
    std::vector<int> labels, preds;
    for (const auto& s : test) {
      labels.push_back(s.label);
      preds.push_back(system->Predict(s));
    }
    const ClassificationMetrics m = ComputeMetrics(labels, preds);
    table.AddRow({system->Name(),
                  Fmt(paper_acc.at(system->Name()), 2), Fmt(m.accuracy),
                  Fmt(m.precision), Fmt(m.recall), Fmt(m.f1),
                  Fmt(fit_secs, 1) + "s"});
  }
  table.Print();
  std::printf(
      "\nShape check: FexIoT > HAWatcher > DeepLog > IsolationForest in\n"
      "accuracy. HAWatcher's binary templates miss long-chain\n"
      "correlations; DeepLog and IsolationForest cannot mine cross-event\n"
      "interaction logic from sequences alone.\n");
  return 0;
}
