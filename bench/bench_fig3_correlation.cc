// Figure 3: "action-trigger" interaction-correlation discovery.
//
// Paper: four classifiers (MLP, RandomForest, KNN, GradientBoost) trained
// on 5,600 correlated + 8,000 unrelated rule pairs, 10-fold CV; all reach
// >95% on accuracy/precision/recall/F1 (RandomForest best accuracy 0.984,
// MLP best recall 0.998, KNN best precision 0.997).

#include <memory>

#include "bench_common.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/mlp.h"
#include "ml/model_selection.h"
#include "nlp/rule_features.h"
#include "smarthome/platform.h"

using namespace fexiot;
using namespace fexiot::bench;

namespace {

// Builds the labeled pair corpus: positives are (A, B) where A's action
// causes B's trigger (ground truth from the simulator); negatives are
// random unrelated pairs.
void BuildPairs(int num_positive, int num_negative, Rng* rng, Matrix* x,
                std::vector<int>* y) {
  std::vector<Platform> platforms = {Platform::kSmartThings,
                                     Platform::kIfttt,
                                     Platform::kHomeAssistant};
  std::vector<RuleGenerator> gens;
  for (Platform p : platforms) gens.emplace_back(p, rng);

  std::vector<std::vector<double>> rows;
  y->clear();
  int made_pos = 0, made_neg = 0;
  while (made_pos < num_positive || made_neg < num_negative) {
    auto& gen = gens[rng->UniformInt(gens.size())];
    const Rule a = gen.Generate();
    Rule b;
    const bool want_positive = made_pos < num_positive &&
                               (made_neg >= num_negative || rng->Bernoulli(0.5));
    if (want_positive) {
      b = gen.GenerateTriggeredBy(a.actions.front());
    } else {
      b = gens[rng->UniformInt(gens.size())].Generate();
    }
    const bool correlated = ActionTriggersRule(a, b);
    if (correlated && made_pos >= num_positive) continue;
    if (!correlated && made_neg >= num_negative) continue;
    (correlated ? made_pos : made_neg) += 1;
    rows.push_back(RuleFeatureExtractor::ExtractPairFeatures(a.description,
                                                             b.description));
    y->push_back(correlated ? 1 : 0);
  }
  *x = Matrix::FromRows(rows);
}

}  // namespace

int main() {
  PrintHeader("Figure 3", "correlation classifiers, 10-fold cross validation");

  Rng rng(42);
  const int num_pos = Scaled(700, 100);
  const int num_neg = Scaled(1000, 140);
  Matrix x;
  std::vector<int> y;
  Stopwatch watch;
  BuildPairs(num_pos, num_neg, &rng, &x, &y);
  std::printf("built %zu labeled pairs (%d correlated / %d unrelated, "
              "%d features) in %.1fs\n",
              x.rows(), num_pos, num_neg,
              RuleFeatureExtractor::kPairFeatureDim, watch.ElapsedSeconds());

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<Classifier>()> factory;
    double paper_acc;
  };
  const std::vector<Entry> entries = {
      {"MLP", [] { return std::make_unique<MlpClassifier>(); }, 0.975},
      {"RandomForest",
       [] { return std::make_unique<RandomForestClassifier>(); }, 0.984},
      {"KNN", [] { return std::make_unique<KnnClassifier>(); }, 0.975},
      {"GradientBoost",
       [] { return std::make_unique<GradientBoostClassifier>(); }, 0.975},
  };

  TablePrinter table({"classifier", "paper_acc", "accuracy", "precision",
                      "recall", "f1"});
  for (const auto& e : entries) {
    const CrossValidationResult cv =
        CrossValidate(e.factory, x, y, /*num_folds=*/10, &rng);
    table.AddRow({e.name, "~" + Fmt(e.paper_acc, 3), Fmt(cv.mean.accuracy),
                  Fmt(cv.mean.precision), Fmt(cv.mean.recall),
                  Fmt(cv.mean.f1)});
  }
  table.Print();
  std::printf(
      "\nShape check: all four classifiers should sit in the high-90%%s as in\n"
      "the paper, proving the Section III-A1 features carry the correlation\n"
      "signal; tree ensembles and MLP near the top.\n");
  return 0;
}
