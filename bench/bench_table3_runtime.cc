// Table III: runtime efficiency. Uses google-benchmark for the per-graph
// prediction/explanation timings plus wall-clock measurements for the
// corpus-level numbers.
//
// Paper: graph construction 17.19s (IFTTT, 6,000) / 976.99s (hetero,
// 12,758); prediction 0.52-0.61s; vulnerability analysis 2.18-3.64s;
// model size 5.48-6.13 MB.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "explain/explainer.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "ml/linear_model.h"

using namespace fexiot;
using namespace fexiot::bench;

namespace {

struct Fixture {
  GnnConfig gc;
  GnnModel model;
  SgdClassifier head;
  GraphCorpusGenerator gen;
  InteractionGraph example;
  PreparedGraph prepared_example;
  Rng rng;

  static Fixture& Get() {
    static Fixture f;
    return f;
  }

  Fixture()
      : gc([] {
          GnnConfig c;
          c.type = GnnType::kGin;
          c.hidden_dim = 24;
          c.embedding_dim = 24;
          return c;
        }()),
        model(gc),
        gen([] {
          CorpusOptions copt;
          copt.platforms = {Platform::kIfttt};
          copt.min_nodes = 10;
          copt.max_nodes = 24;
          copt.vulnerable_fraction = 0.5;
          return copt;
        }(), &StaticRng()),
        rng(33) {
    GraphDataset train(gen.GenerateDataset(120));
    TrainConfig tc;
    tc.epochs = 8;
    GnnTrainer trainer(&model, tc);
    const auto prepared = PrepareDataset(train, gc);
    trainer.Train(prepared, &rng);
    std::vector<int> y = train.Labels();
    (void)head.Fit(trainer.Embed(prepared), y);
    example = gen.GenerateVulnerable(VulnerabilityType::kActionRevert);
    prepared_example = PrepareGraph(example, gc);
  }

  static Rng& StaticRng() {
    static Rng rng(3333);
    return rng;
  }
};

void BM_GraphConstruction(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.gen.GenerateBenign());
  }
}
BENCHMARK(BM_GraphConstruction)->Unit(benchmark::kMillisecond);

void BM_Prediction(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    const std::vector<double> z = f.model.Forward(f.prepared_example, nullptr);
    benchmark::DoNotOptimize(f.head.PredictProba(z));
  }
}
BENCHMARK(BM_Prediction)->Unit(benchmark::kMicrosecond);

void BM_PredictionWithPreparation(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    const PreparedGraph p = PrepareGraph(f.example, f.gc);
    const std::vector<double> z = f.model.Forward(p, nullptr);
    benchmark::DoNotOptimize(f.head.PredictProba(z));
  }
}
BENCHMARK(BM_PredictionWithPreparation)->Unit(benchmark::kMicrosecond);

void BM_VulnerabilityAnalysis(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  SearchOptions sopt;
  sopt.iterations = 4;
  sopt.beam_width = 3;
  sopt.max_subgraph_nodes = 4;
  sopt.shap_samples = 10;
  for (auto _ : state) {
    GnnGraphScorer scorer(&f.model, &f.head, &f.example);
    ShapMcbsExplainer explainer(sopt);
    benchmark::DoNotOptimize(explainer.Explain(scorer, &f.rng));
  }
}
BENCHMARK(BM_VulnerabilityAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Table III", "runtime efficiency (google-benchmark)");

  // Model size (paper: 5.48 MB IFTTT GIN / 6.13 MB hetero MAGNN).
  {
    GnnConfig gin;
    gin.type = GnnType::kGin;
    gin.hidden_dim = 24;
    gin.embedding_dim = 24;
    GnnConfig magnn = gin;
    magnn.type = GnnType::kMagnn;
    const double gin_mb =
        GnnModel(gin).TotalParams() * sizeof(double) / (1024.0 * 1024.0);
    const double magnn_mb =
        GnnModel(magnn).TotalParams() * sizeof(double) / (1024.0 * 1024.0);
    std::printf("model size: GIN %.2f MB (paper 5.48 MB at their dims), "
                "MAGNN %.2f MB (paper 6.13 MB)\n",
                gin_mb, magnn_mb);
    std::printf(
        "paper per-item references: graph construction 2.9ms/graph (IFTTT,\n"
        "17.19s / 6,000), prediction 0.52s, analysis 2.18s (algorithm-\n"
        "parameter dependent).\n\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
