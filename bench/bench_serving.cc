// Serving trajectory bench: the streaming detection engine under seeded
// Poisson/burst load, sweeping the batching knob max_batch over
// {1, 2, 4, 8, 16}. max_batch == 1 is the classic one-graph-at-a-time
// path; larger batches answer through the block-diagonal ForwardBatch
// kernel, which is bit-identical (tests/test_serving.cc) but amortizes
// propagation setup and keeps the transform's weight panels L1-resident
// across the whole batch. Prints a table and writes a JSON perf record
// (BENCH_serving.json by default, or the path in argv[1]).
//
// Reported latency is the engine's end-to-end semantic: simulated
// queueing wait (batching linger) plus measured inference wall time, so
// max_batch == 1 shows pure kernel latency while batched rows also carry
// the linger cost the batching knob buys throughput with. The headline
// acceptance metric is homes/sec (measured wall clock of the request
// phase) where batch >= 4 must beat the classic path.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "serving/arrivals.h"
#include "serving/engine.h"
#include "smarthome/home.h"

namespace fexiot {
namespace bench {
namespace {

struct ServingRecord {
  int max_batch = 0;
  int requests = 0;
  int homes = 0;
  double wall_seconds = 0.0;
  double homes_per_sec = 0.0;
  double speedup_vs_b1 = 0.0;
  LatencySummary latency;  // seconds
  double mean_batch_size = 0.0;
  uint64_t incremental_updates = 0;
  uint64_t rebuilds = 0;
  uint64_t firings = 0;
};

struct World {
  std::vector<Home> homes;
  std::vector<std::vector<LogEntry>> logs;  // cleaned
  double log_end = 0.0;
};

World BuildWorld(int num_homes) {
  World w;
  for (int i = 0; i < num_homes; ++i) {
    Rng rng(0xBE5C + static_cast<uint64_t>(i));
    // 13 rules: 13 * 308 * 64 flops keeps the per-graph transform just
    // under the GEMM dispatch threshold, so both serving paths run the
    // reference-order kernel and the batched panel reuse is what differs.
    w.homes.push_back(BuildChainedHome(
        13, {Platform::kSmartThings, Platform::kHomeAssistant}, &rng));
    SimulationConfig config;
    config.duration_seconds = 3.0 * 3600.0;
    config.exogenous_mean_gap = 120.0;
    HomeSimulator sim(w.homes.back(), config, &rng);
    w.logs.push_back(sim.Run().Cleaned().entries());
    for (const LogEntry& e : w.logs.back()) {
      w.log_end = std::max(w.log_end, e.timestamp);
    }
  }
  return w;
}

// One full load run: fresh engine, full ingest, then the seeded Poisson
// request phase. Only the request phase is timed.
ServingRecord RunOnce(const World& world, const GnnModel& model, int max_batch,
                      int requests) {
  ServingConfig sc;
  sc.max_batch = max_batch;
  sc.max_linger_s = 0.05;
  StreamingDetectionEngine engine(&model, sc);
  const int num_homes = static_cast<int>(world.homes.size());
  for (int h = 0; h < num_homes; ++h) {
    engine.AddHome(h, world.homes[h]);
    for (const LogEntry& e : world.logs[static_cast<size_t>(h)]) {
      engine.Ingest(h, e);
    }
  }

  ArrivalConfig ac;
  ac.rate_hz = 800.0;
  ac.burst_factor = 3.0;
  ac.burst_fraction = 0.25;
  ac.burst_period_s = 4.0;
  ac.seed = 31;
  ArrivalGenerator gen(ac);
  // Jittered round-robin home selection: every home is polled once per
  // cycle in a freshly shuffled order (periodic monitoring with jitter).
  // Poisson arrival *times* stay random; the cycle keeps a home from
  // re-requesting while still pending, which would force partial batches.
  Rng pick(0x5E1EC7);
  std::vector<int> cycle(static_cast<size_t>(num_homes));
  for (int h = 0; h < num_homes; ++h) cycle[static_cast<size_t>(h)] = h;
  std::vector<DetectionResult> completed;
  completed.reserve(static_cast<size_t>(requests));

  Stopwatch sw;
  for (int k = 0; k < requests; ++k) {
    const double t = world.log_end + gen.Next();
    const size_t phase = static_cast<size_t>(k) % cycle.size();
    if (phase == 0) pick.Shuffle(&cycle);
    const int home = cycle[phase];
    engine.AdvanceTo(t, &completed);
    engine.RequestDetection(home, t, &completed);
  }
  engine.Flush(&completed);
  const double wall = sw.ElapsedSeconds();

  const ServingStats& stats = engine.stats();
  ServingRecord rec;
  rec.max_batch = max_batch;
  rec.requests = requests;
  rec.homes = num_homes;
  rec.wall_seconds = wall;
  rec.homes_per_sec = static_cast<double>(requests) / wall;
  rec.latency = Summarize(stats.latency.samples());
  rec.mean_batch_size = stats.batches > 0
                            ? static_cast<double>(stats.requests) /
                                  static_cast<double>(stats.batches)
                            : 0.0;
  rec.incremental_updates = stats.incremental_updates;
  rec.rebuilds = stats.rebuilds;
  rec.firings = stats.firings;
  return rec;
}

// Median-wall run per configuration, with the repeats interleaved
// round-robin across configurations: the host is shared and drifts on a
// minutes scale, so back-to-back repeats of one configuration would fold
// that drift into the cross-configuration ratios.
std::vector<ServingRecord> RunSweep(const World& world, const GnnModel& model,
                                    const std::vector<int>& batches,
                                    int requests, int repeats) {
  std::vector<std::vector<ServingRecord>> runs(batches.size());
  for (int r = 0; r < repeats; ++r) {
    for (size_t i = 0; i < batches.size(); ++i) {
      runs[i].push_back(RunOnce(world, model, batches[i], requests));
    }
  }
  std::vector<ServingRecord> medians;
  for (std::vector<ServingRecord>& rs : runs) {
    std::sort(rs.begin(), rs.end(),
              [](const ServingRecord& x, const ServingRecord& y) {
                return x.wall_seconds < y.wall_seconds;
              });
    medians.push_back(rs[rs.size() / 2]);
  }
  return medians;
}

bool WriteJson(const std::string& path,
               const std::vector<ServingRecord>& records) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f, "  \"sweep\": \"max_batch x homes_per_sec x latency\",\n");
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const ServingRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"max_batch\": %d, \"requests\": %d, \"homes\": %d, "
        "\"wall_seconds\": %.4f, \"homes_per_sec\": %.1f, "
        "\"speedup_vs_b1\": %.3f, \"mean_batch_size\": %.2f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"mean_ms\": %.4f, \"max_ms\": %.4f, "
        "\"incremental_updates\": %llu, \"rebuilds\": %llu, "
        "\"firings\": %llu}%s\n",
        r.max_batch, r.requests, r.homes, r.wall_seconds, r.homes_per_sec,
        r.speedup_vs_b1, r.mean_batch_size, r.latency.p50 * 1e3,
        r.latency.p95 * 1e3, r.latency.p99 * 1e3, r.latency.mean * 1e3,
        r.latency.max * 1e3,
        static_cast<unsigned long long>(r.incremental_updates),
        static_cast<unsigned long long>(r.rebuilds),
        static_cast<unsigned long long>(r.firings),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  PrintHeader("SERVING",
              "streaming detection under Poisson load: max_batch sweep");
  const int num_homes = Scaled(32, 4);
  const int requests = Scaled(3000, 200);
  const World world = BuildWorld(num_homes);

  GnnConfig gc;
  gc.hidden_dim = 64;  // 154 KB weight panel > L1: transform locality visible
  const GnnModel model(gc);

  const std::vector<int> batches = {1, 2, 4, 8, 16};
  TablePrinter table({"max_batch", "homes/s", "speedup", "mean batch",
                      "p50 ms", "p95 ms", "p99 ms", "rebuilds"});
  // Warm-up pass (pool spin-up, page faults) before the measured sweep.
  RunOnce(world, model, 1, std::min(requests, 200));
  std::vector<ServingRecord> records =
      RunSweep(world, model, batches, requests, /*repeats=*/5);
  for (ServingRecord& r : records) {
    r.speedup_vs_b1 = r.wall_seconds > 0.0
                          ? records.front().wall_seconds / r.wall_seconds
                          : 0.0;
    table.AddRow({std::to_string(r.max_batch), Fmt(r.homes_per_sec, 1),
                  Fmt(r.speedup_vs_b1, 2), Fmt(r.mean_batch_size, 2),
                  Fmt(r.latency.p50 * 1e3, 4), Fmt(r.latency.p95 * 1e3, 4),
                  Fmt(r.latency.p99 * 1e3, 4),
                  std::to_string(r.rebuilds)});
  }
  table.Print();
  std::printf(
      "\nbatched rows answer through one block-diagonal SpMM + one\n"
      "panel-blocked transform per layer (bit-identical to max_batch=1);\n"
      "latency includes the simulated batching linger the throughput is\n"
      "bought with.\n");
  return WriteJson(argc > 1 ? argv[1] : "BENCH_serving.json", records) ? 0
                                                                       : 1;
}

}  // namespace
}  // namespace bench
}  // namespace fexiot

int main(int argc, char** argv) {
  using namespace fexiot::bench;
  return Main(argc, argv);
}
