// Table I: statistics of the interaction-graph datasets.
//
// Paper: IFTTT (homogeneous)     labeled 6,000 graphs, 1,473 vulnerable;
//        5 platforms (hetero)    labeled 12,758 graphs, 3,828 vulnerable;
//        node counts 2..50.

#include "bench_common.h"
#include "graph/corpus.h"

using namespace fexiot;
using namespace fexiot::bench;

namespace {

void Report(const char* name, const CorpusOptions& options, int count,
            int paper_total, int paper_vuln, TablePrinter* table) {
  Rng rng(1234);
  GraphCorpusGenerator gen(options, &rng);
  Stopwatch watch;
  const auto graphs = gen.GenerateDataset(count);
  const double secs = watch.ElapsedSeconds();
  const CorpusStats stats = ComputeCorpusStats(graphs);
  table->AddRow({name, std::to_string(paper_total),
                 std::to_string(paper_vuln), std::to_string(stats.total_graphs),
                 std::to_string(stats.vulnerable_graphs),
                 std::to_string(stats.min_nodes) + ".." +
                     std::to_string(stats.max_nodes),
                 Fmt(stats.avg_nodes, 1), Fmt(stats.avg_edges, 1),
                 Fmt(secs, 2) + "s"});
}

}  // namespace

int main() {
  PrintHeader("Table I", "statistics of interaction graphs");

  TablePrinter table({"dataset", "paper_total", "paper_vuln", "total",
                      "vulnerable", "nodes", "avg_nodes", "avg_edges",
                      "gen_time"});

  CorpusOptions ifttt;
  ifttt.platforms = {Platform::kIfttt};
  ifttt.min_nodes = 2;
  ifttt.max_nodes = 50;
  ifttt.vulnerable_fraction = 1473.0 / 6000.0;
  Report("IFTTT(homo)", ifttt, Scaled(600, 50), 6000, 1473, &table);

  CorpusOptions hetero;
  hetero.platforms = {Platform::kSmartThings, Platform::kHomeAssistant,
                      Platform::kIfttt, Platform::kGoogleAssistant,
                      Platform::kAlexa};
  hetero.min_nodes = 2;
  hetero.max_nodes = 50;
  hetero.vulnerable_fraction = 3828.0 / 12758.0;
  Report("5-platform(het)", hetero, Scaled(1200, 100), 12758, 3828, &table);

  table.Print();
  std::printf(
      "\nShape check: vulnerable fraction ~%.0f%% (IFTTT) / ~%.0f%% (hetero),\n"
      "node counts within 2..50 as in the paper. Totals scale with\n"
      "FEXIOT_SCALE; the paper's full corpus sizes are shown for reference.\n",
      100.0 * 1473 / 6000, 100.0 * 3828 / 12758);
  return 0;
}
