// Million-client scale-out trajectory bench: sweeps the federation size
// from 1k to 1M clients under sampled participation, lazy client state,
// and the hierarchical streaming-aggregation tree, and records peak RSS
// and event throughput per size. The point being measured is the memory
// *shape*: with on-demand materialization peak RSS must track the active
// sample (flat across the sweep), not the federation size. Prints a table
// and writes a JSON perf record (BENCH_scale.json by default, or the path
// in argv[1]), same shape as BENCH_runtime.json.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "federated/scale_sim.h"

namespace fexiot {
namespace bench {
namespace {

struct ScaleRecord {
  uint64_t clients = 0;
  int sample_per_round = 0;
  int rounds = 0;
  int delivered = 0;
  uint64_t events = 0;
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  double sim_time_s = 0.0;
  double comm_mb = 0.0;
  uint64_t materializations = 0;
  uint64_t peak_live = 0;
  double rss_mb = 0.0;       // VmRSS after the run
  double peak_rss_mb = 0.0;  // VmHWM, the scale-out acceptance metric
};

ScaleFlConfig ConfigFor(uint64_t clients) {
  ScaleFlConfig cfg;
  cfg.num_clients = clients;
  cfg.sample_per_round = 64;
  cfg.num_rounds = Scaled(2);
  cfg.client.corpus.platforms = {Platform::kIfttt};
  cfg.client.corpus.min_nodes = 3;
  cfg.client.corpus.max_nodes = 8;
  cfg.client.corpus.vulnerable_fraction = 0.4;
  cfg.client.graphs_per_client = 5;
  cfg.client.num_clusters = 4;
  cfg.client.profile_strength = 0.5;
  cfg.client.model.hidden_dim = 8;
  cfg.client.model.embedding_dim = 8;
  cfg.train.epochs = 1;
  cfg.train.learning_rate = 0.02;
  cfg.topology.edge_fanout = 64;
  cfg.topology.regional_fanout = 16;
  cfg.topology.edge_up.latency_s = 0.05;
  cfg.topology.regional_up.latency_s = 0.02;
  cfg.up_link.latency_s = 0.1;
  cfg.up_link.loss_prob = 0.05;
  return cfg;
}

ScaleRecord RunOne(uint64_t clients) {
  const ScaleFlConfig cfg = ConfigFor(clients);
  const ScaleFlResult res = ScaleSimulator(cfg).Run().value();
  ScaleRecord rec;
  rec.clients = clients;
  rec.sample_per_round = cfg.sample_per_round;
  rec.rounds = cfg.num_rounds;
  for (const ScaleRoundStats& r : res.rounds) rec.delivered += r.delivered;
  rec.events = res.total_events;
  rec.events_per_sec = res.events_per_sec;
  rec.wall_seconds = res.wall_seconds;
  rec.sim_time_s = res.total_sim_time_s;
  rec.comm_mb = res.total_comm_bytes / (1024.0 * 1024.0);
  rec.materializations = res.materializations;
  rec.peak_live = res.peak_live_clients;
  rec.rss_mb = res.current_rss_mb;
  rec.peak_rss_mb = res.peak_rss_mb;
  return rec;
}

bool WriteJson(const std::string& path,
               const std::vector<ScaleRecord>& records) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f, "  \"sweep\": \"num_clients x peak_rss x events_per_sec\",\n");
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const ScaleRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"clients\": %llu, \"sample_per_round\": %d, \"rounds\": %d, "
        "\"delivered\": %d, \"events\": %llu, \"events_per_sec\": %.1f, "
        "\"wall_seconds\": %.3f, \"sim_time_s\": %.3f, \"comm_mb\": %.3f, "
        "\"materializations\": %llu, \"peak_live_clients\": %llu, "
        "\"rss_mb\": %.1f, \"peak_rss_mb\": %.1f}%s\n",
        static_cast<unsigned long long>(r.clients), r.sample_per_round,
        r.rounds, r.delivered, static_cast<unsigned long long>(r.events),
        r.events_per_sec, r.wall_seconds, r.sim_time_s, r.comm_mb,
        static_cast<unsigned long long>(r.materializations),
        static_cast<unsigned long long>(r.peak_live), r.rss_mb,
        r.peak_rss_mb, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  PrintHeader("SCALE", "lazy-state federation sweep: clients x RSS x events/s");
  const std::vector<uint64_t> sizes = {1000, 10000, 100000, 1000000};
  std::vector<ScaleRecord> records;
  TablePrinter table({"clients", "sample", "delivered", "events/s", "wall s",
                      "comm MB", "peak live", "RSS MB", "peak RSS MB"});
  for (uint64_t clients : sizes) {
    records.push_back(RunOne(clients));
    const ScaleRecord& r = records.back();
    table.AddRow({std::to_string(r.clients), std::to_string(r.sample_per_round),
                  std::to_string(r.delivered), Fmt(r.events_per_sec, 1),
                  Fmt(r.wall_seconds), Fmt(r.comm_mb),
                  std::to_string(r.peak_live), Fmt(r.rss_mb, 1),
                  Fmt(r.peak_rss_mb, 1)});
  }
  table.Print();
  std::printf(
      "\npeak RSS is flat across a 1000x federation-size sweep: client\n"
      "state is materialized from counter streams only while in flight.\n");
  return WriteJson(argc > 1 ? argv[1] : "BENCH_scale.json", records) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace fexiot

int main(int argc, char** argv) { return fexiot::bench::Main(argc, argv); }
