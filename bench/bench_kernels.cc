// GEMM kernel trajectory bench: blocked/packed/parallel MatMul vs the
// retained ReferenceMatMul at square sizes 64/256/512/1024. Prints a table
// and writes a JSON perf record (BENCH_kernels.json by default, or the
// path in argv[1]) so kernel work accumulates a measurable history. The
// record names the dispatched ISA tier, its register tile, and whether
// the wide-C pack-reuse path engaged at each size, so entries are
// comparable across hosts (and across FEXIOT_ISA overrides).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "tensor/gemm.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace fexiot {
namespace bench {
namespace {

struct KernelRecord {
  size_t size = 0;
  double ref_seconds = 0.0;
  double blocked_seconds = 0.0;
  double ref_gflops = 0.0;
  double blocked_gflops = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
  bool pack_reuse = false;
};

template <typename Fn>
double TimeKernel(const Fn& fn, int reps) {
  fn();  // warm-up (page faults, pool spin-up)
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.ElapsedSeconds());
  }
  return MedianSeconds(std::move(samples));
}

KernelRecord BenchSize(size_t size, Rng* rng) {
  KernelRecord rec;
  rec.size = size;
  const Matrix a = Matrix::RandomNormal(size, size, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(size, size, 1.0, rng);
  // Odd rep counts so the median is a real middle sample (with 2 samples
  // samples[1] is the max, which punishes the kernel on noisy hosts).
  const int reps = size >= 1024 ? 3 : (size >= 512 ? 5 : 7);

  Matrix c_ref, c_blk;
  rec.ref_seconds = TimeKernel([&] { c_ref = ReferenceMatMul(a, b); }, reps);
  rec.blocked_seconds = TimeKernel([&] { c_blk = MatMul(a, b); }, reps);
  for (size_t i = 0; i < c_ref.size(); ++i) {
    rec.max_abs_diff = std::max(
        rec.max_abs_diff, std::fabs(c_ref.data()[i] - c_blk.data()[i]));
  }

  const double flops = 2.0 * static_cast<double>(size) * size * size;
  rec.ref_gflops = flops / rec.ref_seconds * 1e-9;
  rec.blocked_gflops = flops / rec.blocked_seconds * 1e-9;
  rec.speedup = rec.ref_seconds / rec.blocked_seconds;
  rec.pack_reuse = gemm::PackReuseEngages(size);
  return rec;
}

bool WriteJson(const std::string& path,
               const std::vector<KernelRecord>& records) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const gemm::KernelInfo& ker = gemm::ActiveKernel();
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"kernel\": \"simd-dispatch-gemm\",\n");
  std::fprintf(f, "  \"isa\": \"%s\",\n", ker.name);
  std::fprintf(f, "  \"tile\": \"%s\",\n", ker.tile);
  std::fprintf(f,
               "  \"blocking\": {\"mc\": %zu, \"kc\": %zu, \"nc\": %zu},\n",
               ker.mc, ker.kc, ker.nc);
  std::fprintf(f, "  \"threads\": %zu,\n", parallel::NumThreads());
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    std::fprintf(f,
                 "    {\"size\": %zu, \"ref_seconds\": %.6f, "
                 "\"blocked_seconds\": %.6f, \"ref_gflops\": %.3f, "
                 "\"blocked_gflops\": %.3f, \"speedup\": %.3f, "
                 "\"max_abs_diff\": %.3e, \"pack_reuse\": %s}%s\n",
                 r.size, r.ref_seconds, r.blocked_seconds, r.ref_gflops,
                 r.blocked_gflops, r.speedup, r.max_abs_diff,
                 r.pack_reuse ? "true" : "false",
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace fexiot

int main(int argc, char** argv) {
  using namespace fexiot;
  using namespace fexiot::bench;
  PrintHeader("KERNELS", "blocked GEMM vs reference (double, square NxNxN)");

  Rng rng(20240806);
  const std::vector<size_t> sizes = {64, 256, 512, 1024};
  std::vector<KernelRecord> records;
  TablePrinter table(
      {"N", "ref s", "blocked s", "ref GF/s", "blk GF/s", "speedup"});
  for (size_t n : sizes) {
    const KernelRecord rec = BenchSize(n, &rng);
    table.AddRow({std::to_string(n), Fmt(rec.ref_seconds, 4),
                  Fmt(rec.blocked_seconds, 4), Fmt(rec.ref_gflops, 2),
                  Fmt(rec.blocked_gflops, 2), Fmt(rec.speedup, 2)});
    records.push_back(rec);
  }
  std::printf("%s\n", table.ToString().c_str());
  const gemm::KernelInfo& ker = gemm::ActiveKernel();
  std::printf("dispatched isa: %s (tile %s, mc=%zu kc=%zu nc=%zu)\n",
              ker.name, ker.tile, ker.mc, ker.kc, ker.nc);
  std::printf("pool threads: %zu\n", parallel::NumThreads());

  return WriteJson(argc > 1 ? argv[1] : "BENCH_kernels.json", records) ? 0
                                                                       : 1;
}
