// Figure 9: fidelity / sparsity trade-off of the explanation methods.
//
// Paper: over 50 randomly-picked vulnerable graphs, half the cases have
// fidelity > 0.3 at sparsity < 0.7; FexIoT strikes the best balance
// between high fidelity (explanation matters to the prediction) and high
// sparsity (explanation is concise).

#include <memory>

#include "bench_common.h"
#include "explain/explainer.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "ml/linear_model.h"
#include "ml/metrics.h"

using namespace fexiot;
using namespace fexiot::bench;

int main() {
  PrintHeader("Figure 9", "explanation fidelity vs sparsity");

  Rng rng(99);
  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 6;
  copt.max_nodes = 14;
  copt.vulnerable_fraction = 0.5;
  GraphCorpusGenerator gen(copt, &rng);
  GraphDataset train(gen.GenerateDataset(Scaled(300, 150)));

  GnnConfig gc;
  gc.type = GnnType::kGcn;
  gc.hidden_dim = 24;
  gc.embedding_dim = 24;
  GnnModel model(gc);
  TrainConfig tc;
  tc.epochs = Scaled(18, 12);
  tc.learning_rate = 0.02;
  tc.margin = 3.0;
  tc.pairs_per_sample = 2.0;
  GnnTrainer trainer(&model, tc);
  const auto prepared = PrepareDataset(train, gc);
  trainer.Train(prepared, &rng);
  SgdClassifier head;
  std::vector<int> y = train.Labels();
  (void)head.Fit(trainer.Embed(prepared), y);

  const int num_graphs = Scaled(12, 8);  // paper: 50
  std::vector<InteractionGraph> cases;
  for (int i = 0; i < num_graphs; ++i) {
    cases.push_back(gen.GenerateVulnerable(gen.SampleVulnerabilityType()));
  }

  SearchOptions sopt;
  sopt.iterations = Scaled(6, 4);
  sopt.beam_width = 3;
  sopt.max_subgraph_nodes = 4;
  sopt.shap_samples = 12;

  TablePrinter table({"method", "fidelity_mean", "fidelity_std",
                      "sparsity_mean", "avg_subgraph", "avg_evals",
                      "avg_tt_hits", "avg_memo_hits", "time_per_graph"});
  std::vector<std::unique_ptr<Explainer>> explainers;
  explainers.push_back(std::make_unique<ShapMcbsExplainer>(sopt));
  explainers.push_back(std::make_unique<SubgraphXExplainer>(sopt));
  explainers.push_back(std::make_unique<MctsGnnExplainer>(sopt));

  for (auto& ex : explainers) {
    std::vector<double> fidelities, sparsities;
    double total_nodes = 0.0, total_evals = 0.0;
    double total_tt_hits = 0.0, total_memo_hits = 0.0;
    Stopwatch watch;
    for (const auto& g : cases) {
      GnnGraphScorer scorer(&model, &head, &g);
      const ExplanationResult res = ex->Explain(scorer, &rng);
      const FidelitySparsity fs =
          EvaluateExplanation(scorer, res.subgraph_nodes);
      fidelities.push_back(fs.fidelity);
      sparsities.push_back(fs.sparsity);
      total_nodes += static_cast<double>(res.subgraph_nodes.size());
      total_evals += res.model_evaluations;
      total_tt_hits += static_cast<double>(res.tt_hits);
      total_memo_hits += static_cast<double>(scorer.memo_hits());
    }
    const MeanStd fid = ComputeMeanStd(fidelities);
    const MeanStd spa = ComputeMeanStd(sparsities);
    table.AddRow({ex->Name(), Fmt(fid.mean), Fmt(fid.stddev),
                  Fmt(spa.mean), Fmt(total_nodes / num_graphs, 1),
                  Fmt(total_evals / num_graphs, 0),
                  Fmt(total_tt_hits / num_graphs, 0),
                  Fmt(total_memo_hits / num_graphs, 0),
                  Fmt(watch.ElapsedSeconds() / num_graphs, 2) + "s"});
  }
  table.Print();
  std::printf(
      "\nPaper reference: FexIoT balances fidelity and sparsity (both high)\n"
      "while SubgraphX / MCTS_GNN trade one for the other. Shape check:\n"
      "at matched sparsity (same max subgraph size) FexIoT's fidelity\n"
      "should be the highest of the three.\n");
  return 0;
}
