// Figure 5: scalability — client-accuracy box plots for 25/50/75/100
// clients, IFTTT dataset (GIN) and heterogeneous dataset (MAGNN), alpha=1.
//
// Paper: third-quartile accuracy stays >= ~0.86 as clients grow; spread
// widens at 100 clients because per-client data shrinks.

#include <cstring>

#include "bench_common.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"
#include "gnn/trainer.h"
#include "ml/metrics.h"

using namespace fexiot;
using namespace fexiot::bench;

namespace {

// Current resident set size from /proc/self/status (0 if unavailable).
size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  size_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

void RunDataset(const char* name, const CorpusOptions& copt, GnnType type,
                const std::vector<int>& client_counts) {
  std::printf("\n--- %s dataset (%s) ---\n", name, GnnTypeName(type));
  TablePrinter table({"clients", "min", "q1", "median", "q3", "max"});
  for (int clients : client_counts) {
    Rng rng(9000 + static_cast<uint64_t>(clients));
    // Dataset size fixed (the paper's point: more clients = less data
    // per client).
    const int total = Scaled(900, 400);
    FederatedCorpus corpus = BuildClusteredFederatedCorpus(
        copt, total, clients, /*num_clusters=*/4, /*alpha=*/1.0,
        /*profile_strength=*/0.7, &rng);

    GnnConfig gc;
    gc.type = type;
    gc.hidden_dim = 24;
    gc.embedding_dim = 24;
    FlConfig fc;
    fc.num_rounds = Scaled(8, 6);
    fc.local.epochs = 2;
    fc.local.learning_rate = 0.02;
    fc.local.margin = 3.0;
    fc.local.pairs_per_sample = 2.0;
    fc.min_cluster_size = std::max(4, clients / 6);

    FederatedSimulator sim(gc, fc);
    sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
    const FlResult res = sim.Run(FlAlgorithm::kFexiot).value();
    std::vector<double> accs;
    for (const auto& m : res.client_metrics) accs.push_back(m.accuracy);
    const BoxStats box = ComputeBoxStats(accs);
    table.AddRow({std::to_string(clients), Fmt(box.min), Fmt(box.q1),
                  Fmt(box.median), Fmt(box.q3), Fmt(box.max)});
  }
  table.Print();
}

// Propagation-engine A/B at the largest client count: same corpus and
// seeds under FEXIOT_PROPAGATION=dense vs sparse, reporting end-to-end
// wall clock, the exact bytes the prepared propagation representations
// hold, and the process RSS delta across setup + run. Accuracies are
// bit-identical by construction (tests/test_sparse.cc), so only the cost
// columns differ.
void RunPropagationModes(const CorpusOptions& copt, int clients) {
  std::printf("\n--- propagation engine A/B (IFTTT, %d clients) ---\n",
              clients);
  TablePrinter table({"mode", "wall s", "prop MiB", "rss delta MiB",
                      "mean acc"});
  for (PropagationMode mode :
       {PropagationMode::kDense, PropagationMode::kSparse}) {
    Rng rng(9000 + static_cast<uint64_t>(clients));
    const int total = Scaled(900, 400);
    FederatedCorpus corpus = BuildClusteredFederatedCorpus(
        copt, total, clients, /*num_clusters=*/4, /*alpha=*/1.0,
        /*profile_strength=*/0.7, &rng);

    GnnConfig gc;
    gc.type = GnnType::kGin;
    gc.hidden_dim = 24;
    gc.embedding_dim = 24;
    gc.propagation = mode;
    FlConfig fc;
    fc.num_rounds = Scaled(8, 6);
    fc.local.epochs = 2;
    fc.local.learning_rate = 0.02;
    fc.local.margin = 3.0;
    fc.local.pairs_per_sample = 2.0;
    fc.min_cluster_size = std::max(4, clients / 6);

    // Exact steady-state propagation footprint across every client graph.
    size_t prop_bytes = 0;
    for (const auto& g : PrepareGraphs(corpus.data.graphs(), gc)) {
      prop_bytes += g.PropagationBytes();
    }

    const size_t rss_before = CurrentRssBytes();
    Stopwatch sw;
    FederatedSimulator sim(gc, fc);
    sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
    const FlResult res = sim.Run(FlAlgorithm::kFexiot).value();
    const double wall = sw.ElapsedSeconds();
    const size_t rss_after = CurrentRssBytes();

    constexpr double kMi = 1024.0 * 1024.0;
    table.AddRow(
        {mode == PropagationMode::kDense ? "dense" : "sparse", Fmt(wall, 2),
         Fmt(static_cast<double>(prop_bytes) / kMi, 2),
         Fmt(static_cast<double>(rss_after) / kMi -
                 static_cast<double>(rss_before) / kMi,
             1),
         Fmt(res.mean.accuracy)});
  }
  table.Print();
}

}  // namespace

int main() {
  PrintHeader("Figure 5", "FexIoT accuracy distribution vs client count");

  // Client counts scale down for the smoke budget; FEXIOT_SCALE>=2
  // restores the paper's 25..100 sweep.
  std::vector<int> counts;
  if (Scale() >= 2.0) {
    counts = {25, 50, 75, 100};
  } else {
    counts = {10, 20, 30, 40};
  }

  CorpusOptions ifttt;
  ifttt.platforms = {Platform::kIfttt};
  ifttt.min_nodes = 4;
  ifttt.max_nodes = 20;
  ifttt.vulnerable_fraction = 0.3;
  RunDataset("IFTTT", ifttt, GnnType::kGin, counts);

  CorpusOptions hetero;
  hetero.platforms = {Platform::kSmartThings, Platform::kHomeAssistant,
                      Platform::kIfttt, Platform::kGoogleAssistant,
                      Platform::kAlexa};
  hetero.min_nodes = 4;
  hetero.max_nodes = 20;
  hetero.vulnerable_fraction = 0.3;
  RunDataset("heterogeneous", hetero, GnnType::kMagnn, counts);

  RunPropagationModes(ifttt, counts.back());

  std::printf(
      "\nPaper reference: Q3 accuracies 0.869/0.879/0.882/0.873 for\n"
      "25/50/75/100 clients (IFTTT). Shape check: the median/Q3 stay high\n"
      "as clients increase while min-max spread widens (fixed dataset\n"
      "split over more clients).\n");
  return 0;
}
