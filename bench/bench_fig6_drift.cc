// Figure 6 + drifting-pattern evaluation: k-means clustering of learned
// graph representations (t-SNE projected) and MAD-based drifting-sample
// detection on unlabeled data.
//
// Paper: 1,500 sampled representations form separable clusters (6
// vulnerability types + normal); 63 / 104 potential drifting samples were
// found in the IFTTT / heterogeneous unlabeled sets and turned out to be
// three new vulnerability patterns.

#include <map>

#include "bench_common.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "ml/kmeans.h"
#include "ml/mad.h"
#include "ml/tsne.h"

using namespace fexiot;
using namespace fexiot::bench;

int main() {
  PrintHeader("Figure 6", "representation clustering and drift detection");

  Rng rng(606);
  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 20;
  copt.vulnerable_fraction = 0.5;
  GraphCorpusGenerator gen(copt, &rng);

  // Train the contrastive representation on a labeled corpus.
  const int train_n = Scaled(700, 300);
  GraphDataset train(gen.GenerateDataset(train_n));
  GnnConfig gc;
  gc.type = GnnType::kGin;
  gc.hidden_dim = 24;
  gc.embedding_dim = 24;
  GnnModel model(gc);
  TrainConfig tc;
  tc.epochs = Scaled(20, 12);
  tc.learning_rate = 0.02;
  tc.margin = 3.0;
  tc.pairs_per_sample = 2.0;
  GnnTrainer trainer(&model, tc);
  const auto prepared = PrepareDataset(train, gc);
  Stopwatch watch;
  trainer.Train(prepared, &rng);
  std::printf("trained representation on %d graphs in %.1fs\n", train_n,
              watch.ElapsedSeconds());

  // Sample representations (paper: 1,500) and cluster with k-means after
  // t-SNE; report per-vulnerability-type cluster purity.
  const int sample_n = Scaled(400, 150);
  GraphDataset sample(gen.GenerateDataset(sample_n));
  const auto prepared_sample = PrepareDataset(sample, gc);
  const Matrix emb = trainer.Embed(prepared_sample);

  watch.Restart();
  Tsne::Options topt;
  topt.iterations = Scaled(250, 150);
  const Matrix projected = Tsne(topt).FitTransform(emb);
  std::printf("t-SNE projected %d representations to 2-D in %.1fs\n",
              sample_n, watch.ElapsedSeconds());

  KMeans::Options kopt;
  kopt.k = 7;  // six vulnerability types + normal
  const KMeans::Result km = KMeans(kopt).Fit(projected);

  // Cluster purity per true category (0 = normal, 1..6 = vuln types).
  std::map<int, std::map<int, int>> cluster_counts;
  for (size_t i = 0; i < sample.size(); ++i) {
    const int category = sample.graph(i).label() == 0
                             ? 0
                             : static_cast<int>(sample.graph(i).vulnerability());
    cluster_counts[km.assignment[i]][category] += 1;
  }
  TablePrinter table({"kmeans_cluster", "size", "dominant_category",
                      "purity"});
  double macro_purity = 0.0;
  for (const auto& [cluster, counts] : cluster_counts) {
    int total = 0, best = 0, best_cat = 0;
    for (const auto& [cat, n] : counts) {
      total += n;
      if (n > best) {
        best = n;
        best_cat = cat;
      }
    }
    const double purity = static_cast<double>(best) / total;
    macro_purity += purity;
    const std::string cat_name =
        best_cat == 0 ? "normal"
                      : VulnerabilityTypeName(
                            static_cast<VulnerabilityType>(best_cat));
    table.AddRow({std::to_string(cluster), std::to_string(total), cat_name,
                  Fmt(purity, 2)});
  }
  macro_purity /= static_cast<double>(cluster_counts.size());
  table.Print();
  std::printf("macro purity over %zu k-means clusters: %.2f\n",
              cluster_counts.size(), macro_purity);

  // Drift detection: MAD statistics on training embeddings; unlabeled set
  // mixes ordinary graphs with planted novel patterns.
  MadDriftDetector drift;
  drift.Fit(trainer.Embed(prepared), train.Labels());

  const int unlabeled_n = Scaled(300, 120);
  const int planted_drift = unlabeled_n / 10;
  std::vector<InteractionGraph> unlabeled =
      gen.GenerateDataset(unlabeled_n - planted_drift);
  const size_t first_drift = unlabeled.size();
  for (int i = 0; i < planted_drift; ++i) {
    unlabeled.push_back(gen.GenerateDrifting());
  }
  const auto prepared_unlabeled = PrepareGraphs(unlabeled, gc);

  int flagged = 0, flagged_true_drift = 0;
  for (size_t i = 0; i < prepared_unlabeled.size(); ++i) {
    const std::vector<double> z =
        model.Forward(prepared_unlabeled[i], nullptr);
    if (drift.IsDrifting(z)) {
      ++flagged;
      if (i >= first_drift) ++flagged_true_drift;
    }
  }
  std::printf(
      "\nMAD drift filter (threshold %.0f): flagged %d of %d unlabeled "
      "graphs;\n%d of the %d planted novel-pattern graphs were caught "
      "(recall %.2f).\n",
      3.0, flagged, unlabeled_n, flagged_true_drift, planted_drift,
      static_cast<double>(flagged_true_drift) / planted_drift);
  std::printf(
      "\nPaper reference: 63 / 104 potential drifting samples flagged in\n"
      "the IFTTT / heterogeneous unlabeled sets (~0.5-1%% of samples),\n"
      "manually confirmed as three new vulnerability patterns. Shape\n"
      "check: known-pattern clusters are separable (high purity) and the\n"
      "MAD filter flags a small fraction dominated by the planted novel\n"
      "patterns.\n");
  return 0;
}
