// Ablation A3: contrastive representation objective (Eq. 2, stable
// Hadsell form) vs plain supervised training of the embedding, and the
// Eq. 2 literal squared-margin form (which is prone to representation
// collapse — the reason the stable form is the default).

#include <cmath>

#include "bench_common.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"

using namespace fexiot;
using namespace fexiot::bench;

int main() {
  PrintHeader("Ablation A3", "contrastive loss variants vs supervised");

  Rng rng(333);
  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 20;
  copt.vulnerable_fraction = 0.3;
  GraphCorpusGenerator gen(copt, &rng);
  GraphDataset all(gen.GenerateDataset(Scaled(700, 350)));
  GraphDataset train, test;
  all.Split(0.8, &rng, &train, &test);

  GnnConfig gc;
  gc.type = GnnType::kGin;
  gc.hidden_dim = 24;
  gc.embedding_dim = 24;

  struct Variant {
    const char* name;
    bool contrastive;
    ContrastiveForm form;
  };
  const Variant variants[] = {
      {"contrastive (Hadsell margin)", true, ContrastiveForm::kHadsellMargin},
      {"contrastive (Eq.2 literal)", true, ContrastiveForm::kSquaredMargin},
      {"supervised (logistic head)", false, ContrastiveForm::kHadsellMargin},
  };

  TablePrinter table({"objective", "test_acc", "test_f1", "final_loss",
                      "emb_norm"});
  for (const Variant& v : variants) {
    GnnModel model(gc);
    TrainConfig tc;
    tc.epochs = Scaled(20, 14);
    tc.learning_rate = 0.02;
    tc.margin = 3.0;
    tc.pairs_per_sample = 2.0;
    tc.contrastive = v.contrastive;
    tc.form = v.form;
    GnnTrainer trainer(&model, tc);
    const auto ptrain = PrepareDataset(train, gc);
    const auto ptest = PrepareDataset(test, gc);
    Rng trng(11);
    const double loss = trainer.Train(ptrain, &trng);
    const ClassificationMetrics m = trainer.Evaluate(ptrain, ptest);
    const Matrix emb = trainer.Embed(ptrain);
    double norm = 0.0;
    for (size_t i = 0; i < emb.rows(); ++i) {
      double s = 0.0;
      for (size_t c = 0; c < emb.cols(); ++c) s += emb.At(i, c) * emb.At(i, c);
      norm += std::sqrt(s);
    }
    norm /= static_cast<double>(emb.rows());
    table.AddRow({v.name, Fmt(m.accuracy), Fmt(m.f1), Fmt(loss),
                  Fmt(norm, 2)});
  }
  table.Print();
  std::printf(
      "\nShape check: the stable contrastive form performs on par with\n"
      "supervised training; the Eq. 2 literal form collapses the\n"
      "embedding (emb_norm -> ~0) and loses accuracy, which is why the\n"
      "library defaults to the Hadsell margin.\n");
  return 0;
}
