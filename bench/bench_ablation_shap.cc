// Ablation A2: SHAP-valued reward vs raw prediction reward inside the
// Monte Carlo beam search (design choice of Section III-C: "directly
// using the prediction scores to measure the risk of subgraphs is
// problematic"). Measured by ground-truth witness recovery and fidelity.

#include <memory>
#include <set>

#include "bench_common.h"
#include "explain/explainer.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "ml/linear_model.h"
#include "ml/metrics.h"

using namespace fexiot;
using namespace fexiot::bench;

int main() {
  PrintHeader("Ablation A2", "SHAP reward vs prediction reward in MCBS");

  Rng rng(222);
  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 6;
  copt.max_nodes = 14;
  copt.vulnerable_fraction = 0.5;
  GraphCorpusGenerator gen(copt, &rng);
  GraphDataset train(gen.GenerateDataset(Scaled(300, 150)));

  GnnConfig gc;
  gc.type = GnnType::kGin;
  gc.hidden_dim = 24;
  gc.embedding_dim = 24;
  GnnModel model(gc);
  TrainConfig tc;
  tc.epochs = Scaled(18, 12);
  tc.learning_rate = 0.02;
  tc.margin = 3.0;
  tc.pairs_per_sample = 2.0;
  GnnTrainer trainer(&model, tc);
  const auto prepared = PrepareDataset(train, gc);
  trainer.Train(prepared, &rng);
  SgdClassifier head;
  std::vector<int> y = train.Labels();
  (void)head.Fit(trainer.Embed(prepared), y);

  const int cases_n = Scaled(10, 6);
  std::vector<InteractionGraph> cases;
  for (int i = 0; i < cases_n; ++i) {
    cases.push_back(gen.GenerateVulnerable(gen.SampleVulnerabilityType()));
  }

  SearchOptions sopt;
  sopt.iterations = Scaled(6, 4);
  sopt.beam_width = 3;
  sopt.max_subgraph_nodes = 4;
  sopt.shap_samples = 12;

  TablePrinter table({"reward", "witness_recall", "fidelity", "sparsity"});
  std::vector<std::unique_ptr<Explainer>> variants;
  variants.push_back(std::make_unique<ShapMcbsExplainer>(sopt));
  variants.push_back(std::make_unique<MctsGnnExplainer>(sopt));
  const char* names[] = {"kernel SHAP (FexIoT)", "raw prediction"};
  for (size_t v = 0; v < variants.size(); ++v) {
    double recall = 0.0, fidelity = 0.0, sparsity = 0.0;
    for (const auto& g : cases) {
      GnnGraphScorer scorer(&model, &head, &g);
      const ExplanationResult res = variants[v]->Explain(scorer, &rng);
      const std::set<int> witness(g.witness().begin(), g.witness().end());
      int covered = 0;
      for (int node : res.subgraph_nodes) covered += witness.count(node);
      recall += witness.empty()
                    ? 0.0
                    : static_cast<double>(covered) / witness.size();
      const FidelitySparsity fs =
          EvaluateExplanation(scorer, res.subgraph_nodes);
      fidelity += fs.fidelity;
      sparsity += fs.sparsity;
    }
    table.AddRow({names[v], Fmt(recall / cases_n), Fmt(fidelity / cases_n),
                  Fmt(sparsity / cases_n)});
  }
  table.Print();
  std::printf(
      "\nShape check: the SHAP reward recovers more of the ground-truth\n"
      "witness chain at equal sparsity — the prediction score alone\n"
      "cannot credit nodes whose effect only shows in coalition context.\n");
  return 0;
}
