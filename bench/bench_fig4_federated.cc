// Figure 4: federated vulnerability detection under Dirichlet label skew.
//
// Paper: 10 clients, IFTTT dataset, alpha in {0.1, 1, 2, 5, 10}; for both
// GIN and GCN the ordering is FexIoT > GCFL+ > FMTL > FedAvg > Client,
// with FexIoT ~0.89-0.92 accuracy, FedAvg ~0.72-0.77, Client ~0.54-0.62,
// and accuracy increasing with alpha for every method.

#include "bench_common.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"

using namespace fexiot;
using namespace fexiot::bench;

int main() {
  PrintHeader("Figure 4", "federated GNN accuracy across Dirichlet alpha");

  const int total_graphs = Scaled(700, 300);
  const int num_clients = 10;
  const int num_clusters = 3;
  const int rounds = Scaled(10, 8);
  const std::vector<double> alphas = {0.1, 1.0, 2.0, 5.0, 10.0};
  const std::vector<FlAlgorithm> algorithms = {
      FlAlgorithm::kFexiot, FlAlgorithm::kGcfl, FlAlgorithm::kFmtl,
      FlAlgorithm::kFedAvg, FlAlgorithm::kLocalOnly};

  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 20;
  copt.vulnerable_fraction = 0.3;

  for (GnnType type : {GnnType::kGin, GnnType::kGcn}) {
    std::printf("\n--- %s ---\n", GnnTypeName(type));
    TablePrinter table({"alpha", "FexIoT", "GCFL+", "FMTL", "FedAvg",
                        "Client", "FexIoT_f1", "FedAvg_f1"});
    for (double alpha : alphas) {
      Rng rng(7000 + static_cast<uint64_t>(alpha * 10));
      FederatedCorpus corpus = BuildClusteredFederatedCorpus(
          copt, total_graphs, num_clients, num_clusters, alpha,
          /*profile_strength=*/0.7, &rng);

      GnnConfig gc;
      gc.type = type;
      gc.hidden_dim = 24;
      gc.embedding_dim = 24;

      FlConfig fc;
      fc.num_rounds = rounds;
      fc.local.epochs = 2;
      // GCN's normalized propagation produces smaller gradients than
      // GIN's sum aggregation; it needs a larger step size.
      fc.local.learning_rate = type == GnnType::kGcn ? 0.1 : 0.02;
      fc.local.margin = 3.0;
      fc.local.pairs_per_sample = 2.0;

      std::vector<std::string> row = {Fmt(alpha, 1)};
      double fexiot_f1 = 0.0, fedavg_f1 = 0.0;
      for (FlAlgorithm alg : algorithms) {
        FederatedSimulator sim(gc, fc);
        sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
        const FlResult res = sim.Run(alg).value();
        row.push_back(Fmt(res.mean.accuracy));
        if (alg == FlAlgorithm::kFexiot) fexiot_f1 = res.mean.f1;
        if (alg == FlAlgorithm::kFedAvg) fedavg_f1 = res.mean.f1;
      }
      row.push_back(Fmt(fexiot_f1));
      row.push_back(Fmt(fedavg_f1));
      table.AddRow(row);
    }
    table.Print();
  }

  std::printf(
      "\nPaper reference (GIN accuracy): FexIoT 0.891@0.1 -> 0.919@10,\n"
      "GCFL+ 0.852 -> 0.889, FedAvg 0.717 -> 0.768, Client 0.542 -> 0.622.\n"
      "Shape check: accuracy rises with alpha for every method; the\n"
      "clustered methods dominate FedAvg which dominates local-only\n"
      "training at moderate/large alpha. (At alpha=0.1 the extreme label\n"
      "skew makes cluster discovery noisy at this scale; see\n"
      "EXPERIMENTS.md.)\n");
  return 0;
}
