// Federated runtime trajectory bench: sweeps straggler slowdown and
// uplink drop rate across the five server round policies (synchronous,
// deadline with over-selection, timeout+retry, async, semi-async) and
// reports delivery fraction, simulated round time, retransmission
// overhead, time-to-target-accuracy, and the staleness profile of the
// async policies. Prints a table and writes a JSON perf record
// (BENCH_runtime.json by default, or the path in argv[1]), same shape
// as BENCH_corpus.json. Record format v2: every v1 field is unchanged;
// v2 adds version, target_accuracy, time_to_acc_s, mean_staleness, and
// staleness_hist.

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"

namespace fexiot {
namespace bench {
namespace {

// Mean client accuracy the time-to-accuracy metric targets; reachable by
// every policy mid-run on this corpus (final accuracies land ~0.73-0.77).
constexpr double kTargetAccuracy = 0.70;

struct RuntimeRecord {
  std::string policy;
  double loss_prob = 0.0;
  double slowdown = 1.0;
  int rounds = 0;
  double mean_participants = 0.0;
  double mean_delivered = 0.0;
  double sim_time_s = 0.0;
  double retransmit_kb = 0.0;
  double comm_mb = 0.0;
  double mean_accuracy = 0.0;
  double wall_seconds = 0.0;
  /// Simulated seconds until mean accuracy first reached kTargetAccuracy
  /// (-1 when the run never got there).
  double time_to_acc_s = -1.0;
  /// Mean staleness over every applied update (0 for round-based policies).
  double mean_staleness = 0.0;
  /// Per-update staleness histogram (empty for round-based policies).
  std::vector<uint64_t> staleness_hist;
  /// Real serialized bytes on the wire (MessageWireBytes-priced, every
  /// sent copy incl. retransmits), split by direction.
  double uplink_wire_mb = 0.0;
  double downlink_wire_mb = 0.0;
};

/// One point of the wire-codec sweep (BENCH_wire.json).
struct WireRecord {
  std::string codec;
  double loss_prob = 0.0;
  double slowdown = 1.0;
  double uplink_wire_mb = 0.0;
  double downlink_wire_mb = 0.0;
  double comm_mb = 0.0;
  /// fp64 uplink bytes / this codec's uplink bytes (same scenario).
  double uplink_ratio_vs_fp64 = 1.0;
  double mean_accuracy = 0.0;
  /// fp64 accuracy minus this codec's (positive = quantization cost).
  double acc_delta_vs_fp64 = 0.0;
  double sim_time_s = 0.0;
  double time_to_acc_s = -1.0;
  double wall_seconds = 0.0;
};

RuntimeConfig PolicyConfig(RoundPolicy policy, double loss_prob,
                           double slowdown, int num_clients) {
  RuntimeConfig rc;
  rc.policy = policy;
  rc.train_seconds_per_graph = 0.02;
  rc.default_down.latency_s = 0.05;
  rc.default_down.bandwidth_bps = 2e6;
  rc.default_up.latency_s = 0.1;
  rc.default_up.bandwidth_bps = 1e6;
  rc.default_up.jitter_s = 0.02;
  rc.default_up.loss_prob = loss_prob;
  if (policy == RoundPolicy::kDeadline) {
    // Tight enough that a 4x straggler misses it; over-select to absorb.
    rc.deadline_s = 1.2;
    rc.target_fraction = 0.8;
    rc.over_selection = 1.25;
  } else if (policy == RoundPolicy::kTimeoutRetry) {
    rc.retry_timeout_s = 1.0;
    rc.max_retries = 6;
  } else if (policy == RoundPolicy::kAsync) {
    rc.target_fraction = 0.8;
    rc.async_alpha0 = 0.6;
    rc.async_staleness_exponent = 0.5;
  } else if (policy == RoundPolicy::kSemiAsync) {
    rc.target_fraction = 0.8;
    rc.semi_async_tiers = 3;
    rc.speed_ewma_beta = 0.5;
  }
  if (slowdown > 1.0) {
    // Straggler cohort: every 4th client computes slowdown-times slower.
    rc.faults.resize(num_clients);
    for (int c = 3; c < num_clients; c += 4) rc.faults[c].slowdown = slowdown;
  }
  return rc;
}

RuntimeRecord RunOne(const FederatedCorpus& corpus, const GnnConfig& gc,
                     FlConfig fc, RoundPolicy policy, double loss_prob,
                     double slowdown, WireCodec codec = WireCodec::kFp64) {
  fc.runtime = PolicyConfig(policy, loss_prob, slowdown,
                            static_cast<int>(corpus.partition.indices.size()));
  fc.runtime.wire_codec = codec;
  fc.eval_each_round = true;  // time-to-accuracy curves
  RuntimeRecord rec;
  rec.policy = RoundPolicyName(policy);
  rec.loss_prob = loss_prob;
  rec.slowdown = slowdown;
  rec.rounds = fc.num_rounds;
  Stopwatch sw;
  FederatedSimulator sim(gc, fc);
  sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
  const FlResult res = sim.Run(FlAlgorithm::kFexiot).value();
  rec.wall_seconds = sw.ElapsedSeconds();
  double staleness_sum = 0.0;
  uint64_t staleness_n = 0;
  for (const FlRoundStats& r : res.rounds) {
    rec.mean_participants += r.participants;
    rec.mean_delivered += r.delivered;
    if (rec.time_to_acc_s < 0.0 && r.mean_accuracy >= kTargetAccuracy) {
      rec.time_to_acc_s = r.sim_time_s;
    }
  }
  for (size_t i = 0; i < res.staleness_hist.size(); ++i) {
    staleness_sum += static_cast<double>(i) *
                     static_cast<double>(res.staleness_hist[i]);
    staleness_n += res.staleness_hist[i];
  }
  if (staleness_n > 0) {
    rec.mean_staleness = staleness_sum / static_cast<double>(staleness_n);
  }
  rec.staleness_hist = res.staleness_hist;
  rec.mean_participants /= res.rounds.size();
  rec.mean_delivered /= res.rounds.size();
  rec.sim_time_s = res.total_sim_time_s;
  rec.retransmit_kb = res.total_retransmit_bytes / 1024.0;
  rec.comm_mb = res.total_comm_bytes / (1024.0 * 1024.0);
  rec.mean_accuracy = res.mean.accuracy;
  rec.uplink_wire_mb = res.total_uplink_wire_bytes / (1024.0 * 1024.0);
  rec.downlink_wire_mb = res.total_downlink_wire_bytes / (1024.0 * 1024.0);
  return rec;
}

bool WriteWireJson(const std::string& path,
                   const std::vector<WireRecord>& records) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"wire\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f, "  \"sweep\": \"wire_codec x (loss_prob, straggler)\",\n");
  std::fprintf(f, "  \"policy\": \"timeout_retry\",\n");
  std::fprintf(f, "  \"target_accuracy\": %.2f,\n", kTargetAccuracy);
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const WireRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"codec\": \"%s\", \"loss_prob\": %.2f, \"slowdown\": %.1f, "
        "\"uplink_wire_mb\": %.3f, \"downlink_wire_mb\": %.3f, "
        "\"comm_mb\": %.3f, \"uplink_ratio_vs_fp64\": %.3f, "
        "\"mean_accuracy\": %.4f, \"acc_delta_vs_fp64\": %.4f, "
        "\"sim_time_s\": %.3f, \"time_to_acc_s\": %.3f, "
        "\"wall_seconds\": %.3f}%s\n",
        r.codec.c_str(), r.loss_prob, r.slowdown, r.uplink_wire_mb,
        r.downlink_wire_mb, r.comm_mb, r.uplink_ratio_vs_fp64,
        r.mean_accuracy, r.acc_delta_vs_fp64, r.sim_time_s, r.time_to_acc_s,
        r.wall_seconds, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

bool WriteJson(const std::string& path,
               const std::vector<RuntimeRecord>& records) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"runtime\",\n");
  std::fprintf(f, "  \"version\": 2,\n");
  std::fprintf(f, "  \"sweep\": \"policy x loss_prob x straggler\",\n");
  std::fprintf(f, "  \"target_accuracy\": %.2f,\n", kTargetAccuracy);
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const RuntimeRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"policy\": \"%s\", \"loss_prob\": %.2f, \"slowdown\": %.1f, "
        "\"rounds\": %d, \"mean_participants\": %.2f, "
        "\"mean_delivered\": %.2f, \"sim_time_s\": %.3f, "
        "\"retransmit_kb\": %.1f, \"comm_mb\": %.3f, "
        "\"mean_accuracy\": %.4f, \"wall_seconds\": %.3f, "
        "\"time_to_acc_s\": %.3f, \"mean_staleness\": %.3f, "
        "\"staleness_hist\": [",
        r.policy.c_str(), r.loss_prob, r.slowdown, r.rounds,
        r.mean_participants, r.mean_delivered, r.sim_time_s, r.retransmit_kb,
        r.comm_mb, r.mean_accuracy, r.wall_seconds, r.time_to_acc_s,
        r.mean_staleness);
    for (size_t b = 0; b < r.staleness_hist.size(); ++b) {
      std::fprintf(f, "%s%llu", b > 0 ? ", " : "",
                   static_cast<unsigned long long>(r.staleness_hist[b]));
    }
    std::fprintf(f, "]}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace fexiot

int main(int argc, char** argv) {
  using namespace fexiot;
  using namespace fexiot::bench;
  PrintHeader("RUNTIME",
              "round policies under stragglers and lossy uplinks");

  const int clients = Scaled(12, 8);
  Rng rng(20260806);
  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 3;
  copt.max_nodes = 10;
  copt.vulnerable_fraction = 0.35;
  const FederatedCorpus corpus = BuildClusteredFederatedCorpus(
      copt, Scaled(240, 160), clients, 2, /*alpha=*/1.0,
      /*profile_strength=*/0.6, &rng);

  GnnConfig gc;
  gc.type = GnnType::kGin;
  gc.hidden_dim = 12;
  gc.embedding_dim = 12;
  FlConfig fc;
  fc.num_rounds = Scaled(8, 5);
  fc.local.epochs = 1;
  fc.local.learning_rate = 0.02;
  fc.local.margin = 3.0;
  fc.min_cluster_size = 3;

  TablePrinter table({"policy", "loss", "straggler", "deliv/part", "sim_s",
                      "t_acc_s", "stale", "retx_KB", "comm_MB", "acc"});
  std::vector<RuntimeRecord> records;
  for (RoundPolicy policy :
       {RoundPolicy::kSynchronous, RoundPolicy::kDeadline,
        RoundPolicy::kTimeoutRetry, RoundPolicy::kAsync,
        RoundPolicy::kSemiAsync}) {
    for (double loss : {0.0, 0.15, 0.35}) {
      for (double slowdown : {1.0, 4.0}) {
        const RuntimeRecord rec =
            RunOne(corpus, gc, fc, policy, loss, slowdown);
        table.AddRow({rec.policy, Fmt(rec.loss_prob, 2),
                      Fmt(rec.slowdown, 1),
                      Fmt(rec.mean_delivered, 1) + "/" +
                          Fmt(rec.mean_participants, 1),
                      Fmt(rec.sim_time_s, 1),
                      rec.time_to_acc_s < 0.0 ? "-" : Fmt(rec.time_to_acc_s, 1),
                      Fmt(rec.mean_staleness, 2), Fmt(rec.retransmit_kb, 1),
                      Fmt(rec.comm_mb, 2), Fmt(rec.mean_accuracy, 3)});
        records.push_back(rec);
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Synchronous waits for every surviving upload (losses shrink the\n"
      "aggregate); deadline trades stragglers' updates for bounded round\n"
      "time via over-selection; timeout+retry recovers every loss at the\n"
      "cost of retransmitted bytes and a longer simulated round. The\n"
      "async policies close each wave at a 0.8 quorum and price lateness\n"
      "with staleness-decayed mixing weights instead of waiting: under\n"
      "loss + stragglers they reach the target accuracy in a fraction of\n"
      "timeout-retry's simulated time (t_acc_s column).\n");

  if (!WriteJson(argc > 1 ? argv[1] : "BENCH_runtime.json", records)) {
    return 1;
  }

  // Wire-codec sweep: the same federation under timeout-retry, per payload
  // codec, on a clean network and on the acceptance stress grid (35% loss
  // + 4x straggler cohort). fp64 is the bit-exact baseline each scenario's
  // ratio/delta columns are measured against.
  PrintHeader("WIRE", "quantized update codecs, priced end-to-end");
  TablePrinter wire_table({"codec", "loss", "straggler", "up_MB", "down_MB",
                           "up_ratio", "sim_s", "t_acc_s", "acc",
                           "acc_delta"});
  std::vector<WireRecord> wire_records;
  for (const auto& [loss, slowdown] :
       std::vector<std::pair<double, double>>{{0.0, 1.0}, {0.35, 4.0}}) {
    WireRecord fp64_rec;
    for (WireCodec codec : {WireCodec::kFp64, WireCodec::kFp32,
                            WireCodec::kBf16, WireCodec::kInt8}) {
      const RuntimeRecord run = RunOne(corpus, gc, fc,
                                       RoundPolicy::kTimeoutRetry, loss,
                                       slowdown, codec);
      WireRecord rec;
      rec.codec = WireCodecName(codec);
      rec.loss_prob = loss;
      rec.slowdown = slowdown;
      rec.uplink_wire_mb = run.uplink_wire_mb;
      rec.downlink_wire_mb = run.downlink_wire_mb;
      rec.comm_mb = run.comm_mb;
      rec.mean_accuracy = run.mean_accuracy;
      rec.sim_time_s = run.sim_time_s;
      rec.time_to_acc_s = run.time_to_acc_s;
      rec.wall_seconds = run.wall_seconds;
      if (codec == WireCodec::kFp64) {
        fp64_rec = rec;
      } else {
        rec.uplink_ratio_vs_fp64 = fp64_rec.uplink_wire_mb /
                                   rec.uplink_wire_mb;
        rec.acc_delta_vs_fp64 = fp64_rec.mean_accuracy - rec.mean_accuracy;
      }
      wire_table.AddRow(
          {rec.codec, Fmt(rec.loss_prob, 2), Fmt(rec.slowdown, 1),
           Fmt(rec.uplink_wire_mb, 2), Fmt(rec.downlink_wire_mb, 2),
           Fmt(rec.uplink_ratio_vs_fp64, 2), Fmt(rec.sim_time_s, 1),
           rec.time_to_acc_s < 0.0 ? "-" : Fmt(rec.time_to_acc_s, 1),
           Fmt(rec.mean_accuracy, 3), Fmt(rec.acc_delta_vs_fp64, 4)});
      wire_records.push_back(rec);
    }
  }
  std::printf("%s\n", wire_table.ToString().c_str());
  std::printf(
      "int8 moves ~8x fewer uplink bytes per round, so under loss and\n"
      "stragglers every retransmission and straggling transfer is cheaper\n"
      "and the run reaches the target accuracy in less simulated time;\n"
      "the per-tensor affine quantizer keeps the accuracy cost within\n"
      "noise of the fp64 baseline (acc_delta column).\n");
  return WriteWireJson(argc > 2 ? argv[2] : "BENCH_wire.json", wire_records)
             ? 0
             : 1;
}
