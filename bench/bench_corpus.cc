// Corpus generation trajectory bench: stream-split parallel
// GenerateDataset throughput (graphs/sec) at 1/2/N pool threads, with a
// bit-exact content fingerprint cross-checked against the serial run.
// Prints a table and writes a JSON perf record (BENCH_corpus.json by
// default, or the path in argv[1]), same shape as BENCH_kernels.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "graph/corpus.h"

namespace fexiot {
namespace bench {
namespace {

constexpr uint64_t kSeed = 20260806ULL;
constexpr int kGraphs = 400;

struct CorpusRecord {
  size_t threads = 0;
  int graphs = 0;
  double seconds = 0.0;
  double graphs_per_sec = 0.0;
  double speedup = 0.0;       // vs the threads=1 run
  bool bit_identical = false; // fingerprint matches the threads=1 run
};

CorpusOptions BenchOptions() {
  CorpusOptions opt;
  opt.platforms = {Platform::kSmartThings, Platform::kHomeAssistant,
                   Platform::kIfttt, Platform::kGoogleAssistant,
                   Platform::kAlexa};
  opt.min_nodes = 3;
  opt.max_nodes = 12;
  opt.vulnerable_fraction = 0.3;
  return opt;
}

CorpusRecord BenchThreads(size_t threads, uint64_t* fingerprint) {
  parallel::SetThreads(threads);
  CorpusRecord rec;
  rec.threads = parallel::NumThreads();
  rec.graphs = kGraphs;
  std::vector<double> samples;
  for (int rep = 0; rep < 3; ++rep) {
    Rng rng(kSeed);
    GraphCorpusGenerator gen(BenchOptions(), &rng);
    Stopwatch sw;
    const auto graphs = gen.GenerateDataset(kGraphs);
    samples.push_back(sw.ElapsedSeconds());
    *fingerprint = CorpusContentFingerprint(graphs);
  }
  std::sort(samples.begin(), samples.end());
  rec.seconds = samples[samples.size() / 2];
  rec.graphs_per_sec = kGraphs / rec.seconds;
  parallel::SetThreads(0);
  return rec;
}

bool WriteJson(const std::string& path,
               const std::vector<CorpusRecord>& records) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"corpus\",\n");
  std::fprintf(f, "  \"generator\": \"stream-split-parallel\",\n");
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const CorpusRecord& r = records[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"graphs\": %d, "
                 "\"seconds\": %.6f, \"graphs_per_sec\": %.3f, "
                 "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 r.threads, r.graphs, r.seconds, r.graphs_per_sec, r.speedup,
                 r.bit_identical ? "true" : "false",
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace fexiot

int main(int argc, char** argv) {
  using namespace fexiot;
  using namespace fexiot::bench;
  PrintHeader("CORPUS",
              "stream-split parallel GenerateDataset, serial vs parallel");

  std::vector<size_t> thread_counts = {1, 2, 8};
  std::vector<CorpusRecord> records;
  TablePrinter table({"threads", "seconds", "graphs/s", "speedup", "bit-id"});
  uint64_t serial_fp = 0;
  for (size_t t : thread_counts) {
    uint64_t fp = 0;
    CorpusRecord rec = BenchThreads(t, &fp);
    if (records.empty()) serial_fp = fp;
    rec.speedup = records.empty()
                      ? 1.0
                      : records.front().seconds / rec.seconds;
    rec.bit_identical = fp == serial_fp;
    table.AddRow({std::to_string(rec.threads), Fmt(rec.seconds, 3),
                  Fmt(rec.graphs_per_sec, 1), Fmt(rec.speedup, 2),
                  rec.bit_identical ? "yes" : "NO"});
    records.push_back(rec);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("host cpus: %u\n", std::thread::hardware_concurrency());

  bool ok = WriteJson(argc > 1 ? argv[1] : "BENCH_corpus.json", records);
  for (const auto& r : records) ok = ok && r.bit_identical;
  return ok ? 0 : 1;
}
