#pragma once

// Shared utilities for the FexIoT benchmark harness. Every bench binary
// regenerates one table or figure of the paper and prints paper-reported
// values next to measured values. Absolute numbers differ (the substrate
// is a simulator); the reproduction target is the SHAPE: orderings,
// approximate factors, crossovers.
//
// Scale: benches default to a laptop-minute budget. Set FEXIOT_SCALE=<k>
// (e.g. 4) to multiply dataset sizes / rounds toward paper scale.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace fexiot {
namespace bench {

/// Scale multiplier from the FEXIOT_SCALE env var (default 1.0).
inline double Scale() {
  const char* env = std::getenv("FEXIOT_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

/// n scaled, with a floor.
inline int Scaled(int base, int floor_value = 1) {
  const int v = static_cast<int>(base * Scale());
  return v < floor_value ? floor_value : v;
}

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("(scale=%.1f; set FEXIOT_SCALE to enlarge toward paper scale)\n",
              Scale());
  std::printf("================================================================\n");
}

inline std::string Fmt(double v, int precision = 3) {
  return FormatDouble(v, precision);
}

}  // namespace bench
}  // namespace fexiot
