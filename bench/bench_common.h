#pragma once

// Shared utilities for the FexIoT benchmark harness. Every bench binary
// regenerates one table or figure of the paper and prints paper-reported
// values next to measured values. Absolute numbers differ (the substrate
// is a simulator); the reproduction target is the SHAPE: orderings,
// approximate factors, crossovers.
//
// Scale: benches default to a laptop-minute budget. Set FEXIOT_SCALE=<k>
// (e.g. 4) to multiply dataset sizes / rounds toward paper scale.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace fexiot {
namespace bench {

/// Scale multiplier from the FEXIOT_SCALE env var (default 1.0).
inline double Scale() {
  const char* env = std::getenv("FEXIOT_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

/// n scaled, with a floor.
inline int Scaled(int base, int floor_value = 1) {
  const int v = static_cast<int>(base * Scale());
  return v < floor_value ? floor_value : v;
}

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("(scale=%.1f; set FEXIOT_SCALE to enlarge toward paper scale)\n",
              Scale());
  std::printf("================================================================\n");
}

inline std::string Fmt(double v, int precision = 3) {
  return FormatDouble(v, precision);
}

/// \brief Upper median of timing samples: sorted[n/2]. This is the exact
/// historical semantics of the per-bench helpers it replaces, so existing
/// JSON trajectories stay comparable. Requires a non-empty vector.
inline double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// \brief The \p p-th percentile (p in [0, 100]) of \p samples with
/// linear interpolation between closest ranks; 0.0 when empty.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 100.0) return samples.back();
  const double rank =
      p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

/// \brief Wall-clock latency summary of one bench configuration.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
  size_t count = 0;
};

inline LatencySummary Summarize(const std::vector<double>& samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  auto at = [&](double p) {
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
  };
  s.p50 = at(50.0);
  s.p95 = at(95.0);
  s.p99 = at(99.0);
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  return s;
}

}  // namespace bench
}  // namespace fexiot
