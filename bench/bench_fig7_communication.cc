// Figure 7: communication cost of the FL strategies.
//
// Paper: total transferred data for 25/50/100 clients over 60 rounds;
// FedAvg / FMTL / GCFL+ exchange the whole model every round while FexIoT
// exchanges layers progressively, saving ~40.2% vs FedAvg; <40 GB total
// at 100 clients.

#include "bench_common.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"

using namespace fexiot;
using namespace fexiot::bench;

int main() {
  PrintHeader("Figure 7", "communication cost vs number of clients");

  const std::vector<int> client_counts =
      Scale() >= 2.0 ? std::vector<int>{25, 50, 100}
                     : std::vector<int>{10, 20, 40};
  const int rounds = Scaled(12, 10);  // paper: 60

  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 16;
  copt.vulnerable_fraction = 0.3;

  TablePrinter table({"clients", "FedAvg_MB", "FMTL_MB", "GCFL+_MB",
                      "FexIoT_MB", "FexIoT_saving"});
  for (int clients : client_counts) {
    Rng rng(700 + static_cast<uint64_t>(clients));
    FederatedCorpus corpus = BuildClusteredFederatedCorpus(
        copt, Scaled(500, 250), clients, 3, /*alpha=*/1.0,
        /*profile_strength=*/0.7, &rng);

    GnnConfig gc;
    gc.type = GnnType::kGin;
    gc.hidden_dim = 24;
    gc.embedding_dim = 24;
    FlConfig fc;
    fc.num_rounds = rounds;
    fc.local.epochs = 1;
    fc.local.learning_rate = 0.02;
    fc.local.margin = 3.0;
    fc.local.pairs_per_sample = 1.0;
    fc.min_cluster_size = std::max(4, clients / 6);

    std::vector<double> mb;
    for (FlAlgorithm alg :
         {FlAlgorithm::kFedAvg, FlAlgorithm::kFmtl, FlAlgorithm::kGcfl,
          FlAlgorithm::kFexiot}) {
      FederatedSimulator sim(gc, fc);
      sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
      const FlResult res = sim.Run(alg);
      mb.push_back(res.total_comm_bytes / (1024.0 * 1024.0));
    }
    const double saving = 1.0 - mb[3] / mb[0];
    table.AddRow({std::to_string(clients), Fmt(mb[0], 1), Fmt(mb[1], 1),
                  Fmt(mb[2], 1), Fmt(mb[3], 1),
                  Fmt(100.0 * saving, 1) + "%"});
  }
  table.Print();
  std::printf(
      "\nPaper reference: FexIoT saves 40.2%% of FedAvg's bytes; FMTL and\n"
      "GCFL+ pay the full whole-model exchange like FedAvg. Shape check:\n"
      "cost grows linearly with clients; FexIoT is consistently the\n"
      "cheapest because early rounds exchange only the lower layers until\n"
      "the layer-wise clustering stabilizes. (The saving fraction depends\n"
      "on rounds: with the paper's 60 rounds more of the run is spent in\n"
      "the cheap clustering phase per split; run FEXIOT_SCALE=5 to see\n"
      "larger savings.)\n");
  return 0;
}
