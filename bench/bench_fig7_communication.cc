// Figure 7: communication cost of the FL strategies.
//
// Paper: total transferred data for 25/50/100 clients over 60 rounds;
// FedAvg / FMTL / GCFL+ exchange the whole model every round while FexIoT
// exchanges layers progressively, saving ~40.2% vs FedAvg; <40 GB total
// at 100 clients.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"

using namespace fexiot;
using namespace fexiot::bench;

namespace {

struct Fig7Record {
  int clients = 0;
  int rounds = 0;
  double fedavg_mb = 0.0;
  double fmtl_mb = 0.0;
  double gcfl_mb = 0.0;
  double fexiot_mb = 0.0;
  double saving = 0.0;
};

bool WriteJson(const std::string& path,
               const std::vector<Fig7Record>& records) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig7_communication\",\n");
  std::fprintf(f, "  \"paper_reference\": \"FexIoT saves 40.2%% vs FedAvg "
                  "over 60 rounds\",\n");
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Fig7Record& r = records[i];
    std::fprintf(f,
                 "    {\"clients\": %d, \"rounds\": %d, "
                 "\"fedavg_mb\": %.3f, \"fmtl_mb\": %.3f, "
                 "\"gcfl_mb\": %.3f, \"fexiot_mb\": %.3f, "
                 "\"fexiot_saving\": %.4f}%s\n",
                 r.clients, r.rounds, r.fedavg_mb, r.fmtl_mb, r.gcfl_mb,
                 r.fexiot_mb, r.saving, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Figure 7", "communication cost vs number of clients");

  const std::vector<int> client_counts =
      Scale() >= 2.0 ? std::vector<int>{25, 50, 100}
                     : std::vector<int>{10, 20, 40};
  const int rounds = Scaled(12, 10);  // paper: 60

  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 16;
  copt.vulnerable_fraction = 0.3;

  TablePrinter table({"clients", "FedAvg_MB", "FMTL_MB", "GCFL+_MB",
                      "FexIoT_MB", "FexIoT_saving"});
  std::vector<Fig7Record> records;
  for (int clients : client_counts) {
    Rng rng(700 + static_cast<uint64_t>(clients));
    FederatedCorpus corpus = BuildClusteredFederatedCorpus(
        copt, Scaled(500, 250), clients, 3, /*alpha=*/1.0,
        /*profile_strength=*/0.7, &rng);

    GnnConfig gc;
    gc.type = GnnType::kGin;
    gc.hidden_dim = 24;
    gc.embedding_dim = 24;
    FlConfig fc;
    fc.num_rounds = rounds;
    fc.local.epochs = 1;
    fc.local.learning_rate = 0.02;
    fc.local.margin = 3.0;
    fc.local.pairs_per_sample = 1.0;
    fc.min_cluster_size = std::max(4, clients / 6);

    std::vector<double> mb;
    for (FlAlgorithm alg :
         {FlAlgorithm::kFedAvg, FlAlgorithm::kFmtl, FlAlgorithm::kGcfl,
          FlAlgorithm::kFexiot}) {
      FederatedSimulator sim(gc, fc);
      sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
      const FlResult res = sim.Run(alg).value();
      mb.push_back(res.total_comm_bytes / (1024.0 * 1024.0));
    }
    const double saving = 1.0 - mb[3] / mb[0];
    table.AddRow({std::to_string(clients), Fmt(mb[0], 1), Fmt(mb[1], 1),
                  Fmt(mb[2], 1), Fmt(mb[3], 1),
                  Fmt(100.0 * saving, 1) + "%"});
    Fig7Record rec;
    rec.clients = clients;
    rec.rounds = rounds;
    rec.fedavg_mb = mb[0];
    rec.fmtl_mb = mb[1];
    rec.gcfl_mb = mb[2];
    rec.fexiot_mb = mb[3];
    rec.saving = saving;
    records.push_back(rec);
  }
  table.Print();
  std::printf(
      "\nPaper reference: FexIoT saves 40.2%% of FedAvg's bytes; FMTL and\n"
      "GCFL+ pay the full whole-model exchange like FedAvg. Shape check:\n"
      "cost grows linearly with clients; FexIoT is consistently the\n"
      "cheapest because early rounds exchange only the lower layers until\n"
      "the layer-wise clustering stabilizes. (The saving fraction depends\n"
      "on rounds: with the paper's 60 rounds more of the run is spent in\n"
      "the cheap clustering phase per split; run FEXIOT_SCALE=5 to see\n"
      "larger savings.)\n");
  return WriteJson(argc > 1 ? argv[1] : "BENCH_fig7.json", records) ? 0 : 1;
}
