// Figure 7: communication cost of the FL strategies.
//
// Paper: total transferred data for 25/50/100 clients over 60 rounds;
// FedAvg / FMTL / GCFL+ exchange the whole model every round while FexIoT
// exchanges layers progressively, saving ~40.2% vs FedAvg; <40 GB total
// at 100 clients.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"

using namespace fexiot;
using namespace fexiot::bench;

namespace {

struct Fig7Record {
  int clients = 0;
  int rounds = 0;
  double fedavg_mb = 0.0;
  double fmtl_mb = 0.0;
  double gcfl_mb = 0.0;
  double fexiot_mb = 0.0;
  double saving = 0.0;
  /// Real serialized uplink bytes of the FexIoT run under each wire codec
  /// (MessageWireBytes pricing — framing, quantized records, retransmits).
  double wire_mb[kNumWireCodecs] = {0.0, 0.0, 0.0, 0.0};
};

bool WriteJson(const std::string& path,
               const std::vector<Fig7Record>& records) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig7_communication\",\n");
  std::fprintf(f, "  \"paper_reference\": \"FexIoT saves 40.2%% vs FedAvg "
                  "over 60 rounds\",\n");
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Fig7Record& r = records[i];
    std::fprintf(f,
                 "    {\"clients\": %d, \"rounds\": %d, "
                 "\"fedavg_mb\": %.3f, \"fmtl_mb\": %.3f, "
                 "\"gcfl_mb\": %.3f, \"fexiot_mb\": %.3f, "
                 "\"fexiot_saving\": %.4f}%s\n",
                 r.clients, r.rounds, r.fedavg_mb, r.fmtl_mb, r.gcfl_mb,
                 r.fexiot_mb, r.saving, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Merges the fig7 per-codec compressed-bytes columns into an existing
/// BENCH_wire.json (read-modify-write: strip the trailing brace, append a
/// "fig7_compressed" section). Writes a standalone record when the wire
/// bench has not run yet.
bool MergeIntoWireJson(const std::string& path,
                       const std::vector<Fig7Record>& records) {
  std::string head;
  if (FILE* in = std::fopen(path.c_str(), "r")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) head.append(buf, n);
    std::fclose(in);
    // Drop everything from the closing brace (and any prior
    // fig7_compressed section from an earlier merge) so reruns are
    // idempotent.
    const size_t prev = head.find("  \"fig7_compressed\"");
    const size_t cut = prev != std::string::npos ? prev : head.rfind('}');
    if (cut == std::string::npos) {
      head.clear();
    } else {
      head.erase(cut);
      while (!head.empty() &&
             (head.back() == '\n' || head.back() == ' ')) {
        head.pop_back();
      }
      if (!head.empty() && head.back() != ',') head += ',';
      head += '\n';
    }
  }
  if (head.empty()) head = "{\n  \"bench\": \"wire\",\n";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(head.data(), 1, head.size(), f);
  std::fprintf(f, "  \"fig7_compressed\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Fig7Record& r = records[i];
    std::fprintf(f, "    {\"clients\": %d, \"rounds\": %d", r.clients,
                 r.rounds);
    for (int c = 0; c < kNumWireCodecs; ++c) {
      std::fprintf(f, ", \"%s_mb\": %.3f",
                   WireCodecName(static_cast<WireCodec>(c)), r.wire_mb[c]);
    }
    std::fprintf(f, ", \"int8_ratio\": %.3f}%s\n",
                 r.wire_mb[0] > 0.0
                     ? r.wire_mb[0] /
                           r.wire_mb[static_cast<int>(WireCodec::kInt8)]
                     : 0.0,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("merged fig7_compressed into %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Figure 7", "communication cost vs number of clients");

  const std::vector<int> client_counts =
      Scale() >= 2.0 ? std::vector<int>{25, 50, 100}
                     : std::vector<int>{10, 20, 40};
  const int rounds = Scaled(12, 10);  // paper: 60

  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 16;
  copt.vulnerable_fraction = 0.3;

  TablePrinter table({"clients", "FedAvg_MB", "FMTL_MB", "GCFL+_MB",
                      "FexIoT_MB", "FexIoT_saving"});
  std::vector<Fig7Record> records;
  for (int clients : client_counts) {
    Rng rng(700 + static_cast<uint64_t>(clients));
    FederatedCorpus corpus = BuildClusteredFederatedCorpus(
        copt, Scaled(500, 250), clients, 3, /*alpha=*/1.0,
        /*profile_strength=*/0.7, &rng);

    GnnConfig gc;
    gc.type = GnnType::kGin;
    gc.hidden_dim = 24;
    gc.embedding_dim = 24;
    FlConfig fc;
    fc.num_rounds = rounds;
    fc.local.epochs = 1;
    fc.local.learning_rate = 0.02;
    fc.local.margin = 3.0;
    fc.local.pairs_per_sample = 1.0;
    fc.min_cluster_size = std::max(4, clients / 6);

    std::vector<double> mb;
    for (FlAlgorithm alg :
         {FlAlgorithm::kFedAvg, FlAlgorithm::kFmtl, FlAlgorithm::kGcfl,
          FlAlgorithm::kFexiot}) {
      FederatedSimulator sim(gc, fc);
      sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
      const FlResult res = sim.Run(alg).value();
      mb.push_back(res.total_comm_bytes / (1024.0 * 1024.0));
    }
    const double saving = 1.0 - mb[3] / mb[0];
    // Compressed columns: the FexIoT exchange re-run under each wire
    // codec; wire_mb is real serialized uplink bytes, not an estimate.
    double wire_mb[kNumWireCodecs] = {0.0, 0.0, 0.0, 0.0};
    for (int c = 0; c < kNumWireCodecs; ++c) {
      FlConfig wfc = fc;
      wfc.runtime.wire_codec = static_cast<WireCodec>(c);
      FederatedSimulator sim(gc, wfc);
      sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
      const FlResult res = sim.Run(FlAlgorithm::kFexiot).value();
      wire_mb[c] = res.total_uplink_wire_bytes / (1024.0 * 1024.0);
    }
    table.AddRow({std::to_string(clients), Fmt(mb[0], 1), Fmt(mb[1], 1),
                  Fmt(mb[2], 1), Fmt(mb[3], 1),
                  Fmt(100.0 * saving, 1) + "%"});
    Fig7Record rec;
    rec.clients = clients;
    rec.rounds = rounds;
    rec.fedavg_mb = mb[0];
    rec.fmtl_mb = mb[1];
    rec.gcfl_mb = mb[2];
    rec.fexiot_mb = mb[3];
    rec.saving = saving;
    for (int c = 0; c < kNumWireCodecs; ++c) rec.wire_mb[c] = wire_mb[c];
    records.push_back(rec);
  }
  table.Print();
  TablePrinter wire_table({"clients", "fp64_MB", "fp32_MB", "bf16_MB",
                           "int8_MB", "int8_ratio"});
  for (const Fig7Record& r : records) {
    wire_table.AddRow(
        {std::to_string(r.clients), Fmt(r.wire_mb[0], 1),
         Fmt(r.wire_mb[1], 1), Fmt(r.wire_mb[2], 1), Fmt(r.wire_mb[3], 1),
         Fmt(r.wire_mb[0] / r.wire_mb[3], 2) + "x"});
  }
  std::printf("\nFexIoT uplink under each wire codec (real encoded "
              "sizes):\n%s\n", wire_table.ToString().c_str());
  std::printf(
      "\nPaper reference: FexIoT saves 40.2%% of FedAvg's bytes; FMTL and\n"
      "GCFL+ pay the full whole-model exchange like FedAvg. Shape check:\n"
      "cost grows linearly with clients; FexIoT is consistently the\n"
      "cheapest because early rounds exchange only the lower layers until\n"
      "the layer-wise clustering stabilizes. (The saving fraction depends\n"
      "on rounds: with the paper's 60 rounds more of the run is spent in\n"
      "the cheap clustering phase per split; run FEXIOT_SCALE=5 to see\n"
      "larger savings.)\n");
  if (!WriteJson(argc > 1 ? argv[1] : "BENCH_fig7.json", records)) return 1;
  return MergeIntoWireJson(argc > 2 ? argv[2] : "BENCH_wire.json", records)
             ? 0
             : 1;
}
