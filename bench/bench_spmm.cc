// SpMM trajectory bench: CSR sparse propagation kernel vs the dense
// MatMul path it replaces, swept over matrix size x density x thread
// count at a GNN-shaped right-hand side (n x n times n x 32). Prints a
// table and writes a JSON perf record (BENCH_spmm.json by default, or the
// path in argv[1]): seconds, effective GF/s, dense/sparse speedup and the
// steady-state bytes each representation holds. The speedup column doubles
// as a density-threshold analysis — the crossover density where sparse
// stops paying is visible per size.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace fexiot {
namespace bench {
namespace {

struct SpmmRecord {
  size_t size = 0;
  double density = 0.0;  // requested off-diagonal fill
  size_t threads = 0;
  size_t nnz = 0;
  double dense_seconds = 0.0;
  double sparse_seconds = 0.0;
  double dense_gflops = 0.0;   // dense flops / dense time
  double sparse_gflops = 0.0;  // effective (2 nnz m) flops / sparse time
  double speedup = 0.0;        // dense_seconds / sparse_seconds
  size_t dense_bytes = 0;
  size_t sparse_bytes = 0;
  double max_abs_diff = 0.0;
};

template <typename Fn>
double TimeKernel(const Fn& fn, int reps) {
  fn();  // warm-up (page faults, pool spin-up, workspace growth)
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.ElapsedSeconds());
  }
  return MedianSeconds(std::move(samples));
}

/// Propagation-shaped sparse matrix: unit diagonal (self loops) plus the
/// requested fraction of random off-diagonal entries.
Matrix RandomPropagation(size_t n, double density, Rng* rng) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && rng->Uniform() < density) {
        m.At(i, j) = rng->Normal(0.0, 1.0);
      }
    }
  }
  return m;
}

SpmmRecord BenchConfig(size_t n, double density, size_t threads, Rng* rng) {
  constexpr size_t kCols = 32;
  SpmmRecord rec;
  rec.size = n;
  rec.density = density;
  rec.threads = threads;

  const Matrix a_dense = RandomPropagation(n, density, rng);
  const Matrix b = Matrix::RandomNormal(n, kCols, 1.0, rng);
  const CsrMatrix a = CsrMatrix::FromDense(a_dense);
  rec.nnz = a.nnz();
  rec.dense_bytes = a_dense.size() * sizeof(double);
  rec.sparse_bytes = a.MemoryBytes();

  parallel::SetThreads(threads);
  const int reps = n >= 1024 ? 5 : 9;
  Matrix c_dense, c_sparse;
  rec.dense_seconds =
      TimeKernel([&] { MatMulInto(a_dense, b, &c_dense); }, reps);
  rec.sparse_seconds = TimeKernel([&] { SpMM(a, b, &c_sparse); }, reps);
  parallel::SetThreads(0);

  for (size_t i = 0; i < c_dense.size(); ++i) {
    rec.max_abs_diff = std::max(
        rec.max_abs_diff,
        std::fabs(c_dense.data()[i] - c_sparse.data()[i]));
  }
  const double dense_flops = 2.0 * static_cast<double>(n) * n * kCols;
  const double sparse_flops = 2.0 * static_cast<double>(rec.nnz) * kCols;
  rec.dense_gflops = dense_flops / rec.dense_seconds * 1e-9;
  rec.sparse_gflops = sparse_flops / rec.sparse_seconds * 1e-9;
  rec.speedup = rec.dense_seconds / rec.sparse_seconds;
  return rec;
}

bool WriteJson(const std::string& path,
               const std::vector<SpmmRecord>& records) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"spmm\",\n");
  std::fprintf(f, "  \"kernel\": \"csr-spmm-vs-dense-matmul\",\n");
  std::fprintf(f, "  \"rhs_cols\": 32,\n");
  std::fprintf(f, "  \"max_threads\": %zu,\n", parallel::NumThreads());
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const SpmmRecord& r = records[i];
    std::fprintf(f,
                 "    {\"size\": %zu, \"density\": %.3f, \"threads\": %zu, "
                 "\"nnz\": %zu, \"dense_seconds\": %.3e, "
                 "\"sparse_seconds\": %.3e, \"dense_gflops\": %.3f, "
                 "\"sparse_gflops\": %.3f, \"speedup\": %.3f, "
                 "\"dense_bytes\": %zu, \"sparse_bytes\": %zu, "
                 "\"max_abs_diff\": %.3e}%s\n",
                 r.size, r.density, r.threads, r.nnz, r.dense_seconds,
                 r.sparse_seconds, r.dense_gflops, r.sparse_gflops,
                 r.speedup, r.dense_bytes, r.sparse_bytes, r.max_abs_diff,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace fexiot

int main(int argc, char** argv) {
  using namespace fexiot;
  using namespace fexiot::bench;
  PrintHeader("SPMM",
              "CSR propagation kernel vs dense MatMul (N x N times N x 32)");

  const size_t max_threads = parallel::NumThreads();
  std::vector<size_t> thread_counts = {1};
  if (max_threads > 1) thread_counts.push_back(max_threads);

  Rng rng(20260806);
  const std::vector<size_t> sizes = {64, 128, 256, 512, 1024};
  const std::vector<double> densities = {0.01, 0.05, 0.20, 0.50};
  std::vector<SpmmRecord> records;
  TablePrinter table({"N", "density", "thr", "nnz", "dense s", "sparse s",
                      "speedup", "mem ratio"});
  for (size_t n : sizes) {
    for (double d : densities) {
      for (size_t t : thread_counts) {
        const SpmmRecord rec = BenchConfig(n, d, t, &rng);
        table.AddRow(
            {std::to_string(n), Fmt(d, 2), std::to_string(t),
             std::to_string(rec.nnz), Fmt(rec.dense_seconds, 6),
             Fmt(rec.sparse_seconds, 6), Fmt(rec.speedup, 2),
             Fmt(static_cast<double>(rec.dense_bytes) /
                     static_cast<double>(rec.sparse_bytes),
                 1)});
        records.push_back(rec);
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "speedup < 1 rows mark the density crossover where the dense GEMM\n"
      "wins; interaction graphs live far below it (a few edges per node).\n");

  return WriteJson(argc > 1 ? argv[1] : "BENCH_spmm.json", records) ? 0 : 1;
}
