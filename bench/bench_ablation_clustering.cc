// Ablation A1: layer-wise recursive clustering (Algorithm 1) vs
// whole-model clustering (FMTL-style) vs no clustering (FedAvg), on the
// same clustered non-i.i.d. corpus. Design choice of Section III-B2:
// "from the bottom up, the degree of similarity among deep models
// decreases", so per-layer clustering should be finer-grained than
// whole-model clustering.

#include "bench_common.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"

using namespace fexiot;
using namespace fexiot::bench;

int main() {
  PrintHeader("Ablation A1", "layer-wise vs whole-model clustering");

  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 20;
  copt.vulnerable_fraction = 0.3;

  Rng rng(111);
  FederatedCorpus corpus = BuildClusteredFederatedCorpus(
      copt, Scaled(700, 350), /*num_clients=*/10, /*num_clusters=*/3,
      /*alpha=*/1.0, /*profile_strength=*/0.7, &rng);

  GnnConfig gc;
  gc.type = GnnType::kGin;
  gc.hidden_dim = 24;
  gc.embedding_dim = 24;
  FlConfig fc;
  fc.num_rounds = Scaled(10, 8);
  fc.local.epochs = 2;
  fc.local.learning_rate = 0.02;
  fc.local.margin = 3.0;
  fc.local.pairs_per_sample = 2.0;

  TablePrinter table({"variant", "accuracy", "acc_std", "f1", "comm_MB",
                      "clusters", "cluster_align"});
  struct Row {
    const char* name;
    FlAlgorithm alg;
  };
  for (const Row& row : {Row{"layer-wise (FexIoT)", FlAlgorithm::kFexiot},
                         Row{"whole-model (FMTL)", FlAlgorithm::kFmtl},
                         Row{"none (FedAvg)", FlAlgorithm::kFedAvg}}) {
    FederatedSimulator sim(gc, fc);
    sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
    const FlResult res = sim.Run(row.alg).value();
    // Pairwise co-clustering agreement with the latent ground truth.
    int agree = 0, total = 0;
    for (size_t i = 0; i < res.client_cluster.size(); ++i) {
      for (size_t j = i + 1; j < res.client_cluster.size(); ++j) {
        const bool same_pred = res.client_cluster[i] == res.client_cluster[j];
        const bool same_true = corpus.partition.client_cluster[i] ==
                               corpus.partition.client_cluster[j];
        agree += same_pred == same_true ? 1 : 0;
        ++total;
      }
    }
    table.AddRow({row.name, Fmt(res.mean.accuracy), Fmt(res.accuracy_std),
                  Fmt(res.mean.f1),
                  Fmt(res.total_comm_bytes / (1024.0 * 1024.0), 1),
                  std::to_string(res.rounds.back().num_clusters),
                  Fmt(static_cast<double>(agree) / total, 2)});
  }
  table.Print();
  std::printf(
      "\nShape check: layer-wise clustering matches or beats whole-model\n"
      "clustering in accuracy while transmitting fewer bytes; both beat\n"
      "plain FedAvg under clustered heterogeneity.\n");
  return 0;
}
