// Figure 8: qualitative explanation comparison.
//
// Paper: two example graphs; FexIoT identifies a concise subgraph (even
// correcting a GCN false positive with a minimal misleading explanation),
// while SubgraphX / MCTS_GNN select larger subgraphs that confuse the
// inspector. Here we print the chosen subgraphs plus the ground-truth
// witness so conciseness and witness coverage can be compared directly.

#include <memory>
#include <set>

#include "bench_common.h"
#include "explain/explainer.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "ml/linear_model.h"

using namespace fexiot;
using namespace fexiot::bench;

int main() {
  PrintHeader("Figure 8", "qualitative explanation examples");

  Rng rng(88);
  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 6;
  copt.max_nodes = 12;
  copt.vulnerable_fraction = 0.5;
  GraphCorpusGenerator gen(copt, &rng);
  GraphDataset train(gen.GenerateDataset(Scaled(300, 150)));

  GnnConfig gc;
  gc.type = GnnType::kGcn;  // the paper explains GCN predictions
  gc.hidden_dim = 24;
  gc.embedding_dim = 24;
  GnnModel model(gc);
  TrainConfig tc;
  tc.epochs = Scaled(18, 12);
  tc.learning_rate = 0.02;
  tc.margin = 3.0;
  tc.pairs_per_sample = 2.0;
  GnnTrainer trainer(&model, tc);
  const auto prepared = PrepareDataset(train, gc);
  trainer.Train(prepared, &rng);
  SgdClassifier head;
  std::vector<int> y = train.Labels();
  (void)head.Fit(trainer.Embed(prepared), y);

  SearchOptions sopt;
  sopt.iterations = Scaled(6, 4);
  sopt.beam_width = 3;
  sopt.max_subgraph_nodes = 4;
  sopt.shap_samples = 12;

  // Two vulnerable examples of different types.
  std::vector<InteractionGraph> examples;
  examples.push_back(gen.GenerateVulnerable(VulnerabilityType::kActionLoop));
  examples.push_back(
      gen.GenerateVulnerable(VulnerabilityType::kConditionBypass));

  for (size_t e = 0; e < examples.size(); ++e) {
    const InteractionGraph& g = examples[e];
    std::printf("\n=== Example %zu: %s graph with %d rules ===\n", e + 1,
                VulnerabilityTypeName(g.vulnerability()), g.num_nodes());
    for (int i = 0; i < g.num_nodes(); ++i) {
      std::printf("  [%d] %s\n", i, g.node(i).rule.description.c_str());
    }
    std::printf("  ground-truth witness:");
    for (int w : g.witness()) std::printf(" %d", w);
    std::printf("\n");

    std::vector<std::unique_ptr<Explainer>> explainers;
    explainers.push_back(std::make_unique<ShapMcbsExplainer>(sopt));
    explainers.push_back(std::make_unique<SubgraphXExplainer>(sopt));
    explainers.push_back(std::make_unique<MctsGnnExplainer>(sopt));
    const std::set<int> witness(g.witness().begin(), g.witness().end());
    for (auto& ex : explainers) {
      GnnGraphScorer scorer(&model, &head, &g);
      const ExplanationResult res = ex->Explain(scorer, &rng);
      int covered = 0;
      for (int v : res.subgraph_nodes) covered += witness.count(v) ? 1 : 0;
      std::printf("  %-10s -> subgraph {", ex->Name().c_str());
      for (size_t i = 0; i < res.subgraph_nodes.size(); ++i) {
        std::printf("%s%d", i ? "," : "", res.subgraph_nodes[i]);
      }
      std::printf("} score=%.3f witness_overlap=%d/%zu evals=%d\n",
                  res.score, covered, witness.size(),
                  res.model_evaluations);
    }
  }
  std::printf(
      "\nShape check: FexIoT's subgraph is concise and overlaps the\n"
      "ground-truth witness chain; the baselines tend to keep more\n"
      "peripheral nodes for the same witness coverage.\n");
  return 0;
}
