// Figure 8: qualitative explanation comparison + explain-engine sweep.
//
// Paper: two example graphs; FexIoT identifies a concise subgraph (even
// correcting a GCN false positive with a minimal misleading explanation),
// while SubgraphX / MCTS_GNN select larger subgraphs that confuse the
// inspector. Here we print the chosen subgraphs plus the ground-truth
// witness so conciseness and witness coverage can be compared directly.
//
// The second half benchmarks the parallel explanation engine (PR 9) on the
// same workload: the memo-free serial reference search vs. the full engine
// (transposition table + score memo + batched leaf inference) at 1/2/4
// threads, writing bench/results/BENCH_explain.json. Engine results are
// bit-identical across thread counts (asserted via a content digest); the
// speedup over the reference comes from reward reuse and block-diagonal
// batching, so it holds even on a single-core host.

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "explain/explainer.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "ml/linear_model.h"

using namespace fexiot;
using namespace fexiot::bench;

namespace {

/// FNV-1a over 64-bit words — fingerprints a run's every decision bit.
struct Digest {
  uint64_t h = 0xcbf29ce484222325ULL;
  void Mix(uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  void MixDouble(double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d), "");
    __builtin_memcpy(&bits, &d, sizeof(bits));
    Mix(bits);
  }
};

struct ExplainRecord {
  std::string mode;
  size_t threads = 1;
  double wall_seconds = 0.0;
  double speedup_vs_serial = 0.0;
  long long model_evals = 0;
  long long tt_hits = 0;
  long long score_memo_hits = 0;
  long long reward_lookups = 0;  // tt_hits + unique rewards computed
  int subgraphs_scored = 0;
  uint64_t digest = 0;
};

/// Runs the full fig8 explanation workload (every graph x every explainer)
/// in one engine configuration and fingerprints the results.
ExplainRecord RunConfig(const std::vector<InteractionGraph>& graphs,
                        const GnnModel& model, const SgdClassifier& head,
                        SearchOptions sopt, bool engine, size_t threads) {
  ExplainRecord rec;
  rec.mode = engine ? "engine" : "reference_serial";
  rec.threads = threads;
  sopt.reuse_rewards = engine;
  parallel::SetThreads(threads);
  Digest digest;
  Stopwatch watch;
  for (size_t e = 0; e < graphs.size(); ++e) {
    for (int kind = 0; kind < 3; ++kind) {
      GnnGraphScorer scorer(&model, &head, &graphs[e]);
      scorer.set_memoize(engine);
      std::unique_ptr<Explainer> ex;
      switch (kind) {
        case 0: ex = std::make_unique<ShapMcbsExplainer>(sopt); break;
        case 1: ex = std::make_unique<SubgraphXExplainer>(sopt); break;
        default: ex = std::make_unique<MctsGnnExplainer>(sopt); break;
      }
      Rng rng(4200 + 10 * static_cast<uint64_t>(e) +
              static_cast<uint64_t>(kind));
      const ExplanationResult res = ex->Explain(scorer, &rng);
      const FidelitySparsity fs =
          EvaluateExplanation(scorer, res.subgraph_nodes);
      digest.Mix(res.subgraph_nodes.size());
      for (int v : res.subgraph_nodes) {
        digest.Mix(static_cast<uint64_t>(static_cast<uint32_t>(v)));
      }
      digest.MixDouble(res.score);
      digest.MixDouble(fs.fidelity);
      digest.MixDouble(fs.sparsity);
      rec.model_evals += scorer.evaluations();
      rec.tt_hits += res.tt_hits;
      rec.score_memo_hits += scorer.memo_hits();
      rec.subgraphs_scored += res.subgraphs_scored;
    }
  }
  rec.wall_seconds = watch.ElapsedSeconds();
  rec.reward_lookups = rec.tt_hits + rec.subgraphs_scored;
  rec.digest = digest.h;
  parallel::SetThreads(0);
  return rec;
}

bool WriteJson(const std::string& path,
               const std::vector<ExplainRecord>& records,
               bool bit_identical) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"explain\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f,
               "  \"sweep\": \"reference serial search vs parallel engine "
               "(transposition table + score memo + batched leaves) at "
               "1/2/4 threads\",\n");
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"bit_identical_across_threads\": %s,\n",
               bit_identical ? "true" : "false");
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const ExplainRecord& r = records[i];
    const double hit_rate =
        r.reward_lookups > 0
            ? static_cast<double>(r.tt_hits) /
                  static_cast<double>(r.reward_lookups)
            : 0.0;
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"threads\": %zu, "
        "\"wall_seconds\": %.4f, \"speedup_vs_serial\": %.2f, "
        "\"model_evals\": %lld, \"tt_hits\": %lld, "
        "\"tt_hit_rate\": %.3f, \"score_memo_hits\": %lld, "
        "\"subgraphs_scored\": %d, \"digest\": \"%016llx\"}%s\n",
        r.mode.c_str(), r.threads, r.wall_seconds, r.speedup_vs_serial,
        r.model_evals, r.tt_hits, hit_rate, r.score_memo_hits,
        r.subgraphs_scored,
        static_cast<unsigned long long>(r.digest),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Figure 8", "qualitative explanation examples + engine sweep");

  Rng rng(88);
  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 6;
  copt.max_nodes = 12;
  copt.vulnerable_fraction = 0.5;
  GraphCorpusGenerator gen(copt, &rng);
  GraphDataset train(gen.GenerateDataset(Scaled(300, 150)));

  GnnConfig gc;
  gc.type = GnnType::kGcn;  // the paper explains GCN predictions
  gc.hidden_dim = 24;
  gc.embedding_dim = 24;
  GnnModel model(gc);
  TrainConfig tc;
  tc.epochs = Scaled(18, 12);
  tc.learning_rate = 0.02;
  tc.margin = 3.0;
  tc.pairs_per_sample = 2.0;
  GnnTrainer trainer(&model, tc);
  const auto prepared = PrepareDataset(train, gc);
  trainer.Train(prepared, &rng);
  SgdClassifier head;
  std::vector<int> y = train.Labels();
  (void)head.Fit(trainer.Embed(prepared), y);

  SearchOptions sopt;
  sopt.iterations = Scaled(6, 4);
  sopt.beam_width = 3;
  sopt.max_subgraph_nodes = 4;
  sopt.shap_samples = 12;

  // Two vulnerable examples of different types.
  std::vector<InteractionGraph> examples;
  examples.push_back(gen.GenerateVulnerable(VulnerabilityType::kActionLoop));
  examples.push_back(
      gen.GenerateVulnerable(VulnerabilityType::kConditionBypass));

  for (size_t e = 0; e < examples.size(); ++e) {
    const InteractionGraph& g = examples[e];
    std::printf("\n=== Example %zu: %s graph with %d rules ===\n", e + 1,
                VulnerabilityTypeName(g.vulnerability()), g.num_nodes());
    for (int i = 0; i < g.num_nodes(); ++i) {
      std::printf("  [%d] %s\n", i, g.node(i).rule.description.c_str());
    }
    std::printf("  ground-truth witness:");
    for (int w : g.witness()) std::printf(" %d", w);
    std::printf("\n");

    std::vector<std::unique_ptr<Explainer>> explainers;
    explainers.push_back(std::make_unique<ShapMcbsExplainer>(sopt));
    explainers.push_back(std::make_unique<SubgraphXExplainer>(sopt));
    explainers.push_back(std::make_unique<MctsGnnExplainer>(sopt));
    const std::set<int> witness(g.witness().begin(), g.witness().end());
    for (auto& ex : explainers) {
      GnnGraphScorer scorer(&model, &head, &g);
      const ExplanationResult res = ex->Explain(scorer, &rng);
      int covered = 0;
      for (int v : res.subgraph_nodes) covered += witness.count(v) ? 1 : 0;
      std::printf("  %-10s -> subgraph {", ex->Name().c_str());
      for (size_t i = 0; i < res.subgraph_nodes.size(); ++i) {
        std::printf("%s%d", i ? "," : "", res.subgraph_nodes[i]);
      }
      std::printf("} score=%.3f witness_overlap=%d/%zu evals=%d\n",
                  res.score, covered, witness.size(),
                  res.model_evaluations);
    }
  }
  std::printf(
      "\nShape check: FexIoT's subgraph is concise and overlaps the\n"
      "ground-truth witness chain; the baselines tend to keep more\n"
      "peripheral nodes for the same witness coverage.\n");

  // ---- Explain-engine sweep (PR 9) --------------------------------------
  std::printf("\n=== Explain engine: reference serial vs parallel engine ===\n");
  struct Config {
    bool engine;
    size_t threads;
  };
  const std::vector<Config> configs = {
      {false, 1}, {true, 1}, {true, 2}, {true, 4}};
  // Median-of-3 walls, repeats interleaved round-robin across configs so
  // host drift doesn't fold into the speedup ratios; counters and digests
  // are deterministic and asserted equal across repeats.
  const int repeats = 3;
  std::vector<std::vector<ExplainRecord>> runs(configs.size());
  RunConfig(examples, model, head, sopt, true, 1);  // warm-up
  for (int r = 0; r < repeats; ++r) {
    for (size_t c = 0; c < configs.size(); ++c) {
      runs[c].push_back(RunConfig(examples, model, head, sopt,
                                  configs[c].engine, configs[c].threads));
    }
  }
  std::vector<ExplainRecord> records;
  for (std::vector<ExplainRecord>& rs : runs) {
    std::vector<double> walls;
    for (const ExplainRecord& rr : rs) {
      walls.push_back(rr.wall_seconds);
      if (rr.digest != rs.front().digest) {
        std::fprintf(stderr, "FAIL: digest varies across repeats\n");
        return 1;
      }
    }
    ExplainRecord med = rs.front();
    med.wall_seconds = MedianSeconds(walls);
    records.push_back(med);
  }
  const double serial_wall = records.front().wall_seconds;
  bool bit_identical = true;
  for (ExplainRecord& r : records) {
    r.speedup_vs_serial =
        r.wall_seconds > 0.0 ? serial_wall / r.wall_seconds : 0.0;
    if (r.mode == "engine" && r.digest != records[1].digest) {
      bit_identical = false;
    }
  }
  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: engine digests differ across thread counts\n");
  }

  TablePrinter table({"mode", "threads", "wall s", "speedup", "model evals",
                      "tt_hits", "memo_hits", "digest"});
  for (const ExplainRecord& r : records) {
    char dig[20];
    std::snprintf(dig, sizeof(dig), "%016llx",
                  static_cast<unsigned long long>(r.digest));
    table.AddRow({r.mode, std::to_string(r.threads), Fmt(r.wall_seconds, 3),
                  Fmt(r.speedup_vs_serial, 2), std::to_string(r.model_evals),
                  std::to_string(r.tt_hits),
                  std::to_string(r.score_memo_hits), dig});
  }
  table.Print();
  std::printf(
      "\nThe engine's speedup over the reference search is structural —\n"
      "transposition-table reward reuse, the subset-hash score memo, and\n"
      "block-diagonal leaf batching — so it survives a single-core host;\n"
      "extra threads additionally parallelize reward evaluation. All\n"
      "engine rows share one digest: results are bit-identical for every\n"
      "FEXIOT_THREADS.\n");

  const std::string out = argc > 1 ? argv[1] : "BENCH_explain.json";
  return WriteJson(out, records, bit_identical) && bit_identical ? 0 : 1;
}
