#!/usr/bin/env bash
# Tier-1 gate: full release-mode test suite, a GEMM ISA-dispatch sweep
# (test_kernels rerun under each FEXIOT_ISA tier — unsupported tiers
# degrade to the widest available one, so the sweep is safe on any
# host), a corpus thread-count parity check (golden statistics + content
# fingerprints must be byte-identical between FEXIOT_THREADS=1 and
# FEXIOT_THREADS=4), a federated-runtime parity check (the
# discrete-event trace + result digest of a faulty run must be
# byte-identical across thread counts), an async-policy parity check
# wire-codec check (the fp64 default must reproduce the committed seed
# trace byte-for-byte, and each lossy codec — fp32/bf16/int8 — must be
# bit-identical across thread counts while differing from fp64), an
# async-policy parity check
# (same invariant for the FedAsync-style and semi-async server policies,
# whose staleness-weighted application order is part of the trace), a
# tree-aggregation parity check (same invariant for the hierarchical
# edge/regional/root aggregation path with aggregator faults), a
# propagation-mode sweep (GNN + sparse suites rerun under
# FEXIOT_PROPAGATION=dense and =sparse — the two engines must both pass
# every test), a 100k-client lazy-state scale smoke with an RSS ceiling,
# a serving smoke (the streaming engine's result digest must be
# byte-identical between max_batch=1 and max_batch=8, plus a seeded
# Poisson soak against a p99 latency bound), an explain parity check
# (explanation subgraphs + fidelity/sparsity digests of all three
# explainers must be byte-identical between FEXIOT_THREADS=1 and 4),
# then a ThreadSanitizer pass over the concurrency-bearing binaries
# (thread pool / parallel facade / blocked GEMM race harness incl. the
# parallel PackB + pack-reuse fan-out / SpMM row fan-out / stream-split
# corpus fan-out / runtime-driven federated rounds incl. the async
# policies / lazy-state scale simulator fan-out / batched serving
# inference / parallel explanation search with its shared score memo).
#
# Usage: ci/run_tests.sh [build-dir] [tsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> [1/13] configure + build (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "==> [2/13] full test suite"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "==> [3/13] GEMM ISA dispatch sweep (FEXIOT_ISA=scalar/avx2/avx512)"
for isa in scalar avx2 avx512; do
  echo "    FEXIOT_ISA=${isa}"
  FEXIOT_ISA="${isa}" "${BUILD_DIR}/tests/test_kernels" \
    --gtest_brief=1 >/dev/null
done
echo "    kernel parity holds under every FEXIOT_ISA tier"

echo "==> [4/13] corpus thread-count parity (FEXIOT_THREADS=1 vs 4)"
STATS_DIR="${BUILD_DIR}/corpus-parity"
mkdir -p "${STATS_DIR}"
FEXIOT_THREADS=1 FEXIOT_STATS_OUT="${STATS_DIR}/stats_t1.json" \
  "${BUILD_DIR}/tests/test_corpus_determinism" \
  --gtest_filter='GoldenStats.*' >/dev/null
FEXIOT_THREADS=4 FEXIOT_STATS_OUT="${STATS_DIR}/stats_t4.json" \
  "${BUILD_DIR}/tests/test_corpus_determinism" \
  --gtest_filter='GoldenStats.*' >/dev/null
if ! diff -u "${STATS_DIR}/stats_t1.json" "${STATS_DIR}/stats_t4.json"; then
  echo "FAIL: corpus statistics/fingerprints differ across thread counts"
  exit 1
fi
echo "    stats + fingerprints identical across thread counts"

echo "==> [5/13] runtime thread-count parity (event trace + result digest)"
TRACE_DIR="${BUILD_DIR}/runtime-parity"
mkdir -p "${TRACE_DIR}"
FEXIOT_THREADS=1 FEXIOT_TRACE_OUT="${TRACE_DIR}/trace_t1.txt" \
  "${BUILD_DIR}/tests/test_runtime" \
  --gtest_filter='RuntimeParity.*' >/dev/null
FEXIOT_THREADS=4 FEXIOT_TRACE_OUT="${TRACE_DIR}/trace_t4.txt" \
  "${BUILD_DIR}/tests/test_runtime" \
  --gtest_filter='RuntimeParity.*' >/dev/null
if ! diff -u "${TRACE_DIR}/trace_t1.txt" "${TRACE_DIR}/trace_t4.txt"; then
  echo "FAIL: federated runtime trace/results differ across thread counts"
  exit 1
fi
echo "    event trace + result digest identical across thread counts"

echo "==> [6/13] wire codec checks (fp64 seed golden + lossy parity)"
# The fp64 default must keep emitting byte-identical FEXMSG01 frames and
# byte-identical traces to the pre-codec seed: diff stage 5's artifact
# against the committed golden.
if ! diff -u "${TRACE_DIR}/trace_t1.txt" tests/golden/runtime_trace_seed.txt
then
  echo "FAIL: fp64 runtime trace drifted from the committed seed golden"
  exit 1
fi
# Every lossy codec must stay bit-identical across thread counts
# (quantization is a pure per-tensor function — no rng, no ordering).
for codec in fp32 bf16 int8; do
  FEXIOT_THREADS=1 FEXIOT_CODEC="${codec}" \
    FEXIOT_CODEC_TRACE_OUT="${TRACE_DIR}/codec_${codec}_t1.txt" \
    "${BUILD_DIR}/tests/test_runtime" \
    --gtest_filter='CodecParity.*' >/dev/null
  FEXIOT_THREADS=4 FEXIOT_CODEC="${codec}" \
    FEXIOT_CODEC_TRACE_OUT="${TRACE_DIR}/codec_${codec}_t4.txt" \
    "${BUILD_DIR}/tests/test_runtime" \
    --gtest_filter='CodecParity.*' >/dev/null
  if ! diff -u "${TRACE_DIR}/codec_${codec}_t1.txt" \
              "${TRACE_DIR}/codec_${codec}_t4.txt"; then
    echo "FAIL: ${codec} trace/results differ across thread counts"
    exit 1
  fi
  if diff -q "${TRACE_DIR}/codec_${codec}_t1.txt" \
             "${TRACE_DIR}/trace_t1.txt" >/dev/null; then
    echo "FAIL: ${codec} run is byte-identical to fp64 (codec inert?)"
    exit 1
  fi
done
echo "    fp64 matches the seed golden; lossy codecs are thread-parity clean"

echo "==> [7/13] async-policy thread-count parity (async + semi-async traces)"
FEXIOT_THREADS=1 FEXIOT_ASYNC_TRACE_OUT="${TRACE_DIR}/async_trace_t1.txt" \
  "${BUILD_DIR}/tests/test_runtime" \
  --gtest_filter='AsyncRuntimeParity.*' >/dev/null
FEXIOT_THREADS=4 FEXIOT_ASYNC_TRACE_OUT="${TRACE_DIR}/async_trace_t4.txt" \
  "${BUILD_DIR}/tests/test_runtime" \
  --gtest_filter='AsyncRuntimeParity.*' >/dev/null
if ! diff -u "${TRACE_DIR}/async_trace_t1.txt" \
            "${TRACE_DIR}/async_trace_t4.txt"; then
  echo "FAIL: async-policy trace/results differ across thread counts"
  exit 1
fi
echo "    async + semi-async traces/digests identical across thread counts"

echo "==> [8/13] tree-aggregation thread-count parity (hierarchical traces)"
FEXIOT_THREADS=1 FEXIOT_TREE_TRACE_OUT="${TRACE_DIR}/tree_trace_t1.txt" \
  "${BUILD_DIR}/tests/test_runtime" \
  --gtest_filter='TreeRuntimeParity.*' >/dev/null
FEXIOT_THREADS=4 FEXIOT_TREE_TRACE_OUT="${TRACE_DIR}/tree_trace_t4.txt" \
  "${BUILD_DIR}/tests/test_runtime" \
  --gtest_filter='TreeRuntimeParity.*' >/dev/null
if ! diff -u "${TRACE_DIR}/tree_trace_t1.txt" \
            "${TRACE_DIR}/tree_trace_t4.txt"; then
  echo "FAIL: tree-aggregation trace/results differ across thread counts"
  exit 1
fi
echo "    hierarchical traces/digests identical across thread counts"

echo "==> [9/13] propagation-mode sweep (FEXIOT_PROPAGATION=dense/sparse)"
for mode in dense sparse; do
  echo "    FEXIOT_PROPAGATION=${mode}"
  FEXIOT_PROPAGATION="${mode}" "${BUILD_DIR}/tests/test_gnn" \
    --gtest_brief=1 >/dev/null
  FEXIOT_PROPAGATION="${mode}" "${BUILD_DIR}/tests/test_sparse" \
    --gtest_brief=1 >/dev/null
done
echo "    both propagation engines pass the GNN + sparse suites"

echo "==> [10/13] scale smoke (100k clients, lazy state, RSS ceiling)"
FEXIOT_SLOW_TESTS=1 "${BUILD_DIR}/tests/test_scale" \
  --gtest_filter='ScaleSmoke.*' --gtest_brief=1
echo "    100k-client sampled round fits the lazy-state RSS ceiling"

echo "==> [11/13] serving smoke (batch-size digest parity + Poisson soak)"
SERVE_DIR="${BUILD_DIR}/serving-smoke"
mkdir -p "${SERVE_DIR}"
FEXIOT_SERVING_DIGEST_OUT="${SERVE_DIR}/digest_b1.txt" FEXIOT_SERVING_BATCH=1 \
  "${BUILD_DIR}/tests/test_serving" \
  --gtest_filter='ServingDigest.*' >/dev/null
FEXIOT_SERVING_DIGEST_OUT="${SERVE_DIR}/digest_b8.txt" FEXIOT_SERVING_BATCH=8 \
  "${BUILD_DIR}/tests/test_serving" \
  --gtest_filter='ServingDigest.*' >/dev/null
if ! diff -u "${SERVE_DIR}/digest_b1.txt" "${SERVE_DIR}/digest_b8.txt"; then
  echo "FAIL: serving embeddings differ between max_batch=1 and max_batch=8"
  exit 1
fi
FEXIOT_SERVING_SOAK=1 "${BUILD_DIR}/tests/test_serving" \
  --gtest_filter='ServingSoak.*' --gtest_brief=1
echo "    batched serving bit-matches sequential; soak met the latency bound"

echo "==> [12/13] explain thread-count parity (explanation digests, t=1 vs 4)"
EXPLAIN_DIR="${BUILD_DIR}/explain-parity"
mkdir -p "${EXPLAIN_DIR}"
FEXIOT_THREADS=1 FEXIOT_EXPLAIN_DIGEST_OUT="${EXPLAIN_DIR}/digest_t1.txt" \
  "${BUILD_DIR}/tests/test_explain" \
  --gtest_filter='ParallelSearch.WritesExplanationDigestArtifact' >/dev/null
FEXIOT_THREADS=4 FEXIOT_EXPLAIN_DIGEST_OUT="${EXPLAIN_DIR}/digest_t4.txt" \
  "${BUILD_DIR}/tests/test_explain" \
  --gtest_filter='ParallelSearch.WritesExplanationDigestArtifact' >/dev/null
if ! diff -u "${EXPLAIN_DIR}/digest_t1.txt" "${EXPLAIN_DIR}/digest_t4.txt"; then
  echo "FAIL: explanation subgraphs/metrics differ across thread counts"
  exit 1
fi
echo "    explanation digests identical across thread counts"

echo "==> [13/13] TSAN pass (test_common + test_kernels + test_sparse + test_corpus_determinism + test_runtime + test_scale + test_serving + test_explain)"
cmake -B "${TSAN_DIR}" -S . \
  -DFEXIOT_SANITIZE=thread \
  -DFEXIOT_BUILD_BENCHMARKS=OFF \
  -DFEXIOT_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}" \
  --target test_common test_kernels test_sparse test_corpus_determinism test_runtime test_scale test_serving test_explain
"${TSAN_DIR}/tests/test_common"
"${TSAN_DIR}/tests/test_kernels"
FEXIOT_THREADS=4 "${TSAN_DIR}/tests/test_sparse"
FEXIOT_THREADS=4 "${TSAN_DIR}/tests/test_corpus_determinism"
FEXIOT_THREADS=4 "${TSAN_DIR}/tests/test_runtime"
FEXIOT_THREADS=4 "${TSAN_DIR}/tests/test_scale"
FEXIOT_THREADS=4 "${TSAN_DIR}/tests/test_serving"
FEXIOT_THREADS=4 "${TSAN_DIR}/tests/test_explain"

echo "OK: tier-1 suite green, thread-count parity holds, TSAN clean"
