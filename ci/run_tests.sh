#!/usr/bin/env bash
# Tier-1 gate: full release-mode test suite, then a ThreadSanitizer pass
# over the concurrency-bearing binaries (thread pool / parallel facade /
# blocked GEMM race harness).
#
# Usage: ci/run_tests.sh [build-dir] [tsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> [1/3] configure + build (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "==> [2/3] full test suite"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "==> [3/3] TSAN pass (test_common + test_kernels)"
cmake -B "${TSAN_DIR}" -S . \
  -DFEXIOT_SANITIZE=thread \
  -DFEXIOT_BUILD_BENCHMARKS=OFF \
  -DFEXIOT_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target test_common test_kernels
"${TSAN_DIR}/tests/test_common"
"${TSAN_DIR}/tests/test_kernels"

echo "OK: tier-1 suite green, TSAN clean"
