# Empty compiler generated dependencies file for federated_simulation.
# This may be replaced when dependencies are built.
