file(REMOVE_RECURSE
  "CMakeFiles/federated_simulation.dir/federated_simulation.cpp.o"
  "CMakeFiles/federated_simulation.dir/federated_simulation.cpp.o.d"
  "federated_simulation"
  "federated_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
