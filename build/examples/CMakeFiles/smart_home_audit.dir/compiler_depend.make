# Empty compiler generated dependencies file for smart_home_audit.
# This may be replaced when dependencies are built.
