file(REMOVE_RECURSE
  "CMakeFiles/smart_home_audit.dir/smart_home_audit.cpp.o"
  "CMakeFiles/smart_home_audit.dir/smart_home_audit.cpp.o.d"
  "smart_home_audit"
  "smart_home_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
