file(REMOVE_RECURSE
  "CMakeFiles/test_smarthome.dir/test_smarthome.cc.o"
  "CMakeFiles/test_smarthome.dir/test_smarthome.cc.o.d"
  "test_smarthome"
  "test_smarthome.pdb"
  "test_smarthome[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smarthome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
