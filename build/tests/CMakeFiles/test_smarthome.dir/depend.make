# Empty dependencies file for test_smarthome.
# This may be replaced when dependencies are built.
