
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_nlp.cc" "tests/CMakeFiles/test_nlp.dir/test_nlp.cc.o" "gcc" "tests/CMakeFiles/test_nlp.dir/test_nlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fexiot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fexiot_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/fexiot_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/federated/CMakeFiles/fexiot_federated.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/fexiot_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fexiot_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fexiot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/smarthome/CMakeFiles/fexiot_smarthome.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/fexiot_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fexiot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fexiot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
