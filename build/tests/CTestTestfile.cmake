# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nlp[1]_include.cmake")
include("/root/repo/build/tests/test_smarthome[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_gnn[1]_include.cmake")
include("/root/repo/build/tests/test_federated[1]_include.cmake")
include("/root/repo/build/tests/test_explain[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_rule_parser[1]_include.cmake")
