file(REMOVE_RECURSE
  "libfexiot_federated.a"
)
