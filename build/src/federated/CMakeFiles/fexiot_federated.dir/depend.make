# Empty dependencies file for fexiot_federated.
# This may be replaced when dependencies are built.
