file(REMOVE_RECURSE
  "CMakeFiles/fexiot_federated.dir/fl_client.cc.o"
  "CMakeFiles/fexiot_federated.dir/fl_client.cc.o.d"
  "CMakeFiles/fexiot_federated.dir/fl_simulator.cc.o"
  "CMakeFiles/fexiot_federated.dir/fl_simulator.cc.o.d"
  "libfexiot_federated.a"
  "libfexiot_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
