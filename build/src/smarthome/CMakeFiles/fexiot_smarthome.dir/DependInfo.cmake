
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smarthome/attacks.cc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/attacks.cc.o" "gcc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/attacks.cc.o.d"
  "/root/repo/src/smarthome/device.cc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/device.cc.o" "gcc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/device.cc.o.d"
  "/root/repo/src/smarthome/event_log.cc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/event_log.cc.o" "gcc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/event_log.cc.o.d"
  "/root/repo/src/smarthome/home.cc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/home.cc.o" "gcc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/home.cc.o.d"
  "/root/repo/src/smarthome/platform.cc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/platform.cc.o" "gcc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/platform.cc.o.d"
  "/root/repo/src/smarthome/rule.cc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/rule.cc.o" "gcc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/rule.cc.o.d"
  "/root/repo/src/smarthome/rule_parser.cc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/rule_parser.cc.o" "gcc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/rule_parser.cc.o.d"
  "/root/repo/src/smarthome/vulnerability.cc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/vulnerability.cc.o" "gcc" "src/smarthome/CMakeFiles/fexiot_smarthome.dir/vulnerability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fexiot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/fexiot_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fexiot_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
