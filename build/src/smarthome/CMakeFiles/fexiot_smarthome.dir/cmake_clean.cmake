file(REMOVE_RECURSE
  "CMakeFiles/fexiot_smarthome.dir/attacks.cc.o"
  "CMakeFiles/fexiot_smarthome.dir/attacks.cc.o.d"
  "CMakeFiles/fexiot_smarthome.dir/device.cc.o"
  "CMakeFiles/fexiot_smarthome.dir/device.cc.o.d"
  "CMakeFiles/fexiot_smarthome.dir/event_log.cc.o"
  "CMakeFiles/fexiot_smarthome.dir/event_log.cc.o.d"
  "CMakeFiles/fexiot_smarthome.dir/home.cc.o"
  "CMakeFiles/fexiot_smarthome.dir/home.cc.o.d"
  "CMakeFiles/fexiot_smarthome.dir/platform.cc.o"
  "CMakeFiles/fexiot_smarthome.dir/platform.cc.o.d"
  "CMakeFiles/fexiot_smarthome.dir/rule.cc.o"
  "CMakeFiles/fexiot_smarthome.dir/rule.cc.o.d"
  "CMakeFiles/fexiot_smarthome.dir/rule_parser.cc.o"
  "CMakeFiles/fexiot_smarthome.dir/rule_parser.cc.o.d"
  "CMakeFiles/fexiot_smarthome.dir/vulnerability.cc.o"
  "CMakeFiles/fexiot_smarthome.dir/vulnerability.cc.o.d"
  "libfexiot_smarthome.a"
  "libfexiot_smarthome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_smarthome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
