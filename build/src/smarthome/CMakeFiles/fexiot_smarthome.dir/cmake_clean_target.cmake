file(REMOVE_RECURSE
  "libfexiot_smarthome.a"
)
