# Empty dependencies file for fexiot_smarthome.
# This may be replaced when dependencies are built.
