file(REMOVE_RECURSE
  "CMakeFiles/fexiot_explain.dir/explainer.cc.o"
  "CMakeFiles/fexiot_explain.dir/explainer.cc.o.d"
  "CMakeFiles/fexiot_explain.dir/scorer.cc.o"
  "CMakeFiles/fexiot_explain.dir/scorer.cc.o.d"
  "CMakeFiles/fexiot_explain.dir/shap.cc.o"
  "CMakeFiles/fexiot_explain.dir/shap.cc.o.d"
  "libfexiot_explain.a"
  "libfexiot_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
