# Empty compiler generated dependencies file for fexiot_explain.
# This may be replaced when dependencies are built.
