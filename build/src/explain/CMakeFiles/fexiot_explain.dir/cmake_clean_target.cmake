file(REMOVE_RECURSE
  "libfexiot_explain.a"
)
