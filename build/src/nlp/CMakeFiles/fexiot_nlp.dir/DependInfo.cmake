
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/dtw.cc" "src/nlp/CMakeFiles/fexiot_nlp.dir/dtw.cc.o" "gcc" "src/nlp/CMakeFiles/fexiot_nlp.dir/dtw.cc.o.d"
  "/root/repo/src/nlp/embeddings.cc" "src/nlp/CMakeFiles/fexiot_nlp.dir/embeddings.cc.o" "gcc" "src/nlp/CMakeFiles/fexiot_nlp.dir/embeddings.cc.o.d"
  "/root/repo/src/nlp/jenks.cc" "src/nlp/CMakeFiles/fexiot_nlp.dir/jenks.cc.o" "gcc" "src/nlp/CMakeFiles/fexiot_nlp.dir/jenks.cc.o.d"
  "/root/repo/src/nlp/lexicon.cc" "src/nlp/CMakeFiles/fexiot_nlp.dir/lexicon.cc.o" "gcc" "src/nlp/CMakeFiles/fexiot_nlp.dir/lexicon.cc.o.d"
  "/root/repo/src/nlp/pos_tagger.cc" "src/nlp/CMakeFiles/fexiot_nlp.dir/pos_tagger.cc.o" "gcc" "src/nlp/CMakeFiles/fexiot_nlp.dir/pos_tagger.cc.o.d"
  "/root/repo/src/nlp/rule_features.cc" "src/nlp/CMakeFiles/fexiot_nlp.dir/rule_features.cc.o" "gcc" "src/nlp/CMakeFiles/fexiot_nlp.dir/rule_features.cc.o.d"
  "/root/repo/src/nlp/tokenizer.cc" "src/nlp/CMakeFiles/fexiot_nlp.dir/tokenizer.cc.o" "gcc" "src/nlp/CMakeFiles/fexiot_nlp.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fexiot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fexiot_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
