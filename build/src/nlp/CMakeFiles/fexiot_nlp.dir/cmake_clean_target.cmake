file(REMOVE_RECURSE
  "libfexiot_nlp.a"
)
