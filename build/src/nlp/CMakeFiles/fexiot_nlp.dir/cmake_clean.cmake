file(REMOVE_RECURSE
  "CMakeFiles/fexiot_nlp.dir/dtw.cc.o"
  "CMakeFiles/fexiot_nlp.dir/dtw.cc.o.d"
  "CMakeFiles/fexiot_nlp.dir/embeddings.cc.o"
  "CMakeFiles/fexiot_nlp.dir/embeddings.cc.o.d"
  "CMakeFiles/fexiot_nlp.dir/jenks.cc.o"
  "CMakeFiles/fexiot_nlp.dir/jenks.cc.o.d"
  "CMakeFiles/fexiot_nlp.dir/lexicon.cc.o"
  "CMakeFiles/fexiot_nlp.dir/lexicon.cc.o.d"
  "CMakeFiles/fexiot_nlp.dir/pos_tagger.cc.o"
  "CMakeFiles/fexiot_nlp.dir/pos_tagger.cc.o.d"
  "CMakeFiles/fexiot_nlp.dir/rule_features.cc.o"
  "CMakeFiles/fexiot_nlp.dir/rule_features.cc.o.d"
  "CMakeFiles/fexiot_nlp.dir/tokenizer.cc.o"
  "CMakeFiles/fexiot_nlp.dir/tokenizer.cc.o.d"
  "libfexiot_nlp.a"
  "libfexiot_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
