# Empty compiler generated dependencies file for fexiot_nlp.
# This may be replaced when dependencies are built.
