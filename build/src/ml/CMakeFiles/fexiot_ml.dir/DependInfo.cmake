
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cc" "src/ml/CMakeFiles/fexiot_ml.dir/classifier.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/classifier.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/fexiot_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/isolation_forest.cc" "src/ml/CMakeFiles/fexiot_ml.dir/isolation_forest.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/isolation_forest.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/fexiot_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/fexiot_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linear_model.cc" "src/ml/CMakeFiles/fexiot_ml.dir/linear_model.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/linear_model.cc.o.d"
  "/root/repo/src/ml/mad.cc" "src/ml/CMakeFiles/fexiot_ml.dir/mad.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/mad.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/fexiot_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/fexiot_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/model_selection.cc" "src/ml/CMakeFiles/fexiot_ml.dir/model_selection.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/model_selection.cc.o.d"
  "/root/repo/src/ml/tsne.cc" "src/ml/CMakeFiles/fexiot_ml.dir/tsne.cc.o" "gcc" "src/ml/CMakeFiles/fexiot_ml.dir/tsne.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fexiot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fexiot_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
