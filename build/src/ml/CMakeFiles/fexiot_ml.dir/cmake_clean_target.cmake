file(REMOVE_RECURSE
  "libfexiot_ml.a"
)
