file(REMOVE_RECURSE
  "CMakeFiles/fexiot_ml.dir/classifier.cc.o"
  "CMakeFiles/fexiot_ml.dir/classifier.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/decision_tree.cc.o"
  "CMakeFiles/fexiot_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/isolation_forest.cc.o"
  "CMakeFiles/fexiot_ml.dir/isolation_forest.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/kmeans.cc.o"
  "CMakeFiles/fexiot_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/knn.cc.o"
  "CMakeFiles/fexiot_ml.dir/knn.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/linear_model.cc.o"
  "CMakeFiles/fexiot_ml.dir/linear_model.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/mad.cc.o"
  "CMakeFiles/fexiot_ml.dir/mad.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/metrics.cc.o"
  "CMakeFiles/fexiot_ml.dir/metrics.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/mlp.cc.o"
  "CMakeFiles/fexiot_ml.dir/mlp.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/model_selection.cc.o"
  "CMakeFiles/fexiot_ml.dir/model_selection.cc.o.d"
  "CMakeFiles/fexiot_ml.dir/tsne.cc.o"
  "CMakeFiles/fexiot_ml.dir/tsne.cc.o.d"
  "libfexiot_ml.a"
  "libfexiot_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
