# Empty dependencies file for fexiot_ml.
# This may be replaced when dependencies are built.
