
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/corpus.cc" "src/graph/CMakeFiles/fexiot_graph.dir/corpus.cc.o" "gcc" "src/graph/CMakeFiles/fexiot_graph.dir/corpus.cc.o.d"
  "/root/repo/src/graph/dataset.cc" "src/graph/CMakeFiles/fexiot_graph.dir/dataset.cc.o" "gcc" "src/graph/CMakeFiles/fexiot_graph.dir/dataset.cc.o.d"
  "/root/repo/src/graph/fusion.cc" "src/graph/CMakeFiles/fexiot_graph.dir/fusion.cc.o" "gcc" "src/graph/CMakeFiles/fexiot_graph.dir/fusion.cc.o.d"
  "/root/repo/src/graph/interaction_graph.cc" "src/graph/CMakeFiles/fexiot_graph.dir/interaction_graph.cc.o" "gcc" "src/graph/CMakeFiles/fexiot_graph.dir/interaction_graph.cc.o.d"
  "/root/repo/src/graph/vuln_checker.cc" "src/graph/CMakeFiles/fexiot_graph.dir/vuln_checker.cc.o" "gcc" "src/graph/CMakeFiles/fexiot_graph.dir/vuln_checker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fexiot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fexiot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/fexiot_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/smarthome/CMakeFiles/fexiot_smarthome.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
