file(REMOVE_RECURSE
  "libfexiot_graph.a"
)
