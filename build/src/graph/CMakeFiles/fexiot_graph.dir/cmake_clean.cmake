file(REMOVE_RECURSE
  "CMakeFiles/fexiot_graph.dir/corpus.cc.o"
  "CMakeFiles/fexiot_graph.dir/corpus.cc.o.d"
  "CMakeFiles/fexiot_graph.dir/dataset.cc.o"
  "CMakeFiles/fexiot_graph.dir/dataset.cc.o.d"
  "CMakeFiles/fexiot_graph.dir/fusion.cc.o"
  "CMakeFiles/fexiot_graph.dir/fusion.cc.o.d"
  "CMakeFiles/fexiot_graph.dir/interaction_graph.cc.o"
  "CMakeFiles/fexiot_graph.dir/interaction_graph.cc.o.d"
  "CMakeFiles/fexiot_graph.dir/vuln_checker.cc.o"
  "CMakeFiles/fexiot_graph.dir/vuln_checker.cc.o.d"
  "libfexiot_graph.a"
  "libfexiot_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
