# Empty compiler generated dependencies file for fexiot_graph.
# This may be replaced when dependencies are built.
