file(REMOVE_RECURSE
  "CMakeFiles/fexiot_baselines.dir/deeplog.cc.o"
  "CMakeFiles/fexiot_baselines.dir/deeplog.cc.o.d"
  "CMakeFiles/fexiot_baselines.dir/hawatcher.cc.o"
  "CMakeFiles/fexiot_baselines.dir/hawatcher.cc.o.d"
  "CMakeFiles/fexiot_baselines.dir/lstm.cc.o"
  "CMakeFiles/fexiot_baselines.dir/lstm.cc.o.d"
  "libfexiot_baselines.a"
  "libfexiot_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
