# Empty dependencies file for fexiot_baselines.
# This may be replaced when dependencies are built.
