
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/deeplog.cc" "src/baselines/CMakeFiles/fexiot_baselines.dir/deeplog.cc.o" "gcc" "src/baselines/CMakeFiles/fexiot_baselines.dir/deeplog.cc.o.d"
  "/root/repo/src/baselines/hawatcher.cc" "src/baselines/CMakeFiles/fexiot_baselines.dir/hawatcher.cc.o" "gcc" "src/baselines/CMakeFiles/fexiot_baselines.dir/hawatcher.cc.o.d"
  "/root/repo/src/baselines/lstm.cc" "src/baselines/CMakeFiles/fexiot_baselines.dir/lstm.cc.o" "gcc" "src/baselines/CMakeFiles/fexiot_baselines.dir/lstm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/fexiot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fexiot_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/smarthome/CMakeFiles/fexiot_smarthome.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fexiot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/fexiot_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fexiot_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
