file(REMOVE_RECURSE
  "libfexiot_baselines.a"
)
