file(REMOVE_RECURSE
  "CMakeFiles/fexiot_core.dir/fexiot.cc.o"
  "CMakeFiles/fexiot_core.dir/fexiot.cc.o.d"
  "CMakeFiles/fexiot_core.dir/testbed.cc.o"
  "CMakeFiles/fexiot_core.dir/testbed.cc.o.d"
  "libfexiot_core.a"
  "libfexiot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
