# Empty dependencies file for fexiot_core.
# This may be replaced when dependencies are built.
