# Empty compiler generated dependencies file for fexiot_core.
# This may be replaced when dependencies are built.
