file(REMOVE_RECURSE
  "libfexiot_core.a"
)
