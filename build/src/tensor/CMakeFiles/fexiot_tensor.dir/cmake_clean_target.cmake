file(REMOVE_RECURSE
  "libfexiot_tensor.a"
)
