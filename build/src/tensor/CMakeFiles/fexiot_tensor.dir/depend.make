# Empty dependencies file for fexiot_tensor.
# This may be replaced when dependencies are built.
