file(REMOVE_RECURSE
  "CMakeFiles/fexiot_tensor.dir/matrix.cc.o"
  "CMakeFiles/fexiot_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/fexiot_tensor.dir/ops.cc.o"
  "CMakeFiles/fexiot_tensor.dir/ops.cc.o.d"
  "libfexiot_tensor.a"
  "libfexiot_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
