file(REMOVE_RECURSE
  "libfexiot_gnn.a"
)
