file(REMOVE_RECURSE
  "CMakeFiles/fexiot_gnn.dir/contrastive.cc.o"
  "CMakeFiles/fexiot_gnn.dir/contrastive.cc.o.d"
  "CMakeFiles/fexiot_gnn.dir/gnn_model.cc.o"
  "CMakeFiles/fexiot_gnn.dir/gnn_model.cc.o.d"
  "CMakeFiles/fexiot_gnn.dir/serialization.cc.o"
  "CMakeFiles/fexiot_gnn.dir/serialization.cc.o.d"
  "CMakeFiles/fexiot_gnn.dir/trainer.cc.o"
  "CMakeFiles/fexiot_gnn.dir/trainer.cc.o.d"
  "libfexiot_gnn.a"
  "libfexiot_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
