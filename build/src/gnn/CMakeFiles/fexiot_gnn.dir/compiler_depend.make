# Empty compiler generated dependencies file for fexiot_gnn.
# This may be replaced when dependencies are built.
