# Empty dependencies file for fexiot_common.
# This may be replaced when dependencies are built.
