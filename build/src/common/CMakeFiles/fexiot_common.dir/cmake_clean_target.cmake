file(REMOVE_RECURSE
  "libfexiot_common.a"
)
