file(REMOVE_RECURSE
  "CMakeFiles/fexiot_common.dir/logging.cc.o"
  "CMakeFiles/fexiot_common.dir/logging.cc.o.d"
  "CMakeFiles/fexiot_common.dir/rng.cc.o"
  "CMakeFiles/fexiot_common.dir/rng.cc.o.d"
  "CMakeFiles/fexiot_common.dir/status.cc.o"
  "CMakeFiles/fexiot_common.dir/status.cc.o.d"
  "CMakeFiles/fexiot_common.dir/string_util.cc.o"
  "CMakeFiles/fexiot_common.dir/string_util.cc.o.d"
  "CMakeFiles/fexiot_common.dir/table_printer.cc.o"
  "CMakeFiles/fexiot_common.dir/table_printer.cc.o.d"
  "CMakeFiles/fexiot_common.dir/thread_pool.cc.o"
  "CMakeFiles/fexiot_common.dir/thread_pool.cc.o.d"
  "libfexiot_common.a"
  "libfexiot_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fexiot_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
