file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_explanations.dir/bench_fig8_explanations.cc.o"
  "CMakeFiles/bench_fig8_explanations.dir/bench_fig8_explanations.cc.o.d"
  "bench_fig8_explanations"
  "bench_fig8_explanations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
