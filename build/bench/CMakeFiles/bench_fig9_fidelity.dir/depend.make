# Empty dependencies file for bench_fig9_fidelity.
# This may be replaced when dependencies are built.
