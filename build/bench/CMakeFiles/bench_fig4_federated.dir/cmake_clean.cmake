file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_federated.dir/bench_fig4_federated.cc.o"
  "CMakeFiles/bench_fig4_federated.dir/bench_fig4_federated.cc.o.d"
  "bench_fig4_federated"
  "bench_fig4_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
