# Empty dependencies file for bench_fig4_federated.
# This may be replaced when dependencies are built.
