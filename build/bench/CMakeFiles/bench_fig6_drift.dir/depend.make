# Empty dependencies file for bench_fig6_drift.
# This may be replaced when dependencies are built.
