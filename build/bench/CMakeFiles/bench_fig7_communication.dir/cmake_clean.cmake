file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_communication.dir/bench_fig7_communication.cc.o"
  "CMakeFiles/bench_fig7_communication.dir/bench_fig7_communication.cc.o.d"
  "bench_fig7_communication"
  "bench_fig7_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
