# Empty compiler generated dependencies file for bench_ablation_contrastive.
# This may be replaced when dependencies are built.
