# Empty compiler generated dependencies file for bench_ablation_shap.
# This may be replaced when dependencies are built.
