file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shap.dir/bench_ablation_shap.cc.o"
  "CMakeFiles/bench_ablation_shap.dir/bench_ablation_shap.cc.o.d"
  "bench_ablation_shap"
  "bench_ablation_shap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
