// Federated simulation: ten houses collaboratively train the vulnerability
// detector without sharing their interaction graphs, comparing FexIoT's
// layer-wise clustered aggregation against FedAvg and local-only training.
//
//   ./build/examples/federated_simulation

#include <cstdio>

#include "core/fexiot.h"
#include "federated/fl_simulator.h"

using namespace fexiot;

int main() {
  Rng rng(2027);

  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 16;
  copt.vulnerable_fraction = 0.3;
  std::printf("building a clustered non-i.i.d. federation "
              "(3 latent household clusters, Dirichlet alpha=1)...\n");
  FederatedCorpus corpus = BuildClusteredFederatedCorpus(
      copt, 500, /*num_clients=*/10, /*num_clusters=*/3, /*alpha=*/1.0,
      /*profile_strength=*/0.7, &rng);
  for (size_t c = 0; c < corpus.partition.indices.size(); ++c) {
    std::printf("  client %zu: %zu graphs (latent cluster %d)\n", c,
                corpus.partition.indices[c].size(),
                corpus.partition.client_cluster[c]);
  }

  GnnConfig gc;
  gc.type = GnnType::kGin;
  gc.hidden_dim = 24;
  gc.embedding_dim = 24;
  FlConfig fc;
  fc.num_rounds = 8;
  fc.local.epochs = 2;
  fc.local.learning_rate = 0.02;
  fc.local.margin = 3.0;
  fc.local.pairs_per_sample = 2.0;

  for (FlAlgorithm alg : {FlAlgorithm::kFexiot, FlAlgorithm::kFedAvg,
                          FlAlgorithm::kLocalOnly}) {
    FederatedSimulator sim(gc, fc);
    sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
    const FlResult res = sim.Run(alg).value();
    std::printf("\n%-7s %s\n", FlAlgorithmName(alg), res.Summary().c_str());
    if (alg == FlAlgorithm::kFexiot) {
      std::printf("  discovered clusters:");
      for (int c : res.client_cluster) std::printf(" %d", c);
      std::printf("  (truth:");
      for (int c : corpus.partition.client_cluster) std::printf(" %d", c);
      std::printf(")\n");
      std::printf("  per-round loss:");
      for (const auto& r : res.rounds) {
        std::printf(" %.2f", r.mean_local_loss);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nThe clustered layer-wise aggregation reaches higher accuracy with\n"
      "fewer transferred bytes than FedAvg; local-only training trails\n"
      "because single houses lack data diversity.\n");
  return 0;
}
