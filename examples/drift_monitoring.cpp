// Drift monitoring: a deployed detector watches incoming interaction
// graphs and separates (a) known-benign, (b) known-vulnerable and (c)
// drifting samples — new interaction patterns outside the training space
// that the MAD filter routes to manual inspection (Section III-B3).
//
//   ./build/examples/drift_monitoring

#include <cstdio>

#include "core/fexiot.h"

using namespace fexiot;

int main() {
  Rng rng(31337);

  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 14;
  copt.vulnerable_fraction = 0.5;
  GraphCorpusGenerator gen(copt, &rng);

  FexIotConfig config;
  config.gnn.type = GnnType::kGin;
  config.gnn.hidden_dim = 24;
  config.gnn.embedding_dim = 24;
  config.train.epochs = 15;
  FexIoT fexiot(config);
  const Status st = fexiot.TrainLocal(GraphDataset(gen.GenerateDataset(400)));
  if (!st.ok()) {
    std::printf("training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("detector trained; monitoring a stream of %d graphs...\n\n", 60);

  int normal = 0, vulnerable = 0, drifting = 0, drift_truth_hits = 0;
  for (int i = 0; i < 60; ++i) {
    InteractionGraph g;
    const bool is_novel = i % 10 == 9;  // every 10th sample is a new pattern
    if (is_novel) {
      g = gen.GenerateDrifting();
    } else if (i % 3 == 0) {
      g = gen.GenerateVulnerable(gen.SampleVulnerabilityType());
    } else {
      g = gen.GenerateBenign();
    }
    const FexIoT::Verdict v = fexiot.Analyze(g);
    if (v.drifting) {
      ++drifting;
      if (is_novel) ++drift_truth_hits;
      std::printf("  [sample %2d] DRIFTING (score %.1f, %d rules) -> "
                  "queued for manual inspection%s\n",
                  i, v.drift_score, g.num_nodes(),
                  is_novel ? "  [truly novel]" : "");
    } else if (v.label == 1) {
      ++vulnerable;
    } else {
      ++normal;
    }
  }
  std::printf(
      "\nstream summary: %d normal, %d vulnerable, %d drifting "
      "(%d of %d planted novel patterns caught)\n",
      normal, vulnerable, drifting, drift_truth_hits, 6);
  std::printf(
      "\nDrifting samples bypass the (stale) classifier and go to a human —\n"
      "this is how the paper discovered its three new vulnerability\n"
      "patterns in the unlabeled IFTTT data.\n");
  return 0;
}
