// Quickstart: generate a small interaction-graph corpus, train the FexIoT
// pipeline locally, detect a vulnerable interaction and explain it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/stopwatch.h"
#include "core/fexiot.h"
#include "graph/vuln_checker.h"

using namespace fexiot;

int main() {
  Rng rng(2026);
  Stopwatch watch;

  // 1. Generate a labeled offline interaction-graph corpus (IFTTT rules).
  CorpusOptions copt;
  copt.platforms = {Platform::kIfttt};
  copt.min_nodes = 4;
  copt.max_nodes = 14;
  copt.vulnerable_fraction = 0.4;
  GraphCorpusGenerator generator(copt, &rng);
  GraphDataset all(generator.GenerateDataset(160));
  std::printf("generated %zu graphs (%.0f%% vulnerable) in %.2fs\n",
              all.size(), 100.0 * all.VulnerableFraction(),
              watch.ElapsedSeconds());

  GraphDataset train, test;
  all.Split(0.8, &rng, &train, &test);

  // 2. Train the pipeline: contrastive GNN + SGD head + MAD drift stats.
  FexIotConfig config;
  config.gnn.type = GnnType::kGin;
  config.gnn.hidden_dim = 16;
  config.gnn.embedding_dim = 16;
  config.train.epochs = 12;
  config.train.learning_rate = 0.02;
  watch.Restart();
  FexIoT fexiot(config);
  const Status st = fexiot.TrainLocal(train);
  if (!st.ok()) {
    std::printf("training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trained in %.2fs\n", watch.ElapsedSeconds());

  // 3. Evaluate detection on the held-out split.
  std::vector<int> labels, preds;
  for (const auto& g : test.graphs()) {
    labels.push_back(g.label());
    preds.push_back(fexiot.Predict(g));
  }
  const ClassificationMetrics m = ComputeMetrics(labels, preds);
  std::printf("held-out detection: %s\n", m.ToString().c_str());

  // 4. Pick a vulnerable test graph and explain it.
  for (const auto& g : test.graphs()) {
    if (g.label() != 1 || g.num_nodes() < 4) continue;
    const FexIoT::Verdict verdict = fexiot.Analyze(g);
    std::printf("\nanalyzing a %s graph with %d rules: p(vulnerable)=%.2f\n",
                VulnerabilityTypeName(g.vulnerability()), g.num_nodes(),
                verdict.probability);
    if (verdict.explanation.has_value()) {
      std::printf("%s", verdict.explanation_text.c_str());
      std::printf("ground-truth witness nodes:");
      for (int w : g.witness()) std::printf(" %d", w);
      std::printf("\n");
    }
    break;
  }
  return 0;
}
