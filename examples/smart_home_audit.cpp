// Smart-home audit: the end-to-end "one house" workflow of the paper's
// motivation — deploy rules, collect a day of event logs, clean and fuse
// them into an online interaction graph, detect and explain the vulnerable
// interaction (the smoke/water-valve scenario from the introduction).
//
//   ./build/examples/smart_home_audit

#include <cstdio>
#include <set>

#include "core/fexiot.h"
#include "core/testbed.h"
#include "graph/vuln_checker.h"

using namespace fexiot;

int main() {
  Rng rng(7);

  // 1. A house with the paper's introduction rules plus filler automation.
  Home home;
  RuleGenerator st(Platform::kSmartThings, &rng);
  RuleGenerator ifttt(Platform::kIfttt, &rng);
  // R1: "If smoke is detected, turn on the water valve and start alarm".
  home.rules.push_back(st.Materialize(
      Trigger{DeviceType::kSmokeDetector, "detected"},
      {Action{DeviceType::kWaterValve, "open"},
       Action{DeviceType::kAlarm, "on"}}));
  // R2: "Close the water valve when a water leak is detected".
  home.rules.push_back(st.Materialize(
      Trigger{DeviceType::kLeakSensor, "wet"},
      {Action{DeviceType::kWaterValve, "closed"}}));
  // Benign automation around them.
  home.rules.push_back(ifttt.Materialize(
      Trigger{DeviceType::kMotionSensor, "active"},
      {Action{DeviceType::kLight, "on"}}));
  home.rules.push_back(ifttt.Materialize(
      Trigger{DeviceType::kLight, "on"},
      {Action{DeviceType::kCamera, "on"}}));
  for (size_t i = 0; i < home.rules.size(); ++i) {
    home.rules[i].id = static_cast<int>(i) + 1;
  }
  {  // Instantiate devices.
    Home wired = BuildRandomHome(1, {Platform::kSmartThings}, &rng);
    home.devices.clear();
    std::set<DeviceType> used;
    for (const auto& r : home.rules) {
      used.insert(r.trigger.device);
      for (const auto& a : r.actions) used.insert(a.device);
    }
    int id = 1;
    for (DeviceType t : used) {
      home.devices.push_back(Device{id++, t, "kitchen", DeviceNoun(t)});
    }
  }

  std::printf("Deployed rules:\n");
  for (const auto& r : home.rules) {
    std::printf("  [%d] (%s) %s\n", r.id, PlatformName(r.platform),
                r.description.c_str());
  }

  // 2. Simulate a day of living and collect logs.
  SimulationConfig sc;
  sc.duration_seconds = 24 * 3600.0;
  sc.exogenous_mean_gap = 400.0;
  HomeSimulator sim(home, sc, &rng);
  const EventLog raw = sim.Run();
  const EventLog cleaned = raw.Cleaned();
  std::printf("\ncollected %zu raw log entries (%zu after cleaning)\n",
              raw.size(), cleaned.size());
  for (size_t i = 0; i < cleaned.size() && i < 8; ++i) {
    std::printf("  %s\n", cleaned.entries()[i].ToString().c_str());
  }

  // 3. Train a detection pipeline on an offline corpus, then fuse + audit.
  FexIotConfig config;
  config.gnn.type = GnnType::kGin;
  config.gnn.hidden_dim = 16;
  config.gnn.embedding_dim = 16;
  config.train.epochs = 25;
  config.train.pairs_per_sample = 3.0;
  CorpusOptions copt;
  copt.platforms = {Platform::kSmartThings, Platform::kIfttt};
  copt.min_nodes = 3;
  copt.max_nodes = 10;
  copt.vulnerable_fraction = 0.5;
  GraphCorpusGenerator gen(copt, &rng);
  FexIoT fexiot(config);
  const Status st_train = fexiot.TrainLocal(GraphDataset(gen.GenerateDataset(300)));
  if (!st_train.ok()) {
    std::printf("training failed: %s\n", st_train.ToString().c_str());
    return 1;
  }

  const InteractionGraph online = fexiot.Fuse(home, raw);
  std::printf("\nfused online interaction graph: %d fired rules, %d edges\n",
              online.num_nodes(), online.num_edges());
  const auto findings = VulnerabilityChecker::Check(online);
  for (const auto& f : findings) {
    std::printf("  ground-truth finding: %s (nodes:",
                VulnerabilityTypeName(f.type));
    for (int v : f.witness_nodes) std::printf(" %d", v);
    std::printf(")\n");
  }

  const FexIoT::Verdict verdict = fexiot.Analyze(online);
  std::printf("\nFexIoT verdict: p(vulnerable)=%.2f label=%d drift=%.1f\n",
              verdict.probability, verdict.label, verdict.drift_score);
  if (!verdict.explanation_text.empty()) {
    std::printf("%s", verdict.explanation_text.c_str());
  }
  std::printf(
      "\nThe R1/R2 pair is the paper's introduction vulnerability: smoke\n"
      "opens the water valve, the resulting leak event closes it again\n"
      "(action revert), so fire suppression silently fails.\n");
  return 0;
}
