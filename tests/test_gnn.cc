#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "gnn/contrastive.h"
#include "gnn/gnn_model.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"

namespace fexiot {
namespace {

// Builds a tiny synthetic interaction graph with controllable features.
InteractionGraph TinyGraph(int n, uint64_t seed, bool hetero = false) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < n; ++i) {
    GraphNode node;
    node.rule.platform = (hetero && i % 2 == 0) ? Platform::kAlexa
                                                : Platform::kIfttt;
    const int dim = PlatformFeatureDim(node.rule.platform);
    node.features.resize(static_cast<size_t>(dim));
    for (auto& f : node.features) f = rng.Normal(0.0, 0.5);
    g.AddNode(std::move(node));
  }
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  if (n > 2) g.AddEdge(0, n - 1);
  return g;
}

GnnConfig SmallConfig(GnnType type) {
  GnnConfig c;
  c.type = type;
  c.input_dim = 12;
  c.hetero_input_dim = 20;
  c.hidden_dim = 6;
  c.num_layers = 2;
  c.embedding_dim = 4;
  c.seed = 11;
  return c;
}

// Shrinks node features to the small config dims.
InteractionGraph ShrinkFeatures(InteractionGraph g, const GnnConfig& c) {
  for (int i = 0; i < g.num_nodes(); ++i) {
    auto& f = g.mutable_node(i).features;
    const bool sentence =
        PlatformFeatureDim(g.node(i).rule.platform) == kHeteroFeatureDim;
    f.resize(static_cast<size_t>(sentence ? c.hetero_input_dim
                                          : c.input_dim));
  }
  return g;
}

TEST(GnnModel, ForwardShapes) {
  for (GnnType type : {GnnType::kGcn, GnnType::kGin, GnnType::kMagnn}) {
    const GnnConfig c = SmallConfig(type);
    GnnModel model(c);
    const InteractionGraph g =
        ShrinkFeatures(TinyGraph(5, 3, type == GnnType::kMagnn), c);
    const PreparedGraph p = PrepareGraph(g, c);
    const std::vector<double> z = model.Forward(p, nullptr);
    EXPECT_EQ(z.size(), static_cast<size_t>(c.embedding_dim))
        << GnnTypeName(type);
    for (double v : z) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(GnnModel, DeterministicForward) {
  const GnnConfig c = SmallConfig(GnnType::kGcn);
  GnnModel m1(c), m2(c);
  const InteractionGraph g = ShrinkFeatures(TinyGraph(4, 5), c);
  const PreparedGraph p = PrepareGraph(g, c);
  const auto z1 = m1.Forward(p, nullptr);
  const auto z2 = m2.Forward(p, nullptr);
  for (size_t i = 0; i < z1.size(); ++i) EXPECT_DOUBLE_EQ(z1[i], z2[i]);
}

TEST(GnnModel, LayerRoundTrip) {
  const GnnConfig c = SmallConfig(GnnType::kMagnn);
  GnnModel model(c);
  for (int l = 0; l < model.num_layers(); ++l) {
    std::vector<double> flat = model.GetLayerFlat(l);
    EXPECT_EQ(flat.size(), model.LayerSize(l));
    for (auto& v : flat) v += 0.25;
    model.SetLayerFlat(l, flat);
    const std::vector<double> back = model.GetLayerFlat(l);
    EXPECT_EQ(back, flat);
  }
}

TEST(GnnModel, MagnnHasInputProjectionLayer) {
  const GnnConfig gcn = SmallConfig(GnnType::kGcn);
  const GnnConfig magnn = SmallConfig(GnnType::kMagnn);
  EXPECT_EQ(GnnModel(gcn).num_layers(), gcn.num_layers + 1);
  EXPECT_EQ(GnnModel(magnn).num_layers(), magnn.num_layers + 2);
}

// The decisive correctness test: numerical gradient check of the full
// backward pass for every architecture.
class GnnGradientCheck : public ::testing::TestWithParam<GnnType> {};

TEST_P(GnnGradientCheck, MatchesNumericalGradient) {
  const GnnType type = GetParam();
  const GnnConfig c = SmallConfig(type);
  GnnModel model(c);
  const InteractionGraph g =
      ShrinkFeatures(TinyGraph(5, 7, type == GnnType::kMagnn), c);
  const PreparedGraph p = PrepareGraph(g, c);

  // Loss = 0.5 * ||z||^2 so dL/dz = z.
  auto loss = [&]() {
    const std::vector<double> z = model.Forward(p, nullptr);
    double s = 0.0;
    for (double v : z) s += 0.5 * v * v;
    return s;
  };

  ForwardCache cache;
  const std::vector<double> z = model.Forward(p, &cache);
  model.ZeroGrad();
  model.Backward(cache, z);

  // Compare Backward-accumulated gradients against central differences,
  // sampling a few parameters per layer.
  const double eps = 1e-6;
  for (int l = 0; l < model.num_layers(); ++l) {
    std::vector<double> flat = model.GetLayerFlat(l);
    const std::vector<double> analytic = model.GetLayerGradFlat(l);
    Rng pick(100 + static_cast<uint64_t>(l));
    const size_t checks = std::min<size_t>(10, flat.size());
    for (size_t k = 0; k < checks; ++k) {
      const size_t i = static_cast<size_t>(pick.UniformInt(flat.size()));
      std::vector<double> mod = flat;
      mod[i] = flat[i] + eps;
      model.SetLayerFlat(l, mod);
      const double up = loss();
      mod[i] = flat[i] - eps;
      model.SetLayerFlat(l, mod);
      const double down = loss();
      model.SetLayerFlat(l, flat);
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], numeric, 1e-4)
          << GnnTypeName(type) << " layer " << l << " param " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, GnnGradientCheck,
                         ::testing::Values(GnnType::kGcn, GnnType::kGin,
                                           GnnType::kMagnn));

TEST(ContrastiveLoss, SameClassPullsTogether) {
  const std::vector<double> zi = {1.0, 0.0};
  const std::vector<double> zj = {0.0, 1.0};
  const ContrastivePair p = ContrastiveLoss(zi, zj, false, 2.0);
  EXPECT_DOUBLE_EQ(p.loss, 2.0);  // d^2 = 2
  EXPECT_DOUBLE_EQ(p.grad_i[0], 2.0);
  EXPECT_DOUBLE_EQ(p.grad_i[1], -2.0);
}

TEST(ContrastiveLoss, SquaredMarginMatchesEq2) {
  const std::vector<double> zi = {0.5, 0.0};
  const std::vector<double> zj = {0.0, 0.0};
  const ContrastivePair p = ContrastiveLoss(
      zi, zj, true, 2.0, ContrastiveForm::kSquaredMargin);
  EXPECT_NEAR(p.loss, 2.0 - 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(p.grad_i[0], -1.0);
}

TEST(ContrastiveLoss, HadsellPushInsideMargin) {
  const std::vector<double> zi = {0.5, 0.0};
  const std::vector<double> zj = {0.0, 0.0};
  const ContrastivePair p = ContrastiveLoss(zi, zj, true, 2.0);
  // d = 0.5, gap = 1.5: L = 2.25, grad = -2*1.5/0.5 * 0.5 = -3.
  EXPECT_NEAR(p.loss, 2.25, 1e-12);
  EXPECT_NEAR(p.grad_i[0], -3.0, 1e-12);
}

TEST(ContrastiveLoss, HadsellPushNonVanishingAtCollapse) {
  // The stability property the Eq. 2 literal form lacks: coincident
  // embeddings still receive a push.
  const std::vector<double> z = {0.0, 0.0};
  const ContrastivePair p = ContrastiveLoss(z, z, true, 2.0);
  EXPECT_GT(std::fabs(p.grad_i[0]), 1.0);
}

TEST(ContrastiveLoss, DifferentClassOutsideMarginIsZero) {
  const std::vector<double> zi = {10.0, 0.0};
  const std::vector<double> zj = {0.0, 0.0};
  const ContrastivePair p = ContrastiveLoss(zi, zj, true, 2.0);
  EXPECT_DOUBLE_EQ(p.loss, 0.0);
  EXPECT_DOUBLE_EQ(p.grad_i[0], 0.0);
}

TEST(GnnTrainer, ContrastiveTrainingSeparatesClasses) {
  // Two synthetic classes with distinct feature signatures; after training
  // the mean intra-class embedding distance should be well below the mean
  // inter-class distance.
  GnnConfig c = SmallConfig(GnnType::kGcn);
  c.seed = 21;
  std::vector<InteractionGraph> graphs;
  Rng rng(22);
  for (int i = 0; i < 30; ++i) {
    InteractionGraph g = ShrinkFeatures(TinyGraph(5, rng.NextU64()), c);
    const int label = i % 2;
    // Class-dependent offset on the first feature dims.
    for (int v = 0; v < g.num_nodes(); ++v) {
      for (int d = 0; d < 4; ++d) {
        g.mutable_node(v).features[static_cast<size_t>(d)] +=
            label == 1 ? 1.5 : -1.5;
      }
    }
    g.set_label(label);
    graphs.push_back(std::move(g));
  }
  GnnModel model(c);
  TrainConfig tc;
  tc.epochs = 30;
  tc.learning_rate = 0.02;
  tc.margin = 4.0;
  GnnTrainer trainer(&model, tc);
  const std::vector<PreparedGraph> prepared = PrepareGraphs(graphs, c);
  Rng train_rng(23);
  trainer.Train(prepared, &train_rng);

  const Matrix emb = trainer.Embed(prepared);
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (size_t i = 0; i < graphs.size(); ++i) {
    for (size_t j = i + 1; j < graphs.size(); ++j) {
      double d2 = 0.0;
      for (size_t k = 0; k < emb.cols(); ++k) {
        const double diff = emb.At(i, k) - emb.At(j, k);
        d2 += diff * diff;
      }
      if (graphs[i].label() == graphs[j].label()) {
        intra += d2;
        ++n_intra;
      } else {
        inter += d2;
        ++n_inter;
      }
    }
  }
  intra /= n_intra;
  inter /= n_inter;
  EXPECT_LT(intra * 1.5, inter)
      << "intra=" << intra << " inter=" << inter;
}

TEST(GnnTrainer, EvaluateProducesReasonableMetricsOnSeparableData) {
  GnnConfig c = SmallConfig(GnnType::kGcn);
  std::vector<InteractionGraph> train_graphs, test_graphs;
  Rng rng(31);
  auto make = [&](int label) {
    InteractionGraph g = ShrinkFeatures(TinyGraph(4, rng.NextU64()), c);
    for (int v = 0; v < g.num_nodes(); ++v) {
      for (int d = 0; d < 4; ++d) {
        g.mutable_node(v).features[static_cast<size_t>(d)] +=
            label == 1 ? 2.0 : -2.0;
      }
    }
    g.set_label(label);
    return g;
  };
  for (int i = 0; i < 40; ++i) train_graphs.push_back(make(i % 2));
  for (int i = 0; i < 20; ++i) test_graphs.push_back(make(i % 2));

  GnnModel model(c);
  TrainConfig tc;
  tc.epochs = 25;
  tc.learning_rate = 0.02;
  GnnTrainer trainer(&model, tc);
  const auto prep_train = PrepareGraphs(train_graphs, c);
  const auto prep_test = PrepareGraphs(test_graphs, c);
  Rng train_rng(32);
  trainer.Train(prep_train, &train_rng);
  const ClassificationMetrics m = trainer.Evaluate(prep_train, prep_test);
  EXPECT_GT(m.accuracy, 0.85);
}

TEST(PrepareGraph, GinPropagationHasSelfAndNeighbors) {
  GnnConfig c = SmallConfig(GnnType::kGin);
  const InteractionGraph g = ShrinkFeatures(TinyGraph(3, 1), c);
  const PreparedGraph p = PrepareGraph(g, c);
  const Matrix prop = p.DensePropagation();
  EXPECT_DOUBLE_EQ(prop.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(prop.At(0, 1), 1.0);  // edge 0-1
}

TEST(PrepareGraph, GcnPropagationRowsNormalized) {
  GnnConfig c = SmallConfig(GnnType::kGcn);
  const InteractionGraph g = ShrinkFeatures(TinyGraph(4, 2), c);
  const PreparedGraph p = PrepareGraph(g, c);
  const Matrix prop = p.DensePropagation();
  // Symmetric normalization: eigenvalue bound => entries in [0, 1].
  for (size_t i = 0; i < prop.size(); ++i) {
    EXPECT_GE(prop.data()[i], 0.0);
    EXPECT_LE(prop.data()[i], 1.0);
  }
}

}  // namespace
}  // namespace fexiot

#include "gnn/serialization.h"

namespace fexiot {
namespace {

TEST(Serialization, RoundTripsAllArchitectures) {
  for (GnnType type : {GnnType::kGcn, GnnType::kGin, GnnType::kMagnn}) {
    const GnnConfig c = SmallConfig(type);
    GnnModel original(c);
    // Perturb weights so the round trip is non-trivial.
    std::vector<double> flat = original.GetLayerFlat(0);
    for (auto& v : flat) v += 0.5;
    original.SetLayerFlat(0, flat);

    const std::string path =
        "/tmp/fexiot_model_" + std::string(GnnTypeName(type)) + ".bin";
    ASSERT_TRUE(SaveGnnModel(original, path).ok());
    Result<GnnModel> loaded = LoadGnnModel(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    const InteractionGraph g =
        ShrinkFeatures(TinyGraph(4, 9, type == GnnType::kMagnn), c);
    const PreparedGraph p = PrepareGraph(g, c);
    const auto z1 = original.Forward(p, nullptr);
    const auto z2 = loaded->Forward(p, nullptr);
    ASSERT_EQ(z1.size(), z2.size());
    for (size_t i = 0; i < z1.size(); ++i) EXPECT_DOUBLE_EQ(z1[i], z2[i]);
  }
}

TEST(Serialization, RejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(LoadGnnModel("/tmp/does_not_exist_fexiot.bin").ok());
  const std::string path = "/tmp/fexiot_corrupt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("garbage!", 8, 1, f);
  std::fclose(f);
  const Result<GnnModel> r = LoadGnnModel(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Serialization, RejectsTruncatedBuffer) {
  const GnnConfig c = SmallConfig(GnnType::kGin);
  const std::vector<uint8_t> bytes = SerializeGnnModel(GnnModel(c));
  // Every proper prefix must fail cleanly rather than crash or misread;
  // sample a spread of cut points including mid-header and mid-payload.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{8}, size_t{40},
                     bytes.size() / 2, bytes.size() - 1}) {
    ASSERT_LT(cut, bytes.size());
    const Result<GnnModel> r = DeserializeGnnModel(bytes.data(), cut);
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes accepted";
  }
}

TEST(Serialization, RejectsTruncatedFile) {
  const GnnConfig c = SmallConfig(GnnType::kGcn);
  const std::vector<uint8_t> bytes = SerializeGnnModel(GnnModel(c));
  const std::string path = "/tmp/fexiot_truncated.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
  std::fclose(f);
  EXPECT_FALSE(LoadGnnModel(path).ok());
}

TEST(Serialization, RejectsVersionMismatch) {
  const GnnConfig c = SmallConfig(GnnType::kGin);
  std::vector<uint8_t> bytes = SerializeGnnModel(GnnModel(c));
  // Same FEXGNN prefix, older version digits: must be reported as a
  // version mismatch, not as random garbage.
  std::memcpy(bytes.data(), "FEXGNN01", 8);
  const Result<GnnModel> r = DeserializeGnnModel(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("version"), std::string::npos)
      << r.status().ToString();
}

TEST(Serialization, RejectsCorruptedPayload) {
  const GnnConfig c = SmallConfig(GnnType::kGin);
  std::vector<uint8_t> bytes = SerializeGnnModel(GnnModel(c));
  // Flip one bit in the middle of the weight payload: the trailing CRC
  // must catch it even though every field still parses.
  bytes[bytes.size() / 2] ^= 0x10;
  const Result<GnnModel> r = DeserializeGnnModel(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("corrupt"), std::string::npos)
      << r.status().ToString();
}

TEST(Serialization, BufferRoundTripMatchesFileFormat) {
  const GnnConfig c = SmallConfig(GnnType::kMagnn);
  GnnModel original(c);
  const std::vector<uint8_t> bytes = SerializeGnnModel(original);
  const Result<GnnModel> back = DeserializeGnnModel(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  for (int l = 0; l < original.num_layers(); ++l) {
    EXPECT_EQ(original.GetLayerFlat(l), back->GetLayerFlat(l)) << "layer " << l;
  }
  // Re-serializing the deserialized model is byte-identical.
  EXPECT_EQ(SerializeGnnModel(*back), bytes);
}

}  // namespace
}  // namespace fexiot
