#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, FromRowsAndTranspose) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i.Sum(), 3.0);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum.At(1, 1), 12.0);
  const Matrix diff = sum - b;
  EXPECT_DOUBLE_EQ(diff.At(0, 0), 1.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a.At(1, 0), 6.0);
}

TEST(Matrix, RowSetGet) {
  Matrix m(2, 3);
  m.SetRow(1, {7, 8, 9});
  const auto row = m.Row(1);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[2], 9.0);
}

TEST(Matrix, NormAndHadamard) {
  Matrix a = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  Matrix b = Matrix::FromRows({{2, 0.5}});
  a.HadamardInPlace(b);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 2.0);
}

TEST(Ops, MatMulAgainstHandComputed) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(Ops, TransposedMatMulVariantsMatchExplicitTranspose) {
  Rng rng(1);
  const Matrix a = Matrix::RandomNormal(4, 3, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(4, 5, 1.0, &rng);
  const Matrix expected = MatMul(a.Transposed(), b);
  const Matrix got = MatMulTransA(a, b);
  ASSERT_TRUE(expected.SameShape(got));
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-12);
  }
  const Matrix c = Matrix::RandomNormal(5, 3, 1.0, &rng);
  const Matrix expected2 = MatMul(a, c.Transposed());
  const Matrix got2 = MatMulTransB(a, c);
  ASSERT_TRUE(expected2.SameShape(got2));
  for (size_t i = 0; i < expected2.size(); ++i) {
    EXPECT_NEAR(expected2.data()[i], got2.data()[i], 1e-12);
  }
}

TEST(Ops, ReluAndBackward) {
  const Matrix x = Matrix::FromRows({{-1, 2}, {0, -3}});
  const Matrix r = Relu(x);
  EXPECT_DOUBLE_EQ(r.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.At(0, 1), 2.0);
  const Matrix g = Matrix::FromRows({{5, 5}, {5, 5}});
  const Matrix back = ReluBackward(g, x);
  EXPECT_DOUBLE_EQ(back.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(back.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(back.At(1, 0), 0.0);  // relu'(0) = 0 convention
}

TEST(Ops, SoftmaxRowsSumToOne) {
  const Matrix x = Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}});
  const Matrix s = SoftmaxRows(x);
  for (size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) sum += s.At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(s.At(0, 2), s.At(0, 0));
}

TEST(Ops, ColumnMeanSum) {
  const Matrix x = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix mean = ColumnMean(x);
  EXPECT_DOUBLE_EQ(mean.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(mean.At(0, 1), 3.0);
  const Matrix sum = ColumnSum(x);
  EXPECT_DOUBLE_EQ(sum.At(0, 0), 4.0);
}

TEST(Ops, L2NormalizeRows) {
  const Matrix x = Matrix::FromRows({{3, 4}, {0, 0}});
  const Matrix n = L2NormalizeRows(x);
  EXPECT_NEAR(n.At(0, 0), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(n.At(1, 0), 0.0);  // zero row untouched
}

TEST(Ops, VectorHelpers) {
  const std::vector<double> a = {1, 0};
  const std::vector<double> b = {0, 1};
  EXPECT_DOUBLE_EQ(Dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, a), 0.0);  // zero guard
}

TEST(Ops, SolveSpdRecoversKnownSolution) {
  // A = [[4,1],[1,3]], x = [1,2] => b = [6,7].
  const Matrix a = Matrix::FromRows({{4, 1}, {1, 3}});
  const std::vector<double> x = SolveSpd(a, {6, 7}, 0.0);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(Ops, SolveSpdHandlesNearSingularWithRidge) {
  const Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  const std::vector<double> x = SolveSpd(a, {2, 2}, 1e-8);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-2);
}

TEST(Ops, WeightedLeastSquaresRecoversLinearModel) {
  // y = 2 x0 - 1 x1 + 0.5, exact fit expected.
  Rng rng(7);
  const size_t n = 40;
  Matrix x(n, 3);
  std::vector<double> y(n), w(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = 1.0;  // intercept column
    x.At(i, 1) = rng.Normal();
    x.At(i, 2) = rng.Normal();
    y[i] = 0.5 + 2.0 * x.At(i, 1) - 1.0 * x.At(i, 2);
  }
  const std::vector<double> beta = WeightedLeastSquares(x, y, w, 1e-10);
  ASSERT_EQ(beta.size(), 3u);
  EXPECT_NEAR(beta[0], 0.5, 1e-5);
  EXPECT_NEAR(beta[1], 2.0, 1e-5);
  EXPECT_NEAR(beta[2], -1.0, 1e-5);
}

TEST(Ops, WeightedLeastSquaresRespectsWeights) {
  // Two inconsistent points; the heavier one dominates.
  Matrix x = Matrix::FromRows({{1.0}, {1.0}});
  const std::vector<double> y = {0.0, 10.0};
  const std::vector<double> w = {1.0, 1e6};
  const std::vector<double> beta = WeightedLeastSquares(x, y, w, 1e-12);
  ASSERT_EQ(beta.size(), 1u);
  EXPECT_NEAR(beta[0], 10.0, 1e-3);
}

// Property: (A * B)^T == B^T * A^T, through the blocked kernels.
TEST(Ops, MatMulTransposeProperty) {
  Rng rng(21);
  for (const auto& [n, k, m] :
       {std::array<size_t, 3>{3, 4, 5}, std::array<size_t, 3>{70, 90, 80},
        std::array<size_t, 3>{1, 129, 65}}) {
    const Matrix a = Matrix::RandomNormal(n, k, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(k, m, 1.0, &rng);
    const Matrix lhs = MatMul(a, b).Transposed();
    const Matrix rhs = MatMul(b.Transposed(), a.Transposed());
    ASSERT_TRUE(lhs.SameShape(rhs));
    for (size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-9);
    }
  }
}

// Property: the three MatMul variants agree with explicit transposition
// at sizes large enough to take the blocked path.
TEST(Ops, TransVariantsConsistentAtBlockedSizes) {
  Rng rng(22);
  const size_t n = 72, k = 68, m = 75;
  const Matrix a = Matrix::RandomNormal(n, k, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(k, m, 1.0, &rng);
  const Matrix base = MatMul(a, b);
  const Matrix via_ta = MatMulTransA(a.Transposed(), b);
  const Matrix via_tb = MatMulTransB(a, b.Transposed());
  ASSERT_TRUE(base.SameShape(via_ta));
  ASSERT_TRUE(base.SameShape(via_tb));
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base.data()[i], via_ta.data()[i], 1e-9);
    EXPECT_NEAR(base.data()[i], via_tb.data()[i], 1e-9);
  }
}

// Property: MatMul is linear in its first argument.
TEST(Ops, MatMulLinearity) {
  Rng rng(23);
  const Matrix a1 = Matrix::RandomNormal(66, 80, 1.0, &rng);
  const Matrix a2 = Matrix::RandomNormal(66, 80, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(80, 66, 1.0, &rng);
  const Matrix sum_first = MatMul(a1 + a2, b);
  const Matrix sum_after = MatMul(a1, b) + MatMul(a2, b);
  for (size_t i = 0; i < sum_first.size(); ++i) {
    EXPECT_NEAR(sum_first.data()[i], sum_after.data()[i], 1e-9);
  }
}

// Property: Glorot init keeps values within the theoretical limit.
TEST(Matrix, GlorotUniformWithinLimit) {
  Rng rng(3);
  const size_t rows = 20, cols = 30;
  const Matrix m = Matrix::GlorotUniform(rows, cols, &rng);
  const double limit = std::sqrt(6.0 / (rows + cols));
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), limit + 1e-12);
  }
}

}  // namespace
}  // namespace fexiot
