#include <gtest/gtest.h>

#include <set>

#include "graph/corpus.h"
#include "graph/dataset.h"
#include "graph/fusion.h"
#include "graph/interaction_graph.h"
#include "graph/vuln_checker.h"
#include "smarthome/attacks.h"
#include "smarthome/home.h"

namespace fexiot {
namespace {

RuleGenerator MakeGen(Rng* rng) {
  return RuleGenerator(Platform::kIfttt, rng);
}

TEST(InteractionGraph, NodesAndEdges) {
  InteractionGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(GraphNode{});
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 1);  // duplicate ignored
  g.AddEdge(1, 1);  // self loop ignored
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(2).size(), 1u);
  EXPECT_EQ(g.UndirectedNeighbors(1).size(), 2u);
}

TEST(InteractionGraph, NormalizedAdjacencySymmetricRowBounded) {
  InteractionGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode(GraphNode{});
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const Matrix a = g.NormalizedAdjacency();
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(a.At(i, j), a.At(j, i), 1e-12);
    }
  }
  // Isolated node keeps only its self loop weight 1.
  EXPECT_DOUBLE_EQ(a.At(3, 3), 1.0);
}

TEST(InteractionGraph, InducedSubgraphRemapsEdges) {
  InteractionGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode(GraphNode{});
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const InteractionGraph sub = g.InducedSubgraph({1, 2});
  EXPECT_EQ(sub.num_nodes(), 2);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_TRUE(sub.HasEdge(0, 1));
}

TEST(InteractionGraph, ConnectivityQueries) {
  InteractionGraph g;
  for (int i = 0; i < 5; ++i) g.AddNode(GraphNode{});
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  EXPECT_TRUE(g.IsConnectedSubset({0, 1, 2}));
  EXPECT_FALSE(g.IsConnectedSubset({0, 3}));
  EXPECT_TRUE(g.IsConnectedSubset({4}));
  EXPECT_EQ(g.ConnectedComponents().size(), 2u);
}

TEST(InteractionGraph, DirectedCycleDetection) {
  InteractionGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(GraphNode{});
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_FALSE(g.HasDirectedCycle());
  g.AddEdge(2, 0);
  EXPECT_TRUE(g.HasDirectedCycle());
}

TEST(NodeFeatures, DimsAndTimeEncoding) {
  Rng rng(1);
  RuleGenerator gen = MakeGen(&rng);
  const Rule r = gen.Generate();
  const auto offline = ComputeNodeFeatures(r, -1.0);
  EXPECT_EQ(offline.size(), static_cast<size_t>(kHomoFeatureDim));
  // Offline: all extra dims zero.
  for (int k = 1; k <= 4; ++k) {
    EXPECT_DOUBLE_EQ(offline[offline.size() - k], 0.0);
  }
  const auto online = ComputeNodeFeatures(r, 6 * 3600.0);
  // Online: time dims set; consistency slots stay 0 (= fully consistent,
  // deviation encoding) until the fusion builder fills them.
  EXPECT_DOUBLE_EQ(online[online.size() - 1], 0.0);
  EXPECT_DOUBLE_EQ(online[online.size() - 2], 0.0);
  EXPECT_NE(online[online.size() - 4], 0.0);
}

// Property suite: every planted vulnerability type must be found by the
// checker with a witness covering the planted nodes.
class PlantedVulnerabilityTest
    : public ::testing::TestWithParam<VulnerabilityType> {};

TEST_P(PlantedVulnerabilityTest, CheckerFindsPlantedWitness) {
  Rng rng(17);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 4;
  opt.max_nodes = 10;
  GraphCorpusGenerator gen(opt, &rng);
  for (int trial = 0; trial < 5; ++trial) {
    const InteractionGraph g = gen.GenerateVulnerable(GetParam());
    EXPECT_EQ(g.label(), 1);
    EXPECT_EQ(g.vulnerability(), GetParam());
    EXPECT_FALSE(g.witness().empty());
    const auto findings = VulnerabilityChecker::CheckType(g, GetParam());
    EXPECT_FALSE(findings.empty())
        << "checker missed planted " << VulnerabilityTypeName(GetParam())
        << "\n" << g.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, PlantedVulnerabilityTest,
    ::testing::Values(VulnerabilityType::kConditionBypass,
                      VulnerabilityType::kConditionBlock,
                      VulnerabilityType::kActionRevert,
                      VulnerabilityType::kActionLoop,
                      VulnerabilityType::kActionConflict,
                      VulnerabilityType::kActionDuplicate));

TEST(Corpus, BenignGraphsAreClean) {
  Rng rng(18);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 4;
  opt.max_nodes = 12;
  GraphCorpusGenerator gen(opt, &rng);
  for (int i = 0; i < 10; ++i) {
    const InteractionGraph g = gen.GenerateBenign();
    EXPECT_EQ(g.label(), 0);
    EXPECT_TRUE(VulnerabilityChecker::Check(g).empty()) << g.ToString();
  }
}

TEST(Corpus, DatasetRespectsVulnerableFraction) {
  Rng rng(19);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 8;
  opt.vulnerable_fraction = 0.4;
  GraphCorpusGenerator gen(opt, &rng);
  GraphDataset data(gen.GenerateDataset(50));
  EXPECT_NEAR(data.VulnerableFraction(), 0.4, 0.05);
}

TEST(Corpus, DriftingGraphsDifferFromKnownTypes) {
  Rng rng(20);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  GraphCorpusGenerator gen(opt, &rng);
  for (int i = 0; i < 6; ++i) {
    const InteractionGraph g = gen.GenerateDrifting();
    EXPECT_EQ(g.label(), 1);
    EXPECT_EQ(g.vulnerability(), VulnerabilityType::kNone);
    EXPECT_GT(g.num_nodes(), 3);
  }
}

TEST(Dataset, SplitPreservesAllSamples) {
  Rng rng(21);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 6;
  GraphCorpusGenerator gen(opt, &rng);
  GraphDataset data(gen.GenerateDataset(30));
  GraphDataset train, test;
  data.Split(0.8, &rng, &train, &test);
  EXPECT_EQ(train.size() + test.size(), data.size());
  EXPECT_EQ(train.size(), 24u);
}

TEST(Dataset, DirichletPartitionCoversAll) {
  Rng rng(22);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 6;
  GraphCorpusGenerator gen(opt, &rng);
  GraphDataset data(gen.GenerateDataset(60));
  for (double alpha : {0.1, 1.0, 10.0}) {
    const ClientPartition part = PartitionDirichlet(data, 5, alpha, &rng);
    size_t total = 0;
    std::set<size_t> seen;
    for (const auto& shard : part.indices) {
      total += shard.size();
      for (size_t i : shard) {
        EXPECT_TRUE(seen.insert(i).second) << "sample assigned twice";
      }
      EXPECT_GE(shard.size(), 2u);
    }
    EXPECT_EQ(total, data.size());
  }
}

TEST(Dataset, ClusteredFederatedCorpusInvariants) {
  Rng rng(23);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 8;
  opt.vulnerable_fraction = 0.3;
  const FederatedCorpus corpus =
      BuildClusteredFederatedCorpus(opt, 90, 6, 3, 1.0, 0.5, &rng);
  EXPECT_EQ(corpus.partition.indices.size(), 6u);
  EXPECT_EQ(corpus.cluster_tests.size(), 3u);
  for (const auto& pool : corpus.cluster_tests) EXPECT_GT(pool.size(), 0u);
  // Every client holds at least 3 samples of each class.
  for (const auto& shard : corpus.partition.indices) {
    int pos = 0, neg = 0;
    for (size_t i : shard) {
      (corpus.data.graph(i).label() == 1 ? pos : neg) += 1;
    }
    EXPECT_GE(pos, 3);
    EXPECT_GE(neg, 3);
  }
}

TEST(Dataset, SplitAndPartitionHandleDegenerateInputs) {
  Rng rng(27);
  // 0 graphs: split and partition stay well-formed and empty.
  GraphDataset empty;
  GraphDataset train, test;
  empty.Split(0.8, &rng, &train, &test);
  EXPECT_TRUE(train.empty());
  EXPECT_TRUE(test.empty());
  const ClientPartition p0 = PartitionDirichlet(empty, 4, 1.0, &rng);
  ASSERT_EQ(p0.indices.size(), 4u);
  for (const auto& shard : p0.indices) EXPECT_TRUE(shard.empty());

  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 6;
  GraphCorpusGenerator gen(opt, &rng);
  GraphDataset data(gen.GenerateDataset(20));

  // 1 client: everything lands on it.
  const ClientPartition p1 = PartitionDirichlet(data, 1, 1.0, &rng);
  ASSERT_EQ(p1.indices.size(), 1u);
  EXPECT_EQ(p1.indices[0].size(), data.size());

  // alpha -> 0 (including exactly 0): must neither crash in the Gamma
  // sampler nor lose samples.
  for (double alpha : {0.0, 1e-9}) {
    const ClientPartition pa = PartitionDirichlet(data, 4, alpha, &rng);
    size_t total = 0;
    for (const auto& shard : pa.indices) total += shard.size();
    EXPECT_EQ(total, data.size()) << "alpha=" << alpha;
    const ClientPartition pc = PartitionClustered(data, 4, 2, alpha, &rng);
    total = 0;
    for (const auto& shard : pc.indices) total += shard.size();
    EXPECT_EQ(total, data.size()) << "alpha=" << alpha;
  }
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(DatasetDeathTest, NullRngAsserts) {
  GraphDataset data;
  data.Add(InteractionGraph{});
  GraphDataset train, test;
  EXPECT_DEATH(data.Split(0.5, nullptr, &train, &test), "rng");
  EXPECT_DEATH(PartitionDirichlet(data, 2, 1.0, nullptr), "rng");
  EXPECT_DEATH(PartitionClustered(data, 2, 2, 1.0, nullptr), "rng");
}
#endif

TEST(Fusion, OnlineGraphFromSimulatedLog) {
  Rng rng(24);
  const Home home = BuildRandomHome(10, {Platform::kSmartThings}, &rng);
  SimulationConfig config;
  config.duration_seconds = 6 * 3600.0;
  config.exogenous_mean_gap = 200.0;
  HomeSimulator sim(home, config, &rng);
  const EventLog cleaned = sim.Run().Cleaned();
  OnlineGraphBuilder builder(home);
  const InteractionGraph g = builder.Build(cleaned);
  // Every node corresponds to a deployed rule and carries online features.
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_GE(g.node(i).event_time, 0.0);
    const auto& f = g.node(i).features;
    EXPECT_EQ(f.size(), static_cast<size_t>(kHomoFeatureDim));
  }
}

TEST(Fusion, ConsistencyDimsDropUnderCommandFailure) {
  Rng rng(25);
  const Home home = BuildRandomHome(12, {Platform::kSmartThings}, &rng);
  SimulationConfig config;
  config.duration_seconds = 8 * 3600.0;
  config.exogenous_mean_gap = 150.0;
  config.execution_error_rate = 0.0;
  HomeSimulator sim(home, config, &rng);
  const EventLog raw = sim.Run();

  OnlineGraphBuilder builder(home);
  const InteractionGraph clean_graph = builder.Build(raw.Cleaned());
  AttackInjector injector(home, &rng);
  const AttackResult attacked =
      injector.Inject(raw, AttackType::kStealthyCommand, 0.8);
  const InteractionGraph attacked_graph =
      builder.Build(attacked.log.Cleaned());

  auto mean_cmd_consistency = [](const InteractionGraph& g) {
    if (g.num_nodes() == 0) return 1.0;
    double s = 0.0;
    for (int i = 0; i < g.num_nodes(); ++i) {
      const auto& f = g.node(i).features;
      s += f[f.size() - kFeatureDimCommandConsistency];
    }
    return s / g.num_nodes();
  };
  if (clean_graph.num_nodes() > 0 && attacked_graph.num_nodes() > 0) {
    EXPECT_GE(mean_cmd_consistency(clean_graph),
              mean_cmd_consistency(attacked_graph));
  }
}

TEST(RelationalFeatures, ConflictSiblingsGetR2) {
  Rng rng(26);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 4;
  opt.max_nodes = 8;
  opt.extraction_noise = 0.0;
  GraphCorpusGenerator gen(opt, &rng);
  const InteractionGraph g =
      gen.GenerateVulnerable(VulnerabilityType::kActionConflict);
  // At least one witness node has the conflict relational dim set.
  bool any_r2 = false;
  for (int v : g.witness()) {
    const auto& f = g.node(v).features;
    any_r2 |= f[f.size() - kExtraFeatureDims + 2] > 0.5;
  }
  EXPECT_TRUE(any_r2);
}

}  // namespace
}  // namespace fexiot
