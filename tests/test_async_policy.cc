#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "runtime/async_policy.h"

namespace fexiot {
namespace {

// ---------------------------------------------------------------------------
// Staleness decay alpha(s) = alpha0 * (s+1)^-a
// ---------------------------------------------------------------------------

TEST(StalenessWeight, FreshUpdateGetsAlpha0) {
  EXPECT_DOUBLE_EQ(StalenessWeight(0.6, 0.5, 0), 0.6);
  EXPECT_DOUBLE_EQ(StalenessWeight(1.0, 2.0, 0), 1.0);
}

TEST(StalenessWeight, StrictlyMonotoneDecreasingWhenExponentPositive) {
  for (double alpha0 : {0.2, 0.6, 1.0}) {
    for (double a : {0.25, 0.5, 1.0, 2.0}) {
      double prev = std::numeric_limits<double>::infinity();
      for (int s = 0; s <= 50; ++s) {
        const double w = StalenessWeight(alpha0, a, s);
        EXPECT_LT(w, prev) << "alpha0=" << alpha0 << " a=" << a << " s=" << s;
        EXPECT_GT(w, 0.0);
        EXPECT_LE(w, alpha0);
        prev = w;
      }
    }
  }
}

TEST(StalenessWeight, ZeroExponentDisablesDecay) {
  for (int s = 0; s <= 20; ++s) {
    EXPECT_DOUBLE_EQ(StalenessWeight(0.4, 0.0, s), 0.4);
  }
}

TEST(StalenessWeight, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(StalenessWeight(0.8, 1.0, 3), 0.8 / 4.0);
  EXPECT_DOUBLE_EQ(StalenessWeight(0.5, 2.0, 1), 0.5 / 4.0);
  EXPECT_DOUBLE_EQ(StalenessWeight(0.9, 0.5, 8), 0.9 / 3.0);
}

TEST(StalenessWeight, NegativeStalenessClampsToFresh) {
  EXPECT_DOUBLE_EQ(StalenessWeight(0.6, 0.5, -3), 0.6);
}

// ---------------------------------------------------------------------------
// EWMA speed estimates
// ---------------------------------------------------------------------------

TEST(EwmaSpeed, PredictsInfinityBeforeFirstObservation) {
  EwmaSpeed s(0.5);
  EXPECT_FALSE(s.initialized());
  EXPECT_TRUE(std::isinf(s.Predict()));
}

TEST(EwmaSpeed, FirstObservationInstalledVerbatim) {
  EwmaSpeed s(0.25);
  s.Observe(3.5);
  EXPECT_TRUE(s.initialized());
  EXPECT_DOUBLE_EQ(s.Predict(), 3.5);
}

TEST(EwmaSpeed, ConvergesGeometricallyToConstantInput) {
  // After the first sample the error to a constant signal shrinks by
  // exactly (1 - beta) per observation.
  const double beta = 0.3, target = 2.0;
  EwmaSpeed s(beta);
  s.Observe(10.0);
  double prev_err = std::abs(s.Predict() - target);
  for (int i = 0; i < 40; ++i) {
    s.Observe(target);
    const double err = std::abs(s.Predict() - target);
    EXPECT_NEAR(err, prev_err * (1.0 - beta), 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-4);
}

TEST(EwmaSpeed, BetaOneTracksLatestObservation) {
  EwmaSpeed s(1.0);
  s.Observe(5.0);
  s.Observe(1.0);
  EXPECT_DOUBLE_EQ(s.Predict(), 1.0);
  s.Observe(9.0);
  EXPECT_DOUBLE_EQ(s.Predict(), 9.0);
}

TEST(EwmaSpeed, SeparatesFastAndSlowClientsUnderNoise) {
  // Property: two clients with well-separated mean RTTs stay ordered by
  // their EWMA estimates under bounded deterministic jitter.
  Rng rng(7);
  EwmaSpeed fast(0.5), slow(0.5);
  for (int i = 0; i < 64; ++i) {
    fast.Observe(1.0 + rng.Uniform(-0.2, 0.2));
    slow.Observe(4.0 + rng.Uniform(-0.2, 0.2));
    EXPECT_LT(fast.Predict(), slow.Predict());
  }
}

// ---------------------------------------------------------------------------
// Tier assignment
// ---------------------------------------------------------------------------

TEST(AssignTiers, EmptyAndSingleTierEdgeCases) {
  EXPECT_TRUE(AssignTiers({}, 3).empty());
  EXPECT_EQ(AssignTiers({1.0, 2.0, 3.0}, 1), (std::vector<int>{0, 0, 0}));
}

TEST(AssignTiers, RespectsExpectedArrivalOrdering) {
  // A client expected earlier must never land in a later tier than a
  // client expected strictly later.
  const std::vector<double> expected = {5.0, 1.0, 3.0, 2.0, 4.0, 0.5};
  const std::vector<int> tier = AssignTiers(expected, 3);
  for (size_t i = 0; i < expected.size(); ++i) {
    for (size_t j = 0; j < expected.size(); ++j) {
      if (expected[i] < expected[j]) {
        EXPECT_LE(tier[i], tier[j]) << "i=" << i << " j=" << j;
      }
    }
  }
}

TEST(AssignTiers, TierSizesAreBalanced) {
  for (size_t n : {size_t{1}, size_t{5}, size_t{8}, size_t{13}}) {
    for (int t : {2, 3, 4}) {
      std::vector<double> expected;
      for (size_t i = 0; i < n; ++i) {
        expected.push_back(static_cast<double>((i * 7) % n));
      }
      const std::vector<int> tier = AssignTiers(expected, t);
      std::vector<int> count(static_cast<size_t>(t), 0);
      for (int x : tier) {
        ASSERT_GE(x, 0);
        ASSERT_LT(x, t);
        ++count[static_cast<size_t>(x)];
      }
      const auto mm = std::minmax_element(count.begin(), count.end());
      // Non-empty tiers differ in size by at most one; trailing tiers may
      // be empty when n < t.
      if (n >= static_cast<size_t>(t)) {
        EXPECT_LE(*mm.second - *mm.first, 1) << "n=" << n << " t=" << t;
      }
    }
  }
}

TEST(AssignTiers, StableAcrossRerunsAndTieBreaksByPosition) {
  const std::vector<double> expected = {2.0, 2.0, 1.0, 2.0, 1.0, 1.0};
  const std::vector<int> a = AssignTiers(expected, 2);
  const std::vector<int> b = AssignTiers(expected, 2);
  EXPECT_EQ(a, b);
  // Ties break by position: the three 1.0s (positions 2, 4, 5) fill the
  // early tier before any 2.0.
  EXPECT_EQ(a, (std::vector<int>{1, 1, 0, 1, 0, 0}));
}

TEST(AssignTiers, AllUnknownPredictionsChunkByPosition) {
  // First semi-async wave: every prediction is +inf; clients chunk into
  // contiguous index ranges.
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<int> tier = AssignTiers(std::vector<double>(6, inf), 3);
  EXPECT_EQ(tier, (std::vector<int>{0, 0, 1, 1, 2, 2}));
}

TEST(AssignTiers, UnknownClientsSortAfterKnownOnes) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> expected = {inf, 1.0, inf, 2.0};
  const std::vector<int> tier = AssignTiers(expected, 2);
  EXPECT_EQ(tier[1], 0);
  EXPECT_EQ(tier[3], 0);
  EXPECT_EQ(tier[0], 1);
  EXPECT_EQ(tier[2], 1);
}

// ---------------------------------------------------------------------------
// Running quantile (adaptive deadlines)
// ---------------------------------------------------------------------------

TEST(RunningQuantile, MatchesSortedReference) {
  Rng rng(11);
  std::vector<double> samples;
  for (double q : {0.1, 0.5, 0.9, 1.0 - 1e-9}) {
    RunningQuantile rq(q);
    samples.clear();
    for (int i = 0; i < 200; ++i) {
      const double v = rng.Uniform(0.0, 100.0);
      rq.Add(v);
      samples.push_back(v);
      std::vector<double> sorted = samples;
      std::sort(sorted.begin(), sorted.end());
      const double r = std::ceil(q * static_cast<double>(sorted.size())) - 1.0;
      const size_t idx = r <= 0.0 ? 0 : static_cast<size_t>(r);
      EXPECT_DOUBLE_EQ(rq.Value(), sorted[std::min(idx, sorted.size() - 1)]);
    }
  }
}

TEST(RunningQuantile, SingleSampleIsEveryQuantile) {
  for (double q : {0.05, 0.5, 0.95}) {
    RunningQuantile rq(q);
    EXPECT_TRUE(rq.empty());
    rq.Add(7.25);
    EXPECT_DOUBLE_EQ(rq.Value(), 7.25);
  }
}

// ---------------------------------------------------------------------------
// Arrival tracker: duplicate-delivery / out-of-order negative paths
// ---------------------------------------------------------------------------

TEST(ArrivalTracker, FirstArrivalWinsAndDuplicatesAreCounted) {
  ArrivalTracker t(4);
  EXPECT_TRUE(t.Arrive(2, 1.5));
  EXPECT_FALSE(t.Arrive(2, 2.5));  // duplicate delivery (e.g. replay)
  EXPECT_FALSE(t.Arrive(2, 0.5));  // even an "earlier" duplicate loses
  EXPECT_TRUE(t.arrived(2));
  EXPECT_DOUBLE_EQ(t.arrival_time(2), 1.5);
  EXPECT_EQ(t.arrivals(), 1);
  EXPECT_EQ(t.duplicates(), 2);
}

TEST(ArrivalTracker, OutOfOrderArrivalsKeepPerClientTimes) {
  // Arrival order need not follow client order; bookkeeping is per client.
  ArrivalTracker t(3);
  EXPECT_TRUE(t.Arrive(2, 0.25));
  EXPECT_TRUE(t.Arrive(0, 0.75));
  EXPECT_FALSE(t.arrived(1));
  EXPECT_EQ(t.arrivals(), 2);
  EXPECT_DOUBLE_EQ(t.arrival_time(2), 0.25);
  EXPECT_DOUBLE_EQ(t.arrival_time(0), 0.75);
}

TEST(ArrivalTracker, ResetClearsTheWave) {
  ArrivalTracker t(2);
  EXPECT_TRUE(t.Arrive(0, 1.0));
  EXPECT_FALSE(t.Arrive(0, 2.0));
  t.Reset();
  EXPECT_FALSE(t.arrived(0));
  EXPECT_EQ(t.arrivals(), 0);
  EXPECT_EQ(t.duplicates(), 0);
  EXPECT_TRUE(t.Arrive(0, 3.0));
  EXPECT_DOUBLE_EQ(t.arrival_time(0), 3.0);
}

}  // namespace
}  // namespace fexiot
