// End-to-end integration tests crossing module boundaries: corpus ->
// federated training -> adoption -> detection -> drift -> explanation,
// and the full Table II testbed path.

#include <gtest/gtest.h>

#include <set>

#include "core/fexiot.h"
#include "core/testbed.h"
#include "federated/fl_simulator.h"

namespace fexiot {
namespace {

TEST(Integration, FederatedTrainingThenLocalPipeline) {
  Rng rng(81);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 4;
  opt.max_nodes = 10;
  opt.vulnerable_fraction = 0.4;
  FederatedCorpus corpus =
      BuildClusteredFederatedCorpus(opt, 150, 5, 2, 1.0, 0.6, &rng);

  GnnConfig gc;
  gc.type = GnnType::kGin;
  gc.hidden_dim = 12;
  gc.embedding_dim = 12;
  FlConfig fc;
  fc.num_rounds = 4;
  fc.local.epochs = 1;
  fc.local.learning_rate = 0.02;
  fc.local.margin = 3.0;
  FederatedSimulator sim(gc, fc);
  sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
  const FlResult res = sim.Run(FlAlgorithm::kFexiot).value();
  EXPECT_GT(res.mean.accuracy, 0.5);

  // A fresh house adopts the federally-trained model and runs the full
  // pipeline on its own data.
  FexIotConfig config;
  config.gnn = gc;
  config.train.epochs = 4;
  config.explain.iterations = 2;
  config.explain.beam_width = 2;
  config.explain.max_subgraph_nodes = 3;
  config.explain.shap_samples = 6;
  FexIoT house(config);
  GraphCorpusGenerator gen(opt, &rng);
  GraphDataset local(gen.GenerateDataset(60));
  ASSERT_TRUE(house.AdoptModel(*sim.client(0)->model(), local).ok());

  const InteractionGraph vuln =
      gen.GenerateVulnerable(VulnerabilityType::kActionLoop);
  const FexIoT::Verdict verdict = house.Analyze(vuln);
  EXPECT_GE(verdict.probability, 0.0);
}

TEST(Integration, TestbedPathAttacksChangeGraphs) {
  Rng rng(82);
  TestbedOptions opt;
  opt.num_samples = 40;
  opt.attacked_fraction = 0.5;
  opt.window_hours = 2.0;
  const auto samples = GenerateTestbed(opt, &rng);
  ASSERT_EQ(samples.size(), 40u);
  int attacked = 0, labeled = 0;
  for (const auto& s : samples) {
    attacked += s.attacked ? 1 : 0;
    labeled += s.label;
  }
  EXPECT_EQ(attacked, 20);
  EXPECT_GE(labeled, attacked);  // attacks imply label 1
}

TEST(Integration, ExplanationWitnessOnFederatedModel) {
  Rng rng(83);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 5;
  opt.max_nodes = 9;
  opt.vulnerable_fraction = 0.5;
  opt.extraction_noise = 0.0;
  GraphCorpusGenerator gen(opt, &rng);
  GraphDataset data(gen.GenerateDataset(100));

  FexIotConfig config;
  config.gnn.hidden_dim = 12;
  config.gnn.embedding_dim = 12;
  config.train.epochs = 10;
  config.explain.iterations = 4;
  config.explain.beam_width = 3;
  config.explain.max_subgraph_nodes = 3;
  config.explain.shap_samples = 8;
  FexIoT fexiot(config);
  ASSERT_TRUE(fexiot.TrainLocal(data).ok());

  // Aggregate witness overlap across a few explanations.
  int overlap = 0, total = 0;
  for (int i = 0; i < 4; ++i) {
    const InteractionGraph g =
        gen.GenerateVulnerable(gen.SampleVulnerabilityType());
    const ExplanationResult res = fexiot.Explain(g);
    const std::set<int> witness(g.witness().begin(), g.witness().end());
    for (int v : res.subgraph_nodes) overlap += witness.count(v);
    total += static_cast<int>(witness.size());
  }
  EXPECT_GT(total, 0);
  EXPECT_GT(overlap, 0);  // explanations touch ground-truth witnesses
}

TEST(Integration, HeterogeneousCorpusWithMagnn) {
  Rng rng(84);
  CorpusOptions opt;
  opt.platforms = {Platform::kSmartThings, Platform::kHomeAssistant,
                   Platform::kIfttt, Platform::kGoogleAssistant,
                   Platform::kAlexa};
  opt.min_nodes = 4;
  opt.max_nodes = 10;
  opt.vulnerable_fraction = 0.4;
  GraphCorpusGenerator gen(opt, &rng);
  GraphDataset data(gen.GenerateDataset(80));

  // The corpus must actually mix feature spaces.
  bool saw_hetero = false;
  for (const auto& g : data.graphs()) {
    saw_hetero |= g.IsHeterogeneous();
  }
  EXPECT_TRUE(saw_hetero);

  GnnConfig gc;
  gc.type = GnnType::kMagnn;
  gc.hidden_dim = 12;
  gc.embedding_dim = 12;
  GnnModel model(gc);
  TrainConfig tc;
  tc.epochs = 30;
  tc.learning_rate = 0.03;
  GnnTrainer trainer(&model, tc);
  const auto prepared = PrepareDataset(data, gc);
  trainer.Train(prepared, &rng);
  const ClassificationMetrics m = trainer.Evaluate(prepared, prepared);
  EXPECT_GT(m.accuracy, 0.55);
}

}  // namespace
}  // namespace fexiot
