#include <gtest/gtest.h>

#include "core/fexiot.h"
#include "core/testbed.h"

namespace fexiot {
namespace {

FexIotConfig SmallConfig() {
  FexIotConfig c;
  c.gnn.type = GnnType::kGin;
  c.gnn.hidden_dim = 12;
  c.gnn.embedding_dim = 12;
  c.train.epochs = 8;
  c.train.learning_rate = 0.02;
  c.train.margin = 3.0;
  c.explain.iterations = 3;
  c.explain.beam_width = 2;
  c.explain.max_subgraph_nodes = 3;
  c.explain.shap_samples = 8;
  return c;
}

GraphDataset SmallCorpus(int n, Rng* rng) {
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 4;
  opt.max_nodes = 10;
  opt.vulnerable_fraction = 0.5;
  GraphCorpusGenerator gen(opt, rng);
  return GraphDataset(gen.GenerateDataset(n));
}

TEST(FexIoT, RejectsEmptyTraining) {
  FexIoT fexiot(SmallConfig());
  EXPECT_FALSE(fexiot.TrainLocal(GraphDataset()).ok());
  EXPECT_FALSE(fexiot.trained());
}

TEST(FexIoT, TrainPredictExplainEndToEnd) {
  Rng rng(71);
  FexIoT fexiot(SmallConfig());
  GraphDataset data = SmallCorpus(120, &rng);
  ASSERT_TRUE(fexiot.TrainLocal(data).ok());
  EXPECT_TRUE(fexiot.trained());

  // Train-set predictions are better than chance.
  int correct = 0;
  for (const auto& g : data.graphs()) {
    correct += fexiot.Predict(g) == g.label() ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.7);

  // Analyze a vulnerable graph: probability, drift score and (when
  // flagged) a rendered explanation.
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 5;
  opt.max_nodes = 9;
  GraphCorpusGenerator gen(opt, &rng);
  const InteractionGraph g =
      gen.GenerateVulnerable(VulnerabilityType::kActionConflict);
  const FexIoT::Verdict verdict = fexiot.Analyze(g);
  EXPECT_GE(verdict.probability, 0.0);
  EXPECT_LE(verdict.probability, 1.0);
  if (verdict.label == 1) {
    ASSERT_TRUE(verdict.explanation.has_value());
    EXPECT_FALSE(verdict.explanation->subgraph_nodes.empty());
    EXPECT_FALSE(verdict.explanation_text.empty());
  }
}

TEST(FexIoT, AdoptModelTransfersRepresentation) {
  Rng rng(72);
  GraphDataset data = SmallCorpus(80, &rng);
  FexIoT trainer_side(SmallConfig());
  ASSERT_TRUE(trainer_side.TrainLocal(data).ok());

  FexIoT adopter(SmallConfig());
  GraphDataset local = SmallCorpus(40, &rng);
  ASSERT_TRUE(adopter.AdoptModel(*trainer_side.model(), local).ok());
  EXPECT_TRUE(adopter.trained());
  // Adopted model produces identical embeddings to the source model.
  const auto z1 = trainer_side.Embed(local.graph(0));
  const auto z2 = adopter.Embed(local.graph(0));
  ASSERT_EQ(z1.size(), z2.size());
  for (size_t i = 0; i < z1.size(); ++i) EXPECT_DOUBLE_EQ(z1[i], z2[i]);
}

TEST(FexIoT, FuseBuildsLabeledOnlineGraph) {
  Rng rng(73);
  TestbedOptions topt;
  const Home home = BuildTestbedHome(topt, &rng);
  SimulationConfig sc;
  sc.duration_seconds = 3 * 3600.0;
  sc.exogenous_mean_gap = 120.0;
  HomeSimulator sim(home, sc, &rng);
  const EventLog raw = sim.Run();
  FexIoT fexiot(SmallConfig());
  const InteractionGraph g = fexiot.Fuse(home, raw);
  // The testbed home is internally benign, so fused graphs are label 0.
  EXPECT_EQ(g.label(), 0);
}

TEST(FexIoT, DriftScoreHigherForNovelPatterns) {
  Rng rng(76);
  FexIoT fexiot(SmallConfig());
  GraphDataset data = SmallCorpus(120, &rng);
  ASSERT_TRUE(fexiot.TrainLocal(data).ok());
  // Same size regime as the training corpus, so "known" samples are
  // in-distribution.
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 4;
  opt.max_nodes = 10;
  GraphCorpusGenerator gen(opt, &rng);
  double novel = 0.0;
  for (int i = 0; i < 6; ++i) {
    novel += fexiot.DriftScore(gen.GenerateDrifting());
  }
  // Novel structural patterns exceed the MAD drift threshold on average.
  EXPECT_GT(novel / 6.0, 3.0);
}

}  // namespace
}  // namespace fexiot
