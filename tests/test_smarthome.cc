#include <gtest/gtest.h>

#include <set>

#include "smarthome/attacks.h"
#include "smarthome/device.h"
#include "smarthome/event_log.h"
#include "smarthome/home.h"
#include "smarthome/platform.h"
#include "smarthome/rule.h"
#include "smarthome/vulnerability.h"

namespace fexiot {
namespace {

TEST(Device, MetadataConsistency) {
  for (DeviceType t : AllDeviceTypes()) {
    const DeviceTypeInfo& info = GetDeviceTypeInfo(t);
    EXPECT_EQ(info.type, t);
    EXPECT_FALSE(info.noun.empty());
    EXPECT_GE(info.states.size(), 2u) << info.noun;
    EXPECT_TRUE(IsValidState(t, ActiveState(t)));
  }
}

TEST(Device, OppositeStateInvolution) {
  for (DeviceType t : AllDeviceTypes()) {
    const auto& states = GetDeviceTypeInfo(t).states;
    if (states.size() != 2) continue;
    // opposite(opposite(s)) == s for binary domains.
    for (const auto& s : states) {
      EXPECT_EQ(OppositeState(t, OppositeState(t, s)), s);
      EXPECT_NE(OppositeState(t, s), s);
    }
  }
}

TEST(Device, ActuatorsAndSensorsPartition) {
  for (DeviceType t : ActuatorTypes()) {
    EXPECT_FALSE(GetDeviceTypeInfo(t).is_sensor);
  }
}

TEST(Rule, TriggerPhraseReadsNaturally) {
  EXPECT_EQ(TriggerPhrase({DeviceType::kSmokeDetector, "detected"}),
            "smoke is detected");
  EXPECT_EQ(TriggerPhrase({DeviceType::kMotionSensor, "active"}),
            "motion is detected");
  EXPECT_EQ(TriggerPhrase({DeviceType::kClock, "sunset"}), "it is sunset");
  EXPECT_EQ(TriggerPhrase({DeviceType::kLight, "on"}),
            "the light turns on");
}

TEST(Rule, ActionPhraseReadsNaturally) {
  EXPECT_EQ(ActionPhrase({DeviceType::kLight, "on"}), "turn on the light");
  EXPECT_EQ(ActionPhrase({DeviceType::kDoorLock, "locked"}),
            "lock the lock");
  EXPECT_EQ(ActionPhrase({DeviceType::kWaterValve, "open"}),
            "open the valve");
  EXPECT_EQ(ActionPhrase({DeviceType::kPhone, "sent"}),
            "send a notification");
}

TEST(Rule, DirectActionTriggerCausality) {
  const Action act{DeviceType::kLight, "on"};
  EXPECT_TRUE(ActionCausesTrigger(act, Trigger{DeviceType::kLight, "on"}));
  EXPECT_FALSE(ActionCausesTrigger(act, Trigger{DeviceType::kLight, "off"}));
  EXPECT_FALSE(ActionCausesTrigger(act, Trigger{DeviceType::kFan, "on"}));
}

TEST(Rule, EnvironmentChannelCausality) {
  // Heater on raises temperature -> "temperature high" trigger fires.
  EXPECT_TRUE(ActionCausesTrigger(
      Action{DeviceType::kHeater, "on"},
      Trigger{DeviceType::kTemperatureSensor, "high"}));
  EXPECT_FALSE(ActionCausesTrigger(
      Action{DeviceType::kHeater, "on"},
      Trigger{DeviceType::kTemperatureSensor, "low"}));
  // AC lowers temperature.
  EXPECT_TRUE(ActionCausesTrigger(
      Action{DeviceType::kAirConditioner, "on"},
      Trigger{DeviceType::kTemperatureSensor, "low"}));
  // Open valve -> leak sensor wet.
  EXPECT_TRUE(ActionCausesTrigger(Action{DeviceType::kWaterValve, "open"},
                                  Trigger{DeviceType::kLeakSensor, "wet"}));
  // Inactive state produces no effect.
  EXPECT_FALSE(ActionCausesTrigger(
      Action{DeviceType::kHeater, "off"},
      Trigger{DeviceType::kTemperatureSensor, "high"}));
}

TEST(Platform, GeneratorProducesValidRules) {
  Rng rng(5);
  for (int p = 0; p < kNumPlatforms; ++p) {
    RuleGenerator gen(static_cast<Platform>(p), &rng);
    for (int i = 0; i < 40; ++i) {
      const Rule r = gen.Generate();
      EXPECT_FALSE(r.description.empty());
      EXPECT_FALSE(r.actions.empty());
      EXPECT_TRUE(IsValidState(r.trigger.device, r.trigger.state));
      for (const auto& a : r.actions) {
        EXPECT_TRUE(IsValidState(a.device, a.state));
        EXPECT_FALSE(GetDeviceTypeInfo(a.device).is_sensor);
      }
    }
  }
}

TEST(Platform, VoicePlatformsUseVoiceTriggers) {
  Rng rng(6);
  RuleGenerator alexa(Platform::kAlexa, &rng);
  for (int i = 0; i < 10; ++i) {
    const Rule r = alexa.Generate();
    EXPECT_EQ(r.trigger.device, DeviceType::kVoice);
    EXPECT_EQ(r.description.rfind("alexa, ", 0), 0u) << r.description;
  }
}

TEST(Platform, GenerateTriggeredByIsCausal) {
  Rng rng(7);
  RuleGenerator gen(Platform::kIfttt, &rng);
  for (int i = 0; i < 60; ++i) {
    const Rule a = gen.Generate();
    const Rule b = gen.GenerateTriggeredBy(a.actions.front());
    EXPECT_TRUE(ActionCausesTrigger(a.actions.front(), b.trigger))
        << a.description << " -> " << b.description;
  }
}

TEST(Platform, DeviceProfileSkewsVocabulary) {
  Rng rng1(8), rng2(8);
  RuleGenerator plain(Platform::kIfttt, &rng1);
  RuleGenerator skewed(Platform::kIfttt, &rng2);
  skewed.ApplyDeviceProfile(999, 2.0);
  std::set<DeviceType> plain_devices, skewed_devices;
  for (int i = 0; i < 80; ++i) {
    plain_devices.insert(plain.Generate().actions.front().device);
    skewed_devices.insert(skewed.Generate().actions.front().device);
  }
  // A strong profile concentrates the vocabulary.
  EXPECT_LT(skewed_devices.size(), plain_devices.size() + 5);
}

TEST(Home, BuildRandomHomeWiresDevices) {
  Rng rng(9);
  const Home home = BuildRandomHome(10, {Platform::kSmartThings}, &rng);
  EXPECT_EQ(home.rules.size(), 10u);
  EXPECT_FALSE(home.devices.empty());
  // Every referenced device type has an instance.
  for (const auto& rule : home.rules) {
    for (const auto& a : rule.actions) {
      EXPECT_GE(home.DeviceIdFor(a.device), 0);
    }
  }
}

TEST(HomeSimulator, ProducesChronologicalLog) {
  Rng rng(10);
  const Home home = BuildRandomHome(8, {Platform::kSmartThings}, &rng);
  SimulationConfig config;
  config.duration_seconds = 2 * 3600.0;
  HomeSimulator sim(home, config, &rng);
  const EventLog log = sim.Run();
  EXPECT_GT(log.size(), 0u);
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log.entries()[i - 1].timestamp, log.entries()[i].timestamp);
  }
}

TEST(EventLog, CleaningDropsErrorsAndRepeats) {
  EventLog log;
  LogEntry a;
  a.timestamp = 1;
  a.device_id = 1;
  a.device = DeviceType::kLight;
  a.attribute = "switch";
  a.value = "on";
  a.kind = LogKind::kStateChange;
  log.Append(a);
  LogEntry err = a;
  err.timestamp = 2;
  err.kind = LogKind::kExecutionError;
  log.Append(err);
  LogEntry repeat = a;
  repeat.timestamp = 3;
  log.Append(repeat);  // same value again -> dropped
  const EventLog cleaned = log.Cleaned();
  EXPECT_EQ(cleaned.size(), 1u);
}

TEST(EventLog, CleaningConvertsNumericWithJenks) {
  EventLog log;
  for (int i = 0; i < 6; ++i) {
    LogEntry e;
    e.timestamp = i;
    e.device_id = 7;
    e.device = DeviceType::kTemperatureSensor;
    e.attribute = "temperature";
    e.numeric_value = i < 3 ? 15.0 + i : 30.0 + i;
    e.kind = LogKind::kSensorReading;
    log.Append(e);
  }
  const EventLog cleaned = log.Cleaned();
  ASSERT_GE(cleaned.size(), 2u);
  EXPECT_EQ(cleaned.entries().front().value, "low");
  EXPECT_EQ(cleaned.entries().back().value, "high");
  for (const auto& e : cleaned.entries()) {
    EXPECT_FALSE(e.numeric_value.has_value());
  }
}

class AttackInjectionTest : public ::testing::TestWithParam<AttackType> {};

TEST_P(AttackInjectionTest, ModifiesLogAsSpecified) {
  Rng rng(11);
  const Home home = BuildRandomHome(8, {Platform::kSmartThings}, &rng);
  SimulationConfig config;
  config.duration_seconds = 2 * 3600.0;
  HomeSimulator sim(home, config, &rng);
  const EventLog raw = sim.Run();
  ASSERT_GT(raw.size(), 5u);

  AttackInjector injector(home, &rng);
  const AttackResult result = injector.Inject(raw, GetParam(), 0.3);
  switch (GetParam()) {
    case AttackType::kFakeEvent:
    case AttackType::kFakeCommand:
      EXPECT_GT(result.log.size(), raw.size());
      break;
    case AttackType::kStealthyCommand:
    case AttackType::kCommandFailure:
    case AttackType::kEventLoss:
      EXPECT_LE(result.log.size(), raw.size());
      break;
    default:
      break;
  }
  // Log remains chronologically sorted for insertion attacks.
  for (size_t i = 1; i < result.log.size(); ++i) {
    EXPECT_LE(result.log.entries()[i - 1].timestamp,
              result.log.entries()[i].timestamp);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, AttackInjectionTest,
    ::testing::Values(AttackType::kFakeEvent, AttackType::kFakeCommand,
                      AttackType::kStealthyCommand,
                      AttackType::kCommandFailure, AttackType::kEventLoss));

TEST(Vulnerability, NamesAreStable) {
  EXPECT_STREQ(VulnerabilityTypeName(VulnerabilityType::kActionConflict),
               "action_conflict");
  EXPECT_STREQ(AttackTypeName(AttackType::kStealthyCommand),
               "stealthy_command");
}

}  // namespace
}  // namespace fexiot
