#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"

namespace fexiot {
namespace {

struct Fixture {
  FederatedCorpus corpus;
  GnnConfig gc;
  FlConfig fc;

  static const Fixture& Get() {
    static const Fixture f;
    return f;
  }

  Fixture() {
    Rng rng(42);
    CorpusOptions opt;
    opt.platforms = {Platform::kIfttt};
    opt.min_nodes = 3;
    opt.max_nodes = 8;
    opt.vulnerable_fraction = 0.4;
    corpus = BuildClusteredFederatedCorpus(opt, 120, 6, 2, 1.0, 0.6, &rng);
    gc.type = GnnType::kGin;
    gc.hidden_dim = 8;
    gc.embedding_dim = 8;
    fc.num_rounds = 3;
    fc.local.epochs = 1;
    fc.local.learning_rate = 0.02;
    fc.local.margin = 3.0;
    fc.min_cluster_size = 3;
  }
};

TEST(FlAlgorithmName, Stable) {
  EXPECT_STREQ(FlAlgorithmName(FlAlgorithm::kFexiot), "FexIoT");
  EXPECT_STREQ(FlAlgorithmName(FlAlgorithm::kLocalOnly), "Client");
}

TEST(ValidateFlConfig, AcceptsDefaults) {
  EXPECT_TRUE(ValidateFlConfig(FlConfig{}).ok());
}

TEST(ValidateFlConfig, RejectsBadValues) {
  {
    FlConfig fc;
    fc.num_rounds = 0;
    const Status s = ValidateFlConfig(fc);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
  {
    FlConfig fc;
    fc.num_rounds = -3;
    EXPECT_FALSE(ValidateFlConfig(fc).ok());
  }
  for (double f : {0.0, 1.0, -0.2, 1.5}) {
    FlConfig fc;
    fc.local_train_fraction = f;
    EXPECT_FALSE(ValidateFlConfig(fc).ok()) << "fraction " << f;
  }
  {
    FlConfig fc;
    fc.epsilon1 = -0.1;
    EXPECT_FALSE(ValidateFlConfig(fc).ok());
  }
  {
    FlConfig fc;
    fc.epsilon2 = -1.0;
    EXPECT_FALSE(ValidateFlConfig(fc).ok());
  }
  {
    // Runtime knobs are validated through the same entry point.
    FlConfig fc;
    fc.runtime.policy = RoundPolicy::kDeadline;
    fc.runtime.deadline_s = 0.0;
    EXPECT_FALSE(ValidateFlConfig(fc).ok());
  }
}

TEST(ValidateFlConfig, RunRejectsInvalidConfigWithStatus) {
  const Fixture& f = Fixture::Get();
  FlConfig fc = f.fc;
  fc.num_rounds = 0;
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  const Result<FlResult> res = sim.Run(FlAlgorithm::kFedAvg);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlClient, LocalTrainRecordsDeltas) {
  const Fixture& f = Fixture::Get();
  FederatedSimulator sim(f.gc, f.fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  FlClient* client = sim.client(0);
  const std::vector<double> before = client->LayerWeights(0);
  client->LocalTrain();
  const std::vector<double>& delta = client->LayerDelta(0);
  ASSERT_EQ(delta.size(), before.size());
  const std::vector<double> after = client->LayerWeights(0);
  for (size_t i = 0; i < delta.size(); ++i) {
    EXPECT_NEAR(after[i] - before[i], delta[i], 1e-12);
  }
  // EMA initialized to the first delta.
  EXPECT_EQ(client->LayerDeltaEma(0), delta);
}

TEST(FlClient, SetLayerWeightsRoundTrips) {
  const Fixture& f = Fixture::Get();
  FederatedSimulator sim(f.gc, f.fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  FlClient* client = sim.client(1);
  std::vector<double> w = client->LayerWeights(1);
  for (auto& v : w) v = 0.125;
  client->SetLayerWeights(1, w);
  EXPECT_EQ(client->LayerWeights(1), w);
}

class FlAlgorithmRun : public ::testing::TestWithParam<FlAlgorithm> {};

TEST_P(FlAlgorithmRun, ProducesSaneResult) {
  const Fixture& f = Fixture::Get();
  FederatedSimulator sim(f.gc, f.fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  const FlResult res = sim.Run(GetParam()).value();
  EXPECT_EQ(res.client_metrics.size(), 6u);
  EXPECT_GE(res.mean.accuracy, 0.0);
  EXPECT_LE(res.mean.accuracy, 1.0);
  EXPECT_EQ(res.rounds.size(), 3u);
  if (GetParam() == FlAlgorithm::kLocalOnly) {
    EXPECT_DOUBLE_EQ(res.total_comm_bytes, 0.0);
  } else {
    EXPECT_GT(res.total_comm_bytes, 0.0);
  }
  // Cumulative bytes are monotone.
  for (size_t r = 1; r < res.rounds.size(); ++r) {
    EXPECT_GE(res.rounds[r].cumulative_comm_bytes,
              res.rounds[r - 1].cumulative_comm_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, FlAlgorithmRun,
    ::testing::Values(FlAlgorithm::kFedAvg, FlAlgorithm::kFmtl,
                      FlAlgorithm::kGcfl, FlAlgorithm::kFexiot,
                      FlAlgorithm::kLocalOnly));

TEST(FederatedSimulator, FedAvgSynchronizesWeights) {
  const Fixture& f = Fixture::Get();
  FederatedSimulator sim(f.gc, f.fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  ASSERT_TRUE(sim.Run(FlAlgorithm::kFedAvg).ok());
  // After a FedAvg round every client holds identical weights.
  const std::vector<double> w0 = sim.client(0)->LayerWeights(0);
  for (size_t c = 1; c < sim.num_clients(); ++c) {
    const std::vector<double> wc = sim.client(c)->LayerWeights(0);
    ASSERT_EQ(wc.size(), w0.size());
    for (size_t i = 0; i < w0.size(); ++i) {
      EXPECT_NEAR(wc[i], w0[i], 1e-9);
    }
  }
}

TEST(FederatedSimulator, FexiotCheaperThanFedAvg) {
  const Fixture& f = Fixture::Get();
  FlConfig fc = f.fc;
  fc.num_rounds = 6;
  double fedavg_bytes = 0.0, fexiot_bytes = 0.0;
  {
    FederatedSimulator sim(f.gc, fc);
    sim.SetupClients(f.corpus.data, f.corpus.partition,
                     f.corpus.cluster_tests);
    fedavg_bytes = sim.Run(FlAlgorithm::kFedAvg).value().total_comm_bytes;
  }
  {
    FederatedSimulator sim(f.gc, fc);
    sim.SetupClients(f.corpus.data, f.corpus.partition,
                     f.corpus.cluster_tests);
    fexiot_bytes = sim.Run(FlAlgorithm::kFexiot).value().total_comm_bytes;
  }
  EXPECT_LT(fexiot_bytes, fedavg_bytes);
}

// The whole federated run must be a pure function of the seed, not of the
// thread count: per-client work is parallel, but every reduction happens
// in client index order and inner library parallelism serializes on pool
// workers. Compared bit-exactly, not within tolerance.
TEST(FederatedSimulator, RunIsBitIdenticalAcrossThreadCounts) {
  const Fixture& f = Fixture::Get();
  auto run_with_threads = [&](int threads) {
    parallel::SetThreads(static_cast<size_t>(threads));
    FlConfig fc = f.fc;
    fc.threads = threads;
    FederatedSimulator sim(f.gc, fc);
    sim.SetupClients(f.corpus.data, f.corpus.partition,
                     f.corpus.cluster_tests);
    const FlResult res = sim.Run(FlAlgorithm::kFexiot).value();
    parallel::SetThreads(0);
    return res;
  };
  const FlResult r1 = run_with_threads(1);
  const FlResult r4 = run_with_threads(4);
  EXPECT_EQ(r1.mean.accuracy, r4.mean.accuracy);
  EXPECT_EQ(r1.mean.f1, r4.mean.f1);
  EXPECT_EQ(r1.accuracy_std, r4.accuracy_std);
  EXPECT_EQ(r1.total_comm_bytes, r4.total_comm_bytes);
  EXPECT_EQ(r1.client_cluster, r4.client_cluster);
  ASSERT_EQ(r1.client_metrics.size(), r4.client_metrics.size());
  for (size_t c = 0; c < r1.client_metrics.size(); ++c) {
    EXPECT_EQ(r1.client_metrics[c].accuracy, r4.client_metrics[c].accuracy)
        << "client " << c;
    EXPECT_EQ(r1.client_metrics[c].f1, r4.client_metrics[c].f1)
        << "client " << c;
  }
}

TEST(FederatedSimulator, LocalOnlyClientsStayIndependent) {
  const Fixture& f = Fixture::Get();
  FederatedSimulator sim(f.gc, f.fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  ASSERT_TRUE(sim.Run(FlAlgorithm::kLocalOnly).ok());
  const std::vector<double> w0 = sim.client(0)->LayerWeights(0);
  const std::vector<double> w1 = sim.client(1)->LayerWeights(0);
  double diff = 0.0;
  for (size_t i = 0; i < w0.size(); ++i) diff += std::fabs(w0[i] - w1[i]);
  EXPECT_GT(diff, 1e-6);  // no aggregation happened
}

}  // namespace
}  // namespace fexiot
