// Tests for the online serving subsystem (DESIGN.md §5.11): CSR in-place
// mutation + block-diagonal stacking, per-block batched dense transforms,
// incremental propagation maintenance vs from-scratch PrepareGraph
// (bit-parity under randomized churn), batched block-diagonal inference
// vs one-graph-at-a-time (bit-identity incl. ragged/single/empty
// batches), the streaming detection engine end to end, thread-count
// parity, and latency-statistics properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "gnn/gnn_model.h"
#include "graph/delta_graph.h"
#include "graph/fusion.h"
#include "graph/interaction_graph.h"
#include "serving/arrivals.h"
#include "serving/engine.h"
#include "serving/stats.h"
#include "smarthome/home.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace fexiot {
namespace {

// ---------------------------------------------------------------------------
// Bitwise comparison helpers: the serving contracts are bit-identity, not
// tolerance, so every comparison pins the exact double representation.
// ---------------------------------------------------------------------------

bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool MatrixBitsEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool CsrBitsEqual(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.row_ptr() != b.row_ptr() || a.col_idx() != b.col_idx()) return false;
  if (a.values().size() != b.values().size()) return false;
  if (a.values().empty()) return true;
  return std::memcmp(a.values().data(), b.values().data(),
                     a.values().size() * sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// CSR in-place mutation
// ---------------------------------------------------------------------------

TEST(CsrMutation, SetEntryMatchesDenseMirrorUnderRandomOps) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    const size_t rows = 7, cols = 9;
    Matrix dense(rows, cols);
    CsrMatrix csr = CsrMatrix::FromDense(dense);
    for (int op = 0; op < 300; ++op) {
      const size_t r = static_cast<size_t>(rng.Uniform(0.0, 1.0) * rows) % rows;
      const int c = static_cast<int>(rng.Uniform(0.0, 1.0) * cols) %
                    static_cast<int>(cols);
      // ~1/3 removals, 2/3 writes of a nonzero value.
      const double v =
          rng.Uniform() < 1.0 / 3.0 ? 0.0 : rng.Uniform(-2.0, 2.0);
      dense.At(r, static_cast<size_t>(c)) = v;
      csr.SetEntry(r, c, v);
      if (op % 25 == 0 || op == 299) {
        EXPECT_TRUE(CsrBitsEqual(csr, CsrMatrix::FromDense(dense)))
            << "seed=" << seed << " op=" << op;
      }
    }
    EXPECT_TRUE(MatrixBitsEqual(csr.ToDense(), dense));
  }
}

TEST(CsrMutation, AccessorsAndInsertRemove) {
  CsrMatrix m = CsrMatrix::FromDense(Matrix(3, 4));
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_FALSE(m.HasEntry(1, 2));
  EXPECT_EQ(m.GetEntry(1, 2), 0.0);

  m.InsertEntry(1, 2, 2.5);
  m.InsertEntry(1, 0, -1.0);  // before an existing column: order preserved
  m.InsertEntry(2, 3, 4.0);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.RowNnz(0), 0u);
  EXPECT_EQ(m.RowNnz(1), 2u);
  EXPECT_TRUE(m.HasEntry(1, 0));
  EXPECT_EQ(m.GetEntry(1, 2), 2.5);
  EXPECT_EQ(m.GetEntry(2, 3), 4.0);

  m.SetEntry(1, 2, 7.0);  // overwrite keeps structure
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.GetEntry(1, 2), 7.0);

  m.RemoveEntry(1, 0);
  m.RemoveEntry(0, 0);  // absent: no-op
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_FALSE(m.HasEntry(1, 0));
  EXPECT_EQ(m.GetEntry(1, 2), 7.0);  // survivor untouched
  EXPECT_EQ(m.GetEntry(2, 3), 4.0);
}

TEST(CsrMutation, BlockDiagonalMatchesDenseOracle) {
  Rng rng(77);
  // Mixed shapes, including an all-zero block (zero rows stay empty).
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {3, 4}, {1, 1}, {5, 2}, {2, 6}};
  std::vector<Matrix> dense;
  std::vector<CsrMatrix> blocks;
  size_t total_rows = 0, total_cols = 0;
  for (size_t b = 0; b < shapes.size(); ++b) {
    Matrix m(shapes[b].first, shapes[b].second);
    if (b != 1) {  // block 1 stays all-zero
      for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t c = 0; c < m.cols(); ++c) {
          if (rng.Uniform() < 0.4) m.At(r, c) = rng.Uniform(-3.0, 3.0);
        }
      }
    }
    total_rows += m.rows();
    total_cols += m.cols();
    blocks.push_back(CsrMatrix::FromDense(m));
    dense.push_back(std::move(m));
  }
  std::vector<const CsrMatrix*> ptrs;
  for (const CsrMatrix& b : blocks) ptrs.push_back(&b);
  const CsrMatrix stacked = CsrMatrix::BlockDiagonal(ptrs);

  Matrix oracle(total_rows, total_cols);
  size_t ro = 0, co = 0;
  for (const Matrix& m : dense) {
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t c = 0; c < m.cols(); ++c) {
        oracle.At(ro + r, co + c) = m.At(r, c);
      }
    }
    ro += m.rows();
    co += m.cols();
  }
  EXPECT_TRUE(CsrBitsEqual(stacked, CsrMatrix::FromDense(oracle)));

  // Empty input: a 0 x 0 matrix.
  const CsrMatrix empty = CsrMatrix::BlockDiagonal({});
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.cols(), 0u);
  EXPECT_EQ(empty.nnz(), 0u);
}

// ---------------------------------------------------------------------------
// Per-block batched dense transform
// ---------------------------------------------------------------------------

TEST(MatMulBlocks, BitIdenticalToPerBlockMatMulAcrossDispatchThreshold) {
  // k = 308, m = 16: a 20-row block stays under the small-product
  // threshold (reference kernel), a 60-row block crosses it (blocked
  // GEMM). The batched kernel must dispatch per block and match
  // MatMulInto on each slice bit for bit — including a zero-row block.
  const size_t k = 308, m = 16;
  const std::vector<size_t> offsets = {0, 20, 20, 80, 81};
  const size_t n = offsets.back();
  Rng rng(4242);
  Matrix a(n, k), b(k, m);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = rng.Uniform() < 0.2 ? 0.0 : rng.Uniform(-1.0, 1.0);
  }
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Uniform(-1.0, 1.0);

  Matrix c;
  MatMulBlocksInto(a, b, offsets, &c);
  ASSERT_EQ(c.rows(), n);
  ASSERT_EQ(c.cols(), m);

  for (size_t bi = 0; bi + 1 < offsets.size(); ++bi) {
    const size_t r0 = offsets[bi], r1 = offsets[bi + 1];
    if (r0 == r1) continue;
    Matrix sub(r1 - r0, k);
    for (size_t r = r0; r < r1; ++r) {
      std::memcpy(sub.RowPtr(r - r0), a.RowPtr(r), k * sizeof(double));
    }
    Matrix expect;
    MatMulInto(sub, b, &expect);
    EXPECT_EQ(std::memcmp(c.RowPtr(r0), expect.data(),
                          expect.size() * sizeof(double)),
              0)
        << "block " << bi << " rows [" << r0 << ", " << r1 << ")";
  }
}

// ---------------------------------------------------------------------------
// Incremental propagation maintenance vs PrepareGraph
// ---------------------------------------------------------------------------

void RunDeltaChurn(GnnType type, uint64_t seed) {
  const int n = 24;
  GnnConfig gc;
  gc.type = type;
  gc.propagation = PropagationMode::kSparse;
  InteractionGraph g;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    GraphNode node;
    node.features.assign(8, rng.Uniform(-1.0, 1.0));
    g.AddNode(std::move(node));
  }
  DeltaPropagation delta(type == GnnType::kGin);
  CsrMatrix p = delta.MakeIsolated(static_cast<size_t>(n));
  EXPECT_TRUE(CsrBitsEqual(p, PrepareGraph(g, gc).prop_csr))
      << "isolated baseline";

  std::set<std::pair<int, int>> live;
  for (int step = 0; step < 400; ++step) {
    int u = static_cast<int>(rng.NextU64() % static_cast<uint64_t>(n));
    int v = static_cast<int>(rng.NextU64() % static_cast<uint64_t>(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (live.count({u, v})) {
      live.erase({u, v});
      g.RemoveEdge(u, v);
      delta.RemoveEdge(&p, u, v);
    } else {
      live.insert({u, v});
      g.AddEdge(u, v);
      delta.InsertEdge(&p, u, v);
    }
    if (step % 20 == 0 || step == 399) {
      EXPECT_TRUE(CsrBitsEqual(p, PrepareGraph(g, gc).prop_csr))
          << GnnTypeName(type) << " seed=" << seed << " step=" << step;
    }
  }
  EXPECT_GT(delta.structural_updates(), 0u);
  if (type == GnnType::kGin) {
    EXPECT_EQ(delta.reweighted_entries(), 0u);
  } else {
    EXPECT_GT(delta.reweighted_entries(), 0u);
  }
}

TEST(DeltaPropagationTest, GcnBitParityUnderRandomChurn) {
  for (uint64_t seed : {101u, 202u, 303u}) RunDeltaChurn(GnnType::kGcn, seed);
}

TEST(DeltaPropagationTest, GinBitParityUnderRandomChurn) {
  for (uint64_t seed : {101u, 202u, 303u}) RunDeltaChurn(GnnType::kGin, seed);
}

TEST(DeltaPropagationTest, InsertRemoveNoOpsAndTelemetry) {
  DeltaPropagation delta(false);
  CsrMatrix p = delta.MakeIsolated(4);
  delta.InsertEdge(&p, 0, 2);
  const uint64_t after_one = delta.structural_updates();
  EXPECT_EQ(after_one, 1u);
  delta.InsertEdge(&p, 0, 2);  // duplicate: no-op
  delta.InsertEdge(&p, 2, 0);  // mirror of an existing pair: no-op
  EXPECT_EQ(delta.structural_updates(), after_one);
  EXPECT_TRUE(DeltaPropagation::HasEdge(p, 0, 2));
  EXPECT_TRUE(DeltaPropagation::HasEdge(p, 2, 0));
  delta.RemoveEdge(&p, 1, 3);  // absent: no-op
  EXPECT_EQ(delta.structural_updates(), after_one);
  delta.RemoveEdge(&p, 2, 0);
  EXPECT_EQ(delta.structural_updates(), after_one + 1);
  EXPECT_FALSE(DeltaPropagation::HasEdge(p, 0, 2));
  // Back to isolated: every diagonal value exactly 1.0 again.
  EXPECT_TRUE(CsrBitsEqual(p, delta.MakeIsolated(4)));
}

// ---------------------------------------------------------------------------
// Batched block-diagonal inference vs per-graph Forward
// ---------------------------------------------------------------------------

std::vector<InteractionGraph> BuildRealGraphs(
    const std::vector<Platform>& platforms, size_t count, uint64_t seed0) {
  std::vector<InteractionGraph> out;
  for (uint64_t i = 0; i < 3 * count && out.size() < count; ++i) {
    Rng rng(seed0 + i);
    const Home home = BuildChainedHome(10, platforms, &rng);
    SimulationConfig config;
    config.duration_seconds = 2.0 * 3600.0;
    config.exogenous_mean_gap = 150.0;
    HomeSimulator sim(home, config, &rng);
    const EventLog log = sim.Run();
    InteractionGraph g = OnlineGraphBuilder(home).Build(log.Cleaned());
    if (g.num_nodes() > 0) out.push_back(std::move(g));
  }
  return out;
}

void CheckForwardBatchMatchesForward(GnnType type,
                                     const std::vector<Platform>& platforms,
                                     uint64_t seed0) {
  const std::vector<InteractionGraph> graphs =
      BuildRealGraphs(platforms, 5, seed0);
  ASSERT_GE(graphs.size(), 3u);
  GnnConfig gc;
  gc.type = type;
  gc.propagation = PropagationMode::kSparse;
  const GnnModel model(gc);
  std::vector<PreparedGraph> prepared;
  prepared.reserve(graphs.size());
  for (const InteractionGraph& g : graphs) {
    prepared.push_back(PrepareGraph(g, gc));
  }
  std::vector<const PreparedGraph*> ptrs;
  for (const PreparedGraph& p : prepared) ptrs.push_back(&p);

  GraphBatch batch;
  AssembleGraphBatch(ptrs, gc, &batch);
  ASSERT_EQ(batch.size(), ptrs.size());
  BatchForwardWorkspace bws;
  std::vector<std::vector<double>> embs;
  const GnnModel& cmodel = model;
  cmodel.ForwardBatch(batch, &bws, &embs);
  ASSERT_EQ(embs.size(), ptrs.size());

  GnnWorkspace ws;
  for (size_t b = 0; b < ptrs.size(); ++b) {
    const std::vector<double>& one = model.Forward(*ptrs[b], nullptr, &ws);
    EXPECT_TRUE(BitsEqual(embs[b], one))
        << GnnTypeName(type) << " graph " << b << " ("
        << ptrs[b]->features.rows() << " nodes)";
  }

  // A size-1 batch must also match, and reusing the workspace across
  // differently shaped batches must not leak state.
  AssembleGraphBatch({ptrs[0]}, gc, &batch);
  cmodel.ForwardBatch(batch, &bws, &embs);
  ASSERT_EQ(embs.size(), 1u);
  const std::vector<double>& one = model.Forward(*ptrs[0], nullptr, &ws);
  EXPECT_TRUE(BitsEqual(embs[0], one));
}

TEST(ForwardBatchTest, GcnBitIdenticalToSequential) {
  CheckForwardBatchMatchesForward(GnnType::kGcn, {Platform::kSmartThings},
                                  5000);
}

TEST(ForwardBatchTest, GinBitIdenticalToSequential) {
  CheckForwardBatchMatchesForward(
      GnnType::kGin, {Platform::kSmartThings, Platform::kHomeAssistant}, 5100);
}

TEST(ForwardBatchTest, MagnnBitIdenticalToSequential) {
  // Google Assistant rules carry sentence-space (hetero) features, so the
  // batch concatenates node_space and features_hetero too.
  CheckForwardBatchMatchesForward(
      GnnType::kMagnn, {Platform::kSmartThings, Platform::kGoogleAssistant},
      5200);
}

// ---------------------------------------------------------------------------
// Streaming detection engine
// ---------------------------------------------------------------------------

struct ServedHome {
  Home home;
  std::vector<LogEntry> log;  // cleaned
  double log_end = 0.0;
};

const std::vector<ServedHome>& ServingWorld() {
  static const std::vector<ServedHome>* world = [] {
    auto* w = new std::vector<ServedHome>();
    for (int i = 0; i < 8; ++i) {
      Rng rng(9100 + static_cast<uint64_t>(i));
      ServedHome sh;
      sh.home = BuildChainedHome(
          12, {Platform::kSmartThings, Platform::kHomeAssistant}, &rng);
      SimulationConfig config;
      config.duration_seconds = 3.0 * 3600.0;
      config.exogenous_mean_gap = 120.0;
      HomeSimulator sim(sh.home, config, &rng);
      sh.log = sim.Run().Cleaned().entries();
      for (const LogEntry& e : sh.log) {
        sh.log_end = std::max(sh.log_end, e.timestamp);
      }
      w->push_back(std::move(sh));
    }
    return w;
  }();
  return *world;
}

/// Drives a deterministic ingest/request schedule: the world's logs are
/// cut into \p chunks per-home index ranges; after each chunk every home
/// gets one detection request at the chunk's max timestamp, then the
/// batch is flushed. Identical schedules with different max_batch must
/// produce bit-identical embeddings per (home, request_time).
std::vector<DetectionResult> RunScenario(int max_batch, bool verify,
                                         ServingStats* stats_out,
                                         size_t num_homes = 6,
                                         int chunks = 4) {
  const std::vector<ServedHome>& world = ServingWorld();
  GnnConfig gc;  // default GCN
  const GnnModel model(gc);
  ServingConfig sc;
  sc.max_batch = max_batch;
  sc.verify_incremental = verify;
  StreamingDetectionEngine engine(&model, sc);
  for (size_t h = 0; h < num_homes; ++h) {
    EXPECT_TRUE(engine.AddHome(static_cast<int>(h), world[h].home).ok());
  }
  std::vector<DetectionResult> out;
  // Requests use each home's own stream clock (a request at another
  // home's later timestamp would advance this home's clock and reject
  // the next chunk's ingest), nudged forward so every (home, time) key
  // stays unique even when a chunk lands no events for a home.
  std::vector<double> last_req(num_homes, 0.0);
  for (int chunk = 0; chunk < chunks; ++chunk) {
    for (size_t h = 0; h < num_homes; ++h) {
      const std::vector<LogEntry>& log = world[h].log;
      const size_t begin = log.size() * static_cast<size_t>(chunk) /
                           static_cast<size_t>(chunks);
      const size_t end = log.size() * static_cast<size_t>(chunk + 1) /
                         static_cast<size_t>(chunks);
      double t_home = last_req[h];
      for (size_t k = begin; k < end; ++k) {
        EXPECT_TRUE(engine.Ingest(static_cast<int>(h), log[k]).ok());
        t_home = std::max(t_home, log[k].timestamp);
      }
      const double t_req = std::max(t_home, last_req[h] + 0.001);
      last_req[h] = t_req;
      EXPECT_TRUE(
          engine.RequestDetection(static_cast<int>(h), t_req, &out).ok());
    }
    engine.Flush(&out);
  }
  if (stats_out != nullptr) *stats_out = engine.stats();
  return out;
}

using ResultKey = std::pair<int, double>;  // (home_id, request_time)

std::map<ResultKey, const DetectionResult*> IndexResults(
    const std::vector<DetectionResult>& results) {
  std::map<ResultKey, const DetectionResult*> index;
  for (const DetectionResult& r : results) {
    index[{r.home_id, r.request_time}] = &r;
  }
  return index;
}

TEST(ServingEngine, BatchedBitIdenticalToSequential) {
  ServingStats seq_stats;
  const std::vector<DetectionResult> seq = RunScenario(1, false, &seq_stats);
  ASSERT_EQ(seq.size(), 24u);  // 6 homes x 4 chunks
  const auto seq_index = IndexResults(seq);

  // max_batch 8 > homes: whole chunks dispatch via Flush (size 6).
  // max_batch 4 < homes: a full dispatch of 4 plus a ragged tail of 2.
  for (int mb : {4, 8}) {
    ServingStats stats;
    const std::vector<DetectionResult> bat = RunScenario(mb, false, &stats);
    ASSERT_EQ(bat.size(), seq.size()) << "max_batch=" << mb;
    for (const DetectionResult& r : bat) {
      const auto it = seq_index.find({r.home_id, r.request_time});
      ASSERT_NE(it, seq_index.end()) << "max_batch=" << mb;
      EXPECT_TRUE(BitsEqual(r.embedding, it->second->embedding))
          << "max_batch=" << mb << " home=" << r.home_id
          << " t=" << r.request_time;
      EXPECT_EQ(r.score, it->second->score);
      EXPECT_GE(r.latency_s, 0.0);
      EXPECT_LE(r.batch_size, mb);
    }
    if (mb == 4) {
      ASSERT_GT(stats.batch_size_hist.size(), 4u);
      EXPECT_GT(stats.batch_size_hist[4], 0u) << "expected full batches";
      EXPECT_GT(stats.batch_size_hist[2], 0u) << "expected ragged tails";
    }
  }

  // The classic path reports size-1 dispatches only.
  ASSERT_EQ(seq_stats.batch_size_hist.size(), 2u);
  EXPECT_EQ(seq_stats.batch_size_hist[1], seq_stats.requests);
}

TEST(ServingEngine, SingleEmptyAndForcedBatches) {
  const ServedHome& sh = ServingWorld()[0];
  GnnConfig gc;
  const GnnModel model(gc);
  ServingConfig sc;
  sc.max_batch = 8;
  StreamingDetectionEngine engine(&model, sc);
  ASSERT_TRUE(engine.AddHome(0, sh.home).ok());
  for (size_t k = 0; k < sh.log.size() / 2; ++k) {
    ASSERT_TRUE(engine.Ingest(0, sh.log[k]).ok());
  }
  std::vector<DetectionResult> out;
  engine.Flush(&out);  // nothing pending: a no-op
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(engine.stats().batches, 0u);

  const double t1 = sh.log_end + 10.0;
  ASSERT_TRUE(engine.RequestDetection(0, t1, &out).ok());
  EXPECT_TRUE(out.empty());  // lingers for batch-mates
  engine.Flush(&out);        // single-home batch
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].batch_size, 1);
  EXPECT_EQ(out[0].home_id, 0);
  EXPECT_EQ(out[0].request_time, t1);

  // A second request for an already-pending home forces an early
  // dispatch so the first request keeps its snapshot-at-enqueue view.
  out.clear();
  const double t2 = t1 + 10.0, t3 = t2 + 10.0;
  ASSERT_TRUE(engine.RequestDetection(0, t2, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(engine.RequestDetection(0, t3, &out).ok());
  ASSERT_EQ(out.size(), 1u);  // t2's request was force-dispatched
  EXPECT_EQ(out[0].request_time, t2);
  engine.Flush(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].request_time, t3);

  engine.Flush(&out);  // drained: another no-op
  EXPECT_EQ(out.size(), 2u);
}

TEST(ServingEngine, AdvanceToDispatchesAtLingerDeadline) {
  const ServedHome& sh = ServingWorld()[1];
  GnnConfig gc;
  const GnnModel model(gc);
  ServingConfig sc;
  sc.max_batch = 8;
  sc.max_linger_s = 0.5;
  StreamingDetectionEngine engine(&model, sc);
  ASSERT_TRUE(engine.AddHome(0, sh.home).ok());
  for (const LogEntry& e : sh.log) ASSERT_TRUE(engine.Ingest(0, e).ok());

  std::vector<DetectionResult> out;
  const double t = sh.log_end + 5.0;
  ASSERT_TRUE(engine.RequestDetection(0, t, &out).ok());
  engine.AdvanceTo(t + 0.4, &out);  // before the deadline: still pending
  EXPECT_TRUE(out.empty());
  engine.AdvanceTo(t + 0.6, &out);  // past it: dispatched
  ASSERT_EQ(out.size(), 1u);
  // Simulated wait (deadline - enqueue) is part of the reported latency.
  EXPECT_GE(out[0].latency_s, 0.5);
  engine.AdvanceTo(t + 100.0, &out);  // nothing left
  EXPECT_EQ(out.size(), 1u);
}

TEST(ServingEngine, ZeroLingerDispatchesImmediately) {
  const ServedHome& sh = ServingWorld()[2];
  GnnConfig gc;
  const GnnModel model(gc);
  ServingConfig sc;
  sc.max_batch = 8;
  sc.max_linger_s = 0.0;
  StreamingDetectionEngine engine(&model, sc);
  ASSERT_TRUE(engine.AddHome(0, sh.home).ok());
  std::vector<DetectionResult> out;
  ASSERT_TRUE(engine.RequestDetection(0, 1.0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].batch_size, 1);
}

TEST(ServingEngine, IncrementalMatchesRebuildUnderStream) {
  // verify_incremental cross-checks every snapshot against a from-scratch
  // PrepareGraph; six chunks of real simulator traffic with 600 s active
  // windows force plenty of edge churn between snapshots.
  ServingStats stats;
  const std::vector<DetectionResult> results =
      RunScenario(8, true, &stats, 6, 6);
  EXPECT_EQ(results.size(), 36u);
  EXPECT_GT(stats.firings, 0u);
  EXPECT_GT(stats.incremental_updates, 0u);
  EXPECT_GT(stats.parity_checks, 0u);
  EXPECT_EQ(stats.parity_failures, 0u);
}

TEST(ServingEngine, FinalPreparedMatchesRebuildBitwise) {
  const std::vector<ServedHome>& world = ServingWorld();
  GnnConfig gc;
  const GnnModel model(gc);
  ServingConfig sc;
  sc.max_batch = 4;
  StreamingDetectionEngine engine(&model, sc);
  const size_t num_homes = 4;
  for (size_t h = 0; h < num_homes; ++h) {
    ASSERT_TRUE(engine.AddHome(static_cast<int>(h), world[h].home).ok());
  }
  std::vector<DetectionResult> out;
  for (size_t h = 0; h < num_homes; ++h) {
    for (const LogEntry& e : world[h].log) {
      ASSERT_TRUE(engine.Ingest(static_cast<int>(h), e).ok());
    }
    ASSERT_TRUE(
        engine.RequestDetection(static_cast<int>(h), world[h].log_end, &out)
            .ok());
  }
  engine.Flush(&out);
  ASSERT_EQ(out.size(), num_homes);
  for (size_t h = 0; h < num_homes; ++h) {
    const PreparedGraph* inc = engine.prepared(static_cast<int>(h));
    ASSERT_NE(inc, nullptr);
    const PreparedGraph ref = engine.RebuildPrepared(static_cast<int>(h));
    EXPECT_TRUE(CsrBitsEqual(inc->prop_csr, ref.prop_csr)) << "home " << h;
    EXPECT_TRUE(MatrixBitsEqual(inc->features, ref.features)) << "home " << h;
    EXPECT_TRUE(MatrixBitsEqual(inc->features_hetero, ref.features_hetero));
    EXPECT_EQ(inc->node_space, ref.node_space);
  }
}

TEST(ServingEngine, ChurnThresholdTriggersRebuilds) {
  // A tiny churn budget forces the compaction path; results must not
  // change (pinned globally by BatchedBitIdenticalToSequential +
  // verify_incremental, here we pin the counter actually moving).
  const std::vector<ServedHome>& world = ServingWorld();
  GnnConfig gc;
  const GnnModel model(gc);
  ServingConfig sc;
  sc.max_batch = 1;
  sc.rebuild_churn_fraction = 1e-6;
  sc.verify_incremental = true;
  StreamingDetectionEngine engine(&model, sc);
  ASSERT_TRUE(engine.AddHome(0, world[0].home).ok());
  std::vector<DetectionResult> out;
  const std::vector<LogEntry>& log = world[0].log;
  for (size_t k = 0; k < log.size(); ++k) {
    ASSERT_TRUE(engine.Ingest(0, log[k]).ok());
    if (k % 25 == 24) {
      ASSERT_TRUE(engine.RequestDetection(0, log[k].timestamp, &out).ok());
    }
  }
  ASSERT_GT(engine.stats().requests, 0u);
  EXPECT_GT(engine.stats().rebuilds, 0u);
  EXPECT_EQ(engine.stats().parity_failures, 0u);
}

TEST(ServingEngine, RejectsBadInputs) {
  const ServedHome& sh = ServingWorld()[0];
  GnnConfig gc;
  const GnnModel model(gc);
  ServingConfig sc;
  StreamingDetectionEngine engine(&model, sc);
  ASSERT_TRUE(engine.AddHome(7, sh.home).ok());
  EXPECT_EQ(engine.AddHome(7, sh.home).code(), StatusCode::kAlreadyExists);
  Home empty_home;
  EXPECT_EQ(engine.AddHome(8, empty_home).code(),
            StatusCode::kInvalidArgument);

  LogEntry e;
  e.timestamp = 100.0;
  e.kind = LogKind::kStateChange;
  EXPECT_EQ(engine.Ingest(99, e).code(), StatusCode::kNotFound);
  ASSERT_TRUE(engine.Ingest(7, e).ok());
  e.timestamp = 50.0;  // time went backwards
  EXPECT_EQ(engine.Ingest(7, e).code(), StatusCode::kInvalidArgument);

  std::vector<DetectionResult> out;
  EXPECT_EQ(engine.RequestDetection(99, 1.0, &out).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.prepared(99), nullptr);
  EXPECT_EQ(engine.graph(99), nullptr);
}

// ---------------------------------------------------------------------------
// Thread-count parity & digest artifact (CI stage 11)
// ---------------------------------------------------------------------------

std::string ResultDigestLine(const DetectionResult& r) {
  char buf[64];
  std::string line = "home=" + std::to_string(r.home_id);
  std::snprintf(buf, sizeof(buf), " t=%a", r.request_time);
  line += buf;
  line += " emb=";
  for (double v : r.embedding) {
    std::snprintf(buf, sizeof(buf), "%a,", v);
    line += buf;
  }
  line += "\n";
  return line;
}

/// Digest independent of dispatch grouping (latency/batch_size excluded,
/// lines sorted): identical across max_batch settings and thread counts.
std::string SortedResultDigest(const std::vector<DetectionResult>& results) {
  std::vector<std::string> lines;
  lines.reserve(results.size());
  for (const DetectionResult& r : results) {
    lines.push_back(ResultDigestLine(r));
  }
  std::sort(lines.begin(), lines.end());
  std::string digest;
  for (const std::string& l : lines) digest += l;
  return digest;
}

TEST(ServingEngine, ThreadCountParity) {
  parallel::SetThreads(1);
  const std::vector<DetectionResult> r1 = RunScenario(8, false, nullptr);
  parallel::SetThreads(4);
  const std::vector<DetectionResult> r4 = RunScenario(8, false, nullptr);
  parallel::SetThreads(0);
  EXPECT_EQ(SortedResultDigest(r1), SortedResultDigest(r4));
}

TEST(ServingDigest, WritesDigestArtifact) {
  const char* path = std::getenv("FEXIOT_SERVING_DIGEST_OUT");
  if (path == nullptr) {
    GTEST_SKIP() << "set FEXIOT_SERVING_DIGEST_OUT to write the digest";
  }
  int max_batch = 8;
  if (const char* b = std::getenv("FEXIOT_SERVING_BATCH")) {
    max_batch = std::atoi(b);
  }
  ASSERT_GE(max_batch, 1);
  const std::vector<DetectionResult> results =
      RunScenario(max_batch, false, nullptr);
  ASSERT_FALSE(results.empty());
  FILE* f = std::fopen(path, "w");
  ASSERT_NE(f, nullptr) << "cannot open " << path;
  const std::string digest = SortedResultDigest(results);
  std::fputs(digest.c_str(), f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Seeded Poisson soak (CI stage 11)
// ---------------------------------------------------------------------------

TEST(ServingSoak, PoissonLoadMeetsLatencyBound) {
  if (std::getenv("FEXIOT_SERVING_SOAK") == nullptr) {
    GTEST_SKIP() << "set FEXIOT_SERVING_SOAK=1 to run the Poisson soak";
  }
  const std::vector<ServedHome>& world = ServingWorld();
  GnnConfig gc;
  const GnnModel model(gc);
  ServingConfig sc;
  sc.max_batch = 8;
  sc.max_linger_s = 0.02;
  StreamingDetectionEngine engine(&model, sc);
  const size_t num_homes = 4;
  double t0 = 0.0;
  for (size_t h = 0; h < num_homes; ++h) {
    ASSERT_TRUE(engine.AddHome(static_cast<int>(h), world[h].home).ok());
    for (const LogEntry& e : world[h].log) {
      ASSERT_TRUE(engine.Ingest(static_cast<int>(h), e).ok());
    }
    t0 = std::max(t0, world[h].log_end);
  }

  ArrivalConfig ac;
  ac.rate_hz = 200.0;
  ac.burst_factor = 4.0;
  ac.burst_fraction = 0.25;
  ac.burst_period_s = 2.0;
  ac.seed = 13;
  ASSERT_TRUE(ValidateArrivalConfig(ac).ok());
  ArrivalGenerator gen(ac);
  std::vector<DetectionResult> out;
  const int kRequests = 2000;
  for (int k = 0; k < kRequests; ++k) {
    const double t = t0 + gen.Next();
    engine.AdvanceTo(t, &out);
    ASSERT_TRUE(
        engine.RequestDetection(static_cast<int>(k % num_homes), t, &out)
            .ok());
  }
  engine.Flush(&out);
  ASSERT_EQ(out.size(), static_cast<size_t>(kRequests));

  const ServingStats& stats = engine.stats();
  EXPECT_EQ(stats.latency.count(), static_cast<size_t>(kRequests));
  const double p50 = stats.latency.Percentile(50.0);
  const double p99 = stats.latency.Percentile(99.0);
  EXPECT_LE(p50, p99);
  // End-to-end latency = simulated queueing (bounded by the 20 ms linger
  // plus forced-dispatch waits) + measured inference wall time. A quarter
  // second leaves an order of magnitude of headroom on a loaded CI box
  // while still catching pathological regressions.
  EXPECT_LT(p99, 0.25) << "p50=" << p50 << " max=" << stats.latency.Max();
  EXPECT_GT(stats.batches, 0u);
}

// ---------------------------------------------------------------------------
// Latency statistics
// ---------------------------------------------------------------------------

TEST(ServingStatsTest, PercentileExactOnKnownSamples) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Percentile(50.0), 0.0);
  EXPECT_EQ(rec.Max(), 0.0);
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) rec.Add(v);
  EXPECT_EQ(rec.count(), 5u);
  EXPECT_EQ(rec.Percentile(0.0), 1.0);
  EXPECT_EQ(rec.Percentile(25.0), 2.0);
  EXPECT_EQ(rec.Percentile(50.0), 3.0);
  EXPECT_EQ(rec.Percentile(75.0), 4.0);
  EXPECT_EQ(rec.Percentile(100.0), 5.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(90.0), 4.6);  // rank 3.6 interpolated
  EXPECT_EQ(rec.Max(), 5.0);
  EXPECT_DOUBLE_EQ(rec.Mean(), 3.0);
  rec.Clear();
  EXPECT_EQ(rec.count(), 0u);
}

TEST(ServingStatsTest, PercentilesMonotoneOnRandomSamples) {
  Rng rng(321);
  LatencyRecorder rec;
  for (int i = 0; i < 500; ++i) rec.Add(rng.Uniform(0.0, 10.0));
  double prev = rec.Percentile(0.0);
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double cur = rec.Percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
  EXPECT_EQ(rec.Percentile(100.0), rec.Max());
}

TEST(ServingStatsTest, EngineAccountingConsistent) {
  ServingStats stats;
  const std::vector<DetectionResult> results =
      RunScenario(4, false, &stats, 5, 3);
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(results.size()));
  EXPECT_EQ(stats.latency.count(), results.size());
  uint64_t hist_requests = 0, hist_batches = 0;
  for (size_t s = 0; s < stats.batch_size_hist.size(); ++s) {
    hist_requests += stats.batch_size_hist[s] * s;
    hist_batches += stats.batch_size_hist[s];
  }
  EXPECT_EQ(hist_requests, stats.requests);
  EXPECT_EQ(hist_batches, stats.batches);
  const double p50 = stats.latency.Percentile(50.0);
  const double p95 = stats.latency.Percentile(95.0);
  const double p99 = stats.latency.Percentile(99.0);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, stats.latency.Max());
}

// ---------------------------------------------------------------------------
// Config validation & arrivals
// ---------------------------------------------------------------------------

TEST(ServingConfigTest, ValidateRejectsBadKnobs) {
  EXPECT_TRUE(ValidateServingConfig(ServingConfig()).ok());
  ServingConfig c;
  c.max_batch = 0;
  EXPECT_FALSE(ValidateServingConfig(c).ok());
  c = ServingConfig();
  c.max_batch = 5000;
  EXPECT_FALSE(ValidateServingConfig(c).ok());
  c = ServingConfig();
  c.max_linger_s = -0.1;
  EXPECT_FALSE(ValidateServingConfig(c).ok());
  c = ServingConfig();
  c.active_window_s = 0.0;
  EXPECT_FALSE(ValidateServingConfig(c).ok());
  c = ServingConfig();
  c.firing_window_s = -1.0;
  EXPECT_FALSE(ValidateServingConfig(c).ok());
  c = ServingConfig();
  c.consistency_window_s = 0.0;
  EXPECT_FALSE(ValidateServingConfig(c).ok());
  c = ServingConfig();
  c.rebuild_churn_fraction = 0.0;
  EXPECT_FALSE(ValidateServingConfig(c).ok());
}

TEST(ArrivalsTest, ValidateRejectsBadKnobs) {
  EXPECT_TRUE(ValidateArrivalConfig(ArrivalConfig()).ok());
  ArrivalConfig c;
  c.rate_hz = 0.0;
  EXPECT_FALSE(ValidateArrivalConfig(c).ok());
  c = ArrivalConfig();
  c.burst_factor = 0.5;
  EXPECT_FALSE(ValidateArrivalConfig(c).ok());
  c = ArrivalConfig();
  c.burst_fraction = 1.0;
  EXPECT_FALSE(ValidateArrivalConfig(c).ok());
  c = ArrivalConfig();
  c.burst_fraction = -0.1;
  EXPECT_FALSE(ValidateArrivalConfig(c).ok());
  c = ArrivalConfig();
  c.burst_fraction = 0.5;
  c.burst_period_s = 0.0;
  EXPECT_FALSE(ValidateArrivalConfig(c).ok());
}

TEST(ArrivalsTest, DeterministicAndStrictlyIncreasing) {
  ArrivalConfig c;
  c.rate_hz = 50.0;
  c.seed = 99;
  ArrivalGenerator a(c), b(c);
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double ta = a.Next();
    EXPECT_EQ(ta, b.Next());  // same seed => bit-identical sequence
    EXPECT_GT(ta, prev);
    prev = ta;
  }
  EXPECT_EQ(a.now(), prev);
}

TEST(ArrivalsTest, BurstsRaiseArrivalCount) {
  const double horizon = 20.0;
  ArrivalConfig plain;
  plain.rate_hz = 50.0;
  plain.seed = 7;
  ArrivalConfig bursty = plain;
  bursty.burst_factor = 5.0;
  bursty.burst_fraction = 0.5;
  bursty.burst_period_s = 4.0;
  auto count_until = [&](const ArrivalConfig& c) {
    ArrivalGenerator gen(c);
    int n = 0;
    while (gen.Next() < horizon) ++n;
    return n;
  };
  const int plain_n = count_until(plain);
  const int bursty_n = count_until(bursty);
  // Expected rates: 50/s plain vs 50 * (0.5 + 0.5*5) = 150/s bursty.
  EXPECT_GT(plain_n, 700);
  EXPECT_GT(bursty_n, 2 * plain_n);
}

}  // namespace
}  // namespace fexiot
