// Property-style sweeps (TEST_P) over randomized inputs: invariants that
// must hold for every seed / configuration, complementing the per-module
// example-based tests.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/corpus.h"
#include "graph/vuln_checker.h"
#include "nlp/dtw.h"
#include "nlp/embeddings.h"
#include "smarthome/home.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

// --- Linear algebra properties --------------------------------------------

class SolveSpdProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolveSpdProperty, RecoversRandomSolution) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = 2 + rng.UniformInt(uint64_t{8});
  // A = B^T B + I is SPD.
  const Matrix b = Matrix::RandomNormal(n, n, 1.0, &rng);
  Matrix a = MatMulTransA(b, b);
  for (size_t i = 0; i < n; ++i) a.At(i, i) += 1.0;
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.Normal();
  // rhs = A x.
  std::vector<double> rhs(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) rhs[i] += a.At(i, j) * x_true[j];
  }
  const std::vector<double> x = SolveSpd(a, rhs, 0.0);
  ASSERT_EQ(x.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolveSpdProperty, ::testing::Range(1, 9));

class MatMulProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatMulProperty, AssociativityAndDistributivity) {
  Rng rng(static_cast<uint64_t>(100 + GetParam()));
  const size_t n = 2 + rng.UniformInt(uint64_t{5});
  const Matrix a = Matrix::RandomNormal(n, n, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(n, n, 1.0, &rng);
  const Matrix c = Matrix::RandomNormal(n, n, 1.0, &rng);
  // (AB)C == A(BC)
  const Matrix left = MatMul(MatMul(a, b), c);
  const Matrix right = MatMul(a, MatMul(b, c));
  for (size_t i = 0; i < left.size(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-9);
  }
  // A(B+C) == AB + AC
  const Matrix d1 = MatMul(a, b + c);
  const Matrix d2 = MatMul(a, b) + MatMul(a, c);
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_NEAR(d1.data()[i], d2.data()[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulProperty, ::testing::Range(1, 6));

// --- DTW properties ---------------------------------------------------------

class DtwProperty : public ::testing::TestWithParam<int> {};

TEST_P(DtwProperty, SymmetricNonNegativeIdentity) {
  Rng rng(static_cast<uint64_t>(200 + GetParam()));
  auto random_seq = [&](size_t len) {
    std::vector<std::vector<double>> seq;
    static const char* kWords[] = {"light", "valve", "door",  "fan",
                                   "smoke", "open",  "close", "on"};
    for (size_t i = 0; i < len; ++i) {
      seq.push_back(WordEmbedding::Embed(kWords[rng.UniformInt(uint64_t{8})]));
    }
    return seq;
  };
  const auto a = random_seq(1 + rng.UniformInt(uint64_t{5}));
  const auto b = random_seq(1 + rng.UniformInt(uint64_t{5}));
  const double dab = DtwDistance(a, b);
  const double dba = DtwDistance(b, a);
  EXPECT_NEAR(dab, dba, 1e-9);          // symmetry
  EXPECT_GE(dab, 0.0);                  // non-negativity
  EXPECT_NEAR(DtwDistance(a, a), 0.0, 1e-9);  // identity
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtwProperty, ::testing::Range(1, 9));

// --- Corpus invariants over platform mixes ---------------------------------

class CorpusPlatformProperty
    : public ::testing::TestWithParam<Platform> {};

TEST_P(CorpusPlatformProperty, GeneratedGraphsWellFormed) {
  Rng rng(300 + static_cast<uint64_t>(GetParam()));
  CorpusOptions opt;
  opt.platforms = {GetParam()};
  opt.min_nodes = 3;
  opt.max_nodes = 9;
  opt.vulnerable_fraction = 0.5;
  GraphCorpusGenerator gen(opt, &rng);
  const auto graphs = gen.GenerateDataset(14);
  for (const auto& g : graphs) {
    EXPECT_GE(g.num_nodes(), 2);
    EXPECT_LE(g.num_nodes(), 12);  // injection may add up to 3 nodes
    for (int i = 0; i < g.num_nodes(); ++i) {
      const auto& node = g.node(i);
      EXPECT_EQ(node.rule.platform, GetParam());
      EXPECT_EQ(node.features.size(),
                static_cast<size_t>(PlatformFeatureDim(GetParam())));
      for (double f : node.features) EXPECT_TRUE(std::isfinite(f));
    }
    // Edges are consistent with the trigger-action ground truth.
    for (const auto& [u, v] : g.edges()) {
      EXPECT_TRUE(ActionTriggersRule(g.node(u).rule, g.node(v).rule));
    }
    // Label agrees with the checker (vulnerable graphs carry findings;
    // benign carry none).
    const bool has_findings = !VulnerabilityChecker::Check(g).empty();
    if (g.label() == 0) {
      EXPECT_FALSE(has_findings) << g.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, CorpusPlatformProperty,
                         ::testing::Values(Platform::kSmartThings,
                                           Platform::kHomeAssistant,
                                           Platform::kIfttt,
                                           Platform::kGoogleAssistant,
                                           Platform::kAlexa));

// Structural invariants of stream-split parallel corpus generation, swept
// over seeds: well-formed edges, labels consistent with the ground-truth
// checker, and the platform mix pinned by CorpusOptions.
class CorpusStructuralProperty : public ::testing::TestWithParam<int> {};

TEST_P(CorpusStructuralProperty, InvariantsHoldForEverySeed) {
  Rng rng(static_cast<uint64_t>(500 + GetParam()));
  CorpusOptions opt;
  opt.platforms = {Platform::kSmartThings, Platform::kIfttt,
                   Platform::kAlexa};
  opt.min_nodes = 3;
  opt.max_nodes = 9;
  opt.vulnerable_fraction = 0.4;
  GraphCorpusGenerator gen(opt, &rng);
  const auto graphs = gen.GenerateDataset(30);
  ASSERT_EQ(graphs.size(), 30u);

  std::set<Platform> allowed(opt.platforms.begin(), opt.platforms.end());
  std::set<Platform> seen;
  int vulnerable = 0;
  for (const auto& g : graphs) {
    const int n = g.num_nodes();
    EXPECT_GE(n, 2);
    // Every edge endpoint in range, no self loops.
    for (const auto& [u, v] : g.edges()) {
      EXPECT_GE(u, 0);
      EXPECT_LT(u, n);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
      EXPECT_NE(u, v);
    }
    // Platform mix matches CorpusOptions.
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(allowed.count(g.node(i).rule.platform));
      seen.insert(g.node(i).rule.platform);
    }
    // Labels consistent with the ground-truth checker: planted graphs
    // carry a witness and the planted type is findable; benign graphs
    // certify clean.
    if (g.label() == 1) {
      ++vulnerable;
      ASSERT_NE(g.vulnerability(), VulnerabilityType::kNone);
      EXPECT_FALSE(g.witness().empty());
      EXPECT_FALSE(
          VulnerabilityChecker::CheckType(g, g.vulnerability()).empty())
          << "checker missed planted "
          << VulnerabilityTypeName(g.vulnerability()) << "\n" << g.ToString();
    } else {
      EXPECT_TRUE(VulnerabilityChecker::Check(g).empty()) << g.ToString();
    }
  }
  // The configured vulnerable fraction is honored exactly (the planner
  // rounds once, before the fan-out).
  EXPECT_EQ(vulnerable, 12);
  // Every configured platform actually appears somewhere in the corpus.
  EXPECT_EQ(seen.size(), allowed.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusStructuralProperty,
                         ::testing::Range(1, 4));

// --- Simulator properties ---------------------------------------------------

class SimulatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorProperty, LogsAreCausallyOrderedAndBounded) {
  Rng rng(static_cast<uint64_t>(400 + GetParam()));
  const Home home = BuildChainedHome(10, {Platform::kSmartThings}, &rng);
  SimulationConfig config;
  config.duration_seconds = 2 * 3600.0;
  config.exogenous_mean_gap = 150.0;
  HomeSimulator sim(home, config, &rng);
  const EventLog log = sim.Run();
  double prev = -1.0;
  for (const auto& e : log.entries()) {
    EXPECT_GE(e.timestamp, prev);
    prev = e.timestamp;
    // Cascade latency bounds every rule-driven entry within the horizon
    // plus the maximum chain delay.
    EXPECT_LE(e.timestamp,
              config.duration_seconds +
                  config.max_cascade_depth * (config.action_latency + 1.0));
    if (e.device_id > 0) {
      EXPECT_NE(home.DeviceById(e.device_id), nullptr);
    }
  }
  // Cleaning never grows the log.
  EXPECT_LE(log.Cleaned().size(), log.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperty, ::testing::Range(1, 7));

// --- Embedding determinism across processes resets --------------------------

TEST(EmbeddingProperty, PairEmbeddingInvariantToStopwordNoise) {
  // Adding stopwords must not change the content embedding.
  const auto a = TriggerActionPairEmbedding("smoke is detected",
                                            "open the valve");
  const auto b = TriggerActionPairEmbedding("the smoke is detected",
                                            "open a valve");
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

}  // namespace
}  // namespace fexiot
