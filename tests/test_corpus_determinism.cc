// Stream-split corpus generation: determinism + golden-statistics
// regression harness.
//
// GenerateDataset / BuildClusteredFederatedCorpus fan per-graph work out
// over the global thread pool, with graph i generated from an Rng child
// derived as ForkAt(i) of one fork of the shared stream. Two contracts are
// pinned here:
//
//  1. Bit-identity: for a fixed seed the corpus content — every rule
//     string, feature bit pattern, edge, label, witness, and partition
//     index — is a pure function of the seed. Thread count and execution
//     schedule (threads=8 executes indices in nondeterministic order, so
//     passing at 8 threads *is* the generation-order test) must not leak
//     into content.
//  2. Golden statistics: the distributional shape of the pinned corpora
//     (node/edge counts, label balance, vulnerability-type histogram,
//     per-platform node mix, Dirichlet partition skew) matches the
//     checked-in baseline tests/golden/corpus_stats.json within per-key
//     tolerances. Regenerate after an intentional content change with
//       FEXIOT_UPDATE_GOLDEN=1 ./test_corpus_determinism
//     (run from anywhere; the path is baked in at compile time).
//
// FEXIOT_STATS_OUT=<path> additionally dumps observed stats +
// fingerprints; CI diffs that artifact between FEXIOT_THREADS=1 and
// FEXIOT_THREADS=4 runs.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/parallel.h"
#include "corpus_golden.h"
#include "graph/corpus.h"

#ifndef FEXIOT_SOURCE_DIR
#define FEXIOT_SOURCE_DIR "."
#endif

namespace fexiot {
namespace {

constexpr uint64_t kGoldenSeed = 20260806ULL;
constexpr int kGoldenCount = 240;

const char* GoldenPath() {
  return FEXIOT_SOURCE_DIR "/tests/golden/corpus_stats.json";
}

/// The pinned heterogeneous corpus configuration behind the baseline.
CorpusOptions GoldenOptions() {
  CorpusOptions opt;
  opt.platforms = {Platform::kSmartThings, Platform::kHomeAssistant,
                   Platform::kIfttt, Platform::kGoogleAssistant,
                   Platform::kAlexa};
  opt.min_nodes = 3;
  opt.max_nodes = 10;
  opt.vulnerable_fraction = 0.3;
  return opt;
}

std::vector<InteractionGraph> GenerateGoldenDataset() {
  Rng rng(kGoldenSeed);
  GraphCorpusGenerator gen(GoldenOptions(), &rng);
  return gen.GenerateDataset(kGoldenCount);
}

FederatedCorpus GenerateGoldenFederatedCorpus() {
  Rng rng(kGoldenSeed + 1);
  return BuildClusteredFederatedCorpus(GoldenOptions(), /*total_graphs=*/120,
                                       /*num_clients=*/6, /*num_clusters=*/3,
                                       /*alpha=*/0.5,
                                       /*profile_strength=*/0.5, &rng);
}

/// Per-key tolerance for the checked-in baseline: fractions move a little
/// when upstream vocabulary/idiom changes shift the rejection sampling;
/// structural count averages get an absolute band; hard bounds are exact.
double ToleranceFor(const std::string& name) {
  if (name == "total_graphs" || name == "nodes_min" || name == "nodes_max" ||
      name == "fed_num_clients" || name == "fed_num_clusters" ||
      name == "fed_test_pool_size") {
    return 0.0;
  }
  if (name == "nodes_avg") return 1.0;
  if (name == "edges_avg") return 1.5;
  if (name == "fed_partition_size_cv") return 0.35;
  if (name == "fed_partition_label_dev") return 0.1;
  return 0.06;  // fractions: label balance, type histogram, platform mix
}

struct GoldenRun {
  golden::StatsMap stats;
  uint64_t dataset_fingerprint = 0;
  uint64_t federated_fingerprint = 0;
};

const GoldenRun& PinnedRun() {
  static const GoldenRun run = [] {
    GoldenRun r;
    const auto graphs = GenerateGoldenDataset();
    const FederatedCorpus fed = GenerateGoldenFederatedCorpus();
    r.stats = golden::ComputeGoldenStats(graphs);
    golden::AddFederatedStats(fed, &r.stats);
    r.dataset_fingerprint = golden::CorpusFingerprint(graphs);
    r.federated_fingerprint = golden::FederatedCorpusFingerprint(fed);
    return r;
  }();
  return run;
}

TEST(GoldenStats, MatchesCheckedInBaseline) {
  const GoldenRun& run = PinnedRun();

  if (const char* out = std::getenv("FEXIOT_STATS_OUT")) {
    ASSERT_TRUE(golden::WriteObservedJson(out, run.stats,
                                          run.dataset_fingerprint,
                                          run.federated_fingerprint));
  }
  if (const char* update = std::getenv("FEXIOT_UPDATE_GOLDEN")) {
    if (std::string(update) == "1") {
      ASSERT_TRUE(golden::WriteGoldenJson(GoldenPath(), run.stats,
                                          ToleranceFor));
      GTEST_SKIP() << "golden baseline regenerated at " << GoldenPath();
    }
  }

  golden::GoldenBaseline baseline;
  ASSERT_TRUE(golden::ReadGoldenBaseline(GoldenPath(), &baseline))
      << "missing/empty baseline " << GoldenPath()
      << " — regenerate with FEXIOT_UPDATE_GOLDEN=1";
  // Every baseline key must be observed and within tolerance; every
  // observed key must be pinned (no silently-untracked statistics).
  for (const auto& [name, entry] : baseline) {
    auto it = run.stats.find(name);
    ASSERT_NE(it, run.stats.end()) << "baseline key not observed: " << name;
    EXPECT_NEAR(it->second, entry.value, entry.tolerance + 1e-12)
        << "golden statistic drifted: " << name;
  }
  for (const auto& [name, value] : run.stats) {
    EXPECT_TRUE(baseline.count(name))
        << "observed statistic not pinned in baseline: " << name << " = "
        << value << " — regenerate with FEXIOT_UPDATE_GOLDEN=1";
  }
}

// Thread-count / schedule parity. threads=8 on any host executes the
// per-graph tasks in nondeterministic order, so equality with the
// threads=1 sequential pass also proves generation-order independence.
TEST(CorpusDeterminism, DatasetBitIdenticalAcrossThreadCounts) {
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt, Platform::kAlexa};
  opt.min_nodes = 3;
  opt.max_nodes = 7;
  opt.vulnerable_fraction = 0.25;
  auto fingerprint_with_threads = [&](size_t threads) {
    parallel::SetThreads(threads);
    Rng rng(kGoldenSeed + 2);
    GraphCorpusGenerator gen(opt, &rng);
    const auto graphs = gen.GenerateDataset(1000);
    parallel::SetThreads(0);
    return golden::CorpusFingerprint(graphs);
  };
  const uint64_t fp1 = fingerprint_with_threads(1);
  const uint64_t fp2 = fingerprint_with_threads(2);
  const uint64_t fp8 = fingerprint_with_threads(8);
  EXPECT_EQ(fp1, fp2);
  EXPECT_EQ(fp1, fp8);
}

TEST(CorpusDeterminism, FederatedCorpusBitIdenticalAcrossThreadCounts) {
  auto fingerprint_with_threads = [&](size_t threads) {
    parallel::SetThreads(threads);
    Rng rng(kGoldenSeed + 3);
    const FederatedCorpus fed = BuildClusteredFederatedCorpus(
        GoldenOptions(), 90, 6, 3, 1.0, 0.5, &rng);
    parallel::SetThreads(0);
    return golden::FederatedCorpusFingerprint(fed);
  };
  const uint64_t fp1 = fingerprint_with_threads(1);
  const uint64_t fp4 = fingerprint_with_threads(4);
  EXPECT_EQ(fp1, fp4);
}

TEST(CorpusDeterminism, SameSeedReproducesDifferentSeedDiffers) {
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 6;
  auto fp = [&](uint64_t seed) {
    Rng rng(seed);
    GraphCorpusGenerator gen(opt, &rng);
    return golden::CorpusFingerprint(gen.GenerateDataset(40));
  };
  EXPECT_EQ(fp(123), fp(123));
  EXPECT_NE(fp(123), fp(124));
}

// Successive GenerateDataset calls on one generator must advance the
// shared stream: device-profiled or repeated corpora may not repeat.
TEST(CorpusDeterminism, SuccessiveCallsProduceFreshContent) {
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 6;
  Rng rng(9001);
  GraphCorpusGenerator gen(opt, &rng);
  const uint64_t first = golden::CorpusFingerprint(gen.GenerateDataset(30));
  const uint64_t second = golden::CorpusFingerprint(gen.GenerateDataset(30));
  EXPECT_NE(first, second);
}

// Device profiles applied to the shared generator must reach the per-graph
// workers of the parallel fan-out (profile replay), and must change
// content deterministically.
TEST(CorpusDeterminism, DeviceProfilesReachParallelWorkers) {
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 6;
  auto fp = [&](bool profiled, size_t threads) {
    parallel::SetThreads(threads);
    Rng rng(4242);
    GraphCorpusGenerator gen(opt, &rng);
    if (profiled) gen.ApplyDeviceProfile(0xabcdULL, 1.5);
    const uint64_t f = golden::CorpusFingerprint(gen.GenerateDataset(40));
    parallel::SetThreads(0);
    return f;
  };
  EXPECT_NE(fp(false, 1), fp(true, 1));       // profile changes content
  EXPECT_EQ(fp(true, 1), fp(true, 4));        // ... identically per thread count
}

}  // namespace
}  // namespace fexiot
