// Parity, determinism, and race harness for the blocked GEMM kernels.
//
// MatMul/MatMulTransA/MatMulTransB are checked against the retained
// reference kernels over a randomized shape sweep (degenerate, tiny,
// non-block-multiple, and above the small-product cutoff so the blocked
// path actually runs), must be bit-identical across pool sizes, and must
// survive concurrent callers sharing the global pool (run under
// -DFEXIOT_SANITIZE=thread in ci/run_tests.sh).

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

struct Shape {
  size_t n, k, m;
};

// Mix of degenerate shapes, sizes straddling the microkernel tile
// (kMr=4 x kNr=16) and block (kMc=64, kKc=256) boundaries, and products
// above the small-flop cutoff (64^3) that exercise the packed path.
std::vector<Shape> ParityShapes() {
  std::vector<Shape> shapes = {
      {0, 0, 0},   {0, 5, 3},   {5, 0, 3},    {5, 3, 0},    {1, 1, 1},
      {1, 7, 1},   {2, 2, 2},   {3, 5, 7},    {4, 4, 16},   {5, 17, 9},
      {15, 16, 17}, {16, 16, 16}, {31, 33, 29}, {63, 64, 65}, {64, 64, 64},
      {65, 65, 65}, {64, 1, 64},  {1, 300, 900}, {100, 128, 100},
      {128, 128, 128}, {130, 70, 90}, {200, 16, 300}, {32, 512, 32},
      {96, 257, 48}, {40, 600, 24},
  };
  // Randomized fill to ~50 shapes, biased to straddle the cutoff.
  Rng rng(20250806);
  while (shapes.size() < 50) {
    const size_t n = 1 + rng.UniformInt(uint64_t{140});
    const size_t k = 1 + rng.UniformInt(uint64_t{300});
    const size_t m = 1 + rng.UniformInt(uint64_t{140});
    shapes.push_back({n, k, m});
  }
  return shapes;
}

// Equal within floating-point reassociation slack: the blocked kernel
// accumulates per depth block, so elements may differ from the reference
// in the last bits once k spans multiple blocks.
void ExpectMatricesNear(const Matrix& expected, const Matrix& got,
                        size_t k, const char* what, const Shape& s) {
  ASSERT_TRUE(expected.SameShape(got))
      << what << " shape mismatch at n=" << s.n << " k=" << s.k
      << " m=" << s.m;
  const double tol = 1e-9 * static_cast<double>(k + 1);
  for (size_t i = 0; i < expected.size(); ++i) {
    const double e = expected.data()[i];
    const double g = got.data()[i];
    ASSERT_NEAR(e, g, tol * std::max(1.0, std::fabs(e)))
        << what << " mismatch at flat index " << i << " for n=" << s.n
        << " k=" << s.k << " m=" << s.m;
  }
}

TEST(Kernels, BlockedMatchesReferenceAcrossShapes) {
  Rng rng(11);
  for (const Shape& s : ParityShapes()) {
    const Matrix a = Matrix::RandomNormal(s.n, s.k, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.m, 1.0, &rng);
    ExpectMatricesNear(ReferenceMatMul(a, b), MatMul(a, b), s.k, "MatMul",
                       s);
  }
}

TEST(Kernels, BlockedTransAMatchesReference) {
  Rng rng(12);
  for (const Shape& s : ParityShapes()) {
    // op(A) is n x k, so A is stored k x n.
    const Matrix a = Matrix::RandomNormal(s.k, s.n, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.m, 1.0, &rng);
    ExpectMatricesNear(ReferenceMatMulTransA(a, b), MatMulTransA(a, b), s.k,
                       "MatMulTransA", s);
  }
}

TEST(Kernels, BlockedTransBMatchesReference) {
  Rng rng(13);
  for (const Shape& s : ParityShapes()) {
    const Matrix a = Matrix::RandomNormal(s.n, s.k, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.m, s.k, 1.0, &rng);
    ExpectMatricesNear(ReferenceMatMulTransB(a, b), MatMulTransB(a, b), s.k,
                       "MatMulTransB", s);
  }
}

TEST(Kernels, ZerosTimesAnythingIsExactlyZero) {
  Rng rng(14);
  const Matrix a(70, 80);  // all zeros
  const Matrix b = Matrix::RandomNormal(80, 90, 1.0, &rng);
  const Matrix c = MatMul(a, b);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0);
}

TEST(Kernels, IdentityIsExact) {
  Rng rng(15);
  const size_t n = 96;  // above the small-product cutoff: blocked path
  const Matrix a = Matrix::RandomNormal(n, n, 1.0, &rng);
  const Matrix c = MatMul(a, Matrix::Identity(n));
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.data()[i], a.data()[i]) << "flat index " << i;
  }
}

// The determinism contract: results are a pure function of the inputs,
// independent of pool size — bit-for-bit, not just within tolerance.
TEST(Kernels, ResultsBitIdenticalAcrossThreadCounts) {
  Rng rng(16);
  const Matrix a = Matrix::RandomNormal(130, 257, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(257, 120, 1.0, &rng);

  parallel::SetThreads(1);
  const Matrix c1 = MatMul(a, b);
  const Matrix t1 = MatMulTransA(a.Transposed(), b);
  parallel::SetThreads(4);
  const Matrix c4 = MatMul(a, b);
  const Matrix t4 = MatMulTransA(a.Transposed(), b);
  parallel::SetThreads(0);  // restore default sizing

  ASSERT_TRUE(c1.SameShape(c4));
  for (size_t i = 0; i < c1.size(); ++i) {
    ASSERT_EQ(c1.data()[i], c4.data()[i]) << "flat index " << i;
  }
  ASSERT_TRUE(t1.SameShape(t4));
  for (size_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1.data()[i], t4.data()[i]) << "flat index " << i;
  }
}

// Race harness: independent caller threads share the one global pool.
// Each verifies its own product; TSAN (ci/run_tests.sh) checks the pool.
TEST(Kernels, ConcurrentCallersShareThePool) {
  parallel::SetThreads(4);
  constexpr int kCallers = 4;
  Rng rng(17);
  std::vector<Matrix> as, bs, expected;
  for (int t = 0; t < kCallers; ++t) {
    as.push_back(Matrix::RandomNormal(80, 90, 1.0, &rng));
    bs.push_back(Matrix::RandomNormal(90, 70, 1.0, &rng));
    expected.push_back(MatMul(as.back(), bs.back()));
  }
  std::vector<int> ok(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int rep = 0; rep < 8; ++rep) {
        const Matrix c = MatMul(as[t], bs[t]);
        if (!c.SameShape(expected[t])) return;
        for (size_t i = 0; i < c.size(); ++i) {
          if (c.data()[i] != expected[t].data()[i]) return;
        }
      }
      ok[t] = 1;
    });
  }
  for (auto& th : callers) th.join();
  parallel::SetThreads(0);
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(ok[t], 1) << "caller " << t << " saw a wrong product";
  }
}

TEST(Kernels, ParallelForRangeCoversEveryIndexOnce) {
  parallel::SetThreads(3);
  const size_t n = 1013;  // deliberately not a multiple of the pool size
  std::vector<int> hits(n, 0);
  parallel::ForRange(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  parallel::SetThreads(0);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

}  // namespace
}  // namespace fexiot
