// Parity, determinism, and race harness for the blocked GEMM kernels and
// their runtime ISA dispatch (tensor/gemm.h).
//
// MatMul/MatMulTransA/MatMulTransB are checked against the retained
// reference kernels over a randomized shape sweep (degenerate, tiny,
// non-block-multiple, wide-C pack-reuse, and above the small-product
// cutoff so the blocked path actually runs), must be bit-identical across
// pool sizes and across the AVX2/AVX-512 tiers (ULP-bounded against the
// scalar tier — see docs/KERNELS.md), and must survive concurrent callers
// sharing the global pool (run under -DFEXIOT_SANITIZE=thread in
// ci/run_tests.sh, which also reruns this binary under each FEXIOT_ISA).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/cpu_features.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

struct Shape {
  size_t n, k, m;
};

// Mix of degenerate shapes, sizes straddling the microkernel tile
// (kMr=4 x kNr=16) and block (kMc=64, kKc=256) boundaries, and products
// above the small-flop cutoff (64^3) that exercise the packed path.
std::vector<Shape> ParityShapes() {
  std::vector<Shape> shapes = {
      {0, 0, 0},   {0, 5, 3},   {5, 0, 3},    {5, 3, 0},    {1, 1, 1},
      {1, 7, 1},   {2, 2, 2},   {3, 5, 7},    {4, 4, 16},   {5, 17, 9},
      {15, 16, 17}, {16, 16, 16}, {31, 33, 29}, {63, 64, 65}, {64, 64, 64},
      {65, 65, 65}, {64, 1, 64},  {1, 300, 900}, {100, 128, 100},
      {128, 128, 128}, {130, 70, 90}, {200, 16, 300}, {32, 512, 32},
      {96, 257, 48}, {40, 600, 24},
      // Wide C (m > nc): the pack-reuse path caches packed A blocks per
      // depth block and reuses them across column panels.
      {40, 500, 1500}, {24, 700, 600},
  };
  // Randomized fill to ~50 shapes, biased to straddle the cutoff.
  Rng rng(20250806);
  while (shapes.size() < 50) {
    const size_t n = 1 + rng.UniformInt(uint64_t{140});
    const size_t k = 1 + rng.UniformInt(uint64_t{300});
    const size_t m = 1 + rng.UniformInt(uint64_t{140});
    shapes.push_back({n, k, m});
  }
  return shapes;
}

// Equal within floating-point reassociation slack: the blocked kernel
// accumulates per depth block, so elements may differ from the reference
// in the last bits once k spans multiple blocks.
void ExpectMatricesNear(const Matrix& expected, const Matrix& got,
                        size_t k, const char* what, const Shape& s) {
  ASSERT_TRUE(expected.SameShape(got))
      << what << " shape mismatch at n=" << s.n << " k=" << s.k
      << " m=" << s.m;
  const double tol = 1e-9 * static_cast<double>(k + 1);
  for (size_t i = 0; i < expected.size(); ++i) {
    const double e = expected.data()[i];
    const double g = got.data()[i];
    ASSERT_NEAR(e, g, tol * std::max(1.0, std::fabs(e)))
        << what << " mismatch at flat index " << i << " for n=" << s.n
        << " k=" << s.k << " m=" << s.m;
  }
}

TEST(Kernels, BlockedMatchesReferenceAcrossShapes) {
  Rng rng(11);
  for (const Shape& s : ParityShapes()) {
    const Matrix a = Matrix::RandomNormal(s.n, s.k, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.m, 1.0, &rng);
    ExpectMatricesNear(ReferenceMatMul(a, b), MatMul(a, b), s.k, "MatMul",
                       s);
  }
}

TEST(Kernels, BlockedTransAMatchesReference) {
  Rng rng(12);
  for (const Shape& s : ParityShapes()) {
    // op(A) is n x k, so A is stored k x n.
    const Matrix a = Matrix::RandomNormal(s.k, s.n, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.m, 1.0, &rng);
    ExpectMatricesNear(ReferenceMatMulTransA(a, b), MatMulTransA(a, b), s.k,
                       "MatMulTransA", s);
  }
}

TEST(Kernels, BlockedTransBMatchesReference) {
  Rng rng(13);
  for (const Shape& s : ParityShapes()) {
    const Matrix a = Matrix::RandomNormal(s.n, s.k, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.m, s.k, 1.0, &rng);
    ExpectMatricesNear(ReferenceMatMulTransB(a, b), MatMulTransB(a, b), s.k,
                       "MatMulTransB", s);
  }
}

TEST(Kernels, ZerosTimesAnythingIsExactlyZero) {
  Rng rng(14);
  const Matrix a(70, 80);  // all zeros
  const Matrix b = Matrix::RandomNormal(80, 90, 1.0, &rng);
  const Matrix c = MatMul(a, b);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0);
}

TEST(Kernels, IdentityIsExact) {
  Rng rng(15);
  const size_t n = 96;  // above the small-product cutoff: blocked path
  const Matrix a = Matrix::RandomNormal(n, n, 1.0, &rng);
  const Matrix c = MatMul(a, Matrix::Identity(n));
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.data()[i], a.data()[i]) << "flat index " << i;
  }
}

// The determinism contract: results are a pure function of the inputs,
// independent of pool size — bit-for-bit, not just within tolerance.
TEST(Kernels, ResultsBitIdenticalAcrossThreadCounts) {
  Rng rng(16);
  const Matrix a = Matrix::RandomNormal(130, 257, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(257, 120, 1.0, &rng);

  parallel::SetThreads(1);
  const Matrix c1 = MatMul(a, b);
  const Matrix t1 = MatMulTransA(a.Transposed(), b);
  parallel::SetThreads(4);
  const Matrix c4 = MatMul(a, b);
  const Matrix t4 = MatMulTransA(a.Transposed(), b);
  parallel::SetThreads(0);  // restore default sizing

  ASSERT_TRUE(c1.SameShape(c4));
  for (size_t i = 0; i < c1.size(); ++i) {
    ASSERT_EQ(c1.data()[i], c4.data()[i]) << "flat index " << i;
  }
  ASSERT_TRUE(t1.SameShape(t4));
  for (size_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1.data()[i], t4.data()[i]) << "flat index " << i;
  }
}

// Race harness: independent caller threads share the one global pool.
// Each verifies its own product; TSAN (ci/run_tests.sh) checks the pool.
TEST(Kernels, ConcurrentCallersShareThePool) {
  parallel::SetThreads(4);
  constexpr int kCallers = 4;
  Rng rng(17);
  std::vector<Matrix> as, bs, expected;
  for (int t = 0; t < kCallers; ++t) {
    as.push_back(Matrix::RandomNormal(80, 90, 1.0, &rng));
    bs.push_back(Matrix::RandomNormal(90, 70, 1.0, &rng));
    expected.push_back(MatMul(as.back(), bs.back()));
  }
  std::vector<int> ok(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int rep = 0; rep < 8; ++rep) {
        const Matrix c = MatMul(as[t], bs[t]);
        if (!c.SameShape(expected[t])) return;
        for (size_t i = 0; i < c.size(); ++i) {
          if (c.data()[i] != expected[t].data()[i]) return;
        }
      }
      ok[t] = 1;
    });
  }
  for (auto& th : callers) th.join();
  parallel::SetThreads(0);
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(ok[t], 1) << "caller " << t << " saw a wrong product";
  }
}

// --- Runtime ISA dispatch (tensor/gemm.h) ---------------------------------
//
// ci/run_tests.sh reruns this whole binary under FEXIOT_ISA=scalar/avx2/
// avx512, which exercises the environment-variable path end to end; the
// in-process suite below uses gemm::SetActiveIsa to sweep every tier a
// single host supports.

// Restores the dispatched kernel on scope exit so direct (non-ctest)
// runs of this binary don't leak an override into later tests.
class IsaGuard {
 public:
  IsaGuard() : saved_(gemm::ActiveKernel().isa) {}
  ~IsaGuard() { gemm::SetActiveIsa(saved_); }

 private:
  cpu::Isa saved_;
};

const gemm::KernelInfo* CompiledKernel(cpu::Isa isa) {
  switch (isa) {
    case cpu::Isa::kAvx512:
      return gemm::Avx512Kernel();
    case cpu::Isa::kAvx2:
      return gemm::Avx2Kernel();
    case cpu::Isa::kScalar:
      return gemm::ScalarKernel();
  }
  return nullptr;
}

TEST(IsaDispatch, ActiveKernelIsRunnableAndHonorsEnv) {
  const gemm::KernelInfo& active = gemm::ActiveKernel();
  EXPECT_TRUE(cpu::IsaSupported(active.isa));
  ASSERT_NE(CompiledKernel(active.isa), nullptr);
  EXPECT_EQ(active.mc % active.mr, 0u);
  EXPECT_EQ(active.nc % active.nr, 0u);
  // When FEXIOT_ISA names a tier this host can actually run, the
  // dispatcher must have picked exactly that tier.
  const char* env = std::getenv("FEXIOT_ISA");
  cpu::Isa requested;
  if (env != nullptr && cpu::ParseIsa(env, &requested) &&
      cpu::IsaSupported(requested) && CompiledKernel(requested) != nullptr) {
    EXPECT_EQ(active.isa, requested) << "FEXIOT_ISA=" << env << " ignored";
  }
}

TEST(IsaDispatch, SetActiveIsaRejectsUnsupportedTiers) {
  IsaGuard guard;
  const cpu::Isa before = gemm::ActiveKernel().isa;
  for (cpu::Isa isa :
       {cpu::Isa::kScalar, cpu::Isa::kAvx2, cpu::Isa::kAvx512}) {
    const bool available =
        cpu::IsaSupported(isa) && CompiledKernel(isa) != nullptr;
    EXPECT_EQ(gemm::SetActiveIsa(isa), available) << cpu::IsaName(isa);
    if (!available) {
      EXPECT_EQ(gemm::ActiveKernel().isa, before)
          << "failed override must leave the selection unchanged";
    }
  }
  ASSERT_TRUE(gemm::SetActiveIsa(cpu::Isa::kScalar));
  EXPECT_EQ(gemm::ActiveKernel().isa, cpu::Isa::kScalar);
}

// The cross-ISA / cross-thread-count parity contract (docs/KERNELS.md):
//  - per tier, results are bit-identical for every thread count;
//  - AVX2 and AVX-512 agree bit-for-bit (identical per-element FMA
//    sequence, only the vector grouping differs);
//  - the scalar tier (mul+add, -ffp-contract=off) differs from the FMA
//    tiers by at most one rounding per accumulation step, enforced here
//    with the conservative envelope 1e-9 * (k+1) relative to |element|.
TEST(IsaDispatch, ParityAcrossIsasAndThreadCounts) {
  IsaGuard guard;
  // Sizes straddle the small-product cutoff, block boundaries, and the
  // wide-C pack-reuse threshold (m > nc); k > kc exercises multiple
  // depth blocks.
  const std::vector<Shape> shapes = {
      {96, 96, 96},  {130, 257, 120}, {64, 512, 64},
      {65, 300, 70}, {70, 300, 1100}, {33, 80, 550},
  };
  Rng rng(20260806);
  for (const Shape& s : shapes) {
    const Matrix a = Matrix::RandomNormal(s.n, s.k, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.m, 1.0, &rng);
    const Matrix at = a.Transposed();
    const Matrix bt = b.Transposed();

    std::vector<cpu::Isa> ran;
    std::vector<Matrix> c_by_isa, ta_by_isa, tb_by_isa;
    for (cpu::Isa isa :
         {cpu::Isa::kScalar, cpu::Isa::kAvx2, cpu::Isa::kAvx512}) {
      if (!gemm::SetActiveIsa(isa)) continue;  // host can't run this tier
      parallel::SetThreads(1);
      const Matrix c1 = MatMul(a, b);
      const Matrix ta1 = MatMulTransA(at, b);
      const Matrix tb1 = MatMulTransB(a, bt);
      parallel::SetThreads(4);
      const Matrix c4 = MatMul(a, b);
      const Matrix ta4 = MatMulTransA(at, b);
      const Matrix tb4 = MatMulTransB(a, bt);
      parallel::SetThreads(0);
      for (size_t i = 0; i < c1.size(); ++i) {
        ASSERT_EQ(c1.data()[i], c4.data()[i])
            << cpu::IsaName(isa) << " MatMul thread-count divergence at "
            << i << " (n=" << s.n << " k=" << s.k << " m=" << s.m << ")";
      }
      for (size_t i = 0; i < ta1.size(); ++i) {
        ASSERT_EQ(ta1.data()[i], ta4.data()[i])
            << cpu::IsaName(isa) << " TransA thread-count divergence at "
            << i;
      }
      for (size_t i = 0; i < tb1.size(); ++i) {
        ASSERT_EQ(tb1.data()[i], tb4.data()[i])
            << cpu::IsaName(isa) << " TransB thread-count divergence at "
            << i;
      }
      ran.push_back(isa);
      c_by_isa.push_back(c1);
      ta_by_isa.push_back(ta1);
      tb_by_isa.push_back(tb1);
    }
    ASSERT_FALSE(ran.empty());  // scalar always runs

    for (size_t x = 1; x < ran.size(); ++x) {
      for (size_t y = 0; y < x; ++y) {
        const bool both_fma =
            ran[x] != cpu::Isa::kScalar && ran[y] != cpu::Isa::kScalar;
        if (both_fma) {
          // AVX2 vs AVX-512: exactly the same bits.
          for (size_t i = 0; i < c_by_isa[x].size(); ++i) {
            ASSERT_EQ(c_by_isa[x].data()[i], c_by_isa[y].data()[i])
                << cpu::IsaName(ran[x]) << " vs " << cpu::IsaName(ran[y])
                << " MatMul divergence at " << i << " (n=" << s.n
                << " k=" << s.k << " m=" << s.m << ")";
          }
          for (size_t i = 0; i < ta_by_isa[x].size(); ++i) {
            ASSERT_EQ(ta_by_isa[x].data()[i], ta_by_isa[y].data()[i])
                << "TransA divergence at " << i;
          }
          for (size_t i = 0; i < tb_by_isa[x].size(); ++i) {
            ASSERT_EQ(tb_by_isa[x].data()[i], tb_by_isa[y].data()[i])
                << "TransB divergence at " << i;
          }
        } else {
          ExpectMatricesNear(c_by_isa[y], c_by_isa[x], s.k, "isa MatMul",
                             s);
          ExpectMatricesNear(ta_by_isa[y], ta_by_isa[x], s.k, "isa TransA",
                             s);
          ExpectMatricesNear(tb_by_isa[y], tb_by_isa[x], s.k, "isa TransB",
                             s);
        }
      }
    }
  }
}

// Every compiled+supported tier must match the ISA-independent reference
// on the wide-C pack-reuse path (m > nc) with multiple depth blocks, the
// shape where A packs are cached per depth block and PackB fans out over
// the pool.
TEST(IsaDispatch, PackReusePathMatchesReferencePerIsa) {
  IsaGuard guard;
  Rng rng(18);
  const Shape s{70, 600, 1300};
  const Matrix a = Matrix::RandomNormal(s.n, s.k, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(s.k, s.m, 1.0, &rng);
  const Matrix expected = ReferenceMatMul(a, b);
  for (cpu::Isa isa :
       {cpu::Isa::kScalar, cpu::Isa::kAvx2, cpu::Isa::kAvx512}) {
    if (!gemm::SetActiveIsa(isa)) continue;
    ASSERT_TRUE(gemm::PackReuseEngages(s.m)) << cpu::IsaName(isa);
    ExpectMatricesNear(expected, MatMul(a, b), s.k, cpu::IsaName(isa), s);
  }
}

TEST(Kernels, ParallelForRangeCoversEveryIndexOnce) {
  parallel::SetThreads(3);
  const size_t n = 1013;  // deliberately not a multiple of the pool size
  std::vector<int> hits(n, 0);
  parallel::ForRange(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  parallel::SetThreads(0);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

}  // namespace
}  // namespace fexiot
