#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "runtime/codec.h"

namespace fexiot {
namespace {

// ---------------------------------------------------------------------------
// Names, parsing, env resolution
// ---------------------------------------------------------------------------

TEST(Codec, NamesParseBackToThemselves) {
  for (int k = 0; k < kNumWireCodecs; ++k) {
    const WireCodec c = static_cast<WireCodec>(k);
    const Result<WireCodec> parsed = ParseWireCodec(WireCodecName(c));
    ASSERT_TRUE(parsed.ok()) << WireCodecName(c);
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(ParseWireCodec("fp16").ok());
  EXPECT_FALSE(ParseWireCodec("").ok());
  EXPECT_TRUE(IsValidWireCodec(0));
  EXPECT_TRUE(IsValidWireCodec(3));
  EXPECT_FALSE(IsValidWireCodec(4));
  EXPECT_FALSE(IsValidWireCodec(0xFFFFFFFFu));
}

TEST(Codec, EnvOverrideResolvesAndKeepsConfiguredOnGarbage) {
  ASSERT_EQ(setenv("FEXIOT_WIRE_CODEC", "int8", 1), 0);
  EXPECT_EQ(ResolveWireCodec(WireCodec::kFp64), WireCodec::kInt8);
  ASSERT_EQ(setenv("FEXIOT_WIRE_CODEC", "petabit", 1), 0);
  EXPECT_EQ(ResolveWireCodec(WireCodec::kBf16), WireCodec::kBf16);
  ASSERT_EQ(unsetenv("FEXIOT_WIRE_CODEC"), 0);
  EXPECT_EQ(ResolveWireCodec(WireCodec::kFp32), WireCodec::kFp32);
}

// ---------------------------------------------------------------------------
// Encoded record size / framing contracts
// ---------------------------------------------------------------------------

TEST(Codec, EncodedPayloadBytesMatchesAppendExactly) {
  Rng rng(0xC0DEC);
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{33}, size_t{257}}) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.Uniform() * 4.0 - 2.0;
    for (int k = 0; k < kNumWireCodecs; ++k) {
      const WireCodec c = static_cast<WireCodec>(k);
      std::vector<uint8_t> out;
      AppendEncodedPayload(&out, v, c);
      EXPECT_EQ(out.size(), EncodedPayloadBytes(n, c))
          << WireCodecName(c) << " n=" << n;
    }
  }
}

TEST(Codec, Fp64RecordIsByteIdenticalToRawDoubles) {
  const std::vector<double> v = {1.5, -2.25, 0.0, -0.0, 1e-300, 3.14159};
  std::vector<uint8_t> out;
  AppendEncodedPayload(&out, v, WireCodec::kFp64);
  ASSERT_EQ(out.size(), sizeof(uint64_t) + v.size() * sizeof(double));
  EXPECT_EQ(std::memcmp(out.data() + sizeof(uint64_t), v.data(),
                        v.size() * sizeof(double)),
            0);
}

TEST(Codec, LossyCodecsShrinkTheRecord) {
  const size_t n = 1000;
  const size_t fp64 = EncodedPayloadBytes(n, WireCodec::kFp64);
  EXPECT_LT(EncodedPayloadBytes(n, WireCodec::kFp32), fp64);
  EXPECT_LT(EncodedPayloadBytes(n, WireCodec::kBf16),
            EncodedPayloadBytes(n, WireCodec::kFp32));
  EXPECT_LT(EncodedPayloadBytes(n, WireCodec::kInt8),
            EncodedPayloadBytes(n, WireCodec::kBf16));
  // The headline ratio: int8 lanes are ~8x smaller than fp64 lanes.
  EXPECT_GE(static_cast<double>(fp64) /
                static_cast<double>(EncodedPayloadBytes(n, WireCodec::kInt8)),
            7.0);
}

// ---------------------------------------------------------------------------
// Round-trip error bounds
// ---------------------------------------------------------------------------

std::vector<double> DecodeRecord(const std::vector<uint8_t>& bytes,
                                 WireCodec codec) {
  std::vector<double> out;
  size_t off = 0;
  EXPECT_TRUE(ReadEncodedPayload(bytes.data(), bytes.size(), &off, codec, &out));
  EXPECT_EQ(off, bytes.size());
  return out;
}

TEST(Codec, Fp32RoundTripWithinHalfUlp) {
  Rng rng(11);
  std::vector<double> v(512);
  for (auto& x : v) x = (rng.Uniform() * 2.0 - 1.0) * 10.0;
  std::vector<uint8_t> bytes;
  AppendEncodedPayload(&bytes, v, WireCodec::kFp32);
  const std::vector<double> back = DecodeRecord(bytes, WireCodec::kFp32);
  ASSERT_EQ(back.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    // Round-to-nearest f32: relative error <= 2^-24.
    EXPECT_LE(std::abs(back[i] - v[i]),
              std::abs(v[i]) * std::ldexp(1.0, -24) +
                  std::numeric_limits<double>::min())
        << i;
  }
}

TEST(Codec, Bf16RoundTripWithinDocumentedRelativeError) {
  Rng rng(12);
  std::vector<double> v(512);
  for (auto& x : v) x = (rng.Uniform() * 2.0 - 1.0) * 10.0;
  std::vector<uint8_t> bytes;
  AppendEncodedPayload(&bytes, v, WireCodec::kBf16);
  const std::vector<double> back = DecodeRecord(bytes, WireCodec::kBf16);
  ASSERT_EQ(back.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    // 8 explicit mantissa bits, round to nearest: relative error <= 2^-8.
    EXPECT_LE(std::abs(back[i] - v[i]), std::abs(v[i]) * std::ldexp(1.0, -8))
        << i;
  }
}

TEST(Codec, Int8RoundTripWithinHalfScalePerElement) {
  Rng rng(13);
  std::vector<double> v(512);
  for (auto& x : v) x = (rng.Uniform() * 2.0 - 1.0) * 0.05;
  double lo = v[0], hi = v[0];
  for (double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const double scale = (hi - lo) / 255.0;
  std::vector<uint8_t> bytes;
  AppendEncodedPayload(&bytes, v, WireCodec::kInt8);
  const std::vector<double> back = DecodeRecord(bytes, WireCodec::kInt8);
  ASSERT_EQ(back.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    // Affine quantization: error <= scale/2, plus slack for the fp32
    // rounding of the stored scale/zero-point endpoints.
    EXPECT_LE(std::abs(back[i] - v[i]),
              scale / 2.0 + (std::abs(lo) + std::abs(hi) + scale) * 1e-6)
        << i;
  }
}

TEST(Codec, Int8ConstantTensorIsExactUpToF32) {
  const std::vector<double> v(17, 0.03125);  // exactly representable in f32
  std::vector<uint8_t> bytes;
  AppendEncodedPayload(&bytes, v, WireCodec::kInt8);
  for (double x : DecodeRecord(bytes, WireCodec::kInt8)) {
    EXPECT_EQ(x, 0.03125);
  }
}

TEST(Codec, EmptyAndSingleElementTensors) {
  for (int k = 0; k < kNumWireCodecs; ++k) {
    const WireCodec c = static_cast<WireCodec>(k);
    {
      std::vector<uint8_t> bytes;
      AppendEncodedPayload(&bytes, {}, c);
      EXPECT_TRUE(DecodeRecord(bytes, c).empty()) << WireCodecName(c);
    }
    {
      std::vector<uint8_t> bytes;
      AppendEncodedPayload(&bytes, {0.75}, c);
      const std::vector<double> back = DecodeRecord(bytes, c);
      ASSERT_EQ(back.size(), 1u) << WireCodecName(c);
      // 0.75 is exact in every lane format (int8: zero_point = min = 0.75).
      EXPECT_EQ(back[0], 0.75) << WireCodecName(c);
    }
  }
}

TEST(Codec, NonFiniteHandlingPerCodec) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> v = {1.0, -1.0, inf, -inf, nan, 0.0, -0.0};
  for (WireCodec c : {WireCodec::kFp32, WireCodec::kBf16}) {
    std::vector<uint8_t> bytes;
    AppendEncodedPayload(&bytes, v, c);
    const std::vector<double> back = DecodeRecord(bytes, c);
    ASSERT_EQ(back.size(), v.size());
    EXPECT_EQ(back[2], inf) << WireCodecName(c);
    EXPECT_EQ(back[3], -inf) << WireCodecName(c);
    EXPECT_TRUE(std::isnan(back[4])) << WireCodecName(c);
    EXPECT_EQ(back[5], 0.0) << WireCodecName(c);
    EXPECT_TRUE(std::signbit(back[6])) << WireCodecName(c);
  }
  {
    // int8: +inf saturates to the top code, -inf/NaN to the bottom one;
    // the scale comes from the finite range [-1, 1] only.
    std::vector<uint8_t> bytes;
    AppendEncodedPayload(&bytes, v, WireCodec::kInt8);
    const std::vector<double> back = DecodeRecord(bytes, WireCodec::kInt8);
    ASSERT_EQ(back.size(), v.size());
    for (double x : back) EXPECT_TRUE(std::isfinite(x));
    EXPECT_NEAR(back[2], 1.0, 1e-6);   // +inf -> max code -> finite max
    EXPECT_NEAR(back[3], -1.0, 1e-6);  // -inf -> min code -> finite min
    EXPECT_NEAR(back[4], -1.0, 1e-6);  // NaN -> min code
  }
  {
    // Huge-but-finite doubles clamp through f32 to +-inf, never UB.
    std::vector<uint8_t> bytes;
    AppendEncodedPayload(&bytes, {1e308, -1e308}, WireCodec::kFp32);
    const std::vector<double> back = DecodeRecord(bytes, WireCodec::kFp32);
    EXPECT_EQ(back[0], inf);
    EXPECT_EQ(back[1], -inf);
  }
}

TEST(Codec, Bf16NanNeverBecomesInf) {
  const uint16_t b = FloatToBf16(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(Bf16ToFloat(b)));
  // All NaN payload patterns stay NaN through the rounding path too.
  uint32_t bits = 0x7F800001u;  // signaling-ish NaN with a low mantissa bit
  float f = 0.0f;
  std::memcpy(&f, &bits, sizeof(f));
  EXPECT_TRUE(std::isnan(Bf16ToFloat(FloatToBf16(f))));
}

// ---------------------------------------------------------------------------
// Determinism and encode stability
// ---------------------------------------------------------------------------

TEST(Codec, EncodeDecodeEncodeIsByteStable) {
  // Idempotency: re-encoding the dequantized payload reproduces the exact
  // record bytes, so a relay node never degrades a message further.
  Rng rng(14);
  std::vector<double> v(300);
  for (auto& x : v) x = (rng.Uniform() * 2.0 - 1.0) * 0.2;
  for (int k = 0; k < kNumWireCodecs; ++k) {
    const WireCodec c = static_cast<WireCodec>(k);
    std::vector<uint8_t> first;
    AppendEncodedPayload(&first, v, c);
    const std::vector<double> mid = DecodeRecord(first, c);
    std::vector<uint8_t> second;
    AppendEncodedPayload(&second, mid, c);
    EXPECT_EQ(first, second) << WireCodecName(c);
  }
}

TEST(Codec, RoundTripHelperMatchesWireRoundTrip) {
  Rng rng(15);
  std::vector<double> v(128);
  for (auto& x : v) x = rng.Uniform() * 2.0 - 1.0;
  for (int k = 0; k < kNumWireCodecs; ++k) {
    const WireCodec c = static_cast<WireCodec>(k);
    std::vector<uint8_t> bytes;
    AppendEncodedPayload(&bytes, v, c);
    EXPECT_EQ(CodecRoundTripped(c, v), DecodeRecord(bytes, c))
        << WireCodecName(c);
  }
}

TEST(Codec, QuantizationIsDeterministic) {
  Rng rng(16);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.Uniform() * 6.0 - 3.0;
  for (int k = 0; k < kNumWireCodecs; ++k) {
    const WireCodec c = static_cast<WireCodec>(k);
    std::vector<uint8_t> a, b;
    AppendEncodedPayload(&a, v, c);
    AppendEncodedPayload(&b, v, c);
    EXPECT_EQ(a, b) << WireCodecName(c);
  }
}

// ---------------------------------------------------------------------------
// Truncated / hostile records
// ---------------------------------------------------------------------------

TEST(Codec, TruncatedRecordsFailCleanly) {
  std::vector<double> v(64, 0.5);
  v[0] = -1.0;
  v[63] = 1.0;
  for (int k = 0; k < kNumWireCodecs; ++k) {
    const WireCodec c = static_cast<WireCodec>(k);
    std::vector<uint8_t> bytes;
    AppendEncodedPayload(&bytes, v, c);
    for (size_t cut : {size_t{0}, size_t{4}, size_t{8}, size_t{9},
                       bytes.size() - 1}) {
      size_t off = 0;
      std::vector<double> out;
      EXPECT_FALSE(ReadEncodedPayload(bytes.data(), cut, &off, c, &out))
          << WireCodecName(c) << " cut=" << cut;
    }
  }
}

TEST(Codec, CorruptedCountDoesNotAllocatePetabytes) {
  std::vector<uint8_t> bytes;
  AppendEncodedPayload(&bytes, {1.0, 2.0}, WireCodec::kInt8);
  // Overwrite the u64 element count with a huge value: the reader must
  // reject it from the remaining-bytes bound, not try to resize.
  const uint64_t huge = ~uint64_t{0} / 2;
  std::memcpy(bytes.data(), &huge, sizeof(huge));
  size_t off = 0;
  std::vector<double> out;
  EXPECT_FALSE(
      ReadEncodedPayload(bytes.data(), bytes.size(), &off, WireCodec::kInt8,
                         &out));
}

}  // namespace
}  // namespace fexiot
