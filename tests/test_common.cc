#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace fexiot {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(Status, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    FEXIOT_RETURN_NOT_OK(Status::NotFound("missing"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{7});
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(4);
  for (double alpha : {0.1, 1.0, 10.0}) {
    const std::vector<double> p = rng.Dirichlet(alpha, 5);
    double sum = 0.0;
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletConcentration) {
  // Small alpha -> spiky distributions (high max); large alpha -> flat.
  Rng rng(5);
  double max_small = 0.0, max_large = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    auto p1 = rng.Dirichlet(0.1, 10);
    auto p2 = rng.Dirichlet(10.0, 10);
    max_small += *std::max_element(p1.begin(), p1.end());
    max_large += *std::max_element(p2.begin(), p2.end());
  }
  EXPECT_GT(max_small / trials, max_large / trials + 0.2);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(6);
  int count2 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Categorical({1.0, 1.0, 8.0}) == 2) ++count2;
  }
  EXPECT_NEAR(static_cast<double>(count2) / n, 0.8, 0.03);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(7);
  const auto idx = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(idx.size(), 10u);
  std::set<size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 10u);
  for (size_t v : idx) EXPECT_LT(v, 20u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 7u);
}

TEST(StringUtil, SplitAndJoin) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
}

TEST(StringUtil, SplitWhitespace) {
  const auto parts = SplitWhitespace("  hello   world\t!\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[2], "!");
}

TEST(StringUtil, CaseAndTrim) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_TRUE(Contains("foobar", "oba"));
  EXPECT_FALSE(Contains("foobar", "baz"));
}

TEST(StringUtil, HashStable) {
  EXPECT_EQ(HashString("light"), HashString("light"));
  EXPECT_NE(HashString("light"), HashString("lamp"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(ThreadPool, ParallelForCoversAll) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

// Stress: many producer threads hammer Submit and Wait concurrently; the
// pool must neither drop nor double-run tasks (run under TSAN in CI).
TEST(ThreadPool, ConcurrentSubmitAndWaitFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kProducers = 6;
  constexpr int kTasksEach = 200;
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
        if (i % 64 == 0) pool.Wait();
      }
      pool.Wait();
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kProducers * kTasksEach);
}

// A throwing Submit task is logged and dropped; it still counts as
// completed so Wait() does not wedge and later tasks run normally.
TEST(ThreadPool, ThrowingSubmitTaskDoesNotWedgeWait) {
  ThreadPool pool(2);
  std::atomic<int> after{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  pool.Wait();  // must return
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { after.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(after.load(), 10);
}

// ParallelFor propagates the first body exception to the caller and the
// pool stays usable afterwards.
TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 17) throw std::runtime_error("body boom");
                       }),
      std::runtime_error);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// The oversubscription guard: ParallelFor from a worker runs inline, so
// nesting completes instead of deadlocking on Wait-from-worker.
TEST(ThreadPool, NestedParallelForRunsInlineOnWorkers) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(16 * 8);
  pool.ParallelFor(16, [&](size_t outer) {
    EXPECT_TRUE(ThreadPool::OnWorkerThread());
    pool.ParallelFor(8, [&](size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ParallelFacade, ForMatchesSerialAndHonorsSetThreads) {
  parallel::SetThreads(3);
  std::vector<int> out(257, 0);
  parallel::For(out.size(), [&](size_t i) { out[i] = static_cast<int>(i); });
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i));
  }
  EXPECT_EQ(parallel::NumThreads(), 3u);
  parallel::SetThreads(0);
}

TEST(ParallelFacade, ForRethrowsAndStaysUsable) {
  parallel::SetThreads(2);
  EXPECT_THROW(parallel::For(50,
                             [&](size_t i) {
                               if (i == 3) {
                                 throw std::runtime_error("facade boom");
                               }
                             }),
               std::runtime_error);
  std::vector<int> hits(32, 0);
  parallel::For(hits.size(), [&](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
  parallel::SetThreads(0);
}

TEST(Rng, ForkIndependent) {
  Rng a(9);
  Rng b = a.Fork();
  // Forked stream differs from parent's continued stream.
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(Rng, ForkAtIsPureAndOrderIndependent) {
  // ForkAt is a pure function of (state, index): the same child comes back
  // no matter how many children were derived before it or in what order,
  // and the parent stream never advances.
  Rng a(10), b(10);
  Rng a_probe(10);
  const uint64_t parent_next = a_probe.NextU64();

  std::vector<uint64_t> forward, backward;
  for (uint64_t i = 0; i < 8; ++i) forward.push_back(a.ForkAt(i).NextU64());
  for (uint64_t i = 8; i-- > 0;) backward.push_back(b.ForkAt(i).NextU64());
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(forward[i], backward[7 - i]);

  // Parent unaffected: its next draw is what it would have been with no
  // forking at all.
  EXPECT_EQ(a.NextU64(), parent_next);
  EXPECT_EQ(b.NextU64(), parent_next);
}

TEST(Rng, ForkAtChildrenDistinct) {
  Rng parent(11);
  std::set<uint64_t> first_draws;
  for (uint64_t i = 0; i < 256; ++i) {
    first_draws.insert(parent.ForkAt(i).NextU64());
  }
  EXPECT_EQ(first_draws.size(), 256u);
}

TEST(Rng, ForkAtStreamsUncorrelated) {
  // Adjacent children, and child-vs-parent, show no linear correlation:
  // |Pearson r| over 4096 uniform draws stays in the small-sample noise
  // band (~1/sqrt(n) ≈ 0.016; allow 4 sigma).
  Rng parent(12);
  auto correlation = [](Rng x, Rng y) {
    const int n = 4096;
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (int i = 0; i < n; ++i) {
      const double u = x.Uniform();
      const double v = y.Uniform();
      sx += u; sy += v; sxx += u * u; syy += v * v; sxy += u * v;
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    return cov / std::sqrt(vx * vy);
  };
  EXPECT_LT(std::fabs(correlation(parent.ForkAt(0), parent.ForkAt(1))), 0.07);
  EXPECT_LT(std::fabs(correlation(parent.ForkAt(41), parent.ForkAt(42))),
            0.07);
  EXPECT_LT(std::fabs(correlation(parent, parent.ForkAt(7))), 0.07);
}

}  // namespace
}  // namespace fexiot
