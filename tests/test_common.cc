#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace fexiot {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(Status, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    FEXIOT_RETURN_NOT_OK(Status::NotFound("missing"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{7});
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(4);
  for (double alpha : {0.1, 1.0, 10.0}) {
    const std::vector<double> p = rng.Dirichlet(alpha, 5);
    double sum = 0.0;
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletConcentration) {
  // Small alpha -> spiky distributions (high max); large alpha -> flat.
  Rng rng(5);
  double max_small = 0.0, max_large = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    auto p1 = rng.Dirichlet(0.1, 10);
    auto p2 = rng.Dirichlet(10.0, 10);
    max_small += *std::max_element(p1.begin(), p1.end());
    max_large += *std::max_element(p2.begin(), p2.end());
  }
  EXPECT_GT(max_small / trials, max_large / trials + 0.2);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(6);
  int count2 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Categorical({1.0, 1.0, 8.0}) == 2) ++count2;
  }
  EXPECT_NEAR(static_cast<double>(count2) / n, 0.8, 0.03);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(7);
  const auto idx = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(idx.size(), 10u);
  std::set<size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 10u);
  for (size_t v : idx) EXPECT_LT(v, 20u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 7u);
}

TEST(StringUtil, SplitAndJoin) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
}

TEST(StringUtil, SplitWhitespace) {
  const auto parts = SplitWhitespace("  hello   world\t!\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[2], "!");
}

TEST(StringUtil, CaseAndTrim) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_TRUE(Contains("foobar", "oba"));
  EXPECT_FALSE(Contains("foobar", "baz"));
}

TEST(StringUtil, HashStable) {
  EXPECT_EQ(HashString("light"), HashString("light"));
  EXPECT_NE(HashString("light"), HashString("lamp"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(ThreadPool, ParallelForCoversAll) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(Rng, ForkIndependent) {
  Rng a(9);
  Rng b = a.Fork();
  // Forked stream differs from parent's continued stream.
  EXPECT_NE(a.NextU64(), b.NextU64());
}

}  // namespace
}  // namespace fexiot
