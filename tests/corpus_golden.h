// Golden-statistics harness for corpus generation regression tests.
//
// The stream-split parallel corpus generator deliberately changed corpus
// content relative to the serial seed; what must stay stable from now on
// are (a) bit-identity across thread counts / schedules for a pinned seed
// and (b) the distributional shape of the corpora. This header provides
// the three tools the harness needs:
//
//   * CorpusFingerprint / FederatedCorpusFingerprint — order-sensitive
//     64-bit FNV-1a digests over every byte of content (rule text,
//     feature-vector bit patterns, edges, labels, witnesses), used for
//     exact thread-count parity checks;
//   * ComputeGoldenStats — per-platform distributional invariants
//     (node/edge counts, label balance, vulnerability-type histogram,
//     Dirichlet partition skew) as a flat name -> value map;
//   * ReadGoldenBaseline / WriteGoldenJson — a checked-in JSON baseline
//     of {name: [value, tolerance]} entries. Regenerate with
//     FEXIOT_UPDATE_GOLDEN=1 (see test_corpus_determinism.cc).

#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/corpus.h"
#include "graph/dataset.h"
#include "graph/interaction_graph.h"

namespace fexiot {
namespace golden {

// --- Bit-exact fingerprints -------------------------------------------------
// The digests themselves live in the graph library (CorpusContentFingerprint
// in graph/corpus.h) so bench_corpus shares them; these aliases keep the
// test-side vocabulary.

inline uint64_t CorpusFingerprint(const std::vector<InteractionGraph>& graphs) {
  return CorpusContentFingerprint(graphs);
}

inline uint64_t FederatedCorpusFingerprint(const FederatedCorpus& corpus) {
  return FederatedCorpusContentFingerprint(corpus);
}

// --- Distributional statistics ----------------------------------------------

using StatsMap = std::map<std::string, double>;

/// Flat distributional summary of a labeled corpus. Keys are stable; the
/// checked-in baseline pins every key with a per-key tolerance.
inline StatsMap ComputeGoldenStats(const std::vector<InteractionGraph>& graphs) {
  StatsMap s;
  const double n = static_cast<double>(graphs.size());
  s["total_graphs"] = n;
  if (graphs.empty()) return s;
  double nodes_sum = 0.0, edges_sum = 0.0, vuln = 0.0;
  double nodes_min = 1e300, nodes_max = 0.0;
  std::map<int, double> vuln_hist;        // planted type -> count
  std::map<int, double> platform_nodes;   // platform -> node count
  double total_nodes = 0.0;
  for (const auto& g : graphs) {
    nodes_sum += g.num_nodes();
    edges_sum += g.num_edges();
    nodes_min = std::min(nodes_min, static_cast<double>(g.num_nodes()));
    nodes_max = std::max(nodes_max, static_cast<double>(g.num_nodes()));
    if (g.label() == 1) {
      vuln += 1.0;
      vuln_hist[static_cast<int>(g.vulnerability())] += 1.0;
    }
    for (int i = 0; i < g.num_nodes(); ++i) {
      platform_nodes[static_cast<int>(g.node(i).rule.platform)] += 1.0;
      total_nodes += 1.0;
    }
  }
  s["vulnerable_fraction"] = vuln / n;
  s["nodes_avg"] = nodes_sum / n;
  s["nodes_min"] = nodes_min;
  s["nodes_max"] = nodes_max;
  s["edges_avg"] = edges_sum / n;
  for (int t = 0; t <= static_cast<int>(kNumInternalVulnerabilities); ++t) {
    s["vuln_type_frac_" + std::to_string(t)] =
        vuln > 0.0 ? vuln_hist[t] / vuln : 0.0;
  }
  for (const auto& [p, c] : platform_nodes) {
    s["platform_node_frac_" + std::to_string(p)] = c / total_nodes;
  }
  return s;
}

/// Adds partition-skew statistics of a federated corpus under a "fed_"
/// prefix: client shard-size coefficient of variation (the Dirichlet
/// skew), mean absolute per-client label-balance deviation, and test-pool
/// class balance.
inline void AddFederatedStats(const FederatedCorpus& corpus, StatsMap* s) {
  const auto& shards = corpus.partition.indices;
  const double k = static_cast<double>(shards.size());
  (*s)["fed_num_clients"] = k;
  (*s)["fed_num_clusters"] = static_cast<double>(corpus.cluster_tests.size());
  if (shards.empty()) return;
  double size_sum = 0.0, size_sq = 0.0;
  const double global_vuln = corpus.data.VulnerableFraction();
  double label_dev = 0.0;
  for (const auto& shard : shards) {
    const double sz = static_cast<double>(shard.size());
    size_sum += sz;
    size_sq += sz * sz;
    double sv = 0.0;
    for (size_t i : shard) sv += corpus.data.graph(i).label();
    const double frac = shard.empty() ? 0.0 : sv / sz;
    label_dev += std::fabs(frac - global_vuln);
  }
  const double mean = size_sum / k;
  const double var = size_sq / k - mean * mean;
  (*s)["fed_partition_size_cv"] =
      mean > 0.0 ? std::sqrt(std::max(0.0, var)) / mean : 0.0;
  (*s)["fed_partition_label_dev"] = label_dev / k;
  double test_vuln = 0.0, test_n = 0.0;
  for (const auto& pool : corpus.cluster_tests) {
    for (const auto& g : pool.graphs()) {
      test_vuln += g.label();
      test_n += 1.0;
    }
  }
  (*s)["fed_test_pool_size"] = test_n;
  (*s)["fed_test_vulnerable_fraction"] =
      test_n > 0.0 ? test_vuln / test_n : 0.0;
}

// --- JSON baseline I/O ------------------------------------------------------

struct GoldenEntry {
  double value = 0.0;
  double tolerance = 0.0;
};

using GoldenBaseline = std::map<std::string, GoldenEntry>;

/// Parses the flat golden baseline: every line of the form
///   "name": [value, tolerance]
/// is one entry; everything else is ignored. Returns false if the file
/// cannot be read or contains no entries.
inline bool ReadGoldenBaseline(const std::string& path, GoldenBaseline* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const size_t q1 = line.find('"');
    if (q1 == std::string::npos) continue;
    const size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    const size_t br = line.find('[', q2);
    if (br == std::string::npos) continue;
    const std::string name = line.substr(q1 + 1, q2 - q1 - 1);
    GoldenEntry e;
    char comma = 0;
    std::istringstream vals(line.substr(br + 1));
    if (!(vals >> e.value >> comma >> e.tolerance) || comma != ',') continue;
    (*out)[name] = e;
  }
  return !out->empty();
}

/// Writes stats as a golden baseline, attaching the tolerance that
/// \p tolerance_for returns per key.
template <typename TolFn>
bool WriteGoldenJson(const std::string& path, const StatsMap& stats,
                     const TolFn& tolerance_for) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"baseline\": \"corpus-golden-stats\",\n";
  out << "  \"regenerate\": \"FEXIOT_UPDATE_GOLDEN=1 ./test_corpus_determinism\",\n";
  out << "  \"stats\": {\n";
  size_t i = 0;
  for (const auto& [name, value] : stats) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "    \"%s\": [%.9g, %.9g]%s\n",
                  name.c_str(), value, tolerance_for(name),
                  ++i < stats.size() ? "," : "");
    out << buf;
  }
  out << "  }\n}\n";
  return true;
}

/// Writes observed values only (no tolerances) — the artifact CI diffs
/// between FEXIOT_THREADS=1 and FEXIOT_THREADS=N runs. Fingerprints ride
/// along so the diff also proves bit-identity, not just equal statistics.
inline bool WriteObservedJson(const std::string& path, const StatsMap& stats,
                              uint64_t dataset_fingerprint,
                              uint64_t federated_fingerprint) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"observed\": \"corpus-golden-stats\",\n";
  char fp[96];
  std::snprintf(fp, sizeof(fp),
                "  \"dataset_fingerprint\": \"%016llx\",\n"
                "  \"federated_fingerprint\": \"%016llx\",\n",
                static_cast<unsigned long long>(dataset_fingerprint),
                static_cast<unsigned long long>(federated_fingerprint));
  out << fp << "  \"stats\": {\n";
  size_t i = 0;
  for (const auto& [name, value] : stats) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "    \"%s\": [%.9g, 0]%s\n", name.c_str(),
                  value, ++i < stats.size() ? "," : "");
    out << buf;
  }
  out << "  }\n}\n";
  return true;
}

}  // namespace golden
}  // namespace fexiot
