#include <gtest/gtest.h>

#include <cmath>

#include "nlp/dtw.h"
#include "nlp/embeddings.h"
#include "nlp/jenks.h"
#include "nlp/lexicon.h"
#include "nlp/pos_tagger.h"
#include "nlp/rule_features.h"
#include "nlp/tokenizer.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

TEST(Tokenizer, LowercasesAndStripsPunctuation) {
  const auto tokens = Tokenizer::Tokenize("Turn ON the Water-Valve, now!");
  const std::vector<std::string> expected = {"turn", "on",    "the",
                                             "water", "valve", "now"};
  EXPECT_EQ(tokens, expected);
}

TEST(Tokenizer, ContentDropsStopwords) {
  const auto tokens = Tokenizer::TokenizeContent("if the smoke is detected");
  const std::vector<std::string> expected = {"smoke", "detected"};
  EXPECT_EQ(tokens, expected);
}

TEST(Tokenizer, EmptyInput) {
  EXPECT_TRUE(Tokenizer::Tokenize("").empty());
  EXPECT_TRUE(Tokenizer::Tokenize("  ,,, !!").empty());
}

TEST(Lexicon, Synonyms) {
  const Lexicon& lex = Lexicon::Get();
  EXPECT_TRUE(lex.AreSynonyms("light", "lamp"));
  EXPECT_TRUE(lex.AreSynonyms("bulb", "light"));
  EXPECT_FALSE(lex.AreSynonyms("light", "fan"));
  EXPECT_FALSE(lex.AreSynonyms("light", "unknownword"));
}

TEST(Lexicon, Hypernyms) {
  const Lexicon& lex = Lexicon::Get();
  EXPECT_TRUE(lex.IsHypernym("light", "device"));
  EXPECT_TRUE(lex.IsHypernym("smoke", "sensor"));
  // Transitive: smoke -> sensor -> device.
  EXPECT_TRUE(lex.IsHypernym("smoke", "device"));
  EXPECT_FALSE(lex.IsHypernym("device", "light"));
}

TEST(Lexicon, MeronymsAndHolonyms) {
  const Lexicon& lex = Lexicon::Get();
  EXPECT_TRUE(lex.IsMeronym("lock", "door"));
  EXPECT_EQ(lex.Relation("lock", "door"), LexicalRelation::kMeronym);
  EXPECT_EQ(lex.Relation("door", "lock"), LexicalRelation::kHolonym);
}

TEST(Lexicon, CausalAssociations) {
  const Lexicon& lex = Lexicon::Get();
  EXPECT_TRUE(lex.AreCausallyAssociated("heater", "temperature"));
  EXPECT_TRUE(lex.AreCausallyAssociated("temperature", "heater"));
  // Through synonym canonicalization.
  EXPECT_TRUE(lex.AreCausallyAssociated("radiator", "temp"));
  EXPECT_FALSE(lex.AreCausallyAssociated("light", "temperature"));
}

TEST(Lexicon, ClusterIdsStable) {
  const Lexicon& lex = Lexicon::Get();
  EXPECT_EQ(lex.ClusterId("light"), lex.ClusterId("lamp"));
  EXPECT_NE(lex.ClusterId("light"), lex.ClusterId("fan"));
  EXPECT_EQ(lex.ClusterId("neverseenword"), 0);
}

TEST(PosTagger, TagsKnownClasses) {
  const auto tagged = PosTagger::Tag("close the valve");
  ASSERT_EQ(tagged.size(), 3u);
  EXPECT_EQ(tagged[0].tag, PosTag::kVerb);
  EXPECT_EQ(tagged[1].tag, PosTag::kDeterminer);
  EXPECT_EQ(tagged[2].tag, PosTag::kNoun);
}

TEST(PosTagger, ParseExtractsClausesAndObjects) {
  const RuleParse parse =
      PosTagger::Parse("Close the water valve if a water leak is detected");
  EXPECT_FALSE(parse.trigger_clause.empty());
  EXPECT_FALSE(parse.action_clause.empty());
  // "close" is the root action verb.
  ASSERT_FALSE(parse.verbs.empty());
  EXPECT_EQ(parse.verbs[0], "close");
  // "valve" appears among device objects.
  bool has_valve = false;
  for (const auto& o : parse.objects) has_valve |= (o == "valve");
  EXPECT_TRUE(has_valve);
}

TEST(WordEmbedding, UnitNormAndDeterministic) {
  const auto a = WordEmbedding::Embed("light");
  const auto b = WordEmbedding::Embed("light");
  EXPECT_EQ(a, b);
  EXPECT_NEAR(VectorNorm(a), 1.0, 1e-9);
  EXPECT_EQ(a.size(), static_cast<size_t>(WordEmbedding::kDim));
}

TEST(WordEmbedding, SynonymsCloserThanUnrelated) {
  const auto light = WordEmbedding::Embed("light");
  const auto lamp = WordEmbedding::Embed("lamp");
  const auto valve = WordEmbedding::Embed("valve");
  EXPECT_GT(CosineSimilarity(light, lamp), 0.6);
  EXPECT_LT(CosineSimilarity(light, valve),
            CosineSimilarity(light, lamp));
}

TEST(SentenceEncoder, ParaphrasesCloserThanUnrelated) {
  const auto a = SentenceEncoder::Encode("turn on the light");
  const auto b = SentenceEncoder::Encode("switch on the lamp");
  const auto c = SentenceEncoder::Encode("lock the front door");
  EXPECT_GT(CosineSimilarity(a, b), CosineSimilarity(a, c));
  EXPECT_EQ(a.size(), static_cast<size_t>(SentenceEncoder::kDim));
  EXPECT_NEAR(VectorNorm(a), 1.0, 1e-9);
}

TEST(TriggerActionPairEmbedding, SumsTriggerAndAction) {
  const auto pair = TriggerActionPairEmbedding("smoke is detected",
                                               "open the valve");
  EXPECT_EQ(pair.size(), static_cast<size_t>(WordEmbedding::kDim));
  EXPECT_GT(VectorNorm(pair), 0.1);
  // Changing the action state must move the embedding.
  const auto pair2 = TriggerActionPairEmbedding("smoke is detected",
                                                "close the valve");
  EXPECT_GT(EuclideanDistance(pair, pair2), 1e-3);
}

TEST(Dtw, IdenticalSequencesZero) {
  const auto e1 = WordEmbedding::Embed("light");
  const auto e2 = WordEmbedding::Embed("valve");
  EXPECT_NEAR(DtwDistance({e1, e2}, {e1, e2}), 0.0, 1e-9);
}

TEST(Dtw, HandlesDifferentLengths) {
  const auto e1 = WordEmbedding::Embed("light");
  const auto e2 = WordEmbedding::Embed("valve");
  const double d = DtwDistance({e1, e1, e2}, {e1, e2});
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 1.0);
}

TEST(Dtw, EmptySequenceIsMaximal) {
  const auto e1 = WordEmbedding::Embed("light");
  EXPECT_DOUBLE_EQ(DtwDistance({}, {e1}), 2.0);
  EXPECT_DOUBLE_EQ(DtwDistance({}, {}), 0.0);
}

TEST(Dtw, ScalarMonotoneAlignment) {
  EXPECT_NEAR(DtwDistanceScalar({1, 2, 3}, {1, 2, 3}), 0.0, 1e-12);
  EXPECT_GT(DtwDistanceScalar({1, 2, 3}, {5, 6, 7}), 1.0);
}

TEST(Jenks, TwoClassBreaksSeparateModes) {
  // Two clear modes around 20 and 80.
  std::vector<double> values = {18, 19, 20, 21, 22, 78, 79, 80, 81, 82};
  const auto bounds = JenksBreaks::Compute(values, 2);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_GE(bounds[1], 22.0);
  EXPECT_LT(bounds[1], 78.0);
  EXPECT_EQ(JenksBreaks::Classify(19.0, bounds), 0);
  EXPECT_EQ(JenksBreaks::Classify(81.0, bounds), 1);
  EXPECT_EQ(JenksBreaks::ClassLabel(0, 2), "low");
  EXPECT_EQ(JenksBreaks::ClassLabel(1, 2), "high");
}

TEST(Jenks, ThreeClasses) {
  std::vector<double> values = {1, 2, 3, 50, 51, 52, 99, 100, 101};
  const auto bounds = JenksBreaks::Compute(values, 3);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(JenksBreaks::Classify(2.0, bounds), 0);
  EXPECT_EQ(JenksBreaks::Classify(51.0, bounds), 1);
  EXPECT_EQ(JenksBreaks::Classify(100.0, bounds), 2);
}

TEST(RuleFeatures, DimensionalityMatchesNames) {
  const auto f = RuleFeatureExtractor::ExtractPairFeatures(
      "If motion is detected, then turn on the light",
      "If the light turns on, then lock the door");
  EXPECT_EQ(f.size(),
            static_cast<size_t>(RuleFeatureExtractor::kPairFeatureDim));
  EXPECT_EQ(RuleFeatureExtractor::FeatureNames().size(), f.size());
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(RuleFeatures, CorrelatedPairScoresHigherOverlap) {
  // A's action (light on) matches B's trigger (light turns on).
  const auto correlated = RuleFeatureExtractor::ExtractPairFeatures(
      "If motion is detected, then turn on the light",
      "If the light turns on, then lock the door");
  const auto unrelated = RuleFeatureExtractor::ExtractPairFeatures(
      "If motion is detected, then turn on the light",
      "If a water leak is detected, then close the valve");
  // overlap_act_trig is feature index 4.
  EXPECT_GT(correlated[4], unrelated[4]);
}

}  // namespace
}  // namespace fexiot
