#include <gtest/gtest.h>

#include "baselines/deeplog.h"
#include "baselines/hawatcher.h"
#include "baselines/lstm.h"
#include "core/testbed.h"
#include "ml/metrics.h"

namespace fexiot {
namespace {

TEST(Lstm, LearnsDeterministicCycle) {
  // Sequence 0 1 2 3 0 1 2 3 ... must become predictable.
  LstmLanguageModel::Options opt;
  opt.vocab_size = 8;
  opt.embedding_dim = 8;
  opt.hidden_dim = 16;
  opt.epochs = 50;
  opt.learning_rate = 0.2;
  LstmLanguageModel lstm(opt);
  std::vector<int> cycle;
  for (int i = 0; i < 120; ++i) cycle.push_back(i % 4);
  const double ce = lstm.Fit({cycle});
  EXPECT_LT(ce, 0.4);  // near-deterministic next-key prediction
  EXPECT_TRUE(lstm.InTopK({0, 1, 2}, 3, 1));
  EXPECT_LT(lstm.AnomalyRate(cycle, 2), 0.1);
  // A shuffled sequence looks anomalous.
  std::vector<int> broken = {0, 2, 1, 3, 2, 0, 3, 1, 0, 3, 2, 1};
  EXPECT_GT(lstm.AnomalyRate(broken, 1), 0.3);
}

TEST(Lstm, NextKeyDistributionIsNormalized) {
  LstmLanguageModel::Options opt;
  opt.vocab_size = 6;
  LstmLanguageModel lstm(opt);
  const auto dist = lstm.NextKeyDistribution({0, 1, 2});
  ASSERT_EQ(dist.size(), 6u);
  double sum = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

struct TestbedFixture {
  std::vector<TestbedSample> train, test;

  static const TestbedFixture& Get() {
    static const TestbedFixture f;
    return f;
  }

  TestbedFixture() {
    Rng rng(66);
    TestbedOptions opt;
    opt.num_samples = 60;
    opt.attacked_fraction = 0.5;
    opt.window_hours = 2.0;
    auto samples = GenerateTestbed(opt, &rng);
    const size_t n_train = samples.size() / 2;
    train.assign(samples.begin(), samples.begin() + static_cast<long>(n_train));
    test.assign(samples.begin() + static_cast<long>(n_train), samples.end());
  }
};

TEST(Testbed, SamplesAreWellFormed) {
  const auto& f = TestbedFixture::Get();
  int attacked = 0;
  for (const auto& s : f.train) {
    attacked += s.attacked ? 1 : 0;
    if (s.attacked) EXPECT_EQ(s.label, 1);
    EXPECT_GT(s.log.size(), 0u);
  }
  EXPECT_GT(attacked, 0);
}

TEST(HaWatcher, BetterThanChanceOnTestbed) {
  const auto& f = TestbedFixture::Get();
  HaWatcherDetector detector;
  detector.Fit(f.train);
  std::vector<int> labels, preds;
  for (const auto& s : f.test) {
    labels.push_back(s.label);
    preds.push_back(detector.Predict(s));
  }
  const ClassificationMetrics m = ComputeMetrics(labels, preds);
  EXPECT_GT(m.accuracy, 0.5);
}

TEST(DeepLog, TrainsAndPredicts) {
  const auto& f = TestbedFixture::Get();
  DeepLogDetector::Options opt;
  opt.lstm.epochs = 2;  // keep the unit test fast
  DeepLogDetector detector(opt);
  detector.Fit(f.train);
  int positives = 0;
  for (const auto& s : f.test) positives += detector.Predict(s);
  // Must not be a constant classifier.
  EXPECT_GT(positives, 0);
  EXPECT_LT(positives, static_cast<int>(f.test.size()));
}

TEST(IsolationForestDetector, FeaturizeIsStable) {
  const auto& f = TestbedFixture::Get();
  const auto v1 = IsolationForestDetector::Featurize(f.train[0].log);
  const auto v2 = IsolationForestDetector::Featurize(f.train[0].log);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(v1.size(), static_cast<size_t>(2 * kNumDeviceTypes + 3));
}

TEST(IsolationForestDetector, RunsOnTestbed) {
  const auto& f = TestbedFixture::Get();
  IsolationForestDetector detector;
  detector.Fit(f.train);
  int positives = 0;
  for (const auto& s : f.test) positives += detector.Predict(s);
  EXPECT_GE(positives, 0);
  EXPECT_LE(positives, static_cast<int>(f.test.size()));
}

TEST(DeepLogEncoding, KeysWithinVocab) {
  const auto& f = TestbedFixture::Get();
  const auto keys = DeepLogDetector::EncodeLog(f.train[0].log, 64);
  EXPECT_EQ(keys.size(), f.train[0].log.size());
  for (int k : keys) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 64);
  }
}

}  // namespace
}  // namespace fexiot
