#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"
#include "federated/client_state.h"
#include "federated/scale_sim.h"
#include "graph/corpus.h"
#include "runtime/topology.h"

namespace fexiot {
namespace {

// ---------------------------------------------------------------------------
// Streaming accumulator vs the eager AverageLayer reduction
// ---------------------------------------------------------------------------

// Inline replica of FederatedSimulator::AverageLayer's arithmetic:
// weight_sum accumulated over clients in ascending order, then one
// avg[i] += (w_c / weight_sum) * x_c[i] multiply-add per client in the
// same order. The streaming accumulator must replay these exact
// operations, so the comparison below is for bit equality, not tolerance.
std::vector<double> ReferenceAverage(
    const std::vector<std::vector<double>>& updates,
    const std::vector<double>& weights) {
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  if (updates.empty() || weight_sum <= 0.0) return {};
  std::vector<double> avg(updates.front().size(), 0.0);
  for (size_t c = 0; c < updates.size(); ++c) {
    const double wc = weights[c] / weight_sum;
    for (size_t i = 0; i < avg.size(); ++i) avg[i] += wc * updates[c][i];
  }
  return avg;
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(StreamingAccumulator, OrderFixedReductionMatchesEagerBitExactly) {
  for (uint64_t seed : {7ull, 1234ull, 0xFEED5EEDull}) {
    Rng rng(seed);
    const size_t n = 17, dim = 33;
    std::vector<std::vector<double>> updates(n);
    std::vector<double> weights(n);
    for (size_t c = 0; c < n; ++c) {
      weights[c] = rng.Uniform(0.1, 3.0);
      updates[c].resize(dim);
      for (double& v : updates[c]) v = rng.Normal(0.0, 2.0);
    }
    const std::vector<double> eager = ReferenceAverage(updates, weights);

    double weight_sum = 0.0;
    for (double w : weights) weight_sum += w;
    StreamingAccumulator acc;
    for (size_t c = 0; c < n; ++c) {
      acc.Add(weights[c] / weight_sum, updates[c]);
    }
    EXPECT_EQ(acc.count(), n);
    // Pre-normalized weights: the weighted sum IS the weighted mean.
    EXPECT_TRUE(BitEqual(acc.weighted_sum(), eager)) << "seed " << seed;
  }
}

TEST(StreamingAccumulator, EmptySingleClientAndZeroWeightEdgeCases) {
  // Empty: nothing accumulated, Mean is empty (AverageLayer's early
  // return on an empty group).
  StreamingAccumulator empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.Mean().empty());

  // Single client: the mean is the AverageLayer replay of that one
  // client, i.e. (w/w) * x computed in floating point — compare against
  // the reference replica, not the raw input (x * 1.0 is exact, but the
  // replica form keeps the contract honest for -0.0 inputs).
  const std::vector<double> x = {1.5, -2.25, 0.0, -0.0, 1e-300};
  StreamingAccumulator single;
  single.Add(2.0 / 2.0, x);
  EXPECT_TRUE(BitEqual(single.weighted_sum(), ReferenceAverage({x}, {2.0})));
  EXPECT_TRUE(BitEqual(single.Mean(), single.weighted_sum()));

  // All-zero weights: weight_sum <= 0 means no finalizable mean
  // (AverageLayer's weight_sum guard).
  StreamingAccumulator zero;
  zero.Add(0.0, x);
  zero.Add(0.0, x);
  EXPECT_EQ(zero.count(), 2u);
  EXPECT_DOUBLE_EQ(zero.weight_sum(), 0.0);
  EXPECT_TRUE(zero.Mean().empty());

  // Merging an empty accumulator is a no-op; merging into an empty one
  // adopts the other side verbatim.
  StreamingAccumulator a, b;
  a.Add(0.5, x);
  const std::vector<double> before = a.weighted_sum();
  a.Merge(b);
  EXPECT_TRUE(BitEqual(a.weighted_sum(), before));
  b.Merge(a);
  EXPECT_TRUE(BitEqual(b.weighted_sum(), before));
  EXPECT_EQ(b.count(), 1u);
}

// ---------------------------------------------------------------------------
// Lazy shard materialization
// ---------------------------------------------------------------------------

CorpusOptions ShardOptions() {
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 7;
  opt.vulnerable_fraction = 0.4;
  return opt;
}

TEST(LazyShards, RematerializationIsBitIdenticalAcrossSeedsAndSchedules) {
  const CorpusOptions opt = ShardOptions();
  for (uint64_t seed : {0xC0FFEEull, 42ull, 7777ull}) {
    // Serial baseline: fingerprint of every client's shard.
    std::vector<uint64_t> serial(24);
    for (uint64_t c = 0; c < serial.size(); ++c) {
      serial[c] = ClientShardFingerprint(opt, seed, c, 5, 3, 0.5);
    }
    // Materialize -> release -> rematerialize (reverse order) is
    // identical: the shard is a pure function of (options, seed, client).
    for (uint64_t c = serial.size(); c-- > 0;) {
      EXPECT_EQ(ClientShardFingerprint(opt, seed, c, 5, 3, 0.5), serial[c])
          << "seed " << seed << " client " << c;
    }
    // Concurrent materialization on 4 workers matches the serial pass.
    std::vector<uint64_t> parallel_fp(serial.size());
    ThreadPool pool(4);
    pool.ParallelFor(serial.size(), [&](size_t c) {
      parallel_fp[c] = ClientShardFingerprint(opt, seed, c, 5, 3, 0.5);
    });
    EXPECT_EQ(parallel_fp, serial) << "seed " << seed;
    // Distinct clients own distinct streams.
    EXPECT_NE(serial[0], serial[1]);
  }
  // The seed matters.
  EXPECT_NE(ClientShardFingerprint(opt, 1, 0, 5, 3, 0.5),
            ClientShardFingerprint(opt, 2, 0, 5, 3, 0.5));
}

TEST(LazyShards, ShardShapeFollowsTheSpec) {
  const CorpusOptions opt = ShardOptions();
  const std::vector<InteractionGraph> shard =
      MaterializeClientShard(opt, 99, 3, 10, 2, 0.5);
  ASSERT_EQ(shard.size(), 10u);
  int vulnerable = 0;
  for (const InteractionGraph& g : shard) vulnerable += g.label();
  // round(10 * 0.4) vulnerable graphs, shuffled through the shard.
  EXPECT_EQ(vulnerable, 4);
}

TEST(ClientStateStore, LazyAndEagerReturnIdenticalStateAndTrackLiveness) {
  LazyClientSpec spec;
  spec.corpus = ShardOptions();
  spec.graphs_per_client = 5;
  spec.num_clusters = 2;
  spec.profile_strength = 0.5;
  spec.model.hidden_dim = 8;
  spec.model.embedding_dim = 8;

  ClientStateStore lazy(spec, 12, /*eager=*/false);
  ClientStateStore eager(spec, 12, /*eager=*/true);
  for (uint64_t c : {0ull, 5ull, 11ull}) {
    EXPECT_EQ(lazy.ShardFingerprint(c), eager.ShardFingerprint(c));
    auto from_lazy = lazy.Acquire(c, nullptr);
    auto from_eager = eager.Acquire(c, nullptr);
    EXPECT_EQ(from_lazy->shard_fingerprint, from_eager->shard_fingerprint);
    EXPECT_EQ(from_lazy->train_graphs.size(), from_eager->train_graphs.size());
    EXPECT_EQ(from_lazy->test_graphs.size(), from_eager->test_graphs.size());
    EXPECT_FALSE(from_lazy->test_graphs.empty());
    // Both replicas start from the shared seeded initialization.
    EXPECT_TRUE(BitEqual(from_lazy->model.GetLayerFlat(0),
                         from_eager->model.GetLayerFlat(0)));
    lazy.Release(std::move(from_lazy));
    eager.Release(std::move(from_eager));
  }
  EXPECT_EQ(lazy.materializations(), 3u);
  EXPECT_EQ(lazy.live(), 0u);
  EXPECT_EQ(lazy.peak_live(), 1u);

  // Installing a global re-seeds the replica deterministically.
  GnnModel probe(spec.model);
  std::vector<std::vector<double>> global;
  for (int l = 0; l < probe.num_layers(); ++l) {
    global.push_back(std::vector<double>(probe.LayerSize(l), 0.25));
  }
  auto mc = lazy.Acquire(7, &global);
  EXPECT_TRUE(BitEqual(mc->model.GetLayerFlat(1), global[1]));
  lazy.Release(std::move(mc));
}

// ---------------------------------------------------------------------------
// Scale simulator
// ---------------------------------------------------------------------------

ScaleFlConfig SmallScaleConfig() {
  ScaleFlConfig cfg;
  cfg.num_clients = 40;
  cfg.sample_per_round = 12;
  cfg.num_rounds = 3;
  cfg.client.corpus = ShardOptions();
  cfg.client.graphs_per_client = 4;
  cfg.client.num_clusters = 2;
  cfg.client.profile_strength = 0.5;
  cfg.client.model.hidden_dim = 8;
  cfg.client.model.embedding_dim = 8;
  cfg.train.epochs = 1;
  cfg.train.learning_rate = 0.02;
  cfg.eval_clients = 5;
  cfg.threads = 2;
  return cfg;
}

std::string RoundsDigest(const ScaleFlResult& res) {
  std::string out;
  char buf[128];
  for (const ScaleRoundStats& r : res.rounds) {
    std::snprintf(buf, sizeof(buf),
                  "r%d p=%d d=%d lost=%d late=%d crash=%d sub=%d loss=%a "
                  "t=%a e=%llu\n",
                  r.round, r.participants, r.delivered, r.lost_updates,
                  r.late_updates, r.aggregator_crashes,
                  r.subtree_lost_updates, r.mean_local_loss, r.sim_time_s,
                  static_cast<unsigned long long>(r.events));
    out += buf;
    for (double hb : r.hop_bytes) {
      std::snprintf(buf, sizeof(buf), " hop=%a", hb);
      out += buf;
    }
    out += '\n';
  }
  for (const auto& [client, m] : res.sampled_metrics) {
    std::snprintf(buf, sizeof(buf), "c%llu acc=%a f1=%a\n",
                  static_cast<unsigned long long>(client), m.accuracy, m.f1);
    out += buf;
  }
  return out;
}

TEST(ScaleSimulator, RejectsOutOfRangeConfig) {
  auto bad = [](auto mutate) {
    ScaleFlConfig c = SmallScaleConfig();
    mutate(&c);
    return !ScaleSimulator(c).Run().ok();
  };
  EXPECT_TRUE(bad([](ScaleFlConfig* c) { c->num_clients = 0; }));
  EXPECT_TRUE(bad([](ScaleFlConfig* c) { c->sample_per_round = 0; }));
  EXPECT_TRUE(bad([](ScaleFlConfig* c) { c->num_rounds = 0; }));
  EXPECT_TRUE(bad([](ScaleFlConfig* c) { c->client.graphs_per_client = 1; }));
  EXPECT_TRUE(bad([](ScaleFlConfig* c) { c->client.local_train_fraction = 1.0; }));
  EXPECT_TRUE(bad([](ScaleFlConfig* c) { c->deadline_s = -1.0; }));
  EXPECT_TRUE(bad([](ScaleFlConfig* c) { c->up_link.loss_prob = 1.0; }));
  EXPECT_TRUE(bad([](ScaleFlConfig* c) { c->topology.edge_fanout = -1; }));
  EXPECT_TRUE(bad([](ScaleFlConfig* c) { c->topology.regional_fanout = 3; }));
}

TEST(ScaleSimulator, LazyMatchesEagerBitExactly) {
  ScaleFlConfig lazy_cfg = SmallScaleConfig();
  ScaleFlConfig eager_cfg = lazy_cfg;
  eager_cfg.eager_state = true;
  const ScaleFlResult lazy = ScaleSimulator(lazy_cfg).Run().value();
  const ScaleFlResult eager = ScaleSimulator(eager_cfg).Run().value();
  EXPECT_EQ(lazy.global_fingerprint, eager.global_fingerprint);
  EXPECT_EQ(RoundsDigest(lazy), RoundsDigest(eager));
  EXPECT_EQ(lazy.total_events, eager.total_events);
  EXPECT_EQ(lazy.total_comm_bytes, eager.total_comm_bytes);
}

TEST(ScaleSimulator, ThreadCountAndRerunKeepResultsBitIdentical) {
  ScaleFlConfig c1 = SmallScaleConfig();
  c1.threads = 1;
  ScaleFlConfig c4 = SmallScaleConfig();
  c4.threads = 4;
  const ScaleFlResult r1 = ScaleSimulator(c1).Run().value();
  const ScaleFlResult r4 = ScaleSimulator(c4).Run().value();
  const ScaleFlResult again = ScaleSimulator(c4).Run().value();
  EXPECT_EQ(r1.global_fingerprint, r4.global_fingerprint);
  EXPECT_EQ(RoundsDigest(r1), RoundsDigest(r4));
  EXPECT_EQ(r4.global_fingerprint, again.global_fingerprint);
  EXPECT_EQ(RoundsDigest(r4), RoundsDigest(again));
  // A different seed moves the result.
  ScaleFlConfig other = SmallScaleConfig();
  other.seed = 1234;
  EXPECT_NE(ScaleSimulator(other).Run().value().global_fingerprint,
            r1.global_fingerprint);
}

TEST(ScaleSimulator, WireCodecShrinksHopBytesAndStaysThreadDeterministic) {
  ScaleFlConfig fp64_cfg = SmallScaleConfig();
  ScaleFlConfig int8_cfg = SmallScaleConfig();
  int8_cfg.wire_codec = WireCodec::kInt8;
  const ScaleFlResult fp64 = ScaleSimulator(fp64_cfg).Run().value();
  const ScaleFlResult int8 = ScaleSimulator(int8_cfg).Run().value();
  // Every priced hop carries the quantized record, so each tier's bytes
  // shrink by at least the 4x acceptance floor (fp64 lanes -> u8 lanes).
  ASSERT_EQ(int8.rounds.size(), fp64.rounds.size());
  for (size_t r = 0; r < fp64.rounds.size(); ++r) {
    ASSERT_EQ(int8.rounds[r].hop_bytes.size(), fp64.rounds[r].hop_bytes.size());
    for (size_t h = 0; h < fp64.rounds[r].hop_bytes.size(); ++h) {
      EXPECT_GE(fp64.rounds[r].hop_bytes[h],
                4.0 * int8.rounds[r].hop_bytes[h]);
    }
  }
  EXPECT_GE(fp64.total_comm_bytes, 4.0 * int8.total_comm_bytes);
  // Quantization actually touches the model that crosses the wire.
  EXPECT_NE(int8.global_fingerprint, fp64.global_fingerprint);
  // And stays a pure function of the payload: thread counts cannot skew it.
  ScaleFlConfig one = int8_cfg, four = int8_cfg;
  one.threads = 1;
  four.threads = 4;
  const ScaleFlResult r1 = ScaleSimulator(one).Run().value();
  const ScaleFlResult r4 = ScaleSimulator(four).Run().value();
  EXPECT_EQ(r1.global_fingerprint, r4.global_fingerprint);
  EXPECT_EQ(RoundsDigest(r1), RoundsDigest(r4));
  EXPECT_EQ(r1.global_fingerprint, int8.global_fingerprint);
}

TEST(ScaleSimulator, SampledParticipationAndLazyAccountingHold) {
  ScaleFlConfig cfg = SmallScaleConfig();
  const ScaleFlResult res = ScaleSimulator(cfg).Run().value();
  ASSERT_EQ(res.rounds.size(), 3u);
  for (const ScaleRoundStats& r : res.rounds) {
    EXPECT_EQ(r.participants, 12);
    EXPECT_EQ(r.delivered, 12);  // reliable links, no tree
    ASSERT_EQ(r.hop_bytes.size(), 1u);
    EXPECT_GT(r.hop_bytes[0], 0.0);
    EXPECT_EQ(r.events, 36u);  // 3 events per participant, flat topology
  }
  // 3 rounds x 12 participants + 5 eval acquisitions; never more live
  // state than worker threads.
  EXPECT_EQ(res.materializations, 3u * 12u + 5u);
  EXPECT_LE(res.peak_live_clients, 2u);
  EXPECT_EQ(res.sampled_metrics.size(), 5u);
  for (size_t i = 1; i < res.sampled_metrics.size(); ++i) {
    EXPECT_LT(res.sampled_metrics[i - 1].first, res.sampled_metrics[i].first);
  }
  // Each eval client scores exactly its local test split (1 graph with a
  // 4-graph shard), so the confusion counts sum to the evaluated graphs.
  EXPECT_EQ(res.mean.true_positive + res.mean.true_negative +
                res.mean.false_positive + res.mean.false_negative,
            5);
  EXPECT_GE(res.mean.accuracy, 0.0);
  EXPECT_LE(res.mean.accuracy, 1.0);
  EXPECT_GT(res.total_comm_bytes, 0.0);
}

TEST(ScaleSimulator, TreeMatchesFlatWithinMergeTolerance) {
  ScaleFlConfig flat_cfg = SmallScaleConfig();
  ScaleFlConfig tree_cfg = flat_cfg;
  tree_cfg.topology.edge_fanout = 4;
  tree_cfg.topology.regional_fanout = 3;
  tree_cfg.topology.edge_up.latency_s = 0.5;
  const ScaleFlResult flat = ScaleSimulator(flat_cfg).Run().value();
  const ScaleFlResult tree = ScaleSimulator(tree_cfg).Run().value();
  // Same participants and deliveries; the tree only reassociates the
  // floating-point reduction, so the global matches to tight tolerance.
  ASSERT_EQ(flat.rounds.size(), tree.rounds.size());
  for (size_t r = 0; r < flat.rounds.size(); ++r) {
    EXPECT_EQ(flat.rounds[r].participants, tree.rounds[r].participants);
    EXPECT_EQ(flat.rounds[r].delivered, tree.rounds[r].delivered);
    ASSERT_EQ(tree.rounds[r].hop_bytes.size(), 3u);
    EXPECT_GT(tree.rounds[r].hop_bytes[1], 0.0);
    EXPECT_GT(tree.rounds[r].hop_bytes[2], 0.0);
    // Interior forwards add events on top of the flat 3-per-participant.
    EXPECT_GT(tree.rounds[r].events, flat.rounds[r].events);
  }
  ASSERT_EQ(flat.global_layers.size(), tree.global_layers.size());
  for (size_t l = 0; l < flat.global_layers.size(); ++l) {
    ASSERT_EQ(flat.global_layers[l].size(), tree.global_layers[l].size());
    for (size_t i = 0; i < flat.global_layers[l].size(); ++i) {
      EXPECT_NEAR(flat.global_layers[l][i], tree.global_layers[l][i], 1e-9);
    }
  }
  // Interior hops cost simulated time.
  EXPECT_GT(tree.total_sim_time_s, flat.total_sim_time_s);
}

// ---------------------------------------------------------------------------
// Slow scale smoke (CI stage, FEXIOT_SLOW_TESTS=1)
// ---------------------------------------------------------------------------

// 100k clients with sampled participation: completes in CI and stays
// within an RSS ceiling that eager per-client state could never meet
// (100k shards + replicas would need gigabytes).
TEST(ScaleSmoke, HundredThousandClientsSampledParticipation) {
  if (std::getenv("FEXIOT_SLOW_TESTS") == nullptr) {
    GTEST_SKIP() << "FEXIOT_SLOW_TESTS not set";
  }
  ScaleFlConfig cfg = SmallScaleConfig();
  cfg.num_clients = 100000;
  cfg.sample_per_round = 48;
  cfg.num_rounds = 2;
  cfg.eval_clients = 4;
  cfg.threads = 0;  // all cores
  cfg.topology.edge_fanout = 8;
  cfg.topology.regional_fanout = 4;
  const ScaleFlResult res = ScaleSimulator(cfg).Run().value();
  ASSERT_EQ(res.rounds.size(), 2u);
  for (const ScaleRoundStats& r : res.rounds) {
    EXPECT_EQ(r.participants, 48);
    EXPECT_GT(r.delivered, 0);
  }
  EXPECT_EQ(res.materializations, 2u * 48u + 4u);
  EXPECT_LT(res.peak_rss_mb, 1500.0) << "peak RSS must stay O(active "
                                        "clients), not O(total clients)";
}

}  // namespace
}  // namespace fexiot
