#include <gtest/gtest.h>

#include "smarthome/platform.h"
#include "smarthome/rule_parser.h"

namespace fexiot {
namespace {

TEST(RuleParser, ParsesIftttPhrasings) {
  const Result<Rule> r =
      RuleParser::Parse("If smoke is detected, then open the valve");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->trigger.device, DeviceType::kSmokeDetector);
  EXPECT_EQ(r->trigger.state, "detected");
  ASSERT_EQ(r->actions.size(), 1u);
  EXPECT_EQ(r->actions[0].device, DeviceType::kWaterValve);
  EXPECT_EQ(r->actions[0].state, "open");
}

TEST(RuleParser, ParsesSmartThingsActionFirst) {
  const Result<Rule> r = RuleParser::Parse(
      "Turn on the light and lock the lock if motion is detected");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->trigger.device, DeviceType::kMotionSensor);
  ASSERT_EQ(r->actions.size(), 2u);
  EXPECT_EQ(r->actions[0].device, DeviceType::kLight);
  EXPECT_EQ(r->actions[0].state, "on");
  EXPECT_EQ(r->actions[1].device, DeviceType::kDoorLock);
  EXPECT_EQ(r->actions[1].state, "locked");
}

TEST(RuleParser, ParsesVoiceCommands) {
  const Result<Rule> r = RuleParser::Parse("alexa, turn off the heater");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->trigger.device, DeviceType::kVoice);
  ASSERT_EQ(r->actions.size(), 1u);
  EXPECT_EQ(r->actions[0].device, DeviceType::kHeater);
  EXPECT_EQ(r->actions[0].state, "off");
}

TEST(RuleParser, ResolvesSynonyms) {
  const Result<Rule> r =
      RuleParser::Parse("when it is sunset then switch on the lamp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->trigger.device, DeviceType::kClock);
  EXPECT_EQ(r->trigger.state, "sunset");
  ASSERT_EQ(r->actions.size(), 1u);
  EXPECT_EQ(r->actions[0].device, DeviceType::kLight);
}

TEST(RuleParser, RejectsGibberish) {
  EXPECT_FALSE(RuleParser::Parse("the quick brown fox").ok());
  EXPECT_FALSE(RuleParser::Parse("").ok());
  EXPECT_FALSE(
      RuleParser::Parse("if unicorn is sparkling then do nothing").ok());
}

// The decisive round-trip property: parse(render(rule)) recovers the
// trigger and at least the first action for every platform's phrasing.
class RuleParserRoundTrip : public ::testing::TestWithParam<Platform> {};

TEST_P(RuleParserRoundTrip, ParseRecoversRenderedRules) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  RuleGenerator gen(GetParam(), &rng);
  int parsed = 0, trigger_match = 0, action_match = 0, total = 0;
  for (int i = 0; i < 60; ++i) {
    const Rule original = gen.Generate();
    ++total;
    const Result<Rule> round = RuleParser::Parse(original.description);
    if (!round.ok()) continue;
    ++parsed;
    if (round->trigger.device == original.trigger.device &&
        round->trigger.state == original.trigger.state) {
      ++trigger_match;
    }
    for (const auto& a : round->actions) {
      if (a == original.actions.front()) {
        ++action_match;
        break;
      }
    }
  }
  // The parser must recover the overwhelming majority of rendered rules
  // (mirrors the ~98% extraction accuracy of Figure 3).
  EXPECT_GT(parsed, total * 9 / 10) << PlatformName(GetParam());
  EXPECT_GT(trigger_match, parsed * 8 / 10) << PlatformName(GetParam());
  EXPECT_GT(action_match, parsed * 8 / 10) << PlatformName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, RuleParserRoundTrip,
                         ::testing::Values(Platform::kSmartThings,
                                           Platform::kHomeAssistant,
                                           Platform::kIfttt,
                                           Platform::kGoogleAssistant,
                                           Platform::kAlexa));

}  // namespace
}  // namespace fexiot
