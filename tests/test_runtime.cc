#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"
#include "runtime/event_queue.h"
#include "runtime/message.h"
#include "runtime/runtime.h"

namespace fexiot {
namespace {

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

TEST(EventQueue, MixKeyIsSensitiveToEveryField) {
  EXPECT_NE(MixKey(1, 2, 3, 4), MixKey(1, 2, 3, 5));
  EXPECT_NE(MixKey(1, 2, 3, 4), MixKey(1, 2, 4, 3));
  EXPECT_NE(MixKey(1, 2), MixKey(2, 1));
  EXPECT_NE(Mix64(0), Mix64(1));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q(7);
  q.Schedule(3.0, EventKind::kUploadArrive, 0, 0);
  q.Schedule(1.0, EventKind::kDownlinkArrive, 1, 0);
  q.Schedule(2.0, EventKind::kRetrySend, 2, 1);
  EXPECT_EQ(q.Pop().time, 1.0);
  EXPECT_EQ(q.Pop().time, 2.0);
  EXPECT_EQ(q.Pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreakIsSeededAndInsertOrderInvariant) {
  // Simultaneous events must pop in an order decided by the seed, not by
  // the order Schedule was called in.
  auto pop_order = [](const std::vector<int>& clients) {
    EventQueue q(99);
    for (int c : clients) q.Schedule(5.0, EventKind::kUploadArrive, c, 0);
    std::vector<int> order;
    while (!q.empty()) order.push_back(q.Pop().client);
    return order;
  };
  const std::vector<int> a = pop_order({0, 1, 2, 3, 4});
  const std::vector<int> b = pop_order({4, 2, 0, 3, 1});
  EXPECT_EQ(a, b);
  // A different seed permutes ties differently for at least one of a few
  // probe seeds (all-equal across seeds would mean the seed is ignored).
  bool any_differs = false;
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    EventQueue q(seed);
    for (int c : {0, 1, 2, 3, 4}) q.Schedule(5.0, EventKind::kUploadArrive, c, 0);
    std::vector<int> order;
    while (!q.empty()) order.push_back(q.Pop().client);
    if (order != a) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

WireMessage SampleMessage() {
  WireMessage m;
  m.type = MessageType::kLayerUpdate;
  m.round = 12;
  m.sender = 3;
  m.layer = 1;
  m.payload = {1.5, -2.25, 0.0, 1e-300, 3.14159};
  return m;
}

TEST(Message, EncodeDecodeRoundTrips) {
  const WireMessage m = SampleMessage();
  const std::vector<uint8_t> bytes = EncodeMessage(m);
  const Result<WireMessage> back = DecodeMessage(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->type, m.type);
  EXPECT_EQ(back->round, m.round);
  EXPECT_EQ(back->sender, m.sender);
  EXPECT_EQ(back->layer, m.layer);
  EXPECT_EQ(back->payload, m.payload);
}

TEST(Message, WireBytesMatchesEncodedSize) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{257}}) {
    WireMessage m = SampleMessage();
    m.payload.assign(n, 0.5);
    EXPECT_EQ(EncodeMessage(m).size(), MessageWireBytes(n)) << "n=" << n;
  }
}

TEST(Message, RejectsBadMagicVersionTruncationAndCorruption) {
  const std::vector<uint8_t> bytes = EncodeMessage(SampleMessage());
  {
    std::vector<uint8_t> bad = bytes;
    std::memcpy(bad.data(), "NOTMSG!!", 8);
    const auto r = DecodeMessage(bad.data(), bad.size());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::vector<uint8_t> old = bytes;
    std::memcpy(old.data(), "FEXMSG00", 8);
    const auto r = DecodeMessage(old.data(), old.size());
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("version"), std::string::npos);
  }
  for (size_t cut : {size_t{0}, size_t{7}, size_t{20}, bytes.size() - 1}) {
    const auto r = DecodeMessage(bytes.data(), cut);
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes accepted";
  }
  {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x01;
    const auto r = DecodeMessage(corrupt.data(), corrupt.size());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(DecodeMessage(padded.data(), padded.size()).ok());
  }
}

// ---------------------------------------------------------------------------
// Runtime config validation
// ---------------------------------------------------------------------------

TEST(RuntimeConfig, DefaultsValidate) {
  EXPECT_TRUE(ValidateRuntimeConfig(RuntimeConfig{}).ok());
}

TEST(RuntimeConfig, RejectsOutOfRangeKnobs) {
  auto bad = [](auto mutate) {
    RuntimeConfig c;
    mutate(&c);
    return !ValidateRuntimeConfig(c).ok();
  };
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->policy = RoundPolicy::kDeadline;  // needs deadline_s > 0
  }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->policy = RoundPolicy::kDeadline;
    c->deadline_s = 10.0;
    c->target_fraction = 0.0;
  }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->policy = RoundPolicy::kDeadline;
    c->deadline_s = 10.0;
    c->over_selection = 0.5;
  }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->policy = RoundPolicy::kTimeoutRetry;
    c->retry_timeout_s = 0.0;
  }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->max_retries = -1; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->backoff_factor = 0.5; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->train_seconds_per_graph = -1.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_up.latency_s = -0.1; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_up.loss_prob = 1.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_down.jitter_s = -1.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_fault.slowdown = 0.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_fault.crash_prob = 1.5; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_fault.rejoin_rounds = 0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->up_links.resize(3);
    c->up_links[2].bandwidth_bps = -5.0;
  }));
}

// ---------------------------------------------------------------------------
// Round execution
// ---------------------------------------------------------------------------

TEST(FederatedRuntime, PassthroughDeliversEveryoneInstantly) {
  const int n = 5;
  FederatedRuntime rt(RuntimeConfig{}, n);
  // Passthrough: train_seconds_per_graph defaults to 0, so the simulator
  // hands the runtime zero per-client compute time.
  const std::vector<double> up(n, 4096.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 8192.0, up, train);
  const std::vector<int> all = {0, 1, 2, 3, 4};
  EXPECT_EQ(out.participants, all);
  EXPECT_EQ(out.delivered, all);
  EXPECT_EQ(out.end_time_s, 0.0);
  EXPECT_EQ(out.retransmissions, 0);
  EXPECT_EQ(out.retransmit_bytes, 0.0);
  EXPECT_EQ(out.lost_updates, 0);
  EXPECT_EQ(out.late_updates, 0);
}

TEST(FederatedRuntime, DeadlineRoundCompletesWithPartialParticipation) {
  // Client 3's uplink takes 10 simulated seconds against a 5 second
  // deadline: the round must still complete, with client 3 selected and
  // trained but its update discarded as late.
  const int n = 4;
  RuntimeConfig c;
  c.policy = RoundPolicy::kDeadline;
  c.deadline_s = 5.0;
  c.up_links.resize(n);
  c.up_links[3].latency_s = 10.0;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 1024.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 1024.0, up, train);
  EXPECT_EQ(out.participants, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(out.delivered, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(out.late_updates, 1);
  EXPECT_EQ(out.end_time_s, 5.0);
}

TEST(FederatedRuntime, DeadlineOverSelectionInvitesSubset) {
  const int n = 10;
  RuntimeConfig c;
  c.policy = RoundPolicy::kDeadline;
  c.deadline_s = 100.0;
  c.target_fraction = 0.4;
  c.over_selection = 1.5;  // ceil(0.4 * 1.5 * 10) = 6 invited
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 64.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 64.0, up, train);
  EXPECT_EQ(out.participants.size(), 6u);
  // Sorted, unique, in range.
  for (size_t i = 1; i < out.participants.size(); ++i) {
    EXPECT_LT(out.participants[i - 1], out.participants[i]);
  }
  EXPECT_GE(out.participants.front(), 0);
  EXPECT_LT(out.participants.back(), n);
  EXPECT_EQ(out.delivered, out.participants);  // generous deadline
}

TEST(FederatedRuntime, TimeoutRetryRecoversLostUpdates) {
  // Lossy uplinks under the timeout+retry policy: with enough retries
  // every update must eventually land, and the retry path must actually
  // fire (first-send losses are near-certain with loss_prob 0.6 over 6
  // clients; the trace/outcome is deterministic for the fixed seed).
  const int n = 6;
  RuntimeConfig c;
  c.policy = RoundPolicy::kTimeoutRetry;
  c.retry_timeout_s = 1.0;
  c.max_retries = 10;
  c.default_up.loss_prob = 0.6;
  c.default_up.latency_s = 0.05;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 2048.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 2048.0, up, train);
  EXPECT_EQ(out.delivered.size(), static_cast<size_t>(n));
  EXPECT_GT(out.retransmissions, 0);
  EXPECT_GT(out.retransmit_bytes, 0.0);
  EXPECT_EQ(out.retransmit_bytes, 2048.0 * out.retransmissions);
  EXPECT_GT(out.end_time_s, c.default_up.latency_s);
}

TEST(FederatedRuntime, SynchronousLossyLinkDropsUpdatePermanently) {
  // Without retries a lost update is simply gone; the round still closes.
  const int n = 4;
  RuntimeConfig c;
  c.default_up.loss_prob = 0.9;
  c.max_retries = 0;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 512.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 512.0, up, train);
  EXPECT_EQ(out.participants.size(), static_cast<size_t>(n));
  EXPECT_LT(out.delivered.size(), static_cast<size_t>(n));
  EXPECT_GT(out.lost_updates, 0);
  EXPECT_EQ(out.retransmissions, 0);
}

TEST(FederatedRuntime, CrashedClientsSkipRoundsAndRejoin) {
  const int n = 3;
  RuntimeConfig c;
  c.faults.resize(n);
  c.faults[0].crash_prob = 0.99;
  c.faults[0].rejoin_rounds = 1;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 128.0), train(n, 0.0);
  int rounds_without_client0 = 0;
  for (int r = 0; r < 8; ++r) {
    const RoundOutcome out = rt.ExecuteRound(r, 128.0, up, train);
    bool has0 = false;
    for (int p : out.participants) has0 |= (p == 0);
    if (!has0) ++rounds_without_client0;
    // Healthy clients always participate under the synchronous policy.
    EXPECT_GE(out.participants.size(), 2u);
  }
  EXPECT_GT(rounds_without_client0, 0);
}

TEST(FederatedRuntime, StragglerSlowdownStretchesRoundTime) {
  const int n = 2;
  RuntimeConfig fast_cfg;
  fast_cfg.train_seconds_per_graph = 1.0;
  RuntimeConfig slow_cfg = fast_cfg;
  slow_cfg.faults.resize(n);
  slow_cfg.faults[1].slowdown = 8.0;
  const std::vector<double> up(n, 64.0), train(n, 2.0);
  FederatedRuntime fast(fast_cfg, n), slow(slow_cfg, n);
  const double t_fast = fast.ExecuteRound(0, 64.0, up, train).end_time_s;
  const double t_slow = slow.ExecuteRound(0, 64.0, up, train).end_time_s;
  EXPECT_DOUBLE_EQ(t_fast, 2.0);
  EXPECT_DOUBLE_EQ(t_slow, 16.0);
}

TEST(FederatedRuntime, TraceIsStableAcrossReruns) {
  RuntimeConfig c;
  c.record_trace = true;
  c.default_up.latency_s = 0.5;
  c.default_up.jitter_s = 0.2;
  auto run = [&] {
    FederatedRuntime rt(c, 4);
    const std::vector<double> up(4, 256.0), train(4, 1.0);
    rt.ExecuteRound(0, 256.0, up, train);
    rt.ExecuteRound(1, 256.0, up, train);
    return rt.trace();
  };
  const std::vector<std::string> t1 = run();
  const std::vector<std::string> t2 = run();
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
}

// ---------------------------------------------------------------------------
// Full-simulator integration under faults + thread-count parity
// ---------------------------------------------------------------------------

struct Fixture {
  FederatedCorpus corpus;
  GnnConfig gc;
  FlConfig fc;

  static const Fixture& Get() {
    static const Fixture f;
    return f;
  }

  Fixture() {
    Rng rng(42);
    CorpusOptions opt;
    opt.platforms = {Platform::kIfttt};
    opt.min_nodes = 3;
    opt.max_nodes = 8;
    opt.vulnerable_fraction = 0.4;
    corpus = BuildClusteredFederatedCorpus(opt, 80, 4, 2, 1.0, 0.6, &rng);
    gc.type = GnnType::kGin;
    gc.hidden_dim = 8;
    gc.embedding_dim = 8;
    fc.num_rounds = 3;
    fc.local.epochs = 1;
    fc.local.learning_rate = 0.02;
    fc.local.margin = 3.0;
    fc.min_cluster_size = 2;
  }
};

// A runtime configuration that exercises every subsystem at once: priced
// links with jitter, losses recovered by timeout+retry, one straggler and
// one crash-prone client.
RuntimeConfig FaultyRuntimeConfig() {
  RuntimeConfig rc;
  rc.policy = RoundPolicy::kTimeoutRetry;
  rc.retry_timeout_s = 2.0;
  rc.max_retries = 6;
  rc.train_seconds_per_graph = 0.01;
  rc.default_down.latency_s = 0.05;
  rc.default_down.bandwidth_bps = 1e6;
  rc.default_up.latency_s = 0.1;
  rc.default_up.bandwidth_bps = 5e5;
  rc.default_up.jitter_s = 0.02;
  rc.default_up.loss_prob = 0.3;
  rc.faults.resize(4);
  rc.faults[2].slowdown = 4.0;
  rc.faults[3].crash_prob = 0.4;
  rc.faults[3].rejoin_rounds = 1;
  rc.record_trace = true;
  return rc;
}

TEST(FederatedSimulatorRuntime, DeadlineRunHasPartialRounds) {
  const Fixture& f = Fixture::Get();
  FlConfig fc = f.fc;
  fc.runtime.policy = RoundPolicy::kDeadline;
  fc.runtime.deadline_s = 3.0;
  fc.runtime.train_seconds_per_graph = 0.01;
  fc.runtime.up_links.resize(4);
  fc.runtime.up_links[1].latency_s = 50.0;  // always misses the deadline
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  const FlResult res = sim.Run(FlAlgorithm::kFedAvg).value();
  ASSERT_EQ(res.rounds.size(), 3u);
  for (const FlRoundStats& r : res.rounds) {
    EXPECT_EQ(r.participants, 4);
    EXPECT_LT(r.delivered, r.participants);  // client 1 is always late
    EXPECT_GT(r.delivered, 0);
  }
  EXPECT_DOUBLE_EQ(res.total_sim_time_s, 3.0 * 3.0);  // deadline per round
}

TEST(FederatedSimulatorRuntime, RetryRunAccountsRetransmits) {
  const Fixture& f = Fixture::Get();
  FlConfig fc = f.fc;
  fc.runtime = FaultyRuntimeConfig();
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  const FlResult res = sim.Run(FlAlgorithm::kFexiot).value();
  EXPECT_GT(res.total_sim_time_s, 0.0);
  EXPECT_GT(res.total_retransmit_bytes, 0.0);
  // Retransmit bytes are cumulative and monotone across rounds.
  for (size_t r = 1; r < res.rounds.size(); ++r) {
    EXPECT_GE(res.rounds[r].retransmit_bytes,
              res.rounds[r - 1].retransmit_bytes);
  }
  EXPECT_FALSE(sim.runtime_trace().empty());
}

// Hex-exact digest of everything a federated run produces; any cross-run
// or cross-thread-count drift shows up as a text diff.
std::string ResultDigest(const FlResult& res) {
  std::string out;
  char buf[64];
  auto add = [&](const char* name, double v) {
    std::snprintf(buf, sizeof(buf), "%s=%a\n", name, v);
    out += buf;
  };
  add("mean_accuracy", res.mean.accuracy);
  add("mean_f1", res.mean.f1);
  add("accuracy_std", res.accuracy_std);
  add("total_comm_bytes", res.total_comm_bytes);
  add("total_sim_time_s", res.total_sim_time_s);
  add("total_retransmit_bytes", res.total_retransmit_bytes);
  for (size_t c = 0; c < res.client_metrics.size(); ++c) {
    std::snprintf(buf, sizeof(buf), "client%zu_acc=%a cluster=%d\n", c,
                  res.client_metrics[c].accuracy,
                  c < res.client_cluster.size() ? res.client_cluster[c] : -1);
    out += buf;
  }
  for (const FlRoundStats& r : res.rounds) {
    std::snprintf(buf, sizeof(buf), "round%d p=%d d=%d t=%a rt=%a b=%a\n",
                  r.round, r.participants, r.delivered, r.sim_time_s,
                  r.retransmit_bytes, r.cumulative_comm_bytes);
    out += buf;
  }
  return out;
}

struct ParityRun {
  std::vector<std::string> trace;
  std::string digest;
};

ParityRun RunFaultyWithThreads(int threads) {
  const Fixture& f = Fixture::Get();
  parallel::SetThreads(static_cast<size_t>(threads));
  FlConfig fc = f.fc;
  fc.threads = threads;
  fc.runtime = FaultyRuntimeConfig();
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  ParityRun run;
  run.digest = ResultDigest(sim.Run(FlAlgorithm::kFexiot).value());
  run.trace = sim.runtime_trace();
  parallel::SetThreads(0);
  return run;
}

TEST(FederatedSimulatorRuntime, FaultyRunIsBitIdenticalAcrossThreadCounts) {
  const ParityRun r1 = RunFaultyWithThreads(1);
  const ParityRun r4 = RunFaultyWithThreads(4);
  ASSERT_FALSE(r1.trace.empty());
  EXPECT_EQ(r1.trace, r4.trace);
  EXPECT_EQ(r1.digest, r4.digest);
}

// CI hook (ci/run_tests.sh stage "runtime thread-count parity"): when
// FEXIOT_TRACE_OUT is set, dump the event trace + result digest of the
// faulty run under the ambient FEXIOT_THREADS so two processes with
// different thread counts can be diffed byte-for-byte.
TEST(RuntimeParity, WritesTraceArtifact) {
  const char* out = std::getenv("FEXIOT_TRACE_OUT");
  if (!out) GTEST_SKIP() << "FEXIOT_TRACE_OUT not set";
  int threads = 0;
  if (const char* env = std::getenv("FEXIOT_THREADS")) threads = std::atoi(env);
  const ParityRun run = RunFaultyWithThreads(threads > 0 ? threads : 1);
  std::FILE* f = std::fopen(out, "wb");
  ASSERT_NE(f, nullptr) << "cannot open " << out;
  for (const std::string& line : run.trace) {
    std::fputs(line.c_str(), f);
    std::fputc('\n', f);
  }
  std::fputs(run.digest.c_str(), f);
  std::fclose(f);
}

}  // namespace
}  // namespace fexiot
