#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/parallel.h"
#include "federated/fl_simulator.h"
#include "graph/corpus.h"
#include "runtime/event_queue.h"
#include "runtime/message.h"
#include "runtime/runtime.h"

namespace fexiot {
namespace {

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

TEST(EventQueue, MixKeyIsSensitiveToEveryField) {
  EXPECT_NE(MixKey(1, 2, 3, 4), MixKey(1, 2, 3, 5));
  EXPECT_NE(MixKey(1, 2, 3, 4), MixKey(1, 2, 4, 3));
  EXPECT_NE(MixKey(1, 2), MixKey(2, 1));
  EXPECT_NE(Mix64(0), Mix64(1));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q(7);
  q.Schedule(3.0, EventKind::kUploadArrive, 0, 0);
  q.Schedule(1.0, EventKind::kDownlinkArrive, 1, 0);
  q.Schedule(2.0, EventKind::kRetrySend, 2, 1);
  EXPECT_EQ(q.Pop().time, 1.0);
  EXPECT_EQ(q.Pop().time, 2.0);
  EXPECT_EQ(q.Pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreakIsSeededAndInsertOrderInvariant) {
  // Simultaneous events must pop in an order decided by the seed, not by
  // the order Schedule was called in.
  auto pop_order = [](const std::vector<int>& clients) {
    EventQueue q(99);
    for (int c : clients) q.Schedule(5.0, EventKind::kUploadArrive, c, 0);
    std::vector<int> order;
    while (!q.empty()) order.push_back(q.Pop().client);
    return order;
  };
  const std::vector<int> a = pop_order({0, 1, 2, 3, 4});
  const std::vector<int> b = pop_order({4, 2, 0, 3, 1});
  EXPECT_EQ(a, b);
  // A different seed permutes ties differently for at least one of a few
  // probe seeds (all-equal across seeds would mean the seed is ignored).
  bool any_differs = false;
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    EventQueue q(seed);
    for (int c : {0, 1, 2, 3, 4}) q.Schedule(5.0, EventKind::kUploadArrive, c, 0);
    std::vector<int> order;
    while (!q.empty()) order.push_back(q.Pop().client);
    if (order != a) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

WireMessage SampleMessage() {
  WireMessage m;
  m.type = MessageType::kLayerUpdate;
  m.round = 12;
  m.sender = 3;
  m.layer = 1;
  m.payload = {1.5, -2.25, 0.0, 1e-300, 3.14159};
  return m;
}

TEST(Message, EncodeDecodeRoundTrips) {
  const WireMessage m = SampleMessage();
  const std::vector<uint8_t> bytes = EncodeMessage(m);
  const Result<WireMessage> back = DecodeMessage(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->type, m.type);
  EXPECT_EQ(back->round, m.round);
  EXPECT_EQ(back->sender, m.sender);
  EXPECT_EQ(back->layer, m.layer);
  EXPECT_EQ(back->payload, m.payload);
}

TEST(Message, WireBytesMatchesEncodedSize) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{257}}) {
    WireMessage m = SampleMessage();
    m.payload.assign(n, 0.5);
    EXPECT_EQ(EncodeMessage(m).size(), MessageWireBytes(n)) << "n=" << n;
  }
}

TEST(Message, RejectsBadMagicVersionTruncationAndCorruption) {
  const std::vector<uint8_t> bytes = EncodeMessage(SampleMessage());
  {
    std::vector<uint8_t> bad = bytes;
    std::memcpy(bad.data(), "NOTMSG!!", 8);
    const auto r = DecodeMessage(bad.data(), bad.size());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::vector<uint8_t> old = bytes;
    std::memcpy(old.data(), "FEXMSG00", 8);
    const auto r = DecodeMessage(old.data(), old.size());
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("version"), std::string::npos);
  }
  for (size_t cut : {size_t{0}, size_t{7}, size_t{20}, bytes.size() - 1}) {
    const auto r = DecodeMessage(bytes.data(), cut);
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes accepted";
  }
  {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x01;
    const auto r = DecodeMessage(corrupt.data(), corrupt.size());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(DecodeMessage(padded.data(), padded.size()).ok());
  }
}

// ---------------------------------------------------------------------------
// Quantized wire codecs (FEXMSG02 framing)
// ---------------------------------------------------------------------------

TEST(Message, EncodeDecodeRoundTripsEveryCodec) {
  for (int k = 0; k < kNumWireCodecs; ++k) {
    const WireCodec codec = static_cast<WireCodec>(k);
    WireMessage m = SampleMessage();
    m.codec = codec;
    const std::vector<uint8_t> bytes = EncodeMessage(m);
    const Result<WireMessage> back = DecodeMessage(bytes.data(), bytes.size());
    ASSERT_TRUE(back.ok()) << WireCodecName(codec) << ": "
                           << back.status().ToString();
    EXPECT_EQ(back->codec, codec);
    EXPECT_EQ(back->round, m.round);
    EXPECT_EQ(back->sender, m.sender);
    EXPECT_EQ(back->layer, m.layer);
    // The decoded payload is the dequantized image of the original.
    EXPECT_EQ(back->payload, CodecRoundTripped(codec, m.payload))
        << WireCodecName(codec);
  }
}

TEST(Message, WireBytesMatchesEncodedSizeEveryCodec) {
  for (int k = 0; k < kNumWireCodecs; ++k) {
    const WireCodec codec = static_cast<WireCodec>(k);
    for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{257}}) {
      WireMessage m = SampleMessage();
      m.codec = codec;
      m.payload.assign(n, 0.5);
      EXPECT_EQ(EncodeMessage(m).size(), MessageWireBytes(n, codec))
          << WireCodecName(codec) << " n=" << n;
    }
  }
}

TEST(Message, Fp64FramesAsLegacyFexmsg01) {
  // The fp64 default must keep emitting byte-identical FEXMSG01 frames —
  // every pre-codec trace, golden, and priced transfer depends on it.
  const WireMessage m = SampleMessage();
  const std::vector<uint8_t> bytes = EncodeMessage(m);
  EXPECT_EQ(std::memcmp(bytes.data(), "FEXMSG01", 8), 0);
  EXPECT_EQ(MessageWireBytes(m.payload.size()),
            MessageWireBytes(m.payload.size(), WireCodec::kFp64));
  const Result<WireMessage> back = DecodeMessage(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->codec, WireCodec::kFp64);
  // Quantized frames announce themselves as FEXMSG02.
  WireMessage q = SampleMessage();
  q.codec = WireCodec::kInt8;
  const std::vector<uint8_t> qbytes = EncodeMessage(q);
  EXPECT_EQ(std::memcmp(qbytes.data(), "FEXMSG02", 8), 0);
}

TEST(Message, RejectsUnknownEncodingId) {
  WireMessage m = SampleMessage();
  m.codec = WireCodec::kInt8;
  std::vector<uint8_t> bytes = EncodeMessage(m);
  // The encoding field sits after magic(8) + type/round/sender/layer(16).
  const uint32_t bogus = 97;
  std::memcpy(bytes.data() + 24, &bogus, sizeof(bogus));
  // Re-seal the CRC so the *encoding* check fires, not corruption.
  const uint32_t crc = Crc32(bytes.data() + 8, bytes.size() - 8 - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, sizeof(crc));
  const Result<WireMessage> r = DecodeMessage(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("encoding"), std::string::npos);
}

TEST(Message, RejectsTruncatedQuantizedRecordWithValidCrc) {
  // A record whose element count promises more lanes than the frame holds
  // must fail as truncation even when the CRC over the short frame is
  // valid (a buggy sender, not line corruption).
  std::vector<uint8_t> bytes;
  bytes.insert(bytes.end(), {'F', 'E', 'X', 'M', 'S', 'G', '0', '2'});
  wire::AppendU32(&bytes, 1);  // type = kLayerUpdate
  wire::AppendU32(&bytes, 0);  // round
  wire::AppendU32(&bytes, 0);  // sender
  wire::AppendU32(&bytes, 0);  // layer
  wire::AppendU32(&bytes, static_cast<uint32_t>(WireCodec::kInt8));
  wire::AppendU64(&bytes, 100);  // claims 100 lanes...
  wire::AppendF32(&bytes, 1.0f);
  wire::AppendF32(&bytes, 0.0f);
  bytes.push_back(7);  // ...ships 1
  wire::AppendU32(&bytes, Crc32(bytes.data() + 8, bytes.size() - 8));
  const Result<WireMessage> r = DecodeMessage(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(Message, Fexmsg02CrcCatchesLaneCorruption) {
  WireMessage m = SampleMessage();
  m.codec = WireCodec::kBf16;
  std::vector<uint8_t> bytes = EncodeMessage(m);
  bytes[bytes.size() - 6] ^= 0x10;  // flip a bit in the last lane
  const Result<WireMessage> r = DecodeMessage(bytes.data(), bytes.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("CRC"), std::string::npos);
  // Truncating a quantized frame anywhere fails cleanly too.
  const std::vector<uint8_t> good = EncodeMessage(m);
  for (size_t cut : {size_t{9}, size_t{25}, size_t{30}, good.size() - 1}) {
    EXPECT_FALSE(DecodeMessage(good.data(), cut).ok()) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Runtime config validation
// ---------------------------------------------------------------------------

TEST(RuntimeConfig, DefaultsValidate) {
  EXPECT_TRUE(ValidateRuntimeConfig(RuntimeConfig{}).ok());
}

TEST(RuntimeConfig, RejectsOutOfRangeKnobs) {
  auto bad = [](auto mutate) {
    RuntimeConfig c;
    mutate(&c);
    return !ValidateRuntimeConfig(c).ok();
  };
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->policy = RoundPolicy::kDeadline;  // needs deadline_s > 0
  }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->policy = RoundPolicy::kDeadline;
    c->deadline_s = 10.0;
    c->target_fraction = 0.0;
  }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->policy = RoundPolicy::kDeadline;
    c->deadline_s = 10.0;
    c->over_selection = 0.5;
  }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->policy = RoundPolicy::kTimeoutRetry;
    c->retry_timeout_s = 0.0;
  }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->max_retries = -1; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->backoff_factor = 0.5; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->train_seconds_per_graph = -1.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_up.latency_s = -0.1; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_up.loss_prob = 1.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_down.jitter_s = -1.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_fault.slowdown = 0.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_fault.crash_prob = 1.5; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->default_fault.rejoin_rounds = 0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->up_links.resize(3);
    c->up_links[2].bandwidth_bps = -5.0;
  }));
}

// ---------------------------------------------------------------------------
// Round execution
// ---------------------------------------------------------------------------

TEST(FederatedRuntime, PassthroughDeliversEveryoneInstantly) {
  const int n = 5;
  FederatedRuntime rt(RuntimeConfig{}, n);
  // Passthrough: train_seconds_per_graph defaults to 0, so the simulator
  // hands the runtime zero per-client compute time.
  const std::vector<double> up(n, 4096.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 8192.0, up, train);
  const std::vector<int> all = {0, 1, 2, 3, 4};
  EXPECT_EQ(out.participants, all);
  EXPECT_EQ(out.delivered, all);
  EXPECT_EQ(out.end_time_s, 0.0);
  EXPECT_EQ(out.retransmissions, 0);
  EXPECT_EQ(out.retransmit_bytes, 0.0);
  EXPECT_EQ(out.lost_updates, 0);
  EXPECT_EQ(out.late_updates, 0);
}

TEST(FederatedRuntime, DeadlineRoundCompletesWithPartialParticipation) {
  // Client 3's uplink takes 10 simulated seconds against a 5 second
  // deadline: the round must still complete, with client 3 selected and
  // trained but its update discarded as late.
  const int n = 4;
  RuntimeConfig c;
  c.policy = RoundPolicy::kDeadline;
  c.deadline_s = 5.0;
  c.up_links.resize(n);
  c.up_links[3].latency_s = 10.0;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 1024.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 1024.0, up, train);
  EXPECT_EQ(out.participants, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(out.delivered, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(out.late_updates, 1);
  EXPECT_EQ(out.end_time_s, 5.0);
}

TEST(FederatedRuntime, DeadlineOverSelectionInvitesSubset) {
  const int n = 10;
  RuntimeConfig c;
  c.policy = RoundPolicy::kDeadline;
  c.deadline_s = 100.0;
  c.target_fraction = 0.4;
  c.over_selection = 1.5;  // ceil(0.4 * 1.5 * 10) = 6 invited
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 64.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 64.0, up, train);
  EXPECT_EQ(out.participants.size(), 6u);
  // Sorted, unique, in range.
  for (size_t i = 1; i < out.participants.size(); ++i) {
    EXPECT_LT(out.participants[i - 1], out.participants[i]);
  }
  EXPECT_GE(out.participants.front(), 0);
  EXPECT_LT(out.participants.back(), n);
  EXPECT_EQ(out.delivered, out.participants);  // generous deadline
}

TEST(FederatedRuntime, TimeoutRetryRecoversLostUpdates) {
  // Lossy uplinks under the timeout+retry policy: with enough retries
  // every update must eventually land, and the retry path must actually
  // fire (first-send losses are near-certain with loss_prob 0.6 over 6
  // clients; the trace/outcome is deterministic for the fixed seed).
  const int n = 6;
  RuntimeConfig c;
  c.policy = RoundPolicy::kTimeoutRetry;
  c.retry_timeout_s = 1.0;
  c.max_retries = 10;
  c.default_up.loss_prob = 0.6;
  c.default_up.latency_s = 0.05;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 2048.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 2048.0, up, train);
  EXPECT_EQ(out.delivered.size(), static_cast<size_t>(n));
  EXPECT_GT(out.retransmissions, 0);
  EXPECT_GT(out.retransmit_bytes, 0.0);
  EXPECT_EQ(out.retransmit_bytes, 2048.0 * out.retransmissions);
  EXPECT_GT(out.end_time_s, c.default_up.latency_s);
}

TEST(FederatedRuntime, SynchronousLossyLinkDropsUpdatePermanently) {
  // Without retries a lost update is simply gone; the round still closes.
  const int n = 4;
  RuntimeConfig c;
  c.default_up.loss_prob = 0.9;
  c.max_retries = 0;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 512.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 512.0, up, train);
  EXPECT_EQ(out.participants.size(), static_cast<size_t>(n));
  EXPECT_LT(out.delivered.size(), static_cast<size_t>(n));
  EXPECT_GT(out.lost_updates, 0);
  EXPECT_EQ(out.retransmissions, 0);
}

TEST(FederatedRuntime, CrashedClientsSkipRoundsAndRejoin) {
  const int n = 3;
  RuntimeConfig c;
  c.faults.resize(n);
  c.faults[0].crash_prob = 0.99;
  c.faults[0].rejoin_rounds = 1;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 128.0), train(n, 0.0);
  int rounds_without_client0 = 0;
  for (int r = 0; r < 8; ++r) {
    const RoundOutcome out = rt.ExecuteRound(r, 128.0, up, train);
    bool has0 = false;
    for (int p : out.participants) has0 |= (p == 0);
    if (!has0) ++rounds_without_client0;
    // Healthy clients always participate under the synchronous policy.
    EXPECT_GE(out.participants.size(), 2u);
  }
  EXPECT_GT(rounds_without_client0, 0);
}

TEST(FederatedRuntime, StragglerSlowdownStretchesRoundTime) {
  const int n = 2;
  RuntimeConfig fast_cfg;
  fast_cfg.train_seconds_per_graph = 1.0;
  RuntimeConfig slow_cfg = fast_cfg;
  slow_cfg.faults.resize(n);
  slow_cfg.faults[1].slowdown = 8.0;
  const std::vector<double> up(n, 64.0), train(n, 2.0);
  FederatedRuntime fast(fast_cfg, n), slow(slow_cfg, n);
  const double t_fast = fast.ExecuteRound(0, 64.0, up, train).end_time_s;
  const double t_slow = slow.ExecuteRound(0, 64.0, up, train).end_time_s;
  EXPECT_DOUBLE_EQ(t_fast, 2.0);
  EXPECT_DOUBLE_EQ(t_slow, 16.0);
}

TEST(FederatedRuntime, TraceIsStableAcrossReruns) {
  RuntimeConfig c;
  c.record_trace = true;
  c.default_up.latency_s = 0.5;
  c.default_up.jitter_s = 0.2;
  auto run = [&] {
    FederatedRuntime rt(c, 4);
    const std::vector<double> up(4, 256.0), train(4, 1.0);
    rt.ExecuteRound(0, 256.0, up, train);
    rt.ExecuteRound(1, 256.0, up, train);
    return rt.trace();
  };
  const std::vector<std::string> t1 = run();
  const std::vector<std::string> t2 = run();
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
}

TEST(RuntimeConfig, RejectsOutOfRangeDownlinkLossKnobs) {
  RuntimeConfig c;
  c.max_refetches = -1;
  EXPECT_FALSE(ValidateRuntimeConfig(c).ok());
  c = RuntimeConfig();
  c.default_down.loss_prob = 0.3;
  c.refetch_timeout_s = 0.0;
  EXPECT_FALSE(ValidateRuntimeConfig(c).ok());
  c.refetch_timeout_s = 1.0;
  EXPECT_TRUE(ValidateRuntimeConfig(c).ok());
  // A lossy per-client downlink override also demands a usable timeout.
  c = RuntimeConfig();
  c.down_links.resize(2);
  c.down_links[1].loss_prob = 0.5;
  c.refetch_timeout_s = -1.0;
  EXPECT_FALSE(ValidateRuntimeConfig(c).ok());
}

TEST(FederatedRuntime, DownlinkLossRefetchRecoversBroadcasts) {
  // Lossy downlink with a generous re-fetch budget: every client must
  // eventually receive the model and deliver its update; the re-fetch
  // path must actually fire (loss_prob 0.6 over 6 clients makes
  // first-copy losses near-certain for the fixed seed).
  const int n = 6;
  RuntimeConfig c;
  c.default_down.loss_prob = 0.6;
  c.default_down.latency_s = 0.05;
  c.refetch_timeout_s = 1.0;
  c.max_refetches = 20;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 2048.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 2048.0, up, train);
  EXPECT_EQ(out.delivered.size(), static_cast<size_t>(n));
  EXPECT_GT(out.broadcast_refetches, 0);
  EXPECT_EQ(out.lost_broadcasts, 0);
  // A re-fetched copy cannot arrive before the client's timeout expires.
  EXPECT_GE(out.end_time_s, c.refetch_timeout_s);
}

TEST(FederatedRuntime, DownlinkLossExhaustedDropsClientDeterministically) {
  // Without re-fetches a lost broadcast silences the client for the
  // round: it never trains, never uploads, and the round still closes.
  const int n = 5;
  RuntimeConfig c;
  c.default_down.loss_prob = 0.9;
  c.max_refetches = 0;
  auto run = [&] {
    FederatedRuntime rt(c, n);
    const std::vector<double> up(n, 512.0), train(n, 0.0);
    return rt.ExecuteRound(0, 512.0, up, train);
  };
  const RoundOutcome out = run();
  EXPECT_EQ(out.participants.size(), static_cast<size_t>(n));
  EXPECT_LT(out.delivered.size(), static_cast<size_t>(n));
  EXPECT_GT(out.lost_broadcasts, 0);
  EXPECT_EQ(out.broadcast_refetches, 0);
  EXPECT_EQ(out.delivered.size() + static_cast<size_t>(out.lost_broadcasts),
            static_cast<size_t>(n));
  const RoundOutcome again = run();
  EXPECT_EQ(out.delivered, again.delivered);
  EXPECT_EQ(out.lost_broadcasts, again.lost_broadcasts);
  EXPECT_EQ(out.end_time_s, again.end_time_s);
}

TEST(FederatedRuntime, DownlinkRefetchTraceIsDeterministic) {
  RuntimeConfig c;
  c.record_trace = true;
  c.default_down.loss_prob = 0.5;
  c.refetch_timeout_s = 0.5;
  c.max_refetches = 3;
  auto run = [&] {
    FederatedRuntime rt(c, 5);
    const std::vector<double> up(5, 256.0), train(5, 1.0);
    rt.ExecuteRound(0, 256.0, up, train);
    rt.ExecuteRound(1, 256.0, up, train);
    return rt.trace();
  };
  const std::vector<std::string> t1 = run();
  const std::vector<std::string> t2 = run();
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  bool saw_lost = false, saw_refetch = false, saw_summary = false;
  for (const std::string& line : t1) {
    saw_lost = saw_lost || line.find("down-lost") != std::string::npos;
    saw_refetch = saw_refetch || line.find("refetch-send") != std::string::npos;
    saw_summary =
        saw_summary || line.find("lost_broadcasts=") != std::string::npos;
  }
  EXPECT_TRUE(saw_lost);
  EXPECT_TRUE(saw_refetch);
  EXPECT_TRUE(saw_summary);
}

TEST(FederatedRuntime, SemiAsyncDownlinkLossTerminatesAndAccounts) {
  // A permanently lost broadcast must release its semi-async tier slot
  // (like a permanently lost upload), or the tier never flushes and the
  // wave cannot reach quorum. Every participant ends the round applied,
  // upload-lost, or broadcast-lost — nothing hangs in between.
  const int n = 8;
  RuntimeConfig c;
  c.policy = RoundPolicy::kSemiAsync;
  c.semi_async_tiers = 2;
  c.target_fraction = 1.0;
  c.default_down.loss_prob = 0.7;
  c.refetch_timeout_s = 0.5;
  c.max_refetches = 1;
  c.default_up.loss_prob = 0.3;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 1024.0), train(n, 0.5);
  const RoundOutcome out = rt.ExecuteRound(0, 1024.0, up, train);
  EXPECT_EQ(out.applied.size() + static_cast<size_t>(out.lost_updates) +
                static_cast<size_t>(out.lost_broadcasts),
            out.participants.size());
  EXPECT_GT(out.lost_broadcasts, 0);
}

// ---------------------------------------------------------------------------
// Full-simulator integration under faults + thread-count parity
// ---------------------------------------------------------------------------

struct Fixture {
  FederatedCorpus corpus;
  GnnConfig gc;
  FlConfig fc;

  static const Fixture& Get() {
    static const Fixture f;
    return f;
  }

  Fixture() {
    Rng rng(42);
    CorpusOptions opt;
    opt.platforms = {Platform::kIfttt};
    opt.min_nodes = 3;
    opt.max_nodes = 8;
    opt.vulnerable_fraction = 0.4;
    corpus = BuildClusteredFederatedCorpus(opt, 80, 4, 2, 1.0, 0.6, &rng);
    gc.type = GnnType::kGin;
    gc.hidden_dim = 8;
    gc.embedding_dim = 8;
    fc.num_rounds = 3;
    fc.local.epochs = 1;
    fc.local.learning_rate = 0.02;
    fc.local.margin = 3.0;
    fc.min_cluster_size = 2;
  }
};

// A runtime configuration that exercises every subsystem at once: priced
// links with jitter, losses recovered by timeout+retry, one straggler and
// one crash-prone client.
RuntimeConfig FaultyRuntimeConfig() {
  RuntimeConfig rc;
  rc.policy = RoundPolicy::kTimeoutRetry;
  rc.retry_timeout_s = 2.0;
  rc.max_retries = 6;
  rc.train_seconds_per_graph = 0.01;
  rc.default_down.latency_s = 0.05;
  rc.default_down.bandwidth_bps = 1e6;
  rc.default_up.latency_s = 0.1;
  rc.default_up.bandwidth_bps = 5e5;
  rc.default_up.jitter_s = 0.02;
  rc.default_up.loss_prob = 0.3;
  rc.faults.resize(4);
  rc.faults[2].slowdown = 4.0;
  rc.faults[3].crash_prob = 0.4;
  rc.faults[3].rejoin_rounds = 1;
  rc.record_trace = true;
  return rc;
}

TEST(FederatedSimulatorRuntime, DeadlineRunHasPartialRounds) {
  const Fixture& f = Fixture::Get();
  FlConfig fc = f.fc;
  fc.runtime.policy = RoundPolicy::kDeadline;
  fc.runtime.deadline_s = 3.0;
  fc.runtime.train_seconds_per_graph = 0.01;
  fc.runtime.up_links.resize(4);
  fc.runtime.up_links[1].latency_s = 50.0;  // always misses the deadline
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  const FlResult res = sim.Run(FlAlgorithm::kFedAvg).value();
  ASSERT_EQ(res.rounds.size(), 3u);
  for (const FlRoundStats& r : res.rounds) {
    EXPECT_EQ(r.participants, 4);
    EXPECT_LT(r.delivered, r.participants);  // client 1 is always late
    EXPECT_GT(r.delivered, 0);
  }
  EXPECT_DOUBLE_EQ(res.total_sim_time_s, 3.0 * 3.0);  // deadline per round
}

TEST(FederatedSimulatorRuntime, RetryRunAccountsRetransmits) {
  const Fixture& f = Fixture::Get();
  FlConfig fc = f.fc;
  fc.runtime = FaultyRuntimeConfig();
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  const FlResult res = sim.Run(FlAlgorithm::kFexiot).value();
  EXPECT_GT(res.total_sim_time_s, 0.0);
  EXPECT_GT(res.total_retransmit_bytes, 0.0);
  // Retransmit bytes are cumulative and monotone across rounds.
  for (size_t r = 1; r < res.rounds.size(); ++r) {
    EXPECT_GE(res.rounds[r].retransmit_bytes,
              res.rounds[r - 1].retransmit_bytes);
  }
  EXPECT_FALSE(sim.runtime_trace().empty());
}

// Hex-exact digest of everything a federated run produces; any cross-run
// or cross-thread-count drift shows up as a text diff.
std::string ResultDigest(const FlResult& res) {
  std::string out;
  char buf[64];
  auto add = [&](const char* name, double v) {
    std::snprintf(buf, sizeof(buf), "%s=%a\n", name, v);
    out += buf;
  };
  add("mean_accuracy", res.mean.accuracy);
  add("mean_f1", res.mean.f1);
  add("accuracy_std", res.accuracy_std);
  add("total_comm_bytes", res.total_comm_bytes);
  add("total_sim_time_s", res.total_sim_time_s);
  add("total_retransmit_bytes", res.total_retransmit_bytes);
  for (size_t c = 0; c < res.client_metrics.size(); ++c) {
    std::snprintf(buf, sizeof(buf), "client%zu_acc=%a cluster=%d\n", c,
                  res.client_metrics[c].accuracy,
                  c < res.client_cluster.size() ? res.client_cluster[c] : -1);
    out += buf;
  }
  for (const FlRoundStats& r : res.rounds) {
    std::snprintf(buf, sizeof(buf), "round%d p=%d d=%d t=%a rt=%a b=%a s=%a\n",
                  r.round, r.participants, r.delivered, r.sim_time_s,
                  r.retransmit_bytes, r.cumulative_comm_bytes,
                  r.mean_staleness);
    out += buf;
    // Tree-topology rounds also pin the per-hop bytes and crash counters
    // (flat rounds carry no hop vector, keeping their digests unchanged).
    if (!r.hop_comm_bytes.empty()) {
      out += "hops";
      for (double hb : r.hop_comm_bytes) {
        std::snprintf(buf, sizeof(buf), " %a", hb);
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), " crash=%d lost=%d\n",
                    r.aggregator_crashes, r.subtree_lost_updates);
      out += buf;
    }
  }
  for (size_t i = 0; i < res.staleness_hist.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "hist%zu=%llu\n", i,
                  static_cast<unsigned long long>(res.staleness_hist[i]));
    out += buf;
  }
  return out;
}

struct ParityRun {
  std::vector<std::string> trace;
  std::string digest;
};

ParityRun RunFaultyWithThreads(int threads,
                               WireCodec codec = WireCodec::kFp64) {
  const Fixture& f = Fixture::Get();
  parallel::SetThreads(static_cast<size_t>(threads));
  FlConfig fc = f.fc;
  fc.threads = threads;
  fc.runtime = FaultyRuntimeConfig();
  fc.runtime.wire_codec = codec;
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  ParityRun run;
  run.digest = ResultDigest(sim.Run(FlAlgorithm::kFexiot).value());
  run.trace = sim.runtime_trace();
  parallel::SetThreads(0);
  return run;
}

TEST(FederatedSimulatorRuntime, FaultyRunIsBitIdenticalAcrossThreadCounts) {
  const ParityRun r1 = RunFaultyWithThreads(1);
  const ParityRun r4 = RunFaultyWithThreads(4);
  ASSERT_FALSE(r1.trace.empty());
  EXPECT_EQ(r1.trace, r4.trace);
  EXPECT_EQ(r1.digest, r4.digest);
}

// CI hook (ci/run_tests.sh stage "runtime thread-count parity"): when
// FEXIOT_TRACE_OUT is set, dump the event trace + result digest of the
// faulty run under the ambient FEXIOT_THREADS so two processes with
// different thread counts can be diffed byte-for-byte.
TEST(RuntimeParity, WritesTraceArtifact) {
  const char* out = std::getenv("FEXIOT_TRACE_OUT");
  if (!out) GTEST_SKIP() << "FEXIOT_TRACE_OUT not set";
  int threads = 0;
  if (const char* env = std::getenv("FEXIOT_THREADS")) threads = std::atoi(env);
  const ParityRun run = RunFaultyWithThreads(threads > 0 ? threads : 1);
  std::FILE* f = std::fopen(out, "wb");
  ASSERT_NE(f, nullptr) << "cannot open " << out;
  for (const std::string& line : run.trace) {
    std::fputs(line.c_str(), f);
    std::fputc('\n', f);
  }
  std::fputs(run.digest.c_str(), f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Wire codecs end-to-end (pricing, accounting, determinism)
// ---------------------------------------------------------------------------

TEST(RuntimeConfig, RejectsUnknownCodecs) {
  RuntimeConfig c;
  c.wire_codec = static_cast<WireCodec>(200);
  EXPECT_FALSE(ValidateRuntimeConfig(c).ok());
  RuntimeConfig c2;
  c2.client_codecs = {WireCodec::kInt8, static_cast<WireCodec>(9)};
  EXPECT_FALSE(ValidateRuntimeConfig(c2).ok());
  RuntimeConfig ok;
  ok.wire_codec = WireCodec::kBf16;
  ok.client_codecs = {WireCodec::kFp32, WireCodec::kInt8};
  EXPECT_TRUE(ValidateRuntimeConfig(ok).ok());
}

TEST(FederatedRuntime, VectorBroadcastPricesPerClient) {
  RuntimeConfig rc;
  rc.default_down.bandwidth_bps = 1e6;
  const std::vector<double> up(2, 0.0), train(2, 0.0);
  // Scalar and uniform-vector overloads are the same round.
  FederatedRuntime a(rc, 2), b(rc, 2);
  const RoundOutcome oa = a.ExecuteRound(0, 1e5, up, train);
  const RoundOutcome ob = b.ExecuteRound(0, {1e5, 1e5}, up, train);
  EXPECT_DOUBLE_EQ(oa.end_time_s, ob.end_time_s);
  EXPECT_DOUBLE_EQ(oa.downlink_wire_bytes, 2e5);
  EXPECT_DOUBLE_EQ(ob.downlink_wire_bytes, 2e5);
  // A heavier per-client downlink stretches that client's transfer, so a
  // mixed fleet ends later than a uniformly light one.
  FederatedRuntime c(rc, 2);
  const RoundOutcome oc = c.ExecuteRound(0, {1e5, 4e5}, up, train);
  EXPECT_GT(oc.end_time_s, ob.end_time_s);
  EXPECT_DOUBLE_EQ(oc.downlink_wire_bytes, 5e5);
}

TEST(FederatedSimulatorRuntime, Int8CodecShrinksWireBytesAndSimTime) {
  const Fixture& f = Fixture::Get();
  auto run = [&](WireCodec codec, std::vector<WireCodec> per_client) {
    FlConfig fc = f.fc;
    fc.runtime = FaultyRuntimeConfig();
    fc.runtime.record_trace = false;
    fc.runtime.wire_codec = codec;
    fc.runtime.client_codecs = std::move(per_client);
    FederatedSimulator sim(f.gc, fc);
    sim.SetupClients(f.corpus.data, f.corpus.partition,
                     f.corpus.cluster_tests);
    return sim.Run(FlAlgorithm::kFedAvg).value();
  };
  const FlResult fp64 = run(WireCodec::kFp64, {});
  const FlResult int8 = run(WireCodec::kInt8, {});
  ASSERT_GT(fp64.total_uplink_wire_bytes, 0.0);
  ASSERT_GT(fp64.total_downlink_wire_bytes, 0.0);
  // The headline acceptance ratio: int8 moves >= 4x fewer uplink bytes.
  EXPECT_GE(fp64.total_uplink_wire_bytes / int8.total_uplink_wire_bytes, 4.0);
  // Identical loss/straggler draws, smaller transfers: time can only drop.
  EXPECT_LT(int8.total_sim_time_s, fp64.total_sim_time_s);
  EXPECT_LT(int8.total_comm_bytes, fp64.total_comm_bytes);
  // fp64 wire accounting: every legacy comm byte crossed the wire, plus
  // framing and retransmits, so the wire total exceeds the payload total.
  EXPECT_GT(fp64.total_uplink_wire_bytes + fp64.total_downlink_wire_bytes,
            fp64.total_comm_bytes);
  // Mixed fleet: per-client overrides land between the pure runs.
  const FlResult mixed =
      run(WireCodec::kFp64, {WireCodec::kFp64, WireCodec::kInt8,
                             WireCodec::kBf16, WireCodec::kFp32});
  EXPECT_LT(mixed.total_uplink_wire_bytes, fp64.total_uplink_wire_bytes);
  EXPECT_GT(mixed.total_uplink_wire_bytes, int8.total_uplink_wire_bytes);
}

TEST(FederatedSimulatorRuntime,
     LossyCodecRunsAreBitIdenticalAcrossThreadCounts) {
  for (WireCodec codec :
       {WireCodec::kFp32, WireCodec::kBf16, WireCodec::kInt8}) {
    const ParityRun r1 = RunFaultyWithThreads(1, codec);
    const ParityRun r4 = RunFaultyWithThreads(4, codec);
    ASSERT_FALSE(r1.trace.empty()) << WireCodecName(codec);
    EXPECT_EQ(r1.trace, r4.trace) << WireCodecName(codec);
    EXPECT_EQ(r1.digest, r4.digest) << WireCodecName(codec);
  }
}

// CI hook (ci/run_tests.sh stage "wire codec parity"): when
// FEXIOT_CODEC_TRACE_OUT is set, dump the faulty run's trace + digest
// under the codec named by FEXIOT_CODEC and the ambient FEXIOT_THREADS,
// so per-codec runs with different thread counts diff byte-for-byte.
TEST(CodecParity, WritesTraceArtifact) {
  const char* out = std::getenv("FEXIOT_CODEC_TRACE_OUT");
  if (!out) GTEST_SKIP() << "FEXIOT_CODEC_TRACE_OUT not set";
  const char* name = std::getenv("FEXIOT_CODEC");
  ASSERT_NE(name, nullptr) << "FEXIOT_CODEC not set";
  const Result<WireCodec> codec = ParseWireCodec(name);
  ASSERT_TRUE(codec.ok()) << codec.status().ToString();
  int threads = 0;
  if (const char* env = std::getenv("FEXIOT_THREADS")) threads = std::atoi(env);
  const ParityRun run = RunFaultyWithThreads(threads > 0 ? threads : 1, *codec);
  std::FILE* f = std::fopen(out, "wb");
  ASSERT_NE(f, nullptr) << "cannot open " << out;
  for (const std::string& line : run.trace) {
    std::fputs(line.c_str(), f);
    std::fputc('\n', f);
  }
  std::fputs(run.digest.c_str(), f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Async / semi-async server policies
// ---------------------------------------------------------------------------

TEST(RuntimeConfig, RejectsOutOfRangeAsyncKnobs) {
  auto bad = [](auto mutate) {
    RuntimeConfig c;
    mutate(&c);
    return !ValidateRuntimeConfig(c).ok();
  };
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->async_alpha0 = 0.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->async_alpha0 = 1.5; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->async_staleness_exponent = -0.1; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->semi_async_tiers = 0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->speed_ewma_beta = 0.0; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->speed_ewma_beta = 1.5; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->adaptive_deadline_quantile = -0.1; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->adaptive_deadline_quantile = 1.0; }));
  // The async policies validate with their defaults.
  for (RoundPolicy p : {RoundPolicy::kAsync, RoundPolicy::kSemiAsync}) {
    RuntimeConfig c;
    c.policy = p;
    EXPECT_TRUE(ValidateRuntimeConfig(c).ok());
  }
}

TEST(FederatedRuntime, AsyncQuorumClosesWaveBeforeStraggler) {
  // Four clients with uplink latencies 1/2/3/50 s and a 0.5 quorum: the
  // wave must close at the second arrival (t=2) while the straggler's
  // update is still applied — with the highest staleness.
  const int n = 4;
  RuntimeConfig c;
  c.policy = RoundPolicy::kAsync;
  c.target_fraction = 0.5;
  c.up_links.resize(n);
  for (int i = 0; i < n; ++i) c.up_links[i].latency_s = 1.0 + i;
  c.up_links[3].latency_s = 50.0;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 256.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 256.0, up, train);
  EXPECT_DOUBLE_EQ(out.end_time_s, 2.0);
  EXPECT_EQ(out.delivered, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_EQ(out.applied.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out.applied[static_cast<size_t>(i)].client, i);
    EXPECT_EQ(out.applied[static_cast<size_t>(i)].staleness, i);
    EXPECT_EQ(out.applied[static_cast<size_t>(i)].tier, -1);
  }
  // Application order follows arrival times.
  for (size_t i = 1; i < out.applied.size(); ++i) {
    EXPECT_LE(out.applied[i - 1].arrival_s, out.applied[i].arrival_s);
  }
  EXPECT_EQ(out.late_updates, 0);
  EXPECT_EQ(out.duplicate_deliveries, 0);
}

TEST(FederatedRuntime, AsyncLossesAreNeverRetried) {
  // Fire-and-forget uplinks: losses stay lost even with retry knobs set.
  const int n = 8;
  RuntimeConfig c;
  c.policy = RoundPolicy::kAsync;
  c.target_fraction = 0.5;
  c.max_retries = 5;
  c.retry_timeout_s = 1.0;
  c.default_up.loss_prob = 0.5;
  c.default_up.latency_s = 0.1;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 256.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 256.0, up, train);
  EXPECT_GT(out.lost_updates, 0);
  EXPECT_EQ(out.retransmissions, 0);
  EXPECT_EQ(out.retransmit_bytes, 0.0);
  EXPECT_EQ(out.applied.size(), out.delivered.size());
  EXPECT_EQ(out.applied.size() + static_cast<size_t>(out.lost_updates),
            static_cast<size_t>(n));
}

TEST(FederatedRuntime, SemiAsyncFlushesTiersAsMiniBatches) {
  // First wave: no speed estimates, so the 6 clients chunk by index into
  // 3 tiers. Latencies 1..6 s make each tier complete in order; every
  // member of a tier shares the tier's staleness (= tiers applied before).
  const int n = 6;
  RuntimeConfig c;
  c.policy = RoundPolicy::kSemiAsync;
  c.semi_async_tiers = 3;
  c.up_links.resize(n);
  for (int i = 0; i < n; ++i) c.up_links[i].latency_s = 1.0 + i;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 256.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 256.0, up, train);
  ASSERT_EQ(out.applied.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    const UpdateApplication& u = out.applied[i];
    EXPECT_EQ(u.client, static_cast<int>(i));       // arrival order
    EXPECT_EQ(u.tier, static_cast<int>(i / 2));     // index chunking
    EXPECT_EQ(u.staleness, static_cast<int>(i / 2));  // shared per tier
  }
  // Full quorum: the wave closes when the last tier flushes (t=6).
  EXPECT_DOUBLE_EQ(out.end_time_s, 6.0);
}

TEST(FederatedRuntime, SemiAsyncLearnsToDemoteStragglers) {
  // Client 0 is the slowest (10 s RTT) but lands in the first tier of the
  // blind first wave, stalling it. After one round of EWMA observations
  // the scheduler must move client 0 into the last tier.
  const int n = 6;
  RuntimeConfig c;
  c.policy = RoundPolicy::kSemiAsync;
  c.semi_async_tiers = 3;
  c.up_links.resize(n);
  c.up_links[0].latency_s = 10.0;
  for (int i = 1; i < n; ++i) c.up_links[i].latency_s = static_cast<double>(i);
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 256.0), train(n, 0.0);
  auto tier_of_client0 = [](const RoundOutcome& out) {
    for (const UpdateApplication& u : out.applied) {
      if (u.client == 0) return u.tier;
    }
    return -2;
  };
  const RoundOutcome r0 = rt.ExecuteRound(0, 256.0, up, train);
  EXPECT_EQ(tier_of_client0(r0), 0);  // blind wave: tiered by index
  const RoundOutcome r1 = rt.ExecuteRound(1, 256.0, up, train);
  EXPECT_EQ(tier_of_client0(r1), 2);  // informed wave: demoted to last
  // Demotion unblocks the fast tiers: the first application of wave 1
  // happens much earlier after the wave starts than in wave 0.
  ASSERT_FALSE(r0.applied.empty());
  ASSERT_FALSE(r1.applied.empty());
  EXPECT_LT(r1.applied.front().arrival_s - r1.start_time_s,
            r0.applied.front().arrival_s - r0.start_time_s);
}

TEST(FederatedRuntime, AsyncBeatsTimeoutRetryOnSimTimeUnderFaults) {
  // At 35% uplink loss with a 4x straggler, the quorum-based async
  // policies should finish their waves well before timeout+retry finishes
  // chasing every update with backed-off retransmissions.
  auto total_time = [](RoundPolicy policy) {
    const int n = 8;
    RuntimeConfig c;
    c.policy = policy;
    c.target_fraction = policy == RoundPolicy::kTimeoutRetry ? 1.0 : 0.8;
    c.retry_timeout_s = 2.0;
    c.max_retries = 6;
    c.default_up.loss_prob = 0.35;
    c.default_up.latency_s = 0.1;
    c.faults.resize(n);
    c.faults[2].slowdown = 4.0;
    c.train_seconds_per_graph = 0.01;
    FederatedRuntime rt(c, n);
    const std::vector<double> up(n, 2048.0), train(n, 1.0);
    for (int r = 0; r < 5; ++r) rt.ExecuteRound(r, 2048.0, up, train);
    return rt.now();
  };
  const double t_retry = total_time(RoundPolicy::kTimeoutRetry);
  const double t_async = total_time(RoundPolicy::kAsync);
  const double t_semi = total_time(RoundPolicy::kSemiAsync);
  EXPECT_LT(t_async, t_retry);
  EXPECT_LT(t_semi, t_retry);
}

TEST(FederatedRuntime, AdaptiveDeadlineTightensAfterWarmup) {
  // Round 0 runs on the generous seed deadline; once arrival offsets are
  // observed the 0.9-quantile deadline collapses to the true ~1 s RTT.
  const int n = 4;
  RuntimeConfig c;
  c.policy = RoundPolicy::kDeadline;
  c.deadline_s = 50.0;
  c.adaptive_deadline_quantile = 0.9;
  c.default_up.latency_s = 1.0;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 256.0), train(n, 0.0);
  const RoundOutcome r0 = rt.ExecuteRound(0, 256.0, up, train);
  EXPECT_DOUBLE_EQ(r0.effective_deadline_s, 50.0);
  EXPECT_DOUBLE_EQ(r0.end_time_s - r0.start_time_s, 50.0);
  EXPECT_EQ(r0.delivered.size(), static_cast<size_t>(n));
  const RoundOutcome r1 = rt.ExecuteRound(1, 256.0, up, train);
  EXPECT_DOUBLE_EQ(r1.effective_deadline_s, 1.0);
  EXPECT_DOUBLE_EQ(r1.end_time_s - r1.start_time_s, 1.0);
  // Arrivals land exactly on the tightened deadline, not beyond it.
  EXPECT_EQ(r1.delivered.size(), static_cast<size_t>(n));
  EXPECT_EQ(r1.late_updates, 0);
}

TEST(FederatedRuntime, DeadlineSelectionNeverInvitesTwice) {
  // Regression: over-selection under heavy crash/rejoin churn must yield
  // a strictly increasing (hence duplicate-free) participant list every
  // round — a client rejoining mid-selection must not be drawn twice.
  const int n = 10;
  RuntimeConfig c;
  c.policy = RoundPolicy::kDeadline;
  c.deadline_s = 10.0;
  c.target_fraction = 0.5;
  c.over_selection = 1.6;
  c.default_fault.crash_prob = 0.5;
  c.default_fault.rejoin_rounds = 1;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 64.0), train(n, 0.0);
  for (int r = 0; r < 12; ++r) {
    const RoundOutcome out = rt.ExecuteRound(r, 64.0, up, train);
    for (size_t i = 1; i < out.participants.size(); ++i) {
      EXPECT_LT(out.participants[i - 1], out.participants[i])
          << "round " << r << " selected a client twice";
    }
  }
}

TEST(FederatedRuntime, AsyncTraceIsStableAcrossReruns) {
  for (RoundPolicy policy : {RoundPolicy::kAsync, RoundPolicy::kSemiAsync}) {
    RuntimeConfig c;
    c.policy = policy;
    c.target_fraction = 0.8;
    c.record_trace = true;
    c.default_up.latency_s = 0.5;
    c.default_up.jitter_s = 0.2;
    c.default_up.loss_prob = 0.2;
    auto run = [&] {
      FederatedRuntime rt(c, 5);
      const std::vector<double> up(5, 256.0), train(5, 1.0);
      rt.ExecuteRound(0, 256.0, up, train);
      rt.ExecuteRound(1, 256.0, up, train);
      return rt.trace();
    };
    const std::vector<std::string> t1 = run();
    const std::vector<std::string> t2 = run();
    ASSERT_FALSE(t1.empty());
    EXPECT_EQ(t1, t2);
  }
}

// ---------------------------------------------------------------------------
// Async policies end-to-end: simulator integration + thread-count parity
// ---------------------------------------------------------------------------

// The faulty runtime configuration under an async server policy: priced
// lossy links, one straggler, one crash-prone client, no retries (async
// uplinks are fire-and-forget).
RuntimeConfig AsyncFaultyConfig(RoundPolicy policy, uint64_t seed) {
  RuntimeConfig rc = FaultyRuntimeConfig();
  rc.policy = policy;
  rc.target_fraction = 0.8;
  rc.seed = seed;
  return rc;
}

ParityRun RunAsyncWithThreads(RoundPolicy policy, int threads, uint64_t seed) {
  const Fixture& f = Fixture::Get();
  parallel::SetThreads(static_cast<size_t>(threads));
  FlConfig fc = f.fc;
  fc.threads = threads;
  fc.seed = 59 + seed;
  fc.runtime = AsyncFaultyConfig(policy, 0x7E57AB1EULL + seed);
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  ParityRun run;
  run.digest = ResultDigest(sim.Run(FlAlgorithm::kFedAvg).value());
  run.trace = sim.runtime_trace();
  parallel::SetThreads(0);
  return run;
}

TEST(FederatedSimulatorRuntime, AsyncRunRecordsStalenessTelemetry) {
  const Fixture& f = Fixture::Get();
  FlConfig fc = f.fc;
  fc.runtime = AsyncFaultyConfig(RoundPolicy::kAsync, 0x7E57AB1EULL);
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  const FlResult res = sim.Run(FlAlgorithm::kFedAvg).value();
  EXPECT_GT(res.total_sim_time_s, 0.0);
  EXPECT_EQ(res.total_retransmit_bytes, 0.0);
  ASSERT_FALSE(res.staleness_hist.empty());
  uint64_t applied = 0;
  for (uint64_t b : res.staleness_hist) applied += b;
  EXPECT_GT(applied, 0u);
  for (const FlRoundStats& r : res.rounds) {
    EXPECT_GE(r.mean_staleness, 0.0);
  }
}

TEST(FederatedSimulatorRuntime, AsyncRunIsBitIdenticalAcrossThreadCounts) {
  for (RoundPolicy policy : {RoundPolicy::kAsync, RoundPolicy::kSemiAsync}) {
    const ParityRun r1 = RunAsyncWithThreads(policy, 1, 0);
    const ParityRun r4 = RunAsyncWithThreads(policy, 4, 0);
    ASSERT_FALSE(r1.trace.empty());
    EXPECT_EQ(r1.trace, r4.trace) << RoundPolicyName(policy);
    EXPECT_EQ(r1.digest, r4.digest) << RoundPolicyName(policy);
  }
}

TEST(FederatedSimulatorRuntime, AsyncSeedSweepStaysDeterministic) {
  // Distinct seeds reshuffle losses, stragglers, and crashes; each seed
  // must still be bit-identical across thread counts, and different seeds
  // must actually produce different executions.
  std::vector<std::string> digests;
  for (uint64_t seed : {1ull, 2ull}) {
    const ParityRun r1 = RunAsyncWithThreads(RoundPolicy::kSemiAsync, 1, seed);
    const ParityRun r4 = RunAsyncWithThreads(RoundPolicy::kSemiAsync, 4, seed);
    EXPECT_EQ(r1.trace, r4.trace) << "seed " << seed;
    EXPECT_EQ(r1.digest, r4.digest) << "seed " << seed;
    digests.push_back(r1.digest);
  }
  EXPECT_NE(digests[0], digests[1]);
}

// CI hook (ci/run_tests.sh stage "async-policy thread-count parity"): when
// FEXIOT_ASYNC_TRACE_OUT is set, dump the event traces + result digests of
// both async policies under the ambient FEXIOT_THREADS so two processes
// with different thread counts can be diffed byte-for-byte.
TEST(AsyncRuntimeParity, WritesTraceArtifact) {
  const char* out = std::getenv("FEXIOT_ASYNC_TRACE_OUT");
  if (!out) GTEST_SKIP() << "FEXIOT_ASYNC_TRACE_OUT not set";
  int threads = 0;
  if (const char* env = std::getenv("FEXIOT_THREADS")) threads = std::atoi(env);
  std::FILE* f = std::fopen(out, "wb");
  ASSERT_NE(f, nullptr) << "cannot open " << out;
  for (RoundPolicy policy : {RoundPolicy::kAsync, RoundPolicy::kSemiAsync}) {
    const ParityRun run =
        RunAsyncWithThreads(policy, threads > 0 ? threads : 1, 0);
    std::fprintf(f, "== policy %s ==\n", RoundPolicyName(policy));
    for (const std::string& line : run.trace) {
      std::fputs(line.c_str(), f);
      std::fputc('\n', f);
    }
    std::fputs(run.digest.c_str(), f);
  }
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Hierarchical aggregation topology
// ---------------------------------------------------------------------------

TEST(RuntimeConfig, RejectsOutOfRangeTopologyKnobs) {
  auto bad = [](auto mutate) {
    RuntimeConfig c;
    mutate(&c);
    return !ValidateRuntimeConfig(c).ok();
  };
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->topology.edge_fanout = -1; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->topology.regional_fanout = -2; }));
  // A regional tier without an edge tier is meaningless.
  EXPECT_TRUE(bad([](RuntimeConfig* c) { c->topology.regional_fanout = 4; }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->topology.edge_fanout = 4;
    c->topology.aggregator_crash_prob = 1.0;
  }));
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->topology.edge_fanout = 4;
    c->topology.aggregator_rejoin_rounds = 0;
  }));
  // Interior links are a reliable backbone: per-transfer loss is rejected.
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->topology.edge_fanout = 4;
    c->topology.edge_up.loss_prob = 0.1;
  }));
  // The tree composes only with the round-based sync/deadline policies.
  for (RoundPolicy p : {RoundPolicy::kTimeoutRetry, RoundPolicy::kAsync,
                        RoundPolicy::kSemiAsync}) {
    EXPECT_TRUE(bad([p](RuntimeConfig* c) {
      c->policy = p;
      c->topology.edge_fanout = 4;
    }));
  }
  EXPECT_TRUE(bad([](RuntimeConfig* c) {
    c->policy = RoundPolicy::kDeadline;
    c->deadline_s = 2.0;
    c->adaptive_deadline_quantile = 0.9;
    c->topology.edge_fanout = 4;
  }));
  // The sync + deadline policies validate with a two-tier tree.
  for (RoundPolicy p : {RoundPolicy::kSynchronous, RoundPolicy::kDeadline}) {
    RuntimeConfig c;
    c.policy = p;
    c.deadline_s = p == RoundPolicy::kDeadline ? 2.0 : 0.0;
    c.topology.edge_fanout = 4;
    c.topology.regional_fanout = 2;
    EXPECT_TRUE(ValidateRuntimeConfig(c).ok()) << RoundPolicyName(p);
  }
}

// Per-hop byte oracle against hand-computed message sizes: 6 clients at
// 100 B each, edge fan-out 2 (3 edges), regional fan-out 2 (2 regionals).
// hop0 = 6 * 100, hop1 = 3 forwards * 100, hop2 = 2 forwards * 100; with
// uplink latency 1 s and interior latencies 0.5 / 0.25 s the last root
// arrival lands at exactly 1.75 s.
TEST(FederatedRuntime, TreePerHopBytesMatchHandComputedSizes) {
  const int n = 6;
  RuntimeConfig c;
  c.default_up.latency_s = 1.0;
  c.topology.edge_fanout = 2;
  c.topology.regional_fanout = 2;
  c.topology.edge_up.latency_s = 0.5;
  c.topology.regional_up.latency_s = 0.25;
  FederatedRuntime rt(c, n);
  const std::vector<double> up(n, 100.0), train(n, 0.0);
  const RoundOutcome out = rt.ExecuteRound(0, 100.0, up, train);
  EXPECT_EQ(out.participants, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(out.delivered, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  ASSERT_EQ(out.hop_bytes.size(), 3u);
  EXPECT_DOUBLE_EQ(out.hop_bytes[0], 600.0);
  EXPECT_DOUBLE_EQ(out.hop_bytes[1], 300.0);
  EXPECT_DOUBLE_EQ(out.hop_bytes[2], 200.0);
  EXPECT_EQ(out.aggregator_crashes, 0);
  EXPECT_EQ(out.subtree_lost_updates, 0);
  EXPECT_DOUBLE_EQ(out.end_time_s, 1.75);
}

// Tree vs flat result parity on the seed corpus: with a reliable tree the
// delivered sets match the flat topology, so aggregation — and therefore
// every client metric — is bit-identical; only the timing and the per-hop
// communication accounting differ.
TEST(FederatedSimulatorRuntime, TreeMatchesFlatResultsOnSeedCorpus) {
  const Fixture& f = Fixture::Get();
  auto run = [&](bool tree) {
    FlConfig fc = f.fc;
    fc.runtime.default_up.latency_s = 0.1;
    if (tree) {
      fc.runtime.topology.edge_fanout = 2;
      fc.runtime.topology.edge_up.latency_s = 0.5;
    }
    FederatedSimulator sim(f.gc, fc);
    sim.SetupClients(f.corpus.data, f.corpus.partition,
                     f.corpus.cluster_tests);
    return sim.Run(FlAlgorithm::kFedAvg).value();
  };
  const FlResult flat = run(false);
  const FlResult tree = run(true);
  ASSERT_EQ(flat.client_metrics.size(), tree.client_metrics.size());
  for (size_t c = 0; c < flat.client_metrics.size(); ++c) {
    EXPECT_EQ(flat.client_metrics[c].accuracy, tree.client_metrics[c].accuracy);
    EXPECT_EQ(flat.client_metrics[c].f1, tree.client_metrics[c].f1);
  }
  EXPECT_EQ(flat.total_comm_bytes, tree.total_comm_bytes);
  ASSERT_EQ(flat.rounds.size(), tree.rounds.size());
  for (size_t r = 0; r < flat.rounds.size(); ++r) {
    EXPECT_EQ(flat.rounds[r].delivered, tree.rounds[r].delivered);
    EXPECT_TRUE(flat.rounds[r].hop_comm_bytes.empty());
    // 4 clients, edge fan-out 2, no regional tier -> 2-tier hop vector.
    ASSERT_EQ(tree.rounds[r].hop_comm_bytes.size(), 2u);
    EXPECT_GT(tree.rounds[r].hop_comm_bytes[0], 0.0);
    EXPECT_GT(tree.rounds[r].hop_comm_bytes[1], 0.0);
  }
  // Interior forwarding costs simulated time on top of the flat path.
  EXPECT_GT(tree.total_sim_time_s, flat.total_sim_time_s);
}

// Aggregator crash mid-round: the crashed edge's whole subtree is lost
// for the round, yet the round still closes at the fixed deadline.
TEST(FederatedSimulatorRuntime, AggregatorCrashDropsSubtreeButRoundCloses) {
  const Fixture& f = Fixture::Get();
  FlConfig fc = f.fc;
  fc.num_rounds = 6;
  fc.runtime.policy = RoundPolicy::kDeadline;
  fc.runtime.deadline_s = 4.0;
  fc.runtime.default_up.latency_s = 0.1;
  fc.runtime.topology.edge_fanout = 2;
  fc.runtime.topology.aggregator_crash_prob = 0.6;
  fc.runtime.topology.aggregator_rejoin_rounds = 1;
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  const FlResult res = sim.Run(FlAlgorithm::kFedAvg).value();
  int crashes = 0, subtree_lost = 0, partial_rounds = 0;
  for (const FlRoundStats& r : res.rounds) {
    crashes += r.aggregator_crashes;
    subtree_lost += r.subtree_lost_updates;
    if (r.delivered < r.participants) ++partial_rounds;
    EXPECT_GE(r.delivered, 0);
  }
  // p=0.6 over 2 edges x 6 rounds: some crash is (overwhelmingly) drawn.
  EXPECT_GT(crashes, 0);
  EXPECT_GT(subtree_lost, 0);
  EXPECT_GT(partial_rounds, 0);
  // Crashes never wedge the round: every round closes at the deadline.
  EXPECT_DOUBLE_EQ(res.total_sim_time_s, 6 * 4.0);
  // Crash/rejoin draws are counter-based: a rerun reproduces them exactly.
  FederatedSimulator sim2(f.gc, fc);
  sim2.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  const FlResult res2 = sim2.Run(FlAlgorithm::kFedAvg).value();
  for (size_t r = 0; r < res.rounds.size(); ++r) {
    EXPECT_EQ(res.rounds[r].aggregator_crashes,
              res2.rounds[r].aggregator_crashes);
    EXPECT_EQ(res.rounds[r].subtree_lost_updates,
              res2.rounds[r].subtree_lost_updates);
    EXPECT_EQ(res.rounds[r].delivered, res2.rounds[r].delivered);
  }
}

// A faulty + tree runtime configuration for the thread-parity stage:
// deadline rounds over a crash-prone three-tier tree with priced, jittery
// interior links on top of the lossy client links.
RuntimeConfig TreeRuntimeConfig() {
  RuntimeConfig rc;
  rc.policy = RoundPolicy::kDeadline;
  rc.deadline_s = 6.0;
  rc.train_seconds_per_graph = 0.01;
  rc.default_down.latency_s = 0.05;
  rc.default_down.bandwidth_bps = 1e6;
  rc.default_up.latency_s = 0.1;
  rc.default_up.bandwidth_bps = 5e5;
  rc.default_up.jitter_s = 0.02;
  rc.default_up.loss_prob = 0.2;
  rc.topology.edge_fanout = 2;
  rc.topology.regional_fanout = 2;
  rc.topology.edge_up.latency_s = 0.2;
  rc.topology.edge_up.bandwidth_bps = 1e6;
  rc.topology.edge_up.jitter_s = 0.05;
  rc.topology.regional_up.latency_s = 0.1;
  rc.topology.aggregator_crash_prob = 0.25;
  rc.topology.aggregator_rejoin_rounds = 2;
  rc.faults.resize(4);
  rc.faults[2].slowdown = 4.0;
  rc.record_trace = true;
  return rc;
}

ParityRun RunTreeWithThreads(int threads) {
  const Fixture& f = Fixture::Get();
  parallel::SetThreads(static_cast<size_t>(threads));
  FlConfig fc = f.fc;
  fc.threads = threads;
  fc.runtime = TreeRuntimeConfig();
  FederatedSimulator sim(f.gc, fc);
  sim.SetupClients(f.corpus.data, f.corpus.partition, f.corpus.cluster_tests);
  ParityRun run;
  run.digest = ResultDigest(sim.Run(FlAlgorithm::kFedAvg).value());
  run.trace = sim.runtime_trace();
  parallel::SetThreads(0);
  return run;
}

TEST(FederatedSimulatorRuntime, TreeRunIsBitIdenticalAcrossThreadCounts) {
  const ParityRun r1 = RunTreeWithThreads(1);
  const ParityRun r4 = RunTreeWithThreads(4);
  ASSERT_FALSE(r1.trace.empty());
  EXPECT_EQ(r1.trace, r4.trace);
  EXPECT_EQ(r1.digest, r4.digest);
}

// CI hook (ci/run_tests.sh stage "runtime thread-count parity"): when
// FEXIOT_TREE_TRACE_OUT is set, dump the event trace + result digest of
// the tree-topology run under the ambient FEXIOT_THREADS so two processes
// with different thread counts can be diffed byte-for-byte.
TEST(TreeRuntimeParity, WritesTraceArtifact) {
  const char* out = std::getenv("FEXIOT_TREE_TRACE_OUT");
  if (!out) GTEST_SKIP() << "FEXIOT_TREE_TRACE_OUT not set";
  int threads = 0;
  if (const char* env = std::getenv("FEXIOT_THREADS")) threads = std::atoi(env);
  const ParityRun run = RunTreeWithThreads(threads > 0 ? threads : 1);
  std::FILE* f = std::fopen(out, "wb");
  ASSERT_NE(f, nullptr) << "cannot open " << out;
  for (const std::string& line : run.trace) {
    std::fputs(line.c_str(), f);
    std::fputc('\n', f);
  }
  std::fputs(run.digest.c_str(), f);
  std::fclose(f);
}

}  // namespace
}  // namespace fexiot
