#include <gtest/gtest.h>

#include <set>

#include "explain/explainer.h"
#include "explain/shap.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "ml/linear_model.h"

namespace fexiot {
namespace {

// A trained detection model over a small corpus, shared by the tests.
struct Fixture {
  GnnConfig gc;
  GnnModel model;
  SgdClassifier head;
  GraphCorpusGenerator gen;
  Rng rng;

  static Fixture& Get() {
    static Fixture f;
    return f;
  }

  Fixture()
      : gc([] {
          GnnConfig c;
          c.type = GnnType::kGin;
          c.hidden_dim = 12;
          c.embedding_dim = 12;
          return c;
        }()),
        model(gc),
        gen([] {
          CorpusOptions opt;
          opt.platforms = {Platform::kIfttt};
          opt.min_nodes = 5;
          opt.max_nodes = 9;
          opt.vulnerable_fraction = 0.5;
          opt.extraction_noise = 0.0;
          return opt;
        }(), &StaticRng()),
        rng(55) {
    GraphDataset train(gen.GenerateDataset(120));
    TrainConfig tc;
    tc.epochs = 10;
    tc.learning_rate = 0.02;
    tc.margin = 3.0;
    GnnTrainer trainer(&model, tc);
    const auto prepared = PrepareDataset(train, gc);
    trainer.Train(prepared, &rng);
    std::vector<int> y = train.Labels();
    const Status st = head.Fit(trainer.Embed(prepared), y);
    EXPECT_TRUE(st.ok());
  }

  static Rng& StaticRng() {
    static Rng rng(5556);
    return rng;
  }
};

TEST(GnnGraphScorer, ScoresAreProbabilities) {
  Fixture& f = Fixture::Get();
  const InteractionGraph g =
      f.gen.GenerateVulnerable(VulnerabilityType::kActionConflict);
  GnnGraphScorer scorer(&f.model, &f.head, &g);
  std::vector<int> all;
  for (int i = 0; i < g.num_nodes(); ++i) all.push_back(i);
  const double full = scorer.Score(all);
  const double empty = scorer.Score({});
  EXPECT_GE(full, 0.0);
  EXPECT_LE(full, 1.0);
  EXPECT_GE(empty, 0.0);
  EXPECT_LE(empty, 1.0);
  EXPECT_EQ(scorer.evaluations(), 2);
}

TEST(KernelShap, LinearGameRecoversMarginals) {
  // Synthetic check on a simple graph: removing the witness should matter
  // more than removing a filler node, and the SHAP value of the witness
  // subgraph should exceed that of a random benign subgraph.
  Fixture& f = Fixture::Get();
  const InteractionGraph g =
      f.gen.GenerateVulnerable(VulnerabilityType::kActionLoop);
  ASSERT_GE(g.num_nodes(), 4);
  GnnGraphScorer scorer(&f.model, &f.head, &g);
  KernelShap shap(KernelShap::Options{32, 77});
  Rng rng(78);
  const double witness_phi = shap.SubgraphShap(scorer, g.witness(), &rng);
  // A singleton far from the witness.
  std::set<int> witness(g.witness().begin(), g.witness().end());
  int filler = -1;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (!witness.count(i)) filler = i;
  }
  ASSERT_GE(filler, 0);
  const double filler_phi = shap.SubgraphShap(scorer, {filler}, &rng);
  EXPECT_GT(witness_phi, filler_phi - 0.05);
}

class ExplainerRun : public ::testing::TestWithParam<int> {};

TEST_P(ExplainerRun, ReturnsConnectedBoundedSubgraph) {
  Fixture& f = Fixture::Get();
  SearchOptions opt;
  opt.iterations = 3;
  opt.beam_width = 2;
  opt.max_subgraph_nodes = 3;
  opt.shap_samples = 8;
  std::unique_ptr<Explainer> explainer;
  switch (GetParam()) {
    case 0: explainer = std::make_unique<ShapMcbsExplainer>(opt); break;
    case 1: explainer = std::make_unique<SubgraphXExplainer>(opt); break;
    default: explainer = std::make_unique<MctsGnnExplainer>(opt); break;
  }
  for (int trial = 0; trial < 3; ++trial) {
    const InteractionGraph g =
        f.gen.GenerateVulnerable(f.gen.SampleVulnerabilityType());
    GnnGraphScorer scorer(&f.model, &f.head, &g);
    const ExplanationResult res = explainer->Explain(scorer, &f.rng);
    ASSERT_FALSE(res.subgraph_nodes.empty());
    EXPECT_LE(res.subgraph_nodes.size(), 3u + 1u);  // target or tiny root
    EXPECT_TRUE(g.IsConnectedSubset(res.subgraph_nodes))
        << explainer->Name();
    EXPECT_GT(res.model_evaluations, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllExplainers, ExplainerRun,
                         ::testing::Range(0, 3));

TEST(EvaluateExplanation, FidelitySparsityDefinitions) {
  Fixture& f = Fixture::Get();
  const InteractionGraph g =
      f.gen.GenerateVulnerable(VulnerabilityType::kActionConflict);
  GnnGraphScorer scorer(&f.model, &f.head, &g);
  // Sparsity of a single node = 1 - 1/n.
  const FidelitySparsity fs = EvaluateExplanation(scorer, {0});
  EXPECT_NEAR(fs.sparsity, 1.0 - 1.0 / g.num_nodes(), 1e-12);
  // Removing everything = fidelity of full prediction vs empty baseline.
  std::vector<int> all;
  for (int i = 0; i < g.num_nodes(); ++i) all.push_back(i);
  const FidelitySparsity full = EvaluateExplanation(scorer, all);
  EXPECT_NEAR(full.sparsity, 0.0, 1e-12);
}

TEST(ShapMcbs, RecoversWitnessBetterThanChance) {
  // Aggregate witness recall over several graphs should beat the recall
  // of random subgraphs of the same size.
  Fixture& f = Fixture::Get();
  SearchOptions opt;
  opt.iterations = 4;
  opt.beam_width = 3;
  opt.max_subgraph_nodes = 3;
  opt.shap_samples = 10;
  ShapMcbsExplainer explainer(opt);
  double recall = 0.0, random_recall = 0.0;
  int cases = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const InteractionGraph g =
        f.gen.GenerateVulnerable(f.gen.SampleVulnerabilityType());
    if (g.witness().empty()) continue;
    GnnGraphScorer scorer(&f.model, &f.head, &g);
    const ExplanationResult res = explainer.Explain(scorer, &f.rng);
    const std::set<int> witness(g.witness().begin(), g.witness().end());
    int hit = 0;
    for (int v : res.subgraph_nodes) hit += witness.count(v);
    recall += static_cast<double>(hit) / witness.size();
    // Random subset of equal size.
    const auto idx = f.rng.SampleWithoutReplacement(
        static_cast<size_t>(g.num_nodes()), res.subgraph_nodes.size());
    int rhit = 0;
    for (size_t v : idx) rhit += witness.count(static_cast<int>(v));
    random_recall += static_cast<double>(rhit) / witness.size();
    ++cases;
  }
  ASSERT_GT(cases, 0);
  EXPECT_GE(recall, random_recall);
}

}  // namespace
}  // namespace fexiot
