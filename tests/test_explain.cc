#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>

#include "common/parallel.h"
#include "explain/explainer.h"
#include "explain/shap.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "ml/linear_model.h"

namespace fexiot {
namespace {

// A trained detection model over a small corpus, shared by the tests.
struct Fixture {
  GnnConfig gc;
  GnnModel model;
  SgdClassifier head;
  GraphCorpusGenerator gen;
  Rng rng;

  static Fixture& Get() {
    static Fixture f;
    return f;
  }

  Fixture()
      : gc([] {
          GnnConfig c;
          c.type = GnnType::kGin;
          c.hidden_dim = 12;
          c.embedding_dim = 12;
          return c;
        }()),
        model(gc),
        gen([] {
          CorpusOptions opt;
          opt.platforms = {Platform::kIfttt};
          opt.min_nodes = 5;
          opt.max_nodes = 9;
          opt.vulnerable_fraction = 0.5;
          opt.extraction_noise = 0.0;
          return opt;
        }(), &StaticRng()),
        rng(55) {
    GraphDataset train(gen.GenerateDataset(120));
    TrainConfig tc;
    tc.epochs = 10;
    tc.learning_rate = 0.02;
    tc.margin = 3.0;
    GnnTrainer trainer(&model, tc);
    const auto prepared = PrepareDataset(train, gc);
    trainer.Train(prepared, &rng);
    std::vector<int> y = train.Labels();
    const Status st = head.Fit(trainer.Embed(prepared), y);
    EXPECT_TRUE(st.ok());
  }

  static Rng& StaticRng() {
    static Rng rng(5556);
    return rng;
  }
};

TEST(GnnGraphScorer, ScoresAreProbabilities) {
  Fixture& f = Fixture::Get();
  const InteractionGraph g =
      f.gen.GenerateVulnerable(VulnerabilityType::kActionConflict);
  GnnGraphScorer scorer(&f.model, &f.head, &g);
  std::vector<int> all;
  for (int i = 0; i < g.num_nodes(); ++i) all.push_back(i);
  const double full = scorer.Score(all);
  const double empty = scorer.Score({});
  EXPECT_GE(full, 0.0);
  EXPECT_LE(full, 1.0);
  EXPECT_GE(empty, 0.0);
  EXPECT_LE(empty, 1.0);
  EXPECT_EQ(scorer.evaluations(), 2);
}

TEST(KernelShap, LinearGameRecoversMarginals) {
  // Synthetic check on a simple graph: removing the witness should matter
  // more than removing a filler node, and the SHAP value of the witness
  // subgraph should exceed that of a random benign subgraph.
  Fixture& f = Fixture::Get();
  const InteractionGraph g =
      f.gen.GenerateVulnerable(VulnerabilityType::kActionLoop);
  ASSERT_GE(g.num_nodes(), 4);
  GnnGraphScorer scorer(&f.model, &f.head, &g);
  KernelShap shap(KernelShap::Options{32, 77});
  Rng rng(78);
  const double witness_phi = shap.SubgraphShap(scorer, g.witness(), &rng);
  // A singleton far from the witness.
  std::set<int> witness(g.witness().begin(), g.witness().end());
  int filler = -1;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (!witness.count(i)) filler = i;
  }
  ASSERT_GE(filler, 0);
  const double filler_phi = shap.SubgraphShap(scorer, {filler}, &rng);
  EXPECT_GT(witness_phi, filler_phi - 0.05);
}

class ExplainerRun : public ::testing::TestWithParam<int> {};

TEST_P(ExplainerRun, ReturnsConnectedBoundedSubgraph) {
  Fixture& f = Fixture::Get();
  SearchOptions opt;
  opt.iterations = 3;
  opt.beam_width = 2;
  opt.max_subgraph_nodes = 3;
  opt.shap_samples = 8;
  std::unique_ptr<Explainer> explainer;
  switch (GetParam()) {
    case 0: explainer = std::make_unique<ShapMcbsExplainer>(opt); break;
    case 1: explainer = std::make_unique<SubgraphXExplainer>(opt); break;
    default: explainer = std::make_unique<MctsGnnExplainer>(opt); break;
  }
  for (int trial = 0; trial < 3; ++trial) {
    const InteractionGraph g =
        f.gen.GenerateVulnerable(f.gen.SampleVulnerabilityType());
    GnnGraphScorer scorer(&f.model, &f.head, &g);
    const ExplanationResult res = explainer->Explain(scorer, &f.rng);
    ASSERT_FALSE(res.subgraph_nodes.empty());
    EXPECT_LE(res.subgraph_nodes.size(), 3u + 1u);  // target or tiny root
    EXPECT_TRUE(g.IsConnectedSubset(res.subgraph_nodes))
        << explainer->Name();
    EXPECT_GT(res.model_evaluations, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllExplainers, ExplainerRun,
                         ::testing::Range(0, 3));

TEST(EvaluateExplanation, FidelitySparsityDefinitions) {
  Fixture& f = Fixture::Get();
  const InteractionGraph g =
      f.gen.GenerateVulnerable(VulnerabilityType::kActionConflict);
  GnnGraphScorer scorer(&f.model, &f.head, &g);
  // Sparsity of a single node = 1 - 1/n.
  const FidelitySparsity fs = EvaluateExplanation(scorer, {0});
  EXPECT_NEAR(fs.sparsity, 1.0 - 1.0 / g.num_nodes(), 1e-12);
  // Removing everything = fidelity of full prediction vs empty baseline.
  std::vector<int> all;
  for (int i = 0; i < g.num_nodes(); ++i) all.push_back(i);
  const FidelitySparsity full = EvaluateExplanation(scorer, all);
  EXPECT_NEAR(full.sparsity, 0.0, 1e-12);
}

TEST(ShapMcbs, RecoversWitnessBetterThanChance) {
  // Aggregate witness recall over several graphs should beat the recall
  // of random subgraphs of the same size.
  Fixture& f = Fixture::Get();
  SearchOptions opt;
  opt.iterations = 4;
  opt.beam_width = 3;
  opt.max_subgraph_nodes = 3;
  opt.shap_samples = 10;
  ShapMcbsExplainer explainer(opt);
  double recall = 0.0, random_recall = 0.0;
  int cases = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const InteractionGraph g =
        f.gen.GenerateVulnerable(f.gen.SampleVulnerabilityType());
    if (g.witness().empty()) continue;
    GnnGraphScorer scorer(&f.model, &f.head, &g);
    const ExplanationResult res = explainer.Explain(scorer, &f.rng);
    const std::set<int> witness(g.witness().begin(), g.witness().end());
    int hit = 0;
    for (int v : res.subgraph_nodes) hit += witness.count(v);
    recall += static_cast<double>(hit) / witness.size();
    // Random subset of equal size.
    const auto idx = f.rng.SampleWithoutReplacement(
        static_cast<size_t>(g.num_nodes()), res.subgraph_nodes.size());
    int rhit = 0;
    for (size_t v : idx) rhit += witness.count(static_cast<int>(v));
    random_recall += static_cast<double>(rhit) / witness.size();
    ++cases;
  }
  ASSERT_GT(cases, 0);
  EXPECT_GE(recall, random_recall);
}

std::unique_ptr<Explainer> MakeExplainer(int kind, const SearchOptions& opt) {
  switch (kind) {
    case 0: return std::make_unique<ShapMcbsExplainer>(opt);
    case 1: return std::make_unique<SubgraphXExplainer>(opt);
    default: return std::make_unique<MctsGnnExplainer>(opt);
  }
}

/// A seed-pinned vulnerable graph, independent of the shared fixture's rng
/// position (the parity tests regenerate the identical graph per run).
InteractionGraph MakeGraph(uint64_t seed, VulnerabilityType type) {
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 5;
  opt.max_nodes = 9;
  opt.vulnerable_fraction = 0.5;
  opt.extraction_noise = 0.0;
  Rng rng(seed);
  GraphCorpusGenerator gen(opt, &rng);
  return gen.GenerateVulnerable(type);
}

TEST(GnnGraphScorer, ScoreBatchMatchesSequentialScoreBitwise) {
  Fixture& f = Fixture::Get();
  const InteractionGraph g =
      f.gen.GenerateVulnerable(VulnerabilityType::kConditionBypass);
  // A ragged batch: empty set, full graph, singletons, mid-sized subsets,
  // and an exact duplicate.
  std::vector<int> all;
  for (int i = 0; i < g.num_nodes(); ++i) all.push_back(i);
  std::vector<std::vector<int>> sets = {
      {}, all, {0}, {1}, {0, 1, 2}, {0, 1, 2}, {2, 3}, all};
  // Reference: one fresh scorer, sequential Score calls.
  GnnGraphScorer seq(&f.model, &f.head, &g);
  std::vector<double> expected;
  for (const auto& s : sets) expected.push_back(seq.Score(s));
  // One batched call on another fresh scorer.
  GnnGraphScorer batched(&f.model, &f.head, &g);
  std::vector<double> got;
  batched.ScoreBatch(sets, &got);
  ASSERT_EQ(got.size(), sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(expected[i], got[i]) << "set " << i;  // bitwise
  }
  // Counting contract: 6 distinct subsets, 8 queries, exact invariant.
  EXPECT_EQ(batched.evaluations(), 6);
  EXPECT_EQ(batched.queries(), 8);
  EXPECT_EQ(batched.queries(), batched.evaluations() + batched.memo_hits());
  // A second identical batch is served entirely from the memo.
  batched.ScoreBatch(sets, &got);
  EXPECT_EQ(batched.evaluations(), 6);
  for (size_t i = 0; i < sets.size(); ++i) EXPECT_EQ(expected[i], got[i]);
  // Single-element batches take the sequential fallback path.
  std::vector<double> lone;
  GnnGraphScorer single(&f.model, &f.head, &g);
  single.ScoreBatch({{1, 2}}, &lone);
  EXPECT_EQ(lone[0], seq.Score({1, 2}));
  EXPECT_EQ(single.evaluations(), 1);
}

TEST(ParallelSearch, ThreadCountDoesNotChangeExplanationBits) {
  Fixture& f = Fixture::Get();
  SearchOptions opt;
  opt.iterations = 6;
  opt.beam_width = 3;
  opt.max_subgraph_nodes = 3;
  opt.shap_samples = 8;
  opt.rollout_slots = 4;
  for (const uint64_t seed : {101u, 202u, 303u}) {
    const InteractionGraph g =
        MakeGraph(seed, VulnerabilityType::kActionConflict);
    for (int kind = 0; kind < 3; ++kind) {
      struct Run {
        std::vector<int> nodes;
        double score, fidelity, sparsity;
        int evaluations;
      };
      auto run_at = [&](size_t threads) {
        parallel::SetThreads(threads);
        GnnGraphScorer scorer(&f.model, &f.head, &g);
        auto explainer = MakeExplainer(kind, opt);
        Rng rng(seed * 7 + static_cast<uint64_t>(kind));
        const ExplanationResult res = explainer->Explain(scorer, &rng);
        const FidelitySparsity fs =
            EvaluateExplanation(scorer, res.subgraph_nodes);
        parallel::SetThreads(0);
        return Run{res.subgraph_nodes, res.score, fs.fidelity, fs.sparsity,
                   scorer.evaluations()};
      };
      const Run t1 = run_at(1);
      for (const size_t threads : {2u, 4u}) {
        const Run tn = run_at(threads);
        EXPECT_EQ(t1.nodes, tn.nodes)
            << "kind=" << kind << " seed=" << seed << " t=" << threads;
        EXPECT_EQ(t1.score, tn.score);            // bitwise
        EXPECT_EQ(t1.fidelity, tn.fidelity);      // bitwise
        EXPECT_EQ(t1.sparsity, tn.sparsity);      // bitwise
        EXPECT_EQ(t1.evaluations, tn.evaluations);
      }
    }
  }
}

TEST(ParallelSearch, TranspositionTableMatchesMemoFreeReference) {
  // Oracle: the memo-free reference search (rewards recomputed at every
  // visit, scorer memo off) must select the same subgraph with the same
  // score bits — the transposition table and score memo only skip
  // recomputation of pure values, never change them.
  Fixture& f = Fixture::Get();
  SearchOptions tt_opt;
  tt_opt.iterations = 8;
  tt_opt.beam_width = 3;
  tt_opt.max_subgraph_nodes = 3;
  tt_opt.shap_samples = 8;
  tt_opt.rollout_slots = 4;
  SearchOptions ref_opt = tt_opt;
  ref_opt.reuse_rewards = false;
  for (const uint64_t seed : {11u, 22u, 33u}) {
    const InteractionGraph g =
        MakeGraph(seed, VulnerabilityType::kActionLoop);
    for (int kind = 0; kind < 3; ++kind) {
      GnnGraphScorer tt_scorer(&f.model, &f.head, &g);
      Rng tt_rng(seed + 900 + static_cast<uint64_t>(kind));
      const ExplanationResult tt_res =
          MakeExplainer(kind, tt_opt)->Explain(tt_scorer, &tt_rng);

      GnnGraphScorer ref_scorer(&f.model, &f.head, &g);
      ref_scorer.set_memoize(false);
      Rng ref_rng(seed + 900 + static_cast<uint64_t>(kind));
      const ExplanationResult ref_res =
          MakeExplainer(kind, ref_opt)->Explain(ref_scorer, &ref_rng);

      EXPECT_EQ(tt_res.subgraph_nodes, ref_res.subgraph_nodes)
          << "kind=" << kind << " seed=" << seed;
      EXPECT_EQ(tt_res.score, ref_res.score);  // bitwise
      // The caches must actually fire: the table serves repeat lookups,
      // and the reference pays at least as many model evaluations.
      EXPECT_GT(tt_res.tt_hits, 0) << "kind=" << kind;
      EXPECT_EQ(ref_res.tt_hits, 0) << "kind=" << kind;
      EXPECT_GE(ref_scorer.evaluations(), tt_scorer.evaluations());
      EXPECT_GE(ref_res.subgraphs_scored, tt_res.subgraphs_scored);
    }
  }
}

TEST(ParallelSearch, WritesExplanationDigestArtifact) {
  // CI hook (ci/run_tests.sh explain digest-parity stage): when
  // FEXIOT_EXPLAIN_DIGEST_OUT is set, dump every explanation decision and
  // metric in hexfloat so runs at different FEXIOT_THREADS can be diffed
  // byte-for-byte. Skipped in normal runs.
  const char* out_path = std::getenv("FEXIOT_EXPLAIN_DIGEST_OUT");
  if (out_path == nullptr) {
    GTEST_SKIP() << "set FEXIOT_EXPLAIN_DIGEST_OUT to enable";
  }
  Fixture& f = Fixture::Get();
  SearchOptions opt;
  opt.iterations = 6;
  opt.beam_width = 3;
  opt.max_subgraph_nodes = 3;
  opt.shap_samples = 8;
  opt.rollout_slots = 4;
  std::FILE* out = std::fopen(out_path, "w");
  ASSERT_NE(out, nullptr) << out_path;
  const VulnerabilityType digest_types[3] = {
      VulnerabilityType::kActionConflict, VulnerabilityType::kActionLoop,
      VulnerabilityType::kConditionBypass};
  for (const uint64_t seed : {5u, 6u, 7u}) {
    const InteractionGraph g =
        MakeGraph(seed * 31, digest_types[seed % 3]);
    for (int kind = 0; kind < 3; ++kind) {
      GnnGraphScorer scorer(&f.model, &f.head, &g);
      auto explainer = MakeExplainer(kind, opt);
      Rng rng(seed * 13 + static_cast<uint64_t>(kind));
      const ExplanationResult res = explainer->Explain(scorer, &rng);
      const FidelitySparsity fs =
          EvaluateExplanation(scorer, res.subgraph_nodes);
      std::string nodes;
      for (int v : res.subgraph_nodes) {
        nodes += std::to_string(v);
        nodes += ',';
      }
      std::fprintf(out,
                   "%s seed=%llu nodes=%s score=%a fidelity=%a sparsity=%a "
                   "evals=%d scored=%d waves=%d\n",
                   explainer->Name().c_str(),
                   static_cast<unsigned long long>(seed), nodes.c_str(),
                   res.score, fs.fidelity, fs.sparsity, scorer.evaluations(),
                   res.subgraphs_scored, res.waves);
    }
  }
  std::fclose(out);
}

}  // namespace
}  // namespace fexiot
