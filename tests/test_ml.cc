#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/decision_tree.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "ml/linear_model.h"
#include "ml/mad.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/model_selection.h"
#include "ml/tsne.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

// Two Gaussian blobs, linearly separable.
void MakeBlobs(int n_per_class, double separation, Rng* rng, Matrix* x,
               std::vector<int>* y) {
  x->Resize(2 * static_cast<size_t>(n_per_class), 4);
  y->clear();
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < n_per_class; ++i) {
      const size_t row = static_cast<size_t>(c * n_per_class + i);
      for (size_t d = 0; d < 4; ++d) {
        x->At(row, d) =
            rng->Normal(c == 0 ? -separation : separation, 1.0);
      }
      y->push_back(c);
    }
  }
}

// XOR-style data: only non-linear models solve it.
void MakeXor(int n, Rng* rng, Matrix* x, std::vector<int>* y) {
  x->Resize(static_cast<size_t>(n), 2);
  y->clear();
  for (int i = 0; i < n; ++i) {
    const double a = rng->Uniform(-1, 1);
    const double b = rng->Uniform(-1, 1);
    x->At(static_cast<size_t>(i), 0) = a;
    x->At(static_cast<size_t>(i), 1) = b;
    y->push_back((a > 0) != (b > 0) ? 1 : 0);
  }
}

double TrainAccuracy(Classifier* model, const Matrix& x,
                     const std::vector<int>& y) {
  const Status st = model->Fit(x, y);
  EXPECT_TRUE(st.ok()) << st.ToString();
  const auto preds = model->PredictBatch(x);
  return ComputeMetrics(y, preds).accuracy;
}

TEST(Metrics, ConfusionAndScores) {
  const std::vector<int> labels = {1, 1, 0, 0, 1};
  const std::vector<int> preds = {1, 0, 0, 1, 1};
  const ClassificationMetrics m = ComputeMetrics(labels, preds);
  EXPECT_EQ(m.true_positive, 2);
  EXPECT_EQ(m.false_negative, 1);
  EXPECT_EQ(m.false_positive, 1);
  EXPECT_EQ(m.true_negative, 1);
  EXPECT_NEAR(m.accuracy, 0.6, 1e-12);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
}

TEST(Metrics, BoxStats) {
  const BoxStats b = ComputeBoxStats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.median, 3);
  EXPECT_DOUBLE_EQ(b.max, 5);
  EXPECT_DOUBLE_EQ(b.q1, 2);
  EXPECT_DOUBLE_EQ(b.q3, 4);
}

TEST(Metrics, MedianEvenOdd) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  Rng rng(1);
  const Matrix x = Matrix::RandomNormal(200, 3, 5.0, &rng);
  StandardScaler scaler;
  const Matrix t = scaler.FitTransform(x);
  const Matrix mean = ColumnMean(t);
  for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(mean.At(0, c), 0.0, 1e-9);
}

class LinearSeparableModels
    : public ::testing::TestWithParam<int> {};

TEST_P(LinearSeparableModels, FitBlobs) {
  Rng rng(2);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(60, 1.5, &rng, &x, &y);
  std::unique_ptr<Classifier> model;
  switch (GetParam()) {
    case 0: model = std::make_unique<SgdClassifier>(); break;
    case 1: model = std::make_unique<MlpClassifier>(); break;
    case 2: model = std::make_unique<RandomForestClassifier>(); break;
    case 3: model = std::make_unique<GradientBoostClassifier>(); break;
    default: model = std::make_unique<KnnClassifier>(); break;
  }
  EXPECT_GT(TrainAccuracy(model.get(), x, y), 0.95) << model->Name();
}

INSTANTIATE_TEST_SUITE_P(AllModels, LinearSeparableModels,
                         ::testing::Range(0, 5));

TEST(MlpClassifier, SolvesXor) {
  Rng rng(3);
  Matrix x;
  std::vector<int> y;
  MakeXor(300, &rng, &x, &y);
  MlpClassifier::Options opt;
  opt.epochs = 200;
  MlpClassifier mlp(opt);
  EXPECT_GT(TrainAccuracy(&mlp, x, y), 0.9);
}

TEST(RandomForest, SolvesXor) {
  Rng rng(4);
  Matrix x;
  std::vector<int> y;
  MakeXor(300, &rng, &x, &y);
  RandomForestClassifier rf;
  EXPECT_GT(TrainAccuracy(&rf, x, y), 0.9);
}

TEST(SgdClassifier, RejectsBadInput) {
  SgdClassifier model;
  EXPECT_FALSE(model.Fit(Matrix(3, 2), {0, 1}).ok());
  EXPECT_FALSE(model.Fit(Matrix(), {}).ok());
}

TEST(SgdClassifier, ClassWeightingHandlesImbalance) {
  Rng rng(5);
  // 10:1 imbalance; weighted logistic should still find the minority.
  Matrix x(220, 2);
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    x.At(static_cast<size_t>(i), 0) = rng.Normal(-1.0, 0.5);
    x.At(static_cast<size_t>(i), 1) = rng.Normal(-1.0, 0.5);
    y.push_back(0);
  }
  for (int i = 200; i < 220; ++i) {
    x.At(static_cast<size_t>(i), 0) = rng.Normal(1.0, 0.5);
    x.At(static_cast<size_t>(i), 1) = rng.Normal(1.0, 0.5);
    y.push_back(1);
  }
  SgdClassifier model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  const auto preds = model.PredictBatch(x);
  const ClassificationMetrics m = ComputeMetrics(y, preds);
  EXPECT_GT(m.recall, 0.85);
}

TEST(DecisionTree, RegressionFitsStep) {
  Matrix x(20, 1);
  std::vector<double> y(20);
  for (int i = 0; i < 20; ++i) {
    x.At(static_cast<size_t>(i), 0) = i;
    y[static_cast<size_t>(i)] = i < 10 ? 1.0 : 5.0;
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.FitRegression(x, y).ok());
  EXPECT_NEAR(tree.PredictValue({3.0}), 1.0, 1e-9);
  EXPECT_NEAR(tree.PredictValue({15.0}), 5.0, 1e-9);
}

TEST(IsolationForest, OutlierScoresHigher) {
  Rng rng(6);
  Matrix x(300, 2);
  for (size_t i = 0; i < 300; ++i) {
    x.At(i, 0) = rng.Normal();
    x.At(i, 1) = rng.Normal();
  }
  IsolationForest forest;
  forest.Fit(x);
  const double inlier = forest.Score({0.0, 0.0});
  const double outlier = forest.Score({8.0, -8.0});
  EXPECT_GT(outlier, inlier + 0.1);
  EXPECT_EQ(forest.Predict({8.0, -8.0}), 1);
  EXPECT_EQ(forest.Predict({0.0, 0.0}), 0);
}

TEST(KMeans, RecoversBlobs) {
  Rng rng(7);
  Matrix x(100, 2);
  for (size_t i = 0; i < 100; ++i) {
    const bool second = i >= 50;
    x.At(i, 0) = rng.Normal(second ? 5.0 : -5.0, 0.4);
    x.At(i, 1) = rng.Normal(second ? 5.0 : -5.0, 0.4);
  }
  KMeans::Options opt;
  opt.k = 2;
  const KMeans::Result res = KMeans(opt).Fit(x);
  // All members of a ground-truth blob share a cluster id.
  for (size_t i = 1; i < 50; ++i) {
    EXPECT_EQ(res.assignment[i], res.assignment[0]);
  }
  for (size_t i = 51; i < 100; ++i) {
    EXPECT_EQ(res.assignment[i], res.assignment[50]);
  }
  EXPECT_NE(res.assignment[0], res.assignment[50]);
}

TEST(BinaryClusterSimilarity, SplitsBlockStructure) {
  // Similarity matrix with two blocks {0,1,2} and {3,4,5}.
  Matrix sim(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      const bool same = (i < 3) == (j < 3);
      sim.At(i, j) = same ? 0.9 : 0.1;
    }
  }
  const std::vector<int> split = BinaryClusterSimilarity(sim);
  EXPECT_EQ(split[0], split[1]);
  EXPECT_EQ(split[1], split[2]);
  EXPECT_EQ(split[3], split[4]);
  EXPECT_EQ(split[4], split[5]);
  EXPECT_NE(split[0], split[3]);
}

TEST(Tsne, PreservesBlobSeparation) {
  Rng rng(8);
  Matrix x(60, 8);
  for (size_t i = 0; i < 60; ++i) {
    const bool second = i >= 30;
    for (size_t d = 0; d < 8; ++d) {
      x.At(i, d) = rng.Normal(second ? 3.0 : -3.0, 0.5);
    }
  }
  Tsne::Options opt;
  opt.iterations = 150;
  const Matrix y = Tsne(opt).FitTransform(x);
  ASSERT_EQ(y.rows(), 60u);
  ASSERT_EQ(y.cols(), 2u);
  // Mean intra-blob distance < mean inter-blob distance.
  double intra = 0, inter = 0;
  int n_intra = 0, n_inter = 0;
  for (size_t i = 0; i < 60; ++i) {
    for (size_t j = i + 1; j < 60; ++j) {
      const double d = EuclideanDistance(y.Row(i), y.Row(j));
      if ((i < 30) == (j < 30)) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

TEST(MadDriftDetector, FlagsFarSamples) {
  Rng rng(9);
  Matrix emb(100, 3);
  std::vector<int> labels;
  for (size_t i = 0; i < 100; ++i) {
    const int label = i < 50 ? 0 : 1;
    for (size_t d = 0; d < 3; ++d) {
      emb.At(i, d) = rng.Normal(label == 0 ? -2.0 : 2.0, 0.3);
    }
    labels.push_back(label);
  }
  MadDriftDetector drift;
  drift.Fit(emb, labels);
  EXPECT_FALSE(drift.IsDrifting({-2.0, -2.0, -2.0}));
  EXPECT_FALSE(drift.IsDrifting({2.0, 2.0, 2.0}));
  EXPECT_TRUE(drift.IsDrifting({30.0, -30.0, 30.0}));
  EXPECT_GT(drift.Score({30.0, -30.0, 30.0}), 3.0);
}

TEST(CrossValidation, TenFoldOnSeparableData) {
  Rng rng(10);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(50, 2.0, &rng, &x, &y);
  const CrossValidationResult cv = CrossValidate(
      [] { return std::make_unique<SgdClassifier>(); }, x, y, 10, &rng);
  EXPECT_EQ(cv.folds.size(), 10u);
  EXPECT_GT(cv.mean.accuracy, 0.95);
}

TEST(GridSearch, PicksBetterHyperparameters) {
  Rng rng(11);
  Matrix x;
  std::vector<int> y;
  MakeXor(240, &rng, &x, &y);
  std::vector<std::function<std::unique_ptr<Classifier>()>> candidates;
  candidates.push_back([] {  // underpowered: linear model on XOR
    return std::make_unique<SgdClassifier>();
  });
  candidates.push_back([] {  // adequate: random forest
    return std::make_unique<RandomForestClassifier>();
  });
  const GridSearchResult res = GridSearch(candidates, x, y, 5, &rng);
  EXPECT_EQ(res.best_index, 1u);
}

}  // namespace
}  // namespace fexiot
