#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/parallel.h"
#include "common/rng.h"
#include "federated/fl_simulator.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace fexiot {
namespace {

// Random dense matrix with the given fraction of nonzero entries.
Matrix RandomSparseDense(size_t rows, size_t cols, double density,
                         Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    if (rng->Uniform() < density) m.data()[i] = rng->Normal(0.0, 1.0);
  }
  return m;
}

Matrix RandomDense(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal(0.0, 1.0);
  return m;
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::memcmp(&a.data()[i], &b.data()[i], sizeof(double)), 0)
        << what << " element " << i << ": " << a.data()[i]
        << " != " << b.data()[i];
  }
}

TEST(CsrMatrix, DenseRoundTripIsExact) {
  Rng rng(3);
  for (double density : {0.0, 0.05, 0.3, 1.0}) {
    const Matrix dense = RandomSparseDense(17, 13, density, &rng);
    const CsrMatrix csr = CsrMatrix::FromDense(dense);
    ExpectBitEqual(csr.ToDense(), dense, "round trip");
  }
}

TEST(CsrMatrix, DropsExactZerosIncludingNegativeZero) {
  Matrix dense(2, 3);
  dense.At(0, 1) = 0.5;
  dense.At(1, 0) = -0.0;  // structural: -0.0 == 0.0
  dense.At(1, 2) = -2.0;
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr.nnz(), 2u);
  EXPECT_EQ(csr.row_ptr().back(), 2u);
  // -0.0 densifies back to +0.0; the product is unaffected (both add 0.0).
  EXPECT_EQ(csr.ToDense().At(1, 0), 0.0);
}

TEST(CsrMatrix, FromRowListsMatchesFromDense) {
  Matrix dense(4, 5);
  dense.At(0, 0) = 1.5;
  dense.At(0, 4) = -0.25;
  dense.At(2, 1) = 3.0;
  dense.At(3, 3) = 0.125;
  std::vector<std::vector<std::pair<int, double>>> rows(4);
  rows[0] = {{0, 1.5}, {4, -0.25}};
  rows[1] = {};
  rows[2] = {{1, 3.0}, {2, 0.0}};  // explicit zero must be dropped
  rows[3] = {{3, 0.125}};
  const CsrMatrix a = CsrMatrix::FromRowLists(4, 5, rows);
  const CsrMatrix b = CsrMatrix::FromDense(dense);
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.values(), b.values());
}

TEST(CsrMatrix, TransposedIsExactAndOrdered) {
  Rng rng(9);
  const Matrix dense = RandomSparseDense(12, 19, 0.2, &rng);
  const CsrMatrix t = CsrMatrix::FromDense(dense).Transposed();
  EXPECT_EQ(t.rows(), 19u);
  EXPECT_EQ(t.cols(), 12u);
  // Columns strictly ascending within each row.
  for (size_t r = 0; r < t.rows(); ++r) {
    for (size_t k = t.row_ptr()[r] + 1; k < t.row_ptr()[r + 1]; ++k) {
      EXPECT_LT(t.col_idx()[k - 1], t.col_idx()[k]);
    }
  }
  const Matrix td = t.ToDense();
  for (size_t i = 0; i < dense.rows(); ++i) {
    for (size_t j = 0; j < dense.cols(); ++j) {
      EXPECT_EQ(td.At(j, i), dense.At(i, j));
    }
  }
}

// The load-bearing guarantee: SpMM reproduces the dense path bit for bit,
// because both accumulate each output element's nonzero terms in ascending
// source-column order (docs/KERNELS.md §5).
TEST(SpMM, BitExactParityWithDenseMatMul) {
  Rng rng(17);
  for (double density : {0.02, 0.1, 0.5}) {
    for (size_t n : {1u, 7u, 33u, 96u}) {
      const Matrix a_dense = RandomSparseDense(n, n, density, &rng);
      const Matrix b = RandomDense(n, 16, &rng);
      const CsrMatrix a = CsrMatrix::FromDense(a_dense);
      ExpectBitEqual(SpMM(a, b), ReferenceMatMul(a_dense, b),
                     "SpMM vs ReferenceMatMul");
    }
  }
}

TEST(SpMM, BitExactParityOnRectangular) {
  Rng rng(23);
  const Matrix a_dense = RandomSparseDense(40, 25, 0.15, &rng);
  const Matrix b = RandomDense(25, 9, &rng);
  const CsrMatrix a = CsrMatrix::FromDense(a_dense);
  ExpectBitEqual(SpMM(a, b), ReferenceMatMul(a_dense, b),
                 "rectangular SpMM");
}

TEST(SpMMTransA, BitExactParityWithDenseMatMulTransA) {
  Rng rng(29);
  for (double density : {0.05, 0.25}) {
    const Matrix a_dense = RandomSparseDense(30, 22, density, &rng);
    const Matrix b = RandomDense(30, 11, &rng);
    const CsrMatrix a = CsrMatrix::FromDense(a_dense);
    ExpectBitEqual(SpMMTransA(a, b), ReferenceMatMulTransA(a_dense, b),
                   "SpMMTransA vs ReferenceMatMulTransA");
  }
}

TEST(SpMM, InPlaceOutputReusesCapacityAndMatches) {
  Rng rng(31);
  const Matrix a_dense = RandomSparseDense(24, 24, 0.2, &rng);
  const CsrMatrix a = CsrMatrix::FromDense(a_dense);
  Matrix c;
  // Warm the workspace with a larger product, then shrink: values must
  // still be exact (stale content fully overwritten).
  SpMM(a, RandomDense(24, 32, &rng), &c);
  const Matrix b = RandomDense(24, 8, &rng);
  SpMM(a, b, &c);
  ExpectBitEqual(c, ReferenceMatMul(a_dense, b), "workspace reuse");
}

TEST(SpMM, EmptyMatrixProducesZeroRows) {
  const CsrMatrix a;  // 0 x 0
  const Matrix b(0, 5);
  Matrix c = SpMM(a, b);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 5u);
}

TEST(SpMM, AllZeroRowsYieldExactZeros) {
  // A row with no nonzeros must produce an exactly-zero output row even
  // when the output matrix is a reused dirty workspace.
  Matrix a_dense(3, 3);
  a_dense.At(1, 1) = 2.0;
  const CsrMatrix a = CsrMatrix::FromDense(a_dense);
  Rng rng(37);
  Matrix c = RandomDense(3, 4, &rng);  // dirty
  SpMM(a, RandomDense(3, 4, &rng), &c);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(c.At(0, j), 0.0);
    EXPECT_EQ(c.At(2, j), 0.0);
  }
}

TEST(SpMM, BitIdenticalAcrossThreadCounts) {
  Rng rng(41);
  // Big enough to clear the serial cutoff so the pool actually engages.
  const Matrix a_dense = RandomSparseDense(256, 256, 0.05, &rng);
  const Matrix b = RandomDense(256, 64, &rng);
  const CsrMatrix a = CsrMatrix::FromDense(a_dense);
  parallel::SetThreads(1);
  const Matrix c1 = SpMM(a, b);
  for (size_t threads : {2u, 4u, 8u}) {
    parallel::SetThreads(threads);
    ExpectBitEqual(SpMM(a, b), c1, "thread sweep");
  }
  parallel::SetThreads(0);
}

// ---------------------------------------------------------------------------
// Propagation-mode plumbing through PrepareGraph and the GNN.

InteractionGraph ChainGraph(int n, uint64_t seed) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < n; ++i) {
    GraphNode node;
    node.rule.platform = Platform::kIfttt;
    node.features.resize(
        static_cast<size_t>(PlatformFeatureDim(Platform::kIfttt)));
    for (auto& f : node.features) f = rng.Normal(0.0, 0.5);
    g.AddNode(std::move(node));
  }
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  if (n > 2) g.AddEdge(0, n - 1);
  return g;
}

TEST(PrepareGraphModes, SparseCsrMatchesDenseMatrixExactly) {
  for (GnnType type : {GnnType::kGcn, GnnType::kGin}) {
    GnnConfig c;
    c.type = type;
    const InteractionGraph g = ChainGraph(9, 5);
    c.propagation = PropagationMode::kDense;
    const PreparedGraph pd = PrepareGraph(g, c);
    c.propagation = PropagationMode::kSparse;
    const PreparedGraph ps = PrepareGraph(g, c);
    ASSERT_EQ(pd.mode, PropagationMode::kDense);
    ASSERT_EQ(ps.mode, PropagationMode::kSparse);
    EXPECT_EQ(pd.prop_csr.nnz(), 0u);
    EXPECT_EQ(ps.propagation.size(), 0u);
    ExpectBitEqual(ps.DensePropagation(), pd.propagation,
                   GnnTypeName(type));
    EXPECT_LT(ps.PropagationBytes(), pd.PropagationBytes());
  }
}

TEST(PrepareGraphModes, SingleNodeAndSelfLoopOnlyGraphs) {
  for (GnnType type : {GnnType::kGcn, GnnType::kGin}) {
    GnnConfig c;
    c.type = type;
    // Single node, no edges: propagation is the 1 x 1 self-loop.
    {
      const InteractionGraph g = ChainGraph(1, 7);
      c.propagation = PropagationMode::kSparse;
      const PreparedGraph p = PrepareGraph(g, c);
      EXPECT_EQ(p.prop_csr.nnz(), 1u);
      EXPECT_EQ(p.DensePropagation().At(0, 0), 1.0);
    }
    // Edgeless multi-node graph: self loops only (GCN degree 1 => value 1).
    {
      InteractionGraph g;
      for (int i = 0; i < 3; ++i) {
        GraphNode node;
        node.rule.platform = Platform::kIfttt;
        node.features.resize(
            static_cast<size_t>(PlatformFeatureDim(Platform::kIfttt)));
        g.AddNode(std::move(node));
      }
      c.propagation = PropagationMode::kDense;
      const PreparedGraph pd = PrepareGraph(g, c);
      c.propagation = PropagationMode::kSparse;
      const PreparedGraph ps = PrepareGraph(g, c);
      EXPECT_EQ(ps.prop_csr.nnz(), 3u);
      ExpectBitEqual(ps.DensePropagation(), pd.propagation, "self loops");
    }
  }
}

TEST(PrepareGraphModes, ForwardIsBitIdenticalAcrossModes) {
  for (GnnType type : {GnnType::kGcn, GnnType::kGin, GnnType::kMagnn}) {
    GnnConfig c;
    c.type = type;
    c.hidden_dim = 8;
    c.embedding_dim = 6;
    GnnModel model(c);
    const InteractionGraph g = ChainGraph(11, 13);
    c.propagation = PropagationMode::kDense;
    const PreparedGraph pd = PrepareGraph(g, c);
    c.propagation = PropagationMode::kSparse;
    const PreparedGraph ps = PrepareGraph(g, c);
    const std::vector<double> zd = model.Forward(pd, nullptr);
    const std::vector<double> zs = model.Forward(ps, nullptr);
    ASSERT_EQ(zd.size(), zs.size());
    for (size_t i = 0; i < zd.size(); ++i) {
      EXPECT_EQ(zd[i], zs[i]) << GnnTypeName(type) << " dim " << i;
    }
  }
}

TEST(PrepareGraphModes, WorkspaceForwardMatchesAllocatingForward) {
  GnnConfig c;
  c.type = GnnType::kGcn;
  GnnModel model(c);
  GnnWorkspace ws;
  for (int n : {4, 12, 7}) {  // shrink mid-sequence to exercise reuse
    const PreparedGraph p = PrepareGraph(ChainGraph(n, 100 + n), c);
    const std::vector<double> plain = model.Forward(p, nullptr);
    ForwardCache cache;
    const std::vector<double>& wsz = model.Forward(p, &cache, &ws);
    ASSERT_EQ(plain.size(), wsz.size());
    for (size_t i = 0; i < plain.size(); ++i) EXPECT_EQ(plain[i], wsz[i]);
  }
}

TEST(PrepareGraphModes, WorkspaceBackwardMatchesAllocatingBackward) {
  GnnConfig c;
  c.type = GnnType::kGin;
  const PreparedGraph p = PrepareGraph(ChainGraph(6, 55), c);
  std::vector<double> grad(static_cast<size_t>(c.embedding_dim));
  for (size_t i = 0; i < grad.size(); ++i) {
    grad[i] = 0.25 * static_cast<double>(i + 1);
  }
  GnnModel m1(c), m2(c);
  ForwardCache c1, c2;
  GnnWorkspace ws;
  m1.Forward(p, &c1);
  m1.Backward(c1, grad);
  m2.Forward(p, &c2, &ws);
  m2.Backward(c2, grad, &ws);
  for (int l = 0; l < m1.num_layers(); ++l) {
    EXPECT_EQ(m1.GetLayerGradFlat(l), m2.GetLayerGradFlat(l)) << "layer "
                                                              << l;
  }
}

// End-to-end: a full federated run must be bit-identical between the dense
// and sparse propagation engines (same corpus, same seeds, same rounds).
TEST(PrepareGraphModes, FederatedRunBitIdenticalDenseVsSparse) {
  Rng rng(42);
  CorpusOptions opt;
  opt.platforms = {Platform::kIfttt};
  opt.min_nodes = 3;
  opt.max_nodes = 8;
  opt.vulnerable_fraction = 0.4;
  const FederatedCorpus corpus =
      BuildClusteredFederatedCorpus(opt, 80, 4, 2, 1.0, 0.6, &rng);

  auto run_with_mode = [&](PropagationMode mode) {
    GnnConfig gc;
    gc.type = GnnType::kGin;
    gc.hidden_dim = 8;
    gc.embedding_dim = 8;
    gc.propagation = mode;
    FlConfig fc;
    fc.num_rounds = 2;
    fc.local.epochs = 1;
    fc.local.learning_rate = 0.02;
    fc.local.margin = 3.0;
    fc.min_cluster_size = 2;
    FederatedSimulator sim(gc, fc);
    sim.SetupClients(corpus.data, corpus.partition, corpus.cluster_tests);
    return sim.Run(FlAlgorithm::kFexiot).value();
  };
  const FlResult rd = run_with_mode(PropagationMode::kDense);
  const FlResult rs = run_with_mode(PropagationMode::kSparse);
  EXPECT_EQ(rd.mean.accuracy, rs.mean.accuracy);
  EXPECT_EQ(rd.mean.f1, rs.mean.f1);
  EXPECT_EQ(rd.accuracy_std, rs.accuracy_std);
  EXPECT_EQ(rd.client_cluster, rs.client_cluster);
  ASSERT_EQ(rd.client_metrics.size(), rs.client_metrics.size());
  for (size_t i = 0; i < rd.client_metrics.size(); ++i) {
    EXPECT_EQ(rd.client_metrics[i].accuracy, rs.client_metrics[i].accuracy);
    EXPECT_EQ(rd.client_metrics[i].f1, rs.client_metrics[i].f1);
  }
}

TEST(PrepareGraphModes, TrainerIsBitIdenticalAcrossThreadCounts) {
  // The reworked per-shard-workspace trainer must preserve the thread-
  // count determinism contract under the sparse engine.
  GnnConfig gc;
  gc.type = GnnType::kGcn;
  gc.hidden_dim = 8;
  gc.embedding_dim = 6;
  gc.propagation = PropagationMode::kSparse;
  std::vector<InteractionGraph> graphs;
  for (int i = 0; i < 24; ++i) {
    InteractionGraph g = ChainGraph(4 + i % 5, 200 + static_cast<uint64_t>(i));
    g.set_label(i % 2);
    graphs.push_back(std::move(g));
  }
  const auto prep = PrepareGraphs(graphs, gc);
  auto train_with_threads = [&](size_t threads) {
    parallel::SetThreads(threads);
    GnnModel model(gc);
    TrainConfig tc;
    tc.epochs = 3;
    GnnTrainer trainer(&model, tc);
    Rng trng(7);
    trainer.Train(prep, &trng);
    std::vector<double> flat;
    for (int l = 0; l < model.num_layers(); ++l) {
      const auto lf = model.GetLayerFlat(l);
      flat.insert(flat.end(), lf.begin(), lf.end());
    }
    parallel::SetThreads(0);
    return flat;
  };
  const std::vector<double> w1 = train_with_threads(1);
  for (size_t threads : {3u, 8u}) {
    EXPECT_EQ(train_with_threads(threads), w1) << threads << " threads";
  }
}

}  // namespace
}  // namespace fexiot
