#pragma once

#include <cstddef>

#include "common/cpu_features.h"

namespace fexiot {
namespace gemm {

/// \brief Microkernel contract: C(0:rmax, 0:cmax) += Ap * Bp over depth
/// \p kc, where Ap is an mr-interleaved A micro-panel (element (p, r) at
/// ap[p * mr + r]), Bp an nr-interleaved B micro-panel (element (p, c) at
/// bp[p * nr + c]), and C is row-major with leading dimension \p ldc.
/// Padding lanes (r >= rmax, c >= cmax) in the packed panels are zero and
/// must not be stored to C. Every implementation accumulates over p in
/// ascending order, exactly once per element, so results across kernels
/// differ only by mul+add vs fused-multiply-add rounding (see
/// docs/KERNELS.md for the cross-ISA ULP bound).
using MicroKernelFn = void (*)(size_t kc, const double* ap, const double* bp,
                               double* c, size_t ldc, size_t rmax,
                               size_t cmax);

/// \brief One ISA-specialized microkernel plus the blocking scheme the
/// macro-kernel uses with it. Invariants: mc % mr == 0 and nc % nr == 0
/// (packed row/column panels never straddle a cache block boundary).
struct KernelInfo {
  cpu::Isa isa;      ///< tier this kernel requires
  const char* name;  ///< "scalar" | "avx2" | "avx512" (FEXIOT_ISA spelling)
  const char* tile;  ///< register tile as "MRxNR", e.g. "8x16"
  size_t mr;         ///< microkernel rows (accumulator height)
  size_t nr;         ///< microkernel cols (accumulator width)
  size_t mc;         ///< A block rows; also the parallel row grain
  size_t kc;         ///< depth block (packed panels stream from L1/L2)
  size_t nc;         ///< B block cols (pack buffer sized kc * nc)
  MicroKernelFn fn;
};

/// \brief The three build-time kernel registrations. Scalar is always
/// present; Avx2Kernel()/Avx512Kernel() return nullptr when the compiler
/// lacked the flags (or the target is not x86) and the path was stubbed
/// out at build time.
const KernelInfo* ScalarKernel();
const KernelInfo* Avx2Kernel();
const KernelInfo* Avx512Kernel();

/// \brief The kernel GemmBlocked dispatches to. Selected once on first
/// use: the widest tier the CPU supports and the build compiled in,
/// unless the FEXIOT_ISA environment variable (scalar|avx2|avx512) names
/// a narrower/specific tier. An FEXIOT_ISA request the host cannot run
/// (or the build lacks) logs a warning and degrades to the best
/// available tier. Thread-safe.
const KernelInfo& ActiveKernel();

/// \brief Testing/tooling override: rebinds ActiveKernel() to \p isa.
/// Returns false (selection unchanged) when the CPU cannot run the tier
/// or the build did not compile it in. Must not race with concurrent
/// GemmBlocked calls (same discipline as parallel::SetThreads).
bool SetActiveIsa(cpu::Isa isa);

/// \brief True when GemmBlocked's A-pack-reuse path engages for an
/// output with \p m columns under the active kernel: C spans more than
/// one nc column panel, so packed A blocks are cached per depth block
/// and reused across panels instead of being repacked for each.
bool PackReuseEngages(size_t m);

/// \brief C += op(A) * op(B), the cache-blocked packed macro-kernel.
/// op(A) is n x k (A stored k x n when \p trans_a), op(B) is k x m
/// (B stored m x k when \p trans_b), C is n x m row-major and must be
/// zero-initialized by the caller. C must not alias A or B. Row blocks
/// and pack panels fan out over parallel::For / parallel::ForRange;
/// results are bit-identical for every thread count.
void GemmBlocked(size_t n, size_t k, size_t m, const double* a, size_t lda,
                 bool trans_a, const double* b, size_t ldb, bool trans_b,
                 double* c);

}  // namespace gemm
}  // namespace fexiot
