#include "tensor/sparse.h"

#include <algorithm>
#include <cassert>

#include "common/parallel.h"

namespace fexiot {

namespace {

// Below this many effective flops (2 * nnz * b.cols()) the pool dispatch
// costs more than the multiply; run inline-serially. The cutoff depends
// only on problem shape, never on the thread count, so it cannot break
// the cross-thread-count determinism contract.
constexpr size_t kSpmmSerialFlops = 32 * 1024;

}  // namespace

CsrMatrix CsrMatrix::FromDense(const Matrix& dense) {
  CsrMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.row_ptr_.assign(out.rows_ + 1, 0);
  for (size_t r = 0; r < out.rows_; ++r) {
    const double* row = dense.RowPtr(r);
    for (size_t c = 0; c < out.cols_; ++c) {
      // Mirrors the reference GEMM's zero-skip: -0.0 == 0.0 is true, so
      // both zero signs are structural.
      if (row[c] == 0.0) continue;
      out.col_idx_.push_back(static_cast<int>(c));
      out.values_.push_back(row[c]);
    }
    out.row_ptr_[r + 1] = out.values_.size();
  }
  return out;
}

CsrMatrix CsrMatrix::FromRowLists(
    size_t rows, size_t cols,
    const std::vector<std::vector<std::pair<int, double>>>& row_lists) {
  assert(row_lists.size() == rows);
  CsrMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_ptr_.assign(rows + 1, 0);
  size_t nnz = 0;
  for (const auto& row : row_lists) nnz += row.size();
  out.col_idx_.reserve(nnz);
  out.values_.reserve(nnz);
  for (size_t r = 0; r < rows; ++r) {
    int prev = -1;
    for (const auto& [c, v] : row_lists[r]) {
      assert(c > prev && static_cast<size_t>(c) < cols &&
             "FromRowLists requires strictly ascending in-range columns");
      prev = c;
      if (v == 0.0) continue;
      out.col_idx_.push_back(c);
      out.values_.push_back(v);
    }
    out.row_ptr_[r + 1] = out.values_.size();
  }
  return out;
}

CsrMatrix CsrMatrix::BlockDiagonal(const std::vector<const CsrMatrix*>& blocks) {
  CsrMatrix out;
  size_t total_nnz = 0;
  for (const CsrMatrix* b : blocks) {
    assert(b != nullptr && "BlockDiagonal requires non-null blocks");
    out.rows_ += b->rows_;
    out.cols_ += b->cols_;
    total_nnz += b->nnz();
  }
  out.row_ptr_.reserve(out.rows_ + 1);
  out.col_idx_.reserve(total_nnz);
  out.values_.reserve(total_nnz);
  size_t col_off = 0;
  for (const CsrMatrix* b : blocks) {
    const size_t nnz_off = out.values_.size();
    // Skip each block's leading 0 offset: out.row_ptr_ already ends with
    // the running nnz, which doubles as this block's row 0 start.
    for (size_t r = 1; r <= b->rows_; ++r) {
      out.row_ptr_.push_back(nnz_off + b->row_ptr_[r]);
    }
    for (int c : b->col_idx_) {
      out.col_idx_.push_back(c + static_cast<int>(col_off));
    }
    out.values_.insert(out.values_.end(), b->values_.begin(),
                       b->values_.end());
    col_off += b->cols_;
  }
  return out;
}

bool CsrMatrix::HasEntry(size_t r, int c) const {
  assert(r < rows_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r + 1]);
  return std::binary_search(begin, end, c);
}

double CsrMatrix::GetEntry(size_t r, int c) const {
  assert(r < rows_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

void CsrMatrix::SetEntry(size_t r, int c, double v) {
  assert(r < rows_ && c >= 0 && static_cast<size_t>(c) < cols_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  const size_t pos = static_cast<size_t>(it - col_idx_.begin());
  const bool present = it != end && *it == c;
  if (present) {
    if (v == 0.0) {
      // Erase: shift the tail left and drop every later row offset by one.
      col_idx_.erase(col_idx_.begin() + static_cast<ptrdiff_t>(pos));
      values_.erase(values_.begin() + static_cast<ptrdiff_t>(pos));
      for (size_t rr = r + 1; rr <= rows_; ++rr) --row_ptr_[rr];
    } else {
      values_[pos] = v;
    }
    return;
  }
  if (v == 0.0) return;  // absent + zero: nothing to store
  col_idx_.insert(col_idx_.begin() + static_cast<ptrdiff_t>(pos), c);
  values_.insert(values_.begin() + static_cast<ptrdiff_t>(pos), v);
  for (size_t rr = r + 1; rr <= rows_; ++rr) ++row_ptr_[rr];
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* row = out.RowPtr(r);
    for (size_t idx = row_ptr_[r]; idx < row_ptr_[r + 1]; ++idx) {
      row[static_cast<size_t>(col_idx_[idx])] = values_[idx];
    }
  }
  return out;
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  out.row_ptr_.assign(cols_ + 1, 0);
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());
  // Counting sort by column: count, prefix-sum, scatter. Scattering in
  // row-major source order leaves each output row's columns (= source row
  // indices) ascending, which SpMMTransA's determinism contract needs.
  for (int c : col_idx_) ++out.row_ptr_[static_cast<size_t>(c) + 1];
  for (size_t c = 0; c < cols_; ++c) out.row_ptr_[c + 1] += out.row_ptr_[c];
  std::vector<size_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t idx = row_ptr_[r]; idx < row_ptr_[r + 1]; ++idx) {
      const size_t dst = cursor[static_cast<size_t>(col_idx_[idx])]++;
      out.col_idx_[dst] = static_cast<int>(r);
      out.values_[dst] = values_[idx];
    }
  }
  return out;
}

void SpMM(const CsrMatrix& a, const Matrix& b, Matrix* c) {
  assert(a.cols() == b.rows());
  assert(c != &b && "SpMM output must not alias its dense input");
  c->ResizeForOverwrite(a.rows(), b.cols());
  const size_t m = b.cols();
  const size_t* row_ptr = a.row_ptr().data();
  const int* col = a.col_idx().data();
  const double* val = a.values().data();
  auto rows_body = [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      double* crow = c->RowPtr(r);
      // The resize leaves stale workspace content; clear the row so every
      // accumulator starts from exact +0.0, matching the dense kernel.
      std::fill(crow, crow + m, 0.0);
      for (size_t idx = row_ptr[r]; idx < row_ptr[r + 1]; ++idx) {
        const double av = val[idx];
        const double* brow = b.RowPtr(static_cast<size_t>(col[idx]));
        for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
      }
    }
  };
  if (2 * a.nnz() * m < kSpmmSerialFlops) {
    rows_body(0, a.rows());
  } else {
    parallel::ForRange(a.rows(), rows_body);
  }
}

Matrix SpMM(const CsrMatrix& a, const Matrix& b) {
  Matrix c;
  SpMM(a, b, &c);
  return c;
}

void SpMMTransA(const CsrMatrix& a, const Matrix& b, Matrix* c) {
  assert(a.rows() == b.rows());
  SpMM(a.Transposed(), b, c);
}

Matrix SpMMTransA(const CsrMatrix& a, const Matrix& b) {
  Matrix c;
  SpMMTransA(a, b, &c);
  return c;
}

}  // namespace fexiot
