#pragma once

#include <vector>

#include "tensor/matrix.h"

namespace fexiot {

/// \brief Matrix product C = A * B. Shapes must agree (asserted in debug
/// builds); all operands are dense row-major.
///
/// Large products run through the cache-blocked packed GEMM in
/// tensor/gemm.h with an explicit-SIMD microkernel selected once at
/// startup by CPUID — scalar, AVX2 (6x8 tile) or AVX-512 (8x16 tile),
/// overridable via the FEXIOT_ISA environment variable — and
/// row-block-parallel over the shared parallel::For pool. Small products
/// (under 64^3 flops) fall through to the reference kernel, where packing
/// overhead dominates. See docs/KERNELS.md for the full architecture.
///
/// Contracts:
///  - Thread-safety: safe to call concurrently from many threads; callers
///    already running on a pool worker compute inline-serially (the
///    nested-parallelism guard in common/parallel.h).
///  - Aliasing: the result is a freshly allocated Matrix, so inputs are
///    never aliased by the output.
///  - Determinism: for a fixed ISA tier, results are bit-identical across
///    thread counts. Across ISA tiers, results agree bit-for-bit between
///    AVX2 and AVX-512 (same fused-multiply-add sequence per element) and
///    within a documented ULP bound against scalar (mul+add vs FMA
///    rounding; see docs/KERNELS.md and tests/test_kernels.cc). The
///    blocked path may differ from the reference kernel by floating-point
///    reassociation across depth blocks when the inner dimension exceeds
///    the depth blocking factor.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// \brief C = A^T * B without materializing the transpose (A is stored
/// k x n; transposition is absorbed by the pack step). Same dispatch,
/// thread-safety, aliasing and determinism contracts as MatMul.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// \brief C = A * B^T without materializing the transpose (B is stored
/// m x k). Same dispatch, thread-safety, aliasing and determinism
/// contracts as MatMul.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// \brief Reference GEMM kernels: the original naive triple-loop
/// implementations, retained as the parity oracle for the blocked kernels
/// (tests/test_kernels.cc) and as the baseline bench_kernels measures
/// speedup against. Also the small-product fast path of MatMul*, where
/// their zero-skip keeps sparse GNN propagation products cheap.
/// Single-threaded and ISA-independent (never dispatched).
Matrix ReferenceMatMul(const Matrix& a, const Matrix& b);
Matrix ReferenceMatMulTransA(const Matrix& a, const Matrix& b);
Matrix ReferenceMatMulTransB(const Matrix& a, const Matrix& b);

/// \brief In-place variants of MatMul/MatMulTransA/MatMulTransB writing
/// into a caller-owned output: \p c is resized (capacity is never shrunk,
/// so a workspace matrix reused across calls stops allocating once warm)
/// and fully overwritten. Same dispatch and bit-for-bit the same results
/// as the allocating forms. \p c must not alias \p a or \p b.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c);
void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* c);
void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* c);

/// \brief Row-blocked product for batched block-diagonal inference:
/// computes C = A * B where A's rows are partitioned into horizontal
/// blocks by \p row_offsets (B+1 ascending entries, front() == 0,
/// back() == a.rows()), and each block [r0, r1) is multiplied as if it
/// were a standalone n_b x k matrix. Every block dispatches on its OWN
/// shape against the same small-product threshold MatMulInto uses, so
/// block b's output rows are bit-identical to
/// MatMulInto(rows r0..r1 of A, B) — stacking requests into a batch
/// never flips a block from the reference kernel to the blocked GEMM.
/// The reference path here walks the inner dimension in L1-sized panels
/// (per output element the accumulation order over k is unchanged —
/// still strictly ascending — so bits match ReferenceMatMulAccum), which
/// keeps the shared B operand cache-resident across the whole batch
/// instead of re-streaming it per row. Same aliasing / thread-safety
/// contracts as MatMulInto.
void MatMulBlocksInto(const Matrix& a, const Matrix& b,
                      const std::vector<size_t>& row_offsets, Matrix* c);

/// \brief Adds a 1 x cols bias row to every row of \p m, in place.
/// \p bias must not alias \p m (use a copy to broadcast a row of m).
void AddBiasRow(Matrix* m, const Matrix& bias);

/// \brief Element-wise max(x, 0).
Matrix Relu(const Matrix& m);
/// \brief Gradient mask: grad * 1[pre > 0].
Matrix ReluBackward(const Matrix& grad, const Matrix& pre_activation);

/// \brief In-place counterparts used by the allocation-free GNN hot path
/// (gnn/gnn_model.h): \p out is resized without shrinking capacity and
/// fully overwritten; it must not alias the inputs. Values are bit-equal
/// to the allocating forms.
void ReluInto(const Matrix& m, Matrix* out);
void ReluBackwardInto(const Matrix& grad, const Matrix& pre_activation,
                      Matrix* out);
/// \brief Column-wise sum into a reusable 1 x cols output (same contract).
void ColumnSumInto(const Matrix& m, Matrix* out);

/// \brief Element-wise logistic sigmoid.
Matrix Sigmoid(const Matrix& m);
/// \brief Element-wise tanh.
Matrix Tanh(const Matrix& m);

/// \brief Row-wise softmax (numerically stabilized).
Matrix SoftmaxRows(const Matrix& m);

/// \brief Column-wise mean as a 1 x cols matrix.
Matrix ColumnMean(const Matrix& m);
/// \brief Column-wise sum as a 1 x cols matrix.
Matrix ColumnSum(const Matrix& m);
/// \brief Row-wise L2 normalization (rows with ~0 norm left untouched).
Matrix L2NormalizeRows(const Matrix& m);

/// \brief Euclidean distance between two equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);
/// \brief Squared Euclidean distance.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);
/// \brief Dot product.
double Dot(const std::vector<double>& a, const std::vector<double>& b);
/// \brief Cosine similarity (0 when either vector is ~0).
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);
/// \brief L2 norm of a vector.
double VectorNorm(const std::vector<double>& v);

/// \brief Stacks equal-length vectors as matrix rows.
Matrix StackRows(const std::vector<std::vector<double>>& rows);

/// All element-wise and reduction helpers above are single-threaded pure
/// functions returning fresh matrices (no aliasing with their inputs) and
/// are safe to call concurrently, including from parallel::For bodies.

/// \brief Solves the symmetric positive-definite system A x = b via
/// Cholesky. Adds \p ridge to the diagonal for conditioning.
/// Returns empty vector on failure (A not SPD even after ridging).
std::vector<double> SolveSpd(Matrix a, std::vector<double> b,
                             double ridge = 1e-8);

/// \brief Weighted least squares: minimizes sum_i w_i (x_i^T beta - y_i)^2.
/// \param x n x d design matrix
/// \param y n targets
/// \param w n non-negative weights
/// \returns d coefficients (empty on failure).
std::vector<double> WeightedLeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         const std::vector<double>& w,
                                         double ridge = 1e-6);

}  // namespace fexiot
