// Runtime-dispatched, cache-blocked packed GEMM (GotoBLAS / BLIS
// structure). docs/KERNELS.md is the architecture handbook for this
// unit: blocking scheme, dispatch mechanism, pack reuse, and the
// determinism/parity contracts.
//
// Loop nest (depth block outermost so packed A blocks can be reused
// across column panels):
//
//   for pc over k in kc steps:            # depth block
//     [wide C] pack all A row blocks once (parallel over row blocks)
//     for jc over m in nc steps:          # column panel
//       pack B(pc, jc) panel              (parallel over nr-wide panels)
//       for ic over n in mc steps:        # row block, parallel::For
//         [narrow C] pack A(ic, pc) into a thread-local buffer
//         microkernel sweep over the mr x nr tiles of the block
//
// Every C element accumulates its depth blocks in ascending pc order and
// its in-block products in ascending p order regardless of thread count,
// pack-reuse path, or tile shape — so results are bit-identical across
// FEXIOT_THREADS values for a fixed ISA, and differ across ISAs only by
// the scalar tier's mul+add vs the SIMD tiers' fused multiply-add.

#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"

namespace fexiot {
namespace gemm {
namespace {

const KernelInfo* KernelForIsa(cpu::Isa isa) {
  switch (isa) {
    case cpu::Isa::kAvx512:
      return Avx512Kernel();
    case cpu::Isa::kAvx2:
      return Avx2Kernel();
    case cpu::Isa::kScalar:
      return ScalarKernel();
  }
  return ScalarKernel();
}

// Widest tier at or below `isa` that the CPU supports and the build
// compiled in (scalar always qualifies).
const KernelInfo* BestKernelAtOrBelow(cpu::Isa isa) {
  for (int tier = static_cast<int>(isa); tier > 0; --tier) {
    const cpu::Isa t = static_cast<cpu::Isa>(tier);
    const KernelInfo* k = KernelForIsa(t);
    if (k != nullptr && cpu::IsaSupported(t)) return k;
  }
  return ScalarKernel();
}

const KernelInfo* ChooseDefaultKernel() {
  cpu::Isa want = cpu::BestSupportedIsa();
  if (const char* env = std::getenv("FEXIOT_ISA")) {
    cpu::Isa requested;
    if (!cpu::ParseIsa(env, &requested)) {
      FEXIOT_LOG(Warning) << "FEXIOT_ISA='" << env
                          << "' not recognized (scalar|avx2|avx512); "
                          << "using CPUID selection";
    } else if (!cpu::IsaSupported(requested) ||
               KernelForIsa(requested) == nullptr) {
      FEXIOT_LOG(Warning)
          << "FEXIOT_ISA=" << cpu::IsaName(requested)
          << (cpu::IsaSupported(requested) ? " not compiled into this build"
                                           : " not supported by this CPU")
          << "; falling back to the widest available tier";
      want = std::min(want, requested);
    } else {
      want = requested;
    }
  }
  return BestKernelAtOrBelow(want);
}

std::atomic<const KernelInfo*> g_active_kernel{nullptr};

// Packs op(A)(i0:i0+mc, p0:p0+kc) into mr-tall micro-panels, zero-padding
// the row remainder. a(i, p) = trans ? A[p * lda + i] : A[i * lda + p].
void PackA(const double* a, size_t lda, bool trans, size_t i0, size_t mc,
           size_t p0, size_t kc, size_t mr, double* ap) {
  const size_t panels = (mc + mr - 1) / mr;
  for (size_t ir = 0; ir < panels; ++ir) {
    double* panel = ap + ir * mr * kc;
    const size_t rmax = std::min(mr, mc - ir * mr);
    for (size_t p = 0; p < kc; ++p) {
      for (size_t r = 0; r < mr; ++r) {
        const size_t i = i0 + ir * mr + r;
        panel[p * mr + r] =
            r < rmax ? (trans ? a[(p0 + p) * lda + i] : a[i * lda + (p0 + p)])
                     : 0.0;
      }
    }
  }
}

// Packs op(B)(p0:p0+kc, j0:j0+nc) into nr-wide micro-panels, zero-padding
// the column remainder. b(p, j) = trans ? B[j * ldb + p] : B[p * ldb + j].
void PackB(const double* b, size_t ldb, bool trans, size_t p0, size_t kc,
           size_t j0, size_t nc, size_t nr, double* bp) {
  const size_t panels = (nc + nr - 1) / nr;
  for (size_t jr = 0; jr < panels; ++jr) {
    double* panel = bp + jr * nr * kc;
    const size_t cmax = std::min(nr, nc - jr * nr);
    for (size_t p = 0; p < kc; ++p) {
      for (size_t c = 0; c < nr; ++c) {
        const size_t j = j0 + jr * nr + c;
        panel[p * nr + c] =
            c < cmax ? (trans ? b[j * ldb + (p0 + p)] : b[(p0 + p) * ldb + j])
                     : 0.0;
      }
    }
  }
}

size_t RoundUp(size_t x, size_t to) { return (x + to - 1) / to * to; }

}  // namespace

const KernelInfo& ActiveKernel() {
  const KernelInfo* k = g_active_kernel.load(std::memory_order_acquire);
  if (k == nullptr) {
    // First use (or racing first uses): ChooseDefaultKernel is pure given
    // the environment, so concurrent initializers store the same pointer.
    k = ChooseDefaultKernel();
    g_active_kernel.store(k, std::memory_order_release);
  }
  return *k;
}

bool SetActiveIsa(cpu::Isa isa) {
  if (!cpu::IsaSupported(isa)) return false;
  const KernelInfo* k = KernelForIsa(isa);
  if (k == nullptr) return false;
  g_active_kernel.store(k, std::memory_order_release);
  return true;
}

bool PackReuseEngages(size_t m) { return m > ActiveKernel().nc; }

void GemmBlocked(size_t n, size_t k, size_t m, const double* a, size_t lda,
                 bool trans_a, const double* b, size_t ldb, bool trans_b,
                 double* c) {
  if (n == 0 || k == 0 || m == 0) return;
  const KernelInfo& ker = ActiveKernel();
  const size_t mr = ker.mr, nr = ker.nr;
  const size_t mcb = ker.mc, kcb = ker.kc, ncb = ker.nc;

  const size_t nc_buf = std::min(ncb, RoundUp(m, nr));
  std::vector<double> bpack(kcb * nc_buf);

  // Wide-C pack reuse: with more than one column panel, each A block
  // would be repacked per (jc, pc) pair; packing the whole n x kc depth
  // slab once per pc (in parallel) amortizes it across panels.
  const bool reuse_a = m > ncb;
  std::vector<double> apack_all;
  if (reuse_a) apack_all.resize(RoundUp(n, mr) * kcb);

  const size_t iblocks = (n + mcb - 1) / mcb;
  for (size_t pc = 0; pc < k; pc += kcb) {
    const size_t kc = std::min(kcb, k - pc);
    if (reuse_a) {
      // Write phase: row blocks land in disjoint [ic/mr * mr * kc) slabs;
      // the read phase below only starts after this barrier returns.
      parallel::For(iblocks, [&](size_t ib) {
        const size_t ic = ib * mcb;
        const size_t mc = std::min(mcb, n - ic);
        PackA(a, lda, trans_a, ic, mc, pc, kc, mr,
              apack_all.data() + (ic / mr) * mr * kc);
      });
    }
    for (size_t jc = 0; jc < m; jc += ncb) {
      const size_t nc = std::min(ncb, m - jc);
      // Parallel PackB: shard the nr-wide panels over the pool in
      // contiguous ranges (disjoint writes; content is a pure function
      // of B, so it is thread-count invariant).
      const size_t bpanels = (nc + nr - 1) / nr;
      parallel::ForRange(bpanels, [&](size_t begin, size_t end) {
        PackB(b, ldb, trans_b, pc, kc, jc + begin * nr,
              std::min(nc, end * nr) - begin * nr, nr,
              bpack.data() + begin * nr * kc);
      });
      // Row-block parallelism: tasks write disjoint C rows and share the
      // read-only packs, so results are thread-count invariant.
      parallel::For(iblocks, [&](size_t ib) {
        const size_t ic = ib * mcb;
        const size_t mc = std::min(mcb, n - ic);
        const double* apack;
        if (reuse_a) {
          apack = apack_all.data() + (ic / mr) * mr * kc;
        } else {
          thread_local std::vector<double> local_apack;
          local_apack.resize(mcb * kcb);
          PackA(a, lda, trans_a, ic, mc, pc, kc, mr, local_apack.data());
          apack = local_apack.data();
        }
        for (size_t ir = 0; ir < mc; ir += mr) {
          const size_t rmax = std::min(mr, mc - ir);
          for (size_t jr = 0; jr < nc; jr += nr) {
            const size_t cmax = std::min(nr, nc - jr);
            ker.fn(kc, apack + (ir / mr) * mr * kc,
                   bpack.data() + (jr / nr) * nr * kc,
                   c + (ic + ir) * m + (jc + jr), m, rmax, cmax);
          }
        }
      });
    }
  }
}

}  // namespace gemm
}  // namespace fexiot
