#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/gemm.h"

namespace fexiot {

namespace {

// Accumulation cores shared by the allocating Reference* forms and the
// small-product path of the *Into variants. \p c must arrive zeroed.
void ReferenceMatMulAccum(const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  // i-k-j loop order keeps the inner loop contiguous in both B and C.
  for (size_t i = 0; i < n; ++i) {
    double* crow = c->RowPtr(i);
    const double* arow = a.RowPtr(i);
    for (size_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b.RowPtr(p);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void ReferenceMatMulTransAAccum(const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (size_t i = 0; i < n; ++i) {
    const double* arow = a.RowPtr(i);
    const double* brow = b.RowPtr(i);
    for (size_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      double* crow = c->RowPtr(p);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void ReferenceMatMulTransBAccum(const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  for (size_t i = 0; i < n; ++i) {
    const double* arow = a.RowPtr(i);
    double* crow = c->RowPtr(i);
    for (size_t j = 0; j < m; ++j) {
      const double* brow = b.RowPtr(j);
      double s = 0.0;
      for (size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
}

}  // namespace

Matrix ReferenceMatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  ReferenceMatMulAccum(a, b, &c);
  return c;
}

Matrix ReferenceMatMulTransA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  ReferenceMatMulTransAAccum(a, b, &c);
  return c;
}

Matrix ReferenceMatMulTransB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  ReferenceMatMulTransBAccum(a, b, &c);
  return c;
}

namespace {

// Products below this flop count run the reference kernel: packing costs
// more than it saves (GNN layers at hidden_dim <= 32 live here, and keep
// the reference kernel's zero-skip on sparse propagation matrices).
constexpr size_t kSmallFlops = 64 * 64 * 64;

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n * k * m < kSmallFlops) return ReferenceMatMul(a, b);
  Matrix c(n, m);
  gemm::GemmBlocked(n, k, m, a.data(), a.cols(), false, b.data(), b.cols(),
                    false, c.data());
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  const size_t n = a.cols(), k = a.rows(), m = b.cols();
  if (n * k * m < kSmallFlops) return ReferenceMatMulTransA(a, b);
  Matrix c(n, m);
  gemm::GemmBlocked(n, k, m, a.data(), a.cols(), true, b.data(), b.cols(),
                    false, c.data());
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  if (n * k * m < kSmallFlops) return ReferenceMatMulTransB(a, b);
  Matrix c(n, m);
  gemm::GemmBlocked(n, k, m, a.data(), a.cols(), false, b.data(), b.cols(),
                    true, c.data());
  return c;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c) {
  assert(a.cols() == b.rows());
  assert(c != &a && c != &b && "MatMulInto output must not alias an input");
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  c->Resize(n, m);  // reuses capacity; zeroed accumulators
  if (n * k * m < kSmallFlops) {
    ReferenceMatMulAccum(a, b, c);
  } else {
    gemm::GemmBlocked(n, k, m, a.data(), a.cols(), false, b.data(), b.cols(),
                      false, c->data());
  }
}

void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* c) {
  assert(a.rows() == b.rows());
  assert(c != &a && c != &b && "MatMulTransAInto output must not alias an input");
  const size_t n = a.cols(), k = a.rows(), m = b.cols();
  c->Resize(n, m);
  if (n * k * m < kSmallFlops) {
    ReferenceMatMulTransAAccum(a, b, c);
  } else {
    gemm::GemmBlocked(n, k, m, a.data(), a.cols(), true, b.data(), b.cols(),
                      false, c->data());
  }
}

void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* c) {
  assert(a.cols() == b.cols());
  assert(c != &a && c != &b && "MatMulTransBInto output must not alias an input");
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  c->Resize(n, m);
  if (n * k * m < kSmallFlops) {
    ReferenceMatMulTransBAccum(a, b, c);
  } else {
    gemm::GemmBlocked(n, k, m, a.data(), a.cols(), false, b.data(), b.cols(),
                      true, c->data());
  }
}

void MatMulBlocksInto(const Matrix& a, const Matrix& b,
                      const std::vector<size_t>& row_offsets, Matrix* c) {
  assert(a.cols() == b.rows());
  assert(c != &a && c != &b &&
         "MatMulBlocksInto output must not alias an input");
  assert(!row_offsets.empty() && row_offsets.front() == 0 &&
         row_offsets.back() == a.rows());
  const size_t k = a.cols(), m = b.cols();
  c->Resize(a.rows(), m);  // reuses capacity; zeroed accumulators
  // Panel width over the inner dimension: 64 doubles of B rows (64 * m
  // doubles touched per panel) stay L1-resident while the panel sweeps
  // all of a block's rows.
  constexpr size_t kPanel = 64;
  for (size_t bi = 0; bi + 1 < row_offsets.size(); ++bi) {
    const size_t r0 = row_offsets[bi], r1 = row_offsets[bi + 1];
    assert(r1 >= r0);
    const size_t n = r1 - r0;
    if (n == 0) continue;
    if (n * k * m < kSmallFlops) {
      // Reference kernel, k-panelled: identical per-element accumulation
      // order (p ascends 0..k-1 for every c[i][j]; same `crow[j] += av *
      // brow[j]` contraction as ReferenceMatMulAccum), but B panels are
      // reused across rows instead of streaming all of B per row.
      for (size_t p0 = 0; p0 < k; p0 += kPanel) {
        const size_t p1 = std::min(k, p0 + kPanel);
        for (size_t i = r0; i < r1; ++i) {
          double* crow = c->RowPtr(i);
          const double* arow = a.RowPtr(i);
          for (size_t p = p0; p < p1; ++p) {
            const double av = arow[p];
            if (av == 0.0) continue;
            const double* brow = b.RowPtr(p);
            for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
          }
        }
      }
    } else {
      // The block's rows are contiguous at full row stride, so the
      // blocked GEMM can treat them as a standalone n x k / n x m pair.
      gemm::GemmBlocked(n, k, m, a.RowPtr(r0), a.cols(), false, b.data(),
                        b.cols(), false, c->RowPtr(r0));
    }
  }
}

void AddBiasRow(Matrix* m, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == m->cols());
  for (size_t r = 0; r < m->rows(); ++r) {
    double* row = m->RowPtr(r);
    const double* b = bias.RowPtr(0);
    for (size_t c = 0; c < m->cols(); ++c) row[c] += b[c];
  }
}

Matrix Relu(const Matrix& m) {
  Matrix out = m;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::max(0.0, out.data()[i]);
  }
  return out;
}

Matrix ReluBackward(const Matrix& grad, const Matrix& pre_activation) {
  assert(grad.SameShape(pre_activation));
  Matrix out = grad;
  for (size_t i = 0; i < out.size(); ++i) {
    if (pre_activation.data()[i] <= 0.0) out.data()[i] = 0.0;
  }
  return out;
}

void ReluInto(const Matrix& m, Matrix* out) {
  assert(out != &m);
  out->ResizeForOverwrite(m.rows(), m.cols());
  for (size_t i = 0; i < m.size(); ++i) {
    out->data()[i] = std::max(0.0, m.data()[i]);
  }
}

void ReluBackwardInto(const Matrix& grad, const Matrix& pre_activation,
                      Matrix* out) {
  assert(grad.SameShape(pre_activation));
  assert(out != &grad && out != &pre_activation);
  out->ResizeForOverwrite(grad.rows(), grad.cols());
  for (size_t i = 0; i < grad.size(); ++i) {
    out->data()[i] = pre_activation.data()[i] <= 0.0 ? 0.0 : grad.data()[i];
  }
}

void ColumnSumInto(const Matrix& m, Matrix* out) {
  assert(out != &m);
  out->Resize(1, m.cols());  // zeroed accumulators
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) out->At(0, c) += row[c];
  }
}

Matrix Sigmoid(const Matrix& m) {
  Matrix out = m;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = 1.0 / (1.0 + std::exp(-out.data()[i]));
  }
  return out;
}

Matrix Tanh(const Matrix& m) {
  Matrix out = m;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& m) {
  Matrix out = m;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    double mx = row[0];
    for (size_t c = 1; c < out.cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (size_t c = 0; c < out.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (size_t c = 0; c < out.cols(); ++c) row[c] /= sum;
  }
  return out;
}

Matrix ColumnMean(const Matrix& m) {
  Matrix out = ColumnSum(m);
  if (m.rows() > 0) out *= 1.0 / static_cast<double>(m.rows());
  return out;
}

Matrix ColumnSum(const Matrix& m) {
  Matrix out(1, m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) out.At(0, c) += row[c];
  }
  return out;
}

Matrix L2NormalizeRows(const Matrix& m) {
  Matrix out = m;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    double s = 0.0;
    for (size_t c = 0; c < out.cols(); ++c) s += row[c] * row[c];
    const double norm = std::sqrt(s);
    if (norm > 1e-12) {
      for (size_t c = 0; c < out.cols(); ++c) row[c] /= norm;
    }
  }
  return out;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  const double na = VectorNorm(a);
  const double nb = VectorNorm(b);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return Dot(a, b) / (na * nb);
}

double VectorNorm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

Matrix StackRows(const std::vector<std::vector<double>>& rows) {
  return Matrix::FromRows(rows);
}

namespace {

// In-place Cholesky A = L L^T (lower triangle of `a` becomes L).
// Returns false if the matrix is not positive definite.
bool CholeskyInPlace(Matrix* a) {
  const size_t n = a->rows();
  for (size_t j = 0; j < n; ++j) {
    double d = a->At(j, j);
    for (size_t k = 0; k < j; ++k) d -= a->At(j, k) * a->At(j, k);
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    a->At(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a->At(i, j);
      for (size_t k = 0; k < j; ++k) s -= a->At(i, k) * a->At(j, k);
      a->At(i, j) = s / ljj;
    }
  }
  return true;
}

}  // namespace

std::vector<double> SolveSpd(Matrix a, std::vector<double> b, double ridge) {
  assert(a.rows() == a.cols() && a.rows() == b.size());
  const size_t n = a.rows();
  Matrix l;
  // Escalate the ridge until the factorization succeeds (or give up).
  double r = std::max(ridge, 1e-12);
  bool ok = false;
  for (int attempt = 0; attempt < 8 && !ok; ++attempt, r *= 100.0) {
    l = a;
    for (size_t i = 0; i < n; ++i) l.At(i, i) += r;
    ok = CholeskyInPlace(&l);
  }
  if (!ok) return {};
  // Forward solve L y = b.
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l.At(i, k) * b[k];
    b[i] = s / l.At(i, i);
  }
  // Backward solve L^T x = y.
  for (size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l.At(k, ii) * b[k];
    b[ii] = s / l.At(ii, ii);
  }
  return b;
}

std::vector<double> WeightedLeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         const std::vector<double>& w,
                                         double ridge) {
  assert(x.rows() == y.size() && y.size() == w.size());
  const size_t n = x.rows(), d = x.cols();
  Matrix xtwx(d, d);
  std::vector<double> xtwy(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double wi = w[i];
    if (wi <= 0.0) continue;
    const double* row = x.RowPtr(i);
    for (size_t a = 0; a < d; ++a) {
      const double wa = wi * row[a];
      xtwy[a] += wa * y[i];
      for (size_t b = a; b < d; ++b) xtwx.At(a, b) += wa * row[b];
    }
  }
  // Mirror the upper triangle.
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) xtwx.At(b, a) = xtwx.At(a, b);
  }
  return SolveSpd(std::move(xtwx), std::move(xtwy), ridge);
}

}  // namespace fexiot
