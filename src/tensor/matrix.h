#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace fexiot {

/// \brief Dense row-major matrix of doubles.
///
/// The single numeric container used by the NLP embeddings, classical ML
/// models, GNN layers and the SHAP solver. Kept deliberately simple: no
/// views, no broadcasting — shapes are always explicit, and shape mismatches
/// assert in debug builds.
///
/// Contracts:
///  - Layout: one contiguous buffer, element (r, c) at data()[r * cols() + c].
///    RowPtr(r) is valid for cols() elements; pointers from data()/RowPtr()
///    are invalidated by Resize and by assignment/moves, like the underlying
///    std::vector's.
///  - Thread-safety: const members are safe to call concurrently. Mutation
///    requires external synchronization — the idiomatic pattern under
///    parallel::For is disjoint writes (each task owns distinct rows via
///    RowPtr), which the GEMM macro-kernel, k-means and t-SNE all follow.
///  - Indexing: At/operator() assert bounds in debug builds and perform no
///    checking in release builds.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer data (row major).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n x n.
  static Matrix Identity(size_t n);

  /// Entries ~ N(0, stddev^2).
  static Matrix RandomNormal(size_t rows, size_t cols, double stddev,
                             Rng* rng);

  /// Glorot/Xavier uniform initialization for layer weights.
  static Matrix GlorotUniform(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row \p r into a vector.
  std::vector<double> Row(size_t r) const;
  /// Overwrites row \p r (v.size() must equal cols()).
  void SetRow(size_t r, const std::vector<double>& v);

  void Fill(double value);
  void Resize(size_t rows, size_t cols, double fill = 0.0);
  /// Reshapes without initializing the payload: existing element values
  /// are unspecified afterwards and every element must be written before
  /// it is read. Never shrinks capacity, so workspace matrices reused
  /// across calls stop allocating once they have seen their peak shape
  /// (the GNN hot path relies on this; see gnn/gnn_model.h).
  void ResizeForOverwrite(size_t rows, size_t cols);

  /// In-place element-wise operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Element-wise product (Hadamard), in place.
  Matrix& HadamardInPlace(const Matrix& other);

  /// Frobenius norm.
  double Norm() const;
  /// Sum of all entries.
  double Sum() const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Human-readable rendering for debugging.
  std::string ToString(int precision = 3) const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

}  // namespace fexiot
