#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "tensor/matrix.h"

namespace fexiot {

/// \brief Compressed-sparse-row matrix of doubles.
///
/// The sparse companion of the dense Matrix, built for GNN propagation
/// matrices: interaction graphs carry a handful of edges per node, so the
/// n x n normalized adjacency is overwhelmingly structural zeros and every
/// dense propagation product burns O(n^2 d) flops where O(nnz d) suffices.
///
/// Contracts:
///  - Layout: standard CSR. row_ptr() has rows()+1 entries; the nonzeros
///    of row r are values()[row_ptr()[r] .. row_ptr()[r+1]) with column
///    indices col_idx()[...] in strictly ascending order within each row.
///    Ascending column order is load-bearing: it is what makes SpMM
///    reproduce the dense reference kernel's accumulation order bit for
///    bit (see SpMM below and docs/KERNELS.md §5).
///  - Stored values are never 0.0: FromDense, the builders, and the
///    mutators drop exact zeros (both +0.0 and -0.0), mirroring the
///    reference GEMM's zero-skip.
///  - const members are safe to call concurrently. The in-place mutators
///    (SetEntry/InsertEntry/RemoveEntry) preserve every structural
///    invariant above — ascending columns, no stored zeros — but require
///    external synchronization, like any non-const container method.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  /// \brief Builds a CSR matrix from a dense one, dropping exact zeros.
  static CsrMatrix FromDense(const Matrix& dense);

  /// \brief Builds from per-row (column, value) lists. Each row's entries
  /// must have strictly ascending column indices; zero values are dropped.
  static CsrMatrix FromRowLists(
      size_t rows, size_t cols,
      const std::vector<std::vector<std::pair<int, double>>>& row_lists);

  /// \brief Stacks \p blocks along the diagonal: the result has
  /// sum(rows) x sum(cols) shape, block b's entry (i, j) landing at
  /// (row_off[b] + i, col_off[b] + j). Row-major concatenation of
  /// ascending-column rows stays ascending, so SpMM over the stacked
  /// matrix accumulates every output row in exactly the order the
  /// per-block SpMM would — block-diagonal batching is bit-identical to
  /// running the blocks one at a time. Null block pointers are rejected
  /// by assert.
  static CsrMatrix BlockDiagonal(const std::vector<const CsrMatrix*>& blocks);

  /// \brief Densifies (testing / diagnostics; exact — no rounding).
  Matrix ToDense() const;

  /// \brief Returns the transpose as a new CSR matrix (columns stay
  /// ascending within each row). O(nnz + rows + cols).
  CsrMatrix Transposed() const;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// \brief Number of stored entries in row \p r.
  size_t RowNnz(size_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// \brief True iff entry (r, c) is structurally present.
  bool HasEntry(size_t r, int c) const;

  /// \brief Stored value at (r, c), or 0.0 when structurally absent.
  double GetEntry(size_t r, int c) const;

  /// \brief Sets entry (r, c) to \p v in place: inserts when absent,
  /// overwrites when present, erases when v == 0.0 (matching the
  /// no-stored-zeros contract). Insertion keeps the row's columns
  /// strictly ascending. O(nnz) worst case for the tail shift — cheap at
  /// interaction-graph scales, where rows hold a handful of entries.
  void SetEntry(size_t r, int c, double v);

  /// \brief SetEntry for a value known to be nonzero (asserts v != 0.0).
  void InsertEntry(size_t r, int c, double v) {
    assert(v != 0.0 && "InsertEntry requires a nonzero value");
    SetEntry(r, c, v);
  }

  /// \brief Removes entry (r, c); no-op when structurally absent.
  void RemoveEntry(size_t r, int c) { SetEntry(r, c, 0.0); }

  /// \brief Heap bytes held by the index + value arrays (the steady-state
  /// footprint a PreparedGraph carries instead of an n x n dense matrix).
  size_t MemoryBytes() const {
    return row_ptr_.capacity() * sizeof(size_t) +
           col_idx_.capacity() * sizeof(int) +
           values_.capacity() * sizeof(double);
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;  ///< rows()+1 offsets into col_idx/values
  std::vector<int> col_idx_;     ///< ascending within each row
  std::vector<double> values_;   ///< nonzero entries, row-major
};

/// \brief C = A * B with A sparse (CSR) and B, C dense. \p c is resized to
/// a.rows() x b.cols() and fully overwritten; it must not alias \p b.
///
/// Parallelism: output rows are sharded over the process pool via
/// parallel::ForRange once the product is large enough (nnz * b.cols()
/// above a fixed cutoff); small products run inline-serially. The shard
/// split never changes the arithmetic — every output row accumulates its
/// row's nonzeros in ascending column order on exactly one thread — so
/// results are bit-identical for every FEXIOT_THREADS value AND bit-
/// identical to ReferenceMatMul(a.ToDense(), b): the dense kernel skips
/// exact-zero A entries and adds the survivors in the same ascending-
/// column order (docs/KERNELS.md §5 has the full determinism argument).
void SpMM(const CsrMatrix& a, const Matrix& b, Matrix* c);

/// \brief Convenience allocating overload of SpMM.
Matrix SpMM(const CsrMatrix& a, const Matrix& b);

/// \brief C = A^T * B with A sparse (CSR). Implemented as SpMM over
/// Transposed(), whose ascending row order reproduces the scatter order
/// of ReferenceMatMulTransA bit for bit; same parallelism and determinism
/// contracts as SpMM. Allocates the transpose internally — hot paths with
/// a symmetric A (both GNN propagation forms) should call SpMM directly.
void SpMMTransA(const CsrMatrix& a, const Matrix& b, Matrix* c);

/// \brief Convenience allocating overload of SpMMTransA.
Matrix SpMMTransA(const CsrMatrix& a, const Matrix& b);

}  // namespace fexiot
