// AVX-512F GEMM microkernel: 8x16 register tile (16 zmm accumulators,
// 2 zmm B loads and 1 broadcast per depth step — 19 of the 32
// architectural zmm registers, leaving room for the compiler to
// software-pipeline the loads). Eight rows give 16 independent FMA
// chains, enough to cover 2 FMA ports x ~4-cycle latency.
//
// This translation unit builds with -mavx512f -mavx512dq -mavx512vl
// -mfma -mprefer-vector-width=512 (and only this unit); the dispatcher
// selects it only when CPUID reports avx512f. When the compiler lacks
// the flags, CMake omits FEXIOT_GEMM_AVX512 and the stub below
// unregisters the tier.

#include "tensor/gemm.h"

#if defined(FEXIOT_GEMM_AVX512)

#include <immintrin.h>

namespace fexiot {
namespace gemm {
namespace {

constexpr size_t kMr = 8;
constexpr size_t kNr = 16;

void MicroKernelAvx512(size_t kc, const double* ap, const double* bp,
                       double* c, size_t ldc, size_t rmax, size_t cmax) {
  __m512d acc[kMr][2];
  for (size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm512_setzero_pd();
    acc[r][1] = _mm512_setzero_pd();
  }
  for (size_t p = 0; p < kc; ++p) {
    const __m512d b0 = _mm512_loadu_pd(bp + p * kNr);
    const __m512d b1 = _mm512_loadu_pd(bp + p * kNr + 8);
    const double* av = ap + p * kMr;
    for (size_t r = 0; r < kMr; ++r) {
      const __m512d ar = _mm512_set1_pd(av[r]);
      acc[r][0] = _mm512_fmadd_pd(ar, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_pd(ar, b1, acc[r][1]);
    }
  }
  if (rmax == kMr && cmax == kNr) {
    for (size_t r = 0; r < kMr; ++r) {
      double* crow = c + r * ldc;
      _mm512_storeu_pd(crow,
                       _mm512_add_pd(_mm512_loadu_pd(crow), acc[r][0]));
      _mm512_storeu_pd(crow + 8,
                       _mm512_add_pd(_mm512_loadu_pd(crow + 8), acc[r][1]));
    }
  } else {
    alignas(64) double buf[kMr * kNr];
    for (size_t r = 0; r < kMr; ++r) {
      _mm512_store_pd(buf + r * kNr, acc[r][0]);
      _mm512_store_pd(buf + r * kNr + 8, acc[r][1]);
    }
    for (size_t r = 0; r < rmax; ++r) {
      double* crow = c + r * ldc;
      for (size_t j = 0; j < cmax; ++j) crow[j] += buf[r * kNr + j];
    }
  }
}

constexpr KernelInfo kAvx512Info = {
    cpu::Isa::kAvx512, "avx512", "8x16",
    /*mr=*/kMr,        /*nr=*/kNr,
    /*mc=*/64,         /*kc=*/256, /*nc=*/512,
    MicroKernelAvx512,
};

}  // namespace

const KernelInfo* Avx512Kernel() { return &kAvx512Info; }

}  // namespace gemm
}  // namespace fexiot

#else  // !FEXIOT_GEMM_AVX512

namespace fexiot {
namespace gemm {

const KernelInfo* Avx512Kernel() { return nullptr; }

}  // namespace gemm
}  // namespace fexiot

#endif
