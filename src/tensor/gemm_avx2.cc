// AVX2 + FMA GEMM microkernel: 6x8 register tile (12 ymm accumulators,
// 2 ymm B loads and 1 broadcast live per depth step — 15 of the 16
// architectural ymm registers, the classic BLIS double-precision shape).
//
// This translation unit builds with -mavx2 -mfma (and only this unit —
// the rest of the library stays at the project baseline), and the
// dispatcher never selects it unless CPUID reports avx2+fma, so the
// binary stays runnable on older hosts. When the compiler lacks the
// flags, CMake omits FEXIOT_GEMM_AVX2 and the stub below unregisters
// the tier.

#include "tensor/gemm.h"

#if defined(FEXIOT_GEMM_AVX2)

#include <immintrin.h>

namespace fexiot {
namespace gemm {
namespace {

constexpr size_t kMr = 6;
constexpr size_t kNr = 8;

void MicroKernelAvx2(size_t kc, const double* ap, const double* bp,
                     double* c, size_t ldc, size_t rmax, size_t cmax) {
  __m256d acc[kMr][2];
  for (size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_pd();
    acc[r][1] = _mm256_setzero_pd();
  }
  for (size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(bp + p * kNr);
    const __m256d b1 = _mm256_loadu_pd(bp + p * kNr + 4);
    const double* av = ap + p * kMr;
    for (size_t r = 0; r < kMr; ++r) {
      const __m256d ar = _mm256_broadcast_sd(av + r);
      acc[r][0] = _mm256_fmadd_pd(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(ar, b1, acc[r][1]);
    }
  }
  if (rmax == kMr && cmax == kNr) {
    for (size_t r = 0; r < kMr; ++r) {
      double* crow = c + r * ldc;
      _mm256_storeu_pd(crow,
                       _mm256_add_pd(_mm256_loadu_pd(crow), acc[r][0]));
      _mm256_storeu_pd(crow + 4,
                       _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc[r][1]));
    }
  } else {
    alignas(32) double buf[kMr * kNr];
    for (size_t r = 0; r < kMr; ++r) {
      _mm256_store_pd(buf + r * kNr, acc[r][0]);
      _mm256_store_pd(buf + r * kNr + 4, acc[r][1]);
    }
    for (size_t r = 0; r < rmax; ++r) {
      double* crow = c + r * ldc;
      for (size_t j = 0; j < cmax; ++j) crow[j] += buf[r * kNr + j];
    }
  }
}

constexpr KernelInfo kAvx2Info = {
    cpu::Isa::kAvx2, "avx2", "6x8",
    /*mr=*/kMr,      /*nr=*/kNr,
    /*mc=*/60,  // multiple of mr=6; same L2 budget as the 64-row tiers
    /*kc=*/256, /*nc=*/512,
    MicroKernelAvx2,
};

}  // namespace

const KernelInfo* Avx2Kernel() { return &kAvx2Info; }

}  // namespace gemm
}  // namespace fexiot

#else  // !FEXIOT_GEMM_AVX2

namespace fexiot {
namespace gemm {

const KernelInfo* Avx2Kernel() { return nullptr; }

}  // namespace gemm
}  // namespace fexiot

#endif
