#include "tensor/matrix.h"

#include <cmath>
#include <sstream>

namespace fexiot {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomNormal(size_t rows, size_t cols, double stddev,
                            Rng* rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng->Normal(0.0, stddev);
  return m;
}

Matrix Matrix::GlorotUniform(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& x : m.data_) x = rng->Uniform(-limit, limit);
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<double>& v) {
  assert(r < rows_ && v.size() == cols_);
  std::copy(v.begin(), v.end(), RowPtr(r));
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(size_t rows, size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

void Matrix::ResizeForOverwrite(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix& Matrix::HadamardInPlace(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

double Matrix::Norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[\n";
  for (size_t r = 0; r < rows_; ++r) {
    os << "  ";
    for (size_t c = 0; c < cols_; ++c) {
      os << At(r, c);
      if (c + 1 < cols_) os << ", ";
    }
    os << "\n";
  }
  os << "]";
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

}  // namespace fexiot
