// Scalar (portable C++) GEMM microkernel: the reference tier of the
// runtime ISA dispatch and the fallback on hosts/builds without AVX2.
//
// This translation unit builds with -ffp-contract=off (see
// src/tensor/CMakeLists.txt): every accumulator update is a rounded
// multiply followed by a rounded add, so the scalar tier produces the
// same bits on every host and compiler regardless of FMA availability.
// The SIMD tiers fuse the multiply-add; docs/KERNELS.md documents the
// resulting cross-ISA ULP bound that tests/test_kernels.cc enforces.

#include "tensor/gemm.h"

namespace fexiot {
namespace gemm {
namespace {

constexpr size_t kMr = 4;
constexpr size_t kNr = 16;

// The row dimension is unrolled by hand into four independent accumulator
// arrays so the compiler vectorizes the j loop directly: each acc row is
// kNr contiguous doubles updated by a broadcast of one A value. A
// two-dimensional acc[kMr][kNr] formulation tempted GCC into outer-loop
// vectorization with a per-iteration permute storm (~14x slower at -O3).
void MicroKernelScalar(size_t kc, const double* ap, const double* bp,
                       double* c, size_t ldc, size_t rmax, size_t cmax) {
  double acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (size_t p = 0; p < kc; ++p) {
    const double a0 = ap[p * kMr + 0], a1 = ap[p * kMr + 1];
    const double a2 = ap[p * kMr + 2], a3 = ap[p * kMr + 3];
    const double* bv = bp + p * kNr;
    for (size_t j = 0; j < kNr; ++j) {
      const double bj = bv[j];
      acc0[j] += a0 * bj;
      acc1[j] += a1 * bj;
      acc2[j] += a2 * bj;
      acc3[j] += a3 * bj;
    }
  }
  const double* accs[kMr] = {acc0, acc1, acc2, acc3};
  for (size_t r = 0; r < rmax; ++r) {
    double* crow = c + r * ldc;
    for (size_t j = 0; j < cmax; ++j) crow[j] += accs[r][j];
  }
}

constexpr KernelInfo kScalarInfo = {
    cpu::Isa::kScalar, "scalar", "4x16",
    /*mr=*/kMr,        /*nr=*/kNr,
    /*mc=*/64,         /*kc=*/256, /*nc=*/512,
    MicroKernelScalar,
};

}  // namespace

const KernelInfo* ScalarKernel() { return &kScalarInfo; }

}  // namespace gemm
}  // namespace fexiot
