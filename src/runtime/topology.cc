#include "runtime/topology.h"

#include <algorithm>
#include <cstdio>

#include "runtime/event_queue.h"

namespace fexiot {

Status ValidateTreeTopology(const TreeTopologyConfig& config) {
  if (config.edge_fanout < 0 || config.regional_fanout < 0) {
    return Status::InvalidArgument(
        "topology: edge_fanout/regional_fanout must be >= 0");
  }
  if (config.regional_fanout > 0 && config.edge_fanout == 0) {
    return Status::InvalidArgument(
        "topology: regional_fanout requires edge_fanout > 0");
  }
  if (config.aggregator_crash_prob < 0.0 ||
      config.aggregator_crash_prob >= 1.0) {
    return Status::InvalidArgument(
        "topology: aggregator_crash_prob must be in [0, 1)");
  }
  if (config.aggregator_rejoin_rounds < 1) {
    return Status::InvalidArgument(
        "topology: aggregator_rejoin_rounds must be >= 1");
  }
  for (const LinkModel* link : {&config.edge_up, &config.regional_up}) {
    if (link->latency_s < 0.0 || link->bandwidth_bps < 0.0 ||
        link->jitter_s < 0.0) {
      return Status::InvalidArgument(
          "topology: interior latency/bandwidth/jitter must be >= 0");
    }
    if (link->loss_prob != 0.0) {
      return Status::InvalidArgument(
          "topology: interior links are reliable (loss_prob must be 0; "
          "model interior failure via aggregator_crash_prob)");
    }
  }
  return Status::OK();
}

void StreamingAccumulator::Add(double weight, const std::vector<double>& x) {
  if (sum_.empty()) sum_.assign(x.size(), 0.0);
  for (size_t i = 0; i < x.size(); ++i) sum_[i] += weight * x[i];
  weight_sum_ += weight;
  ++count_;
}

void StreamingAccumulator::Merge(const StreamingAccumulator& other) {
  if (other.empty()) return;
  if (sum_.empty()) sum_.assign(other.sum_.size(), 0.0);
  for (size_t i = 0; i < other.sum_.size(); ++i) sum_[i] += other.sum_[i];
  weight_sum_ += other.weight_sum_;
  count_ += other.count_;
}

std::vector<double> StreamingAccumulator::Mean() const {
  if (count_ == 0 || weight_sum_ <= 0.0) return {};
  std::vector<double> out(sum_);
  for (double& v : out) v /= weight_sum_;
  return out;
}

AggregationTree::AggregationTree(const TreeTopologyConfig& config,
                                 uint64_t seed)
    : config_(config), base_(seed) {}

int AggregationTree::depth() const {
  if (config_.edge_fanout <= 0) return 1;
  return config_.regional_fanout > 0 ? 3 : 2;
}

bool AggregationTree::AggregatorAlive(int round, int tier, int node) const {
  if (config_.aggregator_crash_prob <= 0.0) return true;
  for (int back = 0; back < config_.aggregator_rejoin_rounds; ++back) {
    const int r = round - back;
    if (r < 0) break;
    Rng draw = base_.ForkAt(MixKey(static_cast<uint64_t>(r) + 1,
                                   static_cast<uint64_t>(tier) + 1,
                                   static_cast<uint64_t>(node) + 1));
    if (draw.Bernoulli(config_.aggregator_crash_prob)) return false;
  }
  return true;
}

double AggregationTree::InteriorTransferSeconds(int round, int tier,
                                                int node,
                                                double bytes) const {
  const LinkModel& link = tier == 0 ? config_.edge_up : config_.regional_up;
  double t = link.latency_s;
  if (link.bandwidth_bps > 0.0) t += bytes / link.bandwidth_bps;
  if (link.jitter_s > 0.0) {
    Rng draw = base_.ForkAt(MixKey(static_cast<uint64_t>(round) + 1,
                                   static_cast<uint64_t>(tier) + 100,
                                   static_cast<uint64_t>(node) + 1));
    t += draw.Uniform(0.0, link.jitter_s);
  }
  return t;
}

namespace {

void TraceForward(std::vector<std::string>* trace, int round, int tier,
                  int node, int members, double arrive) {
  if (trace == nullptr) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "round=%d tree-fwd tier=%d node=%d n=%d "
                "t=%.6f", round, tier, node, members, arrive);
  trace->push_back(buf);
}

void TraceCrash(std::vector<std::string>* trace, int round, int tier,
                int node, int lost) {
  if (trace == nullptr) return;
  char buf[80];
  std::snprintf(buf, sizeof(buf), "round=%d tree-crash tier=%d node=%d "
                "lost=%d", round, tier, node, lost);
  trace->push_back(buf);
}

}  // namespace

TreeDelivery AggregationTree::Route(int round,
                                    const std::vector<TreeArrival>& arrivals,
                                    double agg_msg_bytes,
                                    std::vector<std::string>* trace) const {
  TreeDelivery out;
  out.hop_bytes.assign(static_cast<size_t>(depth()), 0.0);
  if (!enabled() || arrivals.empty()) return out;

  // Tier 0: edge aggregators. Arrivals are ascending by client, and
  // EdgeOf is monotone, so edge groups are contiguous ascending runs.
  struct Forward {
    int node = 0;
    double arrive_s = 0.0;
    size_t first = 0;  ///< [first, last) range into `arrivals`
    size_t last = 0;
  };
  std::vector<Forward> edge_forwards;
  size_t i = 0;
  while (i < arrivals.size()) {
    const int edge = EdgeOf(arrivals[i].client);
    size_t j = i;
    double latest = 0.0;
    while (j < arrivals.size() && EdgeOf(arrivals[j].client) == edge) {
      latest = std::max(latest, arrivals[j].edge_arrival_s);
      ++j;
    }
    const int members = static_cast<int>(j - i);
    if (!AggregatorAlive(round, /*tier=*/0, edge)) {
      ++out.aggregator_crashes;
      out.subtree_lost += members;
      TraceCrash(trace, round, 0, edge, members);
    } else {
      Forward fwd;
      fwd.node = edge;
      fwd.arrive_s =
          latest + InteriorTransferSeconds(round, 0, edge, agg_msg_bytes);
      fwd.first = i;
      fwd.last = j;
      out.hop_bytes[1] += agg_msg_bytes;
      ++out.edge_forwards;
      TraceForward(trace, round, 0, edge, members, fwd.arrive_s);
      edge_forwards.push_back(fwd);
    }
    i = j;
  }

  auto deliver_range = [&](size_t first, size_t last, double root_arrival) {
    for (size_t k = first; k < last; ++k) {
      out.delivered.push_back(arrivals[k].client);
      out.root_arrival_s.push_back(root_arrival);
    }
    out.last_arrival_s = std::max(out.last_arrival_s, root_arrival);
  };

  if (config_.regional_fanout <= 0) {
    // Depth 2: edge forwards land at the root directly.
    for (const Forward& fwd : edge_forwards) {
      deliver_range(fwd.first, fwd.last, fwd.arrive_s);
    }
    return out;
  }

  // Tier 1: regional aggregators, again contiguous ascending runs.
  size_t e = 0;
  while (e < edge_forwards.size()) {
    const int regional = RegionalOf(edge_forwards[e].node);
    size_t f = e;
    double latest = 0.0;
    int members = 0;
    while (f < edge_forwards.size() &&
           RegionalOf(edge_forwards[f].node) == regional) {
      latest = std::max(latest, edge_forwards[f].arrive_s);
      members +=
          static_cast<int>(edge_forwards[f].last - edge_forwards[f].first);
      ++f;
    }
    if (!AggregatorAlive(round, /*tier=*/1, regional)) {
      ++out.aggregator_crashes;
      out.subtree_lost += members;
      TraceCrash(trace, round, 1, regional, members);
    } else {
      const double root_arrival =
          latest +
          InteriorTransferSeconds(round, 1, regional, agg_msg_bytes);
      out.hop_bytes[2] += agg_msg_bytes;
      ++out.regional_forwards;
      TraceForward(trace, round, 1, regional, members, root_arrival);
      for (size_t k = e; k < f; ++k) {
        deliver_range(edge_forwards[k].first, edge_forwards[k].last,
                      root_arrival);
      }
    }
    e = f;
  }
  return out;
}

}  // namespace fexiot
