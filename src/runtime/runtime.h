#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "runtime/async_policy.h"
#include "runtime/codec.h"
#include "runtime/event_queue.h"
#include "runtime/fault_model.h"
#include "runtime/network_model.h"
#include "runtime/topology.h"

namespace fexiot {

/// \brief Server round-completion policy.
enum class RoundPolicy : int {
  /// Wait for every surviving upload (today's paper behavior; with zero
  /// latency and no faults this is exactly the synchronous simulator).
  kSynchronous = 0,
  /// Close the round at a fixed simulated deadline, aggregating whatever
  /// arrived; over-selects clients so stragglers do not starve the round.
  kDeadline = 1,
  /// Wait for every upload, but lost updates are retransmitted after a
  /// timeout with exponential backoff (up to max_retries attempts).
  kTimeoutRetry = 2,
  /// Fully asynchronous (FedAsync-style): the server applies each arriving
  /// update immediately with a staleness-decayed mixing weight
  /// alpha(s) = async_alpha0 * (s+1)^-async_staleness_exponent and moves on
  /// once a target_fraction quorum of updates has been applied. Lost
  /// updates are never retried (fire-and-forget uplinks).
  kAsync = 3,
  /// Semi-asynchronous (FedCompass-style): per-client EWMA speed estimates
  /// group expected arrivals into semi_async_tiers tiers; each tier is
  /// aggregated as a mini-batch with per-tier staleness weighting, and the
  /// wave closes once the applied tiers cover a target_fraction quorum.
  kSemiAsync = 4,
};

const char* RoundPolicyName(RoundPolicy policy);

/// \brief Configuration of the discrete-event federated runtime.
///
/// The default configuration is the *passthrough* runtime: synchronous
/// rounds, zero-latency links, no faults. Under it every client
/// participates and delivers instantly, which reproduces the paper's
/// synchronous federated results bit-identically (DESIGN.md 5.7).
struct RuntimeConfig {
  RoundPolicy policy = RoundPolicy::kSynchronous;

  /// Deadline policy: simulated seconds the server waits per round.
  double deadline_s = 0.0;
  /// Deadline / async / semi-async: fraction of clients the server wants
  /// per round. The deadline policy sizes its over-selection from it; the
  /// async policies close their dispatch wave once this fraction of
  /// participants' updates has been applied (quorum).
  double target_fraction = 1.0;
  /// Deadline policy: when > 0, the deadline adapts per round to this
  /// running quantile of all observed arrival offsets (seconds after round
  /// start) across previous rounds; deadline_s only seeds round 0. 0
  /// keeps the fixed deadline.
  double adaptive_deadline_quantile = 0.0;
  /// Deadline policy: over-selection factor — ceil(target_fraction *
  /// over_selection * n) clients are invited to absorb stragglers.
  double over_selection = 1.0;

  /// Timeout+retry policy: seconds after sending before a lost update is
  /// retransmitted; doubled^attempt by backoff_factor.
  double retry_timeout_s = 1.0;
  int max_retries = 2;
  double backoff_factor = 2.0;

  /// Downlink loss recovery (any policy): seconds after round start a
  /// client waits for the model broadcast before requesting a re-send;
  /// scaled by backoff_factor^attempt on later re-fetches. Only consulted
  /// when a downlink's loss_prob > 0.
  double refetch_timeout_s = 1.0;
  /// Broadcast re-sends a client may request before giving the round up.
  int max_refetches = 2;

  /// Async policy: base mixing weight alpha(0) of a perfectly fresh
  /// update, in (0, 1].
  double async_alpha0 = 0.6;
  /// Async policy: polynomial staleness decay exponent a in
  /// alpha(s) = alpha0 * (s+1)^-a; 0 disables the decay.
  double async_staleness_exponent = 0.5;
  /// Semi-async policy: number of co-scheduled arrival tiers (>= 1).
  int semi_async_tiers = 3;
  /// Semi-async policy: EWMA weight on the newest observed round-trip
  /// time, in (0, 1].
  double speed_ewma_beta = 0.5;

  /// Compute model: simulated seconds of local training per prepared
  /// graph per epoch (scaled by the client's straggler slowdown).
  double train_seconds_per_graph = 0.0;

  /// Sampled participation: fraction of alive clients invited per round
  /// (seeded per-round sampling). 1.0 invites everyone — the passthrough
  /// default, bit-identical to the pre-sampling runtime.
  double participation_fraction = 1.0;

  /// Hierarchical aggregation topology (edge -> regional -> root). The
  /// default flat topology (edge_fanout == 0) leaves the round untouched.
  /// Only the synchronous and fixed-deadline policies support the tree:
  /// retry/async semantics interleave with interior forwarding in ways the
  /// post-pass router does not model (rejected by ValidateRuntimeConfig).
  TreeTopologyConfig topology;

  /// Wire payload codec negotiated with every client (runtime/codec.h).
  /// kFp64 is the bit-exact passthrough default; the lossy codecs shrink
  /// the priced message sizes (and therefore every simulated transfer).
  WireCodec wire_codec = WireCodec::kFp64;
  /// Per-client codec overrides; clients beyond the vector use wire_codec.
  std::vector<WireCodec> client_codecs;

  LinkModel default_down;
  LinkModel default_up;
  /// Per-client link overrides; clients beyond the vector use the default.
  std::vector<LinkModel> down_links;
  std::vector<LinkModel> up_links;

  ClientFaultProfile default_fault;
  /// Per-client fault overrides; clients beyond the vector use the default.
  std::vector<ClientFaultProfile> faults;

  /// Record a human-readable deterministic event trace (testing/CI).
  bool record_trace = false;
  uint64_t seed = 0x7E57AB1EULL;
};

/// \brief Rejects out-of-range runtime knobs with a descriptive Status.
Status ValidateRuntimeConfig(const RuntimeConfig& config);

/// \brief One server-side model application under the async policies.
struct UpdateApplication {
  int client = -1;
  /// Server model updates applied between this client's dispatch and the
  /// application of its update (kAsync: per-update; kSemiAsync: per-tier).
  int staleness = 0;
  /// Semi-async tier the update was batched into; -1 under kAsync.
  int tier = -1;
  double arrival_s = 0.0;
};

/// \brief Outcome of one simulated federated round.
struct RoundOutcome {
  /// Clients selected and alive this round (sorted ascending). These are
  /// the clients that run local training.
  std::vector<int> participants;
  /// Clients whose updates reached the server in time (sorted ascending).
  /// Aggregation is restricted to these.
  std::vector<int> delivered;
  double start_time_s = 0.0;
  double end_time_s = 0.0;
  /// Bytes of retransmitted updates (attempt > 0) this round.
  double retransmit_bytes = 0.0;
  int retransmissions = 0;
  /// Updates permanently lost this round (retries exhausted or no retry).
  int lost_updates = 0;
  /// Broadcasts permanently lost this round (re-fetches exhausted): the
  /// client never receives the model and never trains.
  int lost_broadcasts = 0;
  /// Broadcast re-sends triggered by client re-fetch requests.
  int broadcast_refetches = 0;
  /// Updates that arrived after the deadline and were discarded.
  int late_updates = 0;
  /// Async policies: every applied update in deterministic server
  /// application order — the event scheduler's (time, tie_key, seq) pop
  /// order — with its staleness and (semi-async) tier. Empty for the
  /// round-based policies.
  std::vector<UpdateApplication> applied;
  /// Redundant deliveries ignored by first-arrival-wins bookkeeping.
  int duplicate_deliveries = 0;
  /// Deadline policy: the deadline actually used this round (equals
  /// config.deadline_s unless adaptive tuning is on).
  double effective_deadline_s = 0.0;
  /// Hierarchical topology: bytes crossing each uplink tier this round
  /// (0: clients->edge incl. lost transmissions, 1: edge->parent,
  /// 2: regional->root). Empty under the flat topology.
  std::vector<double> hop_bytes;
  /// Aggregators down this round (tree topology only).
  int aggregator_crashes = 0;
  /// Arrived updates dropped because an aggregator on their path crashed.
  int subtree_lost_updates = 0;
  /// Real on-wire uplink bytes this round: every upload copy that left a
  /// client (first attempts, retransmissions, and copies lost in transit —
  /// the bytes are spent either way), priced from the encoded message
  /// sizes the caller passed in.
  double uplink_wire_bytes = 0.0;
  /// Real on-wire downlink bytes this round: every broadcast copy that
  /// left the server, including re-fetch re-sends and lost copies.
  double downlink_wire_bytes = 0.0;
};

/// \brief Deterministic discrete-event federated round executor.
///
/// FederatedSimulator drives one ExecuteRound call per federated round:
/// the runtime decides who participates (crash/rejoin), prices the model
/// broadcast and every layer-update upload through the per-link network
/// model from serialized message sizes, injects stragglers and losses, and
/// applies the server's round policy. It simulates *timing and delivery*
/// only — the actual training/aggregation math stays in the simulator, so
/// the passthrough configuration leaves results bit-identical.
///
/// Determinism: the scheduler is strictly serial and every stochastic draw
/// is counter-based (pure function of seed and the draw's identity), so
/// the event trace and outcome are identical for any FEXIOT_THREADS.
class FederatedRuntime {
 public:
  FederatedRuntime(const RuntimeConfig& config, int num_clients);

  /// Simulates round \p round: \p broadcast_bytes is the serialized
  /// downlink message size per client; \p upload_bytes[c] the total
  /// serialized upload of client c; \p train_seconds[c] its nominal local
  /// training time (scaled by the straggler profile inside).
  RoundOutcome ExecuteRound(int round, double broadcast_bytes,
                            const std::vector<double>& upload_bytes,
                            const std::vector<double>& train_seconds);

  /// Per-client downlink form: \p broadcast_bytes[c] is the serialized
  /// downlink message size for client c. A mixed-codec fleet encodes each
  /// client's broadcast with its own negotiated codec, so downlink sizes
  /// differ per client; the scalar overload above is the uniform special
  /// case and stays bit-identical.
  RoundOutcome ExecuteRound(int round,
                            const std::vector<double>& broadcast_bytes,
                            const std::vector<double>& upload_bytes,
                            const std::vector<double>& train_seconds);

  /// Simulated wall-clock after the last executed round.
  double now() const { return now_; }

  /// Event trace (empty unless config.record_trace).
  const std::vector<std::string>& trace() const { return trace_; }

  const RuntimeConfig& config() const { return config_; }

 private:
  void SendUpload(EventQueue* queue, RoundOutcome* outcome, int round,
                  int client, int attempt, double send_time,
                  const std::vector<double>& upload_bytes);
  /// Prices one broadcast copy and schedules its arrival (or its loss,
  /// when the downlink's loss draw fires).
  void SendBroadcast(EventQueue* queue, RoundOutcome* outcome, int round,
                     int client, int attempt, double send_time,
                     double broadcast_bytes);
  void Trace(int round, const SimEvent& event);
  void TraceLine(const std::string& line);
  /// Deadline the deadline policy uses for \p round (adaptive or fixed).
  double EffectiveDeadline() const;

  RuntimeConfig config_;
  int num_clients_;
  NetworkModel network_;
  FaultModel faults_;
  AggregationTree tree_;
  Rng select_rng_;
  double now_ = 0.0;
  std::vector<std::string> trace_;
  // Per-round scratch (indexed by client).
  std::vector<double> send_time_;
  ArrivalTracker tracker_;
  // Semi-async persistent per-client round-trip-time estimates.
  std::vector<EwmaSpeed> speed_;
  // Deadline policy: running quantile of arrival offsets (adaptive tuning).
  RunningQuantile arrival_quantile_;
};

}  // namespace fexiot
