#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fexiot {

/// \brief FedAsync-style polynomial staleness decay:
/// alpha(s) = alpha0 * (s + 1)^-exponent.
///
/// \p staleness counts the server model updates applied between the moment
/// the client's model copy was dispatched and the moment its update is
/// applied. alpha(0) == alpha0; the weight decays monotonically in s when
/// exponent > 0 and is constant when exponent == 0. Pure function — the
/// property tests in tests/test_async_policy.cc pin monotonicity and bounds.
double StalenessWeight(double alpha0, double exponent, int staleness);

/// \brief Per-client EWMA estimator of observed round-trip time (dispatch
/// to server-side arrival), the speed signal behind semi-async tiering.
///
/// estimate <- (1 - beta) * estimate + beta * observation, with the first
/// observation installed verbatim. Predict() returns +infinity until the
/// first observation, so never-observed clients sort into the last tier
/// (conservative: an unknown client cannot stall a fast tier).
class EwmaSpeed {
 public:
  explicit EwmaSpeed(double beta = 0.5) : beta_(beta) {}

  void Observe(double rtt_s);
  bool initialized() const { return initialized_; }
  /// Predicted round-trip seconds; +infinity before the first observation.
  double Predict() const;

 private:
  double beta_;
  double estimate_ = 0.0;
  bool initialized_ = false;
};

/// \brief Groups clients into \p num_tiers arrival tiers (FedCompass-style
/// co-scheduling): sort positions by (expected arrival, position) and chunk
/// the sorted order into contiguous near-equal groups.
///
/// Returns the tier index of each input position (same length as
/// \p expected_arrival_s). Ties — including the all-unknown first wave,
/// where every prediction is +infinity — break by position, so the
/// assignment is a pure function of the inputs. With fewer clients than
/// tiers the trailing tiers are simply empty.
std::vector<int> AssignTiers(const std::vector<double>& expected_arrival_s,
                             int num_tiers);

/// \brief Exact running quantile over all samples seen so far (sorted
/// inserts), used for adaptive deadline tuning. For n samples Value()
/// returns the element at ceil(q * n) - 1 of the sorted order — the
/// smallest sample v such that at least a q-fraction of samples are <= v.
class RunningQuantile {
 public:
  explicit RunningQuantile(double q) : q_(q) {}

  void Add(double v);
  bool empty() const { return sorted_.empty(); }
  size_t count() const { return sorted_.size(); }
  /// Quantile of the samples so far. Must not be called while empty().
  double Value() const;

 private:
  double q_;
  std::vector<double> sorted_;  ///< ascending
};

/// \brief First-arrival bookkeeping shared by every server policy.
///
/// The first arrival of a client's update wins; redundant deliveries (the
/// duplicate-delivery negative path: a retransmission racing the original,
/// or a replayed message) are rejected and counted instead of being applied
/// twice. Purely deterministic — state is a function of the Arrive call
/// sequence, which the event scheduler already makes a pure function of the
/// seed.
class ArrivalTracker {
 public:
  explicit ArrivalTracker(int num_clients);

  /// Records the first arrival of \p client at \p time_s. Returns false
  /// (and counts a duplicate) when the client already arrived.
  bool Arrive(int client, double time_s);

  bool arrived(int client) const {
    return arrived_[static_cast<size_t>(client)] != 0;
  }
  double arrival_time(int client) const {
    return arrival_time_[static_cast<size_t>(client)];
  }
  int arrivals() const { return arrivals_; }
  int duplicates() const { return duplicates_; }

  /// Clears per-wave state (keeps the client capacity).
  void Reset();

 private:
  std::vector<char> arrived_;
  std::vector<double> arrival_time_;
  int arrivals_ = 0;
  int duplicates_ = 0;
};

}  // namespace fexiot
