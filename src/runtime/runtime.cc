#include "runtime/runtime.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fexiot {

const char* RoundPolicyName(RoundPolicy policy) {
  switch (policy) {
    case RoundPolicy::kSynchronous:
      return "synchronous";
    case RoundPolicy::kDeadline:
      return "deadline";
    case RoundPolicy::kTimeoutRetry:
      return "timeout-retry";
  }
  return "?";
}

namespace {

Status ValidateLink(const LinkModel& link, const char* what) {
  if (link.latency_s < 0.0 || link.bandwidth_bps < 0.0 ||
      link.jitter_s < 0.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": latency/bandwidth/jitter must be >= 0");
  }
  if (link.loss_prob < 0.0 || link.loss_prob >= 1.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": loss_prob must be in [0, 1)");
  }
  return Status::OK();
}

Status ValidateFault(const ClientFaultProfile& fault, const char* what) {
  if (fault.slowdown <= 0.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": slowdown must be > 0");
  }
  if (fault.crash_prob < 0.0 || fault.crash_prob >= 1.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": crash_prob must be in [0, 1)");
  }
  if (fault.drop_update_prob < 0.0 || fault.drop_update_prob >= 1.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": drop_update_prob must be in [0, 1)");
  }
  if (fault.rejoin_rounds < 1) {
    return Status::InvalidArgument(std::string(what) +
                                   ": rejoin_rounds must be >= 1");
  }
  return Status::OK();
}

}  // namespace

Status ValidateRuntimeConfig(const RuntimeConfig& config) {
  if (config.policy == RoundPolicy::kDeadline && config.deadline_s <= 0.0) {
    return Status::InvalidArgument(
        "runtime: deadline policy requires deadline_s > 0");
  }
  if (config.target_fraction <= 0.0 || config.target_fraction > 1.0) {
    return Status::InvalidArgument(
        "runtime: target_fraction must be in (0, 1]");
  }
  if (config.over_selection < 1.0) {
    return Status::InvalidArgument("runtime: over_selection must be >= 1");
  }
  if (config.policy == RoundPolicy::kTimeoutRetry &&
      config.retry_timeout_s <= 0.0) {
    return Status::InvalidArgument(
        "runtime: timeout-retry policy requires retry_timeout_s > 0");
  }
  if (config.max_retries < 0) {
    return Status::InvalidArgument("runtime: max_retries must be >= 0");
  }
  if (config.backoff_factor < 1.0) {
    return Status::InvalidArgument("runtime: backoff_factor must be >= 1");
  }
  if (config.train_seconds_per_graph < 0.0) {
    return Status::InvalidArgument(
        "runtime: train_seconds_per_graph must be >= 0");
  }
  FEXIOT_RETURN_NOT_OK(ValidateLink(config.default_down, "runtime downlink"));
  FEXIOT_RETURN_NOT_OK(ValidateLink(config.default_up, "runtime uplink"));
  for (const LinkModel& l : config.down_links) {
    FEXIOT_RETURN_NOT_OK(ValidateLink(l, "runtime downlink"));
  }
  for (const LinkModel& l : config.up_links) {
    FEXIOT_RETURN_NOT_OK(ValidateLink(l, "runtime uplink"));
  }
  FEXIOT_RETURN_NOT_OK(ValidateFault(config.default_fault, "runtime fault"));
  for (const ClientFaultProfile& f : config.faults) {
    FEXIOT_RETURN_NOT_OK(ValidateFault(f, "runtime fault"));
  }
  return Status::OK();
}

FederatedRuntime::FederatedRuntime(const RuntimeConfig& config,
                                   int num_clients)
    : config_(config),
      num_clients_(num_clients),
      network_(config.default_down, config.default_up, config.down_links,
               config.up_links, MixKey(config.seed, /*net*/ 11)),
      faults_(config.default_fault, config.faults, num_clients,
              MixKey(config.seed, /*fault*/ 13)),
      select_rng_(MixKey(config.seed, /*select*/ 17)),
      send_time_(static_cast<size_t>(num_clients), 0.0),
      arrival_time_(static_cast<size_t>(num_clients), 0.0),
      arrived_(static_cast<size_t>(num_clients), 0) {}

void FederatedRuntime::TraceLine(const std::string& line) {
  if (config_.record_trace) trace_.push_back(line);
}

void FederatedRuntime::Trace(int round, const SimEvent& event) {
  if (!config_.record_trace) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "r=%d t=%.6f %s c=%d a=%d", round,
                event.time, EventKindName(event.kind), event.client,
                event.attempt);
  trace_.push_back(buf);
}

void FederatedRuntime::SendUpload(EventQueue* queue, RoundOutcome* outcome,
                                  int round, int client, int attempt,
                                  double send_time,
                                  const std::vector<double>& upload_bytes) {
  send_time_[static_cast<size_t>(client)] = send_time;
  if (attempt > 0) {
    ++outcome->retransmissions;
    outcome->retransmit_bytes += upload_bytes[static_cast<size_t>(client)];
  }
  const double duration =
      network_.TransferSeconds(round, client, LinkDirection::kUp, attempt,
                               upload_bytes[static_cast<size_t>(client)]);
  const bool lost = network_.LostInTransit(round, client, attempt) ||
                    faults_.DropsUpdate(round, client, attempt);
  queue->Schedule(send_time + duration,
                  lost ? EventKind::kUploadLost : EventKind::kUploadArrive,
                  client, attempt);
}

RoundOutcome FederatedRuntime::ExecuteRound(
    int round, double broadcast_bytes, const std::vector<double>& upload_bytes,
    const std::vector<double>& train_seconds) {
  RoundOutcome outcome;
  outcome.start_time_s = now_;
  std::fill(arrived_.begin(), arrived_.end(), 0);

  // 1. Selection: crash/rejoin filter, then policy-driven (over-)selection.
  std::vector<int> alive;
  for (int c = 0; c < num_clients_; ++c) {
    if (faults_.Alive(round, c)) alive.push_back(c);
  }
  outcome.participants = alive;
  if (config_.policy == RoundPolicy::kDeadline && !alive.empty()) {
    // Absorb fp dust before the ceil so e.g. 0.4 * 1.5 * 10 invites
    // exactly 6 clients, not 7.
    const double invited = config_.target_fraction * config_.over_selection *
                           static_cast<double>(num_clients_);
    const size_t want = std::min(
        alive.size(),
        static_cast<size_t>(std::max(1.0, std::ceil(invited - 1e-9))));
    if (want < alive.size()) {
      Rng r = select_rng_.ForkAt(static_cast<uint64_t>(round) + 1);
      const std::vector<size_t> picks =
          r.SampleWithoutReplacement(alive.size(), want);
      std::vector<int> selected;
      selected.reserve(want);
      for (size_t i : picks) selected.push_back(alive[i]);
      std::sort(selected.begin(), selected.end());
      outcome.participants = std::move(selected);
    }
  }
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "round=%d policy=%s start=%.6f participants=%zu", round,
                  RoundPolicyName(config_.policy), outcome.start_time_s,
                  outcome.participants.size());
    TraceLine(buf);
  }

  // 2. Discrete-event simulation of broadcast -> train -> upload.
  EventQueue queue(MixKey(config_.seed, static_cast<uint64_t>(round) + 1));
  for (int c : outcome.participants) {
    queue.Schedule(now_ + network_.TransferSeconds(round, c,
                                                   LinkDirection::kDown, 0,
                                                   broadcast_bytes),
                   EventKind::kDownlinkArrive, c, 0);
  }
  double last_event_time = now_;
  while (!queue.empty()) {
    const SimEvent ev = queue.Pop();
    last_event_time = std::max(last_event_time, ev.time);
    Trace(round, ev);
    const size_t c = static_cast<size_t>(ev.client);
    switch (ev.kind) {
      case EventKind::kDownlinkArrive: {
        const double finish =
            ev.time + train_seconds[c] * faults_.Slowdown(ev.client);
        SendUpload(&queue, &outcome, round, ev.client, 0, finish,
                   upload_bytes);
        break;
      }
      case EventKind::kUploadArrive:
        if (arrived_[c] == 0) {
          arrived_[c] = 1;
          arrival_time_[c] = ev.time;
        }
        break;
      case EventKind::kUploadLost:
        if (config_.policy == RoundPolicy::kTimeoutRetry &&
            ev.attempt < config_.max_retries) {
          // The sender times out waiting for the server ack and
          // retransmits with exponential backoff.
          const double resend = std::max(
              ev.time, send_time_[c] + config_.retry_timeout_s *
                                           std::pow(config_.backoff_factor,
                                                    ev.attempt));
          queue.Schedule(resend, EventKind::kRetrySend, ev.client,
                         ev.attempt + 1);
        } else {
          ++outcome.lost_updates;
        }
        break;
      case EventKind::kRetrySend:
        SendUpload(&queue, &outcome, round, ev.client, ev.attempt, ev.time,
                   upload_bytes);
        break;
    }
  }

  // 3. Round-completion policy.
  const double deadline = outcome.start_time_s + config_.deadline_s;
  for (int c : outcome.participants) {
    if (arrived_[static_cast<size_t>(c)] == 0) continue;
    if (config_.policy == RoundPolicy::kDeadline &&
        arrival_time_[static_cast<size_t>(c)] > deadline) {
      ++outcome.late_updates;
      continue;
    }
    outcome.delivered.push_back(c);
  }
  outcome.end_time_s = config_.policy == RoundPolicy::kDeadline
                           ? deadline
                           : last_event_time;
  now_ = outcome.end_time_s;
  {
    char buf[112];
    std::snprintf(buf, sizeof(buf),
                  "round=%d end=%.6f delivered=%zu late=%d lost=%d retx=%d",
                  round, outcome.end_time_s, outcome.delivered.size(),
                  outcome.late_updates, outcome.lost_updates,
                  outcome.retransmissions);
    TraceLine(buf);
  }
  return outcome;
}

}  // namespace fexiot
