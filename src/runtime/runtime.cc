#include "runtime/runtime.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fexiot {

const char* RoundPolicyName(RoundPolicy policy) {
  switch (policy) {
    case RoundPolicy::kSynchronous:
      return "synchronous";
    case RoundPolicy::kDeadline:
      return "deadline";
    case RoundPolicy::kTimeoutRetry:
      return "timeout-retry";
    case RoundPolicy::kAsync:
      return "async";
    case RoundPolicy::kSemiAsync:
      return "semi-async";
  }
  return "?";
}

namespace {

Status ValidateLink(const LinkModel& link, const char* what) {
  if (link.latency_s < 0.0 || link.bandwidth_bps < 0.0 ||
      link.jitter_s < 0.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": latency/bandwidth/jitter must be >= 0");
  }
  if (link.loss_prob < 0.0 || link.loss_prob >= 1.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": loss_prob must be in [0, 1)");
  }
  return Status::OK();
}

Status ValidateFault(const ClientFaultProfile& fault, const char* what) {
  if (fault.slowdown <= 0.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": slowdown must be > 0");
  }
  if (fault.crash_prob < 0.0 || fault.crash_prob >= 1.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": crash_prob must be in [0, 1)");
  }
  if (fault.drop_update_prob < 0.0 || fault.drop_update_prob >= 1.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": drop_update_prob must be in [0, 1)");
  }
  if (fault.rejoin_rounds < 1) {
    return Status::InvalidArgument(std::string(what) +
                                   ": rejoin_rounds must be >= 1");
  }
  return Status::OK();
}

}  // namespace

Status ValidateRuntimeConfig(const RuntimeConfig& config) {
  if (config.policy == RoundPolicy::kDeadline && config.deadline_s <= 0.0) {
    return Status::InvalidArgument(
        "runtime: deadline policy requires deadline_s > 0");
  }
  if (config.target_fraction <= 0.0 || config.target_fraction > 1.0) {
    return Status::InvalidArgument(
        "runtime: target_fraction must be in (0, 1]");
  }
  if (config.adaptive_deadline_quantile < 0.0 ||
      config.adaptive_deadline_quantile >= 1.0) {
    return Status::InvalidArgument(
        "runtime: adaptive_deadline_quantile must be in [0, 1)");
  }
  if (config.over_selection < 1.0) {
    return Status::InvalidArgument("runtime: over_selection must be >= 1");
  }
  if (config.policy == RoundPolicy::kTimeoutRetry &&
      config.retry_timeout_s <= 0.0) {
    return Status::InvalidArgument(
        "runtime: timeout-retry policy requires retry_timeout_s > 0");
  }
  if (config.max_retries < 0) {
    return Status::InvalidArgument("runtime: max_retries must be >= 0");
  }
  if (config.backoff_factor < 1.0) {
    return Status::InvalidArgument("runtime: backoff_factor must be >= 1");
  }
  if (config.max_refetches < 0) {
    return Status::InvalidArgument("runtime: max_refetches must be >= 0");
  }
  bool lossy_down = config.default_down.loss_prob > 0.0;
  for (const LinkModel& l : config.down_links) {
    lossy_down = lossy_down || l.loss_prob > 0.0;
  }
  if (lossy_down && config.refetch_timeout_s <= 0.0) {
    return Status::InvalidArgument(
        "runtime: lossy downlinks require refetch_timeout_s > 0");
  }
  if (config.async_alpha0 <= 0.0 || config.async_alpha0 > 1.0) {
    return Status::InvalidArgument(
        "runtime: async_alpha0 must be in (0, 1]");
  }
  if (config.async_staleness_exponent < 0.0) {
    return Status::InvalidArgument(
        "runtime: async_staleness_exponent must be >= 0");
  }
  if (config.semi_async_tiers < 1) {
    return Status::InvalidArgument(
        "runtime: semi_async_tiers must be >= 1");
  }
  if (config.speed_ewma_beta <= 0.0 || config.speed_ewma_beta > 1.0) {
    return Status::InvalidArgument(
        "runtime: speed_ewma_beta must be in (0, 1]");
  }
  if (config.train_seconds_per_graph < 0.0) {
    return Status::InvalidArgument(
        "runtime: train_seconds_per_graph must be >= 0");
  }
  if (config.participation_fraction <= 0.0 ||
      config.participation_fraction > 1.0) {
    return Status::InvalidArgument(
        "runtime: participation_fraction must be in (0, 1]");
  }
  if (!IsValidWireCodec(static_cast<uint32_t>(config.wire_codec))) {
    return Status::InvalidArgument("runtime: unknown wire_codec");
  }
  for (WireCodec c : config.client_codecs) {
    if (!IsValidWireCodec(static_cast<uint32_t>(c))) {
      return Status::InvalidArgument("runtime: unknown client codec");
    }
  }
  FEXIOT_RETURN_NOT_OK(ValidateTreeTopology(config.topology));
  if (config.topology.edge_fanout > 0) {
    if (config.policy != RoundPolicy::kSynchronous &&
        config.policy != RoundPolicy::kDeadline) {
      return Status::InvalidArgument(
          "runtime: the aggregation tree supports only the synchronous "
          "and deadline policies");
    }
    if (config.adaptive_deadline_quantile > 0.0) {
      return Status::InvalidArgument(
          "runtime: adaptive deadlines observe edge arrivals and cannot "
          "bound root arrivals under a tree; use a fixed deadline_s");
    }
  }
  FEXIOT_RETURN_NOT_OK(ValidateLink(config.default_down, "runtime downlink"));
  FEXIOT_RETURN_NOT_OK(ValidateLink(config.default_up, "runtime uplink"));
  for (const LinkModel& l : config.down_links) {
    FEXIOT_RETURN_NOT_OK(ValidateLink(l, "runtime downlink"));
  }
  for (const LinkModel& l : config.up_links) {
    FEXIOT_RETURN_NOT_OK(ValidateLink(l, "runtime uplink"));
  }
  FEXIOT_RETURN_NOT_OK(ValidateFault(config.default_fault, "runtime fault"));
  for (const ClientFaultProfile& f : config.faults) {
    FEXIOT_RETURN_NOT_OK(ValidateFault(f, "runtime fault"));
  }
  return Status::OK();
}

FederatedRuntime::FederatedRuntime(const RuntimeConfig& config,
                                   int num_clients)
    : config_(config),
      num_clients_(num_clients),
      network_(config.default_down, config.default_up, config.down_links,
               config.up_links, MixKey(config.seed, /*net*/ 11)),
      faults_(config.default_fault, config.faults, num_clients,
              MixKey(config.seed, /*fault*/ 13)),
      tree_(config.topology, MixKey(config.seed, /*tree*/ 19)),
      select_rng_(MixKey(config.seed, /*select*/ 17)),
      send_time_(static_cast<size_t>(num_clients), 0.0),
      tracker_(num_clients),
      speed_(static_cast<size_t>(num_clients),
             EwmaSpeed(config.speed_ewma_beta)),
      arrival_quantile_(config.adaptive_deadline_quantile) {}

void FederatedRuntime::TraceLine(const std::string& line) {
  if (config_.record_trace) trace_.push_back(line);
}

void FederatedRuntime::Trace(int round, const SimEvent& event) {
  if (!config_.record_trace) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "r=%d t=%.6f %s c=%d a=%d", round,
                event.time, EventKindName(event.kind), event.client,
                event.attempt);
  trace_.push_back(buf);
}

double FederatedRuntime::EffectiveDeadline() const {
  if (config_.adaptive_deadline_quantile > 0.0 && !arrival_quantile_.empty()) {
    return arrival_quantile_.Value();
  }
  return config_.deadline_s;
}

void FederatedRuntime::SendUpload(EventQueue* queue, RoundOutcome* outcome,
                                  int round, int client, int attempt,
                                  double send_time,
                                  const std::vector<double>& upload_bytes) {
  send_time_[static_cast<size_t>(client)] = send_time;
  outcome->uplink_wire_bytes += upload_bytes[static_cast<size_t>(client)];
  if (attempt > 0) {
    ++outcome->retransmissions;
    outcome->retransmit_bytes += upload_bytes[static_cast<size_t>(client)];
  }
  const double duration =
      network_.TransferSeconds(round, client, LinkDirection::kUp, attempt,
                               upload_bytes[static_cast<size_t>(client)]);
  const bool lost = network_.LostInTransit(round, client, attempt) ||
                    faults_.DropsUpdate(round, client, attempt);
  queue->Schedule(send_time + duration,
                  lost ? EventKind::kUploadLost : EventKind::kUploadArrive,
                  client, attempt);
}

void FederatedRuntime::SendBroadcast(EventQueue* queue, RoundOutcome* outcome,
                                     int round, int client, int attempt,
                                     double send_time,
                                     double broadcast_bytes) {
  outcome->downlink_wire_bytes += broadcast_bytes;
  const double duration = network_.TransferSeconds(
      round, client, LinkDirection::kDown, attempt, broadcast_bytes);
  // Lossless downlinks (the historical default) never consume a loss
  // draw, so enabling the re-fetch path leaves their traces bit-identical.
  const bool lost =
      network_.LostInTransit(round, client, LinkDirection::kDown, attempt);
  queue->Schedule(
      send_time + duration,
      lost ? EventKind::kDownlinkLost : EventKind::kDownlinkArrive, client,
      attempt);
}

RoundOutcome FederatedRuntime::ExecuteRound(
    int round, double broadcast_bytes, const std::vector<double>& upload_bytes,
    const std::vector<double>& train_seconds) {
  return ExecuteRound(round,
                      std::vector<double>(static_cast<size_t>(num_clients_),
                                          broadcast_bytes),
                      upload_bytes, train_seconds);
}

RoundOutcome FederatedRuntime::ExecuteRound(
    int round, const std::vector<double>& broadcast_bytes,
    const std::vector<double>& upload_bytes,
    const std::vector<double>& train_seconds) {
  RoundOutcome outcome;
  outcome.start_time_s = now_;
  tracker_.Reset();
  const bool is_async = config_.policy == RoundPolicy::kAsync ||
                        config_.policy == RoundPolicy::kSemiAsync;

  // 1. Selection: crash/rejoin filter, then policy-driven (over-)selection.
  std::vector<int> alive;
  for (int c = 0; c < num_clients_; ++c) {
    if (faults_.Alive(round, c)) alive.push_back(c);
  }
  if (config_.participation_fraction < 1.0 && !alive.empty()) {
    // Sampled participation: a seeded per-round draw invites only a
    // fraction of the alive fleet (the scale-out regime where the fleet
    // is much larger than any round's cohort).
    const size_t want = std::min(
        alive.size(),
        static_cast<size_t>(std::max(
            1.0, std::ceil(config_.participation_fraction *
                               static_cast<double>(alive.size()) -
                           1e-9))));
    if (want < alive.size()) {
      Rng r = select_rng_.ForkAt(
          MixKey(static_cast<uint64_t>(round) + 1, /*sample*/ 0x5A17));
      const std::vector<size_t> picks =
          r.SampleWithoutReplacement(alive.size(), want);
      std::vector<int> sampled;
      sampled.reserve(want);
      for (size_t i : picks) sampled.push_back(alive[i]);
      std::sort(sampled.begin(), sampled.end());
      alive = std::move(sampled);
    }
  }
  outcome.participants = alive;
  if (config_.policy == RoundPolicy::kDeadline && !alive.empty()) {
    // Absorb fp dust before the ceil so e.g. 0.4 * 1.5 * 10 invites
    // exactly 6 clients, not 7. Under sampled participation the
    // over-selection budget is relative to the sampled pool.
    const double base = config_.participation_fraction < 1.0
                            ? static_cast<double>(alive.size())
                            : static_cast<double>(num_clients_);
    const double invited =
        config_.target_fraction * config_.over_selection * base;
    const size_t want = std::min(
        alive.size(),
        static_cast<size_t>(std::max(1.0, std::ceil(invited - 1e-9))));
    if (want < alive.size()) {
      Rng r = select_rng_.ForkAt(static_cast<uint64_t>(round) + 1);
      const std::vector<size_t> picks =
          r.SampleWithoutReplacement(alive.size(), want);
      std::vector<int> selected;
      selected.reserve(want);
      for (size_t i : picks) selected.push_back(alive[i]);
      std::sort(selected.begin(), selected.end());
      // Over-selection must never invite a client twice (a rejoin landing
      // mid-selection would train it twice and double-weight its update).
      selected.erase(std::unique(selected.begin(), selected.end()),
                     selected.end());
      outcome.participants = std::move(selected);
    }
  }
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "round=%d policy=%s start=%.6f participants=%zu", round,
                  RoundPolicyName(config_.policy), outcome.start_time_s,
                  outcome.participants.size());
    TraceLine(buf);
  }

  // Async policies: quorum of applied updates that closes the wave.
  const int quorum =
      is_async && !outcome.participants.empty()
          ? std::max(1, static_cast<int>(std::ceil(
                            config_.target_fraction *
                                static_cast<double>(
                                    outcome.participants.size()) -
                            1e-9)))
          : 0;

  // Semi-async: tier assignment from the persistent EWMA speed estimates.
  // Unknown clients predict +inf and sort into the trailing tiers; the
  // all-unknown first wave falls back to client-index chunking.
  std::vector<int> tier_of(static_cast<size_t>(num_clients_), -1);
  std::vector<int> tier_pending;
  std::vector<std::vector<UpdateApplication>> tier_buffer;
  if (config_.policy == RoundPolicy::kSemiAsync) {
    std::vector<double> expected;
    expected.reserve(outcome.participants.size());
    for (int c : outcome.participants) {
      expected.push_back(speed_[static_cast<size_t>(c)].Predict());
    }
    const std::vector<int> assign =
        AssignTiers(expected, config_.semi_async_tiers);
    tier_pending.assign(static_cast<size_t>(config_.semi_async_tiers), 0);
    tier_buffer.assign(static_cast<size_t>(config_.semi_async_tiers), {});
    for (size_t i = 0; i < outcome.participants.size(); ++i) {
      tier_of[static_cast<size_t>(outcome.participants[i])] = assign[i];
      ++tier_pending[static_cast<size_t>(assign[i])];
    }
    if (config_.record_trace) {
      for (size_t i = 0; i < outcome.participants.size(); ++i) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "round=%d tier c=%d tier=%d", round,
                      outcome.participants[i], assign[i]);
        TraceLine(buf);
      }
    }
  }

  // 2. Discrete-event simulation of broadcast -> train -> upload.
  EventQueue queue(MixKey(config_.seed, static_cast<uint64_t>(round) + 1));
  for (int c : outcome.participants) {
    SendBroadcast(&queue, &outcome, round, c, 0, now_,
                  broadcast_bytes[static_cast<size_t>(c)]);
  }
  double last_event_time = now_;
  int applications = 0;    // kAsync: applied updates; kSemiAsync: tiers
  int applied_clients = 0; // updates applied (quorum progress)
  double quorum_time = -1.0;
  while (!queue.empty()) {
    const SimEvent ev = queue.Pop();
    last_event_time = std::max(last_event_time, ev.time);
    Trace(round, ev);
    const size_t c = static_cast<size_t>(ev.client);
    switch (ev.kind) {
      case EventKind::kDownlinkArrive: {
        const double finish =
            ev.time + train_seconds[c] * faults_.Slowdown(ev.client);
        SendUpload(&queue, &outcome, round, ev.client, 0, finish,
                   upload_bytes);
        break;
      }
      case EventKind::kUploadArrive:
        if (!tracker_.Arrive(ev.client, ev.time)) {
          ++outcome.duplicate_deliveries;
          break;
        }
        if (config_.policy == RoundPolicy::kAsync) {
          // Immediate application: staleness = server updates applied
          // since this wave's dispatch = prior applications this wave.
          UpdateApplication u;
          u.client = ev.client;
          u.staleness = applications;
          u.arrival_s = ev.time;
          outcome.applied.push_back(u);
          ++applications;
          if (++applied_clients == quorum && quorum_time < 0.0) {
            quorum_time = ev.time;
          }
        } else if (config_.policy == RoundPolicy::kSemiAsync) {
          const int tier = tier_of[c];
          UpdateApplication u;
          u.client = ev.client;
          u.tier = tier;
          u.arrival_s = ev.time;
          tier_buffer[static_cast<size_t>(tier)].push_back(u);
          if (--tier_pending[static_cast<size_t>(tier)] == 0) {
            queue.Schedule(ev.time, EventKind::kTierFlush, tier, 0);
          }
        }
        break;
      case EventKind::kUploadLost:
        if (config_.policy == RoundPolicy::kTimeoutRetry &&
            ev.attempt < config_.max_retries) {
          // The sender times out waiting for the server ack and
          // retransmits with exponential backoff.
          const double resend = std::max(
              ev.time, send_time_[c] + config_.retry_timeout_s *
                                           std::pow(config_.backoff_factor,
                                                    ev.attempt));
          queue.Schedule(resend, EventKind::kRetrySend, ev.client,
                         ev.attempt + 1);
        } else {
          ++outcome.lost_updates;
          if (config_.policy == RoundPolicy::kSemiAsync) {
            const int tier = tier_of[c];
            if (--tier_pending[static_cast<size_t>(tier)] == 0) {
              queue.Schedule(ev.time, EventKind::kTierFlush, tier, 0);
            }
          }
        }
        break;
      case EventKind::kRetrySend:
        SendUpload(&queue, &outcome, round, ev.client, ev.attempt, ev.time,
                   upload_bytes);
        break;
      case EventKind::kDownlinkLost:
        if (ev.attempt < config_.max_refetches) {
          // The client times out waiting for the broadcast and requests a
          // re-send, backed off from the round start (all broadcast copies
          // leave the server at round start, so the client's timeout
          // anchors there rather than at the lost copy's send time).
          ++outcome.broadcast_refetches;
          const double resend = std::max(
              ev.time,
              outcome.start_time_s +
                  config_.refetch_timeout_s *
                      std::pow(config_.backoff_factor, ev.attempt));
          queue.Schedule(resend, EventKind::kRefetch, ev.client,
                         ev.attempt + 1);
        } else {
          // Re-fetch budget exhausted: the client never gets the model
          // this round, so it never trains or uploads. Semi-async tiers
          // must not wait for an upload that can never happen.
          ++outcome.lost_broadcasts;
          if (config_.policy == RoundPolicy::kSemiAsync) {
            const int tier = tier_of[c];
            if (--tier_pending[static_cast<size_t>(tier)] == 0) {
              queue.Schedule(ev.time, EventKind::kTierFlush, tier, 0);
            }
          }
        }
        break;
      case EventKind::kRefetch:
        SendBroadcast(&queue, &outcome, round, ev.client, ev.attempt, ev.time,
                      broadcast_bytes[c]);
        break;
      case EventKind::kTierFlush: {
        // Aggregate the tier as a mini-batch: every buffered member gets
        // the same per-tier staleness (= tiers applied before this one).
        auto& batch = tier_buffer[c];
        if (batch.empty()) break;  // all members lost: nothing to apply
        for (UpdateApplication& u : batch) {
          u.staleness = applications;
          outcome.applied.push_back(u);
        }
        applied_clients += static_cast<int>(batch.size());
        batch.clear();
        ++applications;
        if (applied_clients >= quorum && quorum_time < 0.0) {
          quorum_time = ev.time;
        }
        break;
      }
    }
  }

  // 3. Round-completion policy.
  const double effective_deadline = EffectiveDeadline();
  outcome.effective_deadline_s =
      config_.policy == RoundPolicy::kDeadline ? effective_deadline : 0.0;
  const double deadline = outcome.start_time_s + effective_deadline;
  if (is_async) {
    // Every applied update enters aggregation (staleness already priced
    // the lateness); delivered = applied clients, sorted for the callers.
    outcome.delivered.reserve(outcome.applied.size());
    for (const UpdateApplication& u : outcome.applied) {
      outcome.delivered.push_back(u.client);
    }
    std::sort(outcome.delivered.begin(), outcome.delivered.end());
    // The server re-broadcasts once the quorum is applied; stragglers'
    // updates still count above, they just don't hold the wave open.
    outcome.end_time_s = quorum_time >= 0.0 ? quorum_time : last_event_time;
  } else if (tree_.enabled()) {
    // Hierarchical topology: the event loop priced the client->edge hop;
    // route the arrived uploads through the aggregation tree and apply
    // the deadline at the *root* arrival.
    std::vector<TreeArrival> arrivals;
    double agg_msg_bytes = 0.0;
    for (int c : outcome.participants) {
      agg_msg_bytes =
          std::max(agg_msg_bytes, upload_bytes[static_cast<size_t>(c)]);
      if (tracker_.arrived(c)) {
        arrivals.push_back({c, tracker_.arrival_time(c)});
      }
    }
    const TreeDelivery td =
        tree_.Route(round, arrivals, agg_msg_bytes,
                    config_.record_trace ? &trace_ : nullptr);
    outcome.hop_bytes = td.hop_bytes;
    for (int c : outcome.participants) {
      outcome.hop_bytes[0] += upload_bytes[static_cast<size_t>(c)];
    }
    outcome.aggregator_crashes = td.aggregator_crashes;
    outcome.subtree_lost_updates = td.subtree_lost;
    double last_root_arrival = last_event_time;
    for (size_t i = 0; i < td.delivered.size(); ++i) {
      if (config_.policy == RoundPolicy::kDeadline &&
          td.root_arrival_s[i] > deadline) {
        ++outcome.late_updates;
        continue;
      }
      outcome.delivered.push_back(td.delivered[i]);
      last_root_arrival = std::max(last_root_arrival, td.root_arrival_s[i]);
    }
    outcome.end_time_s = config_.policy == RoundPolicy::kDeadline
                             ? deadline
                             : last_root_arrival;
  } else {
    for (int c : outcome.participants) {
      if (!tracker_.arrived(c)) continue;
      if (config_.policy == RoundPolicy::kDeadline &&
          tracker_.arrival_time(c) > deadline) {
        ++outcome.late_updates;
        continue;
      }
      outcome.delivered.push_back(c);
    }
    outcome.end_time_s = config_.policy == RoundPolicy::kDeadline
                             ? deadline
                             : last_event_time;
  }
  outcome.duplicate_deliveries += tracker_.duplicates();

  // 4. Post-round estimator updates, in client index order (determinism).
  if (config_.policy == RoundPolicy::kSemiAsync) {
    for (int c : outcome.participants) {
      if (tracker_.arrived(c)) {
        speed_[static_cast<size_t>(c)].Observe(tracker_.arrival_time(c) -
                                               outcome.start_time_s);
      }
    }
  }
  if (config_.policy == RoundPolicy::kDeadline &&
      config_.adaptive_deadline_quantile > 0.0) {
    for (int c : outcome.participants) {
      if (tracker_.arrived(c)) {
        arrival_quantile_.Add(tracker_.arrival_time(c) -
                              outcome.start_time_s);
      }
    }
  }

  now_ = outcome.end_time_s;
  {
    char buf[144];
    if (is_async) {
      std::snprintf(buf, sizeof(buf),
                    "round=%d end=%.6f delivered=%zu applied=%zu lost=%d "
                    "dup=%d quorum=%d",
                    round, outcome.end_time_s, outcome.delivered.size(),
                    outcome.applied.size(), outcome.lost_updates,
                    outcome.duplicate_deliveries, quorum);
      TraceLine(buf);
      for (const UpdateApplication& u : outcome.applied) {
        char abuf[96];
        std::snprintf(abuf, sizeof(abuf),
                      "round=%d apply c=%d s=%d tier=%d t=%.6f", round,
                      u.client, u.staleness, u.tier, u.arrival_s);
        TraceLine(abuf);
      }
    } else {
      std::snprintf(buf, sizeof(buf),
                    "round=%d end=%.6f delivered=%zu late=%d lost=%d retx=%d",
                    round, outcome.end_time_s, outcome.delivered.size(),
                    outcome.late_updates, outcome.lost_updates,
                    outcome.retransmissions);
      TraceLine(buf);
    }
    // Only emitted when the downlink actually lost copies, so passthrough
    // (and uplink-loss-only) traces remain bit-identical.
    if (outcome.lost_broadcasts > 0 || outcome.broadcast_refetches > 0) {
      std::snprintf(buf, sizeof(buf),
                    "round=%d downlink lost_broadcasts=%d refetches=%d",
                    round, outcome.lost_broadcasts,
                    outcome.broadcast_refetches);
      TraceLine(buf);
    }
  }
  return outcome;
}

}  // namespace fexiot
