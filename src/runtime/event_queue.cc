#include "runtime/event_queue.h"

namespace fexiot {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t MixKey(uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
  uint64_t h = Mix64(a);
  h = Mix64(h ^ b);
  h = Mix64(h ^ c);
  h = Mix64(h ^ d);
  return h;
}

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kDownlinkArrive:
      return "down-arrive";
    case EventKind::kUploadArrive:
      return "up-arrive";
    case EventKind::kUploadLost:
      return "up-lost";
    case EventKind::kRetrySend:
      return "retry-send";
    case EventKind::kTierFlush:
      return "tier-flush";
    case EventKind::kDownlinkLost:
      return "down-lost";
    case EventKind::kRefetch:
      return "refetch-send";
  }
  return "?";
}

bool EventQueue::Later::operator()(const SimEvent& a, const SimEvent& b) const {
  if (a.time != b.time) return a.time > b.time;
  if (a.tie_key != b.tie_key) return a.tie_key > b.tie_key;
  return a.seq > b.seq;
}

void EventQueue::Schedule(double time, EventKind kind, int client,
                          int attempt) {
  SimEvent ev;
  ev.time = time;
  ev.kind = kind;
  ev.client = client;
  ev.attempt = attempt;
  ev.tie_key = MixKey(seed_, static_cast<uint64_t>(kind),
                      static_cast<uint64_t>(client) + 1,
                      static_cast<uint64_t>(attempt) + 1);
  ev.seq = next_seq_++;
  heap_.push(ev);
}

SimEvent EventQueue::Pop() {
  SimEvent ev = heap_.top();
  heap_.pop();
  return ev;
}

}  // namespace fexiot
