#include "runtime/message.h"

#include <cstring>

#include "common/crc32.h"

namespace fexiot {
namespace {

constexpr char kMagicPrefix[6] = {'F', 'E', 'X', 'M', 'S', 'G'};
constexpr char kMagicV1[8] = {'F', 'E', 'X', 'M', 'S', 'G', '0', '1'};
constexpr char kMagicV2[8] = {'F', 'E', 'X', 'M', 'S', 'G', '0', '2'};

}  // namespace

std::vector<uint8_t> EncodeMessage(const WireMessage& msg) {
  std::vector<uint8_t> out;
  out.reserve(MessageWireBytes(msg.payload.size(), msg.codec));
  if (msg.codec == WireCodec::kFp64) {
    // Legacy framing, byte-identical to the pre-codec encoder: no encoding
    // field, so fp64 traffic prices and hashes exactly as before.
    out.insert(out.end(), kMagicV1, kMagicV1 + sizeof(kMagicV1));
  } else {
    out.insert(out.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));
  }
  wire::AppendU32(&out, static_cast<uint32_t>(msg.type));
  wire::AppendU32(&out, msg.round);
  wire::AppendU32(&out, msg.sender);
  wire::AppendU32(&out, msg.layer);
  if (msg.codec != WireCodec::kFp64) {
    wire::AppendU32(&out, static_cast<uint32_t>(msg.codec));
  }
  AppendEncodedPayload(&out, msg.payload, msg.codec);
  wire::AppendU32(&out, Crc32(out.data() + sizeof(kMagicV1),
                              out.size() - sizeof(kMagicV1)));
  return out;
}

Result<WireMessage> DecodeMessage(const uint8_t* data, size_t size) {
  if (size < sizeof(kMagicV1) ||
      std::memcmp(data, kMagicPrefix, sizeof(kMagicPrefix)) != 0) {
    return Status::InvalidArgument("not a FexIoT wire message");
  }
  const bool v1 = std::memcmp(data, kMagicV1, sizeof(kMagicV1)) == 0;
  const bool v2 = !v1 && std::memcmp(data, kMagicV2, sizeof(kMagicV2)) == 0;
  if (!v1 && !v2) {
    return Status::InvalidArgument(
        "unsupported FexIoT wire message version (expected FEXMSG01/02)");
  }
  if (size < MessageWireBytes(0)) {
    return Status::IOError("truncated wire message");
  }
  size_t off = size - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  (void)wire::ReadU32(data, size, &off, &stored_crc);
  const uint32_t actual_crc =
      Crc32(data + sizeof(kMagicV1), size - sizeof(kMagicV1) - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("wire message corrupted (CRC mismatch)");
  }
  const size_t body_end = size - sizeof(uint32_t);

  off = sizeof(kMagicV1);
  WireMessage msg;
  uint32_t type = 0;
  if (!wire::ReadU32(data, body_end, &off, &type) ||
      !wire::ReadU32(data, body_end, &off, &msg.round) ||
      !wire::ReadU32(data, body_end, &off, &msg.sender) ||
      !wire::ReadU32(data, body_end, &off, &msg.layer)) {
    return Status::IOError("truncated wire message");
  }
  if (type > static_cast<uint32_t>(MessageType::kLayerUpdate)) {
    return Status::InvalidArgument("unknown wire message type");
  }
  msg.type = static_cast<MessageType>(type);
  if (v2) {
    uint32_t encoding = 0;
    if (!wire::ReadU32(data, body_end, &off, &encoding)) {
      return Status::IOError("truncated wire message");
    }
    if (!IsValidWireCodec(encoding)) {
      return Status::InvalidArgument("unknown wire message payload encoding");
    }
    msg.codec = static_cast<WireCodec>(encoding);
  }
  if (!ReadEncodedPayload(data, body_end, &off, msg.codec, &msg.payload)) {
    return Status::IOError("truncated wire message");
  }
  if (off != body_end) {
    return Status::InvalidArgument("trailing bytes in wire message");
  }
  return msg;
}

size_t MessageWireBytes(size_t payload_len, WireCodec codec) {
  const size_t encoding_field =
      codec == WireCodec::kFp64 ? 0 : sizeof(uint32_t);
  return sizeof(kMagicV1) + 4 * sizeof(uint32_t) + encoding_field +
         EncodedPayloadBytes(payload_len, codec) + sizeof(uint32_t);
}

}  // namespace fexiot
