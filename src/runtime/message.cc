#include "runtime/message.h"

#include <cstring>

#include "common/crc32.h"

namespace fexiot {
namespace {

constexpr char kMagicPrefix[6] = {'F', 'E', 'X', 'M', 'S', 'G'};
constexpr char kMagic[8] = {'F', 'E', 'X', 'M', 'S', 'G', '0', '1'};

}  // namespace

std::vector<uint8_t> EncodeMessage(const WireMessage& msg) {
  std::vector<uint8_t> out;
  out.reserve(MessageWireBytes(msg.payload.size()));
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  wire::AppendU32(&out, static_cast<uint32_t>(msg.type));
  wire::AppendU32(&out, msg.round);
  wire::AppendU32(&out, msg.sender);
  wire::AppendU32(&out, msg.layer);
  wire::AppendLayerRecord(&out, msg.payload);
  wire::AppendU32(&out, Crc32(out.data() + sizeof(kMagic),
                              out.size() - sizeof(kMagic)));
  return out;
}

Result<WireMessage> DecodeMessage(const uint8_t* data, size_t size) {
  if (size < sizeof(kMagic) ||
      std::memcmp(data, kMagicPrefix, sizeof(kMagicPrefix)) != 0) {
    return Status::InvalidArgument("not a FexIoT wire message");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "unsupported FexIoT wire message version (expected FEXMSG01)");
  }
  if (size < MessageWireBytes(0)) {
    return Status::IOError("truncated wire message");
  }
  size_t off = size - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  (void)wire::ReadU32(data, size, &off, &stored_crc);
  const uint32_t actual_crc =
      Crc32(data + sizeof(kMagic), size - sizeof(kMagic) - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("wire message corrupted (CRC mismatch)");
  }
  const size_t body_end = size - sizeof(uint32_t);

  off = sizeof(kMagic);
  WireMessage msg;
  uint32_t type = 0;
  if (!wire::ReadU32(data, body_end, &off, &type) ||
      !wire::ReadU32(data, body_end, &off, &msg.round) ||
      !wire::ReadU32(data, body_end, &off, &msg.sender) ||
      !wire::ReadU32(data, body_end, &off, &msg.layer)) {
    return Status::IOError("truncated wire message");
  }
  if (type > static_cast<uint32_t>(MessageType::kLayerUpdate)) {
    return Status::InvalidArgument("unknown wire message type");
  }
  msg.type = static_cast<MessageType>(type);
  if (!wire::ReadLayerRecord(data, body_end, &off, &msg.payload)) {
    return Status::IOError("truncated wire message");
  }
  if (off != body_end) {
    return Status::InvalidArgument("trailing bytes in wire message");
  }
  return msg;
}

size_t MessageWireBytes(size_t payload_doubles) {
  return sizeof(kMagic) + 4 * sizeof(uint32_t) + sizeof(uint64_t) +
         payload_doubles * sizeof(double) + sizeof(uint32_t);
}

}  // namespace fexiot
