#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "gnn/serialization.h"

namespace fexiot {

/// \brief Kinds of federated wire messages.
enum class MessageType : uint32_t {
  kBroadcast = 0,    ///< server -> client: serialized global model / layers
  kLayerUpdate = 1,  ///< client -> server: one layer's local weights
};

/// Sender id of the logical server in wire messages.
constexpr uint32_t kServerSenderId = 0xFFFFFFFFu;

/// \brief One federated update/broadcast message.
///
/// The payload is the flat layer parameter vector, encoded on the wire as
/// the gnn/serialization layer record (u64 count + raw doubles) — byte
/// identical to the per-layer record of a saved model file, so a server
/// can splice received updates straight into a persisted FEXGNN02 model.
struct WireMessage {
  MessageType type = MessageType::kLayerUpdate;
  uint32_t round = 0;
  uint32_t sender = 0;  ///< client id, or kServerSenderId
  uint32_t layer = 0;
  std::vector<double> payload;
};

/// \brief Encodes a message with the versioned framing:
///   "FEXMSG01" magic | u32 type | u32 round | u32 sender | u32 layer |
///   layer record (u64 count + doubles) | u32 CRC-32 over all fields after
///   the magic.
std::vector<uint8_t> EncodeMessage(const WireMessage& msg);

/// \brief Decodes EncodeMessage bytes. Fails with InvalidArgument on bad
/// magic / version mismatch / CRC (corruption) failure and IOError on
/// truncation.
Result<WireMessage> DecodeMessage(const uint8_t* data, size_t size);

/// \brief Exact on-wire size of a message carrying \p payload_doubles
/// doubles — what the network model prices transfers from. Matches
/// EncodeMessage(msg).size() for any message with that payload length
/// (asserted in test_runtime).
size_t MessageWireBytes(size_t payload_doubles);

}  // namespace fexiot
