#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "gnn/serialization.h"
#include "runtime/codec.h"

namespace fexiot {

/// \brief Kinds of federated wire messages.
enum class MessageType : uint32_t {
  kBroadcast = 0,    ///< server -> client: serialized global model / layers
  kLayerUpdate = 1,  ///< client -> server: one layer's local weights
};

/// Sender id of the logical server in wire messages.
constexpr uint32_t kServerSenderId = 0xFFFFFFFFu;

/// \brief One federated update/broadcast message.
///
/// The payload is the flat layer parameter vector; \p codec decides how it
/// is packed on the wire (runtime/codec.h). Under the default kFp64 codec
/// the payload is encoded as the gnn/serialization layer record (u64 count
/// + raw doubles) — byte identical to the per-layer record of a saved model
/// file, so a server can splice received updates straight into a persisted
/// FEXGNN02 model. Quantized codecs carry packed lanes instead; DecodeMessage
/// returns the *dequantized* fp64 payload, ready for fp64 accumulation.
struct WireMessage {
  MessageType type = MessageType::kLayerUpdate;
  uint32_t round = 0;
  uint32_t sender = 0;  ///< client id, or kServerSenderId
  uint32_t layer = 0;
  WireCodec codec = WireCodec::kFp64;
  std::vector<double> payload;
};

/// \brief Encodes a message with the versioned framing. The version is a
/// function of the codec:
///
///   kFp64 -> "FEXMSG01" magic | u32 type | u32 round | u32 sender |
///            u32 layer | fp64 layer record (u64 count + doubles) |
///            u32 CRC-32 over all fields after the magic
///            — byte-identical to the pre-codec encoder, so fp64 traffic
///            reproduces every existing trace and priced transfer exactly.
///
///   others -> "FEXMSG02" magic | u32 type | u32 round | u32 sender |
///            u32 layer | u32 encoding (WireCodec) | encoded payload record
///            (runtime/codec.h) | u32 CRC-32 over all fields after the magic.
std::vector<uint8_t> EncodeMessage(const WireMessage& msg);

/// \brief Decodes EncodeMessage bytes — both FEXMSG01 (always fp64) and
/// FEXMSG02 (any codec; the payload is dequantized to fp64). Fails with
/// InvalidArgument on bad magic / unsupported version / unknown encoding id
/// / CRC (corruption) failure and IOError on truncation.
Result<WireMessage> DecodeMessage(const uint8_t* data, size_t size);

/// \brief Exact on-wire size of a message carrying \p payload_len elements
/// under \p codec — what the network model prices transfers from. Matches
/// EncodeMessage(msg).size() for any message with that payload length and
/// codec (asserted in test_runtime for every codec). The historical
/// single-argument form prices the fp64 framing.
size_t MessageWireBytes(size_t payload_len,
                        WireCodec codec = WireCodec::kFp64);

}  // namespace fexiot
