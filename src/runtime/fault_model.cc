#include "runtime/fault_model.h"

#include <algorithm>

#include "runtime/event_queue.h"

namespace fexiot {

FaultModel::FaultModel(ClientFaultProfile default_profile,
                       std::vector<ClientFaultProfile> per_client,
                       int num_clients, uint64_t seed)
    : default_profile_(default_profile),
      per_client_(std::move(per_client)),
      offline_until_(static_cast<size_t>(num_clients), 0),
      base_(seed) {}

const ClientFaultProfile& FaultModel::profile(int client) const {
  if (static_cast<size_t>(client) < per_client_.size()) {
    return per_client_[static_cast<size_t>(client)];
  }
  return default_profile_;
}

bool FaultModel::Alive(int round, int client) {
  if (round < offline_until_[static_cast<size_t>(client)]) return false;
  const ClientFaultProfile& p = profile(client);
  if (p.crash_prob <= 0.0) return true;
  Rng r = base_.ForkAt(MixKey(static_cast<uint64_t>(round) + 1,
                              static_cast<uint64_t>(client) + 1, /*salt=*/3));
  if (!r.Bernoulli(p.crash_prob)) return true;
  offline_until_[static_cast<size_t>(client)] =
      round + std::max(1, p.rejoin_rounds);
  return false;
}

bool FaultModel::DropsUpdate(int round, int client, int attempt) const {
  const ClientFaultProfile& p = profile(client);
  if (p.drop_update_prob <= 0.0) return false;
  Rng r = base_.ForkAt(MixKey(static_cast<uint64_t>(round) + 1,
                              static_cast<uint64_t>(client) + 1, /*salt=*/4,
                              static_cast<uint64_t>(attempt) + 1));
  return r.Bernoulli(p.drop_update_prob);
}

}  // namespace fexiot
