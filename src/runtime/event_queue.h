#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace fexiot {

/// \brief SplitMix64 finalizer: a deterministic 64-bit bijection used to
/// derive stable tie-break keys and counter-based RNG stream keys from
/// structured identifiers (round, client, direction, attempt).
uint64_t Mix64(uint64_t x);

/// \brief Combines up to four fields into one stream key. Order-sensitive.
uint64_t MixKey(uint64_t a, uint64_t b, uint64_t c = 0, uint64_t d = 0);

/// \brief Discrete-event kinds of the federated runtime.
enum class EventKind : int32_t {
  kDownlinkArrive = 0,  ///< broadcast model reaches the client
  kUploadArrive = 1,    ///< client layer-update reaches the server
  kUploadLost = 2,      ///< update lost in transit (loss/drop draw fired)
  kRetrySend = 3,       ///< client retransmits after timeout + backoff
  kTierFlush = 4,       ///< semi-async tier fully resolved; aggregate it
                        ///< (the event's client field carries the tier id)
  kDownlinkLost = 5,    ///< broadcast copy lost in transit (downlink draw)
  kRefetch = 6,         ///< client re-requests the broadcast after timeout
};

const char* EventKindName(EventKind kind);

/// \brief One scheduled event of the federated round simulation.
struct SimEvent {
  double time = 0.0;
  EventKind kind = EventKind::kDownlinkArrive;
  int client = -1;
  int attempt = 0;      ///< transmission attempt (0 = first send)
  uint64_t tie_key = 0; ///< seeded stable tie-break at equal timestamps
  uint64_t seq = 0;     ///< schedule order, last-resort total ordering
};

/// \brief Deterministic discrete-event scheduler.
///
/// Events pop in (time, tie_key, seq) order. The tie_key is a seeded hash
/// of (kind, client, attempt): simultaneous events break ties in a
/// reproducible pseudo-random order rather than always lowest-client-first,
/// so deadline races carry no systematic client bias, yet the full event
/// trace is a pure function of the seed — identical for any FEXIOT_THREADS
/// because scheduling is strictly serial (only the work *inside* an event,
/// e.g. local training, is farmed out to the pool).
class EventQueue {
 public:
  explicit EventQueue(uint64_t seed) : seed_(seed) {}

  void Schedule(double time, EventKind kind, int client, int attempt);

  bool empty() const { return heap_.empty(); }
  size_t scheduled() const { return next_seq_; }

  /// Pops the next event in deterministic order. Queue must be non-empty.
  SimEvent Pop();

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const;
  };

  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  uint64_t seed_;
  uint64_t next_seq_ = 0;
};

}  // namespace fexiot
