#include "runtime/async_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace fexiot {

double StalenessWeight(double alpha0, double exponent, int staleness) {
  const double s = static_cast<double>(staleness < 0 ? 0 : staleness);
  return alpha0 * std::pow(s + 1.0, -exponent);
}

void EwmaSpeed::Observe(double rtt_s) {
  if (!initialized_) {
    estimate_ = rtt_s;
    initialized_ = true;
    return;
  }
  estimate_ = (1.0 - beta_) * estimate_ + beta_ * rtt_s;
}

double EwmaSpeed::Predict() const {
  return initialized_ ? estimate_ : std::numeric_limits<double>::infinity();
}

std::vector<int> AssignTiers(const std::vector<double>& expected_arrival_s,
                             int num_tiers) {
  const size_t n = expected_arrival_s.size();
  std::vector<int> tier(n, 0);
  if (n == 0 || num_tiers <= 1) return tier;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return expected_arrival_s[a] < expected_arrival_s[b];
  });
  const size_t tiers = static_cast<size_t>(num_tiers);
  for (size_t rank = 0; rank < n; ++rank) {
    // Chunk boundaries at rank * tiers / n: near-equal contiguous groups,
    // never differing in size by more than one.
    tier[order[rank]] = static_cast<int>(rank * tiers / n);
  }
  return tier;
}

void RunningQuantile::Add(double v) {
  sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), v), v);
}

double RunningQuantile::Value() const {
  const double n = static_cast<double>(sorted_.size());
  size_t idx = 0;
  if (q_ > 0.0) {
    const double r = std::ceil(q_ * n) - 1.0;
    idx = r <= 0.0 ? 0 : static_cast<size_t>(r);
  }
  if (idx >= sorted_.size()) idx = sorted_.size() - 1;
  return sorted_[idx];
}

ArrivalTracker::ArrivalTracker(int num_clients)
    : arrived_(static_cast<size_t>(num_clients), 0),
      arrival_time_(static_cast<size_t>(num_clients), 0.0) {}

bool ArrivalTracker::Arrive(int client, double time_s) {
  const size_t c = static_cast<size_t>(client);
  if (arrived_[c] != 0) {
    ++duplicates_;
    return false;
  }
  arrived_[c] = 1;
  arrival_time_[c] = time_s;
  ++arrivals_;
  return true;
}

void ArrivalTracker::Reset() {
  std::fill(arrived_.begin(), arrived_.end(), 0);
  std::fill(arrival_time_.begin(), arrival_time_.end(), 0.0);
  arrivals_ = 0;
  duplicates_ = 0;
}

}  // namespace fexiot
