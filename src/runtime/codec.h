#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace fexiot {

/// \brief Wire payload encodings for federated model updates/broadcasts.
///
/// The runtime ships flat fp64 parameter vectors; a codec decides how the
/// lanes are packed on the wire. `kFp64` is the bit-exact passthrough and
/// stays the default: its messages are framed as `FEXMSG01`, byte-identical
/// to the pre-codec wire format, so every existing trace, golden and priced
/// transfer reproduces exactly. The lossy codecs frame as `FEXMSG02` with an
/// explicit encoding field (runtime/message.h) and trade precision for a
/// 2-8x smaller payload:
///
///   codec  | lanes       | per-element error bound (finite inputs)
///   -------|-------------|------------------------------------------------
///   kFp64  | 8 B raw f64 | none (bit-exact)
///   kFp32  | 4 B f32     | relative <= 2^-24 (round-to-nearest halves ULP)
///   kBf16  | 2 B bf16    | relative <= 2^-8 (8 explicit mantissa bits)
///   kInt8  | 1 B u8      | absolute <= scale/2 + f32 rounding of the
///          | + 2x f32    |   endpoints, scale = (max-min)/255 per tensor
///
/// Quantization is per-tensor affine for kInt8: the record stores an fp32
/// scale and zero-point (the value of lane 0) and packs one u8 per element,
/// q = clamp(round((x - zero_point) / scale), 0, 255), dequantized as
/// x' = zero_point + scale * q. Every codec is a *pure deterministic
/// function of the payload* — no rng draws — so quantized runs stay
/// bit-identical across thread counts and reruns (DESIGN.md 5.13).
///
/// Non-finite handling: kFp32/kBf16 preserve +-inf and NaN-ness (NaNs stay
/// NaN, never collapse to inf). kInt8 cannot represent non-finite lanes:
/// the scale/zero-point come from the finite elements only, +inf clamps to
/// the top code (255), -inf and NaN clamp to the bottom code (0) — a
/// deterministic, documented degradation for tensors that should never
/// contain non-finite weights in the first place.
enum class WireCodec : uint8_t {
  kFp64 = 0,  ///< bit-exact passthrough (default; FEXMSG01 framing)
  kFp32 = 1,  ///< IEEE binary32 lanes
  kBf16 = 2,  ///< bfloat16 lanes (truncated f32, round-to-nearest-even)
  kInt8 = 3,  ///< per-tensor affine u8 lanes + fp32 scale/zero-point
};

/// Number of distinct codecs (validation / sweep loops).
constexpr int kNumWireCodecs = 4;

const char* WireCodecName(WireCodec codec);

/// True for the four defined encodings; false for any other bit pattern
/// (e.g. an unknown encoding id read off the wire).
bool IsValidWireCodec(uint32_t raw);

/// Parses "fp64" / "fp32" / "bf16" / "int8".
Result<WireCodec> ParseWireCodec(const std::string& name);

/// \brief Resolves the effective codec: when the FEXIOT_WIRE_CODEC
/// environment variable names a codec it overrides \p configured (warn +
/// keep the configured codec on an unknown name). Call once per run.
WireCodec ResolveWireCodec(WireCodec configured);

/// \brief Exact byte size of the encoded payload record for \p n elements
/// under \p codec (the u64 element count prefix plus the packed lanes and,
/// for kInt8, the fp32 scale/zero-point header). Matches what
/// AppendEncodedPayload emits, byte for byte.
size_t EncodedPayloadBytes(size_t n, WireCodec codec);

/// \brief Appends the encoded payload record (u64 count + codec lanes) for
/// \p values to \p out. kFp64 emits the legacy layer record of
/// gnn/serialization (u64 count + raw doubles), byte-identical to
/// wire::AppendLayerRecord.
void AppendEncodedPayload(std::vector<uint8_t>* out,
                          const std::vector<double>& values, WireCodec codec);

/// \brief Parses a record written by AppendEncodedPayload, dequantizing the
/// lanes back to fp64 into \p values. Advances \p *off on success; returns
/// false on any overrun (truncated record) without touching out-of-range
/// memory.
bool ReadEncodedPayload(const uint8_t* data, size_t size, size_t* off,
                        WireCodec codec, std::vector<double>* values);

/// \brief Quantize-dequantize round trip: what the receiver observes after
/// \p values crossed the wire under \p codec. kFp64 returns the input
/// unchanged (bit-exact, no copy of the lanes is altered). Equivalent to
/// ReadEncodedPayload(AppendEncodedPayload(values)) minus the framing, and
/// asserted so in test_codec.
void CodecRoundTrip(WireCodec codec, std::vector<double>* values);

/// Convenience copy form of CodecRoundTrip.
std::vector<double> CodecRoundTripped(WireCodec codec,
                                      std::vector<double> values);

// Scalar conversion helpers, exposed for the property tests.

/// double -> f32 with explicit out-of-range clamping to +-inf (avoids the
/// formally undefined out-of-range floating conversion).
float DoubleToFloat(double x);
/// f32 -> bf16 with round-to-nearest-even; NaNs quieten instead of
/// rounding up into inf.
uint16_t FloatToBf16(float x);
float Bf16ToFloat(uint16_t b);

}  // namespace fexiot
