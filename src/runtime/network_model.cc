#include "runtime/network_model.h"

#include "runtime/event_queue.h"

namespace fexiot {

NetworkModel::NetworkModel(LinkModel default_down, LinkModel default_up,
                           std::vector<LinkModel> down_overrides,
                           std::vector<LinkModel> up_overrides, uint64_t seed)
    : default_down_(default_down),
      default_up_(default_up),
      down_(std::move(down_overrides)),
      up_(std::move(up_overrides)),
      base_(seed) {}

const LinkModel& NetworkModel::link(int client, LinkDirection dir) const {
  const auto& overrides = dir == LinkDirection::kDown ? down_ : up_;
  if (static_cast<size_t>(client) < overrides.size()) {
    return overrides[static_cast<size_t>(client)];
  }
  return dir == LinkDirection::kDown ? default_down_ : default_up_;
}

Rng NetworkModel::DrawStream(int round, int client, LinkDirection dir,
                             int attempt, uint64_t salt) const {
  return base_.ForkAt(MixKey(static_cast<uint64_t>(round) + 1,
                             static_cast<uint64_t>(client) + 1,
                             (static_cast<uint64_t>(dir) << 8) | salt,
                             static_cast<uint64_t>(attempt) + 1));
}

double NetworkModel::TransferSeconds(int round, int client, LinkDirection dir,
                                     int attempt, double bytes) const {
  const LinkModel& l = link(client, dir);
  double t = l.latency_s;
  if (l.bandwidth_bps > 0.0) t += bytes / l.bandwidth_bps;
  if (l.jitter_s > 0.0) {
    Rng r = DrawStream(round, client, dir, attempt, /*salt=*/1);
    t += r.Uniform(0.0, l.jitter_s);
  }
  return t;
}

bool NetworkModel::LostInTransit(int round, int client, LinkDirection dir,
                                 int attempt) const {
  const LinkModel& l = link(client, dir);
  if (l.loss_prob <= 0.0) return false;
  Rng r = DrawStream(round, client, dir, attempt, /*salt=*/2);
  return r.Bernoulli(l.loss_prob);
}

}  // namespace fexiot
