#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fexiot {

/// \brief Per-client fault injection profile.
struct ClientFaultProfile {
  /// Straggler multiplier on local training time (1.0 = nominal; a 4x
  /// straggler trains four times slower in simulated time).
  double slowdown = 1.0;
  /// Probability the client crashes at the start of a round (skips it).
  double crash_prob = 0.0;
  /// Rounds a crashed client stays offline before rejoining.
  int rejoin_rounds = 1;
  /// Probability a finished update is dropped client-side (e.g. app
  /// killed mid-upload) — indistinguishable from uplink loss to the server.
  double drop_update_prob = 0.0;
};

/// \brief Stateful crash/rejoin + stateless straggler/drop injection.
///
/// Crash draws are counter-based (Rng::ForkAt keyed on (round, client)),
/// so whether client c crashes in round r is a pure function of the seed —
/// independent of event order, thread count, and which other faults fire.
/// Crash state (offline-until round) is the only mutable state and is
/// advanced in client index order by the runtime.
class FaultModel {
 public:
  FaultModel(ClientFaultProfile default_profile,
             std::vector<ClientFaultProfile> per_client, int num_clients,
             uint64_t seed);

  const ClientFaultProfile& profile(int client) const;

  /// Applies the crash draw for (round, client) and the rejoin window.
  /// Must be called exactly once per client per round, in client order.
  bool Alive(int round, int client);

  /// Whether the client drops its finished update on attempt \p attempt.
  bool DropsUpdate(int round, int client, int attempt) const;

  double Slowdown(int client) const { return profile(client).slowdown; }

 private:
  ClientFaultProfile default_profile_;
  std::vector<ClientFaultProfile> per_client_;
  std::vector<int> offline_until_;  ///< first round the client is back
  Rng base_;
};

}  // namespace fexiot
