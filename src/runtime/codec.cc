#include "runtime/codec.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/logging.h"
#include "gnn/serialization.h"

namespace fexiot {

const char* WireCodecName(WireCodec codec) {
  switch (codec) {
    case WireCodec::kFp64:
      return "fp64";
    case WireCodec::kFp32:
      return "fp32";
    case WireCodec::kBf16:
      return "bf16";
    case WireCodec::kInt8:
      return "int8";
  }
  return "?";
}

bool IsValidWireCodec(uint32_t raw) {
  return raw < static_cast<uint32_t>(kNumWireCodecs);
}

Result<WireCodec> ParseWireCodec(const std::string& name) {
  for (int i = 0; i < kNumWireCodecs; ++i) {
    const WireCodec c = static_cast<WireCodec>(i);
    if (name == WireCodecName(c)) return c;
  }
  return Status::InvalidArgument(
      "unknown wire codec '" + name + "' (expected fp64|fp32|bf16|int8)");
}

WireCodec ResolveWireCodec(WireCodec configured) {
  const char* env = std::getenv("FEXIOT_WIRE_CODEC");
  if (env == nullptr || *env == '\0') return configured;
  const Result<WireCodec> parsed = ParseWireCodec(env);
  if (!parsed.ok()) {
    FEXIOT_LOG(Warning) << "FEXIOT_WIRE_CODEC='" << env
                        << "' is not a codec (fp64|fp32|bf16|int8); keeping "
                        << WireCodecName(configured);
    return configured;
  }
  return *parsed;
}

float DoubleToFloat(double x) {
  // Out-of-range floating conversions are formally undefined; clamp
  // explicitly so huge doubles become +-inf on every toolchain. NaN and
  // inf pass through the cast unchanged.
  if (std::isfinite(x)) {
    constexpr double kMaxF32 = static_cast<double>(
        std::numeric_limits<float>::max());
    if (x > kMaxF32) return std::numeric_limits<float>::infinity();
    if (x < -kMaxF32) return -std::numeric_limits<float>::infinity();
  }
  return static_cast<float>(x);
}

uint16_t FloatToBf16(float x) {
  uint32_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  if (std::isnan(x)) {
    // Truncate but force a non-zero mantissa so the NaN never collapses
    // into an infinity encoding.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest even on the dropped 16 bits (the standard bf16
  // conversion); infinities have an all-zero tail and pass unchanged.
  const uint32_t rounding = 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

float Bf16ToFloat(uint16_t b) {
  const uint32_t bits = static_cast<uint32_t>(b) << 16;
  float x = 0.0f;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

namespace {

/// Per-tensor affine int8 parameters: x' = zero_point + scale * q.
struct Int8Params {
  float zero_point = 0.0f;
  float scale = 0.0f;  ///< 0 when the tensor is constant (all q = 0)
};

/// Pure function of the payload: scan the finite range, derive the fp32
/// affine parameters. Tensors with no finite element (or a degenerate
/// range) quantize to a constant.
Int8Params ComputeInt8Params(const std::vector<double>& values) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  Int8Params p;
  if (!(lo <= hi)) return p;  // no finite element: zero_point 0, scale 0
  p.zero_point = DoubleToFloat(lo);
  p.scale =
      DoubleToFloat((hi - static_cast<double>(p.zero_point)) / 255.0);
  if (!std::isfinite(p.scale) || p.scale < 0.0f) p.scale = 0.0f;
  return p;
}

uint8_t QuantizeInt8(double x, const Int8Params& p) {
  if (!std::isfinite(x)) {
    // +inf saturates the top code; -inf and NaN the bottom one.
    return x > 0.0 ? 255u : 0u;
  }
  if (p.scale == 0.0f) return 0u;
  const double q = std::nearbyint(
      (x - static_cast<double>(p.zero_point)) / static_cast<double>(p.scale));
  if (q <= 0.0) return 0u;
  if (q >= 255.0) return 255u;
  return static_cast<uint8_t>(q);
}

double DequantizeInt8(uint8_t q, const Int8Params& p) {
  return static_cast<double>(p.zero_point) +
         static_cast<double>(p.scale) * static_cast<double>(q);
}

}  // namespace

size_t EncodedPayloadBytes(size_t n, WireCodec codec) {
  switch (codec) {
    case WireCodec::kFp64:
      return sizeof(uint64_t) + n * sizeof(double);
    case WireCodec::kFp32:
      return sizeof(uint64_t) + n * sizeof(float);
    case WireCodec::kBf16:
      return sizeof(uint64_t) + n * sizeof(uint16_t);
    case WireCodec::kInt8:
      return sizeof(uint64_t) + 2 * sizeof(float) + n;
  }
  return 0;
}

void AppendEncodedPayload(std::vector<uint8_t>* out,
                          const std::vector<double>& values, WireCodec codec) {
  switch (codec) {
    case WireCodec::kFp64:
      wire::AppendLayerRecord(out, values);
      return;
    case WireCodec::kFp32: {
      wire::AppendU64(out, values.size());
      for (double v : values) wire::AppendF32(out, DoubleToFloat(v));
      return;
    }
    case WireCodec::kBf16: {
      wire::AppendU64(out, values.size());
      for (double v : values) {
        wire::AppendU16(out, FloatToBf16(DoubleToFloat(v)));
      }
      return;
    }
    case WireCodec::kInt8: {
      const Int8Params p = ComputeInt8Params(values);
      wire::AppendU64(out, values.size());
      wire::AppendF32(out, p.scale);
      wire::AppendF32(out, p.zero_point);
      const size_t off = out->size();
      out->resize(off + values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        (*out)[off + i] = QuantizeInt8(values[i], p);
      }
      return;
    }
  }
}

bool ReadEncodedPayload(const uint8_t* data, size_t size, size_t* off,
                        WireCodec codec, std::vector<double>* values) {
  if (codec == WireCodec::kFp64) {
    return wire::ReadLayerRecord(data, size, off, values);
  }
  uint64_t n = 0;
  if (!wire::ReadU64(data, size, off, &n)) return false;
  // Reject counts the remaining buffer cannot hold before allocating
  // (same discipline as ReadLayerRecord: a corrupted length must not
  // request petabytes).
  const size_t lane =
      codec == WireCodec::kFp32 ? sizeof(float)
      : codec == WireCodec::kBf16 ? sizeof(uint16_t)
                                  : sizeof(uint8_t);
  const size_t header = codec == WireCodec::kInt8 ? 2 * sizeof(float) : 0;
  if (*off > size || header > size - *off ||
      n > (size - *off - header) / lane) {
    return false;
  }
  values->resize(static_cast<size_t>(n));
  switch (codec) {
    case WireCodec::kFp64:
      return false;  // handled above
    case WireCodec::kFp32: {
      for (auto& v : *values) {
        float f = 0.0f;
        if (!wire::ReadF32(data, size, off, &f)) return false;
        v = static_cast<double>(f);
      }
      return true;
    }
    case WireCodec::kBf16: {
      for (auto& v : *values) {
        uint16_t b = 0;
        if (!wire::ReadU16(data, size, off, &b)) return false;
        v = static_cast<double>(Bf16ToFloat(b));
      }
      return true;
    }
    case WireCodec::kInt8: {
      Int8Params p;
      if (!wire::ReadF32(data, size, off, &p.scale) ||
          !wire::ReadF32(data, size, off, &p.zero_point)) {
        return false;
      }
      for (auto& v : *values) {
        v = DequantizeInt8(data[*off], p);
        ++*off;
      }
      return true;
    }
  }
  return false;
}

void CodecRoundTrip(WireCodec codec, std::vector<double>* values) {
  switch (codec) {
    case WireCodec::kFp64:
      return;  // bit-exact passthrough
    case WireCodec::kFp32: {
      for (auto& v : *values) {
        v = static_cast<double>(DoubleToFloat(v));
      }
      return;
    }
    case WireCodec::kBf16: {
      for (auto& v : *values) {
        v = static_cast<double>(Bf16ToFloat(FloatToBf16(DoubleToFloat(v))));
      }
      return;
    }
    case WireCodec::kInt8: {
      const Int8Params p = ComputeInt8Params(*values);
      for (auto& v : *values) {
        v = DequantizeInt8(QuantizeInt8(v, p), p);
      }
      return;
    }
  }
}

std::vector<double> CodecRoundTripped(WireCodec codec,
                                      std::vector<double> values) {
  CodecRoundTrip(codec, &values);
  return values;
}

}  // namespace fexiot
