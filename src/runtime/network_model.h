#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fexiot {

/// \brief One direction of a client's access link.
///
/// A transfer of b bytes costs latency_s + b / bandwidth_bps + jitter,
/// where jitter is drawn uniformly from [0, jitter_s). bandwidth_bps == 0
/// means infinite bandwidth, so the all-zero default prices every transfer
/// at exactly 0 seconds — the paper's instantaneous-upload assumption.
struct LinkModel {
  double latency_s = 0.0;
  double bandwidth_bps = 0.0;  ///< 0 = infinite
  double jitter_s = 0.0;       ///< uniform extra delay in [0, jitter_s)
  double loss_prob = 0.0;      ///< per-transfer loss probability
};

enum class LinkDirection : int { kDown = 0, kUp = 1 };

/// \brief Per-client network model pricing transfers from serialized
/// message sizes.
///
/// All stochastic draws (jitter, loss) come from counter-based child
/// streams keyed on (round, client, direction, attempt) via Rng::ForkAt,
/// so a draw is a pure function of the seed and the transfer's identity —
/// never of event processing order or thread count.
///
/// Both directions can be lossy: uplink losses feed the retry policies,
/// downlink losses feed the broadcast re-fetch protocol in the runtime.
/// A direction with loss_prob == 0 never consumes a loss draw, so
/// enabling loss on one direction leaves the other direction's streams —
/// and therefore existing traces — bit-identical.
class NetworkModel {
 public:
  NetworkModel(LinkModel default_down, LinkModel default_up,
               std::vector<LinkModel> down_overrides,
               std::vector<LinkModel> up_overrides, uint64_t seed);

  const LinkModel& link(int client, LinkDirection dir) const;

  /// Transfer duration of \p bytes over the client's link.
  double TransferSeconds(int round, int client, LinkDirection dir,
                         int attempt, double bytes) const;

  /// Whether this transfer attempt over \p dir is lost in transit.
  bool LostInTransit(int round, int client, LinkDirection dir,
                     int attempt) const;

  /// Uplink shorthand (the historical call sites).
  bool LostInTransit(int round, int client, int attempt) const {
    return LostInTransit(round, client, LinkDirection::kUp, attempt);
  }

 private:
  Rng DrawStream(int round, int client, LinkDirection dir, int attempt,
                 uint64_t salt) const;

  LinkModel default_down_;
  LinkModel default_up_;
  std::vector<LinkModel> down_;  ///< per-client overrides (may be empty)
  std::vector<LinkModel> up_;
  Rng base_;
};

}  // namespace fexiot
