#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "runtime/network_model.h"

namespace fexiot {

/// \brief Hierarchical aggregation topology: clients report to edge
/// aggregators, edges to regional aggregators, regionals to the root
/// server (the FL-testbed shape). Each interior hop is priced by its own
/// link model, and every tier aggregates with a streaming weighted-sum
/// accumulator, so no tier ever holds more than its fan-out's deltas.
///
/// The default (edge_fanout == 0) is the degenerate fan-out=all, depth-1
/// flat topology: clients upload straight to the root and the runtime
/// behaves bit-identically to the pre-tree code path.
struct TreeTopologyConfig {
  /// Clients per edge aggregator; 0 disables the tree (flat topology).
  int edge_fanout = 0;
  /// Edge aggregators per regional aggregator; 0 = edges forward straight
  /// to the root (depth 2), > 0 adds the regional tier (depth 3).
  int regional_fanout = 0;
  /// Interior links: edge->parent and regional->root. Reliable backbone
  /// (no per-transfer loss draw — interior failure is modeled by
  /// aggregator crashes instead) but priced for latency/bandwidth/jitter.
  LinkModel edge_up;
  LinkModel regional_up;
  /// Per-round aggregator crash probability. Draws are counter-based
  /// (pure function of (seed, round, tier, node)); a crashed aggregator
  /// drops its whole subtree's updates for that round.
  double aggregator_crash_prob = 0.0;
  /// Rounds a crashed aggregator stays offline before rejoining.
  int aggregator_rejoin_rounds = 1;
};

/// \brief Rejects out-of-range topology knobs with a descriptive Status.
Status ValidateTreeTopology(const TreeTopologyConfig& config);

/// \brief Running (sum w_i * x_i, sum w_i) weighted-sum accumulator with a
/// fixed reduction order.
///
/// Add replays exactly one multiply-add per element — the same operation
/// FederatedSimulator::AverageLayer performs per client — so feeding it
/// pre-normalized weights (w_c * scale_c / weight_sum, with weight_sum
/// accumulated over the same clients in the same ascending order) in
/// ascending client order reproduces the eager AverageLayer result
/// bit-exactly (pinned by test_scale). Merge folds a child tier's partial
/// sums in; merging reassociates the floating-point sum, so deep trees
/// are near-equal rather than bit-equal to the flat reduction
/// (DESIGN.md 5.10).
class StreamingAccumulator {
 public:
  /// sum[i] += weight * x[i]; the first call sizes the accumulator.
  void Add(double weight, const std::vector<double>& x);
  /// Element-wise fold of another accumulator (tier merge).
  void Merge(const StreamingAccumulator& other);

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  double weight_sum() const { return weight_sum_; }
  const std::vector<double>& weighted_sum() const { return sum_; }

  /// Finalized weighted mean: weighted_sum / weight_sum. Mirrors
  /// AverageLayer's guards: empty when nothing was accumulated or the
  /// accumulated weight is <= 0 (the weight-zero degenerate case).
  std::vector<double> Mean() const;

 private:
  std::vector<double> sum_;
  double weight_sum_ = 0.0;
  uint64_t count_ = 0;
};

/// \brief One arrived client upload entering the tree (client ascending).
struct TreeArrival {
  int client = -1;
  /// Arrival time at the client's edge aggregator (the event-simulated
  /// uplink arrival).
  double edge_arrival_s = 0.0;
};

/// \brief Delivery outcome of routing one round's arrivals up the tree.
struct TreeDelivery {
  /// Clients whose updates reached the root (ascending). Deadline
  /// filtering is the caller's job (it owns the round policy).
  std::vector<int> delivered;
  /// Root arrival time per delivered client (parallel to delivered).
  std::vector<double> root_arrival_s;
  /// Per-hop uplink bytes, hop_bytes[t] = bytes crossing tier t's uplink
  /// (0: clients->edge, 1: edge->parent, 2: regional->root). Size equals
  /// the tree depth; hop 0 is filled by the caller, which knows every
  /// transmission attempt (including lost ones).
  std::vector<double> hop_bytes;
  int aggregator_crashes = 0;
  /// Arrived updates dropped because an aggregator on their path crashed.
  int subtree_lost = 0;
  int edge_forwards = 0;
  int regional_forwards = 0;
  double last_arrival_s = 0.0;
};

/// \brief Deterministic aggregation-tree router shared by the classic
/// discrete-event runtime and the million-client scale simulator.
///
/// Node mapping is static: client c reports to edge c / edge_fanout, edge
/// e to regional e / regional_fanout. An aggregator forwards once every
/// surviving upload of its subtree has arrived (lost uploads never hold a
/// forward open); the forward costs one aggregated message on the
/// interior link. All stochastic draws (crashes, interior jitter) are
/// counter-based, so routing is a pure function of (seed, round, inputs).
class AggregationTree {
 public:
  AggregationTree(const TreeTopologyConfig& config, uint64_t seed);

  bool enabled() const { return config_.edge_fanout > 0; }
  /// 1 = flat, 2 = edge->root, 3 = edge->regional->root.
  int depth() const;
  int EdgeOf(int client) const { return client / config_.edge_fanout; }
  int RegionalOf(int edge) const { return edge / config_.regional_fanout; }

  /// Whether aggregator \p node of \p tier (0 = edge, 1 = regional) is up
  /// in \p round. Pure: a crash draw at round r takes the node out for
  /// rounds [r, r + rejoin_rounds).
  bool AggregatorAlive(int round, int tier, int node) const;

  /// Routes the round's arrived uploads root-ward. \p agg_msg_bytes is
  /// the size of one aggregated interior message (the running-sum
  /// accumulator has the model's shape regardless of fan-in). Trace lines
  /// are appended to \p trace when non-null, in deterministic
  /// (tier, node) order.
  TreeDelivery Route(int round, const std::vector<TreeArrival>& arrivals,
                     double agg_msg_bytes,
                     std::vector<std::string>* trace) const;

  const TreeTopologyConfig& config() const { return config_; }

 private:
  double InteriorTransferSeconds(int round, int tier, int node,
                                 double bytes) const;

  TreeTopologyConfig config_;
  Rng base_;
};

}  // namespace fexiot
