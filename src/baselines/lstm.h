#pragma once

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace fexiot {

/// \brief Single-layer LSTM language model over discrete event keys with
/// full backpropagation through time. Substrate of the DeepLog baseline:
/// trained to predict the next log key; keys falling outside the top-k
/// predictions are anomalies.
class LstmLanguageModel {
 public:
  struct Options {
    int vocab_size = 64;
    int embedding_dim = 16;
    int hidden_dim = 32;
    int epochs = 6;
    double learning_rate = 0.05;
    /// Truncated-BPTT window.
    int bptt_steps = 24;
    uint64_t seed = 67;
  };

  explicit LstmLanguageModel(Options options);

  /// Trains next-key prediction on the given key sequences. Returns the
  /// final mean cross-entropy.
  double Fit(const std::vector<std::vector<int>>& sequences);

  /// \brief Probability distribution over the next key given a history
  /// (runs the LSTM over the whole history).
  std::vector<double> NextKeyDistribution(
      const std::vector<int>& history) const;

  /// \brief True if \p next is within the top-k most likely keys after
  /// \p history.
  bool InTopK(const std::vector<int>& history, int next, int k) const;

  /// \brief Fraction of transitions of \p sequence that fall outside the
  /// top-k prediction (the DeepLog anomaly rate).
  double AnomalyRate(const std::vector<int>& sequence, int k) const;

 private:
  struct StepCache;
  /// One forward step; returns logits.
  std::vector<double> Step(int key, std::vector<double>* h,
                           std::vector<double>* c, StepCache* cache) const;

  Options options_;
  // Parameters: embedding, gate weights (input & recurrent), biases, output.
  Matrix embed_;   // V x E
  Matrix wx_;      // E x 4H  (order: i, f, o, g)
  Matrix wh_;      // H x 4H
  Matrix b_;       // 1 x 4H
  Matrix wout_;    // H x V
  Matrix bout_;    // 1 x V
};

}  // namespace fexiot
