#include "baselines/deeplog.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "ml/isolation_forest.h"

namespace fexiot {

std::vector<int> DeepLogDetector::EncodeLog(const EventLog& log,
                                            int vocab_size) {
  std::vector<int> keys;
  keys.reserve(log.size());
  for (const auto& e : log.entries()) {
    // Key = hash(device type, logical value) folded into the vocab.
    const uint64_t h =
        HashString(std::to_string(static_cast<int>(e.device)) + ":" + e.value);
    keys.push_back(static_cast<int>(h % static_cast<uint64_t>(vocab_size)));
  }
  return keys;
}

void DeepLogDetector::Fit(const std::vector<TestbedSample>& train) {
  model_ = std::make_unique<LstmLanguageModel>(options_.lstm);
  std::vector<std::vector<int>> sequences;
  for (const auto& s : train) {
    if (s.label != 0) continue;  // DeepLog trains on normal logs only
    sequences.push_back(EncodeLog(s.log, options_.lstm.vocab_size));
  }
  model_->Fit(sequences);
  // Calibrate the anomaly-rate threshold on benign training logs.
  std::vector<double> rates;
  for (const auto& seq : sequences) {
    rates.push_back(model_->AnomalyRate(seq, options_.top_k));
  }
  std::sort(rates.begin(), rates.end());
  const double q = rates.empty()
                       ? 0.2
                       : rates[static_cast<size_t>(0.9 * (rates.size() - 1))];
  threshold_ = q + options_.rate_margin;
}

int DeepLogDetector::Predict(const TestbedSample& sample) const {
  if (!model_) return 0;
  const std::vector<int> keys =
      EncodeLog(sample.log, options_.lstm.vocab_size);
  return model_->AnomalyRate(keys, options_.top_k) > threshold_ ? 1 : 0;
}

class IsolationForestDetector::Impl {
 public:
  IsolationForest forest;
};

std::vector<double> IsolationForestDetector::Featurize(const EventLog& log) {
  // Per device type: state-change count and active-state fraction; plus
  // global rates.
  std::vector<double> f(2 * kNumDeviceTypes + 3, 0.0);
  double duration = 1.0;
  if (!log.empty()) {
    duration = std::max(1.0, log.entries().back().timestamp -
                                 log.entries().front().timestamp);
  }
  std::vector<int> active(kNumDeviceTypes, 0);
  for (const auto& e : log.entries()) {
    const int d = static_cast<int>(e.device);
    f[static_cast<size_t>(2 * d)] += 1.0;
    if (IsValidState(e.device, e.value) && e.value == ActiveState(e.device)) {
      ++active[static_cast<size_t>(d)];
    }
  }
  for (int d = 0; d < kNumDeviceTypes; ++d) {
    const double count = f[static_cast<size_t>(2 * d)];
    f[static_cast<size_t>(2 * d + 1)] =
        count > 0 ? active[static_cast<size_t>(d)] / count : 0.0;
    // Log-scale counts to tame heavy tails.
    f[static_cast<size_t>(2 * d)] = std::log1p(count);
  }
  f[static_cast<size_t>(2 * kNumDeviceTypes)] =
      std::log1p(static_cast<double>(log.size()));
  f[static_cast<size_t>(2 * kNumDeviceTypes) + 1] =
      static_cast<double>(log.size()) / duration * 3600.0;  // events/hour
  f[static_cast<size_t>(2 * kNumDeviceTypes) + 2] = duration / 3600.0;
  return f;
}

void IsolationForestDetector::Fit(const std::vector<TestbedSample>& train) {
  impl_ = std::make_shared<Impl>();
  std::vector<std::vector<double>> rows;
  for (const auto& s : train) rows.push_back(Featurize(s.log));
  if (rows.empty()) return;
  Matrix x(rows.size(), rows.front().size());
  for (size_t i = 0; i < rows.size(); ++i) x.SetRow(i, rows[i]);
  impl_->forest.Fit(x);
  if (options_.score_threshold > 0.0) {
    threshold_ = options_.score_threshold;
  } else {
    std::vector<double> scores;
    for (const auto& r : rows) scores.push_back(impl_->forest.Score(r));
    std::sort(scores.begin(), scores.end());
    threshold_ = scores[static_cast<size_t>(
        options_.quantile * static_cast<double>(scores.size() - 1))];
  }
}

int IsolationForestDetector::Predict(const TestbedSample& sample) const {
  if (!impl_) return 0;
  return impl_->forest.Score(Featurize(sample.log)) > threshold_ ? 1 : 0;
}

}  // namespace fexiot
