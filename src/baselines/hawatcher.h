#pragma once

#include <map>
#include <set>
#include <tuple>

#include "baselines/testbed.h"

namespace fexiot {

/// \brief HAWatcher-style detector: mines *binary* correlation templates
/// (single-hop "event A correlates with event B" rules) from benign
/// training data plus app semantics, then flags deviations at test time.
///
/// Faithful limitations reproduced from the paper's discussion: templates
/// are binary, so long-chain correlations (multi-hop action reverts,
/// loops) are invisible, and normal user interruptions look like template
/// violations (false positives).
class HaWatcherDetector : public SystemDetector {
 public:
  struct Options {
    /// Minimum fraction of consistent observations to accept a template.
    double min_confidence = 0.9;
    /// Consistency-feature threshold below which a node is a violation.
    double consistency_threshold = 0.75;
  };

  HaWatcherDetector() : HaWatcherDetector(Options()) {}
  explicit HaWatcherDetector(Options options) : options_(options) {}

  void Fit(const std::vector<TestbedSample>& train) override;
  int Predict(const TestbedSample& sample) const override;
  const char* Name() const override { return "HAWatcher"; }

 private:
  /// (trigger device, trigger state, action device, action state).
  using Template = std::tuple<int, std::string, int, std::string>;

  /// Per-device-type violation statistics for one log: fraction of the
  /// type's state changes lacking a causal command record, and fraction of
  /// its commands lacking their effect. count = observations.
  struct LogViolationRates {
    std::map<int, std::pair<double, int>> orphan_by_type;
    std::map<int, std::pair<double, int>> failed_by_type;
  };
  static LogViolationRates MineLogViolations(const EventLog& log);

  Options options_;
  std::set<Template> templates_;
  /// Violation-rate thresholds per device type, calibrated on benign
  /// training logs (exogenous/user events make some types "naturally"
  /// command-less — doors, motion; automated types are near zero).
  std::map<int, double> orphan_threshold_;
  std::map<int, double> failure_threshold_;
  /// Benign-calibrated floors for the fused consistency features.
  double cmd_floor_ = 0.5;
  double eff_floor_ = 0.5;
};

}  // namespace fexiot
