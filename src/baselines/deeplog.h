#pragma once

#include <memory>

#include "baselines/lstm.h"
#include "baselines/testbed.h"

namespace fexiot {

/// \brief DeepLog-style detector: models cleaned event logs as a language
/// of discrete keys (device type x logical value), trains the LSTM on
/// benign logs only, and flags a log whose fraction of next-key misses
/// (outside top-k) exceeds a threshold.
class DeepLogDetector : public SystemDetector {
 public:
  struct Options {
    LstmLanguageModel::Options lstm;
    int top_k = 5;
    /// Anomaly-rate threshold above the benign calibration quantile.
    double rate_margin = 0.05;
  };

  DeepLogDetector() : DeepLogDetector(Options()) {}
  explicit DeepLogDetector(Options options) : options_(options) {}

  void Fit(const std::vector<TestbedSample>& train) override;
  int Predict(const TestbedSample& sample) const override;
  const char* Name() const override { return "DeepLog"; }

  /// Log-key encoding shared with tests: device type x logical value.
  static std::vector<int> EncodeLog(const EventLog& log, int vocab_size);

 private:
  Options options_;
  std::unique_ptr<LstmLanguageModel> model_;
  double threshold_ = 0.2;
};

/// \brief IsolationForest baseline: featurizes each log into a device-
/// status vector (per-device-type state-change counts and rates) and
/// scores it with an isolation forest fit on the training features.
class IsolationForestDetector : public SystemDetector {
 public:
  struct Options {
    double score_threshold = 0.0;  ///< 0 = calibrate on train quantile
    double quantile = 0.92;
  };

  IsolationForestDetector() : IsolationForestDetector(Options()) {}
  explicit IsolationForestDetector(Options options) : options_(options) {}

  void Fit(const std::vector<TestbedSample>& train) override;
  int Predict(const TestbedSample& sample) const override;
  const char* Name() const override { return "IsolationForest"; }

  /// Device-status feature vector of a log.
  static std::vector<double> Featurize(const EventLog& log);

 private:
  Options options_;
  class Impl;
  std::shared_ptr<Impl> impl_;
  double threshold_ = 0.6;
};

}  // namespace fexiot
