#include "baselines/hawatcher.h"

#include <algorithm>

#include "graph/fusion.h"

namespace fexiot {

HaWatcherDetector::LogViolationRates HaWatcherDetector::MineLogViolations(
    const EventLog& log) {
  // Single-hop event<->command correlation templates, checked directly on
  // the log (HAWatcher's runtime verification): every actuator state
  // change should follow a command for that state within a short window,
  // and every command should produce its state change.
  constexpr double kWindow = 5.0;
  LogViolationRates rates;
  const auto& entries = log.entries();
  std::map<int, std::pair<int, int>> changes;   // type -> (orphans, total)
  std::map<int, std::pair<int, int>> commands;  // type -> (failed, total)
  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    const int type = static_cast<int>(e.device);
    if (e.kind == LogKind::kStateChange &&
        !GetDeviceTypeInfo(e.device).is_sensor &&
        e.device != DeviceType::kClock && e.device != DeviceType::kVoice) {
      bool has_command = false;
      for (size_t j = i; j-- > 0;) {
        if (e.timestamp - entries[j].timestamp > kWindow) break;
        if (entries[j].kind == LogKind::kCommand &&
            entries[j].device_id == e.device_id &&
            entries[j].value == e.value) {
          has_command = true;
          break;
        }
      }
      changes[type].second += 1;
      changes[type].first += has_command ? 0 : 1;
    } else if (e.kind == LogKind::kCommand) {
      bool has_effect = false;
      for (size_t j = i + 1; j < entries.size(); ++j) {
        if (entries[j].timestamp - e.timestamp > kWindow) break;
        if (entries[j].kind == LogKind::kStateChange &&
            entries[j].device_id == e.device_id &&
            entries[j].value == e.value) {
          has_effect = true;
          break;
        }
      }
      commands[type].second += 1;
      commands[type].first += has_effect ? 0 : 1;
    }
  }
  for (const auto& [type, counts] : changes) {
    rates.orphan_by_type[type] = {
        static_cast<double>(counts.first) / counts.second, counts.second};
  }
  for (const auto& [type, counts] : commands) {
    rates.failed_by_type[type] = {
        static_cast<double>(counts.first) / counts.second, counts.second};
  }
  return rates;
}

void HaWatcherDetector::Fit(const std::vector<TestbedSample>& train) {
  templates_.clear();
  // Calibrate per-device-type violation-rate thresholds on benign logs:
  // max benign rate per type plus a small margin.
  orphan_threshold_.clear();
  failure_threshold_.clear();
  // Calibrate the graph consistency-feature floor on benign samples: the
  // minimum benign consistency minus a margin (re-commands to devices
  // already in the target state make benign consistency < 1).
  double min_cmd = 1.0, min_eff = 1.0;
  for (const auto& sample : train) {
    if (sample.label != 0) continue;
    for (int i = 0; i < sample.graph.num_nodes(); ++i) {
      const auto& f = sample.graph.node(i).features;
      if (f.size() < 4) continue;
      min_cmd = std::min(
          min_cmd, 1.0 + f[f.size() - kFeatureDimCommandConsistency] /
                             kConsistencyScale);
      min_eff = std::min(
          min_eff, 1.0 + f[f.size() - kFeatureDimEffectConsistency] /
                             kConsistencyScale);
    }
  }
  cmd_floor_ = std::max(0.0, min_cmd - 0.03);
  eff_floor_ = std::max(0.0, min_eff - 0.03);
  for (const auto& sample : train) {
    if (sample.label != 0) continue;
    const LogViolationRates r = MineLogViolations(sample.log);
    for (const auto& [type, rate] : r.orphan_by_type) {
      auto& t = orphan_threshold_[type];
      t = std::max(t, rate.first);
    }
    for (const auto& [type, rate] : r.failed_by_type) {
      auto& t = failure_threshold_[type];
      t = std::max(t, rate.first);
    }
  }
  // Extract single-hop trigger->action templates from the rules behind
  // the fused graphs (HAWatcher's "semantic analysis" of the installed
  // apps — rule descriptions are static, so all samples contribute).
  for (const auto& sample : train) {
    const InteractionGraph& g = sample.graph;
    for (int i = 0; i < g.num_nodes(); ++i) {
      const Rule& r = g.node(i).rule;
      for (const Action& a : r.actions) {
        templates_.insert(Template{static_cast<int>(r.trigger.device),
                                   r.trigger.state,
                                   static_cast<int>(a.device), a.state});
      }
    }
  }
}

int HaWatcherDetector::Predict(const TestbedSample& sample) const {
  // (0) Log-level correlation templates, per device type. Types never
  // seen in benign training get threshold 0 (any orphan is suspicious).
  const LogViolationRates rates = MineLogViolations(sample.log);
  constexpr double kMargin = 0.06;
  constexpr int kMinObservations = 3;
  for (const auto& [type, rate] : rates.orphan_by_type) {
    if (rate.second < kMinObservations) continue;
    const auto it = orphan_threshold_.find(type);
    const double threshold = it == orphan_threshold_.end() ? 0.0 : it->second;
    if (rate.first > threshold + kMargin) return 1;
  }
  for (const auto& [type, rate] : rates.failed_by_type) {
    if (rate.second < kMinObservations) continue;
    const auto it = failure_threshold_.find(type);
    const double threshold =
        it == failure_threshold_.end() ? 0.0 : it->second;
    if (rate.first > threshold + kMargin) return 1;
  }
  const InteractionGraph& g = sample.graph;
  if (g.num_nodes() == 0) return 0;

  // (1) Correlation violations: mined consistency features below the
  // benign-calibrated floor mean logged behavior deviates from the
  // templates (fake / stealthy commands, command failures).
  for (int i = 0; i < g.num_nodes(); ++i) {
    const auto& f = g.node(i).features;
    if (f.size() < 4) continue;
    const double cmd =
        1.0 + f[f.size() - kFeatureDimCommandConsistency] / kConsistencyScale;
    const double eff =
        1.0 + f[f.size() - kFeatureDimEffectConsistency] / kConsistencyScale;
    if (cmd < cmd_floor_ || eff < eff_floor_) return 1;
  }

  // (2) Unknown single-hop interactions: an observed rule whose
  // trigger->action pair never appeared in a benign template.
  for (int i = 0; i < g.num_nodes(); ++i) {
    const Rule& r = g.node(i).rule;
    for (const Action& a : r.actions) {
      const Template t{static_cast<int>(r.trigger.device), r.trigger.state,
                       static_cast<int>(a.device), a.state};
      if (!templates_.count(t)) return 1;
    }
  }

  // (3) Single-hop conflicts: two observed rules with the same trigger
  // driving one device to different states. (Binary templates cannot see
  // multi-hop reverts or loops — the blind spot the paper calls out.)
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j = i + 1; j < g.num_nodes(); ++j) {
      const Rule& a = g.node(i).rule;
      const Rule& b = g.node(j).rule;
      if (!(a.trigger == b.trigger)) continue;
      for (const Action& aa : a.actions) {
        for (const Action& ab : b.actions) {
          if (aa.device == ab.device && aa.state != ab.state) return 1;
        }
      }
    }
  }
  return 0;
}

}  // namespace fexiot
