#pragma once

#include <vector>

#include "graph/interaction_graph.h"
#include "smarthome/event_log.h"
#include "smarthome/vulnerability.h"

namespace fexiot {

/// \brief One testbed sample for the Table II system comparison: a cleaned
/// event log from a simulated home together with the fused online
/// interaction graph and ground truth.
struct TestbedSample {
  EventLog log;            ///< cleaned log (input to DeepLog/IsolationForest)
  InteractionGraph graph;  ///< fused online graph (input to graph methods)
  int label = 0;           ///< 1 = vulnerable (attacked or internal vuln)
  bool attacked = false;
  AttackType attack = AttackType::kFakeEvent;
};

/// \brief Common interface of the Table II comparison systems.
class SystemDetector {
 public:
  virtual ~SystemDetector() = default;
  /// Trains on (mostly benign) samples.
  virtual void Fit(const std::vector<TestbedSample>& train) = 0;
  /// 1 = vulnerable.
  virtual int Predict(const TestbedSample& sample) const = 0;
  virtual const char* Name() const = 0;
};

}  // namespace fexiot
