#include "baselines/lstm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fexiot {
namespace {

double SigmoidScalar(double x) { return 1.0 / (1.0 + std::exp(-x)); }

std::vector<double> Softmax(const std::vector<double>& logits) {
  std::vector<double> out(logits.size());
  double mx = logits[0];
  for (double v : logits) mx = std::max(mx, v);
  double sum = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - mx);
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

}  // namespace

/// Per-step activations recorded for BPTT.
struct LstmLanguageModel::StepCache {
  int key = 0;
  std::vector<double> h_prev, c_prev;
  std::vector<double> i, f, o, g;  // gate activations
  std::vector<double> c, h;
  std::vector<double> probs;
};

LstmLanguageModel::LstmLanguageModel(Options options) : options_(options) {
  Rng rng(options_.seed);
  const size_t v = static_cast<size_t>(options_.vocab_size);
  const size_t e = static_cast<size_t>(options_.embedding_dim);
  const size_t h = static_cast<size_t>(options_.hidden_dim);
  embed_ = Matrix::RandomNormal(v, e, 0.1, &rng);
  wx_ = Matrix::GlorotUniform(e, 4 * h, &rng);
  wh_ = Matrix::GlorotUniform(h, 4 * h, &rng);
  b_ = Matrix(1, 4 * h);
  // Forget-gate bias 1.0 (standard initialization).
  for (size_t j = h; j < 2 * h; ++j) b_.At(0, j) = 1.0;
  wout_ = Matrix::GlorotUniform(h, v, &rng);
  bout_ = Matrix(1, v);
}

std::vector<double> LstmLanguageModel::Step(int key, std::vector<double>* h,
                                            std::vector<double>* c,
                                            StepCache* cache) const {
  const size_t hd = static_cast<size_t>(options_.hidden_dim);
  const size_t ed = static_cast<size_t>(options_.embedding_dim);
  const size_t vd = static_cast<size_t>(options_.vocab_size);
  assert(key >= 0 && key < options_.vocab_size);

  // Gate pre-activations: a = x W_x + h W_h + b.
  std::vector<double> a(4 * hd, 0.0);
  for (size_t j = 0; j < 4 * hd; ++j) a[j] = b_.At(0, j);
  const double* x = embed_.RowPtr(static_cast<size_t>(key));
  for (size_t k = 0; k < ed; ++k) {
    const double xv = x[k];
    const double* row = wx_.RowPtr(k);
    for (size_t j = 0; j < 4 * hd; ++j) a[j] += xv * row[j];
  }
  for (size_t k = 0; k < hd; ++k) {
    const double hv = (*h)[k];
    if (hv == 0.0) continue;
    const double* row = wh_.RowPtr(k);
    for (size_t j = 0; j < 4 * hd; ++j) a[j] += hv * row[j];
  }

  std::vector<double> gi(hd), gf(hd), go(hd), gg(hd);
  for (size_t j = 0; j < hd; ++j) {
    gi[j] = SigmoidScalar(a[j]);
    gf[j] = SigmoidScalar(a[hd + j]);
    go[j] = SigmoidScalar(a[2 * hd + j]);
    gg[j] = std::tanh(a[3 * hd + j]);
  }
  std::vector<double> c_new(hd), h_new(hd);
  for (size_t j = 0; j < hd; ++j) {
    c_new[j] = gf[j] * (*c)[j] + gi[j] * gg[j];
    h_new[j] = go[j] * std::tanh(c_new[j]);
  }

  std::vector<double> logits(vd);
  for (size_t vv = 0; vv < vd; ++vv) logits[vv] = bout_.At(0, vv);
  for (size_t k = 0; k < hd; ++k) {
    const double hv = h_new[k];
    const double* row = wout_.RowPtr(k);
    for (size_t vv = 0; vv < vd; ++vv) logits[vv] += hv * row[vv];
  }

  if (cache) {
    cache->key = key;
    cache->h_prev = *h;
    cache->c_prev = *c;
    cache->i = gi;
    cache->f = gf;
    cache->o = go;
    cache->g = gg;
    cache->c = c_new;
    cache->h = h_new;
  }
  *h = std::move(h_new);
  *c = std::move(c_new);
  return logits;
}

double LstmLanguageModel::Fit(const std::vector<std::vector<int>>& sequences) {
  const size_t hd = static_cast<size_t>(options_.hidden_dim);
  const size_t ed = static_cast<size_t>(options_.embedding_dim);
  const size_t vd = static_cast<size_t>(options_.vocab_size);
  double final_ce = 0.0;

  // Gradient buffers.
  Matrix g_embed(vd, ed), g_wx(ed, 4 * hd), g_wh(hd, 4 * hd), g_b(1, 4 * hd);
  Matrix g_wout(hd, vd), g_bout(1, vd);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    double ce_sum = 0.0;
    int ce_count = 0;
    for (const auto& seq : sequences) {
      if (seq.size() < 2) continue;
      std::vector<double> h(hd, 0.0), c(hd, 0.0);
      for (size_t start = 0; start + 1 < seq.size();
           start += static_cast<size_t>(options_.bptt_steps)) {
        const size_t end = std::min(
            seq.size() - 1, start + static_cast<size_t>(options_.bptt_steps));
        // Forward over the window with caches.
        std::vector<StepCache> caches(end - start);
        std::vector<std::vector<double>> probs(end - start);
        for (size_t t = start; t < end; ++t) {
          const std::vector<double> logits =
              Step(seq[t], &h, &c, &caches[t - start]);
          probs[t - start] = Softmax(logits);
          caches[t - start].probs = probs[t - start];
          const int target = seq[t + 1];
          ce_sum -= std::log(
              probs[t - start][static_cast<size_t>(target)] + 1e-12);
          ++ce_count;
        }

        // BPTT.
        g_embed.Fill(0.0);
        g_wx.Fill(0.0);
        g_wh.Fill(0.0);
        g_b.Fill(0.0);
        g_wout.Fill(0.0);
        g_bout.Fill(0.0);
        std::vector<double> dh_next(hd, 0.0), dc_next(hd, 0.0);
        for (size_t t = end; t-- > start;) {
          const StepCache& cc = caches[t - start];
          // Output layer gradient.
          std::vector<double> dlogits = cc.probs;
          dlogits[static_cast<size_t>(seq[t + 1])] -= 1.0;
          std::vector<double> dh = dh_next;
          for (size_t k = 0; k < hd; ++k) {
            double* row = g_wout.RowPtr(k);
            for (size_t vv = 0; vv < vd; ++vv) {
              row[vv] += cc.h[k] * dlogits[vv];
            }
          }
          for (size_t vv = 0; vv < vd; ++vv) {
            g_bout.At(0, vv) += dlogits[vv];
          }
          for (size_t k = 0; k < hd; ++k) {
            const double* row = wout_.RowPtr(k);
            double s = 0.0;
            for (size_t vv = 0; vv < vd; ++vv) s += row[vv] * dlogits[vv];
            dh[k] += s;
          }
          // Through h = o * tanh(c).
          std::vector<double> dc(hd);
          std::vector<double> da(4 * hd);
          for (size_t j = 0; j < hd; ++j) {
            const double tc = std::tanh(cc.c[j]);
            const double do_ = dh[j] * tc;
            dc[j] = dh[j] * cc.o[j] * (1.0 - tc * tc) + dc_next[j];
            const double di = dc[j] * cc.g[j];
            const double df = dc[j] * cc.c_prev[j];
            const double dg = dc[j] * cc.i[j];
            da[j] = di * cc.i[j] * (1.0 - cc.i[j]);
            da[hd + j] = df * cc.f[j] * (1.0 - cc.f[j]);
            da[2 * hd + j] = do_ * cc.o[j] * (1.0 - cc.o[j]);
            da[3 * hd + j] = dg * (1.0 - cc.g[j] * cc.g[j]);
          }
          // Parameter grads + upstream grads.
          const double* x = embed_.RowPtr(static_cast<size_t>(cc.key));
          std::vector<double> dx(ed, 0.0);
          for (size_t k = 0; k < ed; ++k) {
            double* row = g_wx.RowPtr(k);
            const double* wrow = wx_.RowPtr(k);
            double s = 0.0;
            for (size_t j = 0; j < 4 * hd; ++j) {
              row[j] += x[k] * da[j];
              s += wrow[j] * da[j];
            }
            dx[k] = s;
          }
          {
            double* grow = g_embed.RowPtr(static_cast<size_t>(cc.key));
            for (size_t k = 0; k < ed; ++k) grow[k] += dx[k];
          }
          std::vector<double> dh_prev(hd, 0.0);
          for (size_t k = 0; k < hd; ++k) {
            double* row = g_wh.RowPtr(k);
            const double* wrow = wh_.RowPtr(k);
            double s = 0.0;
            for (size_t j = 0; j < 4 * hd; ++j) {
              row[j] += cc.h_prev[k] * da[j];
              s += wrow[j] * da[j];
            }
            dh_prev[k] = s;
          }
          for (size_t j = 0; j < 4 * hd; ++j) g_b.At(0, j) += da[j];
          std::vector<double> dc_prev(hd);
          for (size_t j = 0; j < hd; ++j) dc_prev[j] = dc[j] * cc.f[j];
          dh_next = std::move(dh_prev);
          dc_next = std::move(dc_prev);
        }

        // SGD update with gradient clipping.
        const double steps = static_cast<double>(end - start);
        auto update = [&](Matrix* p, const Matrix& g) {
          for (size_t i = 0; i < p->size(); ++i) {
            double grad = g.data()[i] / steps;
            grad = std::clamp(grad, -1.0, 1.0);
            p->data()[i] -= options_.learning_rate * grad;
          }
        };
        update(&embed_, g_embed);
        update(&wx_, g_wx);
        update(&wh_, g_wh);
        update(&b_, g_b);
        update(&wout_, g_wout);
        update(&bout_, g_bout);
      }
    }
    final_ce = ce_count > 0 ? ce_sum / ce_count : 0.0;
  }
  return final_ce;
}

std::vector<double> LstmLanguageModel::NextKeyDistribution(
    const std::vector<int>& history) const {
  const size_t hd = static_cast<size_t>(options_.hidden_dim);
  std::vector<double> h(hd, 0.0), c(hd, 0.0);
  std::vector<double> logits(static_cast<size_t>(options_.vocab_size), 0.0);
  for (int key : history) logits = Step(key, &h, &c, nullptr);
  return Softmax(logits);
}

bool LstmLanguageModel::InTopK(const std::vector<int>& history, int next,
                               int k) const {
  const std::vector<double> dist = NextKeyDistribution(history);
  const double p_next = dist[static_cast<size_t>(next)];
  int better = 0;
  for (double p : dist) {
    if (p > p_next) ++better;
  }
  return better < k;
}

double LstmLanguageModel::AnomalyRate(const std::vector<int>& sequence,
                                      int k) const {
  if (sequence.size() < 2) return 0.0;
  const size_t hd = static_cast<size_t>(options_.hidden_dim);
  std::vector<double> h(hd, 0.0), c(hd, 0.0);
  int anomalies = 0, total = 0;
  for (size_t t = 0; t + 1 < sequence.size(); ++t) {
    const std::vector<double> logits = Step(sequence[t], &h, &c, nullptr);
    const std::vector<double> dist = Softmax(logits);
    const double p_next = dist[static_cast<size_t>(sequence[t + 1])];
    int better = 0;
    for (double p : dist) {
      if (p > p_next) ++better;
    }
    if (better >= k) ++anomalies;
    ++total;
  }
  return total > 0 ? static_cast<double>(anomalies) / total : 0.0;
}

}  // namespace fexiot
