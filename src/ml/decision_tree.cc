#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace fexiot {
namespace {

// Variance-based impurity works for both modes: for 0/1 targets, variance
// p(1-p) orders splits identically to Gini impurity.
struct SplitStat {
  double sum = 0.0;
  double sum2 = 0.0;
  int count = 0;

  void Add(double v) {
    sum += v;
    sum2 += v * v;
    ++count;
  }
  void Remove(double v) {
    sum -= v;
    sum2 -= v * v;
    --count;
  }
  double Sse() const {
    if (count == 0) return 0.0;
    return sum2 - sum * sum / count;
  }
};

}  // namespace

int DecisionTree::Build(const Matrix& x, const std::vector<double>& targets,
                        std::vector<size_t>& idx, int depth, Rng* rng) {
  Node node;
  double mean = 0.0;
  for (size_t i : idx) mean += targets[i];
  mean /= static_cast<double>(idx.size());
  node.value = mean;

  // Stop conditions.
  bool pure = true;
  for (size_t i : idx) {
    if (std::fabs(targets[i] - targets[idx.front()]) > 1e-12) pure = false;
  }
  if (depth >= options_.max_depth || pure ||
      static_cast<int>(idx.size()) < options_.min_samples_split) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Candidate features.
  const size_t d = x.cols();
  std::vector<size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  if (options_.max_features > 0 &&
      static_cast<size_t>(options_.max_features) < d) {
    rng->Shuffle(&features);
    features.resize(static_cast<size_t>(options_.max_features));
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  // Parent SSE.
  SplitStat total;
  for (size_t i : idx) total.Add(targets[i]);
  const double parent_sse = total.Sse();

  std::vector<std::pair<double, double>> vals;  // (feature value, target)
  vals.reserve(idx.size());
  for (size_t f : features) {
    vals.clear();
    for (size_t i : idx) vals.emplace_back(x.At(i, f), targets[i]);
    std::sort(vals.begin(), vals.end());
    SplitStat left, right = total;
    for (size_t k = 0; k + 1 < vals.size(); ++k) {
      left.Add(vals[k].second);
      right.Remove(vals[k].second);
      if (vals[k].first == vals[k + 1].first) continue;  // no valid cut here
      if (left.count < options_.min_samples_leaf ||
          right.count < options_.min_samples_leaf) {
        continue;
      }
      const double gain = parent_sse - left.Sse() - right.Sse();
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (vals[k].first + vals[k + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : idx) {
    if (x.At(i, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const int me = static_cast<int>(nodes_.size()) - 1;
  const int left = Build(x, targets, left_idx, depth + 1, rng);
  const int right = Build(x, targets, right_idx, depth + 1, rng);
  nodes_[static_cast<size_t>(me)].left = left;
  nodes_[static_cast<size_t>(me)].right = right;
  return me;
}

Status DecisionTree::FitClassification(
    const Matrix& x, const std::vector<int>& y,
    const std::vector<size_t>& sample_indices) {
  std::vector<double> targets(y.size());
  for (size_t i = 0; i < y.size(); ++i) targets[i] = y[i];
  return FitRegression(x, targets, sample_indices);
}

Status DecisionTree::FitRegression(const Matrix& x,
                                   const std::vector<double>& y,
                                   const std::vector<size_t>& sample_indices) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("X rows must match y length");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  nodes_.clear();
  std::vector<size_t> idx = sample_indices;
  if (idx.empty()) {
    idx.resize(x.rows());
    std::iota(idx.begin(), idx.end(), 0);
  }
  Rng rng(options_.seed);
  Build(x, y, idx, 0, &rng);
  return Status::OK();
}

double DecisionTree::PredictValue(const std::vector<double>& sample) const {
  assert(!nodes_.empty());
  int cur = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<size_t>(cur)];
    if (n.feature < 0) return n.value;
    cur = sample[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                : n.right;
  }
}

Status RandomForestClassifier::Fit(const Matrix& x,
                                   const std::vector<int>& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("bad training set");
  }
  trees_.clear();
  Rng rng(options_.seed);
  DecisionTree::Options topt = options_.tree;
  if (topt.max_features == 0) {
    topt.max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(x.cols()))));
  }
  for (int t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<size_t> idx(x.rows());
    for (auto& i : idx) i = static_cast<size_t>(rng.UniformInt(x.rows()));
    topt.seed = rng.NextU64();
    DecisionTree tree(topt);
    FEXIOT_RETURN_NOT_OK(tree.FitClassification(x, y, idx));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForestClassifier::PredictProba(
    const std::vector<double>& sample) const {
  if (trees_.empty()) return 0.5;
  double sum = 0.0;
  for (const auto& t : trees_) sum += t.PredictValue(sample);
  return sum / static_cast<double>(trees_.size());
}

int RandomForestClassifier::Predict(const std::vector<double>& sample) const {
  return PredictProba(sample) >= 0.5 ? 1 : 0;
}

Status GradientBoostClassifier::Fit(const Matrix& x,
                                    const std::vector<int>& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("bad training set");
  }
  trees_.clear();
  const size_t n = x.rows();
  const double pos =
      static_cast<double>(std::accumulate(y.begin(), y.end(), 0));
  const double p0 = std::clamp(pos / static_cast<double>(n), 1e-4, 1.0 - 1e-4);
  base_logit_ = std::log(p0 / (1.0 - p0));

  std::vector<double> logit(n, base_logit_);
  Rng rng(options_.seed);
  DecisionTree::Options topt = options_.tree;
  for (int round = 0; round < options_.num_rounds; ++round) {
    // Negative gradient of log-loss: y - p.
    std::vector<double> residual(n);
    for (size_t i = 0; i < n; ++i) {
      const double p = 1.0 / (1.0 + std::exp(-logit[i]));
      residual[i] = static_cast<double>(y[i]) - p;
    }
    topt.seed = rng.NextU64();
    DecisionTree tree(topt);
    FEXIOT_RETURN_NOT_OK(tree.FitRegression(x, residual));
    for (size_t i = 0; i < n; ++i) {
      logit[i] += options_.learning_rate * tree.PredictValue(x.Row(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GradientBoostClassifier::PredictProba(
    const std::vector<double>& sample) const {
  double z = base_logit_;
  for (const auto& t : trees_) {
    z += options_.learning_rate * t.PredictValue(sample);
  }
  return 1.0 / (1.0 + std::exp(-z));
}

int GradientBoostClassifier::Predict(const std::vector<double>& sample) const {
  return PredictProba(sample) >= 0.5 ? 1 : 0;
}

}  // namespace fexiot
