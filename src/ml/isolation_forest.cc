#include "ml/isolation_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fexiot {
namespace {

// Average path length of an unsuccessful BST search over n points.
double HarmonicPath(int n) {
  if (n <= 1) return 0.0;
  const double h = std::log(static_cast<double>(n - 1)) + 0.5772156649;
  return 2.0 * h - 2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
}

}  // namespace

int IsolationForest::BuildNode(Tree* tree, const Matrix& x,
                               std::vector<size_t>& idx, int depth,
                               int max_depth, Rng* rng) {
  Node node;
  if (depth >= max_depth || idx.size() <= 1) {
    node.size = static_cast<int>(idx.size());
    tree->nodes.push_back(node);
    return static_cast<int>(tree->nodes.size()) - 1;
  }
  // Random feature with non-degenerate range.
  const size_t d = x.cols();
  int feature = -1;
  double lo = 0.0, hi = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const size_t f = static_cast<size_t>(rng->UniformInt(d));
    lo = hi = x.At(idx.front(), f);
    for (size_t i : idx) {
      lo = std::min(lo, x.At(i, f));
      hi = std::max(hi, x.At(i, f));
    }
    if (hi - lo > 1e-12) {
      feature = static_cast<int>(f);
      break;
    }
  }
  if (feature < 0) {
    node.size = static_cast<int>(idx.size());
    tree->nodes.push_back(node);
    return static_cast<int>(tree->nodes.size()) - 1;
  }
  node.feature = feature;
  node.threshold = rng->Uniform(lo, hi);
  std::vector<size_t> left_idx, right_idx;
  for (size_t i : idx) {
    if (x.At(i, static_cast<size_t>(feature)) <= node.threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  tree->nodes.push_back(node);
  const int me = static_cast<int>(tree->nodes.size()) - 1;
  const int left = BuildNode(tree, x, left_idx, depth + 1, max_depth, rng);
  const int right = BuildNode(tree, x, right_idx, depth + 1, max_depth, rng);
  tree->nodes[static_cast<size_t>(me)].left = left;
  tree->nodes[static_cast<size_t>(me)].right = right;
  return me;
}

void IsolationForest::Fit(const Matrix& x) {
  trees_.clear();
  if (x.rows() == 0) return;
  Rng rng(options_.seed);
  const size_t sub = std::min(static_cast<size_t>(options_.subsample_size),
                              x.rows());
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max<size_t>(2, sub))));
  expected_path_ = HarmonicPath(static_cast<int>(sub));
  for (int t = 0; t < options_.num_trees; ++t) {
    std::vector<size_t> idx =
        rng.SampleWithoutReplacement(x.rows(), sub);
    Tree tree;
    BuildNode(&tree, x, idx, 0, max_depth, &rng);
    trees_.push_back(std::move(tree));
  }
}

double IsolationForest::PathLength(const Tree& tree,
                                   const std::vector<double>& sample) const {
  int cur = 0;
  double depth = 0.0;
  for (;;) {
    const Node& n = tree.nodes[static_cast<size_t>(cur)];
    if (n.feature < 0) return depth + HarmonicPath(n.size);
    cur = sample[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                : n.right;
    depth += 1.0;
  }
}

double IsolationForest::Score(const std::vector<double>& sample) const {
  if (trees_.empty() || expected_path_ <= 0.0) return 0.5;
  double avg = 0.0;
  for (const auto& t : trees_) avg += PathLength(t, sample);
  avg /= static_cast<double>(trees_.size());
  return std::pow(2.0, -avg / expected_path_);
}

}  // namespace fexiot
