#pragma once

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace fexiot {

/// \brief K-means clustering (k-means++ init, Lloyd iterations). Used for
/// the Figure 6 cluster visualization of learned graph representations.
class KMeans {
 public:
  struct Options {
    int k = 7;
    int max_iters = 100;
    uint64_t seed = 41;
  };

  explicit KMeans(Options options) : options_(options) {}

  struct Result {
    Matrix centroids;            // k x d
    std::vector<int> assignment; // per row of x
    double inertia = 0.0;        // sum of squared distances to centroids
    int iterations = 0;
  };

  Result Fit(const Matrix& x) const;

 private:
  Options options_;
};

/// \brief Binary clustering of a cosine-similarity matrix by its dominant
/// eigenvector sign (spectral bisection). Used by the layer-wise federated
/// clustering (Algorithm 1, line 14: BinaryClustering(M)).
std::vector<int> BinaryClusterSimilarity(const Matrix& similarity);

}  // namespace fexiot
