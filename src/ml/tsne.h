#pragma once

#include "common/rng.h"
#include "tensor/matrix.h"

namespace fexiot {

/// \brief Exact t-SNE dimensionality reduction (van der Maaten & Hinton).
///
/// Used to project learned graph representations to 2-D for the Figure 6
/// cluster visualization. Exact O(n^2) gradients — fine for the paper's
/// 1,500-point samples.
class Tsne {
 public:
  struct Options {
    int output_dims = 2;
    double perplexity = 30.0;
    int iterations = 400;
    double learning_rate = 120.0;
    double early_exaggeration = 4.0;
    int exaggeration_iters = 80;
    double momentum = 0.8;
    uint64_t seed = 43;
  };

  explicit Tsne(Options options) : options_(options) {}

  /// Embeds rows of \p x into output_dims dimensions.
  Matrix FitTransform(const Matrix& x) const;

 private:
  Options options_;
};

}  // namespace fexiot
