#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace fexiot {

/// \brief Logistic-regression classifier trained with mini-batch SGD —
/// the repo's SGDClassifier. Used as each client's *local* linear head on
/// top of the federated graph representation (Section III-B), and as the
/// linear explanation model g(z') = W z' of kernel SHAP (Eq. 6).
class SgdClassifier : public Classifier {
 public:
  struct Options {
    int epochs = 60;
    double learning_rate = 0.05;
    double l2 = 1e-4;
    int batch_size = 16;
    /// Weight classes inversely to frequency (paper's imbalance handling).
    bool class_weighted = true;
    uint64_t seed = 13;
  };

  SgdClassifier() : SgdClassifier(Options()) {}
  explicit SgdClassifier(Options options) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  int Predict(const std::vector<double>& sample) const override;
  double PredictProba(const std::vector<double>& sample) const override;
  std::string Name() const override { return "SGDClassifier"; }

  /// Decision-function value w.x + b (pre-sigmoid logit).
  double Logit(const std::vector<double>& sample) const;

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  Options options_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace fexiot
