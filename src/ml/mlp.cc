#include "ml/mlp.h"

#include <cmath>
#include <numeric>

#include "tensor/ops.h"

namespace fexiot {
namespace {

constexpr double kBeta1 = 0.9;
constexpr double kBeta2 = 0.999;
constexpr double kEps = 1e-8;

void AdamUpdate(Matrix* param, const Matrix& grad, Matrix* m, Matrix* v,
                int step, double lr, double l2) {
  for (size_t i = 0; i < param->size(); ++i) {
    const double g = grad.data()[i] + l2 * param->data()[i];
    m->data()[i] = kBeta1 * m->data()[i] + (1.0 - kBeta1) * g;
    v->data()[i] = kBeta2 * v->data()[i] + (1.0 - kBeta2) * g * g;
    const double mhat = m->data()[i] / (1.0 - std::pow(kBeta1, step));
    const double vhat = v->data()[i] / (1.0 - std::pow(kBeta2, step));
    param->data()[i] -= lr * mhat / (std::sqrt(vhat) + kEps);
  }
}

}  // namespace

Matrix MlpClassifier::Forward(const Matrix& x, std::vector<Matrix>* pre,
                              std::vector<Matrix>* post) const {
  Matrix h = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    Matrix z = MatMul(h, layers_[l].w);
    AddBiasRow(&z, layers_[l].b);
    if (pre) pre->push_back(z);
    if (l + 1 < layers_.size()) {
      h = Relu(z);
    } else {
      h = Sigmoid(z);  // output layer: 1 unit, probability of class 1
    }
    if (post) post->push_back(h);
  }
  return h;
}

Status MlpClassifier::Fit(const Matrix& x_raw, const std::vector<int>& y) {
  if (x_raw.rows() != y.size()) {
    return Status::InvalidArgument("X rows must match y length");
  }
  if (x_raw.rows() == 0) return Status::InvalidArgument("empty training set");
  const Matrix x = scaler_.FitTransform(x_raw);

  Rng rng(options_.seed);
  layers_.clear();
  adam_step_ = 0;
  std::vector<int> sizes;
  sizes.push_back(static_cast<int>(x.cols()));
  for (int h : options_.hidden_sizes) sizes.push_back(h);
  sizes.push_back(1);
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.w = Matrix::GlorotUniform(static_cast<size_t>(sizes[l]),
                                    static_cast<size_t>(sizes[l + 1]), &rng);
    layer.b = Matrix(1, static_cast<size_t>(sizes[l + 1]));
    layer.m_w = Matrix(layer.w.rows(), layer.w.cols());
    layer.v_w = Matrix(layer.w.rows(), layer.w.cols());
    layer.m_b = Matrix(1, layer.b.cols());
    layer.v_b = Matrix(1, layer.b.cols());
    layers_.push_back(std::move(layer));
  }

  const size_t n = x.rows();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < n;
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end =
          std::min(n, start + static_cast<size_t>(options_.batch_size));
      const size_t bs = end - start;
      Matrix xb(bs, x.cols());
      Matrix yb(bs, 1);
      for (size_t k = 0; k < bs; ++k) {
        xb.SetRow(k, x.Row(order[start + k]));
        yb.At(k, 0) = static_cast<double>(y[order[start + k]]);
      }

      std::vector<Matrix> pre, post;
      const Matrix out = Forward(xb, &pre, &post);

      // BCE + sigmoid gradient at the output: (p - y) / batch.
      Matrix delta = out;
      delta -= yb;
      delta *= 1.0 / static_cast<double>(bs);

      ++adam_step_;
      for (size_t l = layers_.size(); l-- > 0;) {
        const Matrix& input = l == 0 ? xb : post[l - 1];
        const Matrix grad_w = MatMulTransA(input, delta);
        const Matrix grad_b = ColumnSum(delta);
        if (l > 0) {
          Matrix upstream = MatMulTransB(delta, layers_[l].w);
          delta = ReluBackward(upstream, pre[l - 1]);
        }
        AdamUpdate(&layers_[l].w, grad_w, &layers_[l].m_w, &layers_[l].v_w,
                   adam_step_, options_.learning_rate, options_.l2);
        AdamUpdate(&layers_[l].b, grad_b, &layers_[l].m_b, &layers_[l].v_b,
                   adam_step_, options_.learning_rate, 0.0);
      }
    }
  }
  return Status::OK();
}

double MlpClassifier::PredictProba(const std::vector<double>& sample) const {
  if (layers_.empty()) return 0.5;
  Matrix x(1, sample.size());
  x.SetRow(0, scaler_.Transform(sample));
  const Matrix out = Forward(x, nullptr, nullptr);
  return out.At(0, 0);
}

int MlpClassifier::Predict(const std::vector<double>& sample) const {
  return PredictProba(sample) >= 0.5 ? 1 : 0;
}

}  // namespace fexiot
