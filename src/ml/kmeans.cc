#include "ml/kmeans.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

double SquaredDistanceRows(const double* a, const double* b, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

}  // namespace

KMeans::Result KMeans::Fit(const Matrix& x) const {
  Result res;
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t k = std::min(static_cast<size_t>(options_.k), n);
  assert(k >= 1);
  Rng rng(options_.seed);

  // k-means++ seeding.
  res.centroids = Matrix(k, d);
  std::vector<size_t> chosen;
  chosen.push_back(static_cast<size_t>(rng.UniformInt(n)));
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  res.centroids.SetRow(0, x.Row(chosen[0]));
  for (size_t c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(
          min_d2[i], SquaredDistance(x.Row(i), x.Row(chosen.back())));
    }
    const size_t next = rng.Categorical(min_d2);
    chosen.push_back(next);
    res.centroids.SetRow(c, x.Row(next));
  }

  res.assignment.assign(n, 0);
  for (int iter = 0; iter < options_.max_iters; ++iter) {
    std::atomic<bool> changed{false};
    // Assign: each point's nearest centroid is independent; writes are
    // per-index, so the step parallelizes with no ordering effects.
    parallel::For(n, [&](size_t i) {
      const double* xi = x.RowPtr(i);
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d2 =
            SquaredDistanceRows(xi, res.centroids.RowPtr(c), d);
        if (d2 < best) {
          best = d2;
          best_c = static_cast<int>(c);
        }
      }
      if (res.assignment[i] != best_c) {
        res.assignment[i] = best_c;
        changed.store(true, std::memory_order_relaxed);
      }
    });
    res.iterations = iter + 1;
    if (!changed.load() && iter > 0) break;
    // Update.
    Matrix sums(k, d);
    std::vector<int> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(res.assignment[i]);
      const double* row = x.RowPtr(i);
      for (size_t j = 0; j < d; ++j) sums.At(c, j) += row[j];
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at a random point.
        res.centroids.SetRow(c, x.Row(static_cast<size_t>(rng.UniformInt(n))));
        continue;
      }
      for (size_t j = 0; j < d; ++j) {
        res.centroids.At(c, j) = sums.At(c, j) / counts[c];
      }
    }
  }
  res.inertia = 0.0;
  // Parallel distances, serial index-order reduction: bit-deterministic
  // for any thread count.
  std::vector<double> point_d2(n, 0.0);
  parallel::For(n, [&](size_t i) {
    point_d2[i] = SquaredDistanceRows(
        x.RowPtr(i),
        res.centroids.RowPtr(static_cast<size_t>(res.assignment[i])), d);
  });
  for (size_t i = 0; i < n; ++i) res.inertia += point_d2[i];
  return res;
}

std::vector<int> BinaryClusterSimilarity(const Matrix& similarity) {
  assert(similarity.rows() == similarity.cols());
  const size_t n = similarity.rows();
  if (n == 0) return {};
  if (n == 1) return {0};

  // Power iteration on the mean-centered similarity matrix; the sign of the
  // dominant eigenvector bisects the clients (spectral relaxation of the
  // 2-way min-cut on the similarity graph).
  Matrix m = similarity;
  double mean = m.Sum() / static_cast<double>(n * n);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] -= mean;

  std::vector<double> v(n);
  Rng rng(97);
  for (auto& x : v) x = rng.Normal();
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<double> nv(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = m.RowPtr(i);
      for (size_t j = 0; j < n; ++j) nv[i] += row[j] * v[j];
    }
    const double norm = VectorNorm(nv);
    if (norm < 1e-12) break;
    for (auto& x : nv) x /= norm;
    v = std::move(nv);
  }
  std::vector<int> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = v[i] >= 0.0 ? 0 : 1;
  // Guard: never return a single-cluster split (move the weakest member).
  int c0 = 0;
  for (int c : out) c0 += (c == 0);
  if (c0 == 0 || c0 == static_cast<int>(n)) {
    size_t weakest = 0;
    double weakest_v = std::fabs(v[0]);
    for (size_t i = 1; i < n; ++i) {
      if (std::fabs(v[i]) < weakest_v) {
        weakest_v = std::fabs(v[i]);
        weakest = i;
      }
    }
    out[weakest] = 1 - out[weakest];
  }
  return out;
}

}  // namespace fexiot
