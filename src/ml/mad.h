#pragma once

#include <vector>

#include "tensor/matrix.h"

namespace fexiot {

/// \brief Median-absolute-deviation drift detector (Section III-B3).
///
/// Fit: embeds the training set per class, computes each class centroid,
/// the per-sample distances to the centroid, their median and the MAD.
/// Test: a sample whose deviation score A^k = min_i |d_i - median_i|/MAD_i
/// exceeds the threshold (3, following Leys et al.) in *every* class is a
/// potential drifting sample — a new interaction pattern outside the
/// training space.
class MadDriftDetector {
 public:
  struct Options {
    double threshold = 3.0;
  };

  MadDriftDetector() : MadDriftDetector(Options()) {}
  explicit MadDriftDetector(Options options) : options_(options) {}

  /// \brief Fits per-class statistics from embeddings and labels
  /// (labels index classes 0..k-1).
  void Fit(const Matrix& embeddings, const std::vector<int>& labels);

  /// \brief The drift score A^k = min over classes of the MAD-normalized
  /// deviation of the sample's centroid distance.
  double Score(const std::vector<double>& embedding) const;

  /// True if the sample is a potential drifting sample.
  bool IsDrifting(const std::vector<double>& embedding) const {
    return Score(embedding) > options_.threshold;
  }

  int num_classes() const { return static_cast<int>(centroids_.size()); }

 private:
  Options options_;
  std::vector<std::vector<double>> centroids_;
  std::vector<double> median_distance_;
  std::vector<double> mad_;
};

}  // namespace fexiot
