#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace fexiot {

/// \brief CART decision tree. Classification mode splits on Gini impurity;
/// regression mode (used inside gradient boosting) on variance reduction.
class DecisionTree {
 public:
  struct Options {
    int max_depth = 8;
    int min_samples_split = 4;
    int min_samples_leaf = 2;
    /// Number of candidate features per split; 0 = all (set by random
    /// forest to sqrt(d)).
    int max_features = 0;
    uint64_t seed = 23;
  };

  DecisionTree() : DecisionTree(Options()) {}
  explicit DecisionTree(Options options) : options_(options) {}

  /// Trains a classification tree; \p sample_indices restricts the rows
  /// used (empty = all). Labels must be 0/1.
  Status FitClassification(const Matrix& x, const std::vector<int>& y,
                           const std::vector<size_t>& sample_indices = {});

  /// Trains a regression tree on real-valued targets.
  Status FitRegression(const Matrix& x, const std::vector<double>& y,
                       const std::vector<size_t>& sample_indices = {});

  /// Classification: P(class 1). Regression: predicted value.
  double PredictValue(const std::vector<double>& sample) const;

  int PredictClass(const std::vector<double>& sample) const {
    return PredictValue(sample) >= 0.5 ? 1 : 0;
  }

  int node_count() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;        // -1 for leaves
    double threshold = 0.0;  // go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;  // leaf prediction (class-1 fraction / mean target)
  };

  int Build(const Matrix& x, const std::vector<double>& targets,
            std::vector<size_t>& idx, int depth, Rng* rng);

  Options options_;
  std::vector<Node> nodes_;
};

/// \brief Random forest of classification trees (bagging + feature
/// subsampling). One of the Figure 3 correlation classifiers.
class RandomForestClassifier : public Classifier {
 public:
  struct Options {
    int num_trees = 60;
    DecisionTree::Options tree;
    uint64_t seed = 29;
  };

  RandomForestClassifier() : RandomForestClassifier(Options()) {}
  explicit RandomForestClassifier(Options options) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  int Predict(const std::vector<double>& sample) const override;
  double PredictProba(const std::vector<double>& sample) const override;
  std::string Name() const override { return "RandomForest"; }

 private:
  Options options_;
  std::vector<DecisionTree> trees_;
};

/// \brief Gradient-boosted trees for binary classification (log-loss,
/// shallow regression trees on the negative gradient). One of the Figure 3
/// correlation classifiers.
class GradientBoostClassifier : public Classifier {
 public:
  struct Options {
    int num_rounds = 80;
    double learning_rate = 0.15;
    DecisionTree::Options tree;
    uint64_t seed = 31;
  };

  GradientBoostClassifier() : GradientBoostClassifier(Options()) {
    options_.tree.max_depth = 3;
  }
  explicit GradientBoostClassifier(Options options) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  int Predict(const std::vector<double>& sample) const override;
  double PredictProba(const std::vector<double>& sample) const override;
  std::string Name() const override { return "GradientBoost"; }

 private:
  Options options_;
  double base_logit_ = 0.0;
  std::vector<DecisionTree> trees_;
};

}  // namespace fexiot
