#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/metrics.h"

namespace fexiot {

/// \brief Mean metrics over folds of a k-fold cross validation.
struct CrossValidationResult {
  ClassificationMetrics mean;
  std::vector<ClassificationMetrics> folds;
};

/// \brief Stratified k-fold cross validation of a classifier factory
/// (Figure 3 reports 10-fold CV). The factory builds a fresh model per
/// fold.
CrossValidationResult CrossValidate(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Matrix& x, const std::vector<int>& y, int num_folds, Rng* rng);

/// \brief Exhaustive grid search over parameter candidates; evaluates each
/// candidate by k-fold CV accuracy and returns the best index.
struct GridSearchResult {
  size_t best_index = 0;
  double best_accuracy = 0.0;
  std::vector<double> accuracies;
};

GridSearchResult GridSearch(
    const std::vector<std::function<std::unique_ptr<Classifier>()>>&
        candidates,
    const Matrix& x, const std::vector<int>& y, int num_folds, Rng* rng);

}  // namespace fexiot
