#include "ml/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

// Binary-searches the Gaussian bandwidth for one point to match the target
// perplexity; fills row i of P with conditional probabilities p_{j|i}.
void FitRowPerplexity(const Matrix& d2, size_t i, double target_perplexity,
                      Matrix* p) {
  const size_t n = d2.rows();
  double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
  const double log_target = std::log(target_perplexity);
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0, sum_dp = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double pj = std::exp(-beta * d2.At(i, j));
      sum += pj;
      sum_dp += pj * d2.At(i, j);
    }
    if (sum < 1e-300) {
      beta /= 2.0;
      continue;
    }
    // Shannon entropy of the conditional distribution.
    const double h = std::log(sum) + beta * sum_dp / sum;
    const double diff = h - log_target;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {
      beta_lo = beta;
      beta = beta_hi >= 1e12 ? beta * 2.0 : 0.5 * (beta + beta_hi);
    } else {
      beta_hi = beta;
      beta = 0.5 * (beta + beta_lo);
    }
  }
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    p->At(i, j) = std::exp(-beta * d2.At(i, j));
    sum += p->At(i, j);
  }
  if (sum > 0) {
    for (size_t j = 0; j < n; ++j) {
      if (j != i) p->At(i, j) /= sum;
    }
  }
}

}  // namespace

Matrix Tsne::FitTransform(const Matrix& x) const {
  const size_t n = x.rows();
  const size_t out_d = static_cast<size_t>(options_.output_dims);
  Rng rng(options_.seed);
  if (n == 0) return Matrix();
  if (n == 1) return Matrix(1, out_d);

  // Pairwise squared distances in input space. Iteration i owns cells
  // (i, j) and (j, i) for j > i, so every cell has exactly one writer and
  // the loop parallelizes without ordering effects.
  Matrix d2(n, n);
  parallel::For(n, [&](size_t i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dd = SquaredDistance(x.Row(i), x.Row(j));
      d2.At(i, j) = dd;
      d2.At(j, i) = dd;
    }
  });

  // Symmetrized affinities P. Each bandwidth search writes only row i.
  Matrix p(n, n);
  const double perplexity =
      std::min(options_.perplexity, static_cast<double>(n - 1) / 3.0);
  parallel::For(n, [&](size_t i) {
    FitRowPerplexity(d2, i, std::max(2.0, perplexity), &p);
  });
  Matrix psym(n, n);
  parallel::For(n, [&](size_t i) {
    for (size_t j = 0; j < n; ++j) {
      psym.At(i, j) =
          std::max((p.At(i, j) + p.At(j, i)) / (2.0 * n), 1e-12);
    }
  });

  // Gradient descent on the KL divergence.
  Matrix y = Matrix::RandomNormal(n, out_d, 1e-2, &rng);
  Matrix velocity(n, out_d);
  Matrix grad(n, out_d);
  for (int iter = 0; iter < options_.iterations; ++iter) {
    const double exaggeration =
        iter < options_.exaggeration_iters ? options_.early_exaggeration : 1.0;
    // Student-t affinities Q (unnormalized numerators first). Per-row
    // partial sums reduced serially in index order keep qsum — and thus
    // the whole embedding — bit-identical for any thread count.
    Matrix num(n, n);
    std::vector<double> qpart(n, 0.0);
    parallel::For(n, [&](size_t i) {
      double local = 0.0;
      for (size_t j = i + 1; j < n; ++j) {
        const double v =
            1.0 / (1.0 + SquaredDistance(y.Row(i), y.Row(j)));
        num.At(i, j) = v;
        num.At(j, i) = v;
        local += 2.0 * v;
      }
      qpart[i] = local;
    });
    double qsum = 0.0;
    for (size_t i = 0; i < n; ++i) qsum += qpart[i];
    qsum = std::max(qsum, 1e-12);
    grad.Fill(0.0);
    // Gradient rows are disjoint; y/num/psym are read-only here.
    parallel::For(n, [&](size_t i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double q = std::max(num.At(i, j) / qsum, 1e-12);
        const double mult =
            4.0 * (exaggeration * psym.At(i, j) - q) * num.At(i, j);
        for (size_t k = 0; k < out_d; ++k) {
          grad.At(i, k) += mult * (y.At(i, k) - y.At(j, k));
        }
      }
    });
    for (size_t i = 0; i < n; ++i) {
      for (size_t k = 0; k < out_d; ++k) {
        velocity.At(i, k) = options_.momentum * velocity.At(i, k) -
                            options_.learning_rate * grad.At(i, k);
        y.At(i, k) += velocity.At(i, k);
      }
    }
    // Re-center.
    const Matrix mean = ColumnMean(y);
    for (size_t i = 0; i < n; ++i) {
      for (size_t k = 0; k < out_d; ++k) y.At(i, k) -= mean.At(0, k);
    }
  }
  return y;
}

}  // namespace fexiot
