#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace fexiot {

std::string ClassificationMetrics::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "acc=%.3f prec=%.3f rec=%.3f f1=%.3f (tp=%d tn=%d fp=%d fn=%d)",
                accuracy, precision, recall, f1, true_positive, true_negative,
                false_positive, false_negative);
  return buf;
}

ClassificationMetrics ComputeMetrics(const std::vector<int>& labels,
                                     const std::vector<int>& predictions) {
  assert(labels.size() == predictions.size());
  ClassificationMetrics m;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool actual = labels[i] == 1;
    const bool pred = predictions[i] == 1;
    if (actual && pred) ++m.true_positive;
    if (!actual && !pred) ++m.true_negative;
    if (!actual && pred) ++m.false_positive;
    if (actual && !pred) ++m.false_negative;
  }
  const double n = static_cast<double>(labels.size());
  if (n > 0) {
    m.accuracy = (m.true_positive + m.true_negative) / n;
  }
  if (m.true_positive + m.false_positive > 0) {
    m.precision = static_cast<double>(m.true_positive) /
                  (m.true_positive + m.false_positive);
  }
  if (m.true_positive + m.false_negative > 0) {
    m.recall = static_cast<double>(m.true_positive) /
               (m.true_positive + m.false_negative);
  }
  if (m.precision + m.recall > 0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  for (double v : values) {
    out.stddev += (v - out.mean) * (v - out.mean);
  }
  out.stddev = std::sqrt(out.stddev / static_cast<double>(values.size()));
  return out;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

BoxStats ComputeBoxStats(std::vector<double> values) {
  BoxStats b;
  if (values.empty()) return b;
  std::sort(values.begin(), values.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  b.min = values.front();
  b.q1 = quantile(0.25);
  b.median = quantile(0.5);
  b.q3 = quantile(0.75);
  b.max = values.back();
  return b;
}

}  // namespace fexiot
