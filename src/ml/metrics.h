#pragma once

#include <string>
#include <vector>

namespace fexiot {

/// \brief Binary-classification quality metrics (positive class = 1).
struct ClassificationMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int true_positive = 0;
  int true_negative = 0;
  int false_positive = 0;
  int false_negative = 0;

  std::string ToString() const;
};

/// \brief Computes binary metrics from labels and predictions.
ClassificationMetrics ComputeMetrics(const std::vector<int>& labels,
                                     const std::vector<int>& predictions);

/// \brief Mean and (population) standard deviation of a sample.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

/// \brief Median of a sample (by copy; empty input -> 0).
double Median(std::vector<double> values);

/// \brief Box-plot summary used by the scalability figure.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};
BoxStats ComputeBoxStats(std::vector<double> values);

}  // namespace fexiot
