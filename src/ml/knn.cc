#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace fexiot {

Status KnnClassifier::Fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("bad training set");
  }
  train_x_ = scaler_.FitTransform(x);
  train_y_ = y;
  return Status::OK();
}

double KnnClassifier::PredictProba(const std::vector<double>& sample) const {
  if (train_x_.rows() == 0) return 0.5;
  const std::vector<double> q = scaler_.Transform(sample);
  // Partial selection of the k nearest.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(train_x_.rows());
  for (size_t i = 0; i < train_x_.rows(); ++i) {
    dist.emplace_back(SquaredDistance(q, train_x_.Row(i)), train_y_[i]);
  }
  const size_t k =
      std::min(static_cast<size_t>(options_.k), dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  double vote1 = 0.0, total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w = options_.distance_weighted
                         ? 1.0 / (std::sqrt(dist[i].first) + 1e-6)
                         : 1.0;
    total += w;
    if (dist[i].second == 1) vote1 += w;
  }
  return total > 0.0 ? vote1 / total : 0.5;
}

int KnnClassifier::Predict(const std::vector<double>& sample) const {
  return PredictProba(sample) >= 0.5 ? 1 : 0;
}

}  // namespace fexiot
