#include "ml/classifier.h"

#include <cassert>
#include <cmath>

namespace fexiot {

std::vector<int> Classifier::PredictBatch(const Matrix& x) const {
  std::vector<int> out;
  out.reserve(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out.push_back(Predict(x.Row(r)));
  return out;
}

void StandardScaler::Fit(const Matrix& x) {
  const size_t d = x.cols();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (x.rows() == 0) return;
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (auto& m : mean_) m /= static_cast<double>(x.rows());
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) {
      const double diff = row[c] - mean_[c];
      var[c] += diff * diff;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(x.rows()));
    inv_std_[c] = sd > 1e-9 ? 1.0 / sd : 1.0;
  }
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  assert(fitted() && x.cols() == mean_.size());
  Matrix out = x;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    for (size_t c = 0; c < out.cols(); ++c) {
      row[c] = (row[c] - mean_[c]) * inv_std_[c];
    }
  }
  return out;
}

std::vector<double> StandardScaler::Transform(
    const std::vector<double>& row) const {
  assert(fitted() && row.size() == mean_.size());
  std::vector<double> out(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) * inv_std_[c];
  }
  return out;
}

Matrix StandardScaler::FitTransform(const Matrix& x) {
  Fit(x);
  return Transform(x);
}

}  // namespace fexiot
