#include "ml/model_selection.h"

#include <cassert>

namespace fexiot {

CrossValidationResult CrossValidate(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Matrix& x, const std::vector<int>& y, int num_folds, Rng* rng) {
  assert(num_folds >= 2 && x.rows() == y.size());
  CrossValidationResult result;

  // Stratified fold assignment: spread each class round-robin after a
  // shuffle.
  std::vector<size_t> fold_of(x.rows());
  for (int cls = 0; cls <= 1; ++cls) {
    std::vector<size_t> idx;
    for (size_t i = 0; i < y.size(); ++i) {
      if (y[i] == cls) idx.push_back(i);
    }
    rng->Shuffle(&idx);
    for (size_t k = 0; k < idx.size(); ++k) {
      fold_of[idx[k]] = k % static_cast<size_t>(num_folds);
    }
  }

  double acc = 0, prec = 0, rec = 0, f1 = 0;
  for (int fold = 0; fold < num_folds; ++fold) {
    std::vector<size_t> train_idx, test_idx;
    for (size_t i = 0; i < x.rows(); ++i) {
      if (fold_of[i] == static_cast<size_t>(fold)) {
        test_idx.push_back(i);
      } else {
        train_idx.push_back(i);
      }
    }
    if (test_idx.empty() || train_idx.empty()) continue;
    Matrix xtr(train_idx.size(), x.cols());
    std::vector<int> ytr(train_idx.size());
    for (size_t k = 0; k < train_idx.size(); ++k) {
      xtr.SetRow(k, x.Row(train_idx[k]));
      ytr[k] = y[train_idx[k]];
    }
    auto model = factory();
    const Status st = model->Fit(xtr, ytr);
    assert(st.ok());
    (void)st;
    std::vector<int> labels, preds;
    for (size_t i : test_idx) {
      labels.push_back(y[i]);
      preds.push_back(model->Predict(x.Row(i)));
    }
    const ClassificationMetrics m = ComputeMetrics(labels, preds);
    result.folds.push_back(m);
    acc += m.accuracy;
    prec += m.precision;
    rec += m.recall;
    f1 += m.f1;
  }
  const double n = std::max<size_t>(1, result.folds.size());
  result.mean.accuracy = acc / n;
  result.mean.precision = prec / n;
  result.mean.recall = rec / n;
  result.mean.f1 = f1 / n;
  return result;
}

GridSearchResult GridSearch(
    const std::vector<std::function<std::unique_ptr<Classifier>()>>&
        candidates,
    const Matrix& x, const std::vector<int>& y, int num_folds, Rng* rng) {
  GridSearchResult result;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const CrossValidationResult cv =
        CrossValidate(candidates[i], x, y, num_folds, rng);
    result.accuracies.push_back(cv.mean.accuracy);
    if (cv.mean.accuracy > result.best_accuracy) {
      result.best_accuracy = cv.mean.accuracy;
      result.best_index = i;
    }
  }
  return result;
}

}  // namespace fexiot
