#include "ml/mad.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "ml/metrics.h"
#include "tensor/ops.h"

namespace fexiot {

void MadDriftDetector::Fit(const Matrix& embeddings,
                           const std::vector<int>& labels) {
  assert(embeddings.rows() == labels.size());
  int num_classes = 0;
  for (int l : labels) num_classes = std::max(num_classes, l + 1);
  centroids_.assign(static_cast<size_t>(num_classes),
                    std::vector<double>(embeddings.cols(), 0.0));
  std::vector<int> counts(static_cast<size_t>(num_classes), 0);
  for (size_t i = 0; i < embeddings.rows(); ++i) {
    const size_t c = static_cast<size_t>(labels[i]);
    const double* row = embeddings.RowPtr(i);
    for (size_t j = 0; j < embeddings.cols(); ++j) centroids_[c][j] += row[j];
    ++counts[c];
  }
  for (size_t c = 0; c < centroids_.size(); ++c) {
    if (counts[c] == 0) continue;
    for (auto& v : centroids_[c]) v /= counts[c];
  }

  median_distance_.assign(static_cast<size_t>(num_classes), 0.0);
  mad_.assign(static_cast<size_t>(num_classes), 1.0);
  for (size_t c = 0; c < centroids_.size(); ++c) {
    std::vector<double> dists;
    for (size_t i = 0; i < embeddings.rows(); ++i) {
      if (static_cast<size_t>(labels[i]) != c) continue;
      dists.push_back(EuclideanDistance(embeddings.Row(i), centroids_[c]));
    }
    if (dists.empty()) continue;
    const double med = Median(dists);
    median_distance_[c] = med;
    std::vector<double> devs;
    devs.reserve(dists.size());
    for (double d : dists) devs.push_back(std::fabs(d - med));
    // Consistency constant 1.4826 makes MAD comparable to a stddev under
    // normality (Leys et al. 2013).
    mad_[c] = std::max(1e-9, 1.4826 * Median(devs));
  }
}

double MadDriftDetector::Score(const std::vector<double>& embedding) const {
  if (centroids_.empty()) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    const double d = EuclideanDistance(embedding, centroids_[c]);
    const double a = std::fabs(d - median_distance_[c]) / mad_[c];
    best = std::min(best, a);
  }
  return best;
}

}  // namespace fexiot
