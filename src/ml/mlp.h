#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace fexiot {

/// \brief Multi-layer perceptron classifier trained by backprop with Adam
/// (binary cross-entropy). One of the four Figure 3 correlation
/// classifiers.
class MlpClassifier : public Classifier {
 public:
  struct Options {
    std::vector<int> hidden_sizes = {32, 16};
    int epochs = 120;
    double learning_rate = 0.01;
    double l2 = 1e-5;
    int batch_size = 32;
    uint64_t seed = 17;
  };

  MlpClassifier() : MlpClassifier(Options()) {}
  explicit MlpClassifier(Options options) : options_(std::move(options)) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  int Predict(const std::vector<double>& sample) const override;
  double PredictProba(const std::vector<double>& sample) const override;
  std::string Name() const override { return "MLP"; }

 private:
  struct Layer {
    Matrix w;      // in x out
    Matrix b;      // 1 x out
    Matrix m_w, v_w, m_b, v_b;  // Adam moments
  };

  Matrix Forward(const Matrix& x, std::vector<Matrix>* pre,
                 std::vector<Matrix>* post) const;

  Options options_;
  std::vector<Layer> layers_;
  StandardScaler scaler_;
  int adam_step_ = 0;
};

}  // namespace fexiot
