#include "ml/linear_model.h"

#include <cmath>
#include <numeric>

namespace fexiot {

Status SgdClassifier::Fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("X rows must match y length");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  const size_t n = x.rows(), d = x.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;

  // Inverse-frequency class weights (weighted cross entropy).
  double w_pos = 1.0, w_neg = 1.0;
  if (options_.class_weighted) {
    const double pos =
        static_cast<double>(std::accumulate(y.begin(), y.end(), 0));
    const double neg = static_cast<double>(n) - pos;
    if (pos > 0 && neg > 0) {
      w_pos = static_cast<double>(n) / (2.0 * pos);
      w_neg = static_cast<double>(n) / (2.0 * neg);
    }
  }

  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr =
        options_.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t start = 0; start < n;
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end =
          std::min(n, start + static_cast<size_t>(options_.batch_size));
      std::vector<double> grad(d, 0.0);
      double grad_b = 0.0;
      for (size_t k = start; k < end; ++k) {
        const size_t i = order[k];
        const double* row = x.RowPtr(i);
        double z = b_;
        for (size_t c = 0; c < d; ++c) z += w_[c] * row[c];
        const double p = 1.0 / (1.0 + std::exp(-z));
        const double weight = y[i] == 1 ? w_pos : w_neg;
        const double err = (p - static_cast<double>(y[i])) * weight;
        for (size_t c = 0; c < d; ++c) grad[c] += err * row[c];
        grad_b += err;
      }
      const double scale = lr / static_cast<double>(end - start);
      for (size_t c = 0; c < d; ++c) {
        w_[c] -= scale * grad[c] + lr * options_.l2 * w_[c];
      }
      b_ -= scale * grad_b;
    }
  }
  return Status::OK();
}

double SgdClassifier::Logit(const std::vector<double>& sample) const {
  double z = b_;
  const size_t d = std::min(sample.size(), w_.size());
  for (size_t c = 0; c < d; ++c) z += w_[c] * sample[c];
  return z;
}

double SgdClassifier::PredictProba(const std::vector<double>& sample) const {
  return 1.0 / (1.0 + std::exp(-Logit(sample)));
}

int SgdClassifier::Predict(const std::vector<double>& sample) const {
  return PredictProba(sample) >= 0.5 ? 1 : 0;
}

}  // namespace fexiot
