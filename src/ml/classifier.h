#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace fexiot {

/// \brief Common interface of the classical classifiers (the repo's
/// scikit-learn substitute). Labels are non-negative ints; all built-in
/// users are binary (0 = normal, 1 = vulnerable / correlated).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on rows of \p x with labels \p y.
  virtual Status Fit(const Matrix& x, const std::vector<int>& y) = 0;

  /// Predicts the label of one sample.
  virtual int Predict(const std::vector<double>& sample) const = 0;

  /// Probability of class 1 for one sample (0.5 +- margin heuristics for
  /// models without calibrated probabilities).
  virtual double PredictProba(const std::vector<double>& sample) const = 0;

  /// Model display name.
  virtual std::string Name() const = 0;

  /// Batch helper.
  std::vector<int> PredictBatch(const Matrix& x) const;
};

/// \brief Feature standardizer (zero mean, unit variance per column).
class StandardScaler {
 public:
  /// Learns per-column statistics.
  void Fit(const Matrix& x);
  /// Applies the transform (columns with ~0 variance pass through).
  Matrix Transform(const Matrix& x) const;
  std::vector<double> Transform(const std::vector<double>& row) const;
  Matrix FitTransform(const Matrix& x);

  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace fexiot
