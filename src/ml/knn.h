#pragma once

#include "ml/classifier.h"

namespace fexiot {

/// \brief K-nearest-neighbors classifier (Euclidean, distance-weighted
/// vote). One of the Figure 3 correlation classifiers.
class KnnClassifier : public Classifier {
 public:
  struct Options {
    int k = 7;
    /// Weight neighbors by inverse distance (vs. uniform vote).
    bool distance_weighted = true;
  };

  KnnClassifier() : KnnClassifier(Options()) {}
  explicit KnnClassifier(Options options) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  int Predict(const std::vector<double>& sample) const override;
  double PredictProba(const std::vector<double>& sample) const override;
  std::string Name() const override { return "KNN"; }

 private:
  Options options_;
  Matrix train_x_;
  std::vector<int> train_y_;
  StandardScaler scaler_;
};

}  // namespace fexiot
