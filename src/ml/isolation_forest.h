#pragma once

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace fexiot {

/// \brief Isolation forest anomaly detector (Liu et al. 2008) — one of the
/// Table II comparison systems. Scores samples by average isolation path
/// length over random trees; shorter paths = more anomalous.
class IsolationForest {
 public:
  struct Options {
    int num_trees = 100;
    int subsample_size = 256;
    uint64_t seed = 37;
    /// Anomaly threshold on the score in [0,1] (0.5 = average point).
    double threshold = 0.6;
  };

  IsolationForest() : IsolationForest(Options()) {}
  explicit IsolationForest(Options options) : options_(options) {}

  /// Fits on (presumably mostly normal) data.
  void Fit(const Matrix& x);

  /// Anomaly score in [0, 1]; higher = more anomalous.
  double Score(const std::vector<double>& sample) const;

  /// 1 = anomaly (score above threshold).
  int Predict(const std::vector<double>& sample) const {
    return Score(sample) >= options_.threshold ? 1 : 0;
  }

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int size = 0;  // leaf: number of training samples isolated here
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int BuildNode(Tree* tree, const Matrix& x, std::vector<size_t>& idx,
                int depth, int max_depth, Rng* rng);
  double PathLength(const Tree& tree, const std::vector<double>& sample) const;

  Options options_;
  std::vector<Tree> trees_;
  double expected_path_ = 1.0;
};

}  // namespace fexiot
