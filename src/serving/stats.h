#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fexiot {

/// \brief Exact-percentile latency recorder: keeps every sample (a serving
/// session records one double per request — cheap at bench/test scales)
/// and computes order statistics on demand. Percentiles use linear
/// interpolation between closest ranks, so p50/p95/p99 are exact for the
/// recorded distribution rather than bucketed approximations.
class LatencyRecorder {
 public:
  void Add(double seconds) { samples_.push_back(seconds); }

  size_t count() const { return samples_.size(); }

  /// \brief The \p p-th percentile (p in [0, 100]) of the recorded
  /// samples; 0.0 when empty. Linear interpolation between closest ranks.
  double Percentile(double p) const;

  double Max() const;
  double Mean() const;

  const std::vector<double>& samples() const { return samples_; }

  void Clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

/// \brief Telemetry block of a StreamingDetectionEngine. Counters cover
/// the whole ingest -> delta graph -> batcher -> inference pipeline;
/// `latency` records one end-to-end sample per served detection request.
struct ServingStats {
  uint64_t requests = 0;          ///< detection requests served
  uint64_t batches = 0;           ///< inference dispatches (incl. size 1)
  uint64_t ingested_events = 0;   ///< log entries consumed
  uint64_t firings = 0;           ///< rule firings mined from the streams
  /// Undirected propagation-CSR pairs toggled in place (delta updates).
  uint64_t incremental_updates = 0;
  /// CSR entries rewritten by GCN degree renormalization.
  uint64_t reweighted_entries = 0;
  uint64_t rebuilds = 0;          ///< full PrepareGraph rebuilds (churn)
  uint64_t parity_checks = 0;     ///< incremental-vs-rebuild verifications
  uint64_t parity_failures = 0;   ///< ...that found a mismatch (bug!)
  /// batch_size_hist[s] = number of dispatches of size s (index 0 unused).
  std::vector<uint64_t> batch_size_hist;
  LatencyRecorder latency;

  void RecordBatch(size_t size) {
    ++batches;
    if (batch_size_hist.size() <= size) batch_size_hist.resize(size + 1, 0);
    ++batch_size_hist[size];
  }
};

}  // namespace fexiot
