#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace fexiot {

/// \brief Seeded Poisson / burst arrival process for serving load tests.
struct ArrivalConfig {
  /// Baseline arrival rate (requests per simulated second).
  double rate_hz = 100.0;
  /// Rate multiplier while inside a burst window (1.0 = plain Poisson).
  double burst_factor = 1.0;
  /// Fraction of each burst period spent at the boosted rate, in [0, 1).
  double burst_fraction = 0.0;
  /// Length of one burst cycle in simulated seconds.
  double burst_period_s = 10.0;
  uint64_t seed = 1;
};

Status ValidateArrivalConfig(const ArrivalConfig& config);

/// \brief Deterministic arrival-time generator: exponential gaps drawn
/// from a counter-seeded Rng, with the instantaneous rate boosted by
/// burst_factor during the leading burst_fraction of every burst period
/// (a simple piecewise-homogeneous approximation of a bursty Poisson
/// process — the gap is drawn at the rate in effect when it starts).
/// Same seed => bit-identical arrival sequence.
class ArrivalGenerator {
 public:
  explicit ArrivalGenerator(const ArrivalConfig& config)
      : config_(config), rng_(config.seed) {}

  /// \brief Returns the next arrival timestamp (strictly increasing).
  double Next();

  double now() const { return t_; }

 private:
  ArrivalConfig config_;
  Rng rng_;
  double t_ = 0.0;
};

}  // namespace fexiot
