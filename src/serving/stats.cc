#include "serving/stats.h"

#include <algorithm>
#include <cmath>

namespace fexiot {

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  // Linear interpolation between closest ranks over [0, n-1].
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double LatencyRecorder::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

}  // namespace fexiot
