#include "serving/arrivals.h"

#include <cmath>

namespace fexiot {

Status ValidateArrivalConfig(const ArrivalConfig& config) {
  if (!(config.rate_hz > 0.0)) {
    return Status::InvalidArgument("arrivals: rate_hz must be > 0");
  }
  if (!(config.burst_factor >= 1.0)) {
    return Status::InvalidArgument("arrivals: burst_factor must be >= 1");
  }
  if (config.burst_fraction < 0.0 || config.burst_fraction >= 1.0) {
    return Status::InvalidArgument(
        "arrivals: burst_fraction must be in [0, 1)");
  }
  if (config.burst_fraction > 0.0 && !(config.burst_period_s > 0.0)) {
    return Status::InvalidArgument(
        "arrivals: burst_period_s must be > 0 when bursting");
  }
  return Status::OK();
}

double ArrivalGenerator::Next() {
  double rate = config_.rate_hz;
  if (config_.burst_fraction > 0.0 && config_.burst_factor > 1.0) {
    const double phase = std::fmod(t_, config_.burst_period_s);
    if (phase < config_.burst_fraction * config_.burst_period_s) {
      rate *= config_.burst_factor;
    }
  }
  // Exponential gap via inverse CDF; 1 - U is in (0, 1], so the log is
  // finite and the gap strictly positive.
  const double u = rng_.Uniform();
  t_ += -std::log(1.0 - u) / rate;
  return t_;
}

}  // namespace fexiot
