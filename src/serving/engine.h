#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gnn/gnn_model.h"
#include "graph/delta_graph.h"
#include "graph/interaction_graph.h"
#include "serving/stats.h"
#include "smarthome/event_log.h"
#include "smarthome/home.h"

namespace fexiot {

/// \brief Batching and graph-maintenance knobs of the serving engine.
/// The GNN architecture itself comes from the GnnModel the engine wraps.
struct ServingConfig {
  /// Requests accumulated before an inference dispatch. 1 = the classic
  /// one-graph-at-a-time path (no snapshot copy, no batching overhead).
  int max_batch = 8;
  /// Max simulated seconds a request may wait for batch-mates before the
  /// batch dispatches anyway (0 = dispatch as soon as sized or advanced).
  double max_linger_s = 0.05;
  /// A rule counts as active — participates in interaction edges — for
  /// this many seconds after its last observed firing.
  double active_window_s = 600.0;
  /// Max delay between a trigger event and the rule's action effects
  /// (mirrors OnlineGraphBuilder::Options::firing_window).
  double firing_window_s = 10.0;
  /// Matching window for command <-> state-change consistency mining
  /// (mirrors OnlineGraphBuilder::Options::consistency_window).
  double consistency_window_s = 5.0;
  /// Full PrepareGraph rebuild once in-place CSR toggles since the last
  /// rebuild exceed this fraction of the matrix's stored entries. The
  /// rebuild is bit-identical to continued incremental maintenance —
  /// purely a compaction heuristic, never a correctness event.
  double rebuild_churn_fraction = 0.5;
  /// Cross-check every snapshot against a from-scratch PrepareGraph and
  /// count mismatches in stats().parity_failures (testing/CI; expensive).
  bool verify_incremental = false;
};

Status ValidateServingConfig(const ServingConfig& config);

/// \brief One served detection answer.
struct DetectionResult {
  int home_id = -1;
  double request_time = 0.0;  ///< simulated enqueue time
  /// Simulated queueing wait (dispatch - enqueue) plus the measured
  /// wall-clock seconds of the inference dispatch that served it.
  double latency_s = 0.0;
  std::vector<double> embedding;  ///< GNN graph embedding
  /// Embedding L2 norm — a monotone anomaly proxy until a trained
  /// classifier head is wired in (larger = further from the origin the
  /// contrastive loss pulls benign graphs toward).
  double score = 0.0;
  int batch_size = 0;  ///< size of the dispatch that served it
};

/// \brief Long-lived streaming detection engine (DESIGN.md §5.11): ingests
/// per-home cleaned event-log streams, maintains each home's interaction
/// graph *incrementally* (delta CSR updates via DeltaPropagation, full
/// PrepareGraph rebuilds only past the churn threshold), and serves
/// detection requests through a batched block-diagonal inference path
/// (GraphBatch + GnnModel::ForwardBatch) that is bit-identical to running
/// the homes one at a time.
///
/// Graph semantics (the streaming counterpart of OnlineGraphBuilder):
/// every deployed rule is a node from AddHome on — never-fired rules are
/// isolated self-loop-only nodes, which keeps the CSR dimensions fixed
/// under churn. A rule is *active* for active_window_s after a mined
/// firing (trigger state-change followed by all action states within
/// firing_window_s; the firing timestamp is the trigger time). Directed
/// edge i -> j exists while both rules are active and rule i's actions
/// can fire rule j's trigger (ActionTriggersRule over the deployed
/// rules, precomputed at AddHome). Command- and effect-consistency
/// scores are mined from the stream with the same windows as the offline
/// builder and folded into the reserved feature dims.
///
/// Determinism: all simulated-time bookkeeping is driven by caller
/// timestamps, all compute runs through the pool-deterministic kernels,
/// so ingest/request sequences replay bit-identically for any
/// FEXIOT_THREADS (latency_s values are wall-clock measurements and
/// excluded from that contract).
///
/// Thread-safety: externally synchronized (one engine per serving thread,
/// like a GnnWorkspace); the internal kernels may still fan out over the
/// process pool.
class StreamingDetectionEngine {
 public:
  /// \p model must outlive the engine. The engine prepares graphs in
  /// sparse mode regardless of the model config's propagation knob (the
  /// batched path stacks CSRs).
  StreamingDetectionEngine(const GnnModel* model, const ServingConfig& config);

  /// \brief Registers a home. All of its rules become (isolated) graph
  /// nodes immediately. Fails on duplicate id or a home with no rules.
  Status AddHome(int home_id, const Home& home);

  /// \brief Consumes one cleaned log entry for \p home_id. Timestamps
  /// must be non-decreasing per home. Irrelevant kinds (sensor readings,
  /// execution errors) are counted and skipped.
  Status Ingest(int home_id, const LogEntry& entry);

  /// \brief Enqueues a detection request for \p home_id at simulated time
  /// \p now. The home's graph is snapshotted at enqueue, so later ingests
  /// never leak into an already-pending request. Dispatches happen when
  /// the batch fills, when a second request arrives for an already-pending
  /// home (forced early flush), or via AdvanceTo/Flush; completed results
  /// are appended to \p completed (may be empty after a call).
  Status RequestDetection(int home_id, double now,
                          std::vector<DetectionResult>* completed);

  /// \brief Advances simulated time: dispatches the pending batch if its
  /// oldest request's linger deadline has passed.
  void AdvanceTo(double now, std::vector<DetectionResult>* completed);

  /// \brief Dispatches the pending batch regardless of size/linger.
  void Flush(std::vector<DetectionResult>* completed);

  const ServingStats& stats() const { return stats_; }
  const ServingConfig& config() const { return config_; }

  /// \brief The incrementally maintained prepared graph (testing).
  const PreparedGraph* prepared(int home_id) const;

  /// \brief From-scratch PrepareGraph over the home's current interaction
  /// graph — the parity oracle incremental maintenance must match
  /// bit-for-bit (testing).
  PreparedGraph RebuildPrepared(int home_id) const;

  /// \brief The home's current interaction graph (testing).
  const InteractionGraph* graph(int home_id) const;

 private:
  struct TriggerCandidate {
    int rule = 0;            ///< rule index within the home
    double trigger_time = 0.0;
    std::vector<bool> action_seen;
    int actions_remaining = 0;
  };
  struct EffectCheck {
    int rule = 0;
    DeviceType device;
    std::string state;
    double command_time = 0.0;
  };
  struct CommandRecord {
    double time = 0.0;
    DeviceType device;
    std::string value;
  };
  struct RuleStats {
    double last_fire = -1.0;  ///< trigger time of the latest firing
    bool active = false;
    uint64_t command_hits = 0, command_total = 0;
    uint64_t effect_hits = 0, effect_total = 0;
  };

  struct HomeState {
    Home home;
    InteractionGraph graph;      ///< fixed node universe, live edge set
    PreparedGraph prepared;      ///< incrementally maintained (sparse)
    DeltaPropagation delta{false};
    /// related[i * n + j]: rule i's actions can fire rule j's trigger.
    std::vector<bool> related;
    std::vector<RuleStats> rules;
    std::deque<TriggerCandidate> candidates;
    std::deque<EffectCheck> effect_checks;
    std::deque<CommandRecord> command_log;
    double clock = 0.0;            ///< latest timestamp seen
    bool relational_dirty = true;  ///< edges changed since last augment
    uint64_t churn_since_rebuild = 0;
    bool pending_request = false;  ///< snapshot currently in the batch
  };

  HomeState* Find(int home_id);
  const HomeState* Find(int home_id) const;

  /// Deactivates rules whose active window ended at or before \p now and
  /// expires pending candidates / effect checks / command records.
  void ExpireTo(HomeState* hs, double now);
  /// Applies a mined firing of rule \p r at trigger time \p t.
  void CompleteFiring(HomeState* hs, int r, const TriggerCandidate& cand);
  /// Adds/removes rule \p r's edges after an activation flip.
  void SyncEdgesFor(HomeState* hs, int r);
  /// Refreshes node \p r's feature vector (and its prepared row).
  void RefreshNodeFeatures(HomeState* hs, int r, double fire_time);
  /// Copies graph node \p r's features into the prepared feature row
  /// under the PrepareGraph pad/truncate contract.
  void CopyFeatureRow(HomeState* hs, int r);
  /// Re-runs relational augmentation + feature rows if edges changed, and
  /// performs the churn-triggered rebuild / parity verification. Called
  /// right before a snapshot is taken.
  void PrepareForSnapshot(HomeState* hs);

  void Dispatch(double dispatch_time, std::vector<DetectionResult>* completed);

  const GnnModel* model_;
  ServingConfig config_;
  GnnConfig gnn_config_;  ///< model config with propagation forced sparse
  std::unordered_map<int, size_t> home_index_;
  std::deque<HomeState> homes_;  ///< stable addresses under growth

  struct PendingRequest {
    int home_id = -1;
    double enqueue_time = 0.0;
    size_t slot = 0;
  };
  std::vector<PendingRequest> pending_;
  std::vector<PreparedGraph> slots_;  ///< reused snapshot storage
  GraphBatch batch_;                  ///< reused batch assembly
  BatchForwardWorkspace batch_ws_;
  GnnWorkspace ws_;  ///< classic path scratch (max_batch == 1)
  std::vector<std::vector<double>> batch_embeddings_;

  ServingStats stats_;
};

}  // namespace fexiot
