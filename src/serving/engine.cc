#include "serving/engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <utility>

#include "common/stopwatch.h"
#include "graph/fusion.h"
#include "smarthome/rule.h"
#include "tensor/ops.h"

namespace fexiot {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

Status ValidateServingConfig(const ServingConfig& config) {
  if (config.max_batch < 1) {
    return Status::InvalidArgument("serving: max_batch must be >= 1");
  }
  if (config.max_batch > 4096) {
    return Status::InvalidArgument("serving: max_batch must be <= 4096");
  }
  if (config.max_linger_s < 0.0) {
    return Status::InvalidArgument("serving: max_linger_s must be >= 0");
  }
  if (!(config.active_window_s > 0.0)) {
    return Status::InvalidArgument("serving: active_window_s must be > 0");
  }
  if (!(config.firing_window_s > 0.0)) {
    return Status::InvalidArgument("serving: firing_window_s must be > 0");
  }
  if (!(config.consistency_window_s > 0.0)) {
    return Status::InvalidArgument(
        "serving: consistency_window_s must be > 0");
  }
  if (!(config.rebuild_churn_fraction > 0.0)) {
    return Status::InvalidArgument(
        "serving: rebuild_churn_fraction must be > 0");
  }
  return Status::OK();
}

StreamingDetectionEngine::StreamingDetectionEngine(const GnnModel* model,
                                                   const ServingConfig& config)
    : model_(model), config_(config), gnn_config_(model->config()) {
  assert(model_ != nullptr);
  assert(ValidateServingConfig(config_).ok());
  // The batched path stacks CSRs block-diagonally, so every prepared
  // graph must be sparse regardless of the ambient propagation knob.
  gnn_config_.propagation = PropagationMode::kSparse;
}

StreamingDetectionEngine::HomeState* StreamingDetectionEngine::Find(
    int home_id) {
  const auto it = home_index_.find(home_id);
  return it == home_index_.end() ? nullptr : &homes_[it->second];
}

const StreamingDetectionEngine::HomeState* StreamingDetectionEngine::Find(
    int home_id) const {
  const auto it = home_index_.find(home_id);
  return it == home_index_.end() ? nullptr : &homes_[it->second];
}

Status StreamingDetectionEngine::AddHome(int home_id, const Home& home) {
  if (Find(home_id) != nullptr) {
    return Status::AlreadyExists("serving: home id already registered");
  }
  if (home.rules.empty()) {
    return Status::InvalidArgument("serving: home has no rules");
  }
  homes_.emplace_back();
  HomeState& hs = homes_.back();
  home_index_[home_id] = homes_.size() - 1;
  hs.home = home;
  hs.delta = DeltaPropagation(gnn_config_.type == GnnType::kGin);
  const size_t n = home.rules.size();
  // Fixed node universe: every deployed rule is a node from day one
  // (never-fired rules stay isolated self-loop-only nodes), so the CSR
  // dimensions never change under churn and delta updates suffice.
  for (const Rule& rule : home.rules) {
    GraphNode node;
    node.rule = rule;
    node.event_time = -1.0;
    node.features = ComputeNodeFeatures(rule, -1.0);
    hs.graph.AddNode(std::move(node));
  }
  hs.related.assign(n * n, false);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      hs.related[i * n + j] = ActionTriggersRule(home.rules[i], home.rules[j]);
    }
  }
  hs.rules.assign(n, RuleStats());
  hs.clock = kNegInf;
  hs.prepared = PrepareGraph(hs.graph, gnn_config_);
  hs.relational_dirty = true;  // first snapshot runs the augmentation
  return Status::OK();
}

void StreamingDetectionEngine::ExpireTo(HomeState* hs, double now) {
  // Trigger candidates: the action window [tt, tt + fw] is inclusive, so
  // a candidate only dies strictly after its window end.
  while (!hs->candidates.empty() &&
         hs->candidates.front().trigger_time + config_.firing_window_s < now) {
    hs->candidates.pop_front();
  }
  // Effect checks: an unresolved command past its window is a consistency
  // miss (total incremented, no hit) — tampering's "stealthy command"
  // signature.
  while (!hs->effect_checks.empty() &&
         hs->effect_checks.front().command_time + config_.consistency_window_s <
             now) {
    ++hs->rules[static_cast<size_t>(hs->effect_checks.front().rule)]
          .effect_total;
    hs->effect_checks.pop_front();
  }
  // Command history only needs to reach back cw before the oldest
  // possible live trigger (itself at most fw old).
  const double keep_after =
      now - (config_.firing_window_s + config_.consistency_window_s);
  while (!hs->command_log.empty() && hs->command_log.front().time < keep_after) {
    hs->command_log.pop_front();
  }
  // Rules age out of the active window; their edges go with them.
  for (size_t r = 0; r < hs->rules.size(); ++r) {
    RuleStats& rs = hs->rules[r];
    if (rs.active && rs.last_fire + config_.active_window_s < now) {
      rs.active = false;
      SyncEdgesFor(hs, static_cast<int>(r));
    }
  }
}

void StreamingDetectionEngine::SyncEdgesFor(HomeState* hs, int r) {
  const size_t n = hs->home.rules.size();
  const size_t ri = static_cast<size_t>(r);
  const uint64_t structural_before = hs->delta.structural_updates();
  const uint64_t reweight_before = hs->delta.reweighted_entries();
  for (size_t j = 0; j < n; ++j) {
    if (j == ri) continue;
    const bool both_active = hs->rules[ri].active && hs->rules[j].active;
    const bool fwd = hs->related[ri * n + j];
    const bool bwd = hs->related[j * n + ri];
    // Directed graph edges mirror the offline builder exactly; the CSR
    // stores one undirected pair whenever either direction is live,
    // matching BuildPropagationCsr's symmetrization.
    if (both_active && fwd) {
      hs->graph.AddEdge(r, static_cast<int>(j));
    } else {
      hs->graph.RemoveEdge(r, static_cast<int>(j));
    }
    if (both_active && bwd) {
      hs->graph.AddEdge(static_cast<int>(j), r);
    } else {
      hs->graph.RemoveEdge(static_cast<int>(j), r);
    }
    if (both_active && (fwd || bwd)) {
      hs->delta.InsertEdge(&hs->prepared.prop_csr, r, static_cast<int>(j));
    } else {
      hs->delta.RemoveEdge(&hs->prepared.prop_csr, r, static_cast<int>(j));
    }
  }
  const uint64_t toggled = hs->delta.structural_updates() - structural_before;
  if (toggled > 0) {
    hs->relational_dirty = true;
    hs->churn_since_rebuild += toggled;
    stats_.incremental_updates += toggled;
    stats_.reweighted_entries +=
        hs->delta.reweighted_entries() - reweight_before;
  }
}

void StreamingDetectionEngine::CopyFeatureRow(HomeState* hs, int r) {
  // PrepareGraph's pad/truncate contract, applied to one row in place.
  const std::vector<double>& f =
      hs->graph.node(r).features;
  const size_t ri = static_cast<size_t>(r);
  Matrix& feat = hs->prepared.features;
  const size_t copy = std::min(f.size(), feat.cols());
  double* row = feat.RowPtr(ri);
  std::copy(f.begin(), f.begin() + static_cast<ptrdiff_t>(copy), row);
  std::fill(row + copy, row + feat.cols(), 0.0);
  if (hs->prepared.features_hetero.rows() > 0 &&
      hs->prepared.node_space[ri] == 1) {
    Matrix& het = hs->prepared.features_hetero;
    const size_t hcopy = std::min(f.size(), het.cols());
    double* hrow = het.RowPtr(ri);
    std::copy(f.begin(), f.begin() + static_cast<ptrdiff_t>(hcopy), hrow);
    std::fill(hrow + hcopy, hrow + het.cols(), 0.0);
  }
}

void StreamingDetectionEngine::RefreshNodeFeatures(HomeState* hs, int r,
                                                   double fire_time) {
  GraphNode& node = hs->graph.mutable_node(r);
  std::vector<double> f = ComputeNodeFeatures(node.rule, fire_time);
  // ComputeNodeFeatures zeroes the relational dims; carry the current
  // augmentation over so a firing doesn't erase structural features.
  const size_t base = f.size() - static_cast<size_t>(kExtraFeatureDims);
  for (size_t k = 0; k < 4; ++k) f[base + k] = node.features[base + k];
  const RuleStats& rs = hs->rules[static_cast<size_t>(r)];
  const double cmd_c =
      rs.command_total > 0 ? static_cast<double>(rs.command_hits) /
                                 static_cast<double>(rs.command_total)
                           : 1.0;
  const double eff_c =
      rs.effect_total > 0 ? static_cast<double>(rs.effect_hits) /
                                static_cast<double>(rs.effect_total)
                          : 1.0;
  f[f.size() - static_cast<size_t>(kFeatureDimCommandConsistency)] =
      kConsistencyScale * (cmd_c - 1.0);
  f[f.size() - static_cast<size_t>(kFeatureDimEffectConsistency)] =
      kConsistencyScale * (eff_c - 1.0);
  node.features = std::move(f);
  node.event_time = fire_time;
  CopyFeatureRow(hs, r);
}

void StreamingDetectionEngine::CompleteFiring(HomeState* hs, int r,
                                              const TriggerCandidate& cand) {
  ++stats_.firings;
  RuleStats& rs = hs->rules[static_cast<size_t>(r)];
  const Rule& rule = hs->home.rules[static_cast<size_t>(r)];
  // Command-consistency mining around this firing, as in the offline
  // builder but over the pruned command history: a firing is consistent
  // when each action had a matching command in [tt - cw, tt + fw]. The
  // streaming engine resolves at completion time, so commands arriving
  // after the last action effect (legal but rare — the simulator logs
  // commands before effects) are not counted.
  const double tt = cand.trigger_time;
  for (const Action& a : rule.actions) {
    ++rs.command_total;
    bool hit = false;
    for (const CommandRecord& c : hs->command_log) {
      if (c.time < tt - config_.consistency_window_s) continue;
      if (c.device == a.device && c.value == a.state) {
        hit = true;
        break;
      }
    }
    if (hit) ++rs.command_hits;
  }
  rs.last_fire = tt;
  const bool was_active = rs.active;
  rs.active = true;
  RefreshNodeFeatures(hs, r, tt);
  if (!was_active) SyncEdgesFor(hs, r);
}

Status StreamingDetectionEngine::Ingest(int home_id, const LogEntry& entry) {
  HomeState* hs = Find(home_id);
  if (hs == nullptr) return Status::NotFound("serving: unknown home id");
  if (entry.timestamp < hs->clock) {
    return Status::InvalidArgument(
        "serving: per-home timestamps must be non-decreasing");
  }
  hs->clock = entry.timestamp;
  ++stats_.ingested_events;
  ExpireTo(hs, entry.timestamp);
  const double t = entry.timestamp;
  const size_t n = hs->home.rules.size();

  if (entry.kind == LogKind::kCommand) {
    hs->command_log.push_back({t, entry.device, entry.value});
    // Every (rule, action) this command could belong to opens an effect
    // check: consistent iff the commanded state materializes within cw.
    for (size_t i = 0; i < n; ++i) {
      for (const Action& a : hs->home.rules[i].actions) {
        if (a.device == entry.device && a.state == entry.value) {
          hs->effect_checks.push_back(
              {static_cast<int>(i), a.device, a.state, t});
        }
      }
    }
    return Status::OK();
  }
  if (entry.kind != LogKind::kStateChange) return Status::OK();

  // Resolve pending effect checks this state change satisfies (all
  // remaining checks are within their window — older ones expired above).
  for (size_t k = 0; k < hs->effect_checks.size();) {
    EffectCheck& c = hs->effect_checks[k];
    if (c.device == entry.device && c.state == entry.value) {
      RuleStats& rs = hs->rules[static_cast<size_t>(c.rule)];
      ++rs.effect_total;
      ++rs.effect_hits;
      hs->effect_checks.erase(hs->effect_checks.begin() +
                              static_cast<ptrdiff_t>(k));
    } else {
      ++k;
    }
  }

  // New trigger candidates (before matching, so a trigger event that is
  // also one of the rule's action states counts — the offline builder's
  // inclusive window [tt, tt + fw] starts at the trigger itself).
  for (size_t i = 0; i < n; ++i) {
    const Rule& rule = hs->home.rules[i];
    if (rule.trigger.device == entry.device &&
        rule.trigger.state == entry.value) {
      TriggerCandidate cand;
      cand.rule = static_cast<int>(i);
      cand.trigger_time = t;
      cand.action_seen.assign(rule.actions.size(), false);
      cand.actions_remaining = static_cast<int>(rule.actions.size());
      hs->candidates.push_back(std::move(cand));
    }
  }

  // Match this state change against every live candidate's outstanding
  // actions; candidates whose last action lands complete as firings.
  for (size_t k = 0; k < hs->candidates.size();) {
    TriggerCandidate& cand = hs->candidates[k];
    const Rule& rule = hs->home.rules[static_cast<size_t>(cand.rule)];
    for (size_t ai = 0; ai < rule.actions.size(); ++ai) {
      if (cand.action_seen[ai]) continue;
      const Action& a = rule.actions[ai];
      if (a.device == entry.device && a.state == entry.value) {
        cand.action_seen[ai] = true;
        --cand.actions_remaining;
      }
    }
    if (cand.actions_remaining == 0) {
      const TriggerCandidate done = std::move(cand);
      hs->candidates.erase(hs->candidates.begin() +
                           static_cast<ptrdiff_t>(k));
      CompleteFiring(hs, done.rule, done);
    } else {
      ++k;
    }
  }
  return Status::OK();
}

void StreamingDetectionEngine::PrepareForSnapshot(HomeState* hs) {
  if (hs->relational_dirty) {
    // Deterministic (noise-free) relational augmentation over the live
    // edge set, then refresh every prepared feature row: a structural
    // change can flip relational dims anywhere in the neighborhood.
    AugmentRelationalFeatures(&hs->graph);
    for (int r = 0; r < hs->graph.num_nodes(); ++r) CopyFeatureRow(hs, r);
    hs->relational_dirty = false;
  }
  if (config_.verify_incremental) {
    ++stats_.parity_checks;
    const PreparedGraph oracle = PrepareGraph(hs->graph, gnn_config_);
    const CsrMatrix& inc = hs->prepared.prop_csr;
    const CsrMatrix& ref = oracle.prop_csr;
    bool same = inc.row_ptr() == ref.row_ptr() &&
                inc.col_idx() == ref.col_idx() &&
                inc.values().size() == ref.values().size();
    // Bitwise value comparison (operator== would treat -0.0 == +0.0 and
    // NaN != NaN; memcmp pins the actual representation).
    if (same && !inc.values().empty()) {
      same = std::memcmp(inc.values().data(), ref.values().data(),
                         inc.values().size() * sizeof(double)) == 0;
    }
    if (same) {
      same = hs->prepared.features.rows() == oracle.features.rows() &&
             hs->prepared.features.cols() == oracle.features.cols() &&
             std::memcmp(hs->prepared.features.data(), oracle.features.data(),
                         oracle.features.size() * sizeof(double)) == 0;
    }
    if (!same) ++stats_.parity_failures;
  }
  // Churn-triggered compaction. Bit-identical to continuing incrementally
  // (pinned by the parity check above), so it is pure hygiene: one build
  // amortizes away the accumulated tail-shift cost of in-place edits.
  const double threshold =
      config_.rebuild_churn_fraction *
      static_cast<double>(std::max<size_t>(1, hs->prepared.prop_csr.nnz()));
  if (static_cast<double>(hs->churn_since_rebuild) > threshold) {
    hs->prepared = PrepareGraph(hs->graph, gnn_config_);
    hs->churn_since_rebuild = 0;
    ++stats_.rebuilds;
  }
}

Status StreamingDetectionEngine::RequestDetection(
    int home_id, double now, std::vector<DetectionResult>* completed) {
  assert(completed != nullptr);
  HomeState* hs = Find(home_id);
  if (hs == nullptr) return Status::NotFound("serving: unknown home id");
  ++stats_.requests;
  // Expiry is monotone: a request timestamped before the home's stream
  // clock sees the stream-clock view.
  const double effective = std::max(now, hs->clock);
  hs->clock = effective;
  ExpireTo(hs, effective);

  if (config_.max_batch == 1) {
    // Classic one-graph-at-a-time path: no snapshot copy, no batching
    // machinery — the honest baseline the batched path is measured
    // against.
    PrepareForSnapshot(hs);
    Stopwatch sw;
    const std::vector<double>& emb =
        model_->Forward(hs->prepared, nullptr, &ws_);
    const double wall = sw.ElapsedSeconds();
    stats_.RecordBatch(1);
    stats_.latency.Add(wall);
    DetectionResult res;
    res.home_id = home_id;
    res.request_time = now;
    res.latency_s = wall;
    res.embedding = emb;  // copy: the reference aliases engine scratch
    res.score = VectorNorm(res.embedding);
    res.batch_size = 1;
    completed->push_back(std::move(res));
    return Status::OK();
  }

  if (hs->pending_request) {
    // A second request for a home already in the batch forces an early
    // dispatch: each pending slot must keep its snapshot-at-enqueue view.
    Dispatch(effective, completed);
  }
  PrepareForSnapshot(hs);
  const size_t slot = pending_.size();
  if (slots_.size() <= slot) slots_.resize(slot + 1);
  slots_[slot] = hs->prepared;  // copy-assign reuses slot capacity
  pending_.push_back({home_id, now, slot});
  hs->pending_request = true;
  if (pending_.size() >= static_cast<size_t>(config_.max_batch) ||
      config_.max_linger_s == 0.0) {
    Dispatch(effective, completed);
  }
  return Status::OK();
}

void StreamingDetectionEngine::AdvanceTo(double now,
                                         std::vector<DetectionResult>* completed) {
  assert(completed != nullptr);
  if (pending_.empty()) return;
  const double deadline = pending_.front().enqueue_time + config_.max_linger_s;
  if (deadline <= now) Dispatch(deadline, completed);
}

void StreamingDetectionEngine::Flush(std::vector<DetectionResult>* completed) {
  assert(completed != nullptr);
  if (pending_.empty()) return;
  double latest = pending_.front().enqueue_time;
  for (const PendingRequest& p : pending_) {
    latest = std::max(latest, p.enqueue_time);
  }
  Dispatch(latest, completed);
}

void StreamingDetectionEngine::Dispatch(
    double dispatch_time, std::vector<DetectionResult>* completed) {
  if (pending_.empty()) return;
  const size_t size = pending_.size();
  std::vector<const PreparedGraph*> graphs;
  graphs.reserve(size);
  for (const PendingRequest& p : pending_) graphs.push_back(&slots_[p.slot]);
  AssembleGraphBatch(graphs, gnn_config_, &batch_);
  Stopwatch sw;
  model_->ForwardBatch(batch_, &batch_ws_, &batch_embeddings_);
  const double wall = sw.ElapsedSeconds();
  stats_.RecordBatch(size);
  for (size_t k = 0; k < size; ++k) {
    const PendingRequest& p = pending_[k];
    DetectionResult res;
    res.home_id = p.home_id;
    res.request_time = p.enqueue_time;
    // Per-home stream clocks are not globally synchronized, so a forced
    // dispatch driven by one home's time may nominally precede another
    // pending home's enqueue; the simulated wait clamps at zero.
    res.latency_s = std::max(0.0, dispatch_time - p.enqueue_time) + wall;
    res.embedding = std::move(batch_embeddings_[k]);
    res.score = VectorNorm(res.embedding);
    res.batch_size = static_cast<int>(size);
    stats_.latency.Add(res.latency_s);
    HomeState* hs = Find(p.home_id);
    if (hs != nullptr) hs->pending_request = false;
    completed->push_back(std::move(res));
  }
  pending_.clear();
}

const PreparedGraph* StreamingDetectionEngine::prepared(int home_id) const {
  const HomeState* hs = Find(home_id);
  return hs == nullptr ? nullptr : &hs->prepared;
}

PreparedGraph StreamingDetectionEngine::RebuildPrepared(int home_id) const {
  const HomeState* hs = Find(home_id);
  assert(hs != nullptr);
  return PrepareGraph(hs->graph, gnn_config_);
}

const InteractionGraph* StreamingDetectionEngine::graph(int home_id) const {
  const HomeState* hs = Find(home_id);
  return hs == nullptr ? nullptr : &hs->graph;
}

}  // namespace fexiot
