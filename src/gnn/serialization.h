#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "gnn/gnn_model.h"

namespace fexiot {

/// \brief Little-endian byte codec shared by every versioned FexIoT binary
/// encoding. The GNN model file format below and the federated wire
/// messages (runtime/message.h) are both built from these primitives, so a
/// layer payload carried inside a wire message is byte-identical to the
/// corresponding layer record of a serialized model.
namespace wire {

void AppendU16(std::vector<uint8_t>* out, uint16_t v);
void AppendU32(std::vector<uint8_t>* out, uint32_t v);
void AppendU64(std::vector<uint8_t>* out, uint64_t v);
void AppendF32(std::vector<uint8_t>* out, float v);
void AppendDoubles(std::vector<uint8_t>* out, const double* p, size_t n);

/// Read helpers: advance \p *off on success, return false on overrun.
bool ReadU16(const uint8_t* data, size_t size, size_t* off, uint16_t* v);
bool ReadU32(const uint8_t* data, size_t size, size_t* off, uint32_t* v);
bool ReadU64(const uint8_t* data, size_t size, size_t* off, uint64_t* v);
bool ReadF32(const uint8_t* data, size_t size, size_t* off, float* v);
bool ReadDoubles(const uint8_t* data, size_t size, size_t* off, double* p,
                 size_t n);

/// \brief Appends a flat parameter vector as a length-prefixed record
/// (u64 count + raw doubles) — the per-layer encoding of the model file
/// format and the payload encoding of layer-update wire messages.
void AppendLayerRecord(std::vector<uint8_t>* out,
                       const std::vector<double>& flat);
/// \brief Parses a record written by AppendLayerRecord.
bool ReadLayerRecord(const uint8_t* data, size_t size, size_t* off,
                     std::vector<double>* flat);

}  // namespace wire

/// \brief Serializes a trained GNN (config + all layer parameters) to the
/// versioned in-memory encoding: "FEXGNN02" magic, 8 u64 header fields,
/// one layer record per layer, and a trailing CRC-32 over everything after
/// the magic. The same bytes are written by SaveGnnModel and carried as
/// the payload of model-broadcast wire messages.
std::vector<uint8_t> SerializeGnnModel(const GnnModel& model);

/// \brief Restores a model from SerializeGnnModel bytes. Fails with
/// InvalidArgument on bad magic, version mismatch, shape mismatch or CRC
/// (payload corruption) failure, and IOError on truncation.
Result<GnnModel> DeserializeGnnModel(const uint8_t* data, size_t size);

/// \brief Saves a trained GNN to a binary file (the SerializeGnnModel
/// encoding). A server can persist the federally-trained model and ship it
/// to new houses, which restore it with LoadGnnModel and fit their local
/// head via FexIoT::AdoptModel.
Status SaveGnnModel(const GnnModel& model, const std::string& path);

/// \brief Restores a model saved by SaveGnnModel. Fails with IOError /
/// InvalidArgument on missing files or format mismatches.
Result<GnnModel> LoadGnnModel(const std::string& path);

}  // namespace fexiot
