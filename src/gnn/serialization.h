#pragma once

#include <string>

#include "common/result.h"
#include "gnn/gnn_model.h"

namespace fexiot {

/// \brief Saves a trained GNN (config + all layer parameters) to a binary
/// file. The format is versioned ("FEXGNN01" magic); a server can persist
/// the federally-trained model and ship it to new houses, which restore
/// it with LoadGnnModel and fit their local head via FexIoT::AdoptModel.
Status SaveGnnModel(const GnnModel& model, const std::string& path);

/// \brief Restores a model saved by SaveGnnModel. Fails with IOError /
/// InvalidArgument on missing files or format mismatches.
Result<GnnModel> LoadGnnModel(const std::string& path);

}  // namespace fexiot
