#include "gnn/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace fexiot {
namespace {

constexpr char kMagic[8] = {'F', 'E', 'X', 'G', 'N', 'N', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool ReadU64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status SaveGnnModel(const GnnModel& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for writing: " + path);
  if (std::fwrite(kMagic, sizeof(kMagic), 1, f.get()) != 1) {
    return Status::IOError("write failed: " + path);
  }
  const GnnConfig& c = model.config();
  const uint64_t header[] = {
      static_cast<uint64_t>(c.type),
      static_cast<uint64_t>(c.input_dim),
      static_cast<uint64_t>(c.hetero_input_dim),
      static_cast<uint64_t>(c.hidden_dim),
      static_cast<uint64_t>(c.num_layers),
      static_cast<uint64_t>(c.embedding_dim),
      c.seed,
      static_cast<uint64_t>(model.num_layers()),
  };
  for (uint64_t v : header) {
    if (!WriteU64(f.get(), v)) return Status::IOError("write failed");
  }
  for (int l = 0; l < model.num_layers(); ++l) {
    const std::vector<double> flat = model.GetLayerFlat(l);
    if (!WriteU64(f.get(), flat.size())) return Status::IOError("write failed");
    if (!flat.empty() &&
        std::fwrite(flat.data(), sizeof(double), flat.size(), f.get()) !=
            flat.size()) {
      return Status::IOError("write failed: " + path);
    }
  }
  return Status::OK();
}

Result<GnnModel> LoadGnnModel(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open: " + path);
  char magic[8];
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a FexIoT GNN model file: " + path);
  }
  uint64_t header[8];
  for (auto& v : header) {
    if (!ReadU64(f.get(), &v)) return Status::IOError("truncated: " + path);
  }
  GnnConfig c;
  if (header[0] > static_cast<uint64_t>(GnnType::kMagnn)) {
    return Status::InvalidArgument("unknown model type in: " + path);
  }
  c.type = static_cast<GnnType>(header[0]);
  c.input_dim = static_cast<int>(header[1]);
  c.hetero_input_dim = static_cast<int>(header[2]);
  c.hidden_dim = static_cast<int>(header[3]);
  c.num_layers = static_cast<int>(header[4]);
  c.embedding_dim = static_cast<int>(header[5]);
  c.seed = header[6];
  GnnModel model(c);
  if (static_cast<int>(header[7]) != model.num_layers()) {
    return Status::InvalidArgument("layer count mismatch in: " + path);
  }
  for (int l = 0; l < model.num_layers(); ++l) {
    uint64_t n = 0;
    if (!ReadU64(f.get(), &n)) return Status::IOError("truncated: " + path);
    if (n != model.LayerSize(l)) {
      return Status::InvalidArgument("layer size mismatch in: " + path);
    }
    std::vector<double> flat(n);
    if (n > 0 &&
        std::fread(flat.data(), sizeof(double), n, f.get()) != n) {
      return Status::IOError("truncated: " + path);
    }
    model.SetLayerFlat(l, flat);
  }
  return model;
}

}  // namespace fexiot
