#include "gnn/serialization.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/crc32.h"

namespace fexiot {

namespace wire {

void AppendU16(std::vector<uint8_t>* out, uint16_t v) {
  const size_t off = out->size();
  out->resize(off + sizeof(v));
  std::memcpy(out->data() + off, &v, sizeof(v));
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t off = out->size();
  out->resize(off + sizeof(v));
  std::memcpy(out->data() + off, &v, sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t off = out->size();
  out->resize(off + sizeof(v));
  std::memcpy(out->data() + off, &v, sizeof(v));
}

void AppendDoubles(std::vector<uint8_t>* out, const double* p, size_t n) {
  const size_t off = out->size();
  out->resize(off + n * sizeof(double));
  if (n > 0) std::memcpy(out->data() + off, p, n * sizeof(double));
}

void AppendF32(std::vector<uint8_t>* out, float v) {
  const size_t off = out->size();
  out->resize(off + sizeof(v));
  std::memcpy(out->data() + off, &v, sizeof(v));
}

bool ReadU16(const uint8_t* data, size_t size, size_t* off, uint16_t* v) {
  if (*off + sizeof(*v) > size) return false;
  std::memcpy(v, data + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

bool ReadU32(const uint8_t* data, size_t size, size_t* off, uint32_t* v) {
  if (*off + sizeof(*v) > size) return false;
  std::memcpy(v, data + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

bool ReadU64(const uint8_t* data, size_t size, size_t* off, uint64_t* v) {
  if (*off + sizeof(*v) > size) return false;
  std::memcpy(v, data + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

bool ReadF32(const uint8_t* data, size_t size, size_t* off, float* v) {
  if (*off + sizeof(*v) > size) return false;
  std::memcpy(v, data + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

bool ReadDoubles(const uint8_t* data, size_t size, size_t* off, double* p,
                 size_t n) {
  if (*off > size || n > (size - *off) / sizeof(double)) return false;
  if (n > 0) std::memcpy(p, data + *off, n * sizeof(double));
  *off += n * sizeof(double);
  return true;
}

void AppendLayerRecord(std::vector<uint8_t>* out,
                       const std::vector<double>& flat) {
  AppendU64(out, flat.size());
  AppendDoubles(out, flat.data(), flat.size());
}

bool ReadLayerRecord(const uint8_t* data, size_t size, size_t* off,
                     std::vector<double>* flat) {
  uint64_t n = 0;
  if (!ReadU64(data, size, off, &n)) return false;
  // Reject record lengths the remaining buffer cannot possibly hold before
  // allocating (a corrupted length would otherwise request petabytes).
  if (*off > size || n > (size - *off) / sizeof(double)) return false;
  flat->resize(static_cast<size_t>(n));
  return ReadDoubles(data, size, off, flat->data(), flat->size());
}

}  // namespace wire

namespace {

// "FEXGNN" + 2-digit format version. v02 appended a CRC-32 footer over
// everything after the magic so payload corruption is detected instead of
// silently loading garbage weights.
constexpr char kMagicPrefix[6] = {'F', 'E', 'X', 'G', 'N', 'N'};
constexpr char kMagic[8] = {'F', 'E', 'X', 'G', 'N', 'N', '0', '2'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

std::vector<uint8_t> SerializeGnnModel(const GnnModel& model) {
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  const GnnConfig& c = model.config();
  const uint64_t header[] = {
      static_cast<uint64_t>(c.type),
      static_cast<uint64_t>(c.input_dim),
      static_cast<uint64_t>(c.hetero_input_dim),
      static_cast<uint64_t>(c.hidden_dim),
      static_cast<uint64_t>(c.num_layers),
      static_cast<uint64_t>(c.embedding_dim),
      c.seed,
      static_cast<uint64_t>(model.num_layers()),
  };
  for (uint64_t v : header) wire::AppendU64(&out, v);
  for (int l = 0; l < model.num_layers(); ++l) {
    wire::AppendLayerRecord(&out, model.GetLayerFlat(l));
  }
  wire::AppendU32(&out, Crc32(out.data() + sizeof(kMagic),
                              out.size() - sizeof(kMagic)));
  return out;
}

Result<GnnModel> DeserializeGnnModel(const uint8_t* data, size_t size) {
  if (size < sizeof(kMagic) ||
      std::memcmp(data, kMagicPrefix, sizeof(kMagicPrefix)) != 0) {
    return Status::InvalidArgument("not a FexIoT GNN model encoding");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "unsupported FexIoT GNN model format version (expected FEXGNN02)");
  }
  if (size < sizeof(kMagic) + sizeof(uint32_t)) {
    return Status::IOError("truncated GNN model encoding");
  }
  // Verify the CRC footer before interpreting any field.
  size_t off = size - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  (void)wire::ReadU32(data, size, &off, &stored_crc);
  const uint32_t actual_crc =
      Crc32(data + sizeof(kMagic), size - sizeof(kMagic) - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("GNN model payload corrupted (CRC mismatch)");
  }
  const size_t body_end = size - sizeof(uint32_t);

  off = sizeof(kMagic);
  uint64_t header[8];
  for (auto& v : header) {
    if (!wire::ReadU64(data, body_end, &off, &v)) {
      return Status::IOError("truncated GNN model encoding");
    }
  }
  GnnConfig c;
  if (header[0] > static_cast<uint64_t>(GnnType::kMagnn)) {
    return Status::InvalidArgument("unknown model type in GNN model encoding");
  }
  c.type = static_cast<GnnType>(header[0]);
  c.input_dim = static_cast<int>(header[1]);
  c.hetero_input_dim = static_cast<int>(header[2]);
  c.hidden_dim = static_cast<int>(header[3]);
  c.num_layers = static_cast<int>(header[4]);
  c.embedding_dim = static_cast<int>(header[5]);
  c.seed = header[6];
  GnnModel model(c);
  if (static_cast<int>(header[7]) != model.num_layers()) {
    return Status::InvalidArgument("layer count mismatch in GNN model encoding");
  }
  for (int l = 0; l < model.num_layers(); ++l) {
    std::vector<double> flat;
    if (!wire::ReadLayerRecord(data, body_end, &off, &flat)) {
      return Status::IOError("truncated GNN model encoding");
    }
    if (flat.size() != model.LayerSize(l)) {
      return Status::InvalidArgument("layer size mismatch in GNN model encoding");
    }
    model.SetLayerFlat(l, flat);
  }
  return model;
}

Status SaveGnnModel(const GnnModel& model, const std::string& path) {
  const std::vector<uint8_t> bytes = SerializeGnnModel(model);
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for writing: " + path);
  if (std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<GnnModel> LoadGnnModel(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open: " + path);
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  if (std::ferror(f.get())) return Status::IOError("read failed: " + path);
  Result<GnnModel> r = DeserializeGnnModel(bytes.data(), bytes.size());
  if (!r.ok()) {
    return Status(r.status().code(), r.status().message() + ": " + path);
  }
  return r;
}

}  // namespace fexiot
