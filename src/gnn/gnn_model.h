#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/interaction_graph.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace fexiot {

/// \brief GNN architectures evaluated in the paper (Section IV-C).
enum class GnnType {
  kGcn,    ///< graph convolutional network (Kipf & Welling)
  kGin,    ///< graph isomorphism network (Xu et al.)
  kMagnn,  ///< metapath-aggregated heterogeneous GNN (Fu et al.), -lite:
           ///< per-feature-space input projections + shared propagation
};

const char* GnnTypeName(GnnType type);

/// \brief Storage/kernel choice for the propagation matrix.
///
/// Interaction graphs average a handful of edges per node, so the sparse
/// representation turns each propagation product from O(n^2 d) into
/// O(nnz d) and drops the O(n^2) dense matrix from every PreparedGraph.
/// Both paths produce bit-identical results on interaction-graph scales
/// (docs/KERNELS.md §5); kDense remains as the A/B baseline and fallback.
enum class PropagationMode {
  kAuto,    ///< follow FEXIOT_PROPAGATION (=dense|sparse); default sparse
  kDense,   ///< n x n dense matrix, products via MatMul
  kSparse,  ///< CSR matrix, products via SpMM
};

/// \brief Resolves kAuto against the FEXIOT_PROPAGATION environment
/// variable (parsed once per process; unknown values warn and fall back
/// to sparse). Non-auto requests pass through untouched.
PropagationMode ResolvePropagationMode(PropagationMode requested);

/// \brief Model hyperparameters.
struct GnnConfig {
  GnnType type = GnnType::kGcn;
  /// Input feature dim of word-embedding platforms (homogeneous graphs).
  int input_dim = kHomoFeatureDim;
  /// Second feature space (sentence encoder); only used by kMagnn.
  int hetero_input_dim = kHeteroFeatureDim;
  int hidden_dim = 16;
  /// Number of message-passing layers (the paper uses 3 GCN layers).
  int num_layers = 3;
  /// Final graph-embedding dimensionality (readout projection output).
  int embedding_dim = 16;
  uint64_t seed = 47;
  /// Propagation representation (a runtime knob, not a model parameter:
  /// excluded from serialization, and results do not depend on it).
  PropagationMode propagation = PropagationMode::kAuto;
};

/// \brief A graph pre-processed for GNN consumption: cached propagation
/// representation + stacked features. Build once per dataset, reuse every
/// epoch.
///
/// Feature padding contract: each node's feature vector is copied into
/// its `features` row in one pass — truncated to input_dim when longer
/// (sentence-space nodes folded into the word slot for homogeneous
/// models), zero-padded on the right when shorter. For MAGNN configs only,
/// sentence-space rows are additionally copied (same pad/truncate rule at
/// hetero_input_dim) into `features_hetero`; for GCN/GIN that matrix
/// stays empty — InputProjection is the only consumer.
struct PreparedGraph {
  Matrix features;    ///< n x input_dim (homogeneous part)
  /// Resolved propagation representation: exactly one of the two members
  /// below is populated, per `mode`.
  PropagationMode mode = PropagationMode::kSparse;
  Matrix propagation;   ///< n x n, kDense mode only (empty otherwise)
  CsrMatrix prop_csr;   ///< CSR form, kSparse mode only
  /// Per-node space id (0 = word space, 1 = sentence space).
  std::vector<int> node_space;
  Matrix features_hetero;  ///< n x hetero_input_dim, MAGNN configs only
  int label = 0;
  int num_nodes = 0;

  /// Densified propagation matrix regardless of mode (testing /
  /// diagnostics; an exact representation change, no rounding).
  Matrix DensePropagation() const {
    return mode == PropagationMode::kDense ? propagation : prop_csr.ToDense();
  }
  /// Steady-state bytes held by the propagation representation.
  size_t PropagationBytes() const {
    return mode == PropagationMode::kDense
               ? propagation.size() * sizeof(double)
               : prop_csr.MemoryBytes();
  }
};

/// \brief Prepares a graph for \p config (computes the propagation
/// representation appropriate to the architecture and resolved mode, and
/// splits features by space).
PreparedGraph PrepareGraph(const InteractionGraph& g, const GnnConfig& config);

/// \brief Activation/pre-activation caches recorded by a forward pass,
/// consumed by Backward(). Matrices are resized in place on reuse, so a
/// cache bound repeatedly (e.g. one per in-flight contrastive pair)
/// stops allocating once it has seen its peak graph size.
struct ForwardCache {
  const PreparedGraph* graph = nullptr;
  std::vector<Matrix> pre;    ///< pre-activation per layer
  /// post[k] is the input activation of message-passing layer
  /// first_mp + k; the final entry is the pooled-over activation. For
  /// GCN/GIN, post[0] is left empty — the layer input is the prepared
  /// graph's feature matrix, read in place rather than copied per call.
  std::vector<Matrix> post;
  Matrix pooled;              ///< 1 x 2*hidden [mean | max] readout
  std::vector<size_t> argmax; ///< row index of the max per hidden dim
  std::vector<double> embedding;
};

/// \brief Reusable scratch for the allocation-free train/infer hot path.
///
/// One workspace per concurrently-forwarding worker (they must not be
/// shared across threads mid-call). Every matrix grows to its peak shape
/// and is then reused; after this warmup, Forward/Backward perform zero
/// heap allocations per graph. Includes a scratch ForwardCache for
/// callers that don't need to keep activations (embedding extraction).
struct GnnWorkspace {
  ForwardCache cache;  ///< used when the caller passes no cache of its own
  Matrix m;            ///< propagation product P * H
  Matrix emb;          ///< 1 x embedding_dim readout scratch
  // Backward scratch.
  Matrix demb, dpooled, dh, dz, tmp, gw, gb;
};

/// \brief A batch of prepared graphs stacked for one block-diagonal
/// forward pass: `stacked` is itself a valid PreparedGraph whose
/// propagation CSR is the block-diagonal of the member graphs and whose
/// feature matrices are their row-wise concatenation, so the existing
/// per-node input projection and SpMM propagation run on it unchanged.
/// `row_offsets` (B+1 entries) maps graph b to stacked rows
/// [row_offsets[b], row_offsets[b+1]).
struct GraphBatch {
  PreparedGraph stacked;
  std::vector<size_t> row_offsets;
  size_t size() const {
    return row_offsets.empty() ? 0 : row_offsets.size() - 1;
  }
};

/// \brief Assembles \p graphs into \p out for ForwardBatch. All graphs
/// must be sparse-mode (the serving engine's mode), non-empty, and
/// prepared under the same \p config. \p out's buffers are reused across
/// calls — after warmup, assembly performs no heap allocation beyond the
/// CSR concatenation.
void AssembleGraphBatch(const std::vector<const PreparedGraph*>& graphs,
                        const GnnConfig& config, GraphBatch* out);

/// \brief Reusable scratch for ForwardBatch (one per concurrently
/// forwarding worker; matrices grow to peak batch shape, then stop
/// allocating).
struct BatchForwardWorkspace {
  Matrix h;       ///< activation (total_nodes x hidden)
  Matrix m;       ///< propagation product P * H
  Matrix z;       ///< pre-activation
  Matrix pre;     ///< MAGNN input-projection pre-activation
  Matrix pooled;  ///< 1 x 2*hidden per-graph readout scratch
  Matrix emb;     ///< 1 x embedding_dim readout scratch
};

/// \brief Graph neural network with explicit manual backpropagation, a
/// [mean | max] pooling readout (max pooling preserves the few-node
/// vulnerability witnesses that mean pooling dilutes in large graphs) and
/// a linear projection head producing the graph embedding used by the
/// contrastive loss (Section III-B1).
///
/// Parameters are organized into indexed *layers* so the layer-wise
/// clustered federated aggregation (Algorithm 1) can exchange them layer
/// by layer: layer 0 is the input projection(s), layers 1..L are
/// message-passing layers, layer L+1 is the readout projection.
class GnnModel {
 public:
  explicit GnnModel(const GnnConfig& config);

  const GnnConfig& config() const { return config_; }

  /// Number of parameter layers (for layer-wise FL exchange).
  int num_layers() const { return static_cast<int>(layers_.size()); }

  /// \brief Forward pass producing the graph embedding; records caches for
  /// Backward when \p cache is non-null. Allocates its own scratch.
  std::vector<double> Forward(const PreparedGraph& g,
                              ForwardCache* cache) const;

  /// \brief Workspace forward: scratch comes from \p ws (its cache is
  /// used when \p cache is null), and the returned reference aliases the
  /// effective cache's embedding — valid until the next forward through
  /// that cache. Bit-identical to the allocating overload; performs no
  /// heap allocation once the workspace is warm.
  const std::vector<double>& Forward(const PreparedGraph& g,
                                     ForwardCache* cache,
                                     GnnWorkspace* ws) const;

  /// \brief Batched block-diagonal inference: one propagation SpMM and
  /// one row-blocked dense transform per layer for the whole batch, then
  /// a per-graph [mean | max] readout. Embedding b is bit-identical to
  /// Forward(*graphs[b], ...) — the stacked CSR preserves each output
  /// row's accumulation order, the dense transform dispatches per block
  /// on the block's own shape, and pooling/readout share the per-graph
  /// code paths. Inference only (no caches recorded); \p embeddings is
  /// resized to the batch size.
  void ForwardBatch(const GraphBatch& batch, BatchForwardWorkspace* ws,
                    std::vector<std::vector<double>>* embeddings) const;

  /// \brief Accumulates parameter gradients given dL/d(embedding).
  void Backward(const ForwardCache& cache,
                const std::vector<double>& grad_embedding);

  /// \brief Workspace backward (same contract as the workspace forward).
  /// Only ws's backward scratch is touched, so the ws may be the one whose
  /// cache recorded the forward.
  void Backward(const ForwardCache& cache,
                const std::vector<double>& grad_embedding, GnnWorkspace* ws);

  /// Zeroes accumulated gradients.
  void ZeroGrad();
  /// SGD step over accumulated gradients (scaled by 1/batch), then zeroes.
  void ApplyGrads(double learning_rate, double batch_size,
                  double weight_decay = 0.0);

  /// \brief Flattened parameters of layer \p l (concatenated matrices).
  std::vector<double> GetLayerFlat(int l) const;
  /// \brief Flattened accumulated gradients of layer \p l (testing /
  /// diagnostics; unscaled, as accumulated by Backward).
  std::vector<double> GetLayerGradFlat(int l) const;
  /// \brief Restores layer \p l from a flat vector (size must match).
  void SetLayerFlat(int l, const std::vector<double>& flat);
  /// Parameter count of layer \p l.
  size_t LayerSize(int l) const;
  /// Total parameter count.
  size_t TotalParams() const;

  /// Serialized byte size of one layer (doubles; used for the Figure 7
  /// communication accounting).
  size_t LayerBytes(int l) const { return LayerSize(l) * sizeof(double); }

 private:
  /// One parameter layer: a list of (matrix, gradient) pairs. MAGNN's
  /// input layer holds two projections; all other layers hold W and b.
  struct Layer {
    std::vector<Matrix> params;
    std::vector<Matrix> grads;
  };

  const std::vector<double>& ForwardImpl(const PreparedGraph& g,
                                         ForwardCache& cache,
                                         GnnWorkspace* ws) const;
  void InputProjectionInto(const PreparedGraph& g, Matrix* pre,
                           Matrix* post) const;
  /// Input activation of message-passing layer \p l recorded by \p cache.
  const Matrix& LayerInput(const ForwardCache& cache, size_t l) const;

  GnnConfig config_;
  std::vector<Layer> layers_;
};

}  // namespace fexiot
