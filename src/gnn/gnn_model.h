#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/interaction_graph.h"
#include "tensor/matrix.h"

namespace fexiot {

/// \brief GNN architectures evaluated in the paper (Section IV-C).
enum class GnnType {
  kGcn,    ///< graph convolutional network (Kipf & Welling)
  kGin,    ///< graph isomorphism network (Xu et al.)
  kMagnn,  ///< metapath-aggregated heterogeneous GNN (Fu et al.), -lite:
           ///< per-feature-space input projections + shared propagation
};

const char* GnnTypeName(GnnType type);

/// \brief Model hyperparameters.
struct GnnConfig {
  GnnType type = GnnType::kGcn;
  /// Input feature dim of word-embedding platforms (homogeneous graphs).
  int input_dim = kHomoFeatureDim;
  /// Second feature space (sentence encoder); only used by kMagnn.
  int hetero_input_dim = kHeteroFeatureDim;
  int hidden_dim = 16;
  /// Number of message-passing layers (the paper uses 3 GCN layers).
  int num_layers = 3;
  /// Final graph-embedding dimensionality (readout projection output).
  int embedding_dim = 16;
  uint64_t seed = 47;
};

/// \brief A graph pre-processed for GNN consumption: cached propagation
/// matrix + stacked features. Build once per dataset, reuse every epoch.
struct PreparedGraph {
  Matrix features;    ///< n x input_dim (homogeneous part)
  Matrix propagation; ///< n x n (normalized adjacency or GIN aggregation)
  /// Raw (padded) per-node features for MAGNN plus per-node space id
  /// (0 = word space, 1 = sentence space).
  std::vector<int> node_space;
  Matrix features_hetero;  ///< n x hetero_input_dim (zero rows for space 0)
  int label = 0;
  int num_nodes = 0;
};

/// \brief Prepares a graph for \p config (computes the propagation matrix
/// appropriate to the architecture and splits features by space).
PreparedGraph PrepareGraph(const InteractionGraph& g, const GnnConfig& config);

/// \brief Activation/pre-activation caches recorded by a forward pass,
/// consumed by Backward().
struct ForwardCache {
  const PreparedGraph* graph = nullptr;
  std::vector<Matrix> pre;    ///< pre-activation per layer
  std::vector<Matrix> post;   ///< post-activation per layer (input to next)
  Matrix pooled;              ///< 1 x 2*hidden [mean | max] readout
  std::vector<size_t> argmax; ///< row index of the max per hidden dim
  std::vector<double> embedding;
};

/// \brief Graph neural network with explicit manual backpropagation, a
/// [mean | max] pooling readout (max pooling preserves the few-node
/// vulnerability witnesses that mean pooling dilutes in large graphs) and
/// a linear projection head producing the graph embedding used by the
/// contrastive loss (Section III-B1).
///
/// Parameters are organized into indexed *layers* so the layer-wise
/// clustered federated aggregation (Algorithm 1) can exchange them layer
/// by layer: layer 0 is the input projection(s), layers 1..L are
/// message-passing layers, layer L+1 is the readout projection.
class GnnModel {
 public:
  explicit GnnModel(const GnnConfig& config);

  const GnnConfig& config() const { return config_; }

  /// Number of parameter layers (for layer-wise FL exchange).
  int num_layers() const { return static_cast<int>(layers_.size()); }

  /// \brief Forward pass producing the graph embedding; records caches for
  /// Backward when \p cache is non-null.
  std::vector<double> Forward(const PreparedGraph& g,
                              ForwardCache* cache) const;

  /// \brief Accumulates parameter gradients given dL/d(embedding).
  void Backward(const ForwardCache& cache,
                const std::vector<double>& grad_embedding);

  /// Zeroes accumulated gradients.
  void ZeroGrad();
  /// SGD step over accumulated gradients (scaled by 1/batch), then zeroes.
  void ApplyGrads(double learning_rate, double batch_size,
                  double weight_decay = 0.0);

  /// \brief Flattened parameters of layer \p l (concatenated matrices).
  std::vector<double> GetLayerFlat(int l) const;
  /// \brief Flattened accumulated gradients of layer \p l (testing /
  /// diagnostics; unscaled, as accumulated by Backward).
  std::vector<double> GetLayerGradFlat(int l) const;
  /// \brief Restores layer \p l from a flat vector (size must match).
  void SetLayerFlat(int l, const std::vector<double>& flat);
  /// Parameter count of layer \p l.
  size_t LayerSize(int l) const;
  /// Total parameter count.
  size_t TotalParams() const;

  /// Serialized byte size of one layer (doubles; used for the Figure 7
  /// communication accounting).
  size_t LayerBytes(int l) const { return LayerSize(l) * sizeof(double); }

 private:
  /// One parameter layer: a list of (matrix, gradient) pairs. MAGNN's
  /// input layer holds two projections; all other layers hold W and b.
  struct Layer {
    std::vector<Matrix> params;
    std::vector<Matrix> grads;
  };

  Matrix InputProjection(const PreparedGraph& g, ForwardCache* cache) const;

  GnnConfig config_;
  std::vector<Layer> layers_;
};

}  // namespace fexiot
