#pragma once

#include <vector>

#include "common/rng.h"
#include "gnn/contrastive.h"
#include "gnn/gnn_model.h"
#include "graph/dataset.h"
#include "ml/linear_model.h"
#include "ml/metrics.h"

namespace fexiot {

/// \brief Local training configuration for one client / one epoch batch.
struct TrainConfig {
  int epochs = 1;
  double learning_rate = 0.01;
  double weight_decay = 1e-5;
  /// Contrastive margin k of Eq. 2.
  double margin = 2.0;
  /// Loss variant (stable Hadsell default; kSquaredMargin = Eq. 2 literal).
  ContrastiveForm form = ContrastiveForm::kHadsellMargin;
  /// Pairs sampled per epoch = pairs_per_sample * dataset size.
  double pairs_per_sample = 1.0;
  int batch_pairs = 8;
  /// When false, trains with a supervised embedding-level objective
  /// instead of contrastive pairs (used by the ablation bench).
  bool contrastive = true;
};

/// \brief Contrastive GNN trainer (Section III-B1): samples graph pairs,
/// forward/backward through the shared GNN, SGD updates. Also provides
/// embedding extraction and end-to-end evaluation with the local
/// SGDClassifier head.
class GnnTrainer {
 public:
  GnnTrainer(GnnModel* model, TrainConfig config)
      : model_(model), config_(config) {}

  /// \brief Runs local training epochs on prepared graphs; returns mean
  /// contrastive loss over sampled pairs.
  double Train(const std::vector<PreparedGraph>& graphs, Rng* rng);

  /// \brief Embeddings of all graphs, one row each.
  Matrix Embed(const std::vector<PreparedGraph>& graphs) const;

  /// \brief Trains a fresh local linear head on train embeddings and
  /// evaluates on test graphs.
  ClassificationMetrics Evaluate(
      const std::vector<PreparedGraph>& train_graphs,
      const std::vector<PreparedGraph>& test_graphs) const;

  GnnModel* model() { return model_; }

 private:
  double TrainContrastive(const std::vector<PreparedGraph>& graphs, Rng* rng);
  double TrainSupervised(const std::vector<PreparedGraph>& graphs, Rng* rng);

  GnnModel* model_;
  TrainConfig config_;
};

/// \brief Prepares every graph of a dataset for \p config.
std::vector<PreparedGraph> PrepareDataset(const GraphDataset& data,
                                          const GnnConfig& config);
std::vector<PreparedGraph> PrepareGraphs(
    const std::vector<InteractionGraph>& graphs, const GnnConfig& config);

}  // namespace fexiot
