#include "gnn/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "gnn/contrastive.h"

namespace fexiot {

std::vector<PreparedGraph> PrepareGraphs(
    const std::vector<InteractionGraph>& graphs, const GnnConfig& config) {
  std::vector<PreparedGraph> out;
  out.reserve(graphs.size());
  for (const auto& g : graphs) out.push_back(PrepareGraph(g, config));
  return out;
}

std::vector<PreparedGraph> PrepareDataset(const GraphDataset& data,
                                          const GnnConfig& config) {
  return PrepareGraphs(data.graphs(), config);
}

double GnnTrainer::Train(const std::vector<PreparedGraph>& graphs, Rng* rng) {
  if (graphs.size() < 2) return 0.0;
  return config_.contrastive ? TrainContrastive(graphs, rng)
                             : TrainSupervised(graphs, rng);
}

double GnnTrainer::TrainContrastive(const std::vector<PreparedGraph>& graphs,
                                    Rng* rng) {
  double total_loss = 0.0;
  int total_pairs = 0;
  // Index graphs by class for balanced pair sampling.
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < graphs.size(); ++i) {
    (graphs[i].label == 1 ? pos : neg).push_back(i);
  }
  const int pairs_per_epoch = std::max(
      4, static_cast<int>(config_.pairs_per_sample *
                          static_cast<double>(graphs.size())));

  struct SampledPair {
    size_t i, j;
  };
  struct PairWork {
    ForwardCache ci, cj;
    GnnWorkspace ws;
    ContrastivePair pair;
  };
  const size_t batch =
      static_cast<size_t>(std::max(1, config_.batch_pairs));

  // Hot-path state persists across batches and epochs: caches, workspaces
  // and gradient scratch all reach their peak shapes during the first
  // epoch, after which the loop performs no per-graph heap allocation.
  std::vector<SampledPair> pairs;
  pairs.reserve(static_cast<size_t>(pairs_per_epoch));
  std::vector<PairWork> work(std::min(
      batch, static_cast<size_t>(pairs_per_epoch)));
  GnnWorkspace bw;  // serial backward scratch
  std::vector<double> grad_j;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Phase 1 (serial): sample the epoch's pairs. Keeping all rng draws
    // here preserves the exact stream of the original interleaved loop.
    pairs.clear();
    for (int p = 0; p < pairs_per_epoch; ++p) {
      // Half the pairs are same-class, half different-class when possible.
      size_t i, j;
      const bool want_different =
          rng->Bernoulli(0.5) && !pos.empty() && !neg.empty();
      if (want_different) {
        i = pos[rng->UniformInt(pos.size())];
        j = neg[rng->UniformInt(neg.size())];
      } else {
        const auto& side = (!pos.empty() && (neg.empty() || rng->Bernoulli(
                                                                0.5)))
                               ? pos
                               : neg;
        if (side.size() < 2) continue;
        i = side[rng->UniformInt(side.size())];
        do {
          j = side[rng->UniformInt(side.size())];
        } while (j == i);
      }
      pairs.push_back({i, j});
    }

    model_->ZeroGrad();
    for (size_t start = 0; start < pairs.size(); start += batch) {
      const size_t count = std::min(batch, pairs.size() - start);
      if (work.size() < count) work.resize(count);
      // Phase 2 (parallel): forward passes and pair losses only read the
      // model; each index owns one PairWork, so its caches and workspace
      // are touched by exactly one thread per batch.
      parallel::For(count, [&](size_t t) {
        const SampledPair& sp = pairs[start + t];
        PairWork& w = work[t];
        const std::vector<double>& zi =
            model_->Forward(graphs[sp.i], &w.ci, &w.ws);
        const std::vector<double>& zj =
            model_->Forward(graphs[sp.j], &w.cj, &w.ws);
        const bool different = graphs[sp.i].label != graphs[sp.j].label;
        ContrastiveLoss(zi, zj, different, config_.margin, config_.form,
                        &w.pair);
      });
      // Phase 3 (serial, in pair order): gradient accumulation mutates the
      // shared model, and the fixed order keeps results bit-identical for
      // every thread count.
      for (size_t t = 0; t < count; ++t) {
        const PairWork& w = work[t];
        total_loss += w.pair.loss;
        ++total_pairs;
        if (w.pair.loss > 0.0) {
          grad_j.resize(w.pair.grad_i.size());
          for (size_t g = 0; g < grad_j.size(); ++g) {
            grad_j[g] = -w.pair.grad_i[g];
          }
          model_->Backward(w.ci, w.pair.grad_i, &bw);
          model_->Backward(w.cj, grad_j, &bw);
        }
      }
      model_->ApplyGrads(config_.learning_rate, 2.0 * count,
                         config_.weight_decay);
    }
  }
  return total_pairs > 0 ? total_loss / total_pairs : 0.0;
}

double GnnTrainer::TrainSupervised(const std::vector<PreparedGraph>& graphs,
                                   Rng* rng) {
  // Ablation objective: logistic loss through a jointly-trained virtual
  // linear head on the embedding (no pairwise structure).
  const size_t e = static_cast<size_t>(model_->config().embedding_dim);
  std::vector<double> w(e, 0.0);
  double b = 0.0;
  double total_loss = 0.0;
  int count = 0;
  // Reused across the whole run; the serial loop stops allocating per
  // graph once the cache and workspace have seen the largest graph.
  ForwardCache cache;
  GnnWorkspace ws;
  std::vector<double> dz(e);
  std::vector<size_t> order;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    order.resize(graphs.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng->Shuffle(&order);
    int in_batch = 0;
    model_->ZeroGrad();
    for (size_t i : order) {
      const std::vector<double>& z = model_->Forward(graphs[i], &cache, &ws);
      double logit = b;
      for (size_t k = 0; k < e; ++k) logit += w[k] * z[k];
      const double p = 1.0 / (1.0 + std::exp(-logit));
      const double y = static_cast<double>(graphs[i].label);
      total_loss += -(y * std::log(p + 1e-12) +
                      (1.0 - y) * std::log(1.0 - p + 1e-12));
      ++count;
      const double err = p - y;
      for (size_t k = 0; k < e; ++k) dz[k] = err * w[k];
      model_->Backward(cache, dz, &ws);
      // Head update (plain SGD, same LR).
      for (size_t k = 0; k < e; ++k) {
        w[k] -= config_.learning_rate * err * z[k];
      }
      b -= config_.learning_rate * err;
      if (++in_batch >= config_.batch_pairs) {
        model_->ApplyGrads(config_.learning_rate, in_batch,
                           config_.weight_decay);
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      model_->ApplyGrads(config_.learning_rate, in_batch,
                         config_.weight_decay);
    }
  }
  return count > 0 ? total_loss / count : 0.0;
}

Matrix GnnTrainer::Embed(const std::vector<PreparedGraph>& graphs) const {
  const size_t n = graphs.size();
  Matrix out(n, static_cast<size_t>(model_->config().embedding_dim));
  // Read-only forwards writing disjoint output rows; one workspace per
  // contiguous shard so each forward reuses scratch within its shard.
  const size_t nshards = std::max<size_t>(
      1, std::min(n, parallel::NumThreads()));
  parallel::For(nshards, [&](size_t s) {
    const size_t lo = n * s / nshards;
    const size_t hi = n * (s + 1) / nshards;
    GnnWorkspace ws;
    for (size_t i = lo; i < hi; ++i) {
      out.SetRow(i, model_->Forward(graphs[i], nullptr, &ws));
    }
  });
  return out;
}

ClassificationMetrics GnnTrainer::Evaluate(
    const std::vector<PreparedGraph>& train_graphs,
    const std::vector<PreparedGraph>& test_graphs) const {
  const Matrix train_emb = Embed(train_graphs);
  std::vector<int> train_y;
  train_y.reserve(train_graphs.size());
  for (const auto& g : train_graphs) train_y.push_back(g.label);

  SgdClassifier head;
  const Status st = head.Fit(train_emb, train_y);
  std::vector<int> labels, preds;
  if (st.ok()) {
    GnnWorkspace ws;
    for (const auto& g : test_graphs) {
      labels.push_back(g.label);
      preds.push_back(head.Predict(model_->Forward(g, nullptr, &ws)));
    }
  }
  return ComputeMetrics(labels, preds);
}

}  // namespace fexiot
