#pragma once

#include <vector>

namespace fexiot {

/// \brief Margin contrastive loss variants on a pair of graph embeddings.
///
/// The paper's Eq. 2 is L = d^2 (1 - y) + max(0, k - d^2) y with y = 1 iff
/// the graphs are from *different* classes: same-class pairs are pulled
/// together, different-class pairs pushed until d^2 >= k. The push gradient
/// of that form, -2 (z_i - z_j), vanishes as embeddings collapse to a
/// point, so pure SGD degenerates (all embeddings identical). The classic
/// Hadsell et al. form max(0, k - d)^2 keeps a non-vanishing push of
/// magnitude ~2k near collapse; it is the numerically stable default here,
/// with the paper's literal form available for the ablation bench.
enum class ContrastiveForm {
  kHadsellMargin,   ///< y max(0, k - d)^2 (stable default)
  kSquaredMargin,   ///< y max(0, k - d^2) (Eq. 2 literal)
};

struct ContrastivePair {
  double loss = 0.0;
  /// dL/dz_i (dL/dz_j is its negation).
  std::vector<double> grad_i;
};

ContrastivePair ContrastiveLoss(
    const std::vector<double>& z_i, const std::vector<double>& z_j,
    bool different_class, double margin,
    ContrastiveForm form = ContrastiveForm::kHadsellMargin);

/// \brief In-place overload writing into a caller-owned pair, reusing its
/// grad_i storage (no allocation once sized). Values are identical to the
/// allocating form.
void ContrastiveLoss(const std::vector<double>& z_i,
                     const std::vector<double>& z_j, bool different_class,
                     double margin, ContrastiveForm form,
                     ContrastivePair* out);

}  // namespace fexiot
