#include "gnn/contrastive.h"

#include <cassert>
#include <cmath>
#include <cstddef>

namespace fexiot {

ContrastivePair ContrastiveLoss(const std::vector<double>& z_i,
                                const std::vector<double>& z_j,
                                bool different_class, double margin,
                                ContrastiveForm form) {
  ContrastivePair out;
  ContrastiveLoss(z_i, z_j, different_class, margin, form, &out);
  return out;
}

void ContrastiveLoss(const std::vector<double>& z_i,
                     const std::vector<double>& z_j, bool different_class,
                     double margin, ContrastiveForm form,
                     ContrastivePair* p) {
  assert(z_i.size() == z_j.size());
  ContrastivePair& out = *p;
  out.loss = 0.0;
  out.grad_i.assign(z_i.size(), 0.0);
  double d2 = 0.0;
  for (size_t k = 0; k < z_i.size(); ++k) {
    const double diff = z_i[k] - z_j[k];
    d2 += diff * diff;
  }
  if (!different_class) {
    // Pull together: L = d^2, dL/dz_i = 2 (z_i - z_j).
    out.loss = d2;
    for (size_t k = 0; k < z_i.size(); ++k) {
      out.grad_i[k] = 2.0 * (z_i[k] - z_j[k]);
    }
    return;
  }
  if (form == ContrastiveForm::kSquaredMargin) {
    if (d2 < margin) {
      out.loss = margin - d2;
      for (size_t k = 0; k < z_i.size(); ++k) {
        out.grad_i[k] = -2.0 * (z_i[k] - z_j[k]);
      }
    }
    return;
  }
  // Hadsell margin: L = max(0, m - d)^2 with d Euclidean.
  const double d = std::sqrt(d2);
  if (d < margin) {
    const double gap = margin - d;
    out.loss = gap * gap;
    // dL/dz_i = -2 gap * (z_i - z_j) / d; bounded unit push at d -> 0.
    const double scale = d > 1e-9 ? -2.0 * gap / d : 0.0;
    if (d > 1e-9) {
      for (size_t k = 0; k < z_i.size(); ++k) {
        out.grad_i[k] = scale * (z_i[k] - z_j[k]);
      }
    } else {
      // Exactly coincident embeddings: push along a fixed direction so the
      // pair can separate at all.
      out.grad_i[0] = -2.0 * gap;
    }
  }
}

}  // namespace fexiot
