#include "gnn/gnn_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "tensor/ops.h"

namespace fexiot {

const char* GnnTypeName(GnnType type) {
  switch (type) {
    case GnnType::kGcn:
      return "GCN";
    case GnnType::kGin:
      return "GIN";
    case GnnType::kMagnn:
      return "MAGNN";
  }
  return "?";
}

PropagationMode ResolvePropagationMode(PropagationMode requested) {
  if (requested != PropagationMode::kAuto) return requested;
  static const PropagationMode from_env = [] {
    const char* env = std::getenv("FEXIOT_PROPAGATION");
    if (env == nullptr || std::strcmp(env, "sparse") == 0) {
      return PropagationMode::kSparse;
    }
    if (std::strcmp(env, "dense") == 0) return PropagationMode::kDense;
    FEXIOT_LOG(Warning) << "FEXIOT_PROPAGATION='" << env
                        << "' not recognized (dense|sparse); using sparse";
    return PropagationMode::kSparse;
  }();
  return from_env;
}

namespace {

/// Builds the CSR propagation matrix straight from the edge list —
/// O(n + e log e) instead of densifying an n x n matrix first. Values are
/// bit-identical to the dense build: GCN degrees are exact small-integer
/// doubles either way, and each entry is the one-rounding product
/// dinv[i] * dinv[j] (GIN entries are exactly 1.0).
CsrMatrix BuildPropagationCsr(const InteractionGraph& g, bool gin) {
  const size_t n = static_cast<size_t>(g.num_nodes());
  // Undirected skeleton with self loops, deduplicated and column-sorted.
  std::vector<std::vector<int>> adj(n);
  for (const auto& [u, v] : g.edges()) {
    adj[static_cast<size_t>(u)].push_back(v);
    adj[static_cast<size_t>(v)].push_back(u);
  }
  for (size_t i = 0; i < n; ++i) {
    adj[i].push_back(static_cast<int>(i));
    std::sort(adj[i].begin(), adj[i].end());
    adj[i].erase(std::unique(adj[i].begin(), adj[i].end()), adj[i].end());
  }
  std::vector<double> dinv;
  if (!gin) {
    dinv.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const double deg = static_cast<double>(adj[i].size());
      dinv[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
    }
  }
  std::vector<std::vector<std::pair<int, double>>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].reserve(adj[i].size());
    for (int j : adj[i]) {
      const double v =
          gin ? 1.0 : dinv[i] * dinv[static_cast<size_t>(j)];
      rows[i].emplace_back(j, v);
    }
  }
  return CsrMatrix::FromRowLists(n, n, rows);
}

/// P * H through whichever representation the prepared graph carries.
/// Both paths accumulate each output element's terms in ascending source
/// order and skip exact zeros, so they agree bit for bit at interaction-
/// graph scales (docs/KERNELS.md §5).
void Propagate(const PreparedGraph& g, const Matrix& h, Matrix* out) {
  if (g.mode == PropagationMode::kSparse) {
    SpMM(g.prop_csr, h, out);
  } else {
    MatMulInto(g.propagation, h, out);
  }
}

/// [mean | max] pooling over rows [r0, r1) of \p hf into \p pooled
/// (2 * hf.cols() doubles). \p argmax, when non-null, records the
/// absolute row index of each column max. Shared by the per-graph
/// forward (full row range) and the batched block-diagonal forward (one
/// call per block), which keeps the two readouts bit-identical by
/// construction.
void PoolMeanMaxRows(const Matrix& hf, size_t r0, size_t r1, double* pooled,
                     std::vector<size_t>* argmax) {
  assert(r1 > r0);
  const size_t hd = hf.cols();
  // Column means, matching ColumnMean's sum-then-scale arithmetic.
  std::fill(pooled, pooled + hd, 0.0);
  for (size_t r = r0; r < r1; ++r) {
    const double* row = hf.RowPtr(r);
    for (size_t c = 0; c < hd; ++c) pooled[c] += row[c];
  }
  const double scale = 1.0 / static_cast<double>(r1 - r0);
  for (size_t c = 0; c < hd; ++c) pooled[c] *= scale;
  for (size_t c = 0; c < hd; ++c) {
    double best = hf.At(r0, c);
    size_t best_row = r0;
    for (size_t r = r0 + 1; r < r1; ++r) {
      if (hf.At(r, c) > best) {
        best = hf.At(r, c);
        best_row = r;
      }
    }
    pooled[hd + c] = best;
    if (argmax != nullptr) (*argmax)[c] = best_row;
  }
}

}  // namespace

PreparedGraph PrepareGraph(const InteractionGraph& g,
                           const GnnConfig& config) {
  PreparedGraph p;
  p.num_nodes = g.num_nodes();
  p.label = g.label();
  p.mode = ResolvePropagationMode(config.propagation);
  const size_t n = static_cast<size_t>(g.num_nodes());
  const bool gin = config.type == GnnType::kGin;
  const bool magnn = config.type == GnnType::kMagnn;

  // Propagation representation. Sparse mode never materializes the n x n
  // matrix; dense mode reproduces the original build exactly.
  if (p.mode == PropagationMode::kSparse) {
    p.prop_csr = BuildPropagationCsr(g, gin);
  } else if (gin) {
    // S = (1 + eps) I + A over the undirected skeleton, eps = 0.
    Matrix s(n, n);
    for (size_t i = 0; i < n; ++i) s.At(i, i) = 1.0;
    for (const auto& [u, v] : g.edges()) {
      s.At(static_cast<size_t>(u), static_cast<size_t>(v)) = 1.0;
      s.At(static_cast<size_t>(v), static_cast<size_t>(u)) = 1.0;
    }
    p.propagation = std::move(s);
  } else {
    p.propagation = g.NormalizedAdjacency();
  }

  // Feature matrices, one pass per node: pad/truncate into the word-space
  // row; sentence-space rows additionally land in `features_hetero`, which
  // only MAGNN allocates (GCN/GIN on heterogeneous graphs fold the
  // sentence embedding into the word slot by truncation). The padding
  // contract is documented on PreparedGraph.
  p.features = Matrix(n, static_cast<size_t>(config.input_dim));
  if (magnn) {
    p.features_hetero =
        Matrix(n, static_cast<size_t>(config.hetero_input_dim));
  }
  p.node_space.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto& f = g.node(static_cast<int>(i)).features;
    const size_t copy =
        std::min(f.size(), static_cast<size_t>(config.input_dim));
    std::copy(f.begin(), f.begin() + static_cast<long>(copy),
              p.features.RowPtr(i));
    const bool sentence_space =
        static_cast<int>(f.size()) == config.hetero_input_dim &&
        config.hetero_input_dim != config.input_dim;
    if (sentence_space) {
      p.node_space[i] = 1;
      if (magnn) {
        const size_t hcopy =
            std::min(f.size(), static_cast<size_t>(config.hetero_input_dim));
        std::copy(f.begin(), f.begin() + static_cast<long>(hcopy),
                  p.features_hetero.RowPtr(i));
      }
    }
  }
  return p;
}

GnnModel::GnnModel(const GnnConfig& config) : config_(config) {
  Rng rng(config.seed);
  const size_t in = static_cast<size_t>(config.input_dim);
  const size_t hin = static_cast<size_t>(config.hetero_input_dim);
  const size_t h = static_cast<size_t>(config.hidden_dim);
  const size_t e = static_cast<size_t>(config.embedding_dim);

  auto make_layer = [&](std::vector<Matrix> params) {
    Layer layer;
    layer.grads.reserve(params.size());
    for (const auto& m : params) layer.grads.emplace_back(m.rows(), m.cols());
    layer.params = std::move(params);
    layers_.push_back(std::move(layer));
  };

  if (config.type == GnnType::kMagnn) {
    // Layer 0: dual input projections (word space, sentence space).
    make_layer({Matrix::GlorotUniform(in, h, &rng), Matrix(1, h),
                Matrix::GlorotUniform(hin, h, &rng), Matrix(1, h)});
    for (int l = 0; l < config.num_layers; ++l) {
      make_layer({Matrix::GlorotUniform(h, h, &rng), Matrix(1, h)});
    }
  } else {
    for (int l = 0; l < config.num_layers; ++l) {
      const size_t lin = l == 0 ? in : h;
      make_layer({Matrix::GlorotUniform(lin, h, &rng), Matrix(1, h)});
    }
  }
  // Readout projection over the [mean | max] pooled representation.
  make_layer({Matrix::GlorotUniform(2 * h, e, &rng), Matrix(1, e)});
}

void GnnModel::InputProjectionInto(const PreparedGraph& g, Matrix* pre,
                                   Matrix* post) const {
  // MAGNN-lite: project each node from its feature space into the shared
  // hidden space, ReLU activation.
  const Layer& proj = layers_[0];
  const size_t n = static_cast<size_t>(g.num_nodes);
  const size_t h = static_cast<size_t>(config_.hidden_dim);
  pre->ResizeForOverwrite(n, h);
  for (size_t i = 0; i < n; ++i) {
    const bool sent = g.node_space[i] == 1;
    const Matrix& w = sent ? proj.params[2] : proj.params[0];
    const Matrix& b = sent ? proj.params[3] : proj.params[1];
    const Matrix& x = sent ? g.features_hetero : g.features;
    for (size_t c = 0; c < h; ++c) {
      double s = b.At(0, c);
      for (size_t k = 0; k < w.rows(); ++k) s += x.At(i, k) * w.At(k, c);
      pre->At(i, c) = s;
    }
  }
  ReluInto(*pre, post);
}

const Matrix& GnnModel::LayerInput(const ForwardCache& cache,
                                   size_t l) const {
  const size_t first_mp = config_.type == GnnType::kMagnn ? 1 : 0;
  const size_t idx = l - first_mp;
  // For GCN/GIN the first layer consumes the raw features, read straight
  // from the prepared graph (post[0] is an empty placeholder).
  if (idx == 0 && config_.type != GnnType::kMagnn) {
    return cache.graph->features;
  }
  return cache.post[idx];
}

const std::vector<double>& GnnModel::ForwardImpl(const PreparedGraph& g,
                                                 ForwardCache& cache,
                                                 GnnWorkspace* ws) const {
  assert(g.num_nodes > 0);
  assert(ws != nullptr);
  cache.graph = &g;

  const size_t readout_index = layers_.size() - 1;
  const size_t first_mp = config_.type == GnnType::kMagnn ? 1 : 0;
  // pre[l] is layer l's pre-activation (MAGNN's projection occupies
  // pre[0]); post[k] is the input of mp layer first_mp + k, with the
  // final entry the pooled-over activation. Resizing the vectors is a
  // one-time cost per cache; the matrices inside resize in place.
  if (cache.pre.size() != readout_index) cache.pre.resize(readout_index);
  const size_t posts = readout_index - first_mp + 1;
  if (cache.post.size() != posts) cache.post.resize(posts);

  const Matrix* h;
  if (config_.type == GnnType::kMagnn) {
    InputProjectionInto(g, &cache.pre[0], &cache.post[0]);
    h = &cache.post[0];
  } else {
    h = &g.features;
  }

  for (size_t l = first_mp; l < readout_index; ++l) {
    Propagate(g, *h, &ws->m);
    Matrix& z = cache.pre[l];
    MatMulInto(ws->m, layers_[l].params[0], &z);
    AddBiasRow(&z, layers_[l].params[1]);
    Matrix& act = cache.post[l - first_mp + 1];
    ReluInto(z, &act);
    h = &act;
  }

  // [mean | max] readout.
  const Matrix& hf = *h;
  const size_t hd = hf.cols();
  cache.pooled.ResizeForOverwrite(1, 2 * hd);
  cache.argmax.assign(hd, 0);
  PoolMeanMaxRows(hf, 0, hf.rows(), cache.pooled.RowPtr(0), &cache.argmax);
  MatMulInto(cache.pooled, layers_[readout_index].params[0], &ws->emb);
  AddBiasRow(&ws->emb, layers_[readout_index].params[1]);

  cache.embedding.assign(ws->emb.RowPtr(0), ws->emb.RowPtr(0) + ws->emb.cols());
  return cache.embedding;
}

std::vector<double> GnnModel::Forward(const PreparedGraph& g,
                                      ForwardCache* cache) const {
  GnnWorkspace local;
  ForwardCache* effective = cache != nullptr ? cache : &local.cache;
  return ForwardImpl(g, *effective, &local);
}

const std::vector<double>& GnnModel::Forward(const PreparedGraph& g,
                                             ForwardCache* cache,
                                             GnnWorkspace* ws) const {
  assert(ws != nullptr);
  ForwardCache* effective = cache != nullptr ? cache : &ws->cache;
  return ForwardImpl(g, *effective, ws);
}

void AssembleGraphBatch(const std::vector<const PreparedGraph*>& graphs,
                        const GnnConfig& config, GraphBatch* out) {
  assert(out != nullptr);
  const bool magnn = config.type == GnnType::kMagnn;
  size_t total = 0;
  std::vector<const CsrMatrix*> blocks;
  blocks.reserve(graphs.size());
  for (const PreparedGraph* g : graphs) {
    assert(g != nullptr && g->num_nodes > 0);
    assert(g->mode == PropagationMode::kSparse &&
           "batched inference requires sparse-mode prepared graphs");
    assert(g->features.cols() == static_cast<size_t>(config.input_dim));
    total += static_cast<size_t>(g->num_nodes);
    blocks.push_back(&g->prop_csr);
  }
  PreparedGraph& s = out->stacked;
  s.mode = PropagationMode::kSparse;
  s.prop_csr = CsrMatrix::BlockDiagonal(blocks);
  s.num_nodes = static_cast<int>(total);
  s.label = 0;
  s.features.ResizeForOverwrite(total,
                                static_cast<size_t>(config.input_dim));
  if (magnn) {
    s.features_hetero.ResizeForOverwrite(
        total, static_cast<size_t>(config.hetero_input_dim));
  }
  s.node_space.resize(total);
  out->row_offsets.resize(graphs.size() + 1);
  out->row_offsets[0] = 0;
  size_t row = 0;
  for (size_t b = 0; b < graphs.size(); ++b) {
    const PreparedGraph& g = *graphs[b];
    const size_t n = static_cast<size_t>(g.num_nodes);
    std::copy(g.features.data(), g.features.data() + g.features.size(),
              s.features.RowPtr(row));
    if (magnn) {
      // MAGNN prepared graphs always carry the hetero matrix (possibly
      // all-zero rows for word-space nodes); the stacked copy mirrors it.
      assert(g.features_hetero.rows() == n);
      std::copy(g.features_hetero.data(),
                g.features_hetero.data() + g.features_hetero.size(),
                s.features_hetero.RowPtr(row));
    }
    std::copy(g.node_space.begin(), g.node_space.end(),
              s.node_space.begin() + static_cast<ptrdiff_t>(row));
    row += n;
    out->row_offsets[b + 1] = row;
  }
}

void GnnModel::ForwardBatch(const GraphBatch& batch, BatchForwardWorkspace* ws,
                            std::vector<std::vector<double>>* embeddings) const {
  assert(ws != nullptr && embeddings != nullptr);
  embeddings->resize(batch.size());
  if (batch.size() == 0) return;
  const PreparedGraph& g = batch.stacked;
  assert(g.num_nodes > 0);

  const size_t readout_index = layers_.size() - 1;
  const size_t first_mp = config_.type == GnnType::kMagnn ? 1 : 0;

  const Matrix* h;
  if (config_.type == GnnType::kMagnn) {
    InputProjectionInto(g, &ws->pre, &ws->h);
    h = &ws->h;
  } else {
    h = &g.features;
  }

  for (size_t l = first_mp; l < readout_index; ++l) {
    // One SpMM over the block-diagonal CSR propagates every graph in the
    // batch: each stacked row accumulates exactly its block's ascending-
    // column entries, so per-row bits match the per-graph SpMM. The dense
    // transform dispatches per block on the block's own shape so no graph
    // changes kernels by being batched.
    Propagate(g, *h, &ws->m);
    MatMulBlocksInto(ws->m, layers_[l].params[0], batch.row_offsets, &ws->z);
    AddBiasRow(&ws->z, layers_[l].params[1]);
    ReluInto(ws->z, &ws->h);
    h = &ws->h;
  }

  // Per-graph [mean | max] readout over the graph's stacked row range.
  const size_t hd = h->cols();
  ws->pooled.ResizeForOverwrite(1, 2 * hd);
  for (size_t b = 0; b < batch.size(); ++b) {
    PoolMeanMaxRows(*h, batch.row_offsets[b], batch.row_offsets[b + 1],
                    ws->pooled.RowPtr(0), nullptr);
    MatMulInto(ws->pooled, layers_[readout_index].params[0], &ws->emb);
    AddBiasRow(&ws->emb, layers_[readout_index].params[1]);
    (*embeddings)[b].assign(ws->emb.RowPtr(0),
                            ws->emb.RowPtr(0) + ws->emb.cols());
  }
}

void GnnModel::Backward(const ForwardCache& cache,
                        const std::vector<double>& grad_embedding,
                        GnnWorkspace* ws) {
  assert(cache.graph != nullptr);
  assert(ws != nullptr);
  const PreparedGraph& g = *cache.graph;
  const size_t readout_index = layers_.size() - 1;
  const size_t n = static_cast<size_t>(g.num_nodes);

  // Readout projection backward.
  ws->demb.ResizeForOverwrite(1, grad_embedding.size());
  std::copy(grad_embedding.begin(), grad_embedding.end(),
            ws->demb.RowPtr(0));
  Layer& readout = layers_[readout_index];
  MatMulTransAInto(cache.pooled, ws->demb, &ws->gw);
  readout.grads[0] += ws->gw;
  readout.grads[1] += ws->demb;
  MatMulTransBInto(ws->demb, readout.params[0], &ws->dpooled);

  // [mean | max] readout backward: the mean half broadcasts /n to every
  // node row; the max half routes to the argmax row per dim.
  const size_t hdim = ws->dpooled.cols() / 2;
  ws->dh.ResizeForOverwrite(n, hdim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < hdim; ++c) {
      ws->dh.At(i, c) = ws->dpooled.At(0, c) / static_cast<double>(n);
    }
  }
  for (size_t c = 0; c < hdim; ++c) {
    ws->dh.At(cache.argmax[c], c) += ws->dpooled.At(0, hdim + c);
  }

  const size_t first_mp = config_.type == GnnType::kMagnn ? 1 : 0;
  // Message-passing layers, top-down.
  for (size_t l = readout_index; l-- > first_mp;) {
    ReluBackwardInto(ws->dh, cache.pre[l], &ws->dz);
    const Matrix& h_in = LayerInput(cache, l);
    Propagate(g, h_in, &ws->m);
    MatMulTransAInto(ws->m, ws->dz, &ws->gw);
    layers_[l].grads[0] += ws->gw;
    ColumnSumInto(ws->dz, &ws->gb);
    layers_[l].grads[1] += ws->gb;
    if (l > first_mp || config_.type == GnnType::kMagnn) {
      // Propagation matrices are symmetric: dH_in = P (dZ W^T).
      MatMulTransBInto(ws->dz, layers_[l].params[0], &ws->tmp);
      Propagate(g, ws->tmp, &ws->dh);
    }
  }

  if (config_.type == GnnType::kMagnn) {
    // Projection backward (per node space).
    ReluBackwardInto(ws->dh, cache.pre[0], &ws->dz);
    const Matrix& dz = ws->dz;
    Layer& proj = layers_[0];
    for (size_t i = 0; i < n; ++i) {
      const bool sent = g.node_space[i] == 1;
      Matrix& gw = sent ? proj.grads[2] : proj.grads[0];
      Matrix& gb = sent ? proj.grads[3] : proj.grads[1];
      const Matrix& x = sent ? g.features_hetero : g.features;
      for (size_t c = 0; c < dz.cols(); ++c) {
        const double d = dz.At(i, c);
        if (d == 0.0) continue;
        gb.At(0, c) += d;
        for (size_t k = 0; k < gw.rows(); ++k) {
          gw.At(k, c) += x.At(i, k) * d;
        }
      }
    }
  }
}

void GnnModel::Backward(const ForwardCache& cache,
                        const std::vector<double>& grad_embedding) {
  GnnWorkspace local;
  Backward(cache, grad_embedding, &local);
}

void GnnModel::ZeroGrad() {
  for (auto& layer : layers_) {
    for (auto& g : layer.grads) g.Fill(0.0);
  }
}

void GnnModel::ApplyGrads(double learning_rate, double batch_size,
                          double weight_decay) {
  double scale = learning_rate / std::max(1.0, batch_size);
  // Global-norm gradient clipping: GIN's sum aggregation over hub nodes
  // can produce huge activations; unclipped contrastive pushes then
  // diverge.
  constexpr double kMaxGradNorm = 5.0;
  double norm2 = 0.0;
  for (const auto& layer : layers_) {
    for (const auto& g : layer.grads) {
      for (size_t k = 0; k < g.size(); ++k) {
        const double v = g.data()[k] / std::max(1.0, batch_size);
        norm2 += v * v;
      }
    }
  }
  const double norm = std::sqrt(norm2);
  if (norm > kMaxGradNorm) scale *= kMaxGradNorm / norm;
  for (auto& layer : layers_) {
    for (size_t i = 0; i < layer.params.size(); ++i) {
      Matrix& p = layer.params[i];
      const Matrix& g = layer.grads[i];
      for (size_t k = 0; k < p.size(); ++k) {
        p.data()[k] -= scale * g.data()[k] +
                       learning_rate * weight_decay * p.data()[k];
      }
    }
  }
  ZeroGrad();
}

std::vector<double> GnnModel::GetLayerFlat(int l) const {
  const Layer& layer = layers_[static_cast<size_t>(l)];
  std::vector<double> out;
  out.reserve(LayerSize(l));
  for (const auto& m : layer.params) {
    out.insert(out.end(), m.data(), m.data() + m.size());
  }
  return out;
}

std::vector<double> GnnModel::GetLayerGradFlat(int l) const {
  const Layer& layer = layers_[static_cast<size_t>(l)];
  std::vector<double> out;
  out.reserve(LayerSize(l));
  for (const auto& m : layer.grads) {
    out.insert(out.end(), m.data(), m.data() + m.size());
  }
  return out;
}

void GnnModel::SetLayerFlat(int l, const std::vector<double>& flat) {
  Layer& layer = layers_[static_cast<size_t>(l)];
  assert(flat.size() == LayerSize(l));
  size_t cursor = 0;
  for (auto& m : layer.params) {
    std::copy(flat.begin() + static_cast<long>(cursor),
              flat.begin() + static_cast<long>(cursor + m.size()), m.data());
    cursor += m.size();
  }
}

size_t GnnModel::LayerSize(int l) const {
  const Layer& layer = layers_[static_cast<size_t>(l)];
  size_t total = 0;
  for (const auto& m : layer.params) total += m.size();
  return total;
}

size_t GnnModel::TotalParams() const {
  size_t total = 0;
  for (int l = 0; l < num_layers(); ++l) total += LayerSize(l);
  return total;
}

}  // namespace fexiot
