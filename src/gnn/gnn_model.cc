#include "gnn/gnn_model.h"

#include <cassert>
#include <cmath>

#include "tensor/ops.h"

namespace fexiot {

const char* GnnTypeName(GnnType type) {
  switch (type) {
    case GnnType::kGcn:
      return "GCN";
    case GnnType::kGin:
      return "GIN";
    case GnnType::kMagnn:
      return "MAGNN";
  }
  return "?";
}

PreparedGraph PrepareGraph(const InteractionGraph& g,
                           const GnnConfig& config) {
  PreparedGraph p;
  p.num_nodes = g.num_nodes();
  p.label = g.label();
  const size_t n = static_cast<size_t>(g.num_nodes());

  // Propagation matrix.
  if (config.type == GnnType::kGin) {
    // S = (1 + eps) I + A over the undirected skeleton, eps = 0.
    Matrix s(n, n);
    for (size_t i = 0; i < n; ++i) s.At(i, i) = 1.0;
    for (const auto& [u, v] : g.edges()) {
      s.At(static_cast<size_t>(u), static_cast<size_t>(v)) = 1.0;
      s.At(static_cast<size_t>(v), static_cast<size_t>(u)) = 1.0;
    }
    p.propagation = std::move(s);
  } else {
    p.propagation = g.NormalizedAdjacency();
  }

  // Feature matrices. Word-space nodes go into `features`; sentence-space
  // nodes (voice platforms) into `features_hetero` (only consumed by
  // MAGNN; GCN/GIN on heterogeneous graphs would assert in FeatureMatrix,
  // so we pad/truncate to input_dim for them).
  p.features = Matrix(n, static_cast<size_t>(config.input_dim));
  p.features_hetero = Matrix(n, static_cast<size_t>(config.hetero_input_dim));
  p.node_space.resize(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto& f = g.node(static_cast<int>(i)).features;
    const bool sentence_space =
        static_cast<int>(f.size()) == config.hetero_input_dim &&
        config.hetero_input_dim != config.input_dim;
    if (sentence_space) {
      p.node_space[i] = 1;
      for (size_t c = 0; c < f.size(); ++c) p.features_hetero.At(i, c) = f[c];
      // For homogeneous models, fold the sentence embedding into the word
      // slot by truncation so GCN/GIN still run on hetero graphs.
      const size_t copy = std::min(f.size(),
                                   static_cast<size_t>(config.input_dim));
      for (size_t c = 0; c < copy; ++c) p.features.At(i, c) = f[c];
    } else {
      const size_t copy = std::min(f.size(),
                                   static_cast<size_t>(config.input_dim));
      for (size_t c = 0; c < copy; ++c) p.features.At(i, c) = f[c];
    }
  }
  return p;
}

GnnModel::GnnModel(const GnnConfig& config) : config_(config) {
  Rng rng(config.seed);
  const size_t in = static_cast<size_t>(config.input_dim);
  const size_t hin = static_cast<size_t>(config.hetero_input_dim);
  const size_t h = static_cast<size_t>(config.hidden_dim);
  const size_t e = static_cast<size_t>(config.embedding_dim);

  auto make_layer = [&](std::vector<Matrix> params) {
    Layer layer;
    layer.grads.reserve(params.size());
    for (const auto& m : params) layer.grads.emplace_back(m.rows(), m.cols());
    layer.params = std::move(params);
    layers_.push_back(std::move(layer));
  };

  if (config.type == GnnType::kMagnn) {
    // Layer 0: dual input projections (word space, sentence space).
    make_layer({Matrix::GlorotUniform(in, h, &rng), Matrix(1, h),
                Matrix::GlorotUniform(hin, h, &rng), Matrix(1, h)});
    for (int l = 0; l < config.num_layers; ++l) {
      make_layer({Matrix::GlorotUniform(h, h, &rng), Matrix(1, h)});
    }
  } else {
    for (int l = 0; l < config.num_layers; ++l) {
      const size_t lin = l == 0 ? in : h;
      make_layer({Matrix::GlorotUniform(lin, h, &rng), Matrix(1, h)});
    }
  }
  // Readout projection over the [mean | max] pooled representation.
  make_layer({Matrix::GlorotUniform(2 * h, e, &rng), Matrix(1, e)});
}

Matrix GnnModel::InputProjection(const PreparedGraph& g,
                                 ForwardCache* cache) const {
  // MAGNN-lite: project each node from its feature space into the shared
  // hidden space, ReLU activation.
  const Layer& proj = layers_[0];
  const size_t n = static_cast<size_t>(g.num_nodes);
  const size_t h = static_cast<size_t>(config_.hidden_dim);
  Matrix z(n, h);
  for (size_t i = 0; i < n; ++i) {
    const bool sent = g.node_space[i] == 1;
    const Matrix& w = sent ? proj.params[2] : proj.params[0];
    const Matrix& b = sent ? proj.params[3] : proj.params[1];
    const Matrix& x = sent ? g.features_hetero : g.features;
    for (size_t c = 0; c < h; ++c) {
      double s = b.At(0, c);
      for (size_t k = 0; k < w.rows(); ++k) s += x.At(i, k) * w.At(k, c);
      z.At(i, c) = s;
    }
  }
  if (cache) cache->pre.push_back(z);
  return Relu(z);
}

std::vector<double> GnnModel::Forward(const PreparedGraph& g,
                                      ForwardCache* cache) const {
  assert(g.num_nodes > 0);
  if (cache) {
    cache->graph = &g;
    cache->pre.clear();
    cache->post.clear();
  }

  size_t first_mp = 0;
  Matrix h;
  if (config_.type == GnnType::kMagnn) {
    h = InputProjection(g, cache);
    first_mp = 1;
  } else {
    h = g.features;
  }
  if (cache) cache->post.push_back(h);

  const size_t readout_index = layers_.size() - 1;
  for (size_t l = first_mp; l < readout_index; ++l) {
    const Matrix m = MatMul(g.propagation, h);
    Matrix z = MatMul(m, layers_[l].params[0]);
    AddBiasRow(&z, layers_[l].params[1]);
    if (cache) cache->pre.push_back(z);
    h = Relu(z);
    if (cache) cache->post.push_back(h);
  }

  // [mean | max] readout.
  const size_t hd = h.cols();
  Matrix pooled(1, 2 * hd);
  std::vector<size_t> argmax(hd, 0);
  {
    const Matrix mean = ColumnMean(h);
    for (size_t c = 0; c < hd; ++c) pooled.At(0, c) = mean.At(0, c);
    for (size_t c = 0; c < hd; ++c) {
      double best = h.At(0, c);
      size_t best_row = 0;
      for (size_t r = 1; r < h.rows(); ++r) {
        if (h.At(r, c) > best) {
          best = h.At(r, c);
          best_row = r;
        }
      }
      pooled.At(0, hd + c) = best;
      argmax[c] = best_row;
    }
  }
  Matrix emb = MatMul(pooled, layers_[readout_index].params[0]);
  AddBiasRow(&emb, layers_[readout_index].params[1]);
  if (cache) {
    cache->pooled = pooled;
    cache->argmax = std::move(argmax);
  }

  std::vector<double> out = emb.Row(0);
  if (cache) cache->embedding = out;
  return out;
}

void GnnModel::Backward(const ForwardCache& cache,
                        const std::vector<double>& grad_embedding) {
  assert(cache.graph != nullptr);
  const PreparedGraph& g = *cache.graph;
  const size_t readout_index = layers_.size() - 1;
  const size_t n = static_cast<size_t>(g.num_nodes);

  // Readout projection backward.
  Matrix demb(1, grad_embedding.size());
  demb.SetRow(0, grad_embedding);
  Layer& readout = layers_[readout_index];
  readout.grads[0] += MatMulTransA(cache.pooled, demb);
  readout.grads[1] += demb;
  const Matrix dpooled = MatMulTransB(demb, readout.params[0]);

  // [mean | max] readout backward: the mean half broadcasts /n to every
  // node row; the max half routes to the argmax row per dim.
  const size_t hdim = dpooled.cols() / 2;
  Matrix dh(n, hdim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < hdim; ++c) {
      dh.At(i, c) = dpooled.At(0, c) / static_cast<double>(n);
    }
  }
  for (size_t c = 0; c < hdim; ++c) {
    dh.At(cache.argmax[c], c) += dpooled.At(0, hdim + c);
  }

  const size_t first_mp = config_.type == GnnType::kMagnn ? 1 : 0;
  // Message-passing layers, top-down. cache.pre[k]/cache.post[k+1] hold the
  // k-th recorded activation pair; for MAGNN, index 0 is the projection.
  for (size_t l = readout_index; l-- > first_mp;) {
    // pre[l] is layer l's pre-activation in both modes (MAGNN's projection
    // occupies pre[0]); the layer's *input* activation is post[l - first_mp]
    // (post[0] is the raw features for GCN/GIN, the projected features for
    // MAGNN).
    Matrix dz = ReluBackward(dh, cache.pre[l]);
    const Matrix& h_in = cache.post[l - first_mp];
    const Matrix m = MatMul(g.propagation, h_in);
    layers_[l].grads[0] += MatMulTransA(m, dz);
    layers_[l].grads[1] += ColumnSum(dz);
    if (l > first_mp || config_.type == GnnType::kMagnn) {
      // Propagation matrices are symmetric: dH_in = P (dZ W^T).
      const Matrix tmp = MatMulTransB(dz, layers_[l].params[0]);
      dh = MatMul(g.propagation, tmp);
    }
  }

  if (config_.type == GnnType::kMagnn) {
    // Projection backward (per node space).
    Matrix dz = ReluBackward(dh, cache.pre[0]);
    Layer& proj = layers_[0];
    for (size_t i = 0; i < n; ++i) {
      const bool sent = g.node_space[i] == 1;
      Matrix& gw = sent ? proj.grads[2] : proj.grads[0];
      Matrix& gb = sent ? proj.grads[3] : proj.grads[1];
      const Matrix& x = sent ? g.features_hetero : g.features;
      for (size_t c = 0; c < dz.cols(); ++c) {
        const double d = dz.At(i, c);
        if (d == 0.0) continue;
        gb.At(0, c) += d;
        for (size_t k = 0; k < gw.rows(); ++k) {
          gw.At(k, c) += x.At(i, k) * d;
        }
      }
    }
  }
}

void GnnModel::ZeroGrad() {
  for (auto& layer : layers_) {
    for (auto& g : layer.grads) g.Fill(0.0);
  }
}

void GnnModel::ApplyGrads(double learning_rate, double batch_size,
                          double weight_decay) {
  double scale = learning_rate / std::max(1.0, batch_size);
  // Global-norm gradient clipping: GIN's sum aggregation over hub nodes
  // can produce huge activations; unclipped contrastive pushes then
  // diverge.
  constexpr double kMaxGradNorm = 5.0;
  double norm2 = 0.0;
  for (const auto& layer : layers_) {
    for (const auto& g : layer.grads) {
      for (size_t k = 0; k < g.size(); ++k) {
        const double v = g.data()[k] / std::max(1.0, batch_size);
        norm2 += v * v;
      }
    }
  }
  const double norm = std::sqrt(norm2);
  if (norm > kMaxGradNorm) scale *= kMaxGradNorm / norm;
  for (auto& layer : layers_) {
    for (size_t i = 0; i < layer.params.size(); ++i) {
      Matrix& p = layer.params[i];
      const Matrix& g = layer.grads[i];
      for (size_t k = 0; k < p.size(); ++k) {
        p.data()[k] -= scale * g.data()[k] +
                       learning_rate * weight_decay * p.data()[k];
      }
    }
  }
  ZeroGrad();
}

std::vector<double> GnnModel::GetLayerFlat(int l) const {
  const Layer& layer = layers_[static_cast<size_t>(l)];
  std::vector<double> out;
  out.reserve(LayerSize(l));
  for (const auto& m : layer.params) {
    out.insert(out.end(), m.data(), m.data() + m.size());
  }
  return out;
}

std::vector<double> GnnModel::GetLayerGradFlat(int l) const {
  const Layer& layer = layers_[static_cast<size_t>(l)];
  std::vector<double> out;
  out.reserve(LayerSize(l));
  for (const auto& m : layer.grads) {
    out.insert(out.end(), m.data(), m.data() + m.size());
  }
  return out;
}

void GnnModel::SetLayerFlat(int l, const std::vector<double>& flat) {
  Layer& layer = layers_[static_cast<size_t>(l)];
  assert(flat.size() == LayerSize(l));
  size_t cursor = 0;
  for (auto& m : layer.params) {
    std::copy(flat.begin() + static_cast<long>(cursor),
              flat.begin() + static_cast<long>(cursor + m.size()), m.data());
    cursor += m.size();
  }
}

size_t GnnModel::LayerSize(int l) const {
  const Layer& layer = layers_[static_cast<size_t>(l)];
  size_t total = 0;
  for (const auto& m : layer.params) total += m.size();
  return total;
}

size_t GnnModel::TotalParams() const {
  size_t total = 0;
  for (int l = 0; l < num_layers(); ++l) total += LayerSize(l);
  return total;
}

}  // namespace fexiot
