#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fexiot {

/// \brief Splits \p text on \p sep, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// \brief Splits \p text on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// \brief Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// \brief ASCII lower-cases \p text.
std::string ToLower(std::string_view text);

/// \brief Strips leading/trailing whitespace.
std::string Trim(std::string_view text);

/// \brief True if \p text starts with \p prefix.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief True if \p text ends with \p suffix.
bool EndsWith(std::string_view text, std::string_view suffix);

/// \brief True if \p haystack contains \p needle.
bool Contains(std::string_view haystack, std::string_view needle);

/// \brief Stable 64-bit FNV-1a hash of \p text (platform independent).
uint64_t HashString(std::string_view text);

/// \brief Formats a double with fixed precision.
std::string FormatDouble(double value, int precision = 3);

}  // namespace fexiot
