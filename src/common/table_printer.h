#pragma once

#include <string>
#include <vector>

namespace fexiot {

/// \brief Renders aligned ASCII tables for benchmark output.
///
/// Every bench binary in `bench/` prints its table/figure series through
/// this printer so "paper vs measured" rows line up consistently.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a separator under the header.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fexiot
