#pragma once

#include <cstddef>
#include <functional>

namespace fexiot {
namespace parallel {

/// \brief Process-wide data parallelism over a shared lazily-initialized
/// ThreadPool.
///
/// Library hot loops (GEMM row blocks, k-means assignment, t-SNE gradient
/// rows, contrastive pair batches, corpus generation) call parallel::For
/// instead of owning pools. A nested-parallelism guard keeps the scheme
/// composable with callers that already parallelize at a coarser grain:
/// when For/ForRange is invoked from *any* ThreadPool worker thread (e.g.
/// inside a federated per-client training task running on the simulator's
/// pool), the loop body runs serially inline, so per-client tasks never
/// oversubscribe the machine with a second level of workers.
///
/// Determinism contract: For/ForRange only change *which thread* executes
/// an index, never the arithmetic performed for it. Callers that keep
/// per-index writes disjoint and reduce in index order get bit-identical
/// results for every thread count (tested in test_kernels.cc).

/// \brief Number of workers in the global pool (creates it on first use).
/// Default size: the FEXIOT_THREADS env var if set, else hardware
/// concurrency.
size_t NumThreads();

/// \brief Resizes the global pool (0 = default sizing). Intended for tests
/// and tools; must not race with concurrent For calls.
void SetThreads(size_t n);

/// \brief Runs fn(i) for i in [0, n) across the global pool and waits.
///
/// Serial fallbacks: n <= 1, a single-worker pool, or a caller already on
/// a ThreadPool worker thread (the oversubscription guard). Exceptions: the
/// first exception thrown by fn is rethrown in the caller; scheduling of
/// further indices stops, though indices already in flight still complete.
/// Concurrent For calls from distinct caller threads are safe and tracked
/// independently.
void For(size_t n, const std::function<void(size_t)>& fn);

/// \brief Row-range variant: partitions [0, n) into at most NumThreads()
/// contiguous shards and runs fn(begin, end) per shard. Useful when
/// per-index dispatch would dominate (tight per-row loops). The shard
/// boundaries depend only on n and the pool size.
void ForRange(size_t n, const std::function<void(size_t, size_t)>& fn);

}  // namespace parallel
}  // namespace fexiot
