#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace fexiot {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&t, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s] %s\n", ts, LevelTag(level), message.c_str());
}

}  // namespace fexiot
