#include "common/table_printer.h"

#include <cassert>
#include <cstdio>

namespace fexiot {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
}

}  // namespace fexiot
