#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fexiot {

/// \brief Fixed-size worker pool used to parallelize per-client federated
/// training rounds and embarrassingly parallel dataset generation.
class ThreadPool {
 public:
  /// Creates \p num_threads workers (defaults to hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// \brief Runs fn(i) for i in [0, n) across the pool and waits.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace fexiot
