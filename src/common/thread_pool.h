#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fexiot {

/// \brief Fixed-size worker pool used to parallelize per-client federated
/// training rounds and embarrassingly parallel dataset generation.
///
/// Concurrency contract (pinned down by the test_common stress tests):
///  - Submit/Wait may be called concurrently from any number of threads.
///    Wait() blocks until *all* tasks submitted so far (by any thread) have
///    completed; per-caller completion tracking is the job of higher-level
///    wrappers such as parallel::For.
///  - A task submitted via Submit that throws is caught in the worker,
///    logged, and dropped; it still counts as completed, so Wait() never
///    wedges and the process never std::terminate()s.
///  - ParallelFor rethrows the first exception thrown by fn in the calling
///    thread and stops handing out further indices (indices already in
///    flight still run).
///  - ParallelFor called from a worker thread (of this or any other pool)
///    runs inline serially: a worker blocking in Wait() on its own pool
///    would deadlock, and nested fan-out oversubscribes the machine.
class ThreadPool {
 public:
  /// Creates \p num_threads workers (defaults to hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Exceptions escaping the task are
  /// logged and swallowed (see class comment).
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// \brief Runs fn(i) for i in [0, n) across the pool and waits.
  /// Serial inline when called from any pool's worker thread.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// \brief True when the calling thread is a worker of *any* ThreadPool.
  /// Used as the nested-parallelism guard by parallel::For.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace fexiot
