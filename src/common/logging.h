#pragma once

#include <sstream>
#include <string>

namespace fexiot {

/// \brief Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// \brief Emits one formatted log line to stderr (thread-safe).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log capture used by the FEXIOT_LOG macro.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fexiot

#define FEXIOT_LOG(level) \
  ::fexiot::internal::LogStream(::fexiot::LogLevel::k##level)
