#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fexiot {

/// \brief Value-or-Status outcome of a fallible operation.
///
/// A Result either holds a value of type T (status is OK) or an error
/// Status. Accessing the value of an errored Result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding \p value.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Constructs an errored result. \p status must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "accessing value of errored Result");
    return *value_;
  }
  T& value() & {
    assert(ok() && "accessing value of errored Result");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "accessing value of errored Result");
    return std::move(*value_);
  }

  /// \brief Returns the value if OK, otherwise the provided default.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fexiot

/// \brief Assigns the value of a Result expression or returns its Status.
#define FEXIOT_ASSIGN_OR_RETURN(lhs, expr)          \
  auto _res_##__LINE__ = (expr);                    \
  if (!_res_##__LINE__.ok()) {                      \
    return _res_##__LINE__.status();                \
  }                                                 \
  lhs = std::move(_res_##__LINE__).value()
