#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace fexiot {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia-Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<double> Rng::Dirichlet(double alpha, int k) {
  assert(k > 0);
  std::vector<double> out(static_cast<size_t>(k));
  double sum = 0.0;
  for (auto& x : out) {
    x = Gamma(alpha);
    sum += x;
  }
  if (sum <= 0.0) {
    // Degenerate draw; fall back to uniform.
    for (auto& x : out) x = 1.0 / k;
    return out;
  }
  for (auto& x : out) x /= sum;
  return out;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

Rng Rng::ForkAt(uint64_t index) const {
  // Child seed = splitmix64 of (state digest + index * golden ratio): the
  // children enumerate a splitmix64 counter stream anchored at this
  // generator's state, so distinct indices yield decorrelated streams and
  // the parent state is never touched.
  uint64_t sm =
      (s_[0] ^ Rotl(s_[1], 16) ^ Rotl(s_[2], 32) ^ Rotl(s_[3], 48)) +
      index * 0x9e3779b97f4a7c15ULL;
  return Rng(SplitMix64(&sm));
}

}  // namespace fexiot
