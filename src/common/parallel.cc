#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>

#include "common/thread_pool.h"

namespace fexiot {
namespace parallel {
namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mutex
size_t g_requested_threads = 0;      // 0 = default sizing

size_t DefaultThreads() {
  const char* env = std::getenv("FEXIOT_THREADS");
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 0;  // ThreadPool(0) falls back to hardware concurrency
}

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr) {
    const size_t n =
        g_requested_threads != 0 ? g_requested_threads : DefaultThreads();
    g_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_pool;
}

}  // namespace

size_t NumThreads() { return GlobalPool().num_threads(); }

void SetThreads(size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool.reset();  // joins old workers
  g_requested_threads = n;
}

void For(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Oversubscription guard: a caller already running on a pool worker
  // (global or any other pool, e.g. the federated simulator's) executes
  // the loop inline instead of fanning out a second level of tasks.
  if (n == 1 || ThreadPool::OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = GlobalPool();
  const size_t workers = pool.num_threads();
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Completion is tracked with a local latch rather than ThreadPool::Wait
  // so that concurrent For calls from different threads do not wait on
  // each other's tasks.
  const size_t shards = n < workers ? n : workers;
  std::atomic<size_t> next{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  size_t remaining = shards;
  std::exception_ptr first_error;
  for (size_t s = 0; s < shards; ++s) {
    pool.Submit([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
          next.store(n);  // stop handing out further indices
        }
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ForRange(size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t shards = NumThreads();
  if (shards > n) shards = n;
  if (shards <= 1 || ThreadPool::OnWorkerThread()) {
    fn(0, n);
    return;
  }
  For(shards, [n, shards, &fn](size_t s) {
    const size_t begin = s * n / shards;
    const size_t end = (s + 1) * n / shards;
    if (begin < end) fn(begin, end);
  });
}

}  // namespace parallel
}  // namespace fexiot
