#include "common/cpu_features.h"

#include <algorithm>
#include <cctype>

namespace fexiot {
namespace cpu {
namespace {

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FEXIOT_CPU_CAN_PROBE 1
#else
#define FEXIOT_CPU_CAN_PROBE 0
#endif

bool ProbeAvx2() {
#if FEXIOT_CPU_CAN_PROBE
  // The AVX2 microkernel uses vfmadd, so FMA3 is part of the tier.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool ProbeAvx512() {
#if FEXIOT_CPU_CAN_PROBE
  // The AVX-512 microkernel only needs the foundation subset (loads,
  // stores, broadcast, vfmadd on zmm), all of which are AVX512F.
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kScalar:
      return "scalar";
  }
  return "scalar";
}

bool ParseIsa(const std::string& name, Isa* out) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "scalar") {
    *out = Isa::kScalar;
  } else if (s == "avx2") {
    *out = Isa::kAvx2;
  } else if (s == "avx512" || s == "avx-512") {
    *out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool IsaSupported(Isa isa) {
  static const bool avx2 = ProbeAvx2();
  static const bool avx512 = ProbeAvx512();
  switch (isa) {
    case Isa::kAvx512:
      return avx512;
    case Isa::kAvx2:
      return avx2;
    case Isa::kScalar:
      return true;
  }
  return false;
}

Isa BestSupportedIsa() {
  if (IsaSupported(Isa::kAvx512)) return Isa::kAvx512;
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

}  // namespace cpu
}  // namespace fexiot
