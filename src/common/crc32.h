#pragma once

#include <cstddef>
#include <cstdint>

namespace fexiot {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// range. Used as the integrity footer of every versioned FexIoT binary
/// encoding: the GNN model file format (gnn/serialization) and the federated
/// wire messages built on top of it (runtime/message). Pass the result of a
/// previous call as \p seed to checksum discontiguous ranges.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace fexiot
