#pragma once

#include <string>
#include <utility>

namespace fexiot {

/// \brief Error category for a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
  kIOError,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail without a value payload.
///
/// FexIoT library code reports recoverable errors through Status/Result
/// instead of exceptions, following the Arrow/RocksDB convention. A default
/// constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Renders "<CODE>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace fexiot

/// \brief Returns early with the status if the expression is not OK.
#define FEXIOT_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::fexiot::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)
