#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace fexiot {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  const size_t shards = std::min(n, workers_.size());
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fexiot
