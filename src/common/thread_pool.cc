#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/logging.h"

namespace fexiot {

namespace {
thread_local bool tls_on_worker_thread = false;
}  // namespace

bool ThreadPool::OnWorkerThread() { return tls_on_worker_thread; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (OnWorkerThread() || workers_.size() <= 1) {
    // Nested call from a worker: Wait() on our own pool from inside a task
    // can never finish (the waiting task itself is in flight), so run
    // inline. Single-worker pools gain nothing from dispatch either.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const size_t shards = std::min(n, workers_.size());
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn, &error_mutex, &first_error] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
          next.store(n);  // stop handing out further indices
        }
      }
    });
  }
  Wait();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  tls_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (const std::exception& e) {
      FEXIOT_LOG(Error) << "ThreadPool task threw: " << e.what();
    } catch (...) {
      FEXIOT_LOG(Error) << "ThreadPool task threw a non-std exception";
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fexiot
