#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>

namespace fexiot {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

uint64_t HashString(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace fexiot
