#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fexiot {

/// \brief Deterministic pseudo-random number generator (splitmix64 +
/// xoshiro256**) with sampling helpers used throughout the simulator.
///
/// All stochastic components in FexIoT (data generation, Dirichlet
/// partitioning, model initialization, Monte Carlo search) draw from an Rng
/// so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Standard normal via Box-Muller.
  double Normal();
  /// Normal with mean/stddev.
  double Normal(double mean, double stddev);
  /// Gamma(shape, 1) via Marsaglia-Tsang.
  double Gamma(double shape);
  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// \brief Samples a probability vector from Dirichlet(alpha,...,alpha).
  std::vector<double> Dirichlet(double alpha, int k);

  /// \brief Samples an index according to unnormalized weights.
  size_t Categorical(const std::vector<double>& weights);

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Samples k distinct indices from [0, n) (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// \brief Derives an independent child generator (for parallel streams).
  /// Consumes one draw from this generator's stream.
  Rng Fork();

  /// \brief Counter-based child derivation: deterministically derives the
  /// \p index-th child of this generator's *current* state without
  /// consuming the parent stream. ForkAt(i) is a pure function of
  /// (state, i), so forking N children is O(1) per child, independent of
  /// the order the children are requested in — the stream-splitting
  /// primitive behind parallel corpus generation (graph i's content
  /// depends only on the seed and i, never on thread count or schedule).
  Rng ForkAt(uint64_t index) const;

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fexiot
