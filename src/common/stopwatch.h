#pragma once

#include <chrono>

namespace fexiot {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fexiot
