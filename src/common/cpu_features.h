#pragma once

#include <string>

namespace fexiot {
namespace cpu {

/// \brief Instruction-set tiers the tensor microkernels are specialized
/// for, ordered from most portable to widest vectors. Values are ordered
/// so that a numerically smaller tier is always a safe fallback for a
/// larger one.
enum class Isa {
  kScalar = 0,  ///< portable C++, no explicit SIMD (always available)
  kAvx2 = 1,    ///< 256-bit AVX2 + FMA
  kAvx512 = 2,  ///< 512-bit AVX-512F
};

/// \brief Canonical lowercase name ("scalar" | "avx2" | "avx512"); the
/// same spelling the FEXIOT_ISA environment variable accepts.
const char* IsaName(Isa isa);

/// \brief Parses an FEXIOT_ISA-style name (case-insensitive). Returns
/// false and leaves \p out untouched on an unrecognized spelling.
bool ParseIsa(const std::string& name, Isa* out);

/// \brief True when the running CPU can execute the tier. Probed once via
/// CPUID (__builtin_cpu_supports) and cached; kScalar is always true, and
/// on non-x86 builds every SIMD tier reports false.
bool IsaSupported(Isa isa);

/// \brief The widest tier the running CPU supports.
Isa BestSupportedIsa();

}  // namespace cpu
}  // namespace fexiot
