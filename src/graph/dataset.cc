#include "graph/dataset.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/logging.h"

namespace fexiot {

std::vector<int> GraphDataset::Labels() const {
  std::vector<int> out;
  out.reserve(graphs_.size());
  for (const auto& g : graphs_) out.push_back(g.label());
  return out;
}

double GraphDataset::VulnerableFraction() const {
  if (graphs_.empty()) return 0.0;
  int vuln = 0;
  for (const auto& g : graphs_) vuln += g.label();
  return static_cast<double>(vuln) / static_cast<double>(graphs_.size());
}

void GraphDataset::Split(double train_fraction, Rng* rng, GraphDataset* train,
                         GraphDataset* test) const {
  assert(train != nullptr && test != nullptr);
  assert(rng != nullptr);
  std::vector<size_t> idx(graphs_.size());
  std::iota(idx.begin(), idx.end(), 0);
  if (rng == nullptr) {
    // Release-mode guard: a null rng degrades to a deterministic
    // unshuffled split instead of crashing.
    FEXIOT_LOG(Error) << "GraphDataset::Split called with null rng; "
                         "splitting in dataset order";
  } else {
    rng->Shuffle(&idx);
  }
  const size_t n_train =
      static_cast<size_t>(train_fraction * static_cast<double>(idx.size()));
  train->mutable_graphs().clear();
  test->mutable_graphs().clear();
  for (size_t i = 0; i < idx.size(); ++i) {
    if (i < n_train) {
      train->Add(graphs_[idx[i]]);
    } else {
      test->Add(graphs_[idx[i]]);
    }
  }
}

GraphDataset GraphDataset::Subset(const std::vector<size_t>& indices) const {
  GraphDataset out;
  for (size_t i : indices) {
    assert(i < graphs_.size());
    out.Add(graphs_[i]);
  }
  return out;
}

ClientPartition PartitionDirichlet(const GraphDataset& data, int num_clients,
                                   double alpha, Rng* rng) {
  assert(rng != nullptr);
  assert(num_clients > 0);
  ClientPartition part;
  if (num_clients <= 0 || rng == nullptr) {
    // Release-mode guard for invalid inputs: an empty partition is the
    // only answer that cannot silently mis-assign samples.
    FEXIOT_LOG(Error) << "PartitionDirichlet: invalid input (num_clients="
                      << num_clients << ", rng=" << (rng ? "set" : "null")
                      << "); returning empty partition";
    return part;
  }
  // alpha -> 0 concentrates all mass on one client; clamp away from the
  // Gamma(shape > 0) precondition so degenerate callers get the documented
  // uniform fallback of Rng::Dirichlet instead of an assert.
  alpha = std::max(alpha, 1e-12);
  part.indices.resize(static_cast<size_t>(num_clients));
  part.client_cluster.assign(static_cast<size_t>(num_clients), -1);

  // Group sample indices by class.
  std::vector<std::vector<size_t>> by_class(2);
  for (size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<size_t>(data.graph(i).label())].push_back(i);
  }
  for (auto& cls : by_class) {
    rng->Shuffle(&cls);
    if (cls.empty()) continue;
    // Client proportions for this class ~ Dirichlet(alpha).
    const std::vector<double> prop = rng->Dirichlet(alpha, num_clients);
    // Convert proportions to contiguous slices.
    size_t cursor = 0;
    for (int c = 0; c < num_clients; ++c) {
      size_t take =
          c + 1 == num_clients
              ? cls.size() - cursor
              : static_cast<size_t>(prop[static_cast<size_t>(c)] *
                                    static_cast<double>(cls.size()));
      take = std::min(take, cls.size() - cursor);
      for (size_t k = 0; k < take; ++k) {
        part.indices[static_cast<size_t>(c)].push_back(cls[cursor + k]);
      }
      cursor += take;
    }
  }
  // Guarantee every client has at least two samples (move from the largest).
  for (auto& client : part.indices) {
    while (client.size() < 2) {
      auto largest = std::max_element(
          part.indices.begin(), part.indices.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      if (largest->size() <= 2) break;
      client.push_back(largest->back());
      largest->pop_back();
    }
  }
  return part;
}

ClientPartition PartitionClustered(const GraphDataset& data, int num_clients,
                                   int num_clusters, double alpha, Rng* rng) {
  assert(rng != nullptr);
  assert(num_clients > 0 && num_clusters > 0);
  if (num_clients <= 0 || num_clusters <= 0 || rng == nullptr) {
    FEXIOT_LOG(Error) << "PartitionClustered: invalid input (num_clients="
                      << num_clients << ", num_clusters=" << num_clusters
                      << ", rng=" << (rng ? "set" : "null")
                      << "); returning empty partition";
    return ClientPartition{};
  }
  alpha = std::max(alpha, 1e-12);
  num_clusters = std::min(num_clusters, num_clients);
  ClientPartition part;
  part.indices.resize(static_cast<size_t>(num_clients));
  part.client_cluster.resize(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    part.client_cluster[static_cast<size_t>(c)] = c % num_clusters;
  }

  // Assign each sample to a cluster: benign graphs uniformly; vulnerable
  // graphs preferentially to the cluster owning their vulnerability type
  // (type t belongs to cluster t % num_clusters with probability 0.8).
  std::vector<std::vector<size_t>> cluster_samples(
      static_cast<size_t>(num_clusters));
  for (size_t i = 0; i < data.size(); ++i) {
    const auto& g = data.graph(i);
    int cluster;
    if (g.label() == 1 && rng->Bernoulli(0.8)) {
      cluster = (static_cast<int>(g.vulnerability()) - 1) % num_clusters;
    } else {
      cluster = static_cast<int>(rng->UniformInt(
          static_cast<uint64_t>(num_clusters)));
    }
    cluster_samples[static_cast<size_t>(cluster)].push_back(i);
  }

  // Within each cluster, spread samples over that cluster's clients with
  // Dirichlet label skew.
  for (int k = 0; k < num_clusters; ++k) {
    std::vector<int> clients;
    for (int c = 0; c < num_clients; ++c) {
      if (part.client_cluster[static_cast<size_t>(c)] == k) clients.push_back(c);
    }
    auto& samples = cluster_samples[static_cast<size_t>(k)];
    rng->Shuffle(&samples);
    if (clients.empty() || samples.empty()) continue;
    const std::vector<double> prop =
        rng->Dirichlet(alpha, static_cast<int>(clients.size()));
    size_t cursor = 0;
    for (size_t ci = 0; ci < clients.size(); ++ci) {
      size_t take = ci + 1 == clients.size()
                        ? samples.size() - cursor
                        : static_cast<size_t>(
                              prop[ci] * static_cast<double>(samples.size()));
      take = std::min(take, samples.size() - cursor);
      for (size_t j = 0; j < take; ++j) {
        part.indices[static_cast<size_t>(clients[ci])].push_back(
            samples[cursor + j]);
      }
      cursor += take;
    }
  }
  // Minimum two samples per client.
  for (auto& client : part.indices) {
    while (client.size() < 2) {
      auto largest = std::max_element(
          part.indices.begin(), part.indices.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      if (largest->size() <= 2) break;
      client.push_back(largest->back());
      largest->pop_back();
    }
  }
  return part;
}

}  // namespace fexiot
