#include "graph/delta_graph.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace fexiot {

CsrMatrix DeltaPropagation::MakeIsolated(size_t num_nodes) const {
  std::vector<std::vector<std::pair<int, double>>> rows(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    rows[i].emplace_back(static_cast<int>(i), 1.0);
  }
  return CsrMatrix::FromRowLists(num_nodes, num_nodes, rows);
}

void DeltaPropagation::InsertEdge(CsrMatrix* p, int u, int v) {
  assert(u != v && "propagation self-loops are permanent, not inserted");
  if (HasEdge(*p, u, v)) return;
  ++structural_updates_;
  // Structural insert first (placeholder weight), so GCN renormalization
  // below sees the post-insert degrees via RowNnz.
  p->InsertEntry(static_cast<size_t>(u), v, 1.0);
  p->InsertEntry(static_cast<size_t>(v), u, 1.0);
  if (!gin_) {
    ReweightNode(p, u);
    ReweightNode(p, v);
  }
}

void DeltaPropagation::RemoveEdge(CsrMatrix* p, int u, int v) {
  assert(u != v && "propagation self-loops are permanent, not removed");
  if (!HasEdge(*p, u, v)) return;
  ++structural_updates_;
  p->RemoveEntry(static_cast<size_t>(u), v);
  p->RemoveEntry(static_cast<size_t>(v), u);
  if (!gin_) {
    ReweightNode(p, u);
    ReweightNode(p, v);
  }
}

void DeltaPropagation::ReweightNode(CsrMatrix* p, int x) {
  // Same expression as the batch builder: deg is the undirected adjacency
  // size including the self-loop == the row's stored-entry count, and the
  // entry is dinv[x] * dinv[j]. Commutativity makes the (j, x) mirror
  // store the bit-identical product.
  const size_t xr = static_cast<size_t>(x);
  const double dinv_x =
      1.0 / std::sqrt(static_cast<double>(p->RowNnz(xr)));
  const size_t begin = p->row_ptr()[xr], end = p->row_ptr()[xr + 1];
  // Snapshot the row's columns: SetEntry never changes this row's
  // structure (every touched entry exists), but iterating a container
  // while writing through it invites stale pointers.
  std::vector<int> cols(p->col_idx().begin() + static_cast<ptrdiff_t>(begin),
                        p->col_idx().begin() + static_cast<ptrdiff_t>(end));
  for (int j : cols) {
    const double dinv_j =
        1.0 / std::sqrt(static_cast<double>(p->RowNnz(static_cast<size_t>(j))));
    const double w = dinv_x * dinv_j;
    p->SetEntry(xr, j, w);
    if (j != x) p->SetEntry(static_cast<size_t>(j), x, w);
    reweighted_entries_ += (j != x) ? 2 : 1;
  }
}

}  // namespace fexiot
