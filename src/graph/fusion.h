#pragma once

#include "common/rng.h"
#include "graph/interaction_graph.h"
#include "smarthome/event_log.h"
#include "smarthome/home.h"

namespace fexiot {

/// \brief Cross-modality data fusion (Section III-A3): combines app rule
/// descriptions (trigger-action logic) with cleaned event logs (real-time
/// device status) into *online* interaction graphs.
///
/// For every deployed rule the builder mines the log for firings — a
/// trigger event followed by the rule's action states within a window.
/// Fired rules become nodes (with the firing time encoded in the feature
/// time dims); edges come from the action-trigger logic of the deployed
/// rules. Two causal-consistency scores are folded into the reserved
/// feature dims, which is where log-tampering attacks (fake events,
/// stealthy commands, command failures, event losses) leave their marks:
///  - command consistency: fraction of the rule's devices' state changes
///    preceded by a matching command record;
///  - effect consistency: fraction of the rule's command records followed
///    by the commanded state change.
class OnlineGraphBuilder {
 public:
  struct Options {
    /// Max delay between a trigger event and the rule's action effect.
    double firing_window = 10.0;
    /// Matching window for command <-> state-change consistency.
    double consistency_window = 5.0;
  };

  explicit OnlineGraphBuilder(const Home& home)
      : OnlineGraphBuilder(home, Options()) {}
  OnlineGraphBuilder(const Home& home, Options options)
      : home_(home), options_(options) {}

  /// \brief Builds one online interaction graph from a cleaned log.
  /// Nodes are rules observed firing at least once; label is left 0 (the
  /// caller sets it from attack ground truth / the checker).
  InteractionGraph Build(const EventLog& cleaned_log) const;

 private:
  const Home& home_;
  Options options_;
};

/// Index (from the back of a feature vector) of the command-consistency
/// slot and the effect-consistency slot. The slots hold
/// kConsistencyScale * (consistency - 1): zero when every observation was
/// causally consistent, increasingly negative under log tampering.
constexpr int kFeatureDimCommandConsistency = 2;
constexpr int kFeatureDimEffectConsistency = 1;
constexpr double kConsistencyScale = 5.0;

}  // namespace fexiot
