#include "graph/vuln_checker.h"

#include <algorithm>
#include <set>

namespace fexiot {
namespace {

// Collects (device, state) pairs over all actions of a node's rule.
const std::vector<Action>& ActionsOf(const InteractionGraph& g, int node) {
  return g.node(node).rule.actions;
}

// Appends a finding if `nodes` is non-empty.
void Emit(std::vector<VulnerabilityFinding>* out, VulnerabilityType type,
          std::vector<int> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  out->push_back(VulnerabilityFinding{type, std::move(nodes)});
}

void CheckSiblingPairs(const InteractionGraph& g,
                       std::vector<VulnerabilityFinding>* out,
                       bool want_conflict) {
  // Conflict/duplicate: two children of one parent act on one device with
  // different (conflict) or identical (duplicate) states. Also covers two
  // rules sharing the same trigger event.
  for (int p = 0; p < g.num_nodes(); ++p) {
    const auto& children = g.OutNeighbors(p);
    for (size_t i = 0; i < children.size(); ++i) {
      for (size_t j = i + 1; j < children.size(); ++j) {
        const int a = children[i];
        const int b = children[j];
        for (const Action& aa : ActionsOf(g, a)) {
          for (const Action& ab : ActionsOf(g, b)) {
            if (aa.device != ab.device) continue;
            const bool same = aa.state == ab.state;
            if (want_conflict && !same) {
              Emit(out, VulnerabilityType::kActionConflict, {p, a, b});
            } else if (!want_conflict && same) {
              Emit(out, VulnerabilityType::kActionDuplicate, {p, a, b});
            }
          }
        }
      }
    }
  }
  // Same-trigger pairs (no explicit parent edge).
  for (int a = 0; a < g.num_nodes(); ++a) {
    for (int b = a + 1; b < g.num_nodes(); ++b) {
      if (!(g.node(a).rule.trigger == g.node(b).rule.trigger)) continue;
      for (const Action& aa : ActionsOf(g, a)) {
        for (const Action& ab : ActionsOf(g, b)) {
          if (aa.device != ab.device) continue;
          const bool same = aa.state == ab.state;
          if (want_conflict && !same) {
            Emit(out, VulnerabilityType::kActionConflict, {a, b});
          } else if (!want_conflict && same) {
            Emit(out, VulnerabilityType::kActionDuplicate, {a, b});
          }
        }
      }
    }
  }
}

void CheckActionRevert(const InteractionGraph& g,
                       std::vector<VulnerabilityFinding>* out) {
  // BFS from each node; a reachable node acting oppositely on the same
  // device reverts the upstream action.
  for (int src = 0; src < g.num_nodes(); ++src) {
    std::vector<int> parent(static_cast<size_t>(g.num_nodes()), -2);
    std::vector<int> queue = {src};
    parent[static_cast<size_t>(src)] = -1;
    size_t head = 0;
    while (head < queue.size()) {
      const int u = queue[head++];
      for (int v : g.OutNeighbors(u)) {
        if (parent[static_cast<size_t>(v)] != -2) continue;
        parent[static_cast<size_t>(v)] = u;
        queue.push_back(v);
      }
    }
    for (int dst = 0; dst < g.num_nodes(); ++dst) {
      if (dst == src || parent[static_cast<size_t>(dst)] == -2) continue;
      bool reverts = false;
      for (const Action& as : ActionsOf(g, src)) {
        for (const Action& ad : ActionsOf(g, dst)) {
          if (as.device == ad.device && as.state != ad.state) reverts = true;
        }
      }
      if (!reverts) continue;
      // Recover the path as the witness chain.
      std::vector<int> path;
      for (int cur = dst; cur != -1; cur = parent[static_cast<size_t>(cur)]) {
        path.push_back(cur);
      }
      Emit(out, VulnerabilityType::kActionRevert, std::move(path));
    }
  }
}

void CheckActionLoop(const InteractionGraph& g,
                     std::vector<VulnerabilityFinding>* out) {
  if (!g.HasDirectedCycle()) return;
  // Witness: nodes on some cycle = nodes in non-trivial SCCs (found via
  // simple reachability: u and v are in one SCC if u->*v and v->*u).
  const int n = g.num_nodes();
  std::vector<std::vector<bool>> reach(static_cast<size_t>(n),
                                       std::vector<bool>(static_cast<size_t>(n), false));
  for (int s = 0; s < n; ++s) {
    std::vector<int> stack = {s};
    reach[static_cast<size_t>(s)][static_cast<size_t>(s)] = true;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int v : g.OutNeighbors(u)) {
        if (!reach[static_cast<size_t>(s)][static_cast<size_t>(v)]) {
          reach[static_cast<size_t>(s)][static_cast<size_t>(v)] = true;
          stack.push_back(v);
        }
      }
    }
  }
  std::vector<int> cyc;
  for (int u = 0; u < n; ++u) {
    for (int v : g.OutNeighbors(u)) {
      if (reach[static_cast<size_t>(v)][static_cast<size_t>(u)]) {
        cyc.push_back(u);
        cyc.push_back(v);
      }
    }
  }
  if (!cyc.empty()) {
    Emit(out, VulnerabilityType::kActionLoop, std::move(cyc));
  }
}

void CheckConditionBlock(const InteractionGraph& g,
                         std::vector<VulnerabilityFinding>* out) {
  // A rule `a` drives device X to the opposite of rule `b`'s trigger
  // state: b's condition can no longer be satisfied. The relation is
  // pairwise over deployed rules — the blocked rule need not be reachable
  // from the blocker in the trigger-action graph (it is exactly the rule
  // that never fires).
  for (int a = 0; a < g.num_nodes(); ++a) {
    for (int b = 0; b < g.num_nodes(); ++b) {
      if (a == b) continue;
      const Trigger& tb = g.node(b).rule.trigger;
      const auto& info = GetDeviceTypeInfo(tb.device);
      if (info.is_sensor) continue;  // only actuatable conditions
      for (const Action& aa : ActionsOf(g, a)) {
        if (aa.device == tb.device && aa.state != tb.state &&
            aa.state == OppositeState(tb.device, tb.state)) {
          Emit(out, VulnerabilityType::kConditionBlock, {a, b});
        }
      }
    }
  }
}

void CheckConditionBypass(const InteractionGraph& g,
                          std::vector<VulnerabilityFinding>* out) {
  // Edge u -> v where the causal link is an environment channel fabricating
  // a *safety sensor* condition, and v controls a security device: a
  // mundane actuator can bypass the sensor-guarded condition.
  for (const auto& [u, v] : g.edges()) {
    const Trigger& tv = g.node(v).rule.trigger;
    if (!IsSafetySensor(tv.device)) continue;
    bool via_channel = false;
    for (const Action& au : ActionsOf(g, u)) {
      // Channel-mediated but not a direct device match.
      if (au.device != tv.device && ActionCausesTrigger(au, tv)) {
        via_channel = true;
      }
    }
    if (!via_channel) continue;
    bool touches_security = false;
    for (const Action& av : ActionsOf(g, v)) {
      if (IsSecurityDevice(av.device)) touches_security = true;
    }
    if (touches_security) {
      Emit(out, VulnerabilityType::kConditionBypass, {u, v});
    }
  }
}

}  // namespace

bool IsSecurityDevice(DeviceType type) {
  switch (type) {
    case DeviceType::kDoorLock:
    case DeviceType::kGarageDoor:
    case DeviceType::kDoor:
    case DeviceType::kAlarm:
    case DeviceType::kWaterValve:
    case DeviceType::kCamera:
      return true;
    default:
      return false;
  }
}

bool IsSafetySensor(DeviceType type) {
  switch (type) {
    case DeviceType::kSmokeDetector:
    case DeviceType::kCoDetector:
    case DeviceType::kLeakSensor:
      return true;
    default:
      return false;
  }
}

std::vector<VulnerabilityFinding> VulnerabilityChecker::Check(
    const InteractionGraph& g) {
  std::vector<VulnerabilityFinding> out;
  CheckSiblingPairs(g, &out, /*want_conflict=*/true);
  CheckSiblingPairs(g, &out, /*want_conflict=*/false);
  CheckActionRevert(g, &out);
  CheckActionLoop(g, &out);
  CheckConditionBlock(g, &out);
  CheckConditionBypass(g, &out);
  return out;
}

bool VulnerabilityChecker::IsVulnerable(const InteractionGraph& g) {
  return !Check(g).empty();
}

std::vector<VulnerabilityFinding> VulnerabilityChecker::CheckType(
    const InteractionGraph& g, VulnerabilityType type) {
  std::vector<VulnerabilityFinding> all = Check(g);
  std::vector<VulnerabilityFinding> out;
  for (auto& f : all) {
    if (f.type == type) out.push_back(std::move(f));
  }
  return out;
}

}  // namespace fexiot
