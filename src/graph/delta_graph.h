#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/sparse.h"

namespace fexiot {

/// \brief In-place maintenance of a GNN propagation CSR under edge churn.
///
/// PrepareGraph builds the normalized-adjacency propagation matrix from
/// scratch in O(n + e log e); a streaming engine that sees one edge
/// appear or age out per event cannot afford that per event. This helper
/// applies the same construction incrementally:
///
///  - GIN mode: the propagation matrix is the raw symmetrized adjacency
///    plus self-loops with every stored value exactly 1.0 — inserts and
///    removals are purely structural.
///  - GCN mode: entry (i, j) is dinv[i] * dinv[j] with
///    dinv[x] = 1 / sqrt(deg(x)) and deg(x) = |undirected neighbors of x
///    incl. the self-loop| — which is exactly the CSR row's stored-entry
///    count. Toggling edge (u, v) changes deg(u) and deg(v), so every
///    entry in rows/columns u and v is recomputed from the same
///    expression the batch builder uses. Multiplication commutes, so the
///    mirror entry (j, i) stores the bit-identical product.
///
/// Under this discipline an incrementally maintained matrix is
/// bit-identical to a fresh PrepareGraph build of the same edge set
/// (pinned by tests/test_serving.cc). The matrix is passed per call
/// rather than captured, so holders of DeltaPropagation can move freely
/// inside containers without dangling.
///
/// Callers must keep self-loops permanent: every node always has its
/// (i, i) entry (isolated nodes store exactly 1.0 in both modes), and
/// InsertEdge/RemoveEdge only ever toggle off-diagonal pairs.
class DeltaPropagation {
 public:
  explicit DeltaPropagation(bool gin) : gin_(gin) {}

  /// \brief Returns a fresh propagation matrix for \p num_nodes isolated
  /// nodes (self-loops only, all values exactly 1.0 in both modes — for
  /// GCN, deg == 1 so dinv^2 == 1.0).
  CsrMatrix MakeIsolated(size_t num_nodes) const;

  /// \brief Inserts undirected edge (u, v) into \p p, then (GCN) renormalizes
  /// rows/columns u and v. No-op if the pair is already present (the
  /// directed graph may carry both u->v and v->u; the propagation matrix
  /// stores one undirected pair). Requires u != v.
  void InsertEdge(CsrMatrix* p, int u, int v);

  /// \brief Removes undirected edge (u, v) from \p p, then (GCN)
  /// renormalizes rows/columns u and v. No-op if absent. Requires u != v.
  void RemoveEdge(CsrMatrix* p, int u, int v);

  /// \brief True iff the undirected pair (u, v) is present in \p p.
  static bool HasEdge(const CsrMatrix& p, int u, int v) {
    return p.HasEntry(static_cast<size_t>(u), v);
  }

  bool gin() const { return gin_; }

  /// Telemetry: undirected pairs actually toggled (no-ops excluded).
  uint64_t structural_updates() const { return structural_updates_; }
  /// Telemetry: CSR entries rewritten by GCN renormalization.
  uint64_t reweighted_entries() const { return reweighted_entries_; }

 private:
  /// Recomputes every stored entry in row \p x (and its column mirrors)
  /// from the current degrees.
  void ReweightNode(CsrMatrix* p, int x);

  bool gin_;
  uint64_t structural_updates_ = 0;
  uint64_t reweighted_entries_ = 0;
};

}  // namespace fexiot
