#pragma once

#include <vector>

#include "graph/interaction_graph.h"
#include "smarthome/vulnerability.h"

namespace fexiot {

/// \brief One detected vulnerability instance with its witness nodes.
struct VulnerabilityFinding {
  VulnerabilityType type = VulnerabilityType::kNone;
  /// Node ids participating in the vulnerable interaction (the causal
  /// chain the explanation methods should recover).
  std::vector<int> witness_nodes;
};

/// \brief Ground-truth interaction-vulnerability checker.
///
/// Plays the role of the paper's human labelers: scans an interaction graph
/// for structural/semantic witnesses of the six vulnerability types of
/// Definition 2. Used (a) to label generated corpora, (b) as evaluation
/// ground truth for detection and explanation experiments.
///
/// Signatures checked:
///  - action_conflict:  siblings under one parent acting on one device with
///                      different target states;
///  - action_duplicate: siblings issuing the identical action;
///  - action_revert:    a directed path whose endpoint undoes an upstream
///                      action on the same device;
///  - action_loop:      a directed trigger-action cycle;
///  - condition_block:  a rule drives a device to the opposite of a
///                      connected rule's trigger state (its condition can
///                      no longer be met);
///  - condition_bypass: a mundane actuator fabricates a safety-sensor
///                      condition (via an environment channel) that fires a
///                      rule controlling a security device.
class VulnerabilityChecker {
 public:
  /// All findings in the graph (possibly several types).
  static std::vector<VulnerabilityFinding> Check(const InteractionGraph& g);

  /// Convenience: true if any vulnerability exists.
  static bool IsVulnerable(const InteractionGraph& g);

  /// The first finding of \p type, if present.
  static std::vector<VulnerabilityFinding> CheckType(
      const InteractionGraph& g, VulnerabilityType type);
};

/// \brief True for device types whose state is security-critical
/// (locks, valves, alarms, garage/entry doors).
bool IsSecurityDevice(DeviceType type);

/// \brief True for safety sensors (smoke / CO / leak).
bool IsSafetySensor(DeviceType type);

}  // namespace fexiot
