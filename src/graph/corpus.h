#pragma once

#include <array>
#include <vector>

#include "common/rng.h"
#include "graph/dataset.h"
#include "graph/interaction_graph.h"
#include "smarthome/platform.h"

namespace fexiot {

/// \brief Options for offline interaction-graph corpus generation.
struct CorpusOptions {
  /// Platforms rules are drawn from. {kIfttt} reproduces the homogeneous
  /// IFTTT dataset; all five platforms reproduce the heterogeneous one.
  std::vector<Platform> platforms = {Platform::kIfttt};
  int min_nodes = 2;
  int max_nodes = 50;
  /// Fraction of vulnerable graphs in labeled corpora (Table I: ~0.25 for
  /// IFTTT, ~0.30 for the heterogeneous dataset).
  double vulnerable_fraction = 0.25;
  /// Probability that each relational feature dim is flipped, modeling the
  /// ~2% per-pair NLP extraction error of Figure 3 compounded over the
  /// pairs a node participates in.
  double extraction_noise = 0.04;
  /// Optional per-dimension override of extraction_noise (all-negative =
  /// use the uniform value). Household clusters with different platform
  /// text styles extract different relations with different reliability.
  std::array<double, 4> relational_noise = {-1.0, -1.0, -1.0, -1.0};
};

/// \brief Generates labeled offline interaction-graph corpora
/// (Section III-A3: random chaining of "trigger-action" / "action-trigger"
/// pairs, plus planted vulnerability witnesses for the vulnerable class).
class GraphCorpusGenerator {
 public:
  GraphCorpusGenerator(CorpusOptions options, Rng* rng);

  /// \brief Generates a benign interaction graph: a random chained rule
  /// graph that the ground-truth checker certifies vulnerability-free
  /// (offending rules are repaired until clean).
  InteractionGraph GenerateBenign();

  /// \brief Generates a graph containing a planted witness of \p type
  /// (label 1, witness recorded).
  InteractionGraph GenerateVulnerable(VulnerabilityType type);

  /// \brief Generates \p count graphs with the configured vulnerable
  /// fraction; vulnerability types cycle uniformly.
  ///
  /// Parallel by stream splitting: the shared rng is consumed only for one
  /// Fork() and the final shuffle; graph i is generated from the fork's
  /// ForkAt(i) child by a worker generator, fanned out over parallel::For
  /// with results written by index. The corpus is therefore a pure
  /// function of (seed, call sequence) — bit-identical for every thread
  /// count and generation order (pinned by test_corpus_determinism).
  std::vector<InteractionGraph> GenerateDataset(int count);

  /// \brief Random vulnerability type (uniform over the six).
  VulnerabilityType SampleVulnerabilityType();

  /// \brief Generates a *drifting* sample: an interaction pattern outside
  /// the six known vulnerability classes (Section III-B3 / Figure 6), such
  /// as a long multi-hop action cycle, a dense conflicting hub, or a
  /// compound graph carrying several simultaneous witnesses. These land
  /// away from both class centroids in embedding space and should be
  /// flagged by the MAD detector.
  InteractionGraph GenerateDrifting();

  /// \brief Skews every platform generator's device vocabulary (see
  /// RuleGenerator::ApplyDeviceProfile).
  void ApplyDeviceProfile(uint64_t profile_seed, double strength);

 private:
  /// Grows a random chained graph of target size (no labels yet).
  InteractionGraph GrowRandomGraph(int target_nodes);
  /// Adds edges implied by ActionTriggersRule between every node pair.
  static void FinalizeEdges(InteractionGraph* g);
  /// Recomputes node features from rules (offline: no time info),
  /// including relational dims with the configured extraction noise.
  void ComputeFeatures(InteractionGraph* g);
  /// Mutates rules until the checker reports no findings. Returns false if
  /// the repair budget was exhausted.
  bool RepairToBenign(InteractionGraph* g);
  /// Injects a witness of \p type into \p g; returns witness node ids.
  std::vector<int> InjectVulnerability(InteractionGraph* g,
                                       VulnerabilityType type);

  RuleGenerator* GeneratorFor(Platform p);
  RuleGenerator* RandomGenerator();

  CorpusOptions options_;
  Rng* rng_;
  std::vector<RuleGenerator> generators_;
  int vuln_type_cursor_ = 0;
  /// Device profiles applied so far, replayed onto the per-graph worker
  /// generators that parallel GenerateDataset spawns.
  std::vector<std::pair<uint64_t, double>> device_profiles_;
};

/// \brief Dataset statistics matching Table I of the paper.
struct CorpusStats {
  int total_graphs = 0;
  int vulnerable_graphs = 0;
  int min_nodes = 0;
  int max_nodes = 0;
  double avg_nodes = 0.0;
  double avg_edges = 0.0;
};

CorpusStats ComputeCorpusStats(const std::vector<InteractionGraph>& graphs);

/// \brief Order-sensitive 64-bit FNV-1a digest over every byte of corpus
/// content: rule text, feature-vector bit patterns, edges, labels,
/// vulnerability types, and witnesses. Two corpora fingerprint equal iff
/// they are bit-identical — the parity probe behind the thread-count
/// determinism tests and bench_corpus.
uint64_t CorpusContentFingerprint(const std::vector<InteractionGraph>& graphs);


/// \brief A federated corpus: the pooled training dataset, the client
/// partition that induced it, and one held-out test pool per latent
/// cluster (the 20% evaluation split of Section IV-C — drawn from the same
/// household-cluster distribution as the clients it evaluates, with the
/// corpus-wide vulnerable fraction).
struct FederatedCorpus {
  GraphDataset data;
  ClientPartition partition;
  std::vector<GraphDataset> cluster_tests;
};

/// \brief Builds the non-i.i.d. federated evaluation corpus of
/// Section IV-C: \p num_clusters latent household clusters, each with its
/// own device profile (covariate shift, strength \p profile_strength) and
/// preferred vulnerability types (concept shift); within a cluster,
/// samples spread over its clients with Dirichlet(\p alpha) label skew.
/// Test pools are class-balanced (50% vulnerable).
FederatedCorpus BuildClusteredFederatedCorpus(
    const CorpusOptions& base, int total_graphs, int num_clients,
    int num_clusters, double alpha, double profile_strength, Rng* rng);

/// \brief Extends CorpusContentFingerprint over a full federated corpus:
/// pooled data, client partition indices, cluster assignment, and every
/// per-cluster test pool.
uint64_t FederatedCorpusContentFingerprint(const FederatedCorpus& corpus);

/// \brief Shard-on-demand corpus API: materializes one client's corpus
/// shard without constructing anything for any other client.
///
/// The shard is generated from the ForkAt(client_id) child of a root
/// stream seeded with \p corpus_seed, with the client's latent-cluster
/// device profile (cluster = client_id % num_clusters, covariate shift of
/// \p profile_strength) applied — a pure function of (options, seed,
/// client_id). Materialize -> release -> rematerialize therefore yields
/// bit-identical content for any participation schedule and thread count
/// (pinned by test_scale), which is what lets the million-client scale
/// simulator hold only in-flight clients in memory.
std::vector<InteractionGraph> MaterializeClientShard(
    const CorpusOptions& base, uint64_t corpus_seed, uint64_t client_id,
    int graphs_per_client, int num_clusters, double profile_strength);

/// \brief CorpusContentFingerprint of MaterializeClientShard's output —
/// the rematerialization-identity probe used by the lazy-state tests.
uint64_t ClientShardFingerprint(const CorpusOptions& base,
                                uint64_t corpus_seed, uint64_t client_id,
                                int graphs_per_client, int num_clusters,
                                double profile_strength);

}  // namespace fexiot
