#include "graph/fusion.h"

#include <algorithm>
#include <map>

namespace fexiot {
namespace {

/// A device's logical state-change timeline mined from the log.
struct DeviceTimeline {
  std::vector<double> times;
  std::vector<std::string> values;
  std::vector<LogKind> kinds;
};

}  // namespace

InteractionGraph OnlineGraphBuilder::Build(const EventLog& cleaned_log) const {
  const auto& entries = cleaned_log.entries();

  // Index log entries per device type.
  std::map<DeviceType, DeviceTimeline> timeline;
  for (const auto& e : entries) {
    auto& t = timeline[e.device];
    t.times.push_back(e.timestamp);
    t.values.push_back(e.value);
    t.kinds.push_back(e.kind);
  }

  auto has_record = [&](DeviceType d, const std::string& value, double lo,
                        double hi, LogKind kind) {
    auto it = timeline.find(d);
    if (it == timeline.end()) return false;
    const auto& t = it->second;
    for (size_t i = 0; i < t.times.size(); ++i) {
      if (t.times[i] < lo || t.times[i] > hi) continue;
      if (t.kinds[i] == kind && t.values[i] == value) return true;
    }
    return false;
  };

  InteractionGraph g;
  std::map<int, int> rule_to_node;  // rule id -> node id

  // Pass 1: detect rule firings. A rule fired at time t if its trigger
  // event appears at t and each action's state appears within the window.
  for (const auto& rule : home_.rules) {
    auto it = timeline.find(rule.trigger.device);
    if (it == timeline.end()) continue;
    const auto& t = it->second;
    double last_fire = -1.0;
    int fires = 0;
    int command_hits = 0, command_total = 0;
    int effect_hits = 0, effect_total = 0;
    for (size_t i = 0; i < t.times.size(); ++i) {
      if (t.kinds[i] != LogKind::kStateChange) continue;
      if (t.values[i] != rule.trigger.state) continue;
      // Do all actions materialize in the window?
      bool all_actions = true;
      for (const auto& a : rule.actions) {
        if (!has_record(a.device, a.state, t.times[i],
                        t.times[i] + options_.firing_window,
                        LogKind::kStateChange)) {
          all_actions = false;
        }
      }
      if (!all_actions) continue;
      ++fires;
      last_fire = t.times[i];
      // Consistency mining around this firing.
      for (const auto& a : rule.actions) {
        ++command_total;
        if (has_record(a.device, a.state,
                       t.times[i] - options_.consistency_window,
                       t.times[i] + options_.firing_window,
                       LogKind::kCommand)) {
          ++command_hits;
        }
      }
    }
    // Effect consistency: commands for this rule's action devices followed
    // by the commanded state.
    for (const auto& a : rule.actions) {
      auto at = timeline.find(a.device);
      if (at == timeline.end()) continue;
      for (size_t i = 0; i < at->second.times.size(); ++i) {
        if (at->second.kinds[i] != LogKind::kCommand) continue;
        if (at->second.values[i] != a.state) continue;
        ++effect_total;
        if (has_record(a.device, a.state, at->second.times[i],
                       at->second.times[i] + options_.consistency_window,
                       LogKind::kStateChange)) {
          ++effect_hits;
        }
      }
    }
    if (fires == 0) continue;

    GraphNode node;
    node.rule = rule;
    node.event_time = last_fire;
    node.features = ComputeNodeFeatures(rule, last_fire);
    const double cmd_consistency =
        command_total > 0
            ? static_cast<double>(command_hits) / command_total
            : 1.0;
    const double eff_consistency =
        effect_total > 0 ? static_cast<double>(effect_hits) / effect_total
                         : 1.0;
    node.features[node.features.size() - kFeatureDimCommandConsistency] =
        kConsistencyScale * (cmd_consistency - 1.0);
    node.features[node.features.size() - kFeatureDimEffectConsistency] =
        kConsistencyScale * (eff_consistency - 1.0);
    rule_to_node[rule.id] = g.AddNode(std::move(node));
  }

  // Pass 2: edges from the deployed rules' trigger-action logic, restricted
  // to rules that actually fired, honoring time order.
  for (const auto& ra : home_.rules) {
    auto ia = rule_to_node.find(ra.id);
    if (ia == rule_to_node.end()) continue;
    for (const auto& rb : home_.rules) {
      if (ra.id == rb.id) continue;
      auto ib = rule_to_node.find(rb.id);
      if (ib == rule_to_node.end()) continue;
      if (!ActionTriggersRule(ra, rb)) continue;
      g.AddEdge(ia->second, ib->second);
    }
  }
  AugmentRelationalFeatures(&g);
  return g;
}

}  // namespace fexiot
