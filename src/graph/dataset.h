#pragma once

#include <vector>

#include "common/rng.h"
#include "graph/interaction_graph.h"

namespace fexiot {

/// \brief A collection of labeled interaction graphs with split /
/// partition utilities used by the federated experiments.
class GraphDataset {
 public:
  GraphDataset() = default;
  explicit GraphDataset(std::vector<InteractionGraph> graphs)
      : graphs_(std::move(graphs)) {}

  size_t size() const { return graphs_.size(); }
  bool empty() const { return graphs_.empty(); }
  const InteractionGraph& graph(size_t i) const { return graphs_[i]; }
  const std::vector<InteractionGraph>& graphs() const { return graphs_; }
  std::vector<InteractionGraph>& mutable_graphs() { return graphs_; }

  void Add(InteractionGraph g) { graphs_.push_back(std::move(g)); }

  /// Labels as a vector (0 = normal, 1 = vulnerable).
  std::vector<int> Labels() const;

  /// Fraction of vulnerable graphs.
  double VulnerableFraction() const;

  /// \brief Random train/test split (by fraction of the whole set).
  /// \p rng must be non-null (asserted; a release build degrades to a
  /// deterministic unshuffled split).
  void Split(double train_fraction, Rng* rng, GraphDataset* train,
             GraphDataset* test) const;

  /// \brief Subset by indices.
  GraphDataset Subset(const std::vector<size_t>& indices) const;

 private:
  std::vector<InteractionGraph> graphs_;
};

/// \brief Per-client index assignment for federated simulation.
struct ClientPartition {
  /// indices[c] lists dataset indices owned by client c.
  std::vector<std::vector<size_t>> indices;
  /// Latent cluster id per client (when clustered partitioning was used;
  /// -1 otherwise). Ground truth for evaluating clustered FL.
  std::vector<int> client_cluster;
};

/// \brief Dirichlet label-skew partition (Section IV-C): each class's
/// samples are spread over clients with proportions ~ Dirichlet(alpha).
/// Small alpha -> highly unbalanced non-i.i.d. clients. \p rng must be
/// non-null and \p num_clients positive (asserted; release builds return
/// an empty partition). alpha is clamped to a tiny positive floor, so
/// alpha -> 0 degrades to Rng::Dirichlet's uniform fallback.
ClientPartition PartitionDirichlet(const GraphDataset& data, int num_clients,
                                   double alpha, Rng* rng);

/// \brief Clustered heterogeneity partition: clients are grouped into
/// \p num_clusters latent clusters; each cluster prefers a distinct subset
/// of vulnerability types (concept heterogeneity), and within a cluster
/// samples are spread with Dirichlet(alpha) label skew. This is the regime
/// the paper's layer-wise clustering is designed for.
ClientPartition PartitionClustered(const GraphDataset& data, int num_clients,
                                   int num_clusters, double alpha, Rng* rng);

}  // namespace fexiot
