#include "graph/interaction_graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <sstream>

#include "nlp/embeddings.h"

namespace fexiot {

int InteractionGraph::AddNode(GraphNode node) {
  nodes_.push_back(std::move(node));
  out_adj_.emplace_back();
  in_adj_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

void InteractionGraph::AddEdge(int u, int v) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  if (u == v || HasEdge(u, v)) return;
  edges_.emplace_back(u, v);
  out_adj_[static_cast<size_t>(u)].push_back(v);
  in_adj_[static_cast<size_t>(v)].push_back(u);
}

void InteractionGraph::RemoveEdge(int u, int v) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  const auto it = std::find(edges_.begin(), edges_.end(), std::make_pair(u, v));
  if (it == edges_.end()) return;
  edges_.erase(it);
  auto& out = out_adj_[static_cast<size_t>(u)];
  out.erase(std::find(out.begin(), out.end(), v));
  auto& in = in_adj_[static_cast<size_t>(v)];
  in.erase(std::find(in.begin(), in.end(), u));
}

const std::vector<int>& InteractionGraph::OutNeighbors(int u) const {
  return out_adj_[static_cast<size_t>(u)];
}

const std::vector<int>& InteractionGraph::InNeighbors(int u) const {
  return in_adj_[static_cast<size_t>(u)];
}

std::vector<int> InteractionGraph::UndirectedNeighbors(int u) const {
  std::set<int> s(out_adj_[static_cast<size_t>(u)].begin(),
                  out_adj_[static_cast<size_t>(u)].end());
  s.insert(in_adj_[static_cast<size_t>(u)].begin(),
           in_adj_[static_cast<size_t>(u)].end());
  return std::vector<int>(s.begin(), s.end());
}

bool InteractionGraph::HasEdge(int u, int v) const {
  const auto& nbrs = out_adj_[static_cast<size_t>(u)];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

bool InteractionGraph::IsHeterogeneous() const {
  if (nodes_.empty()) return false;
  const size_t dim = nodes_.front().features.size();
  for (const auto& n : nodes_) {
    if (n.features.size() != dim) return true;
  }
  return false;
}

Matrix InteractionGraph::FeatureMatrix() const {
  assert(!nodes_.empty());
  const size_t dim = nodes_.front().features.size();
  Matrix x(nodes_.size(), dim);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    assert(nodes_[i].features.size() == dim &&
           "FeatureMatrix requires homogeneous feature dims");
    x.SetRow(i, nodes_[i].features);
  }
  return x;
}

Matrix InteractionGraph::NormalizedAdjacency() const {
  const size_t n = nodes_.size();
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) a.At(i, i) = 1.0;  // self loops
  for (const auto& [u, v] : edges_) {
    a.At(static_cast<size_t>(u), static_cast<size_t>(v)) = 1.0;
    a.At(static_cast<size_t>(v), static_cast<size_t>(u)) = 1.0;
  }
  std::vector<double> dinv(n);
  for (size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (size_t j = 0; j < n; ++j) deg += a.At(i, j);
    dinv[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a.At(i, j) *= dinv[i] * dinv[j];
    }
  }
  return a;
}

InteractionGraph InteractionGraph::InducedSubgraph(
    const std::vector<int>& node_ids) const {
  InteractionGraph sub;
  std::vector<int> remap(nodes_.size(), -1);
  for (int id : node_ids) {
    assert(id >= 0 && id < num_nodes());
    remap[static_cast<size_t>(id)] = sub.AddNode(nodes_[static_cast<size_t>(id)]);
  }
  for (const auto& [u, v] : edges_) {
    const int nu = remap[static_cast<size_t>(u)];
    const int nv = remap[static_cast<size_t>(v)];
    if (nu >= 0 && nv >= 0) sub.AddEdge(nu, nv);
  }
  sub.label_ = label_;
  sub.vulnerability_ = vulnerability_;
  sub.attack_ = attack_;
  sub.has_attack_ = has_attack_;
  return sub;
}

bool InteractionGraph::IsConnectedSubset(
    const std::vector<int>& node_ids) const {
  if (node_ids.empty()) return false;
  if (node_ids.size() == 1) return true;
  std::set<int> subset(node_ids.begin(), node_ids.end());
  std::vector<int> stack = {node_ids.front()};
  std::set<int> seen = {node_ids.front()};
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int v : UndirectedNeighbors(u)) {
      if (subset.count(v) && !seen.count(v)) {
        seen.insert(v);
        stack.push_back(v);
      }
    }
  }
  return seen.size() == subset.size();
}

std::vector<std::vector<int>> InteractionGraph::ConnectedComponents() const {
  std::vector<std::vector<int>> comps;
  std::vector<bool> seen(nodes_.size(), false);
  for (int start = 0; start < num_nodes(); ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    std::vector<int> comp;
    std::vector<int> stack = {start};
    seen[static_cast<size_t>(start)] = true;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      comp.push_back(u);
      for (int v : UndirectedNeighbors(u)) {
        if (!seen[static_cast<size_t>(v)]) {
          seen[static_cast<size_t>(v)] = true;
          stack.push_back(v);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

bool InteractionGraph::HasDirectedCycle() const {
  enum { kWhite, kGray, kBlack };
  std::vector<int> color(nodes_.size(), kWhite);
  // Iterative DFS with explicit stack of (node, next-neighbor-index).
  for (int start = 0; start < num_nodes(); ++start) {
    if (color[static_cast<size_t>(start)] != kWhite) continue;
    std::vector<std::pair<int, size_t>> stack = {{start, 0}};
    color[static_cast<size_t>(start)] = kGray;
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      const auto& nbrs = out_adj_[static_cast<size_t>(u)];
      if (idx < nbrs.size()) {
        const int v = nbrs[idx++];
        if (color[static_cast<size_t>(v)] == kGray) return true;
        if (color[static_cast<size_t>(v)] == kWhite) {
          color[static_cast<size_t>(v)] = kGray;
          stack.emplace_back(v, 0);
        }
      } else {
        color[static_cast<size_t>(u)] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::string InteractionGraph::ToString() const {
  std::ostringstream os;
  os << "InteractionGraph(nodes=" << num_nodes() << ", edges=" << num_edges()
     << ", label=" << label_ << ", vuln=" << VulnerabilityTypeName(vulnerability_)
     << ")\n";
  for (int i = 0; i < num_nodes(); ++i) {
    os << "  [" << i << "] (" << PlatformName(nodes_[static_cast<size_t>(i)].rule.platform)
       << ") " << nodes_[static_cast<size_t>(i)].rule.description << "\n";
  }
  for (const auto& [u, v] : edges_) os << "  " << u << " -> " << v << "\n";
  return os.str();
}

void AugmentRelationalFeatures(InteractionGraph* g, double noise, Rng* rng) {
  AugmentRelationalFeatures(g, std::array<double, 4>{noise, noise, noise, noise},
                            rng);
}

void AugmentRelationalFeatures(InteractionGraph* g,
                               const std::array<double, 4>& noise, Rng* rng) {
  const int n = g->num_nodes();
  // Sibling sets: nodes sharing a parent, or sharing the same trigger.
  std::vector<std::set<int>> siblings(static_cast<size_t>(n));
  for (int p = 0; p < n; ++p) {
    const auto& children = g->OutNeighbors(p);
    for (size_t i = 0; i < children.size(); ++i) {
      for (size_t j = i + 1; j < children.size(); ++j) {
        siblings[static_cast<size_t>(children[i])].insert(children[j]);
        siblings[static_cast<size_t>(children[j])].insert(children[i]);
      }
    }
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (g->node(a).rule.trigger == g->node(b).rule.trigger) {
        siblings[static_cast<size_t>(a)].insert(b);
        siblings[static_cast<size_t>(b)].insert(a);
      }
    }
  }

  auto actions_of = [&](int v) -> const std::vector<Action>& {
    return g->node(v).rule.actions;
  };

  for (int v = 0; v < n; ++v) {
    double r0 = 0.0, r1 = 0.0, r2 = 0.0, r3 = 0.0;
    // r0: condition-block relation — this rule drives some deployed
    // rule's (actuatable) trigger device to the opposite state, or its own
    // trigger is blocked by another rule.
    for (int u = 0; u < n && r0 == 0.0; ++u) {
      if (u == v) continue;
      const Trigger& tu = g->node(u).rule.trigger;
      if (!GetDeviceTypeInfo(tu.device).is_sensor) {
        for (const auto& x : actions_of(v)) {
          if (x.device == tu.device && x.state != tu.state &&
              x.state == OppositeState(tu.device, tu.state)) {
            r0 = 1.0;
          }
        }
      }
      const Trigger& tv = g->node(v).rule.trigger;
      if (!GetDeviceTypeInfo(tv.device).is_sensor) {
        for (const auto& y : actions_of(u)) {
          if (y.device == tv.device && y.state != tv.state &&
              y.state == OppositeState(tv.device, tv.state)) {
            r0 = 1.0;
          }
        }
      }
    }
    for (int s : siblings[static_cast<size_t>(v)]) {
      for (const auto& x : actions_of(v)) {
        for (const auto& y : actions_of(s)) {
          if (x.device != y.device) continue;
          if (x.state == y.state) {
            r1 = 1.0;
          } else {
            r2 = 1.0;
          }
        }
      }
    }
    // Descendants within 3 hops reverting one of v's actions.
    std::set<int> frontier = {v};
    std::set<int> seen = {v};
    for (int hop = 0; hop < 3 && r3 == 0.0; ++hop) {
      std::set<int> next;
      for (int u : frontier) {
        for (int w : g->OutNeighbors(u)) {
          if (seen.count(w)) continue;
          seen.insert(w);
          next.insert(w);
          for (const auto& x : actions_of(v)) {
            for (const auto& y : actions_of(w)) {
              if (x.device == y.device && x.state != y.state) r3 = 1.0;
            }
          }
        }
      }
      frontier = std::move(next);
    }
    auto& f = g->mutable_node(v).features;
    if (f.size() < static_cast<size_t>(kExtraFeatureDims)) continue;
    const size_t base = f.size() - kExtraFeatureDims;
    f[base + 0] = r0;
    f[base + 1] = r1;
    f[base + 2] = r2;
    f[base + 3] = r3;
    if (rng != nullptr) {
      // NLP extraction error: relational indicator k flips w.p. noise[k].
      for (size_t k = 0; k < 4; ++k) {
        if (noise[k] > 0.0 && rng->Bernoulli(noise[k])) {
          f[base + k] = 1.0 - f[base + k];
        }
      }
    }
  }
}

int PlatformFeatureDim(Platform platform) {
  switch (platform) {
    case Platform::kGoogleAssistant:
    case Platform::kAlexa:
      return kHeteroFeatureDim;
    default:
      return kHomoFeatureDim;
  }
}

std::vector<double> ComputeNodeFeatures(const Rule& rule, double event_time) {
  std::vector<double> base;
  if (PlatformFeatureDim(rule.platform) == kHeteroFeatureDim) {
    base = SentenceEncoder::Encode(rule.description);
  } else {
    base = TriggerActionPairEmbedding(rule.trigger_text, rule.action_text);
  }
  // Append the extra dims: 4 relational slots (filled by
  // AugmentRelationalFeatures) then 4 time/consistency dims — sin/cos of
  // time-of-day plus two causal-consistency slots (see graph/fusion.h).
  // The consistency slots store an AMPLIFIED DEVIATION from full
  // consistency (0 = consistent, more negative = more tampering evidence)
  // so the few anomaly dims carry weight against the ~300 text dims in
  // embedding distances; offline graphs keep all four at zero.
  std::vector<double> out = std::move(base);
  out.resize(out.size() + kExtraFeatureDims, 0.0);
  if (event_time >= 0.0) {
    const double day_frac = std::fmod(event_time, 86400.0) / 86400.0;
    out[out.size() - 4] = std::sin(2.0 * M_PI * day_frac);
    out[out.size() - 3] = std::cos(2.0 * M_PI * day_frac);
  }
  return out;
}

}  // namespace fexiot
