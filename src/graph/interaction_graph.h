#pragma once

#include <array>
#include <string>
#include <vector>

#include "smarthome/rule.h"
#include "smarthome/vulnerability.h"
#include "tensor/matrix.h"

namespace fexiot {

/// Number of extra feature dims appended to the text embedding:
/// 4 relational dims (pairwise rule-correlation summaries, Section III-A1
/// style) followed by 4 time/consistency dims (time-of-day sin/cos and the
/// two causal-consistency scores mined by data fusion).
constexpr int kExtraFeatureDims = 8;
/// Node feature dimensionality for word-embedding platforms
/// (SmartThings / Home Assistant / IFTTT): 300-d Eq. 1 pair embedding plus
/// the extra dims.
constexpr int kHomoFeatureDim = 300 + kExtraFeatureDims;
/// Node feature dimensionality for sentence-encoder platforms
/// (Google Assistant / Alexa): 512-d sentence embedding plus extras.
constexpr int kHeteroFeatureDim = 512 + kExtraFeatureDims;

/// \brief One node of an interaction graph: an automation rule with its
/// embedded features (Definition 1).
struct GraphNode {
  /// The structured rule behind this node (carried for ground-truth
  /// checking and explanation rendering; a real deployment would have only
  /// the description).
  Rule rule;
  /// Node feature vector; size is kHomoFeatureDim or kHeteroFeatureDim
  /// depending on the rule's platform.
  std::vector<double> features;
  /// Seconds-of-day of the node's most recent firing (online graphs only).
  double event_time = -1.0;
};

/// \brief Directed interaction graph over automation rules. Edges are
/// "action-trigger" correlations: u -> v means executing u's actions fires
/// v's trigger.
class InteractionGraph {
 public:
  InteractionGraph() = default;

  int AddNode(GraphNode node);
  /// Adds edge u -> v (no-op if it already exists or u == v).
  void AddEdge(int u, int v);
  /// Removes edge u -> v (no-op if absent). Used by the streaming serving
  /// layer when an interaction correlation ages out of its active window.
  void RemoveEdge(int u, int v);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const GraphNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  GraphNode& mutable_node(int i) { return nodes_[static_cast<size_t>(i)]; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  /// Out-neighbors of node \p u.
  const std::vector<int>& OutNeighbors(int u) const;
  /// In-neighbors of node \p u.
  const std::vector<int>& InNeighbors(int u) const;
  /// Undirected neighbor list (union of in and out, deduplicated).
  std::vector<int> UndirectedNeighbors(int u) const;

  bool HasEdge(int u, int v) const;

  /// \brief Binary vulnerability label (Definition 2).
  int label() const { return label_; }
  void set_label(int label) { label_ = label; }

  /// Primary planted/detected vulnerability type (kNone when benign).
  VulnerabilityType vulnerability() const { return vulnerability_; }
  void set_vulnerability(VulnerabilityType v) { vulnerability_ = v; }

  /// External attack present in this (online) graph, if any.
  AttackType attack() const { return attack_; }
  bool has_attack() const { return has_attack_; }
  void set_attack(AttackType a) {
    attack_ = a;
    has_attack_ = true;
  }

  /// Ground-truth witness node ids of the vulnerability (explanation
  /// target; empty for benign graphs).
  const std::vector<int>& witness() const { return witness_; }
  void set_witness(std::vector<int> w) { witness_ = std::move(w); }

  /// True if the graph mixes feature spaces (multi-platform).
  bool IsHeterogeneous() const;

  /// \brief Node features stacked as a num_nodes x dim matrix. All nodes
  /// must share one dimensionality (pad or project first for hetero
  /// graphs); asserts otherwise.
  Matrix FeatureMatrix() const;

  /// \brief Symmetrically normalized adjacency with self loops,
  /// D^-1/2 (A + I) D^-1/2 over the undirected skeleton (GCN propagation).
  Matrix NormalizedAdjacency() const;

  /// \brief Node-induced subgraph; labels/metadata are copied,
  /// \p node_ids order defines new node ids.
  InteractionGraph InducedSubgraph(const std::vector<int>& node_ids) const;

  /// \brief True if the undirected skeleton of the node subset is connected.
  bool IsConnectedSubset(const std::vector<int>& node_ids) const;

  /// \brief Connected components of the undirected skeleton.
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// \brief True if the directed graph contains a cycle.
  bool HasDirectedCycle() const;

  /// \brief Short multi-line rendering (node descriptions + edges).
  std::string ToString() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> out_adj_;
  std::vector<std::vector<int>> in_adj_;
  int label_ = 0;
  VulnerabilityType vulnerability_ = VulnerabilityType::kNone;
  AttackType attack_ = AttackType::kFakeEvent;
  bool has_attack_ = false;
  std::vector<int> witness_;
};

/// \brief Computes a node's feature vector per the paper: Eq. 1 trigger-
/// action pair embedding (word platforms) or sentence embedding (voice
/// platforms), with the trailing time dims encoding \p event_time (seconds
/// of day; negative = offline, zeros). The 4 relational dims are zero
/// until AugmentRelationalFeatures fills them.
std::vector<double> ComputeNodeFeatures(const Rule& rule, double event_time);

/// \brief Fills each node's 4 relational feature dims from the parsed
/// trigger-action structures of its graph neighborhood:
///   r0: max action-device overlap with any sibling (co-triggered rule);
///   r1: 1 if a sibling issues the identical (device, state) action;
///   r2: 1 if a sibling drives a shared device to a *different* state;
///   r3: 1 if a descendant within 3 hops reverts one of this rule's
///       actions (same device, different state).
/// These summarize the same pairwise rule-correlation features the
/// Figure 3 classifiers consume; computing them from the structured rules
/// is equivalent to running the (98%-accurate, Fig. 3) NLP extraction.
/// \p noise models that extraction error: each relational dim is flipped
/// with this probability (0 disables; requires \p rng when > 0).
void AugmentRelationalFeatures(InteractionGraph* g, double noise = 0.0,
                               Rng* rng = nullptr);

/// \brief Per-dimension variant: dim k flips with probability noise[k].
/// Different household clusters / platform text styles extract different
/// relations with different reliability, which is the concept
/// heterogeneity the clustered federated methods exploit.
void AugmentRelationalFeatures(InteractionGraph* g,
                               const std::array<double, 4>& noise, Rng* rng);

/// \brief Feature dimensionality used by \p platform.
int PlatformFeatureDim(Platform platform);

}  // namespace fexiot
